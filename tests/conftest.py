"""Shared fixtures: small deterministic datasets, machines, models."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.hardware import dgx1, dgx_a100, single_gpu
from repro.nn import GCNModelSpec


@pytest.fixture(scope="session")
def small_dataset():
    """A tiny learnable dataset (~330 vertices) shared by trainer tests."""
    return load_dataset("cora", scale=0.1, learnable=True, seed=1)


@pytest.fixture(scope="session")
def tiny_dataset():
    """An even smaller dataset for gradient checks and quick runs."""
    return load_dataset("cora", scale=0.02, learnable=True, seed=2)


@pytest.fixture(scope="session")
def small_model(small_dataset):
    return GCNModelSpec.build(small_dataset.d0, 16, small_dataset.num_classes, 2)


@pytest.fixture(scope="session")
def tiny_model(tiny_dataset):
    return GCNModelSpec.build(tiny_dataset.d0, 8, tiny_dataset.num_classes, 2)


@pytest.fixture()
def rng():
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture(scope="session")
def v100_machine():
    return dgx1()


@pytest.fixture(scope="session")
def a100_machine():
    return dgx_a100()
