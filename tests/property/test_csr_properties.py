"""Property-based tests of the CSR substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sparse import COOMatrix, CSRMatrix, uniform_partition, tile_grid


@st.composite
def sparse_matrices(draw, max_dim=24):
    """A random small sparse matrix as (shape, dense ndarray)."""
    rows = draw(st.integers(1, max_dim))
    cols = draw(st.integers(1, max_dim))
    nnz = draw(st.integers(0, rows * cols))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    dense = np.zeros((rows, cols), dtype=np.float32)
    if nnz:
        flat = rng.choice(rows * cols, size=nnz, replace=False)
        dense.flat[flat] = rng.uniform(-2, 2, size=nnz).astype(np.float32)
    return dense


@settings(max_examples=60, deadline=None)
@given(sparse_matrices())
def test_dense_roundtrip(dense):
    csr = CSRMatrix.from_dense(dense)
    assert np.allclose(csr.to_dense(), dense)


@settings(max_examples=60, deadline=None)
@given(sparse_matrices())
def test_coo_csr_agree(dense):
    rows, cols = np.nonzero(dense)
    coo = COOMatrix(dense.shape, rows, cols, dense[rows, cols])
    csr = CSRMatrix.from_coo(coo)
    assert np.allclose(csr.to_dense(), coo.to_dense())


@settings(max_examples=60, deadline=None)
@given(sparse_matrices(), st.integers(1, 6), st.integers(0, 2**31 - 1))
def test_spmm_matches_dense(dense, d, seed):
    csr = CSRMatrix.from_dense(dense)
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((dense.shape[1], d)).astype(np.float32)
    assert np.allclose(csr.spmm(x), dense @ x, atol=1e-3)


@settings(max_examples=40, deadline=None)
@given(sparse_matrices(), st.integers(1, 6), st.integers(0, 2**31 - 1))
def test_scipy_and_numpy_kernels_agree(dense, d, seed):
    csr = CSRMatrix.from_dense(dense)
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((dense.shape[1], d)).astype(np.float32)
    assert np.allclose(
        csr.spmm(x, use_scipy=True), csr.spmm(x, use_scipy=False), atol=1e-3
    )


@settings(max_examples=60, deadline=None)
@given(sparse_matrices())
def test_transpose_involution(dense):
    csr = CSRMatrix.from_dense(dense)
    back = csr.transpose().transpose()
    assert np.allclose(back.to_dense(), dense)


@settings(max_examples=40, deadline=None)
@given(sparse_matrices(), st.integers(1, 5), st.integers(1, 5))
def test_tiling_partitions_nnz(dense, row_parts, col_parts):
    csr = CSRMatrix.from_dense(dense)
    rp = uniform_partition(dense.shape[0], row_parts)
    cp = uniform_partition(dense.shape[1], col_parts)
    tiles = tile_grid(csr, rp, cp)
    assert sum(t.nnz for row in tiles for t in row) == csr.nnz
    # reconstruct
    recon = np.zeros_like(dense)
    for i, (r0, r1) in enumerate(rp):
        for j, (c0, c1) in enumerate(cp):
            recon[r0:r1, c0:c1] = tiles[i][j].to_dense()
    assert np.allclose(recon, dense)


@settings(max_examples=40, deadline=None)
@given(sparse_matrices())
def test_csr_invariants_hold(dense):
    csr = CSRMatrix.from_dense(dense)
    assert csr.indptr[0] == 0
    assert csr.indptr[-1] == csr.nnz
    assert np.all(np.diff(csr.indptr) >= 0)
    if csr.nnz:
        assert csr.indices.min() >= 0
        assert csr.indices.max() < dense.shape[1]


@settings(max_examples=30, deadline=None)
@given(sparse_matrices(), st.integers(0, 2**31 - 1))
def test_scale_rows_cols_commute_via_values(dense, seed):
    csr = CSRMatrix.from_dense(dense)
    rng = np.random.default_rng(seed)
    r = rng.uniform(0.5, 2.0, dense.shape[0]).astype(np.float32)
    c = rng.uniform(0.5, 2.0, dense.shape[1]).astype(np.float32)
    a = csr.scale_rows(r).scale_cols(c).to_dense()
    b = csr.scale_cols(c).scale_rows(r).to_dense()
    assert np.allclose(a, b, atol=1e-4)
