"""Property tests: collectives preserve data and timing invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm import Communicator
from repro.device import SimContext
from repro.hardware import dgx1, dgx_a100


def _ctx(P, machine=None):
    return SimContext(machine or dgx1(), num_gpus=P)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(2, 8),
    st.integers(1, 32),
    st.integers(1, 8),
    st.integers(0, 2**31 - 1),
)
def test_broadcast_delivers_exact_payload(P, rows, cols, seed):
    ctx = _ctx(P)
    comm = Communicator(ctx)
    rng = np.random.default_rng(seed)
    root = int(rng.integers(0, P))
    payload = rng.standard_normal((rows, cols)).astype(np.float32)
    src = ctx.device(root).from_numpy(payload)
    dsts = {
        r: ctx.device(r).empty((rows, cols)) for r in range(P) if r != root
    }
    comm.broadcast(root, src, dsts)
    for r, dst in dsts.items():
        assert np.array_equal(dst.data, payload)


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 8), st.integers(1, 16), st.integers(0, 2**31 - 1))
def test_allreduce_sum_is_exact_sum(P, n, seed):
    ctx = _ctx(P)
    comm = Communicator(ctx)
    rng = np.random.default_rng(seed)
    payloads = [rng.standard_normal((n, 3)).astype(np.float64) for _ in range(P)]
    tensors = {
        r: ctx.device(r).from_numpy(payloads[r].astype(np.float32))
        for r in range(P)
    }
    comm.allreduce(tensors, op="sum")
    expected = sum(payloads)
    for r in range(P):
        assert np.allclose(tensors[r].data, expected, atol=1e-4)
        # all replicas identical (bitwise)
        assert np.array_equal(tensors[r].data, tensors[0].data)


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 8), st.integers(6, 12))
def test_broadcast_time_monotone_in_bytes(P, log_rows):
    ctx = _ctx(P)
    comm = Communicator(ctx)
    small = ctx.device(0).from_numpy(
        np.zeros((2 ** (log_rows - 2), 64), dtype=np.float32)
    )
    big = ctx.device(0).from_numpy(
        np.zeros((2**log_rows, 64), dtype=np.float32)
    )
    d_small = comm.broadcast_duration(0, small.nbytes)
    d_big = comm.broadcast_duration(0, big.nbytes)
    assert d_big > d_small


@settings(max_examples=20, deadline=None)
@given(st.integers(12, 22))
def test_switch_never_slower_than_mesh(log_bytes):
    nbytes = 2**log_bytes
    mesh = Communicator(_ctx(8, dgx1()))
    switch = Communicator(_ctx(8, dgx_a100()))
    assert switch.broadcast_duration(0, nbytes) <= mesh.broadcast_duration(0, nbytes)


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 8), st.integers(0, 2**31 - 1))
def test_rendezvous_all_finish_together(P, seed):
    ctx = _ctx(P)
    comm = Communicator(ctx)
    rng = np.random.default_rng(seed)
    # skew the comm streams
    for r in range(P):
        ctx.engine.submit(
            ctx.device(r).comm_stream, "busy", "comm", float(rng.random())
        )
    tensors = {r: ctx.device(r).zeros((8, 8)) for r in range(P)}
    events = comm.allreduce(tensors)
    times = {ev.time for ev in events.values()}
    assert len(times) == 1
    # and not before the busiest stream finished
    assert events[0].time >= max(
        ev.start for ev in ctx.engine.trace if ev.name == "busy"
    )
