"""Property tests: partition invariants over surviving-GPU subsets, and
fault-plan remapping/sampling invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.resilience import DeviceFailure, FaultPlan, StragglerSlowdown
from repro.resilience.recovery import remap_plan
from repro.sparse import uniform_partition


@st.composite
def world_and_survivors(draw):
    """A world size plus a non-empty subset of surviving ranks."""
    world = draw(st.integers(2, 8))
    survivors = draw(
        st.sets(st.integers(0, world - 1), min_size=1, max_size=world)
    )
    return world, sorted(survivors)


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 2000), world_and_survivors())
def test_repartition_covers_every_vertex_for_any_surviving_subset(n, ws):
    """After recovery the 1D partition over the survivors still covers
    every vertex exactly once and stays balanced."""
    _, survivors = ws
    p = uniform_partition(n, len(survivors))
    sizes = p.sizes()
    assert sum(sizes) == n
    assert len(sizes) == len(survivors)
    assert max(sizes) - min(sizes) <= 1
    # parts tile [0, n) contiguously, in order
    cursor = 0
    for part in range(len(survivors)):
        lo, hi = p.part(part)
        assert lo == cursor
        cursor = hi
    assert cursor == n


@settings(max_examples=100, deadline=None)
@given(world_and_survivors(), st.integers(0, 2**31 - 1))
def test_remap_plan_ranks_stay_in_new_world(ws, seed):
    world, survivors = ws
    plan = FaultPlan.random(
        num_gpus=world,
        horizon=1.0,
        seed=seed,
        device_failure_rate=2.0,
        link_degradation_rate=2.0,
        straggler_rate=2.0,
        collective_fault_rate=2.0,
    )
    out = remap_plan(plan, survivors)
    new_world = len(survivors)
    assert all(0 <= f.rank < new_world for f in out.device_failures)
    assert all(0 <= s.rank < new_world for s in out.stragglers)
    for d in out.link_degradations:
        assert d.ranks is None or all(0 <= r < new_world for r in d.ranks)
    # exactly the surviving ranks' faults are kept, times unchanged
    kept = {s: i for i, s in enumerate(survivors)}
    want = sorted(
        (kept[f.rank], f.time) for f in plan.device_failures if f.rank in kept
    )
    got = sorted((f.rank, f.time) for f in out.device_failures)
    assert got == want


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 2**31 - 1), st.integers(1, 8))
def test_random_plan_same_seed_same_plan(seed, world):
    kwargs = dict(
        num_gpus=world,
        horizon=5.0,
        device_failure_rate=0.5,
        link_degradation_rate=0.5,
        straggler_rate=0.5,
        collective_fault_rate=0.5,
    )
    assert FaultPlan.random(seed=seed, **kwargs) == FaultPlan.random(
        seed=seed, **kwargs
    )


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 8), st.integers(0, 2**31 - 1))
def test_random_plan_always_leaves_a_survivor(world, seed):
    plan = FaultPlan.random(
        num_gpus=world, horizon=1.0, seed=seed, device_failure_rate=50.0
    )
    assert len(plan.device_failures) < world
    assert all(0 <= f.rank < world for f in plan.device_failures)


@settings(max_examples=100, deadline=None)
@given(world_and_survivors())
def test_remap_then_remap_composes(ws):
    """Shrinking twice equals shrinking once to the composed subset."""
    world, survivors = ws
    plan = FaultPlan(
        device_failures=tuple(
            DeviceFailure(rank=r, time=0.1 + 0.01 * r) for r in range(world)
        ),
        stragglers=tuple(
            StragglerSlowdown(rank=r, factor=2.0, start=0.0, end=1.0)
            for r in range(world)
        ),
    )
    once = remap_plan(plan, survivors)
    # drop the last survivor in a second step
    if len(survivors) > 1:
        second = list(range(len(survivors) - 1))
        twice = remap_plan(once, second)
        direct = remap_plan(plan, survivors[:-1])
        assert twice == direct
