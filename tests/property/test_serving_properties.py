"""Property tests: served logits equal the eager full-batch forward.

The serving engine answers queries with cached embeddings plus partial
recompute over the uncached frontier. These tests drive it through
arbitrary interleavings of queries, cache evictions (tiny capacities),
model-version bumps, and a mid-stream device failure, asserting after
every step that the returned logits match a freshly computed
full-batch :class:`ReferenceGCN` forward under the live weights — i.e.
the cache is *transparent*: no stale row, no partially-updated layer,
no post-fault placement change ever leaks into the output.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import load_dataset
from repro.hardware import dgx_a100
from repro.nn import GCNModelSpec
from repro.nn.init import init_weights
from repro.nn.reference import ReferenceGCN
from repro.resilience.faults import DeviceFailure, FaultPlan
from repro.serve import InferenceRequest, ServingConfig, ServingEngine

pytestmark = pytest.mark.serving

# The partial path performs the same float32 operations as the full
# forward, but BLAS may pick a different kernel for oddly-shaped frontier
# GeMMs, reassociating the k-sum. The padding in the engine pins the
# common shapes to the full-batch kernel; the atol floor absorbs the
# residual reassociation noise on adversarial shapes (~1e-5 absolute for
# k ~ thousands in float32).
RTOL = 1e-6
ATOL = 1e-5


def _dataset():
    return load_dataset("cora", scale=0.1, learnable=True, seed=1)


DATASET = _dataset()
SPEC = GCNModelSpec.build(DATASET.d0, 12, DATASET.num_classes, 3)
BASE_WEIGHTS = init_weights(SPEC.layer_dims, seed=0)


def reference_logits(weights):
    ref = ReferenceGCN(DATASET, SPEC, seed=0)
    ref.weights = [np.asarray(w, dtype=np.float32) for w in weights]
    return ref.forward()[-1]


@st.composite
def interleavings(draw):
    """A script of query / evict-pressure / version-bump steps."""
    steps = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("query"),
                    st.lists(
                        st.integers(0, DATASET.n - 1), min_size=1, max_size=5
                    ),
                ),
                st.just(("bump",)),
            ),
            min_size=1,
            max_size=12,
        )
    )
    capacity = draw(st.sampled_from([0, 7, 64, 4 * DATASET.n]))
    pinned = draw(st.sampled_from([0, 3]))
    return steps, capacity, pinned


@settings(max_examples=25, deadline=None)
@given(interleavings())
def test_cache_is_transparent_under_interleavings(script):
    """Queries, LRU evictions, and version bumps never change logits."""
    steps, capacity, pinned = script
    engine = ServingEngine(
        DATASET,
        BASE_WEIGHTS,
        SPEC,
        config=ServingConfig(
            machine=dgx_a100(),
            num_gpus=3,
            cache_entries=capacity,
            num_pinned=pinned if capacity else 0,
        ),
    )
    scale = 1.0
    expected = reference_logits(BASE_WEIGHTS)
    for step in steps:
        if step[0] == "bump":
            scale *= 1.25
            engine.update_weights([w * scale for w in BASE_WEIGHTS])
            expected = reference_logits([w * scale for w in BASE_WEIGHTS])
        else:
            targets = step[1]
            got = engine.query(targets)
            np.testing.assert_allclose(
                got, expected[targets], rtol=RTOL, atol=ATOL
            )


@settings(max_examples=10, deadline=None)
@given(
    st.integers(0, 2),
    st.lists(st.integers(0, DATASET.n - 1), min_size=4, max_size=10),
    st.integers(0, 2**31 - 1),
)
def test_degraded_mode_is_transparent(dead_rank, targets, seed):
    """Losing any device mid-stream never changes the served logits."""
    fault_plan = FaultPlan(
        device_failures=(DeviceFailure(rank=dead_rank, time=1e-4),)
    )
    engine = ServingEngine(
        DATASET,
        BASE_WEIGHTS,
        SPEC,
        config=ServingConfig(
            machine=dgx_a100(),
            num_gpus=3,
            cache_entries=4 * DATASET.n,
            fault_plan=fault_plan,
            max_batch_size=4,
            max_wait=1e-4,
        ),
    )
    engine.warm_cache()
    rng = np.random.default_rng(seed)
    requests = [
        InferenceRequest(
            request_id=i,
            vertices=(int(v),),
            arrival=float(i) * float(rng.uniform(5e-5, 2e-4)),
        )
        for i, v in enumerate(targets)
    ]
    result = engine.serve(requests)
    assert dead_rank not in engine.alive_ranks
    expected = reference_logits(BASE_WEIGHTS)
    for r in requests:
        np.testing.assert_allclose(
            result.logits[r.request_id],
            expected[list(r.vertices)],
            rtol=RTOL,
            atol=ATOL,
        )
