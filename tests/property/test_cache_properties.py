"""Property tests: the training tile cache is semantically invisible.

At ``staleness_epochs=0`` every epoch is a refresh epoch and the cached
replica is rewritten write-through before being scattered, so training
with the cache MUST be bit-for-bit identical to training without it —
for any config, under arbitrary evict/clear interleavings between
epochs, and under (timing-only) fault injection.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import MGGCNTrainer, TrainerConfig
from repro.datasets.loader import Dataset
from repro.datasets import planted_partition_dataset
from repro.hardware import dgx1
from repro.nn import GCNModelSpec
from repro.resilience import (
    FaultInjector,
    FaultPlan,
    LinkDegradation,
    StragglerSlowdown,
)


def _make_dataset(n, classes, d0, seed):
    adj, x, y, train, val, test = planted_partition_dataset(
        n, num_classes=classes, feature_dim=d0, avg_degree=6.0, seed=seed
    )
    return Dataset(
        name=f"cacheprop-{seed}",
        adjacency=adj,
        features=x,
        labels=y,
        train_mask=train,
        val_mask=val,
        test_mask=test,
        num_classes=classes,
    )


def _train(ds, model, seed, epochs, *, staleness=None, budget=None,
           interleave=None, fault_injector=None, capture=False):
    cfg = TrainerConfig(
        first_layer_skip=False,
        seed=seed,
        cache_staleness_epochs=staleness,
        cache_budget_bytes=budget,
        fault_injector=fault_injector,
        capture_epochs=capture,
    )
    trainer = MGGCNTrainer(ds, model, machine=dgx1(), num_gpus=4, config=cfg)
    for epoch in range(epochs):
        trainer.train_epoch()
        if interleave is not None:
            interleave(trainer, epoch)
    return trainer.get_weights()


@settings(max_examples=10, deadline=None)
@given(
    st.integers(40, 100),  # vertices
    st.integers(2, 3),  # classes
    st.integers(4, 10),  # feature dim
    st.sampled_from([None, 256, 10**9]),  # byte budget
    st.integers(2, 4),  # epochs
    st.integers(0, 2**31 - 1),
)
def test_staleness_zero_is_bitwise_transparent(
    n, classes, d0, budget, epochs, seed
):
    ds = _make_dataset(n, classes, d0, seed)
    model = GCNModelSpec.build(d0, 8, classes, 2)
    base = _train(ds, model, seed, epochs)
    cached = _train(ds, model, seed, epochs, staleness=0, budget=budget)
    for a, b in zip(base, cached):
        assert np.array_equal(a, b)


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 2**31 - 1), st.integers(0, 2**31 - 1))
def test_transparent_under_random_evict_clear_interleavings(seed, evict_seed):
    """Evicting or clearing entries between epochs only changes *plans*
    (what is intercepted next epoch), never the training values."""
    ds = _make_dataset(80, 3, 8, seed)
    model = GCNModelSpec.build(8, 8, 3, 2)
    rng = np.random.default_rng(evict_seed)

    def interleave(trainer, epoch):
        cache = trainer.training_cache
        assert cache is not None
        if rng.random() < 0.3:
            cache.clear()
            return
        for key in cache.entry_keys():
            if rng.random() < 0.5:
                assert cache.evict(*key)

    base = _train(ds, model, seed, 4)
    cached = _train(
        ds, model, seed, 4, staleness=0, budget=10**9, interleave=interleave
    )
    for a, b in zip(base, cached):
        assert np.array_equal(a, b)


@settings(max_examples=6, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_transparent_under_timing_faults(seed):
    """Stragglers and link degradations reshape the timeline, not the
    data — the cache must stay bitwise transparent when they fire."""
    ds = _make_dataset(60, 2, 6, seed)
    model = GCNModelSpec.build(6, 8, 2, 2)

    def injector():
        plan = FaultPlan(
            stragglers=(
                StragglerSlowdown(rank=1, factor=3.0, start=0.0, end=1e9),
            ),
            link_degradations=(
                LinkDegradation(factor=0.25, start=0.0, end=1e9),
            ),
        )
        return FaultInjector(plan)

    base = _train(ds, model, seed, 3, fault_injector=injector())
    cached = _train(
        ds, model, seed, 3, staleness=0, budget=10**9,
        fault_injector=injector(),
    )
    for a, b in zip(base, cached):
        assert np.array_equal(a, b)


@settings(max_examples=8, deadline=None)
@given(st.integers(1, 3), st.integers(2, 6), st.integers(0, 2**31 - 1))
def test_serve_epochs_never_send_more_than_full(staleness, epochs, seed):
    """For ANY staleness, an intercepted broadcast sends at most the
    full tile, hit-rate stays in [0, 1], and the counters reconcile."""
    ds = _make_dataset(80, 3, 8, seed)
    model = GCNModelSpec.build(8, 8, 3, 2)
    cfg = TrainerConfig(
        first_layer_skip=False,
        seed=seed,
        cache_staleness_epochs=staleness,
        cache_budget_bytes=10**9,
    )
    trainer = MGGCNTrainer(ds, model, machine=dgx1(), num_gpus=4, config=cfg)
    cache = trainer.training_cache
    assert cache is not None
    for _ in range(epochs):
        trainer.train_epoch()
        ep = cache.epoch
        assert 0 <= ep.bytes_sent <= ep.bytes_full
        assert 0.0 <= ep.hit_rate <= 1.0
        assert ep.bytes_saved == ep.bytes_full - ep.bytes_sent
    total = cache.total
    assert total.intercepts > 0
    assert total.bytes_saved > 0  # serve epochs happened (staleness >= 1)
