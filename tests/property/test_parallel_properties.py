"""Property tests: planner memory safety and hierarchy invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm import Communicator
from repro.datasets.loader import SymbolicDataset
from repro.device import MemoryPool, SimContext
from repro.hardware import dgx1, multi_node_cluster
from repro.nn import GCNModelSpec
from repro.parallel import (
    HierarchicalCommunicator,
    ParallelismPlanner,
    node_groups,
)

_dataset = st.builds(
    SymbolicDataset,
    name=st.just("prop"),
    n=st.integers(1_000, 500_000),
    m=st.integers(10_000, 5_000_000),
    d0=st.sampled_from([32, 128, 602]),
    num_classes=st.just(16),
)


class TestPlannerMemorySafety:
    @settings(max_examples=40, deadline=None)
    @given(
        dataset=_dataset,
        hidden=st.sampled_from([16, 64, 256]),
        layers=st.integers(1, 3),
        nodes=st.sampled_from([1, 2, 4]),
    )
    def test_choices_fit_in_gpu_memory(self, dataset, hidden, layers, nodes):
        """Whatever the planner picks, its own memory estimate — baseline
        trainer state plus every chosen scheme's extra footprint — must
        reserve cleanly inside a real per-GPU MemoryPool."""
        machine = multi_node_cluster(nodes, dgx1()) if nodes > 1 else dgx1()
        model = GCNModelSpec.build(
            dataset.d0, hidden, dataset.num_classes, layers
        )
        planner = ParallelismPlanner(dataset, model, machine)
        plan = planner.plan()
        pool = MemoryPool(capacity=machine.gpu.memory_bytes, name="prop")
        pool.allocate(planner._baseline_memory(), tag="baseline")
        if plan.extra_memory_per_gpu:
            pool.allocate(plan.extra_memory_per_gpu, tag="allgather")
        # never chosen infeasible
        for choice in plan.choices:
            assert choice.candidate(choice.scheme).feasible

    @settings(max_examples=40, deadline=None)
    @given(
        dataset=_dataset,
        nodes=st.sampled_from([1, 2]),
        hidden=st.sampled_from([16, 128]),
    )
    def test_mixture_estimate_is_min_of_feasible_choices(
        self, dataset, nodes, hidden
    ):
        machine = multi_node_cluster(nodes, dgx1()) if nodes > 1 else dgx1()
        model = GCNModelSpec.build(dataset.d0, hidden, dataset.num_classes, 2)
        plan = ParallelismPlanner(dataset, model, machine).plan()
        for choice in plan.choices:
            chosen = choice.candidate(choice.scheme)
            for cand in choice.candidates:
                if cand.feasible and cand.scheme != choice.scheme:
                    # conservatism margin only ever favours staged schemes
                    assert chosen.total <= cand.total / 0.899


class TestHierarchyInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        nodes=st.sampled_from([2, 3, 4]),
        seed=st.integers(0, 2**16),
        nbytes=st.sampled_from([4096, 1 << 20, 16 << 20]),
    )
    def test_durations_positive_and_tree_scales_mildly(
        self, nodes, seed, nbytes
    ):
        cluster = multi_node_cluster(nodes, dgx1())
        ctx = SimContext(cluster, num_gpus=nodes * 8)
        hier = HierarchicalCommunicator(ctx)
        flat = Communicator(ctx)
        for duration in (
            hier.broadcast_duration(0, nbytes),
            hier.allreduce_duration(nbytes),
            hier.allgather_duration(nbytes),
        ):
            assert duration > 0
        # the hierarchy's bandwidth term can never exceed flat's by more
        # than its phase count (it moves the same bytes over faster or
        # equal links); for bandwidth-bound payloads it must win outright
        if nbytes >= 1 << 20:
            assert hier.allreduce_duration(nbytes) < flat.allreduce_duration(
                nbytes
            )

    @settings(max_examples=30, deadline=None)
    @given(
        nodes=st.sampled_from([1, 2, 4]),
        data=st.data(),
    )
    def test_node_groups_partition_any_rank_subset(self, nodes, data):
        cluster = multi_node_cluster(nodes, dgx1()) if nodes > 1 else dgx1()
        ranks = data.draw(
            st.lists(
                st.integers(0, cluster.num_gpus - 1),
                min_size=1,
                max_size=cluster.num_gpus,
                unique=True,
            )
        )
        groups = node_groups(cluster, ranks)
        flattened = [r for g in groups for r in g]
        assert sorted(flattened) == sorted(ranks)
        for group in groups:
            assert len({cluster.node_of(r) for r in group}) == 1
