"""Property tests: partition vectors and permutations."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sparse import (
    COOMatrix,
    apply_permutation,
    invert_permutation,
    random_permutation,
    uniform_partition,
)
from repro.sparse.permutation import permute_rows


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 500), st.integers(1, 32))
def test_uniform_partition_covers_everything(n, parts):
    p = uniform_partition(n, parts)
    assert p.num_parts == parts
    assert p.total == n
    assert sum(p.sizes()) == n
    sizes = p.sizes()
    assert max(sizes) - min(sizes) <= 1  # near-equal


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 500), st.integers(1, 32))
def test_owner_consistent_with_parts(n, parts):
    p = uniform_partition(n, parts)
    rng = np.random.default_rng(0)
    for idx in rng.integers(0, n, size=min(n, 16)):
        owner = p.owner(int(idx))
        lo, hi = p.part(owner)
        assert lo <= idx < hi


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 300), st.integers(0, 2**31 - 1))
def test_permutation_bijective(n, seed):
    perm = random_permutation(n, seed=seed)
    assert np.array_equal(np.sort(perm), np.arange(n))


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 300), st.integers(0, 2**31 - 1))
def test_inverse_composes_to_identity(n, seed):
    perm = random_permutation(n, seed=seed)
    inv = invert_permutation(perm)
    assert np.array_equal(perm[inv], np.arange(n))


@settings(max_examples=50, deadline=None)
@given(st.integers(2, 40), st.integers(0, 2**31 - 1))
def test_symmetric_permutation_preserves_structure(n, seed):
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < 0.3).astype(np.float32)
    coo = COOMatrix(dense.shape, *np.nonzero(dense))
    perm = random_permutation(n, seed=seed + 1)
    permuted = apply_permutation(coo, perm)
    assert permuted.nnz == coo.nnz
    # degree multiset preserved
    assert sorted(permuted.row_degrees()) == sorted(coo.row_degrees())
    # applying inverse restores the matrix
    restored = apply_permutation(permuted, invert_permutation(perm))
    assert np.allclose(restored.to_dense(), coo.to_dense())


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 100), st.integers(1, 5), st.integers(0, 2**31 - 1))
def test_permute_rows_invertible(n, d, seed):
    rng = np.random.default_rng(seed)
    arr = rng.standard_normal((n, d))
    perm = random_permutation(n, seed=seed)
    out = permute_rows(arr, perm)
    back = out[perm]  # out[perm[i]] == arr[i]
    assert np.allclose(back, arr)


@settings(max_examples=50, deadline=None)
@given(st.integers(2, 40), st.integers(1, 8), st.integers(0, 2**31 - 1))
def test_permutation_preserves_spmm_result(n, d, seed):
    """Training math is permutation-equivariant: P A P^T (P x) = P (A x).
    This is the invariant that makes §5.2's permutation trick safe."""
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < 0.4).astype(np.float32)
    coo = COOMatrix(dense.shape, *np.nonzero(dense))
    x = rng.standard_normal((n, d)).astype(np.float32)
    perm = random_permutation(n, seed=seed + 7)

    from repro.sparse import CSRMatrix

    y_plain = CSRMatrix.from_coo(coo).spmm(x)
    permuted = CSRMatrix.from_coo(apply_permutation(coo, perm))
    y_perm = permuted.spmm(permute_rows(x, perm))
    assert np.allclose(permute_rows(y_plain, perm), y_perm, atol=1e-3)
