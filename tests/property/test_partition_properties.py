"""Property tests: partition vectors and permutations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparse import (
    COOMatrix,
    apply_permutation,
    invert_permutation,
    random_permutation,
    uniform_partition,
)
from repro.sparse.partition import PartitionError, weighted_cost_partition
from repro.sparse.permutation import permute_rows


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 500), st.integers(1, 32))
def test_uniform_partition_covers_everything(n, parts):
    p = uniform_partition(n, parts)
    assert p.num_parts == parts
    assert p.total == n
    assert sum(p.sizes()) == n
    sizes = p.sizes()
    assert max(sizes) - min(sizes) <= 1  # near-equal


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 500), st.integers(1, 32))
def test_owner_consistent_with_parts(n, parts):
    p = uniform_partition(n, parts)
    rng = np.random.default_rng(0)
    for idx in rng.integers(0, n, size=min(n, 16)):
        owner = p.owner(int(idx))
        lo, hi = p.part(owner)
        assert lo <= idx < hi


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 300), st.integers(0, 2**31 - 1))
def test_permutation_bijective(n, seed):
    perm = random_permutation(n, seed=seed)
    assert np.array_equal(np.sort(perm), np.arange(n))


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 300), st.integers(0, 2**31 - 1))
def test_inverse_composes_to_identity(n, seed):
    perm = random_permutation(n, seed=seed)
    inv = invert_permutation(perm)
    assert np.array_equal(perm[inv], np.arange(n))


@settings(max_examples=50, deadline=None)
@given(st.integers(2, 40), st.integers(0, 2**31 - 1))
def test_symmetric_permutation_preserves_structure(n, seed):
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < 0.3).astype(np.float32)
    coo = COOMatrix(dense.shape, *np.nonzero(dense))
    perm = random_permutation(n, seed=seed + 1)
    permuted = apply_permutation(coo, perm)
    assert permuted.nnz == coo.nnz
    # degree multiset preserved
    assert sorted(permuted.row_degrees()) == sorted(coo.row_degrees())
    # applying inverse restores the matrix
    restored = apply_permutation(permuted, invert_permutation(perm))
    assert np.allclose(restored.to_dense(), coo.to_dense())


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 100), st.integers(1, 5), st.integers(0, 2**31 - 1))
def test_permute_rows_invertible(n, d, seed):
    rng = np.random.default_rng(seed)
    arr = rng.standard_normal((n, d))
    perm = random_permutation(n, seed=seed)
    out = permute_rows(arr, perm)
    back = out[perm]  # out[perm[i]] == arr[i]
    assert np.allclose(back, arr)


@settings(max_examples=50, deadline=None)
@given(st.integers(2, 40), st.integers(1, 8), st.integers(0, 2**31 - 1))
def test_permutation_preserves_spmm_result(n, d, seed):
    """Training math is permutation-equivariant: P A P^T (P x) = P (A x).
    This is the invariant that makes §5.2's permutation trick safe."""
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) < 0.4).astype(np.float32)
    coo = COOMatrix(dense.shape, *np.nonzero(dense))
    x = rng.standard_normal((n, d)).astype(np.float32)
    perm = random_permutation(n, seed=seed + 7)

    from repro.sparse import CSRMatrix

    y_plain = CSRMatrix.from_coo(coo).spmm(x)
    permuted = CSRMatrix.from_coo(apply_permutation(coo, perm))
    y_perm = permuted.spmm(permute_rows(x, perm))
    assert np.allclose(permute_rows(y_plain, perm), y_perm, atol=1e-3)


def _assert_valid_cover(p, n, parts):
    """Contiguous, monotone, full-cover; non-empty wherever possible."""
    b = list(p.boundaries)
    assert b[0] == 0 and b[-1] == n
    assert all(x <= y for x, y in zip(b, b[1:]))
    assert p.num_parts == parts
    assert sum(p.sizes()) == n
    if n >= parts:
        assert min(p.sizes()) >= 1


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 400), st.integers(0, 2**31 - 1))
def test_weighted_cost_single_part_takes_everything(n, seed):
    rng = np.random.default_rng(seed)
    costs = rng.random(n)
    p = weighted_cost_partition(costs, [1.0])
    _assert_valid_cover(p, n, 1)
    assert p.sizes() == [n]


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 400), st.integers(1, 16))
def test_weighted_cost_all_zero_costs_still_covers(n, parts):
    """Isolated graphs (every vertex zero-nnz) must still yield a legal
    cut — zero cost rows carry no signal but rows still need owners."""
    p = weighted_cost_partition(np.zeros(n), np.ones(parts))
    _assert_valid_cover(p, n, parts)


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 400), st.integers(1, 16), st.integers(0, 2**31 - 1))
def test_weighted_cost_uniform_capacities_cover(n, parts, seed):
    rng = np.random.default_rng(seed)
    costs = rng.random(n)
    p = weighted_cost_partition(costs, np.ones(parts))
    _assert_valid_cover(p, n, parts)


@settings(max_examples=100, deadline=None)
@given(st.integers(2, 400), st.integers(2, 16), st.integers(0, 2**31 - 1))
def test_weighted_cost_zero_nnz_tail_not_starving(n, parts, seed):
    """A block of zero-cost (isolated) rows at the tail must not leave
    trailing parts empty when there are enough rows to go around."""
    rng = np.random.default_rng(seed)
    costs = np.concatenate([rng.random(n // 2 + 1), np.zeros(n - n // 2 - 1)])
    p = weighted_cost_partition(costs, np.ones(parts))
    _assert_valid_cover(p, n, parts)


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 400), st.integers(1, 8), st.integers(0, 2**31 - 1))
def test_weighted_cost_fewer_rows_than_parts(n, extra, seed):
    """n < parts: cover everything; some parts are necessarily empty."""
    parts = n + extra
    rng = np.random.default_rng(seed)
    costs = rng.random(n)
    p = weighted_cost_partition(costs, np.ones(parts))
    b = list(p.boundaries)
    assert b[0] == 0 and b[-1] == n
    assert all(x <= y for x, y in zip(b, b[1:]))
    assert sum(p.sizes()) == n


@settings(max_examples=50, deadline=None)
@given(st.integers(16, 400), st.integers(2, 8), st.integers(0, 2**31 - 1))
def test_weighted_cost_tracks_capacity_ratio(n, parts, seed):
    """With flat costs, per-part cost shares track the capacity shares
    (the injection-bandwidth-proportional split resource_aware uses)."""
    rng = np.random.default_rng(seed)
    caps = rng.uniform(0.5, 2.0, size=parts)
    costs = np.ones(n)
    p = weighted_cost_partition(costs, caps)
    _assert_valid_cover(p, n, parts)
    shares = np.asarray(p.sizes()) / n
    want = caps / caps.sum()
    assert np.all(np.abs(shares - want) <= (parts + 1) / n)


def test_weighted_cost_rejects_bad_inputs():
    with pytest.raises(PartitionError):
        weighted_cost_partition(np.ones((2, 2)), [1.0])
    with pytest.raises(PartitionError):
        weighted_cost_partition(np.array([1.0, -1.0]), [1.0])
    with pytest.raises(PartitionError):
        weighted_cost_partition(np.ones(4), [])
    with pytest.raises(PartitionError):
        weighted_cost_partition(np.ones(4), [1.0, 0.0])
