"""Property tests: cost-model monotonicity and memory-pool safety."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.device import MemoryPool
from repro.errors import DeviceOutOfMemoryError
from repro.hardware.machines import A100, V100
from repro.kernels import CostModel


class TestCostMonotonicity:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(1, 10_000), st.integers(1, 512), st.integers(1, 512),
    )
    def test_gemm_time_positive_and_near_monotone_in_m(self, m, n, k):
        """Under-saturated GEMMs may get *slightly* faster per call as m
        grows (B's load amortises while occupancy rises), so we assert
        near-monotonicity rather than strict monotonicity."""
        cost = CostModel(V100)
        t1 = cost.gemm_time(m, n, k)
        t2 = cost.gemm_time(2 * m, n, k)
        assert t1 > 0
        assert t2 >= 0.9 * t1

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(1, 100_000),
        st.integers(0, 1_000_000),
        st.integers(1, 512),
    )
    def test_spmm_time_monotone_in_nnz(self, rows, nnz, d):
        cost = CostModel(V100)
        t1 = cost.spmm_time(rows, nnz, d, dense_rows=rows)
        t2 = cost.spmm_time(rows, nnz + 1000, d, dense_rows=rows)
        assert 0 < t1 <= t2

    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 50_000), st.integers(1, 1_000_000), st.integers(1, 256))
    def test_spmm_traffic_monotone_in_dense_rows(self, rows, nnz, d):
        """Bigger dense working sets can never reduce traffic — the
        foundation of the tiling benefit."""
        cost = CostModel(A100)
        small = cost.spmm_traffic(rows, nnz, d, dense_rows=rows)
        big = cost.spmm_traffic(rows, nnz, d, dense_rows=rows * 16)
        assert small <= big

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(1, 100_000), st.integers(1, 1_000_000), st.integers(1, 512),
        st.floats(0.1, 1.0),
    )
    def test_bw_fraction_never_speeds_up(self, rows, nnz, d, frac):
        cost = CostModel(V100)
        full = cost.spmm_time(rows, nnz, d, rows, bw_fraction=1.0)
        shared = cost.spmm_time(rows, nnz, d, rows, bw_fraction=frac)
        assert shared >= full * 0.999


class TestMemoryPoolProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(1, 10_000), min_size=1, max_size=40))
    def test_alloc_free_conservation(self, sizes):
        pool = MemoryPool(capacity=1 << 30)
        allocs = [pool.allocate(s) for s in sizes]
        assert pool.in_use == sum(a.nbytes for a in allocs)
        for a in allocs:
            a.free()
        assert pool.in_use == 0
        assert pool.live_allocations == 0

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(1, 5000), st.booleans()),
            min_size=1, max_size=60,
        )
    )
    def test_peak_is_max_of_in_use(self, ops):
        pool = MemoryPool(capacity=1 << 30)
        live = []
        observed_peak = 0
        for size, free_one in ops:
            if free_one and live:
                live.pop().free()
            else:
                live.append(pool.allocate(size))
            observed_peak = max(observed_peak, pool.in_use)
        assert pool.peak == observed_peak

    @settings(max_examples=40, deadline=None)
    @given(st.integers(256, 1 << 20), st.integers(1, 64))
    def test_capacity_never_exceeded(self, capacity, attempts):
        pool = MemoryPool(capacity=capacity)
        import numpy as np

        rng = np.random.default_rng(attempts)
        for _ in range(attempts):
            size = int(rng.integers(1, capacity))
            try:
                pool.allocate(size)
            except DeviceOutOfMemoryError:
                pass
            assert pool.in_use <= pool.capacity
