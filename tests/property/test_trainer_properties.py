"""Property tests: trainer invariants across random configurations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import MGGCNTrainer, TrainerConfig
from repro.datasets import load_dataset, planted_partition_dataset
from repro.datasets.loader import Dataset
from repro.hardware import dgx1
from repro.nn import GCNModelSpec, ReferenceGCN


def _make_dataset(n, classes, d0, seed):
    adj, x, y, train, val, test = planted_partition_dataset(
        n, num_classes=classes, feature_dim=d0, avg_degree=6.0, seed=seed
    )
    return Dataset(
        name=f"prop-{seed}",
        adjacency=adj,
        features=x,
        labels=y,
        train_mask=train,
        val_mask=val,
        test_mask=test,
        num_classes=classes,
    )


@settings(max_examples=12, deadline=None)
@given(
    st.integers(40, 120),  # vertices
    st.integers(2, 4),  # classes
    st.integers(4, 12),  # feature dim
    st.integers(4, 16),  # hidden dim
    st.sampled_from([1, 2, 4, 8]),  # GPUs
    st.booleans(),  # overlap
    st.booleans(),  # permute
    st.integers(0, 2**31 - 1),
)
def test_distributed_equals_reference(
    n, classes, d0, hidden, gpus, overlap, permute, seed
):
    """For ANY random config, one epoch of the multi-GPU trainer must
    leave the weights exactly where the single-process oracle does."""
    ds = _make_dataset(n, classes, d0, seed)
    model = GCNModelSpec.build(d0, hidden, classes, 2)
    cfg = TrainerConfig(
        permute=permute, overlap=overlap, first_layer_skip=False, seed=seed
    )
    trainer = MGGCNTrainer(ds, model, machine=dgx1(), num_gpus=gpus, config=cfg)
    ref = ReferenceGCN(ds, model, seed=seed, first_layer_skip=False)
    stats = trainer.train_epoch()
    ref_loss = ref.train_epoch()
    assert stats.loss == pytest.approx(ref_loss, rel=1e-4, abs=1e-6)
    for a, b in zip(trainer.get_weights(), ref.weights):
        assert np.allclose(a, b, rtol=5e-3, atol=5e-5)


@settings(max_examples=10, deadline=None)
@given(
    st.sampled_from([1, 2, 4, 8]),
    st.integers(0, 2**31 - 1),
)
def test_epoch_time_positive_and_trace_consistent(gpus, seed):
    ds = _make_dataset(80, 3, 8, seed)
    model = GCNModelSpec.build(8, 8, 3, 2)
    trainer = MGGCNTrainer(ds, model, machine=dgx1(), num_gpus=gpus)
    stats = trainer.train_epoch()
    assert stats.epoch_time > 0
    # every traced op fits inside the epoch
    for ev in stats.trace:
        assert ev.end <= stats.epoch_time * (1 + 1e-9) + ev.start
        assert ev.duration >= 0
    # epoch time equals the max completion over all trace events
    assert stats.epoch_time == pytest.approx(max(ev.end for ev in stats.trace))


@settings(max_examples=10, deadline=None)
@given(st.sampled_from([2, 4, 8]), st.integers(0, 2**31 - 1))
def test_memory_shrinks_with_more_gpus(gpus, seed):
    ds = _make_dataset(200, 3, 16, seed)
    model = GCNModelSpec.build(16, 16, 3, 2)
    one = MGGCNTrainer(ds, model, machine=dgx1(), num_gpus=1)
    many = MGGCNTrainer(ds, model, machine=dgx1(), num_gpus=gpus)
    # partitioned state (features + adjacency + buffers) dominates the
    # replicated weights at this size, so per-GPU memory must drop.
    assert many.ctx.peak_memory() < one.ctx.peak_memory()


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_loss_sequence_deterministic(seed):
    ds = _make_dataset(100, 3, 8, seed)
    model = GCNModelSpec.build(8, 8, 3, 2)
    cfg = TrainerConfig(seed=seed)
    a = MGGCNTrainer(ds, model, machine=dgx1(), num_gpus=4, config=cfg)
    b = MGGCNTrainer(ds, model, machine=dgx1(), num_gpus=4, config=cfg)
    losses_a = [s.loss for s in a.fit(3)]
    losses_b = [s.loss for s in b.fit(3)]
    assert losses_a == losses_b
