"""Property tests: neighbour sampling invariants + generator families."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import BTERConfig, RMATConfig, bter_graph, rmat_graph
from repro.datasets.bter import arxiv_like_degrees
from repro.sampling import NeighborSampler, neighborhood_expansion
from repro.sparse import COOMatrix, CSRMatrix


def _random_graph(n, density_seed):
    rng = np.random.default_rng(density_seed)
    dense = (rng.random((n, n)) < 0.2).astype(np.float32)
    np.fill_diagonal(dense, 0.0)
    return CSRMatrix.from_dense(dense)


class TestSamplerProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(10, 40),       # graph size
        st.integers(1, 3),         # layers
        st.integers(1, 6),         # fanout
        st.integers(0, 2**31 - 1), # seed
    )
    def test_blocks_chain_and_respect_fanout(self, n, layers, fanout, seed):
        adj = _random_graph(n, seed)
        sampler = NeighborSampler(adj, fanouts=[fanout] * layers)
        rng = np.random.default_rng(seed)
        seeds = np.unique(rng.integers(0, n, size=min(5, n)))
        blocks = sampler.sample(seeds, rng=rng)
        assert len(blocks) == layers
        assert np.array_equal(np.sort(blocks[-1].dst_nodes), seeds)
        for a, b in zip(blocks[:-1], blocks[1:]):
            assert np.array_equal(a.dst_nodes, b.src_nodes)
        for block in blocks:
            assert block.adjacency.row_nnz().max() <= fanout
            # destination prefix convention
            assert np.array_equal(
                block.src_nodes[: block.num_dst], block.dst_nodes
            )
            # sampled edges exist in the real graph
            dense = adj.to_dense()
            brows = np.repeat(
                np.arange(block.num_dst), block.adjacency.row_nnz()
            )
            for local_dst, local_src in zip(brows, block.adjacency.indices):
                u = int(block.dst_nodes[local_dst])
                v = int(block.src_nodes[local_src])
                assert dense[u, v] != 0.0

    @settings(max_examples=25, deadline=None)
    @given(st.integers(10, 60), st.integers(0, 3), st.integers(0, 2**31 - 1))
    def test_expansion_monotone_bounded(self, n, hops, seed):
        adj = _random_graph(n, seed)
        rng = np.random.default_rng(seed)
        seeds = np.unique(rng.integers(0, n, size=3))
        sizes = neighborhood_expansion(adj, seeds, hops=hops)
        assert len(sizes) == hops + 1
        assert sizes[0] == seeds.size
        assert all(b >= a for a, b in zip(sizes, sizes[1:]))
        assert sizes[-1] <= n


class TestGeneratorProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(5, 9), st.integers(2, 8), st.integers(0, 2**31 - 1))
    def test_rmat_always_valid_symmetric(self, scale, ef, seed):
        g = rmat_graph(RMATConfig(scale=scale, edge_factor=ef), seed=seed)
        assert g.shape == (1 << scale, 1 << scale)
        assert not np.any(g.rows == g.cols)
        dense = g.to_dense()
        assert np.array_equal(dense, dense.T)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(100, 400), st.integers(1, 4), st.integers(0, 2**31 - 1))
    def test_bter_mean_degree_tracks_scale(self, n, scale, seed):
        degrees = arxiv_like_degrees(n, scale=scale)
        g = bter_graph(BTERConfig(degrees=degrees, clustering=0.2), seed=seed)
        realized = g.nnz / n
        target = degrees.mean()
        assert 0.3 * target <= realized <= 2.5 * target

    @settings(max_examples=15, deadline=None)
    @given(st.integers(20, 100), st.integers(0, 2**31 - 1))
    def test_bter_graphs_are_simple(self, n, seed):
        degrees = np.maximum(
            np.random.default_rng(seed).integers(1, 8, size=n), 1
        )
        g = bter_graph(BTERConfig(degrees=degrees), seed=seed)
        # no self loops, symmetric, 0/1 values
        assert not np.any(g.rows == g.cols)
        dense = g.to_dense()
        assert np.array_equal(dense, dense.T)
        assert set(np.unique(g.vals)) <= {1.0}
