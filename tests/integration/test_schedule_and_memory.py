"""Schedule-level and memory-level integration checks.

These tests assert the *systems* behaviour the paper claims: overlap
hides communication, permutation balances stages, buffer counts follow
the L+3 law, and the OOM boundaries land where Table 3 / Fig. 10 put
them.
"""

import numpy as np
import pytest

from repro.baselines import CAGNETTrainer, DGLLikeTrainer
from repro.core import MGGCNTrainer, TrainerConfig
from repro.datasets import load_dataset
from repro.errors import DeviceOutOfMemoryError
from repro.hardware import dgx1, dgx_a100
from repro.nn import GCNModelSpec
from repro.profiling import extract_stage_timeline, spmm_span


@pytest.fixture(scope="module")
def products_scaled():
    return load_dataset("products", scale=0.002, seed=41)


class TestOverlapSchedule:
    def test_overlap_shortens_spmm(self, products_scaled):
        model = GCNModelSpec.paper_model(1, products_scaled.d0,
                                         products_scaled.num_classes)

        def spmm_time(overlap):
            cfg = TrainerConfig(permute=True, overlap=overlap, seed=41)
            tr = MGGCNTrainer(products_scaled, model, machine=dgx1(),
                              num_gpus=4, config=cfg)
            stats = tr.train_epoch()
            spans = extract_stage_timeline(stats.trace, "fwd0/spmm")
            return spmm_span(spans)

        assert spmm_time(True) < spmm_time(False)

    def test_overlap_comm_hidden_behind_compute(self, products_scaled):
        """In the overlapped schedule, broadcast i+1 starts while SpMM i
        is still running (on every GPU)."""
        model = GCNModelSpec.paper_model(1, products_scaled.d0,
                                         products_scaled.num_classes)
        cfg = TrainerConfig(permute=True, overlap=True, seed=41)
        tr = MGGCNTrainer(products_scaled, model, machine=dgx1(),
                          num_gpus=4, config=cfg)
        stats = tr.train_epoch()
        spans = extract_stage_timeline(stats.trace, "fwd0/spmm")
        comm = {s.stage: s for s in spans if s.kind == "comm" and s.device == "gpu0"}
        comp = {s.stage: s for s in spans if s.kind == "comp" and s.device == "gpu0"}
        # broadcast of stage 1 starts before stage 0's SpMM ends
        assert comm[1].start < comp[0].end

    def test_serialized_comm_not_overlapped(self, products_scaled):
        model = GCNModelSpec.paper_model(1, products_scaled.d0,
                                         products_scaled.num_classes)
        cfg = TrainerConfig(permute=True, overlap=False, seed=41)
        tr = MGGCNTrainer(products_scaled, model, machine=dgx1(),
                          num_gpus=4, config=cfg)
        stats = tr.train_epoch()
        spans = extract_stage_timeline(stats.trace, "fwd0/spmm")
        comm = {s.stage: s for s in spans if s.kind == "comm" and s.device == "gpu0"}
        comp = {s.stage: s for s in spans if s.kind == "comp" and s.device == "gpu0"}
        # broadcast of stage j+1 waits for stage j's SpMM on every rank
        all_comp_ends = {
            s.stage: s.end for s in spans if s.kind == "comp"
        }
        for j in range(1, 4):
            assert comm[j].start >= comp[j - 1].end - 1e-12


class TestPermutationBalance:
    def test_permutation_balances_stage_nnz(self, products_scaled):
        model = GCNModelSpec.paper_model(1, products_scaled.d0,
                                         products_scaled.num_classes)

        def stage_imbalance(permute):
            cfg = TrainerConfig(permute=permute, overlap=False, seed=42)
            tr = MGGCNTrainer(products_scaled, model, machine=dgx1(),
                              num_gpus=4, config=cfg)
            nnz = np.array([tr.graph.stage_nnz(r) for r in range(4)], dtype=float)
            return nnz.max() / nnz.mean()

        assert stage_imbalance(True) < stage_imbalance(False)

    def test_permutation_shortens_epoch(self, products_scaled):
        model = GCNModelSpec.paper_model(1, products_scaled.d0,
                                         products_scaled.num_classes)

        def epoch_time(permute):
            cfg = TrainerConfig(permute=permute, overlap=False, seed=42)
            tr = MGGCNTrainer(products_scaled, model, machine=dgx1(),
                              num_gpus=8, config=cfg)
            return tr.train_epoch().epoch_time

        assert epoch_time(True) < epoch_time(False)


class TestBufferAccounting:
    def test_l_plus_3_buffers(self, products_scaled):
        for L in (2, 3, 4):
            model = GCNModelSpec.build(products_scaled.d0, 32,
                                       products_scaled.num_classes, L)
            tr = MGGCNTrainer(products_scaled, model, machine=dgx1(), num_gpus=4)
            assert tr.buffers[0].num_buffers == L + 3

    def test_single_gpu_l_plus_1(self, products_scaled):
        model = GCNModelSpec.build(products_scaled.d0, 32,
                                   products_scaled.num_classes, 2)
        tr = MGGCNTrainer(products_scaled, model, num_gpus=1)
        # no broadcast buffers on one GPU
        assert tr.buffers[0].num_buffers == 2 + 1

    def test_epoch_does_not_grow_memory(self, products_scaled):
        """Training must run entirely in the preallocated buffers: no
        per-epoch allocation (the paper's central memory claim)."""
        model = GCNModelSpec.paper_model(1, products_scaled.d0,
                                         products_scaled.num_classes)
        tr = MGGCNTrainer(products_scaled, model, machine=dgx1(), num_gpus=4)
        before = [tr.ctx.device(i).memory_in_use for i in range(4)]
        peak_before = tr.ctx.peak_memory()
        tr.fit(3)
        after = [tr.ctx.device(i).memory_in_use for i in range(4)]
        assert before == after
        assert tr.ctx.peak_memory() == peak_before


class TestOOMBoundaries:
    """The paper's memory cells, at full Table-1 scale (symbolic)."""

    def _fits(self, make):
        try:
            make()
            return True
        except DeviceOutOfMemoryError:
            return False

    def test_proteins_mggcn_four_gpus(self):
        ds = load_dataset("proteins", symbolic=True)
        model = GCNModelSpec.paper_model(1, ds.d0, ds.num_classes)
        fits = [
            self._fits(
                lambda P=P: MGGCNTrainer(ds, model, machine=dgx1(), num_gpus=P)
            )
            for P in (1, 2, 4, 8)
        ]
        assert fits == [False, False, True, True]

    def test_proteins_cagnet_never_fits(self):
        ds = load_dataset("proteins", symbolic=True)
        model = GCNModelSpec.paper_model(1, ds.d0, ds.num_classes)
        for P in (1, 2, 4, 8):
            assert not self._fits(
                lambda: CAGNETTrainer(ds, model, machine=dgx1(), num_gpus=P,
                                      permute=True)
            )

    def test_proteins_dgl_oom(self):
        ds = load_dataset("proteins", symbolic=True)
        model = GCNModelSpec.paper_model(1, ds.d0, ds.num_classes)
        assert not self._fits(lambda: DGLLikeTrainer(ds, model, machine=dgx1()))

    def test_papers_needs_eight_a100s(self):
        ds = load_dataset("papers", symbolic=True)
        model = GCNModelSpec.paper_model(4, ds.d0, ds.num_classes)
        fits = [
            self._fits(
                lambda P=P: MGGCNTrainer(ds, model, machine=dgx_a100(), num_gpus=P)
            )
            for P in (1, 2, 4, 8)
        ]
        assert fits == [False, False, False, True]

    def test_reddit_fits_everywhere(self):
        ds = load_dataset("reddit", symbolic=True)
        model = GCNModelSpec.paper_model(1, ds.d0, ds.num_classes)
        for P in (1, 2, 4, 8):
            assert self._fits(
                lambda: MGGCNTrainer(ds, model, machine=dgx1(), num_gpus=P)
            )
