"""Performance-shape integration tests: the paper's qualitative claims.

We do not assert absolute times (the substrate is a simulator), but the
*shape* results the paper reports must hold: who wins, roughly by what
factor, and where crossovers fall.
"""

import pytest

from repro.baselines import CAGNETTrainer, DGLLikeTrainer
from repro.core import MGGCNTrainer
from repro.datasets import load_dataset
from repro.datasets.loader import SymbolicDataset
from repro.hardware import dgx1, dgx_a100
from repro.nn import GCNModelSpec


def _epoch(trainer):
    return trainer.train_epoch().epoch_time


class TestSpeedupVsDGL:
    """§6.5: MG-GCN beats DGL on a single GPU on every dataset,
    by factors in the 1.4x-3.1x band."""

    @pytest.mark.parametrize("name", ["cora", "arxiv", "products", "reddit"])
    @pytest.mark.parametrize("machine_factory", [dgx1, dgx_a100])
    def test_single_gpu_faster_than_dgl(self, name, machine_factory):
        machine = machine_factory()
        ds = load_dataset(name, symbolic=True)
        model = GCNModelSpec.paper_model(1, ds.d0, ds.num_classes)
        t_mg = _epoch(MGGCNTrainer(ds, model, machine=machine, num_gpus=1))
        t_dgl = _epoch(DGLLikeTrainer(ds, model, machine=machine))
        ratio = t_dgl / t_mg
        assert 1.2 <= ratio <= 4.5, f"{name}@{machine.name}: {ratio:.2f}"


class TestSpeedupVsCAGNET:
    """§6.5: MG-GCN beats CAGNET at every multi-GPU count."""

    @pytest.mark.parametrize("name", ["arxiv", "products", "reddit"])
    @pytest.mark.parametrize("gpus", [2, 4, 8])
    def test_multi_gpu_faster_than_cagnet(self, name, gpus):
        ds = load_dataset(name, symbolic=True)
        model = GCNModelSpec.paper_model(1, ds.d0, ds.num_classes)
        t_mg = _epoch(MGGCNTrainer(ds, model, machine=dgx1(), num_gpus=gpus))
        t_cag = _epoch(
            CAGNETTrainer(ds, model, machine=dgx1(), num_gpus=gpus, permute=True)
        )
        assert t_cag > 1.5 * t_mg, f"{name}@P{gpus}"


class TestScalingShapes:
    def test_dense_graphs_scale_better(self):
        """§6.4: speedup correlates with average degree."""

        def speedup_8(ds):
            model = GCNModelSpec.build(512, 512, 40, 2)
            t1 = _epoch(MGGCNTrainer(ds, model, machine=dgx1(), num_gpus=1))
            t8 = _epoch(MGGCNTrainer(ds, model, machine=dgx1(), num_gpus=8))
            return t1 / t8

        sparse = SymbolicDataset("sparse", n=169_000, m=1_160_000, d0=512,
                                 num_classes=40)
        dense = SymbolicDataset("dense", n=169_000, m=64 * 1_160_000, d0=512,
                                num_classes=40)
        assert speedup_8(dense) > speedup_8(sparse)

    def test_superlinear_at_high_degree(self):
        """Fig. 9: 8 GPUs exceed 8x speedup at 64x+ Arxiv density."""
        ds = SymbolicDataset("dense", n=169_000, m=128 * 1_160_000, d0=512,
                             num_classes=40)
        model = GCNModelSpec.build(512, 512, 40, 2)
        t1 = _epoch(MGGCNTrainer(ds, model, machine=dgx1(), num_gpus=1))
        t8 = _epoch(MGGCNTrainer(ds, model, machine=dgx1(), num_gpus=8))
        assert t1 / t8 > 8.0

    def test_sublinear_at_low_degree(self):
        """Fig. 9: at 1x density 8 GPUs stay well below 8x."""
        ds = SymbolicDataset("sparse", n=169_000, m=1_160_000, d0=512,
                             num_classes=40)
        model = GCNModelSpec.build(512, 512, 40, 2)
        t1 = _epoch(MGGCNTrainer(ds, model, machine=dgx1(), num_gpus=1))
        t8 = _epoch(MGGCNTrainer(ds, model, machine=dgx1(), num_gpus=8))
        assert t1 / t8 < 7.0

    def test_cora_does_not_scale(self):
        """§6.5: 'neither MG-GCN nor CAGNET can get a speedup on Cora'
        — going 4 -> 8 GPUs must not help meaningfully."""
        ds = load_dataset("cora", symbolic=True)
        model = GCNModelSpec.paper_model(1, ds.d0, ds.num_classes)
        t4 = _epoch(MGGCNTrainer(ds, model, machine=dgx1(), num_gpus=4))
        t8 = _epoch(MGGCNTrainer(ds, model, machine=dgx1(), num_gpus=8))
        assert t8 > 0.8 * t4

    def test_reddit_h16_flattens_after_four_gpus(self):
        """§6.6: with the tiny 2x16 model, 'MG-GCN cannot achieve
        speedup after 4 GPUs' on Reddit."""
        ds = load_dataset("reddit", symbolic=True)
        model = GCNModelSpec.paper_model(2, ds.d0, ds.num_classes)
        t4 = _epoch(MGGCNTrainer(ds, model, machine=dgx_a100(), num_gpus=4))
        t8 = _epoch(MGGCNTrainer(ds, model, machine=dgx_a100(), num_gpus=8))
        assert t8 > 0.55 * t4  # nowhere near the 2x of linear scaling


class TestBreakdownShape:
    def test_spmm_dominates_large_datasets(self):
        """Fig. 5: SpMM takes 60-94% of the epoch on Products/Reddit."""
        from repro.profiling.breakdown import breakdown_percentages

        for name in ("products", "reddit"):
            ds = load_dataset(name, symbolic=True)
            model = GCNModelSpec.paper_model(1, ds.d0, ds.num_classes)
            tr = MGGCNTrainer(ds, model, machine=dgx1(), num_gpus=1)
            pct = breakdown_percentages(tr.train_epoch().trace)
            assert pct["spmm"] >= 55.0, (name, pct)

    def test_gemm_dominates_cora(self):
        """Fig. 5: small graphs are GeMM-bound."""
        from repro.profiling.breakdown import breakdown_percentages

        ds = load_dataset("cora", symbolic=True)
        model = GCNModelSpec.paper_model(1, ds.d0, ds.num_classes)
        tr = MGGCNTrainer(ds, model, machine=dgx1(), num_gpus=1)
        pct = breakdown_percentages(tr.train_epoch().trace)
        assert pct["gemm"] > pct["spmm"]


class TestTable3Shape:
    def test_products_proteins_scaling_near_paper(self):
        """Table 3 anchor: the 3-layer configs halve per GPU doubling
        (paper: products 0.355->0.067, proteins 4.22->0.64)."""
        for name in ("products", "proteins"):
            ds = load_dataset(name, symbolic=True)
            model = GCNModelSpec.paper_model(3, ds.d0, ds.num_classes)
            times = {}
            for P in (4, 8):
                times[P] = _epoch(
                    MGGCNTrainer(ds, model, machine=dgx_a100(), num_gpus=P)
                )
            assert 1.4 <= times[4] / times[8] <= 2.6

    def test_proteins_absolute_close_to_paper(self):
        """Our simulated proteins epochs land within 2x of Table 3."""
        ds = load_dataset("proteins", symbolic=True)
        model = GCNModelSpec.paper_model(3, ds.d0, ds.num_classes)
        paper = {4: 1.191, 8: 0.641}
        for P, target in paper.items():
            t = _epoch(MGGCNTrainer(ds, model, machine=dgx_a100(), num_gpus=P))
            assert target / 2 <= t <= target * 2, (P, t)
