"""Functional equivalence: every trainer produces the oracle's weights.

This is the reproduction's central correctness claim: the multi-GPU
schedule (partitioned SpMM, broadcast tiles, buffer reuse, fused
epilogues, gradient allreduce) computes *exactly* the same training
trajectory as a single-process NumPy GCN, for every GPU count and every
combination of the paper's optimisations.
"""

import numpy as np
import pytest

from repro.baselines import CAGNETTrainer, DGLLikeTrainer
from repro.core import MGGCNTrainer, TrainerConfig
from repro.hardware import dgx1, dgx_a100
from repro.nn import GCNModelSpec, ReferenceGCN

EPOCHS = 4
RTOL, ATOL = 5e-3, 5e-5


def _assert_weights_match(trainer_weights, ref_weights, label):
    for layer, (a, b) in enumerate(zip(trainer_weights, ref_weights)):
        assert np.allclose(a, b, rtol=RTOL, atol=ATOL), (
            f"{label}: layer {layer} max err {np.abs(a - b).max()}"
        )


@pytest.mark.parametrize("gpus", [1, 2, 3, 4, 8])
def test_mggcn_matches_reference_all_gpu_counts(small_dataset, small_model, gpus):
    cfg = TrainerConfig(first_layer_skip=False, seed=21)
    trainer = MGGCNTrainer(
        small_dataset, small_model, machine=dgx1(), num_gpus=gpus, config=cfg
    )
    ref = ReferenceGCN(small_dataset, small_model, seed=21, first_layer_skip=False)
    for _ in range(EPOCHS):
        stats = trainer.train_epoch()
        ref_loss = ref.train_epoch()
        assert stats.loss == pytest.approx(ref_loss, rel=1e-4, abs=1e-6)
    _assert_weights_match(trainer.get_weights(), ref.weights, f"P={gpus}")


@pytest.mark.parametrize("overlap", [False, True])
@pytest.mark.parametrize("permute", [False, True])
@pytest.mark.parametrize("order_opt", [False, True])
def test_mggcn_optimizations_preserve_math(
    small_dataset, small_model, overlap, permute, order_opt
):
    cfg = TrainerConfig(
        permute=permute,
        overlap=overlap,
        order_optimization=order_opt,
        first_layer_skip=False,
        seed=22,
    )
    trainer = MGGCNTrainer(
        small_dataset, small_model, machine=dgx1(), num_gpus=4, config=cfg
    )
    ref = ReferenceGCN(small_dataset, small_model, seed=22, first_layer_skip=False)
    for _ in range(EPOCHS):
        trainer.train_epoch()
        ref.train_epoch()
    _assert_weights_match(
        trainer.get_weights(), ref.weights,
        f"overlap={overlap} permute={permute} order={order_opt}",
    )


def test_first_layer_skip_matches_skipping_reference(small_dataset, small_model):
    """§4.4's skip is an intentional gradient modification; with the
    same flag the reference and the trainer still agree exactly."""
    cfg = TrainerConfig(first_layer_skip=True, seed=23)
    trainer = MGGCNTrainer(
        small_dataset, small_model, machine=dgx1(), num_gpus=4, config=cfg
    )
    ref = ReferenceGCN(small_dataset, small_model, seed=23, first_layer_skip=True)
    for _ in range(EPOCHS):
        trainer.train_epoch()
        ref.train_epoch()
    _assert_weights_match(trainer.get_weights(), ref.weights, "skip")


def test_three_layer_model(small_dataset):
    model = GCNModelSpec.build(small_dataset.d0, 12, small_dataset.num_classes, 3)
    cfg = TrainerConfig(first_layer_skip=False, seed=24)
    trainer = MGGCNTrainer(
        small_dataset, model, machine=dgx_a100(), num_gpus=4, config=cfg
    )
    ref = ReferenceGCN(small_dataset, model, seed=24, first_layer_skip=False)
    for _ in range(3):
        trainer.train_epoch()
        ref.train_epoch()
    _assert_weights_match(trainer.get_weights(), ref.weights, "3-layer")


def test_single_layer_model(small_dataset):
    model = GCNModelSpec.build(small_dataset.d0, small_dataset.num_classes,
                               small_dataset.num_classes, 1)
    # a 1-layer GCN: layer_dims collapses to (d0, classes)
    model = GCNModelSpec((small_dataset.d0, small_dataset.num_classes))
    cfg = TrainerConfig(first_layer_skip=False, seed=25)
    trainer = MGGCNTrainer(
        small_dataset, model, machine=dgx1(), num_gpus=2, config=cfg
    )
    ref = ReferenceGCN(small_dataset, model, seed=25, first_layer_skip=False)
    for _ in range(3):
        trainer.train_epoch()
        ref.train_epoch()
    _assert_weights_match(trainer.get_weights(), ref.weights, "1-layer")


def test_all_trainers_agree_with_each_other(small_dataset, small_model):
    seed = 26
    mg = MGGCNTrainer(
        small_dataset, small_model, machine=dgx1(), num_gpus=4,
        config=TrainerConfig(first_layer_skip=False, seed=seed),
    )
    dgl = DGLLikeTrainer(small_dataset, small_model, machine=dgx1(), seed=seed)
    cag = CAGNETTrainer(
        small_dataset, small_model, machine=dgx1(), num_gpus=2, seed=seed
    )
    for _ in range(3):
        mg.train_epoch()
        dgl.train_epoch()
        cag.train_epoch()
    for a, b, c in zip(mg.get_weights(), dgl.get_weights(), cag.get_weights()):
        assert np.allclose(a, b, rtol=RTOL, atol=ATOL)
        assert np.allclose(b, c, rtol=RTOL, atol=ATOL)


def test_weight_replicas_stay_synchronized(small_dataset, small_model):
    """After any number of epochs, every rank holds identical weights —
    the allreduce + deterministic Adam invariant of §4.1."""
    trainer = MGGCNTrainer(
        small_dataset, small_model, machine=dgx1(), num_gpus=4,
        config=TrainerConfig(seed=27),
    )
    trainer.fit(3)
    for layer in range(small_model.num_layers):
        base = trainer.weights[0][layer].data
        for rank in range(1, 4):
            assert np.array_equal(trainer.weights[rank][layer].data, base)
