"""Integration: critical-path attribution over real multi-GPU epochs.

The acceptance bar for the analyzer: on an 8-GPU arxiv epoch the
per-category attribution (compute, comm, wait) must tile the epoch —
summing to the measured epoch time within 1% — with a well-defined
straggler; and because replayed epochs regenerate bit-identical
timelines, eager and replayed epochs must attribute identically.
"""

import pytest

from repro.core.trainer import MGGCNTrainer, TrainerConfig
from repro.datasets import load_dataset
from repro.nn import GCNModelSpec
from repro.telemetry import Telemetry, critical_path
from repro.training.loop import TrainingLoop

COMPUTE_CATEGORIES = {"gemm", "spmm", "elementwise", "reduce", "opt"}


@pytest.fixture(scope="module")
def arxiv_p8_epoch():
    dataset = load_dataset("arxiv", scale=0.01, learnable=True, seed=0)
    model = GCNModelSpec.build(dataset.d0, 32, dataset.num_classes, 2)
    trainer = MGGCNTrainer(dataset, model, num_gpus=8)
    stats = trainer.train_epoch()
    return trainer, stats


class TestArxivAttribution:
    def test_shares_tile_the_epoch_within_one_percent(self, arxiv_p8_epoch):
        _trainer, stats = arxiv_p8_epoch
        report = critical_path(stats.trace)
        # the analyzer's window is the epoch the trainer measured.
        assert report.epoch_time == pytest.approx(stats.epoch_time, rel=0.01)
        # comm + compute + wait tile the window (the 1% invariant; the
        # tiling construction actually makes it near-exact).
        assert sum(report.category_seconds.values()) == pytest.approx(
            report.epoch_time, rel=1e-9
        )
        shares = {c: report.share(c) for c in report.category_seconds}
        assert sum(shares.values()) == pytest.approx(1.0, abs=1e-9)
        assert "comm" in report.category_seconds
        assert COMPUTE_CATEGORIES & set(report.category_seconds)

    def test_straggler_and_overlap_are_attributed(self, arxiv_p8_epoch):
        _trainer, stats = arxiv_p8_epoch
        report = critical_path(stats.trace)
        assert report.straggler_device is not None
        assert report.straggler_rank in range(8)
        # straggler busy-time is a lower bound on the path window.
        assert report.device_seconds[report.straggler_device] <= (
            report.epoch_time * (1 + 1e-12)
        )
        # on-path comm time is exactly the overlap loss.
        assert report.overlap_loss_seconds == pytest.approx(
            report.category_seconds.get("comm", 0.0)
        )
        assert report.steps, "path must be non-empty"
        assert report.to_dict()["straggler_rank"] == report.straggler_rank


class TestEagerReplayEquivalence:
    def test_replayed_epoch_attributes_like_the_eager_one(
        self, small_dataset, small_model
    ):
        trainer = MGGCNTrainer(
            small_dataset, small_model, num_gpus=4,
            config=TrainerConfig(seed=0, capture_epochs=True),
        )
        eager = trainer.train_epoch()   # captures while running eagerly
        replay = trainer.train_epoch()  # regenerates from the plan
        r_eager = critical_path(eager.trace)
        r_replay = critical_path(replay.trace)
        assert [s.name for s in r_eager.steps] == [
            s.name for s in r_replay.steps
        ]
        assert [s.category for s in r_eager.steps] == [
            s.category for s in r_replay.steps
        ]
        for a, b in zip(r_eager.steps, r_replay.steps):
            assert b.duration == pytest.approx(a.duration, rel=1e-9,
                                               abs=1e-15)
        assert r_replay.epoch_time == pytest.approx(
            r_eager.epoch_time, rel=1e-9
        )
        for category, seconds in r_eager.category_seconds.items():
            assert r_replay.category_seconds[category] == pytest.approx(
                seconds, rel=1e-9, abs=1e-15
            )
        assert r_replay.straggler_device == r_eager.straggler_device


class TestLoopDrivenAttribution:
    def test_critpath_every_populates_reports_and_gauges(
        self, small_dataset, small_model
    ):
        telemetry = Telemetry(run_id="attrib")
        trainer = MGGCNTrainer(small_dataset, small_model, num_gpus=2)
        loop = TrainingLoop(
            trainer, max_epochs=3, eval_every=0,
            telemetry=telemetry, critpath_every=1,
        )
        loop.run()
        assert sorted(loop.critpath_reports) == [1, 2, 3]
        for epoch, report in loop.critpath_reports.items():
            assert sum(report.category_seconds.values()) == pytest.approx(
                report.epoch_time, rel=1e-9
            )
        flat = telemetry.registry.flatten()
        assert flat["repro_critpath_analyses_total"] == 3.0
        assert flat["repro_critpath_epoch"] == 3.0
        assert any(k.startswith("repro_critpath_seconds") for k in flat)
        # healthy epochs: the always-on anomaly detector stays quiet.
        assert loop.anomaly_detector.anomalies == []
        assert "repro_epoch_anomalies_total" not in flat
