"""Integration tests: the training-time remote-embedding cache.

Covers the ISSUE acceptance points end to end: bitwise transparency at
``staleness=0`` on every execution path (eager, batched submit, plan
capture/replay), accuracy parity under bounded staleness, plan
invalidation when the cache changes mid-capture, telemetry export, and
a fast smoke of the broadcast-byte savings the cachebench benchmark
measures at full scale.
"""

import numpy as np
import pytest

from repro.core import MGGCNTrainer, TrainerConfig
from repro.datasets import planted_partition_dataset
from repro.datasets.loader import Dataset
from repro.hardware import dgx1
from repro.nn import ReferenceGCN
from repro.telemetry import Telemetry

SEED = 11
P = 4
RTOL = 5e-3
ATOL = 5e-5
# enough epochs to converge the planted-partition task: accuracy parity
# under staleness is only meaningful once the discrete metric settles.
PARITY_EPOCHS = 15


@pytest.fixture(scope="module")
def parity_dataset():
    adj, x, y, train, val, test = planted_partition_dataset(
        400, num_classes=3, feature_dim=12, avg_degree=8.0, seed=5
    )
    return Dataset(
        name="cache-parity",
        adjacency=adj,
        features=x,
        labels=y,
        train_mask=train,
        val_mask=val,
        test_mask=test,
        num_classes=3,
    )


@pytest.fixture(scope="module")
def parity_model(parity_dataset):
    from repro.nn import GCNModelSpec

    return GCNModelSpec.build(
        parity_dataset.d0, 16, parity_dataset.num_classes, 2
    )


def _trainer(dataset, model, **kwargs):
    kwargs.setdefault("first_layer_skip", False)
    kwargs.setdefault("seed", SEED)
    cfg = TrainerConfig(**kwargs)
    return MGGCNTrainer(dataset, model, machine=dgx1(), num_gpus=P, config=cfg)


def _weights_after(dataset, model, epochs, **kwargs):
    trainer = _trainer(dataset, model, **kwargs)
    for _ in range(epochs):
        trainer.train_epoch()
    return trainer.get_weights()


@pytest.mark.parametrize(
    "mode_kwargs",
    [
        {},
        {"batched_submit": True},
        {"capture_epochs": True},
    ],
    ids=["eager", "batched", "capture"],
)
def test_staleness_zero_is_bitwise_on_every_path(
    small_dataset, small_model, mode_kwargs
):
    base = _weights_after(small_dataset, small_model, 4, **mode_kwargs)
    cached = _weights_after(
        small_dataset,
        small_model,
        4,
        cache_staleness_epochs=0,
        cache_budget_bytes=10**9,
        **mode_kwargs,
    )
    for a, b in zip(base, cached):
        assert np.array_equal(a, b)


@pytest.mark.parametrize("staleness", [1, 2])
def test_stale_serving_keeps_accuracy_parity(
    parity_dataset, parity_model, staleness
):
    base = _trainer(parity_dataset, parity_model)
    for _ in range(PARITY_EPOCHS):
        base.train_epoch()
    cached = _trainer(
        parity_dataset,
        parity_model,
        cache_staleness_epochs=staleness,
        cache_budget_bytes=10**9,
    )
    for _ in range(PARITY_EPOCHS):
        cached.train_epoch()
    assert cached.evaluate("test") == pytest.approx(
        base.evaluate("test"), rel=1e-5
    )
    # serving stale rows actually removed broadcast traffic.
    assert cached.training_cache.total.bytes_saved > 0
    assert cached.training_cache.total.hit_rows > 0


def test_evict_mid_capture_invalidates_plan(small_dataset, small_model):
    base = _weights_after(small_dataset, small_model, 5, capture_epochs=True)
    trainer = _trainer(
        small_dataset,
        small_model,
        capture_epochs=True,
        cache_staleness_epochs=0,
        cache_budget_bytes=10**9,
    )
    # epoch 0 captures, its admissions invalidate, epoch 1 recaptures,
    # epoch 2 is the first steady replay.
    for _ in range(3):
        trainer.train_epoch()
    assert trainer.plan_stats.replays >= 1  # steady replay reached
    before = trainer.plan_stats.invalidations
    keys = trainer.training_cache.entry_keys()
    assert keys
    assert trainer.training_cache.evict(*keys[0])
    trainer.train_epoch()  # signature changed -> recapture, not stale replay
    trainer.train_epoch()
    assert trainer.plan_stats.invalidations > before
    for a, b in zip(base, trainer.get_weights()):
        assert np.array_equal(a, b)


def test_cache_counters_reach_telemetry(small_dataset, small_model):
    trainer = _trainer(
        small_dataset,
        small_model,
        cache_staleness_epochs=1,
        cache_budget_bytes=10**9,
    )
    telemetry = Telemetry()
    trainer.ctx.engine.telemetry = telemetry
    trainer.train_epoch()  # refresh
    trainer.train_epoch()  # serve
    reg = telemetry.registry
    assert reg.counter("repro_cache_epochs_total", phase="refresh").value == 1
    assert reg.counter("repro_cache_epochs_total", phase="serve").value == 1
    assert reg.counter("repro_cache_rows_hit_total").value > 0
    assert reg.counter("repro_cache_bytes_saved_total").value > 0
    assert 0.0 < reg.gauge("repro_cache_hit_rate").value <= 1.0
    assert reg.gauge("repro_cache_resident_bytes").value > 0


def test_cachebench_smoke_savings_and_parity(parity_dataset, parity_model):
    """Tier-1 miniature of benchmarks/test_cache_partition_speedup.py:
    with a generous budget, serve epochs shed most forward broadcast
    bytes while test accuracy stays put."""
    base = _trainer(parity_dataset, parity_model)
    for _ in range(PARITY_EPOCHS):
        base.train_epoch()
    cached = _trainer(
        parity_dataset,
        parity_model,
        cache_staleness_epochs=2,
        cache_budget_bytes=10**9,
        partition_strategy="resource_aware",
    )
    for _ in range(PARITY_EPOCHS):
        cached.train_epoch()
    total = cached.training_cache.total
    assert total.bytes_sent < total.bytes_full
    saved_frac = total.bytes_saved / total.bytes_full
    assert saved_frac > 0.3  # the ISSUE floor, on intercepted traffic
    assert cached.evaluate("test") == pytest.approx(
        base.evaluate("test"), rel=1e-5
    )


def test_resource_aware_partition_matches_reference(
    small_dataset, small_model
):
    trainer = _trainer(
        small_dataset, small_model, partition_strategy="resource_aware"
    )
    assert trainer.graph.strategy == "resource_aware"
    ref = ReferenceGCN(
        small_dataset, small_model, seed=SEED, first_layer_skip=False
    )
    stats = trainer.train_epoch()
    ref_loss = ref.train_epoch()
    assert stats.loss == pytest.approx(ref_loss, rel=1e-4, abs=1e-6)
    for a, b in zip(trainer.get_weights(), ref.weights):
        assert np.allclose(a, b, rtol=RTOL, atol=ATOL)
