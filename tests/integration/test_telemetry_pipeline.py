"""Integration: one telemetry hub across training, replay, recovery, serving.

The acceptance bar for the observability subsystem: a single
:class:`~repro.telemetry.Telemetry` threaded through captured training,
an elastic run under a fault plan, and the serving engine must yield

* ONE merged Chrome trace holding all engine timelines (disjoint pids)
  plus the span tree, with nesting (parent ids) and correlation ids
  linking spans to the engine ops they cover;
* one Prometheus exposition with counters, gauges, and histograms from
  each subsystem; and
* a snapshot that ``repro telemetry diff`` passes against itself and
  fails against a perturbed copy.
"""

import json

import pytest

from repro.__main__ import main
from repro.core.trainer import MGGCNTrainer, TrainerConfig
from repro.resilience import DeviceFailure, FaultPlan
from repro.resilience.recovery import ElasticTrainer
from repro.serve import ServingConfig, ServingEngine, poisson_workload
from repro.telemetry import (
    Telemetry,
    merged_chrome_trace,
    to_prometheus,
    write_snapshot,
)
from repro.telemetry.export import SPAN_PID
from repro.training.loop import TrainingLoop

EPOCHS = 3


@pytest.fixture(scope="module")
def pipeline(small_dataset, small_model):
    """Train (capture+replay), recover from a failure, then serve —
    all reporting into one telemetry hub."""
    telemetry = Telemetry(run_id="e2e", trace_ops=True)

    # 1. captured training: epoch 1 captures the plan, 2..N replay it.
    captured = MGGCNTrainer(small_dataset, small_model, num_gpus=2)
    TrainingLoop(
        captured, max_epochs=EPOCHS, eval_every=EPOCHS,
        capture_epochs=True, telemetry=telemetry,
    ).run()
    train_trace = list(captured.ctx.engine.trace)

    # 2. elastic training under a seeded fault plan (fails mid-epoch 2).
    ref = MGGCNTrainer(small_dataset, small_model, num_gpus=4)
    ref_stats = ref.fit(2)
    fail_time = ref_stats[0].epoch_time + 0.6 * ref_stats[1].epoch_time
    elastic = ElasticTrainer(
        small_dataset, small_model, num_gpus=4,
        plan=FaultPlan(device_failures=(
            DeviceFailure(rank=1, time=fail_time),
        )),
    )
    TrainingLoop(elastic, max_epochs=EPOCHS, eval_every=0,
                 telemetry=telemetry).run()
    elastic_trace = list(elastic.ctx.engine.trace)

    # 3. serving the captured model under its own fault plan.
    serving = ServingEngine(
        small_dataset, captured.get_weights(), small_model,
        config=ServingConfig(
            num_gpus=4,
            cache_entries=2 * small_dataset.n,
            num_pinned=max(small_dataset.n // 100, 1),
            fault_plan=FaultPlan(device_failures=(
                DeviceFailure(rank=1, time=2e-3),
            )),
        ),
        telemetry=telemetry,
    )
    serving.warm_cache()
    result = serving.serve(
        poisson_workload(small_dataset, 60, rate=5000.0, skew=1.0, seed=7)
    )
    serve_trace = list(serving.ctx.engine.trace)

    return {
        "telemetry": telemetry,
        "captured": captured,
        "elastic": elastic,
        "serving_result": result,
        "sections": {
            "train": train_trace,
            "elastic": elastic_trace,
            "serve": serve_trace,
        },
    }


class TestUnifiedTrace:
    def test_merged_trace_has_all_sections_on_disjoint_pids(self, pipeline):
        merged = merged_chrome_trace(
            pipeline["sections"], pipeline["telemetry"].tracer
        )
        process_pids = {
            ev["args"]["name"]: ev["pid"]
            for ev in merged
            if ev["ph"] == "M" and ev["name"] == "process_name"
        }
        for section in ("train", "elastic", "serve"):
            assert any(name.startswith(f"{section}/") for name in process_pids)
        assert "spans" in process_pids
        # every process its own pid: merging must not collide timelines
        assert len(set(process_pids.values())) == len(process_pids)
        # engine events from every section made it in
        runs = {
            ev["args"].get("run")
            for ev in merged
            if ev["ph"] == "X" and ev["pid"] != SPAN_PID
        }
        assert runs >= {"train", "elastic", "serve"}

    def test_spans_nest_and_carry_correlations(self, pipeline):
        tracer = pipeline["telemetry"].tracer
        # training epochs appear twice (captured + elastic runs)
        epochs = [s for s in tracer.spans
                  if s.category == "training" and s.name == "epoch-1"]
        assert len(epochs) == 2
        # trace_ops=True: engine ops nested under the epoch span,
        # inheriting its correlation id.
        kernels = tracer.children_of(epochs[0])
        assert kernels, "op spans must nest under the epoch span"
        assert all(k.parent_id == epochs[0].span_id for k in kernels)
        assert {k.correlation for k in kernels} == {"epoch-1"}
        # replayed epochs show up as aggregate plan spans
        replays = [s for s in tracer.spans if s.name == "plan.replay"]
        assert len(replays) == EPOCHS - 1
        assert {r.correlation for r in replays} == {"epoch-2", "epoch-3"}
        # the recovery protocol has its own correlated span, with the
        # re-broadcast/re-shard engine ops nested underneath it
        recoveries = [s for s in tracer.spans if s.name == "recovery"]
        assert len(recoveries) == 1
        assert recoveries[0].correlation == "recovery-0"
        assert recoveries[0].closed
        protocol_ops = tracer.children_of(recoveries[0])
        assert protocol_ops
        assert {s.correlation for s in protocol_ops} == {"recovery-0"}
        # serving batches are correlated spans too
        batches = [s for s in tracer.spans if s.name.startswith("serve.batch-")]
        assert batches
        assert batches[0].correlation == "batch-0"
        # every span is closed: no wedged stacks across subsystems
        assert all(s.closed for s in tracer.spans)
        assert tracer.depth == 0

    def test_span_correlations_link_to_engine_ops(self, pipeline):
        """A serving batch's span correlation matches its engine events."""
        serve_corrs = {
            ev.correlation
            for ev in pipeline["sections"]["serve"]
            if ev.correlation is not None
        }
        assert "batch-0" in serve_corrs


class TestUnifiedMetrics:
    def test_prometheus_covers_all_subsystems(self, pipeline):
        text = to_prometheus(pipeline["telemetry"].registry)
        # counters from each subsystem
        assert "# TYPE repro_train_epochs_total counter" in text
        assert "# TYPE repro_plan_replays_total counter" in text
        assert 'repro_recoveries_total{outcome="recovered"} 1' in text
        assert "# TYPE repro_serving_requests_total counter" in text
        assert "repro_serving_degrades_total 1" in text
        # gauges
        assert "# TYPE repro_train_loss gauge" in text
        assert "# TYPE repro_overlap_efficiency gauge" in text
        # histograms render as quantile summaries
        assert 'repro_train_epoch_seconds{quantile="0.99"}' in text
        assert 'repro_serving_latency_seconds{quantile="0.5"}' in text
        # the failure was detected through an instrumented collective
        assert "repro_comm_timeouts_total" in text

    def test_counts_match_ground_truth(self, pipeline):
        flat = pipeline["telemetry"].registry.flatten()
        assert flat["repro_train_epochs_total"] == float(2 * EPOCHS)
        assert flat["repro_plan_replays_total"] == float(EPOCHS - 1)
        assert pipeline["captured"].plan_stats.replays == EPOCHS - 1
        assert flat['repro_recoveries_total{outcome="recovered"}'] == 1.0
        assert len(pipeline["elastic"].recovery_log) == 1
        assert flat["repro_serving_requests_total"] == 60.0
        assert (flat["repro_serving_requests_total"]
                == pipeline["serving_result"].summary["num_requests"])
        assert flat["repro_flops_total"] > 0.0
        assert flat["repro_comm_bytes_total"] > 0.0
        assert 0.0 <= flat["repro_overlap_efficiency"] <= 1.0
        assert flat["repro_straggler_skew"] >= 1.0


class TestRegressionGateCli:
    def test_diff_passes_against_itself_and_fails_perturbed(
        self, pipeline, tmp_path, capsys
    ):
        snap = tmp_path / "snapshot.json"
        write_snapshot(
            snap, pipeline["telemetry"].registry.flatten(), {"run": "e2e"}
        )

        assert main(["telemetry", "diff", str(snap), str(snap)]) == 0
        assert "PASS" in capsys.readouterr().out

        bad = tmp_path / "perturbed.json"
        payload = json.loads(snap.read_text())
        payload["metrics"]["repro_train_epochs_total"] *= 1.25
        bad.write_text(json.dumps(payload))
        assert main(["telemetry", "diff", str(snap), str(bad)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "repro_train_epochs_total" in out
        # a tolerance wide enough turns the same diff green again
        assert main([
            "telemetry", "diff", str(snap), str(bad),
            "--tolerance", "repro_train_epochs_total=0.5",
        ]) == 0

    def test_missing_metric_fails_the_gate(self, pipeline, tmp_path, capsys):
        snap = tmp_path / "snapshot.json"
        write_snapshot(
            snap, pipeline["telemetry"].registry.flatten(), {"run": "e2e"}
        )
        pruned = tmp_path / "pruned.json"
        payload = json.loads(snap.read_text())
        del payload["metrics"]["repro_serving_requests_total"]
        pruned.write_text(json.dumps(payload))
        assert main(["telemetry", "diff", str(snap), str(pruned)]) == 1
        assert "missing from current run" in capsys.readouterr().out
