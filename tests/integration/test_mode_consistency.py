"""Functional vs symbolic mode: the same code must produce the same schedule.

Symbolic mode's legitimacy rests on one invariant: for identically-shaped
inputs, the scheduler emits the *same ops* (same names, same categories,
same per-category counts, same memory) whether tensors carry data or
not. These tests construct a functional dataset and a SymbolicDataset
with matching (n, m, d0, classes) statistics and compare the epochs.
"""

import collections

import numpy as np
import pytest

from repro.core import MGGCNTrainer, TrainerConfig
from repro.datasets import load_dataset
from repro.datasets.loader import SymbolicDataset
from repro.hardware import dgx1
from repro.nn import GCNModelSpec


@pytest.fixture(scope="module")
def pair():
    functional = load_dataset("arxiv", scale=0.01, seed=51)
    symbolic = SymbolicDataset(
        name="arxiv-sym",
        n=functional.n,
        m=functional.m,
        d0=functional.d0,
        num_classes=functional.num_classes,
    )
    model = GCNModelSpec.build(functional.d0, 32, functional.num_classes, 2)
    return functional, symbolic, model


def _epoch(dataset, model, gpus=4):
    trainer = MGGCNTrainer(
        dataset, model, machine=dgx1(), num_gpus=gpus,
        config=TrainerConfig(seed=51),
    )
    return trainer, trainer.train_epoch()


def test_same_op_sequence(pair):
    functional, symbolic, model = pair
    _, fun_stats = _epoch(functional, model)
    _, sym_stats = _epoch(symbolic, model)
    fun_ops = [(ev.name, ev.category, ev.device, ev.stream)
               for ev in fun_stats.trace]
    sym_ops = [(ev.name, ev.category, ev.device, ev.stream)
               for ev in sym_stats.trace]
    assert fun_ops == sym_ops


def test_same_category_totals_within_tolerance(pair):
    """Durations differ only through tile-nnz estimates (symbolic mode
    assumes perfectly balanced tiles), so per-category totals must agree
    within a modest band."""
    functional, symbolic, model = pair
    _, fun_stats = _epoch(functional, model)
    _, sym_stats = _epoch(symbolic, model)
    for category, fun_total in fun_stats.breakdown.totals.items():
        sym_total = sym_stats.breakdown.totals.get(category, 0.0)
        if fun_total < 1e-7:
            continue
        assert sym_total == pytest.approx(fun_total, rel=0.35), category


def test_same_epoch_time_within_tolerance(pair):
    functional, symbolic, model = pair
    _, fun_stats = _epoch(functional, model)
    _, sym_stats = _epoch(symbolic, model)
    assert sym_stats.epoch_time == pytest.approx(fun_stats.epoch_time, rel=0.3)


def test_same_memory_accounting(pair):
    """Byte-for-byte: buffers, weights, features and adjacency tiles are
    sized by shape alone, so peak memory must match almost exactly (the
    only wiggle is tile-nnz rounding in the adjacency bytes)."""
    functional, symbolic, model = pair
    fun_trainer, _ = _epoch(functional, model)
    sym_trainer, _ = _epoch(symbolic, model)
    fun_peak = fun_trainer.ctx.peak_memory()
    sym_peak = sym_trainer.ctx.peak_memory()
    assert sym_peak == pytest.approx(fun_peak, rel=0.02)


def test_loss_only_in_functional(pair):
    functional, symbolic, model = pair
    _, fun_stats = _epoch(functional, model)
    _, sym_stats = _epoch(symbolic, model)
    assert fun_stats.loss is not None
    assert sym_stats.loss is None
