"""Integration: epoch capture & replay is bit-identical to eager training.

The acceptance bar for the sim-graph subsystem: with ``capture_epochs``
on, epoch 1 is captured and every later epoch replays the plan — and
nothing observable changes. Losses, epoch times, the full trace
(device/stream/name/category/start/end/stage/nbytes), and the final
weights must be *bitwise* equal to an eager run, on both the serialised
and overlapped schedules. Replay must also never mask a fault: with an
active fault plan the trainer falls back to eager scheduling, and an
elastic recovery (which re-partitions the world) recaptures on the
shrunken world.
"""

import numpy as np
import pytest

from repro.core.trainer import MGGCNTrainer, TrainerConfig
from repro.datasets import load_dataset
from repro.errors import ConfigurationError
from repro.nn import GCNModelSpec
from repro.resilience import (
    DeviceFailure,
    FaultInjector,
    FaultPlan,
    StragglerSlowdown,
)
from repro.resilience.recovery import ElasticTrainer
from repro.training.loop import TrainingLoop

EPOCHS = 5


def _trace_tuples(stats):
    return [
        (e.device, e.stream, e.name, e.category, e.start, e.end, e.stage,
         e.nbytes)
        for s in stats
        for e in s.trace
    ]


@pytest.fixture(scope="module")
def replay_dataset():
    return load_dataset("cora", scale=0.2, learnable=True, seed=3)


@pytest.fixture(scope="module")
def replay_model(replay_dataset):
    ds = replay_dataset
    return GCNModelSpec.build(ds.d0, 16, ds.num_classes, 3)


class TestBitIdenticalReplay:
    @pytest.mark.parametrize("overlap", [False, True],
                             ids=["serialised", "overlapped"])
    def test_replay_matches_eager(self, replay_dataset, replay_model, overlap):
        eager = MGGCNTrainer(
            replay_dataset, replay_model, num_gpus=4,
            config=TrainerConfig(overlap=overlap),
        )
        captured = MGGCNTrainer(
            replay_dataset, replay_model, num_gpus=4,
            config=TrainerConfig(overlap=overlap, capture_epochs=True),
        )
        es = eager.fit(EPOCHS)
        cs = captured.fit(EPOCHS)

        assert [s.loss for s in es] == [s.loss for s in cs]  # bitwise
        assert [s.epoch_time for s in es] == [s.epoch_time for s in cs]
        assert _trace_tuples(es) == _trace_tuples(cs)
        for we, wc in zip(eager.get_weights(), captured.get_weights()):
            assert np.array_equal(we, wc)
        assert captured.plan_stats.captures == 1
        assert captured.plan_stats.replays == EPOCHS - 1
        assert captured.plan_stats.eager_epochs == 0
        assert eager.plan_stats.eager_epochs == EPOCHS
        # per-epoch breakdowns regenerate identically from the bulk trace
        assert es[-1].breakdown == cs[-1].breakdown

    def test_single_gpu_replay(self, replay_dataset, replay_model):
        eager = MGGCNTrainer(replay_dataset, replay_model, num_gpus=1)
        captured = MGGCNTrainer(
            replay_dataset, replay_model, num_gpus=1,
            config=TrainerConfig(capture_epochs=True),
        )
        es = eager.fit(EPOCHS)
        cs = captured.fit(EPOCHS)
        assert [s.loss for s in es] == [s.loss for s in cs]
        assert _trace_tuples(es) == _trace_tuples(cs)
        for we, wc in zip(eager.get_weights(), captured.get_weights()):
            assert np.array_equal(we, wc)

    def test_symbolic_mode_replay(self):
        ds = load_dataset("reddit", symbolic=True)
        model = GCNModelSpec.build(ds.d0, 128, ds.num_classes, 2)
        eager = MGGCNTrainer(ds, model, num_gpus=4)
        captured = MGGCNTrainer(
            ds, model, num_gpus=4, config=TrainerConfig(capture_epochs=True)
        )
        es = eager.fit(3)
        cs = captured.fit(3)
        assert all(s.loss is None for s in cs)
        assert [s.epoch_time for s in es] == [s.epoch_time for s in cs]
        assert _trace_tuples(es) == _trace_tuples(cs)
        assert captured.plan_stats.replays == 2

    def test_evaluate_between_replays_is_safe(self, replay_dataset,
                                              replay_model):
        """An eval forward pass between epochs must not corrupt replay."""
        eager = MGGCNTrainer(replay_dataset, replay_model, num_gpus=4)
        captured = MGGCNTrainer(
            replay_dataset, replay_model, num_gpus=4,
            config=TrainerConfig(capture_epochs=True),
        )
        accs_e, accs_c = [], []
        for _ in range(EPOCHS):
            eager.train_epoch()
            captured.train_epoch()
            accs_e.append(eager.evaluate("val"))
            accs_c.append(captured.evaluate("val"))
        assert accs_e == accs_c
        for we, wc in zip(eager.get_weights(), captured.get_weights()):
            assert np.array_equal(we, wc)


class TestInvalidation:
    def test_fault_plan_forces_eager(self, replay_dataset, replay_model):
        """A non-trivial fault plan disables capture; faults still surface."""
        plan = FaultPlan(
            stragglers=(StragglerSlowdown(rank=0, factor=3.0, start=0.0),)
        )
        faulty = MGGCNTrainer(
            replay_dataset, replay_model, num_gpus=4,
            config=TrainerConfig(
                capture_epochs=True, fault_injector=FaultInjector(plan)
            ),
        )
        clean = MGGCNTrainer(replay_dataset, replay_model, num_gpus=4)
        fs = faulty.fit(3)
        ks = clean.fit(3)
        assert faulty.plan_stats.captures == 0
        assert faulty.plan_stats.replays == 0
        assert faulty.plan_stats.eager_epochs == 3
        # the straggler dilates epoch time — replay would have masked it
        assert all(f.epoch_time > k.epoch_time for f, k in zip(fs, ks))

    def test_signature_change_recaptures(self, replay_dataset, replay_model):
        eager = MGGCNTrainer(replay_dataset, replay_model, num_gpus=4)
        captured = MGGCNTrainer(
            replay_dataset, replay_model, num_gpus=4,
            config=TrainerConfig(capture_epochs=True),
        )
        es = eager.fit(EPOCHS)
        cs = [captured.train_epoch() for _ in range(2)]
        # simulate a world change: the stored signature no longer matches.
        captured._plan_sig = ("stale",)
        cs += [captured.train_epoch() for _ in range(EPOCHS - 2)]
        assert captured.plan_stats.invalidations == 1
        assert captured.plan_stats.captures == 2
        assert captured.plan_stats.replays == EPOCHS - 2
        assert [s.loss for s in es] == [s.loss for s in cs]
        assert _trace_tuples(es) == _trace_tuples(cs)
        for we, wc in zip(eager.get_weights(), captured.get_weights()):
            assert np.array_equal(we, wc)

    def test_manual_invalidate(self, replay_dataset, replay_model):
        trainer = MGGCNTrainer(
            replay_dataset, replay_model, num_gpus=2,
            config=TrainerConfig(capture_epochs=True),
        )
        trainer.train_epoch()
        assert trainer._plan is not None
        trainer.invalidate_plan()
        assert trainer._plan is None
        assert trainer.plan_stats.invalidations == 1
        trainer.invalidate_plan()  # idempotent on empty
        assert trainer.plan_stats.invalidations == 1
        trainer.train_epoch()
        assert trainer.plan_stats.captures == 2

    def test_capture_toggle_mid_training(self, replay_dataset, replay_model):
        eager = MGGCNTrainer(replay_dataset, replay_model, num_gpus=2)
        mixed = MGGCNTrainer(replay_dataset, replay_model, num_gpus=2)
        es = eager.fit(4)
        ms = [mixed.train_epoch() for _ in range(2)]
        mixed.capture_epochs = True
        ms += [mixed.train_epoch() for _ in range(2)]
        assert mixed.plan_stats == type(mixed.plan_stats)(
            captures=1, replays=1, eager_epochs=2, invalidations=0
        )
        assert [s.loss for s in es] == [s.loss for s in ms]
        assert _trace_tuples(es) == _trace_tuples(ms)


class TestElasticRecapture:
    def test_recovery_recaptures_on_shrunken_world(
        self, replay_dataset, replay_model
    ):
        """Replay never masks a failure; capture resumes after recovery."""
        ref = ElasticTrainer(
            replay_dataset, replay_model, num_gpus=4, plan=FaultPlan()
        )
        ref_stats = ref.fit(EPOCHS)
        fail_at = 0.5 * sum(s.epoch_time for s in ref_stats[:2])

        plan = FaultPlan(device_failures=(DeviceFailure(rank=1, time=fail_at),))
        plain = ElasticTrainer(
            replay_dataset, replay_model, num_gpus=4, plan=plan
        )
        capturing = ElasticTrainer(
            replay_dataset, replay_model, num_gpus=4, plan=plan
        )
        capturing.capture_epochs = True
        assert capturing.capture_epochs

        ps = plain.fit(EPOCHS)
        cs = capturing.fit(EPOCHS)

        assert capturing.num_gpus == 3
        assert len(capturing.recovery_log) == 1
        # the failure surfaced eagerly (no capture before recovery), and
        # the rebuilt trainer — whose remapped plan dropped the retired
        # rank's failure — recaptured on the 3-GPU world.
        assert capturing.plan_stats.captures == 1
        assert capturing.plan_stats.replays >= 1
        # identical trajectory to the non-capturing elastic run, bitwise.
        assert [s.loss for s in ps] == [s.loss for s in cs]
        assert [s.epoch_time for s in ps] == [s.epoch_time for s in cs]
        for wp, wc in zip(plain.get_weights(), capturing.get_weights()):
            assert np.array_equal(wp, wc)


class TestTrainingLoopIntegration:
    def test_loop_capture_epochs(self, replay_dataset, replay_model):
        eager_loop = TrainingLoop(
            MGGCNTrainer(replay_dataset, replay_model, num_gpus=4),
            max_epochs=EPOCHS, eval_every=0,
        )
        capture_loop = TrainingLoop(
            MGGCNTrainer(replay_dataset, replay_model, num_gpus=4),
            max_epochs=EPOCHS, eval_every=0, capture_epochs=True,
        )
        he = eager_loop.run()
        hc = capture_loop.run()
        assert he.losses == hc.losses
        assert he.epoch_times == hc.epoch_times
        assert he.total_simulated_time == hc.total_simulated_time
        assert capture_loop.trainer.plan_stats.replays == EPOCHS - 1

    def test_loop_rejects_unsupported_trainer(self):
        class NoCapture:
            def train_epoch(self):  # pragma: no cover - never called
                raise AssertionError

        with pytest.raises(ConfigurationError):
            TrainingLoop(NoCapture(), max_epochs=1, eval_every=0,
                         capture_epochs=True)
