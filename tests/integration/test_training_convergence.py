"""Convergence and accuracy parity (the paper's §6 'Model' validation).

The paper validates MG-GCN by matching DGL's training-accuracy curve on
Reddit (2 layers, 16 hidden). We train the same configuration on a
scaled learnable Reddit stand-in and require (a) real learning, (b)
accuracy parity between MG-GCN, the DGL baseline and the oracle.
"""

import numpy as np
import pytest

from repro.baselines import DGLLikeTrainer
from repro.core import MGGCNTrainer, TrainerConfig
from repro.datasets import load_dataset
from repro.hardware import dgx_a100
from repro.nn import GCNModelSpec, ReferenceGCN


@pytest.fixture(scope="module")
def reddit_scaled():
    return load_dataset("reddit", scale=0.01, learnable=True, seed=31)


@pytest.fixture(scope="module")
def reddit_model(reddit_scaled):
    # paper model 2: 2 layers, 16 hidden (the DistGNN-comparison config)
    return GCNModelSpec.paper_model(2, reddit_scaled.d0, reddit_scaled.num_classes)


def test_mggcn_learns_communities(reddit_scaled, reddit_model):
    trainer = MGGCNTrainer(
        reddit_scaled, reddit_model, machine=dgx_a100(), num_gpus=8,
        config=TrainerConfig(seed=31),
    )
    stats = trainer.fit(30)
    losses = [s.loss for s in stats]
    assert losses[-1] < 0.5 * losses[0]
    acc = trainer.evaluate("test")
    chance = 1.0 / reddit_scaled.num_classes
    assert acc > 5 * chance


def test_accuracy_parity_with_dgl(reddit_scaled, reddit_model):
    """Same model config, same seed: test accuracies must agree closely
    (the paper's correctness check against DGL)."""
    seed = 31
    mg = MGGCNTrainer(
        reddit_scaled, reddit_model, machine=dgx_a100(), num_gpus=8,
        config=TrainerConfig(seed=seed, first_layer_skip=False),
    )
    dgl = DGLLikeTrainer(reddit_scaled, reddit_model, machine=dgx_a100(), seed=seed)
    for _ in range(30):
        mg.train_epoch()
        dgl.train_epoch()
    acc_mg = mg.evaluate("test")
    acc_dgl = dgl.evaluate("test")
    assert acc_mg == pytest.approx(acc_dgl, abs=0.02)


def test_first_layer_skip_preserves_convergence(reddit_scaled, reddit_model):
    """§4.4's skipped backward SpMM changes layer-0 gradients but must
    not break learning (the paper trains Reddit to DGL parity with it)."""
    exact = MGGCNTrainer(
        reddit_scaled, reddit_model, machine=dgx_a100(), num_gpus=4,
        config=TrainerConfig(seed=32, first_layer_skip=False),
    )
    skipping = MGGCNTrainer(
        reddit_scaled, reddit_model, machine=dgx_a100(), num_gpus=4,
        config=TrainerConfig(seed=32, first_layer_skip=True),
    )
    for _ in range(30):
        exact.train_epoch()
        skipping.train_epoch()
    acc_exact = exact.evaluate("test")
    acc_skip = skipping.evaluate("test")
    assert acc_skip > 0.8 * acc_exact


def test_train_accuracy_exceeds_test(reddit_scaled, reddit_model):
    trainer = MGGCNTrainer(
        reddit_scaled, reddit_model, machine=dgx_a100(), num_gpus=2,
        config=TrainerConfig(seed=33),
    )
    trainer.fit(30)
    assert trainer.evaluate("train") >= trainer.evaluate("test") - 0.05


def test_loss_curve_matches_reference_long_run(reddit_scaled, reddit_model):
    trainer = MGGCNTrainer(
        reddit_scaled, reddit_model, machine=dgx_a100(), num_gpus=4,
        config=TrainerConfig(seed=34, first_layer_skip=False),
    )
    ref = ReferenceGCN(reddit_scaled, reddit_model, seed=34, first_layer_skip=False)
    losses_mg = [s.loss for s in trainer.fit(20)]
    losses_ref = ref.fit(20)
    assert np.allclose(losses_mg, losses_ref, rtol=1e-3, atol=1e-5)
