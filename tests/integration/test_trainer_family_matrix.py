"""Cross-family correctness matrix: every trainer, one oracle.

One parametrised sweep asserting that every distributed training
implementation in the library — MG-GCN, CAGNET 1D, CAGNET 1.5D, CAGNET
2D — computes the identical training trajectory on a 3-layer model on
both modelled machines. This is the library's strongest single guard:
any scheduling, tiling, collective or buffer-aliasing bug anywhere in
the stack surfaces here as a weight mismatch.
"""

import numpy as np
import pytest

from repro.baselines import CAGNET15DTrainer, CAGNET2DTrainer, CAGNETTrainer
from repro.core import MGGCNTrainer, TrainerConfig
from repro.hardware import dgx1, dgx_a100
from repro.nn import GCNModelSpec, ReferenceGCN

SEED = 77


def _mggcn(ds, model, machine):
    return MGGCNTrainer(
        ds, model, machine=machine, num_gpus=4,
        config=TrainerConfig(seed=SEED, first_layer_skip=False),
    )


def _cagnet1d(ds, model, machine):
    return CAGNETTrainer(ds, model, machine=machine, num_gpus=4, seed=SEED)


def _cagnet15d(ds, model, machine):
    return CAGNET15DTrainer(
        ds, model, machine=machine, num_gpus=4, replication=2, seed=SEED
    )


def _cagnet2d(ds, model, machine):
    return CAGNET2DTrainer(ds, model, machine=machine, num_gpus=4, seed=SEED)


FAMILIES = {
    "mggcn": _mggcn,
    "cagnet-1d": _cagnet1d,
    "cagnet-1.5d": _cagnet15d,
    "cagnet-2d": _cagnet2d,
}


@pytest.fixture(scope="module")
def three_layer(small_dataset):
    return GCNModelSpec.build(small_dataset.d0, 12,
                              small_dataset.num_classes, 3)


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("machine_factory", [dgx1, dgx_a100],
                         ids=["dgx1", "dgxa100"])
def test_family_matches_oracle(small_dataset, three_layer, family,
                               machine_factory):
    trainer = FAMILIES[family](small_dataset, three_layer, machine_factory())
    ref = ReferenceGCN(small_dataset, three_layer, seed=SEED)
    for _ in range(3):
        stats = trainer.train_epoch()
        ref_loss = ref.train_epoch()
        assert stats.loss == pytest.approx(ref_loss, rel=1e-4, abs=1e-6), family
    for layer, (a, b) in enumerate(zip(trainer.get_weights(), ref.weights)):
        assert np.allclose(a, b, rtol=5e-3, atol=5e-5), (family, layer)


def test_families_rank_as_expected(small_dataset, three_layer):
    """On the simulated DGX-A100 the optimised system wins the family."""
    times = {
        family: make(small_dataset, three_layer, dgx_a100())
        .train_epoch().epoch_time
        for family, make in FAMILIES.items()
    }
    assert times["mggcn"] == min(times.values()), times
