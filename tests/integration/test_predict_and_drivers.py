"""predict() alignment and quick-parameter runs of the figure drivers."""

import numpy as np
import pytest

from repro.core import MGGCNTrainer, TrainerConfig
from repro.datasets.loader import SymbolicDataset
from repro.experiments import figures
from repro.hardware import dgx1
from repro.nn import GCNModelSpec, ReferenceGCN


class TestPredict:
    def test_matches_reference_in_original_order(self, small_dataset,
                                                 small_model):
        cfg = TrainerConfig(seed=61, first_layer_skip=False, permute=True)
        trainer = MGGCNTrainer(small_dataset, small_model, machine=dgx1(),
                               num_gpus=4, config=cfg)
        ref = ReferenceGCN(small_dataset, small_model, seed=61,
                           first_layer_skip=False)
        for _ in range(3):
            trainer.train_epoch()
            ref.train_epoch()
        assert np.array_equal(trainer.predict(), ref.predict())

    def test_unpermuted_also_aligned(self, small_dataset, small_model):
        cfg = TrainerConfig(seed=61, first_layer_skip=False, permute=False)
        trainer = MGGCNTrainer(small_dataset, small_model, machine=dgx1(),
                               num_gpus=2, config=cfg)
        ref = ReferenceGCN(small_dataset, small_model, seed=61,
                           first_layer_skip=False)
        trainer.train_epoch()
        ref.train_epoch()
        assert np.array_equal(trainer.predict(), ref.predict())

    def test_accuracy_consistent_with_evaluate(self, small_dataset,
                                               small_model):
        trainer = MGGCNTrainer(small_dataset, small_model, machine=dgx1(),
                               num_gpus=4, config=TrainerConfig(seed=62))
        trainer.fit(10)
        pred = trainer.predict()
        mask = small_dataset.test_mask
        manual = float(
            (pred[mask] == small_dataset.labels[mask]).mean()
        )
        assert manual == pytest.approx(trainer.evaluate("test"))


class TestDriversQuick:
    """Exercise every experiment driver code path with cheap parameters."""

    def test_fig6_driver(self):
        out = figures.fig6_permutation_timeline(scale=0.0008, num_gpus=2)
        assert out["permuted"]["spmm_time"] > 0
        assert out["original"]["spmm_time"] > 0

    def test_fig8_driver(self):
        out = figures.fig8_overlap_timeline(scale=0.0008, num_gpus=2)
        assert out["overlapped"]["spmm_time"] <= out["serialized"]["spmm_time"] * 1.2

    def test_fig7_driver_subset(self):
        result = figures.fig7_perm_overlap_speedup(
            datasets=("cora",), gpu_counts=(1, 2)
        )
        assert result.get("cora/2", "perm") is not None

    def test_fig9_driver_subset(self):
        result = figures.fig9_degree_scaling(scales=(1, 8), gpu_counts=(1, 4))
        assert result.get("8x", "4gpu") > result.get("1x", "4gpu") * 0.9

    def test_runtime_comparison_subset(self):
        result = figures.epoch_runtime_comparison(
            dgx1(), include_cagnet=True, datasets=("arxiv",),
            gpu_counts=(1, 2),
        )
        assert result.get("arxiv/mggcn", "1") is not None
        assert result.get("arxiv/cagnet", "2") is not None
        speed = figures.speedup_vs_dgl(
            result, datasets=("arxiv",), gpu_counts=(1, 2), include_cagnet=True
        )
        assert speed.get("arxiv/mggcn", "1") > 1.0

    def test_fig12_driver(self):
        result = figures.fig12_memory_footprint()
        assert result.get("mggcn/8gpu", "max_layers") > result.get(
            "cagnet/8gpu", "max_layers"
        )

    def test_table1_driver(self):
        result = figures.table1()
        assert result.get("reddit", "n") == 233_000

    def test_sec51_driver(self):
        result = figures.sec51_partitioning_analysis()
        assert result.get("DGX-1-V100", "ratio_15d_over_1d") > 1.0

    def test_accuracy_driver_quick(self):
        result = figures.accuracy_parity(scale=0.005, epochs=10, num_gpus=2)
        assert result.get("mggcn", "test_acc") is not None
