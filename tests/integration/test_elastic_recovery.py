"""Integration: elastic recovery from mid-training device failure.

The acceptance bar for the resilience subsystem: a seeded plan that
kills 1 of 4 GPUs mid-training must recover onto 3 GPUs and reach the
uninterrupted reference accuracy (FUNCTIONAL mode), with the recovery
protocol visible as discrete events on the simulated timeline — and an
*empty* plan must change nothing at all, bitwise.
"""

import numpy as np
import pytest

from repro.core.trainer import MGGCNTrainer, TrainerConfig
from repro.resilience import DeviceFailure, FaultPlan, RecoveryPolicy
from repro.resilience.chaos import ChaosScenario, run_chaos_scenario
from repro.resilience.recovery import ElasticTrainer
from repro.training.loop import TrainingLoop

EPOCHS = 6
# weights diverge only by cross-GPU-count reduction order; the existing
# equivalence suite allows rtol=5e-3/atol=5e-5, we hold recovery tighter.
W_RTOL, W_ATOL = 1e-5, 1e-7


def _fail_mid_epoch(ref_stats, epoch):
    """A time ~60% into ``epoch`` (1-based) of the reference run."""
    before = sum(s.epoch_time for s in ref_stats[: epoch - 1])
    return before + 0.6 * ref_stats[epoch - 1].epoch_time


@pytest.fixture(scope="module")
def reference(small_dataset, small_model):
    trainer = MGGCNTrainer(small_dataset, small_model, num_gpus=4)
    stats = trainer.fit(EPOCHS)
    return trainer, stats


class TestElasticRecovery:
    def test_mid_epoch_failure_recovers_and_matches_reference(
        self, small_dataset, small_model, reference
    ):
        ref_trainer, ref_stats = reference
        plan = FaultPlan(
            device_failures=(
                DeviceFailure(rank=2, time=_fail_mid_epoch(ref_stats, 4)),
            )
        )
        elastic = ElasticTrainer(small_dataset, small_model, num_gpus=4, plan=plan)
        stats = [elastic.train_epoch() for _ in range(EPOCHS)]

        # world shrank once, from 4 to 3
        assert elastic.num_gpus == 3
        assert len(elastic.recovery_log) == 1
        ev = elastic.recovery_log[0]
        assert ev.failed_rank == 2
        assert ev.survivors == 3
        assert ev.recovered_at > ev.detected_at >= ev.failed_at

        # FUNCTIONAL-mode guarantee: same training trajectory as the
        # uninterrupted run, to the cross-GPU-count tolerance.
        for got, want in zip(elastic.get_weights(), ref_trainer.get_weights()):
            np.testing.assert_allclose(got, want, rtol=W_RTOL, atol=W_ATOL)
        acc = elastic.evaluate("test")
        ref_acc = ref_trainer.evaluate("test")
        assert acc == pytest.approx(ref_acc, rel=1e-5)
        assert len(stats) == EPOCHS
        assert elastic.epochs_trained == EPOCHS

        # recovery cost shows up as discrete timeline events
        names = {ev.name for ev in elastic.ctx.engine.trace}
        assert "recovery/checkpoint_restore" in names
        assert "recovery/repartition" in names
        assert any(n.startswith("recovery/bcast_w") for n in names)
        categories = elastic.ctx.engine.events_by_category()
        assert categories.get("recovery", 0.0) > 0.0

    def test_replay_from_stale_checkpoint(
        self, small_dataset, small_model, reference
    ):
        """checkpoint_every=2 forces one epoch of replay after the failure."""
        ref_trainer, ref_stats = reference
        plan = FaultPlan(
            device_failures=(
                DeviceFailure(rank=0, time=_fail_mid_epoch(ref_stats, 4)),
            )
        )
        elastic = ElasticTrainer(
            small_dataset,
            small_model,
            num_gpus=4,
            plan=plan,
            policy=RecoveryPolicy(checkpoint_every=2),
        )
        elastic.fit(EPOCHS)
        assert elastic.recovery_log[0].replayed_epochs == 1
        for got, want in zip(elastic.get_weights(), ref_trainer.get_weights()):
            np.testing.assert_allclose(got, want, rtol=W_RTOL, atol=W_ATOL)

    def test_empty_plan_is_bit_identical(self, small_dataset, small_model):
        plain = MGGCNTrainer(small_dataset, small_model, num_gpus=4)
        plain_stats = plain.fit(3)
        elastic = ElasticTrainer(
            small_dataset, small_model, num_gpus=4, plan=FaultPlan()
        )
        elastic_stats = [elastic.train_epoch() for _ in range(3)]
        for a, b in zip(plain_stats, elastic_stats):
            assert a.epoch_time == b.epoch_time  # exact
            assert a.loss == b.loss
        for a, b in zip(plain.get_weights(), elastic.get_weights()):
            assert (a == b).all()
        assert elastic.recovery_log == []

    def test_training_loop_drives_recovery(
        self, small_dataset, small_model, reference
    ):
        """auto_recover=False hands the failure to TrainingLoop."""
        _, ref_stats = reference
        plan = FaultPlan(
            device_failures=(
                DeviceFailure(rank=1, time=_fail_mid_epoch(ref_stats, 2)),
            )
        )
        elastic = ElasticTrainer(
            small_dataset,
            small_model,
            num_gpus=4,
            plan=plan,
            policy=RecoveryPolicy(auto_recover=False),
        )
        loop = TrainingLoop(
            elastic, max_epochs=4, eval_every=0, recover_on_failure=True
        )
        history = loop.run()
        assert history.epochs == 4
        assert history.recoveries == [2]
        assert elastic.num_gpus == 3

    def test_failure_budget_exhaustion(self, small_dataset, small_model, reference):
        from repro.errors import RecoveryError

        _, ref_stats = reference
        plan = FaultPlan(
            device_failures=(
                DeviceFailure(rank=0, time=_fail_mid_epoch(ref_stats, 1)),
            )
        )
        elastic = ElasticTrainer(
            small_dataset,
            small_model,
            num_gpus=4,
            plan=plan,
            policy=RecoveryPolicy(max_failures=0),
        )
        with pytest.raises(RecoveryError):
            elastic.fit(2)

    def test_symbolic_dataset_rejected(self, small_model):
        from repro.datasets import load_dataset
        from repro.errors import ConfigurationError

        symbolic = load_dataset("reddit", symbolic=True)
        with pytest.raises(ConfigurationError):
            ElasticTrainer(symbolic, small_model, num_gpus=4)


class TestChaosHarness:
    def test_chaos_smoke(self, small_dataset, small_model, reference):
        """Fast tier-1 scenario: one failure + transient faults, 3 epochs."""
        _, ref_stats = reference
        from repro.resilience import CollectiveFault, StragglerSlowdown

        horizon = sum(s.epoch_time for s in ref_stats)
        plan = FaultPlan(
            device_failures=(
                DeviceFailure(rank=3, time=_fail_mid_epoch(ref_stats, 2)),
            ),
            stragglers=(
                StragglerSlowdown(
                    rank=0, factor=1.5, start=0.0, end=0.3 * horizon
                ),
            ),
            collective_faults=(
                CollectiveFault(start=0.0, end=horizon, failures=1),
            ),
        )
        report = run_chaos_scenario(
            ChaosScenario(
                dataset=small_dataset,
                model=small_model,
                plan=plan,
                epochs=3,
                num_gpus=4,
            )
        )
        assert report.survived
        assert report.final_gpus == 3
        assert report.num_recoveries == 1
        assert report.recovery_time > 0.0
        assert report.test_accuracy is not None and report.test_accuracy > 0.3
        assert len(report.losses) == 3
        assert np.all(np.isfinite(report.losses))
        assert report.time_by_category.get("recovery", 0.0) > 0.0

    @pytest.mark.chaos
    def test_random_plan_sweep(self, small_dataset, small_model):
        """Seeded random scenarios all finish (long; run with '-m chaos')."""
        base = ElasticTrainer(
            small_dataset, small_model, num_gpus=4, plan=FaultPlan()
        )
        horizon = sum(s.epoch_time for s in base.fit(4))
        for seed in range(5):
            plan = FaultPlan.random(
                num_gpus=4,
                horizon=horizon,
                seed=seed,
                device_failure_rate=1.0 / horizon,
                straggler_rate=1.0 / horizon,
                collective_fault_rate=1.0 / horizon,
                window=horizon / 4,
            )
            report = run_chaos_scenario(
                ChaosScenario(
                    dataset=small_dataset,
                    model=small_model,
                    plan=plan,
                    epochs=4,
                    num_gpus=4,
                )
            )
            assert report.survived
            assert report.final_gpus == 4 - len(plan.device_failures)
