"""Integration: incidents auto-produce replayable postmortem bundles.

The acceptance bar for the flight recorder: an injected device death
during elastic training and an SLO-breaching serving run must each dump
a postmortem bundle *on their own* (no test-side dump calls), and each
bundle must replay into a merged Chrome trace — engine rows on disjoint
pids, the span tree on per-depth thread rows, and correlation ids that
survive the engine replacement the incident caused.
"""

import os

import pytest

from repro.core.trainer import MGGCNTrainer
from repro.resilience import DeviceFailure, FaultPlan
from repro.resilience.recovery import ElasticTrainer
from repro.serve import ServingConfig, ServingEngine, poisson_workload
from repro.telemetry import (
    FlightRecorder,
    SLOMonitor,
    Telemetry,
    bundle_events,
    bundle_spans,
    bundle_to_chrome_trace,
    default_serving_slos,
    load_bundle,
)
from repro.training.loop import TrainingLoop

EPOCHS = 3


def _process_pids(events):
    return {
        ev["args"]["name"]: ev["pid"]
        for ev in events
        if ev.get("ph") == "M" and ev["name"] == "process_name"
    }


@pytest.fixture(scope="module")
def device_death(small_dataset, small_model, tmp_path_factory):
    """Elastic training that loses rank 1 mid-epoch 2, black box armed."""
    dump_dir = tmp_path_factory.mktemp("flight-elastic")
    recorder = FlightRecorder(auto_dump_dir=dump_dir)
    telemetry = Telemetry(run_id="elastic", trace_ops=True, flight=recorder)
    ref = MGGCNTrainer(small_dataset, small_model, num_gpus=4)
    ref_stats = ref.fit(2)
    fail_time = ref_stats[0].epoch_time + 0.6 * ref_stats[1].epoch_time
    elastic = ElasticTrainer(
        small_dataset, small_model, num_gpus=4,
        plan=FaultPlan(device_failures=(
            DeviceFailure(rank=1, time=fail_time),
        )),
    )
    TrainingLoop(
        elastic, max_epochs=EPOCHS, eval_every=0, telemetry=telemetry
    ).run()
    return recorder, dump_dir, elastic


@pytest.fixture(scope="module")
def slo_breach(small_dataset, small_model, tmp_path_factory):
    """A serving run whose latency SLO cannot survive, black box armed."""
    dump_dir = tmp_path_factory.mktemp("flight-serve")
    recorder = FlightRecorder(auto_dump_dir=dump_dir)
    telemetry = Telemetry(run_id="serving", trace_ops=True, flight=recorder)
    trainer = MGGCNTrainer(small_dataset, small_model, num_gpus=2)
    trainer.fit(1)
    monitor = SLOMonitor(
        # an impossible latency objective: every request burns budget.
        default_serving_slos(1e-12, hit_rate_target=0.9)
    )
    serving = ServingEngine(
        small_dataset, trainer.get_weights(), small_model,
        config=ServingConfig(
            num_gpus=4,
            cache_entries=2 * small_dataset.n,
            num_pinned=max(small_dataset.n // 100, 1),
            fault_plan=FaultPlan(device_failures=(
                DeviceFailure(rank=1, time=2e-3),
            )),
        ),
        telemetry=telemetry,
        slo=monitor,
    )
    serving.warm_cache()
    serving.serve(
        poisson_workload(small_dataset, 60, rate=5000.0, skew=1.0, seed=7)
    )
    return recorder, dump_dir, serving, monitor


class TestDeviceDeathBundle:
    def test_recovery_auto_dumps_a_bundle(self, device_death):
        recorder, dump_dir, elastic = device_death
        assert elastic.num_gpus == 3  # the injected death really happened
        assert recorder.dumps_total == 1
        path = os.path.join(dump_dir, "postmortem-000-recovery.json")
        bundle = load_bundle(path)
        meta = bundle["meta"]
        assert meta["trigger"] == "recovery"
        assert meta["outcome"] == "recovered"
        assert meta["failed_rank"] == 1
        assert meta["run_id"] == "elastic"
        assert meta["time"] == pytest.approx(
            elastic.recovery_log[0].recovered_at
        )
        kinds = {r["kind"] for r in bundle["records"]}
        assert {"op", "fault"} <= kinds
        fault = next(r for r in bundle["records"] if r["kind"] == "fault")
        assert fault["rank"] == 1
        assert fault["survivors"] == 3
        assert bundle["metrics"]  # registry snapshot rode along

    def test_correlations_survive_the_replacement_engine(self, device_death):
        recorder, _dump_dir, elastic = device_death
        tracer = bundle_spans(recorder.bundles[0])
        recoveries = [s for s in tracer.spans if s.name == "recovery"]
        assert len(recoveries) == 1
        assert recoveries[0].correlation == "recovery-0"
        # the protocol's engine ops ran on the *replacement* engine (the
        # hub is carried across the swap); their op spans still inherit
        # the recovery span's correlation id.
        protocol = [
            s for s in tracer.spans if s.name.startswith("recovery/")
        ]
        assert protocol, "recovery protocol ops must reach the bundle"
        assert {s.correlation for s in protocol} == {"recovery-0"}
        assert any(s.name.startswith("recovery/bcast_w") for s in protocol)
        # pre-failure work keeps its own epoch correlation next to them.
        assert any(s.correlation == "epoch-1" for s in tracer.spans)

    def test_bundle_replays_into_a_merged_chrome_trace(self, device_death):
        recorder, _dump_dir, _elastic = device_death
        events = bundle_to_chrome_trace(recorder.bundles[0])
        pids = _process_pids(events)
        assert "spans" in pids
        assert any(name.startswith("elastic/") for name in pids)
        assert len(set(pids.values())) == len(pids)  # disjoint pid blocks
        # the span tree renders one thread row per nesting depth.
        depth_rows = {
            ev["args"]["name"]
            for ev in events
            if ev.get("ph") == "M" and ev["name"] == "thread_name"
            and ev["pid"] == pids["spans"]
        }
        assert {"depth0", "depth1"} <= depth_rows
        # the recovery correlation is queryable straight off the trace.
        correlated = [
            ev for ev in events
            if ev.get("ph") == "X"
            and ev.get("args", {}).get("correlation") == "recovery-0"
        ]
        assert correlated


class TestSLOBreachBundle:
    def test_breach_auto_dumps_a_bundle(self, slo_breach):
        recorder, dump_dir, _serving, monitor = slo_breach
        assert monitor.breaches, "the impossible SLO must breach"
        first = monitor.breaches[0]
        assert recorder.dumps_total == len(monitor.breaches)
        path = os.path.join(dump_dir, "postmortem-000-slo_breach.json")
        bundle = load_bundle(path)
        meta = bundle["meta"]
        assert meta["trigger"] == "slo_breach"
        assert meta["slo"] == first.slo
        assert meta["time"] == pytest.approx(first.time)
        assert len(meta["burn_rates"]) == 2
        assert all(rate >= 1.0 for rate in meta["burn_rates"])

    def test_sections_split_warm_from_serve(self, slo_breach):
        recorder, _dump_dir, _serving, _monitor = slo_breach
        sections = bundle_events(recorder.bundles[0])
        # cache warming ran under the run id; the serve loop retags.
        assert "serve" in sections
        assert "serving" in sections
        batches = {
            ev.correlation
            for ev in sections["serve"]
            if ev.correlation and ev.correlation.startswith("batch-")
        }
        assert len(batches) > 1

    def test_correlations_survive_degraded_mode(self, slo_breach):
        recorder, _dump_dir, serving, _monitor = slo_breach
        assert serving.metrics.degrade_events
        bundle = recorder.bundles[-1]
        degrades = [
            r for r in bundle["records"] if r["kind"] == "degrade"
        ]
        assert degrades and degrades[0]["rank"] == 1
        # batches served after the death (on the shrunken engine) still
        # carry their request correlation ids into the black box.
        after = [
            r for r in bundle["records"]
            if r["kind"] == "op" and r["section"] == "serve"
            and r["start"] >= degrades[0]["time"]
            and (r["correlation"] or "").startswith("batch-")
        ]
        assert after

    def test_bundle_replays_into_a_merged_chrome_trace(self, slo_breach):
        recorder, _dump_dir, _serving, _monitor = slo_breach
        events = bundle_to_chrome_trace(recorder.bundles[0])
        pids = _process_pids(events)
        assert "spans" in pids
        assert any(name.startswith("serve/") for name in pids)
        assert len(set(pids.values())) == len(pids)
        batch_rows = [
            ev for ev in events
            if ev.get("ph") == "X" and ev["pid"] == pids["spans"]
            and str(ev.get("args", {}).get("correlation", "")).startswith(
                "batch-"
            )
        ]
        assert batch_rows
