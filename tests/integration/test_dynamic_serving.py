"""Integration: mixed query/mutation/retrain serving (repro.dynamic)."""

import numpy as np
import pytest

from repro.core import TrainerConfig
from repro.datasets import load_dataset, sample_query_vertices
from repro.dynamic import (
    DynamicGraph,
    DynamicServingEngine,
    IncrementalTrainer,
    Rebalancer,
    poisson_mutations,
)
from repro.errors import ConfigurationError
from repro.hardware import dgx_a100
from repro.nn import GCNModelSpec
from repro.nn.init import init_weights
from repro.serve import ServingConfig, ServingEngine, poisson_workload
from repro.telemetry import Telemetry

pytestmark = pytest.mark.dynamic


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("reddit", scale=0.002, learnable=True, seed=0)


def serving_config(n, **overrides):
    defaults = dict(
        machine=dgx_a100(),
        num_gpus=4,
        cache_entries=4 * n,
        num_pinned=8,
        max_batch_size=8,
        max_wait=1e-3,
    )
    defaults.update(overrides)
    return ServingConfig(**defaults)


def build_dynamic(dataset, num_layers=2, seed=3, **cfg):
    spec = GCNModelSpec.build(dataset.d0, 16, dataset.num_classes, num_layers)
    weights = init_weights(spec.layer_dims, seed=seed)
    graph = DynamicGraph(dataset)
    dyn = DynamicServingEngine(
        graph, weights, spec,
        config=serving_config(dataset.n, **cfg),
    )
    return dyn, spec, weights


class TestDeltaInvalidationTransparency:
    @pytest.mark.parametrize("num_layers", [2, 3])
    def test_warm_queries_bitwise_match_cold_engine(self, dataset,
                                                    num_layers):
        """After mutations, the delta-invalidated warm cache must be
        indistinguishable from a cold engine built on the final graph."""
        dyn, spec, weights = build_dynamic(dataset, num_layers=num_layers)
        requests = poisson_workload(dataset, 40, rate=2000.0, skew=1.0,
                                    seed=11)
        mutations = poisson_mutations(dataset, 3, rate=400.0,
                                      edges_per_batch=10, skew=0.8, seed=13)
        result = dyn.run(requests, mutations)
        assert len(result.generations) == 3
        # the warm cache was exercised and only partially evicted
        assert result.total_flush_equivalent > 0
        assert result.total_delta_evicted < result.total_flush_equivalent

        snap = dyn.graph.snapshot_dataset()
        cold = ServingEngine(
            snap, weights, spec, config=serving_config(dataset.n)
        )
        targets = sample_query_vertices(snap, 30, skew=0.7, seed=17)
        warm_logits = dyn.engine.query(targets)
        cold_logits = cold.query(targets)
        assert np.array_equal(warm_logits, cold_logits)

    def test_incremental_matrices_bitwise_match_scratch(self, dataset):
        dyn, _, _ = build_dynamic(dataset)
        for batch in poisson_mutations(dataset, 3, rate=400.0,
                                       edges_per_batch=10, skew=0.8, seed=13):
            dyn.apply(batch)
            dyn.commit(arrival=batch.arrival)
            adj, a_hat_t = dyn.graph.scratch_rebuild()
            assert dyn.graph.a_hat_t.equals(a_hat_t)
            assert dyn.engine.a_hat_t is dyn.graph.a_hat_t


class TestMixedRun:
    def test_run_serves_everything_and_reports_generations(self, dataset):
        dyn, _, _ = build_dynamic(dataset)
        requests = poisson_workload(dataset, 30, rate=1500.0, skew=0.5,
                                    seed=5)
        mutations = poisson_mutations(dataset, 4, rate=300.0,
                                      edges_per_batch=6, skew=0.5, seed=7)
        result = dyn.run(requests, mutations)
        assert set(result.logits) == {r.request_id for r in requests}
        assert len(result.generations) == 4
        gens = [g.generation for g in result.generations]
        assert gens == sorted(gens) and len(set(gens)) == 4
        arrivals = [g.arrival for g in result.generations]
        assert arrivals == sorted(arrivals)
        for g in result.generations:
            assert g.mutations_applied > 0
            assert g.rows_rebuilt > 0
            assert 0.0 <= g.eviction_fraction <= 1.0
        assert result.summary["num_requests"] == len(requests)

    def test_empty_request_stream_rejected(self, dataset):
        dyn, _, _ = build_dynamic(dataset)
        with pytest.raises(ConfigurationError):
            dyn.run([], poisson_mutations(dataset, 1, rate=10.0, seed=0))


class TestRebalanceAndRetrain:
    def test_growth_recuts_routing_without_rebalancer(self, dataset):
        dyn, _, _ = build_dynamic(dataset)
        d = dataset.d0
        from repro.dynamic import MutationBatch
        n0 = dyn.graph.n
        dyn.apply(MutationBatch(
            batch_id=0, arrival=0.0,
            insert_edges=np.array([[n0, 0], [n0 + 1, 1]], dtype=np.int64),
            add_features=np.zeros((2, d), dtype=np.float32),
            add_labels=np.zeros(2, dtype=np.int64),
        ))
        stats = dyn.commit()
        assert stats.num_vertices == n0 + 2
        assert stats.rebalance_triggered
        assert dyn.engine.partition.total == n0 + 2
        assert dyn.engine._owner_of.size == n0 + 2
        # new vertices are servable
        out = dyn.engine.query(np.array([n0, n0 + 1]))
        assert out.shape[0] == 2

    def test_rebalancer_and_retrain_path(self, dataset):
        spec = GCNModelSpec.build(dataset.d0, 16, dataset.num_classes, 2)
        graph = DynamicGraph(dataset)
        inc = IncrementalTrainer(
            graph, spec, num_gpus=2,
            config=TrainerConfig(seed=1, lr=1e-3),
            retrain_epochs_per_generation=1,
        )
        inc.trainer.train_epoch()
        telemetry = Telemetry(run_id="dyn-test")
        dyn = DynamicServingEngine(
            graph, inc.trainer.get_weights(), spec,
            config=serving_config(dataset.n),
            telemetry=telemetry,
            rebalancer=Rebalancer(parts=4, threshold=1.0001,
                                  feature_dim=dataset.d0),
            incremental=inc,
        )
        version_before = dyn.engine.model_version
        requests = poisson_workload(dataset, 20, rate=1500.0, seed=5)
        mutations = poisson_mutations(dataset, 2, rate=300.0,
                                      edges_per_batch=8, skew=0.8, seed=7)
        result = dyn.run(requests, mutations)
        assert all(g.retrain_epochs == 1 for g in result.generations)
        assert dyn.engine.model_version == version_before + 2
        assert inc.refreshes == 2
        assert not inc.stale
        flat = telemetry.registry.flatten()
        for key in (
            "repro_dynamic_generations_total",
            "repro_dynamic_mutations_applied_total",
            "repro_dynamic_rows_rebuilt_total",
            "repro_dynamic_cache_entries_delta_evicted_total",
            "repro_dynamic_cache_flush_equivalent_total",
            "repro_dynamic_retrains_total",
            "repro_dynamic_retrain_epochs_total",
            "repro_dynamic_vertices",
            "repro_dynamic_edges",
        ):
            assert key in flat, key
        assert flat["repro_dynamic_generations_total"] == 2
        assert flat["repro_dynamic_retrain_epochs_total"] == 2

    def test_tile_cache_attached_to_boundary(self, dataset):
        spec = GCNModelSpec.build(dataset.d0, 8, dataset.num_classes, 2)
        graph = DynamicGraph(dataset)
        inc = IncrementalTrainer(
            graph, spec, num_gpus=2,
            config=TrainerConfig(seed=0, cache_staleness_epochs=1,
                                 permute=False),
            retrain_epochs_per_generation=0,
        )
        inc.trainer.train_epoch()
        cache = inc.trainer.training_cache
        assert cache is not None and len(cache) > 0
        dyn = DynamicServingEngine(
            graph, inc.trainer.get_weights(), spec,
            config=serving_config(dataset.n),
        )
        dyn.attach_tile_cache(cache, inc.trainer.graph.part,
                              perm=inc.trainer.graph.perm)
        for batch in poisson_mutations(dataset, 2, rate=300.0,
                                       edges_per_batch=12, skew=1.0, seed=9):
            dyn.apply(batch)
        stats = dyn.commit()
        assert stats.tile_flush_equivalent > 0
        assert stats.tile_entries_delta_evicted <= stats.tile_flush_equivalent
