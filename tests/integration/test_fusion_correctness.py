"""Integration: op fusion and batched submission change *nothing* observable.

The acceptance bar for the fused/batched fast paths: with ``fuse_ops``
and/or ``batched_submit`` on (any backend), losses, epoch times, the
full trace — including event *order* — and the final weights are
*bitwise* equal to the plain op-at-a-time run, eagerly and through
capture/replay with plan-level fusion. The engine-level suites pin the
mechanism: ``submit_fused`` / ``submit_many`` emit trace events equal to
the sequential submits they replace.
"""

import numpy as np
import pytest

from repro.core.trainer import MGGCNTrainer, TrainerConfig
from repro.datasets import load_dataset
from repro.device import Engine, VirtualGPU
from repro.hardware.machines import V100
from repro.nn import GCNModelSpec

EPOCHS = 4


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("cora", scale=0.1, learnable=True, seed=7)


@pytest.fixture(scope="module")
def model(dataset):
    return GCNModelSpec.build(dataset.d0, 8, dataset.num_classes, 3)


def _run(dataset, model, num_gpus, **config):
    trainer = MGGCNTrainer(
        dataset, model, num_gpus=num_gpus, config=TrainerConfig(**config)
    )
    stats = trainer.fit(EPOCHS)
    trace = [
        (e.device, e.stream, e.name, e.category, e.start, e.end, e.stage,
         e.nbytes, e.correlation, e.flops)
        for s in stats for e in s.trace
    ]
    return (
        [s.loss for s in stats],
        [s.epoch_time for s in stats],
        trace,
        trainer.get_weights(),
    )


def _assert_identical(got, want):
    assert got[0] == want[0]  # losses, bitwise
    assert got[1] == want[1]  # epoch times, bitwise
    assert got[2] == want[2]  # full trace, order included
    for gw, ww in zip(got[3], want[3]):
        assert np.array_equal(gw, ww)


FAST_PATHS = [
    dict(fuse_ops=True),
    dict(batched_submit=True),
    dict(fuse_ops=True, batched_submit=True),
    dict(fuse_ops=True, batched_submit=True, kernel_backend="blas_batched"),
]


@pytest.mark.parametrize("num_gpus", [1, 4], ids=["P1", "P4"])
class TestEagerFusionIdentity:
    @pytest.mark.parametrize(
        "config", FAST_PATHS,
        ids=["fuse", "batched", "fuse+batched", "fuse+batched+blas"],
    )
    def test_fast_path_is_bitwise_identical(self, dataset, model, num_gpus,
                                            config):
        baseline = _run(dataset, model, num_gpus)
        fast = _run(dataset, model, num_gpus, **config)
        _assert_identical(fast, baseline)

    def test_fused_trace_is_nonempty_and_covers_categories(
        self, dataset, model, num_gpus
    ):
        _, _, trace, _ = _run(dataset, model, num_gpus, fuse_ops=True)
        categories = {t[3] for t in trace}
        assert {"gemm", "spmm", "activation"} <= categories


@pytest.mark.parametrize("num_gpus", [1, 4], ids=["P1", "P4"])
class TestReplayFusionIdentity:
    @pytest.mark.parametrize(
        "config", FAST_PATHS,
        ids=["fuse", "batched", "fuse+batched", "fuse+batched+blas"],
    )
    def test_captured_fast_path_matches_plain_eager(
        self, dataset, model, num_gpus, config
    ):
        baseline = _run(dataset, model, num_gpus)
        replayed = _run(dataset, model, num_gpus, capture_epochs=True,
                        **config)
        _assert_identical(replayed, baseline)

    def test_plan_fusion_reduces_op_count(self, dataset, model, num_gpus):
        plain = MGGCNTrainer(
            dataset, model, num_gpus=num_gpus,
            config=TrainerConfig(capture_epochs=True),
        )
        fused = MGGCNTrainer(
            dataset, model, num_gpus=num_gpus,
            config=TrainerConfig(capture_epochs=True, fuse_ops=True),
        )
        plain.fit(2)
        fused.fit(2)
        assert fused._plan.num_ops < plain._plan.num_ops


class TestEngineFusedSubmission:
    """``submit_fused``/``submit_many`` vs sequential ``submit`` calls."""

    PARTS = [
        ("spmm0", "spmm", 2.0, 0, 64, 100.0),
        ("gemm0", "gemm", 3.0, None, 0, 200.0),
        ("relu0", "activation", 0.5, None, 0, 10.0),
    ]

    def _sequential_trace(self):
        engine = Engine()
        dev = VirtualGPU(V100, rank=0)
        stream = dev.compute_stream
        dep = engine.submit(dev.comm_stream, "bcast", "comm", 1.0)
        prev = [dep]
        for name, category, duration, stage, nbytes, flops in self.PARTS:
            prev = [engine.submit(stream, name, category, duration, deps=prev,
                                  stage=stage, nbytes=nbytes, flops=flops)]
        return engine.trace, prev[0].time

    def test_submit_fused_trace_matches_sequential(self):
        want_trace, want_end = self._sequential_trace()
        engine = Engine()
        dev = VirtualGPU(V100, rank=0)
        dep = engine.submit(dev.comm_stream, "bcast", "comm", 1.0)
        event = engine.submit_fused(dev.compute_stream, self.PARTS,
                                    deps=[dep])
        assert event.time == want_end
        assert engine.trace == want_trace
        assert engine.events_by_category() == {
            "comm": 1.0, "spmm": 2.0, "gemm": 3.0, "activation": 0.5,
        }

    def test_submit_many_trace_matches_sequential(self):
        want_trace, _ = self._sequential_trace()
        engine = Engine()
        dev = VirtualGPU(V100, rank=0)
        stream = dev.compute_stream
        dep = engine.submit(dev.comm_stream, "bcast", "comm", 1.0)
        specs = []
        prev = [dep]
        events = []
        # batch with intra-batch stream serialisation (repeated stream)
        for name, category, duration, stage, nbytes, flops in self.PARTS:
            specs.append((stream, name, category, duration, tuple(prev),
                          stage, nbytes, None, None, flops))
            prev = []  # later parts serialise via the shared stream
        events = engine.submit_many(specs)
        assert [e.time for e in events] == [3.0, 6.0, 6.5]
        assert engine.trace == want_trace

    def test_submit_many_empty_batch(self):
        assert Engine().submit_many([]) == []
