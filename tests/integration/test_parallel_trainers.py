"""Multi-node trainers: reference equivalence, speed, capture, recovery.

The subsystem's correctness claim: hierarchical collectives are
bit-identical to flat ones, so every :mod:`repro.parallel` trainer —
1.5D, 2D (SUMMA) and the planner-driven mixture — computes the same
float32 training trajectory as the partitioned algorithm it wraps, and
matches the sequential NumPy reference at ``rtol=1e-5`` (with a tiny
``2e-6`` absolute floor for Adam-amplified last-ulp noise on
near-zero weights).
"""

import numpy as np
import pytest

from repro.core import MGGCNTrainer, TrainerConfig
from repro.datasets import load_dataset
from repro.hardware import dgx1, multi_node_cluster
from repro.hardware.machines import uniform_machine
from repro.nn import GCNModelSpec, ReferenceGCN
from repro.parallel import (
    MixtureTrainer,
    Parallel15DTrainer,
    Parallel2DTrainer,
)

EPOCHS = 3
RTOL, ATOL = 1e-5, 2e-6


@pytest.fixture(scope="module")
def two_node_cluster():
    """2 DGX-1 nodes over IB: 16 GPUs, square (2D-capable)."""
    return multi_node_cluster(2, dgx1())


@pytest.fixture(scope="module")
def mini_cluster():
    """2 nodes x 2 GPUs: node-spanning with minimal partitions."""
    return multi_node_cluster(2, node=uniform_machine(2, name="mini-node"))


def _assert_matches_reference(trainer, dataset, model, label):
    ref = ReferenceGCN(dataset, model, seed=9)
    for _ in range(EPOCHS):
        stats = trainer.train_epoch()
        ref_loss = ref.train_epoch()
        assert stats.loss == pytest.approx(ref_loss, rel=1e-4, abs=1e-6), label
    for layer, (a, b) in enumerate(zip(trainer.get_weights(), ref.weights)):
        assert np.allclose(a, b, rtol=RTOL, atol=ATOL), (
            f"{label}: layer {layer} max err {np.abs(a - b).max()}"
        )


@pytest.mark.parametrize("gpus", [4, 16])
def test_15d_matches_reference_both_datasets(
    small_dataset, small_model, tiny_dataset, tiny_model,
    mini_cluster, two_node_cluster, gpus,
):
    cluster = mini_cluster if gpus == 4 else two_node_cluster
    for ds, model in (
        (small_dataset, small_model),
        (tiny_dataset, tiny_model),
    ):
        trainer = Parallel15DTrainer(
            ds, model, machine=cluster, num_gpus=gpus, replication=2, seed=9
        )
        _assert_matches_reference(trainer, ds, model, f"15d P={gpus}")


@pytest.mark.parametrize("gpus", [4, 16])
def test_2d_matches_reference_both_datasets(
    small_dataset, small_model, tiny_dataset, tiny_model,
    mini_cluster, two_node_cluster, gpus,
):
    cluster = mini_cluster if gpus == 4 else two_node_cluster
    for ds, model in (
        (small_dataset, small_model),
        (tiny_dataset, tiny_model),
    ):
        trainer = Parallel2DTrainer(
            ds, model, machine=cluster, num_gpus=gpus, seed=9
        )
        _assert_matches_reference(trainer, ds, model, f"2d P={gpus}")


def test_mixture_matches_reference(small_dataset, small_model,
                                   two_node_cluster):
    cfg = TrainerConfig(first_layer_skip=False, seed=9)
    mix = MixtureTrainer(
        small_dataset, small_model, machine=two_node_cluster, config=cfg
    )
    ref = ReferenceGCN(small_dataset, small_model, seed=9,
                       first_layer_skip=False)
    for _ in range(EPOCHS):
        stats = mix.train_epoch()
        ref_loss = ref.train_epoch()
        assert stats.loss == pytest.approx(ref_loss, rel=1e-4, abs=1e-6)
    for a, b in zip(mix.get_weights(), ref.weights):
        assert np.allclose(a, b, rtol=RTOL, atol=ATOL)


def test_mixture_equivalent_to_base_trainer(small_dataset, small_model,
                                            two_node_cluster):
    """Scheme dispatch changes timing, not training math. Staged schemes
    (1d, 1d_hier) are bit-identical to the base trainer; the wide
    allgather SpMM rounds its accumulator at different points, so the
    cross-trainer comparison is at the reference tolerance."""
    cfg = TrainerConfig(seed=5)
    mix = MixtureTrainer(
        small_dataset, small_model, machine=two_node_cluster, config=cfg
    )
    base = MGGCNTrainer(
        small_dataset, small_model, machine=two_node_cluster, config=cfg
    )
    for _ in range(EPOCHS):
        mix.train_epoch()
        base.train_epoch()
    for a, b in zip(mix.get_weights(), base.get_weights()):
        assert np.allclose(a, b, rtol=RTOL, atol=ATOL)
    if all(s in ("1d", "1d_hier") for s in mix.plan.schemes):
        for a, b in zip(mix.get_weights(), base.get_weights()):
            assert np.array_equal(a, b)


def test_hierarchical_collectives_beat_flat_across_nodes():
    """Measured simulated epochs: on 2 nodes the hierarchical trainer
    clearly beats flat 1D (the NIC is paid once per node, not per rank)."""
    ds = load_dataset("arxiv", symbolic=True)
    model = GCNModelSpec.build(ds.d0, 256, ds.num_classes, 2)
    cluster = multi_node_cluster(2, dgx1())

    def epoch(config):
        trainer = MGGCNTrainer(ds, model, machine=cluster, config=config)
        trainer.train_epoch()
        return trainer.train_epoch().epoch_time

    flat = epoch(TrainerConfig())
    hier = epoch(TrainerConfig(hierarchical_collectives=True))
    assert hier < 0.5 * flat


def test_mixture_capture_replay(small_dataset, small_model,
                                two_node_cluster):
    """Epoch capture covers the mixture's hierarchical schedules; the
    replayed epochs keep the exact eager numerics."""
    mix = MixtureTrainer(
        small_dataset, small_model, machine=two_node_cluster,
        config=TrainerConfig(seed=5, capture_epochs=True),
    )
    eager = MixtureTrainer(
        small_dataset, small_model, machine=two_node_cluster,
        config=TrainerConfig(seed=5),
    )
    for _ in range(4):
        mix.train_epoch()
        eager.train_epoch()
    assert mix.plan_stats.captures == 1
    assert mix.plan_stats.replays == 3
    for a, b in zip(mix.get_weights(), eager.get_weights()):
        assert np.array_equal(a, b)


def test_elastic_recovery_still_works_under_1d(small_dataset, small_model):
    """The parallel subsystem must not break single-node elastic
    recovery: a 1D run on the flat path recovers from a device failure."""
    from repro.resilience import DeviceFailure, FaultPlan
    from repro.resilience.recovery import ElasticTrainer

    probe = ElasticTrainer(
        small_dataset, small_model, num_gpus=4, plan=FaultPlan()
    )
    fail_at = 0.5 * sum(s.epoch_time for s in probe.fit(2))
    elastic = ElasticTrainer(
        small_dataset, small_model, num_gpus=4,
        plan=FaultPlan(device_failures=(DeviceFailure(rank=1, time=fail_at),)),
    )
    elastic.fit(4)
    assert len(elastic.recovery_log) == 1
    assert elastic.num_gpus == 3


def test_parallel_fast_path_smoke(tiny_dataset, tiny_model):
    """Tier-1 smoke: one functional epoch of every parallel trainer on
    a small node-spanning cluster, plus plan/telemetry surface checks."""
    cluster = multi_node_cluster(2, node=uniform_machine(2, name="mini-node"))
    mix = MixtureTrainer(tiny_dataset, tiny_model, machine=cluster)
    stats = mix.train_epoch()
    assert stats.loss > 0
    assert len(mix.plan.schemes) == tiny_model.num_layers
    assert mix.plan.explain()
    for cls, kw in (
        (Parallel15DTrainer, {"replication": 2}),
        (Parallel2DTrainer, {}),
    ):
        trainer = cls(tiny_dataset, tiny_model, machine=cluster, **kw)
        assert trainer.train_epoch().loss > 0
