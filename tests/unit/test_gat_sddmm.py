"""SDDMM kernel, row softmax, and the GAT layer (§7 future work)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.hardware.machines import V100
from repro.kernels import CostModel
from repro.nn import GATLayer, leaky_relu
from repro.sparse import CSRMatrix


@pytest.fixture()
def pattern(rng):
    dense = (rng.random((14, 14)) < 0.35).astype(np.float32)
    np.fill_diagonal(dense, 1.0)  # no empty rows
    return dense, CSRMatrix.from_dense(dense)


class TestSDDMM:
    def test_matches_dense_masked_product(self, pattern, rng):
        dense, csr = pattern
        x = rng.standard_normal((14, 6)).astype(np.float32)
        y = rng.standard_normal((14, 6)).astype(np.float32)
        out = csr.sddmm(x, y)
        expected = (x @ y.T) * (dense > 0)
        assert np.allclose(out.to_dense(), expected, atol=1e-4)

    def test_preserves_pattern(self, pattern, rng):
        _, csr = pattern
        x = rng.standard_normal((14, 3)).astype(np.float32)
        out = csr.sddmm(x, x)
        assert np.array_equal(out.indptr, csr.indptr)
        assert np.array_equal(out.indices, csr.indices)

    def test_ignores_existing_values(self, pattern, rng):
        _, csr = pattern
        scaled = csr.scale_rows(np.full(14, 7.0, dtype=np.float32))
        x = rng.standard_normal((14, 4)).astype(np.float32)
        assert np.allclose(
            csr.sddmm(x, x).vals, scaled.sddmm(x, x).vals, atol=1e-5
        )

    def test_shape_errors(self, pattern):
        _, csr = pattern
        with pytest.raises(ShapeError):
            csr.sddmm(np.ones((13, 4), dtype=np.float32),
                      np.ones((14, 4), dtype=np.float32))
        with pytest.raises(ShapeError):
            csr.sddmm(np.ones((14, 4), dtype=np.float32),
                      np.ones((14, 5), dtype=np.float32))
        with pytest.raises(ShapeError):
            csr.sddmm(np.ones(14, dtype=np.float32),
                      np.ones(14, dtype=np.float32))

    def test_cost_model(self):
        cost = CostModel(V100)
        t = cost.sddmm_time(100_000, 2_000_000, 64, 100_000)
        assert t > 0
        assert cost.sddmm_time(100_000, 4_000_000, 64, 100_000) > t


class TestRowSoftmax:
    def test_rows_sum_to_one(self, pattern, rng):
        _, csr = pattern
        logits = csr.sddmm(
            rng.standard_normal((14, 4)).astype(np.float32),
            rng.standard_normal((14, 4)).astype(np.float32),
        )
        soft = logits.row_softmax()
        sums = soft.to_dense().sum(axis=1)
        assert np.allclose(sums, 1.0, atol=1e-5)

    def test_empty_rows_stay_empty(self):
        dense = np.zeros((3, 3), dtype=np.float32)
        dense[0, 1] = 2.0
        csr = CSRMatrix.from_dense(dense)
        soft = csr.row_softmax()
        assert soft.to_dense()[0, 1] == pytest.approx(1.0)
        assert soft.to_dense()[1].sum() == 0.0

    def test_numerically_stable(self):
        dense = np.zeros((1, 2), dtype=np.float32)
        dense[0] = [1000.0, 1001.0]
        soft = CSRMatrix.from_dense(dense).row_softmax()
        vals = soft.to_dense()[0]
        assert np.isfinite(vals).all()
        assert vals.sum() == pytest.approx(1.0, abs=1e-5)

    def test_empty_matrix(self):
        csr = CSRMatrix.empty((4, 4))
        assert csr.row_softmax().nnz == 0


class TestGATLayer:
    def test_forward_shapes_and_attention(self, pattern, rng):
        _, csr = pattern
        layer = GATLayer(csr, in_dim=8, out_dim=5, seed=3)
        h = rng.standard_normal((14, 8)).astype(np.float32)
        out = layer(h)
        assert out.shape == (14, 5)
        att = layer.last_attention
        assert np.allclose(att.to_dense().sum(axis=1), 1.0, atol=1e-5)

    def test_output_is_attention_weighted_mean(self, pattern, rng):
        """Each output row is a convex combination of transformed
        neighbour features, so it lies within their bounding box."""
        _, csr = pattern
        layer = GATLayer(csr, in_dim=6, out_dim=3, seed=4)
        h = rng.standard_normal((14, 6)).astype(np.float32)
        out = layer(h)
        hw = h @ layer.weight
        assert np.all(out <= hw.max(axis=0) + 1e-4)
        assert np.all(out >= hw.min(axis=0) - 1e-4)

    def test_deterministic(self, pattern, rng):
        _, csr = pattern
        h = rng.standard_normal((14, 8)).astype(np.float32)
        a = GATLayer(csr, 8, 4, seed=5)(h)
        b = GATLayer(csr, 8, 4, seed=5)(h)
        assert np.array_equal(a, b)

    def test_validation(self, pattern):
        _, csr = pattern
        with pytest.raises(ConfigurationError):
            GATLayer(CSRMatrix.empty((3, 4)), 4, 2)
        with pytest.raises(ConfigurationError):
            GATLayer(csr, 0, 2)
        layer = GATLayer(csr, 8, 4)
        with pytest.raises(ShapeError):
            layer(np.ones((14, 9), dtype=np.float32))


class TestLeakyReLU:
    def test_values(self):
        x = np.array([-2.0, 0.0, 3.0], dtype=np.float32)
        out = leaky_relu(x, negative_slope=0.1)
        assert np.allclose(out, [-0.2, 0.0, 3.0])


class TestMultiHeadGAT:
    def test_output_concatenates_heads(self, pattern, rng):
        _, csr = pattern
        layer = GATLayer(csr, in_dim=6, out_dim=4, num_heads=3, seed=8)
        h = rng.standard_normal((14, 6)).astype(np.float32)
        out = layer(h)
        assert out.shape == (14, 12)
        assert len(layer.last_attentions) == 3

    def test_head_zero_matches_single_head(self, pattern, rng):
        """With the same per-head parameters, head 0 of a multi-head
        layer computes exactly what a single-head layer would."""
        _, csr = pattern
        h = rng.standard_normal((14, 6)).astype(np.float32)
        multi = GATLayer(csr, 6, 4, num_heads=2, seed=9)
        single = GATLayer(csr, 6, 4, num_heads=1, seed=99)
        single.weights[0] = multi.weights[0].copy()
        single.att_src[0] = multi.att_src[0].copy()
        single.att_dst[0] = multi.att_dst[0].copy()
        assert np.allclose(multi(h)[:, :4], single(h), atol=1e-5)

    def test_heads_differ(self, pattern, rng):
        _, csr = pattern
        layer = GATLayer(csr, 6, 4, num_heads=2, seed=10)
        h = rng.standard_normal((14, 6)).astype(np.float32)
        out = layer(h)
        assert not np.allclose(out[:, :4], out[:, 4:], atol=1e-4)

    def test_validation(self, pattern):
        _, csr = pattern
        with pytest.raises(ConfigurationError):
            GATLayer(csr, 6, 4, num_heads=0)
