"""Baselines: DGL-like, CAGNET 1D + 1.5D analysis, DistGNN registry."""

import numpy as np
import pytest

from repro.baselines import (
    CAGNETTrainer,
    DGLLikeTrainer,
    DISTGNN_RESULTS,
    cagnet_15d_comm_time,
    cagnet_1d_comm_time,
    distgnn_best,
    distgnn_single_socket,
)
from repro.baselines.distgnn import energy_ratio
from repro.core import MGGCNTrainer
from repro.datasets import load_dataset
from repro.errors import ConfigurationError, DatasetError
from repro.hardware import dgx1, dgx_a100
from repro.nn import GCNModelSpec, ReferenceGCN


class TestDGLLike:
    def test_loss_decreases(self, small_dataset, small_model):
        dgl = DGLLikeTrainer(small_dataset, small_model, machine=dgx1(), seed=4)
        stats = dgl.fit(10)
        assert stats[-1].loss < stats[0].loss

    def test_matches_reference_weights(self, small_dataset, small_model):
        dgl = DGLLikeTrainer(small_dataset, small_model, machine=dgx1(), seed=4)
        ref = ReferenceGCN(small_dataset, small_model, seed=4)
        for _ in range(3):
            dgl.train_epoch()
            ref.train_epoch()
        for a, b in zip(dgl.get_weights(), ref.weights):
            assert np.allclose(a, b, rtol=2e-3, atol=2e-5)

    def test_slower_than_mggcn_single_gpu(self, small_dataset, small_model):
        dgl = DGLLikeTrainer(small_dataset, small_model, machine=dgx1(), seed=4)
        mg = MGGCNTrainer(small_dataset, small_model, machine=dgx1(), num_gpus=1)
        assert dgl.train_epoch().epoch_time > mg.train_epoch().epoch_time

    def test_more_memory_than_mggcn(self):
        ds = load_dataset("reddit", symbolic=True)
        model = GCNModelSpec.paper_model(1, ds.d0, ds.num_classes)
        dgl = DGLLikeTrainer(ds, model, machine=dgx_a100())
        mg = MGGCNTrainer(ds, model, machine=dgx_a100(), num_gpus=1)
        assert dgl.ctx.peak_memory() > mg.ctx.peak_memory()

    def test_symbolic_epoch(self):
        ds = load_dataset("arxiv", symbolic=True)
        model = GCNModelSpec.paper_model(1, ds.d0, ds.num_classes)
        dgl = DGLLikeTrainer(ds, model, machine=dgx1())
        stats = dgl.train_epoch()
        assert stats.loss is None
        assert stats.epoch_time > 0

    def test_evaluate(self, small_dataset, small_model):
        dgl = DGLLikeTrainer(small_dataset, small_model, machine=dgx1(), seed=4)
        dgl.fit(20)
        acc = dgl.evaluate("test")
        assert acc > 1.5 / small_dataset.num_classes

    def test_rejects_mismatched_model(self, small_dataset):
        bad = GCNModelSpec.build(3, 4, small_dataset.num_classes, 2)
        with pytest.raises(ConfigurationError):
            DGLLikeTrainer(small_dataset, bad, machine=dgx1())

    def test_needs_gpu_or_machine(self, small_dataset, small_model):
        with pytest.raises(ConfigurationError):
            DGLLikeTrainer(small_dataset, small_model)


class TestCAGNET:
    @pytest.mark.parametrize("P", [1, 2, 4])
    def test_matches_reference_weights(self, small_dataset, small_model, P):
        cag = CAGNETTrainer(
            small_dataset, small_model, machine=dgx1(), num_gpus=P, seed=5
        )
        ref = ReferenceGCN(small_dataset, small_model, seed=5)
        for _ in range(3):
            cag.train_epoch()
            ref.train_epoch()
        for a, b in zip(cag.get_weights(), ref.weights):
            assert np.allclose(a, b, rtol=2e-3, atol=2e-5)

    def test_permuted_variant_also_correct(self, small_dataset, small_model):
        cag = CAGNETTrainer(
            small_dataset, small_model, machine=dgx1(), num_gpus=4,
            seed=5, permute=True,
        )
        ref = ReferenceGCN(small_dataset, small_model, seed=5)
        cag.train_epoch()
        ref.train_epoch()
        for a, b in zip(cag.get_weights(), ref.weights):
            assert np.allclose(a, b, rtol=2e-3, atol=2e-5)

    def test_slower_than_mggcn(self, small_dataset, small_model):
        cag = CAGNETTrainer(small_dataset, small_model, machine=dgx1(), num_gpus=4)
        mg = MGGCNTrainer(small_dataset, small_model, machine=dgx1(), num_gpus=4)
        assert cag.train_epoch().epoch_time > mg.train_epoch().epoch_time

    def test_more_memory_than_mggcn(self):
        ds = load_dataset("reddit", symbolic=True)
        model = GCNModelSpec.paper_model(1, ds.d0, ds.num_classes)
        cag = CAGNETTrainer(ds, model, machine=dgx1(), num_gpus=8, permute=True)
        mg = MGGCNTrainer(ds, model, machine=dgx1(), num_gpus=8)
        assert cag.ctx.peak_memory() > mg.ctx.peak_memory()

    def test_loss_decreases(self, small_dataset, small_model):
        cag = CAGNETTrainer(small_dataset, small_model, machine=dgx1(), num_gpus=2)
        stats = cag.fit(8)
        assert stats[-1].loss < stats[0].loss


class TestSection51:
    def test_1d_zero_comm_single_gpu(self):
        assert cagnet_1d_comm_time(dgx1(), 10_000, 64, num_gpus=1) == 0.0

    def test_15d_slower_on_dgx1(self):
        """Section 5.1's conclusion for the asymmetric cube-mesh."""
        t1 = cagnet_1d_comm_time(dgx1(), 1_000_000, 512)
        t15 = cagnet_15d_comm_time(dgx1(), 1_000_000, 512)
        assert t15 > t1

    def test_15d_faster_on_dgxa100(self):
        """...and for the NVSwitch machine."""
        t1 = cagnet_1d_comm_time(dgx_a100(), 1_000_000, 512)
        t15 = cagnet_15d_comm_time(dgx_a100(), 1_000_000, 512)
        assert t15 < t1

    def test_replication_must_divide(self):
        with pytest.raises(ConfigurationError):
            cagnet_15d_comm_time(dgx1(), 1000, 8, num_gpus=8, replication=3)

    def test_c1_reduces_to_1d(self):
        t1 = cagnet_1d_comm_time(dgx1(), 100_000, 128)
        t15 = cagnet_15d_comm_time(dgx1(), 100_000, 128, replication=1)
        assert t15 == pytest.approx(t1)


class TestDistGNN:
    def test_registry_values(self):
        assert DISTGNN_RESULTS["reddit"][1] == pytest.approx(0.60)
        assert DISTGNN_RESULTS["papers"][128] == pytest.approx(36.45)

    def test_single_socket(self):
        assert distgnn_single_socket("products") == pytest.approx(11.0)

    def test_best(self):
        sockets, t = distgnn_best("reddit")
        assert sockets == 1 and t == pytest.approx(0.60)
        sockets, t = distgnn_best("papers")
        assert sockets == 128 and t == pytest.approx(36.45)

    def test_unknown(self):
        with pytest.raises(DatasetError):
            distgnn_best("imagenet")

    def test_energy_ratio_paper_value(self):
        """Paper: 350W x 128 x 36.45s / (400W x 8 x 2.89s) x 208/256 = 143.46."""
        ratio = energy_ratio(128, 36.45, 8, 2.89, hidden_scale=208 / 256)
        assert ratio == pytest.approx(143.46, rel=0.01)

    def test_energy_ratio_validation(self):
        with pytest.raises(ValueError):
            energy_ratio(0, 1.0, 8, 1.0)
        with pytest.raises(ValueError):
            energy_ratio(8, -1.0, 8, 1.0)
