"""Unit tests of the resource-aware (cost-model) row partitioning."""

import numpy as np
import pytest

from repro.core.partitioner import (
    PARTITION_STRATEGIES,
    preview_partition,
    resource_aware_partition,
)
from repro.datasets import load_dataset
from repro.errors import ConfigurationError, PartitionError
from repro.hardware import dgx1, dgx_a100
from repro.hardware.topology import Topology
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.partition import (
    uniform_partition,
    weighted_cost_partition,
)


def _part_costs(part, costs):
    return [float(costs[lo:hi].sum()) for lo, hi in part]


def test_flat_costs_equal_capacities_is_uniform():
    costs = np.ones(100)
    part = weighted_cost_partition(costs, [1.0, 1.0, 1.0, 1.0])
    assert part.boundaries == uniform_partition(100, 4).boundaries


def test_skewed_costs_balance_per_part_cost():
    rng = np.random.default_rng(7)
    # zipf-ish skew: a few very expensive rows.
    costs = rng.pareto(1.5, size=2000) + 0.1
    part = weighted_cost_partition(costs, [1.0] * 4)
    shares = _part_costs(part, costs)
    mean = sum(shares) / 4
    assert max(shares) / mean < 1.35
    # the uniform split is much worse on the same cost vector.
    uni_shares = _part_costs(uniform_partition(2000, 4), costs)
    assert max(shares) / mean <= max(uni_shares) / mean


def test_capacities_shift_cost_toward_fast_parts():
    costs = np.ones(1000)
    part = weighted_cost_partition(costs, [3.0, 1.0])
    fast, slow = _part_costs(part, costs)
    assert fast == pytest.approx(750, abs=2)
    assert slow == pytest.approx(250, abs=2)


def test_every_part_nonempty_under_extreme_skew():
    costs = np.zeros(4)
    costs[0] = 1e9  # all the cost in the first row
    part = weighted_cost_partition(costs, [1.0] * 4)
    assert all(s >= 1 for s in part.sizes())
    assert part.total == 4


def test_weighted_partition_validation():
    with pytest.raises(PartitionError):
        weighted_cost_partition(np.ones((2, 2)), [1.0])
    with pytest.raises(PartitionError):
        weighted_cost_partition(np.array([1.0, -1.0]), [1.0])
    with pytest.raises(PartitionError):
        weighted_cost_partition(np.ones(4), [])
    with pytest.raises(PartitionError):
        weighted_cost_partition(np.ones(4), [1.0, 0.0])


def _ring_graph(n, hub_every=10, hub_degree=40):
    """A ring with periodic high-degree hubs (skewed row costs)."""
    rng = np.random.default_rng(3)
    rows, cols = [], []
    for v in range(n):
        rows += [v, v]
        cols += [(v + 1) % n, (v - 1) % n]
        if v % hub_every == 0:
            extra = rng.integers(0, n, size=hub_degree)
            rows += [v] * hub_degree
            cols += list(extra)
    coo = COOMatrix((n, n), np.asarray(rows), np.asarray(cols))
    return CSRMatrix.from_coo(coo)


def test_resource_aware_partition_balances_row_cost():
    machine = dgx_a100()
    matrix = _ring_graph(800)
    part = resource_aware_partition(
        machine, Topology(machine), matrix, feature_dim=64, parts=4
    )
    assert part.total == 800
    assert part.num_parts == 4
    nnz = np.diff(matrix.indptr)
    shares = [float(nnz[lo:hi].sum()) for lo, hi in part]
    # hubs are periodic, so uniform would be fine too — but the cost
    # split must not be *worse* than a small tolerance around even.
    mean = sum(shares) / 4
    assert max(shares) / mean < 1.25


def test_preview_partition_functional_and_symbolic():
    ds = load_dataset("cora", scale=0.1, learnable=True, seed=1)
    q = preview_partition(ds, dgx1(), 4, strategy="resource_aware")
    assert q["strategy"] == "resource_aware"
    assert len(q["rows"]) == 4
    assert sum(q["rows"]) == ds.n
    assert q["nnz_imbalance"] >= 1.0
    sym = load_dataset("arxiv", symbolic=True)
    qs = preview_partition(sym, dgx1(), 8, strategy="resource_aware")
    assert qs["strategy"] == "uniform"  # documented symbolic fallback
    assert qs["row_imbalance"] == pytest.approx(1.0, abs=0.01)
    with pytest.raises(ConfigurationError):
        preview_partition(ds, dgx1(), 4, strategy="bogus")


def test_strategy_registry():
    assert "uniform" in PARTITION_STRATEGIES
    assert "resource_aware" in PARTITION_STRATEGIES
