"""Hierarchical collectives: payload equality, phases, link accounting."""

import numpy as np
import pytest

from repro.comm import Communicator
from repro.device import SimContext
from repro.hardware import dgx1, multi_node_cluster
from repro.parallel import (
    HierarchicalCommunicator,
    group_leaders,
    link_class,
    node_groups,
    spans_nodes,
)
from repro.telemetry import Telemetry

# bandwidth-bound payload: hierarchy pays extra phase latency, so its
# win only shows once the NIC share dominates (as on real clusters).
BIG = (512, 512)


@pytest.fixture()
def cluster():
    return multi_node_cluster(2, dgx1())


@pytest.fixture()
def ctx(cluster):
    return SimContext(cluster, num_gpus=16)


def _pair(ctx, rng, shape=BIG):
    """(flat ctx+comm, hier ctx+comm) with identical payload tensors."""
    flat = Communicator(ctx)
    hier = HierarchicalCommunicator(ctx)
    return flat, hier


class TestGroups:
    def test_node_groups_split_on_boundary(self, cluster):
        groups = node_groups(cluster, list(range(16)))
        assert groups == [list(range(8)), list(range(8, 16))]

    def test_groups_preserve_order_of_appearance(self, cluster):
        groups = node_groups(cluster, [9, 1, 8, 0])
        assert groups == [[9, 8], [1, 0]]

    def test_leaders_are_first_members(self, cluster):
        groups = node_groups(cluster, list(range(16)))
        assert group_leaders(groups) == [0, 8]

    def test_spans_and_link_class(self, cluster):
        assert spans_nodes(cluster, [0, 8])
        assert not spans_nodes(cluster, [0, 7])
        assert link_class(cluster, [0, 8]) == "inter_node"
        assert link_class(cluster, [0, 7]) == "intra_node"
        assert link_class(dgx1(), [0, 7]) == "intra_node"


class TestPayloadEquality:
    """Every collective's functional result is bit-identical to flat."""

    def test_broadcast(self, ctx, rng):
        flat, hier = _pair(ctx, rng)
        payload = rng.random(BIG).astype(np.float32)
        results = {}
        for comm in (flat, hier):
            src = ctx.device(3).from_numpy(payload)
            dsts = {r: ctx.device(r).empty(BIG) for r in range(16) if r != 3}
            comm.broadcast(3, src, dsts)
            results[comm] = {r: t.data.copy() for r, t in dsts.items()}
        for r in results[flat]:
            assert np.array_equal(results[flat][r], results[hier][r])
            assert np.array_equal(results[hier][r], payload)

    def test_allreduce(self, ctx, rng):
        flat, hier = _pair(ctx, rng)
        payloads = [rng.random(BIG).astype(np.float32) for _ in range(16)]
        results = {}
        for comm in (flat, hier):
            tensors = {
                r: ctx.device(r).from_numpy(payloads[r].copy())
                for r in range(16)
            }
            comm.allreduce(tensors, op="sum")
            results[comm] = {r: t.data.copy() for r, t in tensors.items()}
        for r in range(16):
            # bit-identical: the hierarchical path must not re-associate
            # the float32 sum (it computes centrally in flat rank order)
            assert np.array_equal(results[flat][r], results[hier][r])

    def test_reduce(self, ctx, rng):
        flat, hier = _pair(ctx, rng)
        payloads = [rng.random(BIG).astype(np.float32) for _ in range(16)]
        results = {}
        for comm in (flat, hier):
            tensors = {
                r: ctx.device(r).from_numpy(payloads[r].copy())
                for r in range(16)
            }
            comm.reduce(5, tensors)
            results[comm] = tensors[5].data.copy()
        assert np.array_equal(results[flat], results[hier])

    def test_allgather(self, ctx, rng):
        flat, hier = _pair(ctx, rng)
        shards = [rng.random((4 + r, 8)).astype(np.float32) for r in range(16)]
        total = sum(s.shape[0] for s in shards)
        results = {}
        for comm in (flat, hier):
            srcs = {r: ctx.device(r).from_numpy(shards[r]) for r in range(16)}
            dsts = {r: ctx.device(r).empty((total, 8)) for r in range(16)}
            comm.allgather(srcs, dsts)
            results[comm] = {r: t.data.copy() for r, t in dsts.items()}
        expect = np.vstack(shards)
        for r in range(16):
            assert np.array_equal(results[flat][r], results[hier][r])
            assert np.array_equal(results[hier][r], expect)


class TestTiming:
    def test_hierarchy_beats_flat_across_nodes(self, ctx, rng):
        """Bandwidth-bound collectives pay each NIC once per node."""
        flat, hier = _pair(ctx, rng)
        nbytes = BIG[0] * BIG[1] * 4
        assert hier.broadcast_duration(0, nbytes) < flat.broadcast_duration(
            0, nbytes
        )
        assert hier.allreduce_duration(nbytes) < flat.allreduce_duration(
            nbytes
        )
        assert hier.allgather_duration(16 * nbytes) < flat.allgather_duration(
            16 * nbytes
        )

    def test_single_node_falls_back_to_flat(self, rng):
        ctx = SimContext(dgx1(), num_gpus=8)
        flat = Communicator(ctx)
        hier = HierarchicalCommunicator(ctx)
        assert not hier.is_hierarchical
        nbytes = BIG[0] * BIG[1] * 4
        assert hier.broadcast_duration(0, nbytes) == pytest.approx(
            flat.broadcast_duration(0, nbytes)
        )
        payload = rng.random(BIG).astype(np.float32)
        for comm in (flat, hier):
            src = ctx.device(0).from_numpy(payload)
            dsts = {r: ctx.device(r).empty(BIG) for r in range(1, 8)}
            events = comm.broadcast(0, src, dsts)
            comm_times = {ev.time for ev in events.values()}
            assert len(comm_times) == 1

    def test_intra_node_subset_uses_flat_path(self, ctx):
        hier = HierarchicalCommunicator(ctx, ranks=[0, 1, 2, 3])
        assert not hier.is_hierarchical

    def test_phase_events_in_trace(self, ctx, rng):
        hier = HierarchicalCommunicator(ctx)
        src = ctx.device(0).from_numpy(rng.random(BIG).astype(np.float32))
        dsts = {r: ctx.device(r).empty(BIG) for r in range(1, 16)}
        hier.broadcast(0, src, dsts, name="bc")
        names = {ev.name for ev in ctx.engine.trace}
        assert any("bc/inter" in n for n in names)
        assert any("bc/intra" in n for n in names)


class TestLinkAccounting:
    def _telemetry_ctx(self, nodes=2):
        telemetry = Telemetry(run_id="t")
        cluster = multi_node_cluster(nodes, dgx1())
        ctx = SimContext(cluster, num_gpus=nodes * 8, telemetry=telemetry)
        return telemetry, ctx

    def test_hierarchical_allreduce_split(self, rng):
        telemetry, ctx = self._telemetry_ctx()
        hier = HierarchicalCommunicator(ctx)
        payload = rng.random((256, 256)).astype(np.float32)
        tensors = {
            r: ctx.device(r).from_numpy(payload.copy()) for r in range(16)
        }
        hier.allreduce(tensors)
        flat = telemetry.registry.flatten()
        nbytes = float(payload.nbytes)
        # one leader-tree allreduce crosses the NICs ...
        assert flat['repro_comm_link_bytes_total{link="inter_node"}'] == nbytes
        # ... and each node runs one intra reduce + one intra broadcast
        assert flat['repro_comm_link_bytes_total{link="intra_node"}'] == (
            4 * nbytes
        )

    def test_flat_collective_spanning_nodes_is_all_inter(self, rng):
        telemetry, ctx = self._telemetry_ctx()
        flat_comm = Communicator(ctx)
        assert flat_comm.link_class == "inter_node"
        tensors = {
            r: ctx.device(r).from_numpy(
                rng.random((64, 64)).astype(np.float32)
            )
            for r in range(16)
        }
        flat_comm.allreduce(tensors)
        flat = telemetry.registry.flatten()
        assert flat['repro_comm_link_bytes_total{link="inter_node"}'] > 0
        assert (
            flat.get('repro_comm_link_bytes_total{link="intra_node"}', 0.0)
            == 0.0
        )

    def test_single_node_is_all_intra(self, rng):
        telemetry = Telemetry(run_id="t")
        ctx = SimContext(dgx1(), num_gpus=8, telemetry=telemetry)
        comm = Communicator(ctx)
        assert comm.link_class == "intra_node"
        tensors = {
            r: ctx.device(r).from_numpy(
                rng.random((64, 64)).astype(np.float32)
            )
            for r in range(8)
        }
        comm.allreduce(tensors)
        flat = telemetry.registry.flatten()
        assert flat['repro_comm_link_bytes_total{link="intra_node"}'] > 0
        assert (
            flat.get('repro_comm_link_bytes_total{link="inter_node"}', 0.0)
            == 0.0
        )
