"""Profiling: breakdowns, timelines, memory sweeps."""

import pytest

from repro.config import GiB
from repro.core import MGGCNTrainer
from repro.datasets import load_dataset
from repro.device import TraceEvent
from repro.errors import ConfigurationError
from repro.hardware import dgx1
from repro.nn import GCNModelSpec
from repro.profiling import (
    extract_stage_timeline,
    max_layers_that_fit,
    memory_for_layers,
    render_timeline,
    runtime_breakdown,
    spmm_span,
)
from repro.profiling.breakdown import breakdown_percentages, breakdown_table
from repro.profiling.memory import memory_curve
from repro.profiling.timeline import StageSpan


def _trace():
    return [
        TraceEvent("gpu0", "comm", "fwd0/spmm/bcast[0]", "comm", 0.0, 1.0, stage=0),
        TraceEvent("gpu0", "compute", "fwd0/spmm[0]", "spmm", 1.0, 4.0, stage=0),
        TraceEvent("gpu0", "comm", "fwd0/spmm/bcast[1]", "comm", 4.0, 5.0, stage=1),
        TraceEvent("gpu0", "compute", "fwd0/spmm[1]", "spmm", 5.0, 7.0, stage=1),
        TraceEvent("gpu0", "compute", "fwd0/gemm", "gemm", 7.0, 8.0),
        TraceEvent("gpu0", "compute", "fwd0/relu", "activation", 8.0, 8.5),
        TraceEvent("gpu0", "compute", "loss", "loss", 8.5, 9.0),
        TraceEvent("gpu0", "compute", "adam0", "adam", 9.0, 9.2),
        TraceEvent("gpu0", "comm", "bwd0/allreduce_wg", "comm", 9.0, 9.4),
    ]


class TestBreakdown:
    def test_comm_folded_into_spmm(self):
        totals = runtime_breakdown(_trace())
        assert totals["spmm"] == pytest.approx(3.0 + 2.0 + 1.0 + 1.0)
        assert totals["gemm"] == pytest.approx(1.0)

    def test_comm_excluded_when_not_folded(self):
        totals = runtime_breakdown(_trace(), fold_comm_into_spmm=False)
        assert totals["spmm"] == pytest.approx(5.0)

    def test_percentages_sum_to_100(self):
        pct = breakdown_percentages(_trace())
        assert sum(pct.values()) == pytest.approx(100.0)

    def test_table_renders(self):
        table = breakdown_table([("run1", _trace())])
        assert "run1" in table
        assert "%" in table

    def test_empty_trace(self):
        assert breakdown_percentages([]) == {
            "activation": 0.0, "adam": 0.0, "gemm": 0.0, "loss": 0.0, "spmm": 0.0,
        }


class TestTimeline:
    def test_extract_filters_by_prefix_and_stage(self):
        spans = extract_stage_timeline(_trace(), "fwd0/spmm")
        assert len(spans) == 4
        kinds = {(s.kind, s.stage) for s in spans}
        assert ("comm", 0) in kinds and ("comp", 1) in kinds

    def test_spmm_span(self):
        spans = extract_stage_timeline(_trace(), "fwd0/spmm")
        assert spmm_span(spans) == pytest.approx(7.0)
        assert spmm_span([]) == 0.0

    def test_render_contains_rows(self):
        spans = extract_stage_timeline(_trace(), "fwd0/spmm")
        art = render_timeline(spans, width=40)
        assert "gpu0 comm" in art
        assert "gpu0 comp" in art
        assert "~" in art and "#" in art

    def test_render_empty(self):
        assert "empty" in render_timeline([])

    def test_real_trainer_trace_extractable(self, small_dataset, small_model):
        trainer = MGGCNTrainer(small_dataset, small_model, machine=dgx1(), num_gpus=4)
        stats = trainer.train_epoch()
        spans = extract_stage_timeline(stats.trace, "fwd0/spmm")
        assert len(spans) >= 4 * 4  # 4 stages x 4 GPUs compute at least
        assert spmm_span(spans) > 0


class TestMemorySweep:
    @pytest.fixture()
    def reddit(self):
        return load_dataset("reddit", symbolic=True)

    def test_memory_linear_in_layers(self, reddit):
        m2 = memory_for_layers(reddit, 512, 2, num_gpus=1)
        m4 = memory_for_layers(reddit, 512, 4, num_gpus=1)
        m8 = memory_for_layers(reddit, 512, 8, num_gpus=1)
        assert (m8 - m4) == pytest.approx(2 * (m4 - m2), rel=0.01)

    def test_shared_fits_more_layers_than_eager(self, reddit):
        shared = max_layers_that_fit(reddit, 512, 1, scheme="shared")
        eager = max_layers_that_fit(reddit, 512, 1, scheme="eager")
        assert shared > 2 * eager

    def test_partitioning_fits_more_layers(self, reddit):
        one = max_layers_that_fit(reddit, 512, 1, scheme="shared")
        eight = max_layers_that_fit(reddit, 512, 8, scheme="shared")
        assert eight > 5 * one

    def test_paper_magnitudes(self, reddit):
        """Fig. 12 anchors: ~20 (DGL) vs ~50 (MG-GCN) layers on 1 GPU,
        ~150 (CAGNET) vs ~450 (MG-GCN) on 8 — we accept wide bands."""
        dgl = max_layers_that_fit(reddit, 512, 1, scheme="eager",
                                  eager_buffers_per_layer=3)
        mg1 = max_layers_that_fit(reddit, 512, 1, scheme="shared")
        mg8 = max_layers_that_fit(reddit, 512, 8, scheme="shared")
        assert 10 <= dgl <= 35
        assert 40 <= mg1 <= 75
        assert 300 <= mg8 <= 700

    def test_budget_respected(self, reddit):
        layers = max_layers_that_fit(reddit, 512, 1, memory_budget=30 * GiB)
        assert memory_for_layers(reddit, 512, layers, 1) <= 30 * GiB
        assert memory_for_layers(reddit, 512, layers + 1, 1) > 30 * GiB

    def test_curve_points(self, reddit):
        curve = memory_curve(reddit, 512, 1, [1, 2, 3])
        assert [p[0] for p in curve] == [1, 2, 3]
        assert curve[2][1] > curve[0][1]

    def test_validation(self, reddit):
        with pytest.raises(ConfigurationError):
            memory_for_layers(reddit, 512, 0, 1)
