"""COO construction invariants."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse import COOMatrix


def test_canonical_sorting():
    coo = COOMatrix((3, 3), rows=[2, 0, 1], cols=[1, 2, 0])
    assert list(coo.rows) == [0, 1, 2]
    assert list(coo.cols) == [2, 0, 1]


def test_duplicates_summed():
    coo = COOMatrix((2, 2), rows=[0, 0, 1], cols=[1, 1, 0], vals=[1.0, 2.0, 5.0])
    assert coo.nnz == 2
    dense = coo.to_dense()
    assert dense[0, 1] == pytest.approx(3.0)
    assert dense[1, 0] == pytest.approx(5.0)


def test_duplicates_kept_when_disabled():
    coo = COOMatrix(
        (2, 2), rows=[0, 0], cols=[1, 1], vals=[1.0, 2.0], sum_duplicates=False
    )
    assert coo.nnz == 2


def test_default_unit_values():
    coo = COOMatrix((2, 2), rows=[0], cols=[1])
    assert coo.vals[0] == pytest.approx(1.0)


def test_out_of_range_indices_rejected():
    with pytest.raises(ShapeError):
        COOMatrix((2, 2), rows=[2], cols=[0])
    with pytest.raises(ShapeError):
        COOMatrix((2, 2), rows=[0], cols=[-1])


def test_length_mismatch_rejected():
    with pytest.raises(ShapeError):
        COOMatrix((2, 2), rows=[0, 1], cols=[0])
    with pytest.raises(ShapeError):
        COOMatrix((2, 2), rows=[0], cols=[0], vals=[1.0, 2.0])


def test_empty_matrix():
    coo = COOMatrix((4, 4), rows=[], cols=[])
    assert coo.nnz == 0
    assert coo.to_dense().sum() == 0


def test_from_edges_symmetrize():
    edges = np.array([[0, 1], [1, 2]])
    coo = COOMatrix.from_edges(3, edges, symmetrize=True)
    dense = coo.to_dense()
    assert dense[0, 1] == dense[1, 0] == 1.0
    assert dense[1, 2] == dense[2, 1] == 1.0


def test_from_edges_shape_check():
    with pytest.raises(ShapeError):
        COOMatrix.from_edges(3, np.array([0, 1, 2]))


def test_transpose_roundtrip():
    coo = COOMatrix((3, 2), rows=[0, 2], cols=[1, 0], vals=[3.0, 4.0])
    t = coo.transpose()
    assert t.shape == (2, 3)
    assert np.allclose(t.to_dense(), coo.to_dense().T)


def test_degrees():
    coo = COOMatrix((3, 3), rows=[0, 0, 1], cols=[1, 2, 2])
    assert list(coo.row_degrees()) == [2, 1, 0]
    assert list(coo.col_degrees()) == [0, 1, 2]
