"""GPU/link specs, machine factories, and topology bandwidth queries."""

import pytest

from repro.config import GB
from repro.errors import TopologyError
from repro.hardware import (
    GPUSpec,
    LinkSpec,
    MachineSpec,
    Topology,
    dgx1,
    dgx_a100,
    get_machine,
    single_gpu,
    uniform_machine,
)
from repro.hardware.machines import NVLINK_BANDWIDTH


class TestSpecs:
    def test_gpu_spec_validation(self):
        with pytest.raises(ValueError):
            GPUSpec("bad", memory_bytes=0, memory_bandwidth=1.0,
                    peak_flops=1.0, l2_cache_bytes=1)
        with pytest.raises(ValueError):
            GPUSpec("bad", memory_bytes=1, memory_bandwidth=1.0,
                    peak_flops=0, l2_cache_bytes=1)

    def test_link_rejects_self_loop(self):
        with pytest.raises(TopologyError):
            LinkSpec(src=0, dst=0, bandwidth=1.0)

    def test_link_total_bandwidth(self):
        link = LinkSpec(src=0, dst=1, bandwidth=25 * GB, count=2)
        assert link.total_bandwidth == 50 * GB

    def test_machine_rejects_out_of_range_links(self):
        gpu = dgx1().gpu
        with pytest.raises(TopologyError):
            MachineSpec(
                name="bad", gpu=gpu, num_gpus=2,
                links=(LinkSpec(src=0, dst=5, bandwidth=1.0),),
            )


class TestDGX1:
    def test_eight_gpus_six_links_each(self):
        machine = dgx1()
        assert machine.num_gpus == 8
        for rank in range(8):
            total = sum(l.count for l in machine.links_from(rank))
            assert total == 6, f"GPU {rank} has {total} links"

    def test_injection_bandwidth(self):
        machine = dgx1()
        # 6 NVLinks x 25 GB/s per direction = 150 GB/s per GPU
        assert machine.injection_bandwidth(0) == pytest.approx(6 * NVLINK_BANDWIDTH)

    def test_v100_memory(self):
        machine = dgx1()
        assert machine.gpu.memory_bytes == 32 * 2**30
        assert machine.gpu.memory_bandwidth == pytest.approx(900e9)

    def test_asymmetric_pairs(self):
        """DGX-1 is a hybrid cube-mesh: some pairs have 2 links, some 1,
        and some none (e.g. GPUs 0 and 5)."""
        machine = dgx1()
        assert len(machine.links_between(0, 3)) == 1  # one double link spec
        assert machine.links_between(0, 3)[0].count == 2
        assert machine.links_between(0, 1)[0].count == 1
        assert machine.links_between(0, 5) == []


class TestDGXA100:
    def test_switch(self):
        machine = dgx_a100()
        assert machine.has_switch
        # 12 links x 25 GB/s = 300 GB/s per direction (600 bidirectional)
        assert machine.switch_bandwidth == pytest.approx(12 * NVLINK_BANDWIDTH)

    def test_a100_memory(self):
        machine = dgx_a100()
        assert machine.gpu.memory_bytes == 80 * 2**30
        assert machine.gpu.memory_bandwidth == pytest.approx(2e12)


class TestFactories:
    def test_get_machine_aliases(self):
        assert get_machine("DGX1").name == dgx1().name
        assert get_machine("dgx-a100").name == dgx_a100().name

    def test_get_machine_unknown(self):
        with pytest.raises(TopologyError):
            get_machine("tpu-pod")

    def test_single_gpu_has_no_links(self):
        machine = single_gpu()
        assert machine.num_gpus == 1
        assert machine.links == ()

    def test_uniform_machine_switched(self):
        machine = uniform_machine(4, switched=True)
        assert machine.has_switch
        assert machine.injection_bandwidth(2) > 0

    def test_uniform_machine_mesh(self):
        machine = uniform_machine(4, switched=False)
        assert not machine.has_switch
        total = machine.injection_bandwidth(0)
        assert total == pytest.approx(6 * NVLINK_BANDWIDTH)


class TestTopology:
    def test_p2p_direct_vs_routed(self):
        topo = Topology(dgx1())
        direct = topo.p2p_bandwidth(0, 3)  # 2 links
        routed = topo.p2p_bandwidth(0, 5)  # no direct link
        assert direct == pytest.approx(2 * NVLINK_BANDWIDTH)
        assert routed < direct

    def test_p2p_switch(self):
        topo = Topology(dgx_a100())
        assert topo.p2p_bandwidth(0, 7) == pytest.approx(12 * NVLINK_BANDWIDTH)

    def test_p2p_self_rejected(self):
        topo = Topology(dgx1())
        with pytest.raises(TopologyError):
            topo.p2p_bandwidth(1, 1)

    def test_collective_bandwidth_full_machine(self):
        """Section 5.1: a collective over all 8 DGX-1 GPUs can use all
        6 links of every GPU."""
        topo = Topology(dgx1())
        bw = topo.collective_bandwidth(range(8))
        assert bw == pytest.approx(6 * NVLINK_BANDWIDTH)

    def test_collective_bandwidth_quad(self):
        """Restricted to a quad, only 4 links per GPU remain (Section 5.1)."""
        topo = Topology(dgx1())
        bw = topo.collective_bandwidth([0, 1, 2, 3])
        assert bw == pytest.approx(4 * NVLINK_BANDWIDTH)

    def test_collective_bandwidth_single_rank(self):
        topo = Topology(dgx1())
        assert topo.collective_bandwidth([3]) == float("inf")

    def test_collective_duplicate_ranks_rejected(self):
        topo = Topology(dgx1())
        with pytest.raises(TopologyError):
            topo.collective_bandwidth([0, 0, 1])

    def test_broadcast_root_must_participate(self):
        topo = Topology(dgx1())
        with pytest.raises(TopologyError):
            topo.broadcast_bandwidth(7, [0, 1, 2])

    def test_bisection_dgx1_quads(self):
        """Cross-quad links: (0,4)x2 + (1,5)x2 + (2,6)x1 + (3,7)x1 = 6."""
        topo = Topology(dgx1())
        bw = topo.bisection_bandwidth([0, 1, 2, 3], [4, 5, 6, 7])
        assert bw == pytest.approx(6 * NVLINK_BANDWIDTH)

    def test_bisection_rejects_overlap(self):
        topo = Topology(dgx1())
        with pytest.raises(TopologyError):
            topo.bisection_bandwidth([0, 1], [1, 2])

    def test_switch_collective_independent_of_subset(self):
        topo = Topology(dgx_a100())
        assert topo.collective_bandwidth([0, 1]) == topo.collective_bandwidth(
            range(8)
        )

    def test_rank_out_of_range(self):
        topo = Topology(dgx1())
        with pytest.raises(TopologyError):
            topo.collective_bandwidth([0, 9])
