"""Collectives: functional data movement + rendezvous timing semantics."""

import numpy as np
import pytest

from repro.comm import Communicator
from repro.device import Mode, SimContext
from repro.errors import CommunicationError
from repro.hardware import dgx1, dgx_a100


@pytest.fixture()
def ctx():
    return SimContext(dgx1(), num_gpus=4)


@pytest.fixture()
def comm(ctx):
    return Communicator(ctx)


class TestBroadcast:
    def test_data_reaches_all_ranks(self, ctx, comm, rng):
        payload = rng.random((6, 3)).astype(np.float32)
        src = ctx.device(1).from_numpy(payload)
        dsts = {r: ctx.device(r).empty((6, 3)) for r in (0, 2, 3)}
        comm.broadcast(1, src, dsts)
        for r in (0, 2, 3):
            assert np.allclose(dsts[r].data, payload)

    def test_all_ranks_finish_together(self, ctx, comm):
        src = ctx.device(0).from_numpy(np.zeros((512, 512), dtype=np.float32))
        dsts = {r: ctx.device(r).empty((512, 512)) for r in (1, 2, 3)}
        events = comm.broadcast(0, src, dsts)
        times = {ev.time for ev in events.values()}
        assert len(times) == 1

    def test_rendezvous_waits_for_slowest(self, ctx, comm):
        # make rank 2's comm stream busy until t=1.0
        ctx.engine.submit(ctx.device(2).comm_stream, "busy", "comm", 1.0)
        src = ctx.device(0).from_numpy(np.zeros((4, 4), dtype=np.float32))
        dsts = {r: ctx.device(r).empty((4, 4)) for r in (1, 2, 3)}
        events = comm.broadcast(0, src, dsts)
        assert events[0].time > 1.0

    def test_duration_scales_with_bytes(self, ctx, comm):
        def bcast_time(rows):
            src = ctx.device(0).from_numpy(np.zeros((rows, 256), dtype=np.float32))
            dsts = {r: ctx.device(r).empty((rows, 256)) for r in (1, 2, 3)}
            events = comm.broadcast(0, src, dsts)
            return events[0].time

        t_small = bcast_time(64)
        ctx2 = SimContext(dgx1(), num_gpus=4)
        comm2 = Communicator(ctx2)
        src = ctx2.device(0).from_numpy(np.zeros((64 * 16, 256), dtype=np.float32))
        dsts = {r: ctx2.device(r).empty((64 * 16, 256)) for r in (1, 2, 3)}
        t_big = comm2.broadcast(0, src, dsts)[0].time
        assert t_big > t_small

    def test_shape_mismatch_rejected(self, ctx, comm):
        src = ctx.device(0).from_numpy(np.zeros((4, 4), dtype=np.float32))
        dsts = {1: ctx.device(1).empty((5, 4))}
        with pytest.raises(CommunicationError):
            comm.broadcast(0, src, dsts)

    def test_root_must_be_member(self, ctx):
        comm = Communicator(ctx, ranks=[0, 1])
        src = ctx.device(2).from_numpy(np.zeros((2, 2), dtype=np.float32))
        with pytest.raises(CommunicationError):
            comm.broadcast(2, src, {})


class TestAllreduce:
    def test_sum(self, ctx, comm):
        tensors = {
            r: ctx.device(r).from_numpy(
                np.full((3, 3), float(r + 1), dtype=np.float32)
            )
            for r in range(4)
        }
        comm.allreduce(tensors, op="sum")
        for r in range(4):
            assert np.allclose(tensors[r].data, 10.0)

    def test_mean(self, ctx, comm):
        tensors = {
            r: ctx.device(r).from_numpy(
                np.full((2, 2), float(r), dtype=np.float32)
            )
            for r in range(4)
        }
        comm.allreduce(tensors, op="mean")
        for r in range(4):
            assert np.allclose(tensors[r].data, 1.5)

    def test_unknown_op(self, ctx, comm):
        tensors = {r: ctx.device(r).zeros((2, 2)) for r in range(4)}
        with pytest.raises(CommunicationError):
            comm.allreduce(tensors, op="max")

    def test_missing_rank_rejected(self, ctx, comm):
        tensors = {r: ctx.device(r).zeros((2, 2)) for r in range(3)}
        with pytest.raises(CommunicationError):
            comm.allreduce(tensors)

    def test_shape_mismatch_rejected(self, ctx, comm):
        tensors = {r: ctx.device(r).zeros((2, 2)) for r in range(3)}
        tensors[3] = ctx.device(3).zeros((3, 3))
        with pytest.raises(CommunicationError):
            comm.allreduce(tensors)


class TestReduce:
    def test_sum_lands_on_root(self, ctx, comm):
        tensors = {
            r: ctx.device(r).from_numpy(
                np.full((2, 2), float(r + 1), dtype=np.float32)
            )
            for r in range(4)
        }
        comm.reduce(2, tensors)
        assert np.allclose(tensors[2].data, 10.0)
        assert np.allclose(tensors[0].data, 1.0)  # others untouched

    def test_invalid_root(self, ctx):
        comm = Communicator(ctx, ranks=[0, 1])
        tensors = {r: ctx.device(r).zeros((2, 2)) for r in (0, 1)}
        with pytest.raises(CommunicationError):
            comm.reduce(3, tensors)


class TestAllgather:
    def test_concatenation(self, ctx, comm):
        srcs = {
            r: ctx.device(r).from_numpy(
                np.full((2, 3), float(r), dtype=np.float32)
            )
            for r in range(4)
        }
        dsts = {r: ctx.device(r).empty((8, 3)) for r in range(4)}
        comm.allgather(srcs, dsts)
        for r in range(4):
            for s in range(4):
                assert np.allclose(dsts[r].data[2 * s : 2 * s + 2], float(s))

    def test_wrong_dst_rows(self, ctx, comm):
        srcs = {r: ctx.device(r).zeros((2, 3)) for r in range(4)}
        dsts = {r: ctx.device(r).empty((6, 3)) for r in range(4)}
        with pytest.raises(CommunicationError):
            comm.allgather(srcs, dsts)


class TestTiming:
    def test_single_rank_collectives_are_free(self):
        ctx = SimContext(dgx1(), num_gpus=1)
        comm = Communicator(ctx)
        t = ctx.device(0).zeros((4, 4))
        events = comm.allreduce({0: t})
        assert events[0].time == pytest.approx(0.0)

    def test_switch_machine_faster_than_mesh(self):
        def bcast_time(machine):
            ctx = SimContext(machine, num_gpus=8)
            comm = Communicator(ctx)
            src = ctx.device(0).from_numpy(
                np.zeros((1 << 14, 512), dtype=np.float32)
            )
            dsts = {r: ctx.device(r).empty((1 << 14, 512)) for r in range(1, 8)}
            return comm.broadcast(0, src, dsts)[0].time

        assert bcast_time(dgx_a100()) < bcast_time(dgx1())

    def test_bw_derate_slows_collectives(self):
        def bcast_time(derate):
            ctx = SimContext(dgx1(), num_gpus=4)
            comm = Communicator(ctx, bw_derate=derate)
            src = ctx.device(0).from_numpy(np.zeros((1 << 14, 512), dtype=np.float32))
            dsts = {r: ctx.device(r).empty((1 << 14, 512)) for r in range(1, 4)}
            return comm.broadcast(0, src, dsts)[0].time

        assert bcast_time(0.5) > bcast_time(1.0)

    def test_collective_overhead_floor(self):
        ctx = SimContext(dgx1(), num_gpus=4)
        comm = Communicator(ctx, collective_overhead=1e-3)
        src = ctx.device(0).from_numpy(np.zeros((1, 1), dtype=np.float32))
        dsts = {r: ctx.device(r).empty((1, 1)) for r in range(1, 4)}
        assert comm.broadcast(0, src, dsts)[0].time >= 1e-3

    def test_invalid_construction(self, ctx):
        with pytest.raises(CommunicationError):
            Communicator(ctx, ranks=[0, 0])
        with pytest.raises(CommunicationError):
            Communicator(ctx, ranks=[0, 99])
        with pytest.raises(CommunicationError):
            Communicator(ctx, bw_derate=0.0)
        with pytest.raises(CommunicationError):
            Communicator(ctx, collective_overhead=-1.0)
