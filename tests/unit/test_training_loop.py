"""Training-loop utilities: history, early stopping, stop conditions."""

import math

import pytest

from repro.core import MGGCNTrainer, TrainerConfig
from repro.errors import ConfigurationError
from repro.hardware import dgx1
from repro.training import EarlyStopping, TrainingLoop, TrainingHistory


class TestEarlyStopping:
    def test_stops_after_patience(self):
        es = EarlyStopping(patience=3)
        assert not es.update(0.5)
        assert not es.update(0.5)  # stale 1
        assert not es.update(0.5)  # stale 2
        assert es.update(0.5)      # stale 3 -> stop

    def test_improvement_resets(self):
        es = EarlyStopping(patience=2)
        es.update(0.5)
        es.update(0.5)
        assert not es.update(0.6)  # improvement
        assert not es.update(0.6)
        assert es.update(0.6)

    def test_min_delta(self):
        es = EarlyStopping(patience=1, min_delta=0.05)
        es.update(0.5)
        assert es.update(0.52)  # not enough improvement

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EarlyStopping(patience=0)
        with pytest.raises(ConfigurationError):
            EarlyStopping(min_delta=-0.1)


class TestTrainingLoop:
    def _trainer(self, small_dataset, small_model, seed=3):
        return MGGCNTrainer(
            small_dataset, small_model, machine=dgx1(), num_gpus=2,
            config=TrainerConfig(seed=seed),
        )

    def test_runs_to_max_epochs(self, small_dataset, small_model):
        loop = TrainingLoop(self._trainer(small_dataset, small_model),
                            max_epochs=6, eval_every=0)
        history = loop.run()
        assert history.epochs == 6
        assert loop.stopped_reason == "max_epochs"
        assert history.total_simulated_time > 0
        assert all(not math.isnan(l) for l in history.losses)

    def test_target_accuracy_stops_early(self, small_dataset, small_model):
        loop = TrainingLoop(
            self._trainer(small_dataset, small_model),
            max_epochs=100, eval_every=2, target_accuracy=0.5,
        )
        history = loop.run()
        assert loop.stopped_reason == "target_accuracy"
        assert history.epochs < 100
        assert history.best_val_accuracy >= 0.5

    def test_early_stopping_fires_on_plateau(self, small_dataset, small_model):
        loop = TrainingLoop(
            self._trainer(small_dataset, small_model),
            max_epochs=200, eval_every=1,
            early_stopping=EarlyStopping(patience=3, min_delta=0.001),
        )
        history = loop.run()
        assert loop.stopped_reason in ("early_stopping", "max_epochs")
        # a learnable planted dataset converges, so it must stop early
        assert history.epochs < 200

    def test_callback_invoked(self, small_dataset, small_model):
        seen = []
        loop = TrainingLoop(
            self._trainer(small_dataset, small_model),
            max_epochs=3, eval_every=1,
            on_epoch=lambda epoch, stats, acc: seen.append((epoch, acc)),
        )
        loop.run()
        assert [e for e, _ in seen] == [1, 2, 3]
        assert all(acc is not None for _, acc in seen)

    def test_eval_cadence(self, small_dataset, small_model):
        loop = TrainingLoop(self._trainer(small_dataset, small_model),
                            max_epochs=6, eval_every=3)
        history = loop.run()
        evaluated = [a is not None for a in history.val_accuracies]
        assert evaluated == [False, False, True, False, False, True]

    def test_validation_config(self, small_dataset, small_model):
        trainer = self._trainer(small_dataset, small_model)
        with pytest.raises(ConfigurationError):
            TrainingLoop(trainer, max_epochs=0)
        with pytest.raises(ConfigurationError):
            TrainingLoop(trainer, target_accuracy=1.5)
        with pytest.raises(ConfigurationError):
            TrainingLoop(trainer, eval_every=0, target_accuracy=0.5)

    def test_history_dataclass(self):
        h = TrainingHistory(losses=[1.0], val_accuracies=[None],
                            epoch_times=[0.1])
        assert h.epochs == 1
        assert h.best_val_accuracy is None
