"""Permutations: validity, inversion, symmetric application (§5.2)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse import (
    COOMatrix,
    apply_permutation,
    degree_sort_permutation,
    identity_permutation,
    invert_permutation,
    random_permutation,
)
from repro.sparse.permutation import permute_rows


def test_identity():
    perm = identity_permutation(5)
    assert list(perm) == [0, 1, 2, 3, 4]
    with pytest.raises(ValueError):
        identity_permutation(-1)


def test_random_permutation_is_permutation():
    perm = random_permutation(100, seed=1)
    assert sorted(perm) == list(range(100))


def test_random_permutation_seeded():
    assert np.array_equal(random_permutation(50, seed=2), random_permutation(50, seed=2))
    assert not np.array_equal(
        random_permutation(50, seed=2), random_permutation(50, seed=3)
    )


def test_degree_sort_descending():
    degrees = np.array([1, 9, 4, 9, 0])
    perm = degree_sort_permutation(degrees)
    # vertex 1 (deg 9, lower id) goes first, then 3, then 2, 0, 4
    new_order = invert_permutation(perm)
    assert list(new_order) == [1, 3, 2, 0, 4]


def test_degree_sort_ascending():
    degrees = np.array([3, 1, 2])
    perm = degree_sort_permutation(degrees, descending=False)
    assert list(invert_permutation(perm)) == [1, 2, 0]


def test_invert_roundtrip():
    perm = random_permutation(64, seed=9)
    inv = invert_permutation(perm)
    assert np.array_equal(perm[inv], np.arange(64))
    assert np.array_equal(inv[perm], np.arange(64))


def test_invert_rejects_non_permutation():
    with pytest.raises(ValueError):
        invert_permutation(np.array([0, 0, 1]))
    with pytest.raises(ValueError):
        invert_permutation(np.array([0, 3]))


def test_apply_permutation_symmetric():
    dense = np.array([[0, 1, 0], [0, 0, 2], [3, 0, 0]], dtype=np.float32)
    coo = COOMatrix.from_edges(3, np.argwhere(dense > 0), vals=dense[dense > 0])
    perm = np.array([2, 0, 1])  # old->new
    permuted = apply_permutation(coo, perm).to_dense()
    for u, v in np.argwhere(dense > 0):
        assert permuted[perm[u], perm[v]] == dense[u, v]


def test_apply_permutation_requires_square():
    coo = COOMatrix((2, 3), rows=[0], cols=[1])
    with pytest.raises(ShapeError):
        apply_permutation(coo, np.array([0, 1]))


def test_apply_permutation_length_check():
    coo = COOMatrix((3, 3), rows=[0], cols=[1])
    with pytest.raises(ShapeError):
        apply_permutation(coo, np.array([0, 1]))


def test_permute_rows():
    arr = np.arange(12).reshape(4, 3)
    perm = np.array([2, 0, 3, 1])
    out = permute_rows(arr, perm)
    for old, new in enumerate(perm):
        assert np.array_equal(out[new], arr[old])


def test_permute_rows_length_check():
    with pytest.raises(ShapeError):
        permute_rows(np.arange(6).reshape(3, 2), np.array([0, 1]))


def test_permutation_preserves_degree_multiset():
    rng = np.random.default_rng(4)
    dense = (rng.random((30, 30)) < 0.2).astype(np.float32)
    coo = COOMatrix(dense.shape, *np.nonzero(dense))
    perm = random_permutation(30, seed=5)
    permuted = apply_permutation(coo, perm)
    assert sorted(coo.row_degrees()) == sorted(permuted.row_degrees())
