"""Edge cases in profiling: empty traces, single events, zero durations."""

import pytest

from repro.device.engine import TraceEvent
from repro.profiling import (
    extract_stage_timeline,
    load_balance,
    merge_chrome_traces,
    publish_utilization,
    render_timeline,
    spmm_span,
    trace_to_chrome_events,
    utilization_by_device,
    utilization_report,
)
from repro.telemetry import MetricsRegistry
from repro.utils.intervals import (
    intersection_measure,
    merge_spans,
    subtract_measure,
    union_measure,
)


def _ev(name="fwd0/spmm/stage0/comp", category="spmm", device="gpu0",
        stream="compute", start=0.0, end=1.0, stage=0, nbytes=0):
    return TraceEvent(device, stream, name, category, start, end, stage, nbytes)


# -- stage timelines ----------------------------------------------------------


class TestTimelineEdges:
    def test_empty_trace(self):
        assert extract_stage_timeline([], "fwd0/spmm") == []
        assert spmm_span([]) == 0.0
        assert render_timeline([]) == "(empty timeline)"

    def test_single_event_timeline(self):
        spans = extract_stage_timeline([_ev()], "fwd0/spmm")
        assert len(spans) == 1
        assert spans[0].kind == "comp"
        assert spans[0].duration == 1.0
        assert spmm_span(spans) == 1.0
        assert "gpu0" in render_timeline(spans)

    def test_zero_duration_span(self):
        spans = extract_stage_timeline(
            [_ev(start=2.0, end=2.0)], "fwd0/spmm"
        )
        assert spans[0].duration == 0.0
        assert spmm_span(spans) == 0.0
        # degenerate window must not divide by zero
        assert isinstance(render_timeline(spans), str)

    def test_events_without_stage_are_skipped(self):
        trace = [_ev(stage=None), _ev(name="other/op")]
        assert extract_stage_timeline(trace, "fwd0/spmm") == []


# -- utilisation --------------------------------------------------------------


class TestUtilizationEdges:
    def test_empty_trace(self):
        assert utilization_by_device([]) == {}
        assert load_balance([]) == 1.0
        assert utilization_report([]) == "(empty trace)"

    def test_single_event(self):
        util = utilization_by_device([_ev()])
        assert set(util) == {"gpu0"}
        u = util["gpu0"]
        assert u.compute_busy == 1.0
        assert u.comm_busy == 0.0
        assert u.exposed_comm == 0.0
        assert u.compute_fraction == pytest.approx(1.0)
        assert load_balance([_ev()]) == 1.0

    def test_zero_duration_events(self):
        trace = [
            _ev(start=1.0, end=1.0),
            _ev(name="ar", category="comm", stream="comm",
                start=1.0, end=1.0, nbytes=64),
        ]
        util = utilization_by_device(trace)
        u = util["gpu0"]
        assert u.compute_busy == 0.0
        assert u.comm_busy == 0.0
        assert u.exposed_comm == 0.0
        # zero-width window: fractions stay finite
        assert u.compute_fraction == 0.0
        assert load_balance(trace) == 1.0

    def test_comm_only_device(self):
        trace = [_ev(name="ar", category="comm", device="gpu1",
                     stream="comm", start=0.0, end=2.0, nbytes=32)]
        u = utilization_by_device(trace)["gpu1"]
        assert u.compute_busy == 0.0
        assert u.comm_busy == 2.0
        assert u.exposed_comm == 2.0  # nothing to hide behind

    def test_publish_utilization_smoke(self):
        reg = MetricsRegistry()
        publish_utilization([_ev()], reg)
        flat = reg.flatten()
        assert flat['repro_util_compute_fraction{device="gpu0"}'] == pytest.approx(1.0)
        assert flat["repro_util_load_balance"] == 1.0

    def test_publish_utilization_empty_trace(self):
        reg = MetricsRegistry()
        publish_utilization([], reg)
        assert reg.flatten() == {}


# -- interval primitives ------------------------------------------------------


class TestIntervals:
    def test_empty(self):
        import numpy as np

        empty = np.empty(0)
        ms, me = merge_spans(empty, empty)
        assert len(ms) == 0
        assert union_measure(empty, empty) == 0.0
        assert intersection_measure(empty, empty, empty, empty) == 0.0
        assert subtract_measure(empty, empty, empty, empty) == 0.0

    def test_touching_spans_coalesce(self):
        import numpy as np

        s = np.array([0.0, 1.0])
        e = np.array([1.0, 2.0])
        ms, me = merge_spans(s, e)
        assert ms.tolist() == [0.0]
        assert me.tolist() == [2.0]
        assert union_measure(s, e) == 2.0

    def test_zero_duration_spans(self):
        import numpy as np

        s = np.array([1.0, 1.0])
        e = np.array([1.0, 1.0])
        assert union_measure(s, e) == 0.0


# -- chrome export edges ------------------------------------------------------


class TestChromeExportEdges:
    def test_empty_trace_still_emits_nothing(self):
        assert trace_to_chrome_events([]) == []
        assert merge_chrome_traces({}) == []

    def test_run_id_namespaces_process_names(self):
        events = trace_to_chrome_events([_ev()], run_id="r1")
        names = [e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"]
        assert names == ["r1/gpu0"]
        complete = [e for e in events if e["ph"] == "X"]
        assert complete[0]["args"]["run"] == "r1"

    def test_merge_zero_duration_event(self):
        merged = merge_chrome_traces({"a": [_ev(start=1.0, end=1.0)]})
        complete = [e for e in merged if e["ph"] == "X"]
        assert complete[0]["dur"] == 0.0
