"""RNG plumbing, validation helpers and formatting."""

import numpy as np
import pytest

from repro.utils import (
    as_generator,
    split_generator,
    check_positive,
    check_nonnegative,
    check_in_range,
    check_type,
    format_bytes,
    format_seconds,
    ascii_table,
)


class TestRNG:
    def test_none_seed_is_deterministic(self):
        a = as_generator(None).integers(0, 1 << 30, size=8)
        b = as_generator(None).integers(0, 1 << 30, size=8)
        assert np.array_equal(a, b)

    def test_int_seed_reproducible(self):
        a = as_generator(42).random(4)
        b = as_generator(42).random(4)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(7)
        assert as_generator(g) is g

    def test_split_generator_children_independent(self):
        parent = as_generator(3)
        kids = split_generator(parent, 3)
        draws = [k.random(4) for k in kids]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_split_generator_deterministic(self):
        a = [g.random(2) for g in split_generator(as_generator(5), 2)]
        b = [g.random(2) for g in split_generator(as_generator(5), 2)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_split_generator_zero(self):
        assert split_generator(as_generator(1), 0) == []

    def test_split_generator_negative(self):
        with pytest.raises(ValueError):
            split_generator(as_generator(1), -1)


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ValueError):
            check_positive("x", 0)
        with pytest.raises(ValueError):
            check_positive("x", -3.5)

    def test_check_nonnegative(self):
        check_nonnegative("x", 0)
        with pytest.raises(ValueError):
            check_nonnegative("x", -1)

    def test_check_in_range_inclusive(self):
        check_in_range("x", 5, 5, 10)
        check_in_range("x", 10, 5, 10)
        with pytest.raises(ValueError):
            check_in_range("x", 11, 5, 10)

    def test_check_in_range_exclusive(self):
        check_in_range("x", 6, 5, 10, inclusive=False)
        with pytest.raises(ValueError):
            check_in_range("x", 5, 5, 10, inclusive=False)

    def test_check_type(self):
        check_type("x", 3, int)
        check_type("x", 3, (int, float))
        with pytest.raises(TypeError):
            check_type("x", "3", int)


class TestFormat:
    def test_format_bytes_units(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.00 KiB"
        assert format_bytes(3 * 2**20) == "3.00 MiB"
        assert format_bytes(2**31) == "2.00 GiB"

    def test_format_bytes_negative(self):
        assert format_bytes(-2048) == "-2.00 KiB"

    def test_format_seconds_units(self):
        assert format_seconds(2.5) == "2.500 s"
        assert format_seconds(0.0382) == "38.20 ms"
        assert format_seconds(42e-6) == "42.00 us"
        assert format_seconds(5e-9) == "5.0 ns"

    def test_ascii_table_alignment(self):
        table = ascii_table(["a", "bbbb"], [["x", 1], ["yyyy", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_ascii_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            ascii_table(["a", "b"], [["only-one"]])
