"""Graph I/O: edge lists, binary CSR, NPZ dataset bundles."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.errors import GraphFormatError
from repro.io import (
    load_dataset_npz,
    read_binary_csr,
    read_edgelist,
    save_dataset_npz,
    write_binary_csr,
    write_edgelist,
)
from repro.sparse import COOMatrix, CSRMatrix


@pytest.fixture()
def sample_coo(rng):
    dense = (rng.random((15, 15)) < 0.2).astype(np.float32)
    rows, cols = np.nonzero(dense)
    return COOMatrix(dense.shape, rows, cols, dense[rows, cols])


class TestEdgeList:
    def test_roundtrip_unweighted(self, tmp_path, sample_coo):
        path = tmp_path / "g.el"
        write_edgelist(path, sample_coo)
        loaded = read_edgelist(path, num_vertices=15)
        assert loaded.nnz == sample_coo.nnz
        assert np.array_equal(loaded.rows, sample_coo.rows)
        assert np.array_equal(loaded.cols, sample_coo.cols)

    def test_roundtrip_weighted(self, tmp_path, sample_coo):
        path = tmp_path / "g.wel"
        write_edgelist(path, sample_coo, include_weights=True)
        loaded = read_edgelist(path, num_vertices=15)
        assert np.allclose(loaded.to_dense(), sample_coo.to_dense(), atol=1e-6)

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "g.el"
        path.write_text("# comment\n% other comment\n\n0 1\n1 2\n")
        coo = read_edgelist(path)
        assert coo.nnz == 2
        assert coo.shape == (3, 3)

    def test_symmetrize(self, tmp_path):
        path = tmp_path / "g.el"
        path.write_text("0 1\n")
        coo = read_edgelist(path, symmetrize=True)
        dense = coo.to_dense()
        assert dense[0, 1] == dense[1, 0] == 1.0

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "g.el"
        path.write_text("0 1 2 3\n")
        with pytest.raises(GraphFormatError):
            read_edgelist(path)

    def test_non_integer_id(self, tmp_path):
        path = tmp_path / "g.el"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError):
            read_edgelist(path)

    def test_negative_id(self, tmp_path):
        path = tmp_path / "g.el"
        path.write_text("-1 2\n")
        with pytest.raises(GraphFormatError):
            read_edgelist(path)

    def test_inconsistent_columns(self, tmp_path):
        path = tmp_path / "g.el"
        path.write_text("0 1\n0 1 2.5\n")
        with pytest.raises(GraphFormatError):
            read_edgelist(path)

    def test_id_exceeds_declared_vertices(self, tmp_path):
        path = tmp_path / "g.el"
        path.write_text("0 9\n")
        with pytest.raises(GraphFormatError):
            read_edgelist(path, num_vertices=5)

    def test_bad_weight(self, tmp_path):
        path = tmp_path / "g.el"
        path.write_text("0 1 heavy\n")
        with pytest.raises(GraphFormatError):
            read_edgelist(path)

    def test_header_written(self, tmp_path, sample_coo):
        path = tmp_path / "g.el"
        write_edgelist(path, sample_coo, header="my graph")
        assert path.read_text().startswith("# my graph")


class TestBinaryCSR:
    def test_roundtrip(self, tmp_path, sample_coo):
        csr = CSRMatrix.from_coo(sample_coo)
        path = tmp_path / "g.csr"
        write_binary_csr(path, csr)
        loaded = read_binary_csr(path)
        assert loaded.shape == csr.shape
        assert np.array_equal(loaded.indptr, csr.indptr)
        assert np.array_equal(loaded.indices, csr.indices)
        assert np.allclose(loaded.vals, csr.vals)

    def test_empty_matrix_roundtrip(self, tmp_path):
        csr = CSRMatrix.empty((5, 7))
        path = tmp_path / "e.csr"
        write_binary_csr(path, csr)
        loaded = read_binary_csr(path)
        assert loaded.shape == (5, 7)
        assert loaded.nnz == 0

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.csr"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 40)
        with pytest.raises(GraphFormatError):
            read_binary_csr(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.csr"
        path.write_bytes(b"REPROCSR")
        with pytest.raises(GraphFormatError):
            read_binary_csr(path)

    def test_truncated_body(self, tmp_path, sample_coo):
        csr = CSRMatrix.from_coo(sample_coo)
        path = tmp_path / "g.csr"
        write_binary_csr(path, csr)
        data = path.read_bytes()
        path.write_bytes(data[:-8])
        with pytest.raises(GraphFormatError):
            read_binary_csr(path)

    def test_trailing_garbage(self, tmp_path, sample_coo):
        csr = CSRMatrix.from_coo(sample_coo)
        path = tmp_path / "g.csr"
        write_binary_csr(path, csr)
        with open(path, "ab") as fh:
            fh.write(b"junk")
        with pytest.raises(GraphFormatError):
            read_binary_csr(path)


class TestNPZ:
    def test_roundtrip(self, tmp_path):
        ds = load_dataset("cora", scale=0.05, learnable=True, seed=3)
        path = tmp_path / "cora.npz"
        save_dataset_npz(path, ds)
        loaded = load_dataset_npz(path)
        assert loaded.name == ds.name
        assert loaded.n == ds.n
        assert loaded.m == ds.m
        assert np.allclose(loaded.features, ds.features)
        assert np.array_equal(loaded.labels, ds.labels)
        assert np.array_equal(loaded.train_mask, ds.train_mask)
        assert loaded.num_classes == ds.num_classes

    def test_missing_keys(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, unrelated=np.zeros(3))
        with pytest.raises(GraphFormatError):
            load_dataset_npz(path)
