"""DeviceTensor: modes, views, loads, memory interaction."""

import numpy as np
import pytest

from repro.device import Mode, VirtualGPU
from repro.device.tensor import check_same_mode
from repro.errors import ModeError, ShapeError
from repro.hardware.machines import V100


@pytest.fixture()
def dev():
    return VirtualGPU(V100, rank=0, mode=Mode.FUNCTIONAL)


@pytest.fixture()
def sym_dev():
    return VirtualGPU(V100, rank=0, mode=Mode.SYMBOLIC)


def test_empty_allocates_and_frees(dev):
    t = dev.empty((10, 4), name="t")
    assert dev.memory_in_use >= 160
    t.free()
    assert dev.memory_in_use == 0


def test_zeros(dev):
    t = dev.zeros((3, 3))
    assert np.all(t.data == 0)


def test_from_numpy_copies(dev):
    src = np.arange(6, dtype=np.float32).reshape(2, 3)
    t = dev.from_numpy(src)
    src[0, 0] = 99
    assert t.data[0, 0] == 0


def test_symbolic_tensor_has_no_data(sym_dev):
    t = sym_dev.empty((5, 5))
    assert t.data is None
    with pytest.raises(ModeError):
        t.require_data()


def test_symbolic_counts_memory(sym_dev):
    t = sym_dev.empty((1024, 1024))
    assert sym_dev.memory_in_use >= 1024 * 1024 * 4


def test_functional_device_can_make_symbolic_tensor(dev):
    t = dev.symbolic((4, 4))
    assert t.mode is Mode.SYMBOLIC
    assert t.data is None


def test_geometry_properties(dev):
    t = dev.empty((7, 3))
    assert t.rows == 7 and t.cols == 3
    assert t.size == 21
    assert t.nbytes == 84
    v = dev.empty((5,))
    assert v.cols == 1


def test_view_shares_memory(dev):
    t = dev.zeros((8, 4), name="base")
    v = t.view(3)
    v.data[:] = 7.0
    assert np.all(t.data[:3] == 7.0)
    assert np.all(t.data[3:] == 0.0)
    assert v.allocation is None


def test_view2d_window(dev):
    t = dev.zeros((8, 4))
    v = t.view2d(2, 3)
    assert v.shape == (2, 3)
    v.data.fill(1.0)
    assert t.data[:2, :3].sum() == 6.0
    assert t.data.sum() == 6.0


def test_view_out_of_range(dev):
    t = dev.empty((4, 4))
    with pytest.raises(ShapeError):
        t.view(5)
    with pytest.raises(ShapeError):
        t.view2d(2, 9)


def test_view_requires_2d(dev):
    t = dev.empty((4,))
    with pytest.raises(ShapeError):
        t.view(2)


def test_load_checks_shape(dev):
    t = dev.empty((2, 2))
    with pytest.raises(ShapeError):
        t.load_(np.zeros((3, 3), dtype=np.float32))


def test_load_casts_dtype(dev):
    t = dev.empty((2, 2))
    t.load_(np.ones((2, 2), dtype=np.float64))
    assert t.data.dtype == np.float32


def test_load_noop_in_symbolic(sym_dev):
    t = sym_dev.empty((2, 2))
    t.load_(np.ones((2, 2)))  # silently ignored
    assert t.data is None


def test_fill_in_symbolic_is_noop(sym_dev):
    t = sym_dev.empty((2, 2))
    assert t.fill_(3.0) is t


def test_check_same_mode(dev, sym_dev):
    a = dev.empty((2, 2))
    b = dev.empty((2, 2))
    assert check_same_mode(a, b) is Mode.FUNCTIONAL
    c = sym_dev.empty((2, 2))
    with pytest.raises(ModeError):
        check_same_mode(a, c)


def test_negative_shape_rejected(dev):
    with pytest.raises(ShapeError):
        dev.empty((-1, 4))
