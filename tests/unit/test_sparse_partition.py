"""Partition vectors, tilings and tile-nnz accounting (eqs. 13-15)."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.sparse import (
    CSRMatrix,
    PartitionVector,
    balanced_nnz_partition,
    tile_grid,
    uniform_partition,
)
from repro.sparse.partition import tile_nnz_matrix


class TestPartitionVector:
    def test_valid(self):
        p = PartitionVector((0, 3, 7, 10))
        assert p.num_parts == 3
        assert p.total == 10
        assert p.part(1) == (3, 7)
        assert p.sizes() == [3, 4, 3]

    def test_empty_parts_allowed(self):
        p = PartitionVector((0, 0, 5, 5))
        assert p.size(0) == 0
        assert p.size(2) == 0

    def test_invalid_start(self):
        with pytest.raises(PartitionError):
            PartitionVector((1, 5))

    def test_decreasing_rejected(self):
        with pytest.raises(PartitionError):
            PartitionVector((0, 5, 3))

    def test_too_short(self):
        with pytest.raises(PartitionError):
            PartitionVector((0,))

    def test_owner(self):
        p = PartitionVector((0, 3, 7, 10))
        assert p.owner(0) == 0
        assert p.owner(2) == 0
        assert p.owner(3) == 1
        assert p.owner(9) == 2
        with pytest.raises(PartitionError):
            p.owner(10)

    def test_iteration(self):
        p = uniform_partition(10, 3)
        assert list(p) == [p.part(i) for i in range(3)]


class TestUniformPartition:
    def test_exact_division(self):
        p = uniform_partition(12, 4)
        assert p.sizes() == [3, 3, 3, 3]

    def test_remainder_spread_first(self):
        p = uniform_partition(10, 4)
        assert p.sizes() == [3, 3, 2, 2]

    def test_more_parts_than_elements(self):
        p = uniform_partition(2, 4)
        assert p.sizes() == [1, 1, 0, 0]

    def test_invalid_args(self):
        with pytest.raises(PartitionError):
            uniform_partition(10, 0)
        with pytest.raises(PartitionError):
            uniform_partition(-1, 2)


class TestBalancedNnzPartition:
    def test_balances_skewed_matrix(self, rng):
        # first rows very dense, rest sparse
        dense = np.zeros((40, 40), dtype=np.float32)
        dense[:4] = 1.0
        dense[4:, 0] = 1.0
        csr = CSRMatrix.from_dense(dense)
        p = balanced_nnz_partition(csr, 4)
        nnz = tile_nnz_matrix(csr, p, uniform_partition(40, 1)).ravel()
        assert nnz.max() <= 2.5 * nnz.mean()

    def test_degenerate_single_part(self):
        csr = CSRMatrix.from_dense(np.eye(5, dtype=np.float32))
        p = balanced_nnz_partition(csr, 1)
        assert p.sizes() == [5]


class TestTileGrid:
    def test_tiles_reconstruct_matrix(self, rng):
        dense = (rng.random((20, 20)) < 0.3).astype(np.float32)
        csr = CSRMatrix.from_dense(dense)
        p = uniform_partition(20, 3)
        tiles = tile_grid(csr, p, p)
        recon = np.zeros_like(dense)
        for i, (r0, r1) in enumerate(p):
            for j, (c0, c1) in enumerate(p):
                recon[r0:r1, c0:c1] = tiles[i][j].to_dense()
        assert np.allclose(recon, dense)

    def test_tile_grid_rectangular(self, rng):
        dense = (rng.random((10, 15)) < 0.4).astype(np.float32)
        csr = CSRMatrix.from_dense(dense)
        rp, cp = uniform_partition(10, 2), uniform_partition(15, 3)
        tiles = tile_grid(csr, rp, cp)
        assert tiles[1][2].shape == (5, 5)

    def test_mismatched_partition_rejected(self, rng):
        csr = CSRMatrix.from_dense(np.eye(6, dtype=np.float32))
        with pytest.raises(PartitionError):
            tile_grid(csr, uniform_partition(5, 2), uniform_partition(6, 2))


class TestTileNnz:
    def test_matches_materialised_tiles(self, rng):
        dense = (rng.random((24, 24)) < 0.25).astype(np.float32)
        csr = CSRMatrix.from_dense(dense)
        p = uniform_partition(24, 4)
        nnz = tile_nnz_matrix(csr, p, p)
        tiles = tile_grid(csr, p, p)
        for i in range(4):
            for j in range(4):
                assert nnz[i, j] == tiles[i][j].nnz
        assert nnz.sum() == csr.nnz

    def test_partition_mismatch(self, rng):
        csr = CSRMatrix.from_dense(np.eye(6, dtype=np.float32))
        with pytest.raises(PartitionError):
            tile_nnz_matrix(csr, uniform_partition(4, 2), uniform_partition(6, 2))
