"""Unit: the kernel-backend registry and backend/reference parity.

Every non-reference backend must produce results matching the ``numpy``
reference: bitwise when it advertises ``bit_identical`` (blas_batched —
numpy's 3-D matmul runs the same 2-D GEMM kernel per slice), within
rtol=1e-5 otherwise (numba reassociates reduction adds). The matrix of
shapes x dtypes x transpose/accumulate flags below covers the operand
layouts the trainers actually submit, plus the ragged-group fallback
path of ``blas_batched``. The ``backends`` marker guards a longer
randomized sweep (deselected from tier-1 by default).
"""

import numpy as np
import pytest

from repro.backends import (
    NUMBA_AVAILABLE,
    BackendUnavailableError,
    KernelBackend,
    available_backends,
    get_backend,
    register_backend,
    registered_backends,
)
from repro.errors import ConfigurationError
from repro.sparse.csr import CSRMatrix

REFERENCE = get_backend("numpy")

#: every registered backend whose probe passes, reference excluded.
NON_REFERENCE = [n for n in available_backends() if n != "numpy"]


def _random_csr(rng, rows, cols, density=0.3, dtype=np.float32):
    dense = rng.standard_normal((rows, cols)).astype(dtype)
    dense[rng.random((rows, cols)) > density] = 0.0
    return CSRMatrix.from_dense(dense)


def _assert_matches(backend, got, want):
    if backend.bit_identical:
        np.testing.assert_array_equal(got, want)
    else:
        np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-7)


class TestRegistry:
    def test_reference_and_blas_always_available(self):
        names = available_backends()
        assert "numpy" in names
        assert "blas_batched" in names

    def test_numba_availability_tracks_import(self):
        assert ("numba" in available_backends()) == NUMBA_AVAILABLE

    def test_registered_backends_lists_unavailable_too(self):
        status = dict(registered_backends())
        assert status["numpy"] is True
        assert status["numba"] == NUMBA_AVAILABLE

    def test_unknown_backend_raises(self):
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            get_backend("tensorrt")

    def test_unavailable_backend_raises_specific_error(self):
        register_backend("always_off", KernelBackend, available=lambda: False)
        try:
            with pytest.raises(BackendUnavailableError):
                get_backend("always_off")
            assert "always_off" not in available_backends()
        finally:
            from repro.backends.base import _INSTANCES, _REGISTRY

            _REGISTRY.pop("always_off", None)
            _INSTANCES.pop("always_off", None)

    def test_get_backend_is_singleton_per_name(self):
        assert get_backend("numpy") is get_backend("numpy")
        assert get_backend("blas_batched") is not get_backend("numpy")

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba installed")
    def test_numba_unavailable_without_import(self):
        with pytest.raises(BackendUnavailableError):
            get_backend("numba")


@pytest.mark.parametrize("name", NON_REFERENCE)
class TestGemmParity:
    SHAPES = [(1, 1, 1), (7, 3, 5), (32, 16, 8), (64, 1, 9)]

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("transpose_a", [False, True])
    @pytest.mark.parametrize("transpose_b", [False, True])
    @pytest.mark.parametrize("accumulate", [False, True])
    def test_gemm_flag_matrix(self, name, dtype, transpose_a, transpose_b,
                              accumulate):
        backend = get_backend(name)
        rng = np.random.default_rng(3)
        for m, k, n in self.SHAPES:
            a = rng.standard_normal((k, m) if transpose_a else (m, k))
            b = rng.standard_normal((n, k) if transpose_b else (k, n))
            a = a.astype(dtype)
            b = b.astype(dtype)
            seed_out = rng.standard_normal((m, n)).astype(dtype)
            want = seed_out.copy()
            got = seed_out.copy()
            REFERENCE.gemm(a, b, want, transpose_a=transpose_a,
                           transpose_b=transpose_b, accumulate=accumulate)
            backend.gemm(a, b, got, transpose_a=transpose_a,
                         transpose_b=transpose_b, accumulate=accumulate)
            _assert_matches(backend, got, want)

    @pytest.mark.parametrize("group", [1, 2, 5])
    @pytest.mark.parametrize("transpose_a", [False, True])
    @pytest.mark.parametrize("accumulate", [False, True])
    def test_gemm_batch_uniform_group(self, name, group, transpose_a,
                                      accumulate):
        backend = get_backend(name)
        rng = np.random.default_rng(11)
        m, k, n = 12, 6, 4
        ops_ref, ops_got = [], []
        for _ in range(group):
            a = rng.standard_normal(
                (k, m) if transpose_a else (m, k)
            ).astype(np.float32)
            b = rng.standard_normal((k, n)).astype(np.float32)
            out = rng.standard_normal((m, n)).astype(np.float32)
            ops_ref.append((a, b, out.copy()))
            ops_got.append((a, b, out.copy()))
        REFERENCE.gemm_batch(ops_ref, transpose_a=transpose_a,
                             accumulate=accumulate)
        backend.gemm_batch(ops_got, transpose_a=transpose_a,
                           accumulate=accumulate)
        for (_, _, want), (_, _, got) in zip(ops_ref, ops_got):
            _assert_matches(backend, got, want)

    def test_gemm_batch_ragged_group_falls_back(self, name):
        backend = get_backend(name)
        rng = np.random.default_rng(5)
        shapes = [(8, 4, 3), (8, 4, 3), (5, 4, 3)]  # ragged last block
        ops_ref, ops_got = [], []
        for m, k, n in shapes:
            a = rng.standard_normal((m, k)).astype(np.float32)
            b = rng.standard_normal((k, n)).astype(np.float32)
            ops_ref.append((a, b, np.empty((m, n), dtype=np.float32)))
            ops_got.append((a, b, np.empty((m, n), dtype=np.float32)))
        REFERENCE.gemm_batch(ops_ref)
        backend.gemm_batch(ops_got)
        for (_, _, want), (_, _, got) in zip(ops_ref, ops_got):
            _assert_matches(backend, got, want)


@pytest.mark.parametrize("name", NON_REFERENCE)
class TestSparseAndEpilogueParity:
    @pytest.mark.parametrize("accumulate", [False, True])
    @pytest.mark.parametrize("shape", [(1, 1), (9, 13), (40, 24)])
    def test_spmm(self, name, shape, accumulate):
        backend = get_backend(name)
        rng = np.random.default_rng(17)
        rows, cols = shape
        tile = _random_csr(rng, rows, cols)
        dense = rng.standard_normal((cols, 6)).astype(np.float32)
        seed_out = rng.standard_normal((rows, 6)).astype(np.float32)
        want = seed_out.copy()
        got = seed_out.copy()
        REFERENCE.spmm(tile, dense, want, accumulate=accumulate)
        backend.spmm(tile, dense, got, accumulate=accumulate)
        _assert_matches(backend, got, want)

    def test_spmm_empty_tile(self, name):
        backend = get_backend(name)
        tile = CSRMatrix.empty((4, 4))
        dense = np.ones((4, 3), dtype=np.float32)
        want = np.full((4, 3), 2.0, dtype=np.float32)
        got = want.copy()
        REFERENCE.spmm(tile, dense, want, accumulate=False)
        backend.spmm(tile, dense, got, accumulate=False)
        np.testing.assert_array_equal(got, want)
        np.testing.assert_array_equal(got, 0.0)

    def test_relu_and_grad(self, name):
        backend = get_backend(name)
        rng = np.random.default_rng(23)
        x_want = rng.standard_normal((11, 7)).astype(np.float32)
        x_got = x_want.copy()
        REFERENCE.relu(x_want)
        backend.relu(x_got)
        np.testing.assert_array_equal(x_got, x_want)

        grad_want = rng.standard_normal((11, 7)).astype(np.float32)
        grad_got = grad_want.copy()
        REFERENCE.relu_grad(grad_want, x_want)
        backend.relu_grad(grad_got, x_got)
        np.testing.assert_array_equal(grad_got, grad_want)

    def test_gemm_relu_grad(self, name):
        backend = get_backend(name)
        rng = np.random.default_rng(29)
        a = rng.standard_normal((10, 4)).astype(np.float32)
        b = rng.standard_normal((6, 4)).astype(np.float32)
        seed_out = rng.standard_normal((10, 6)).astype(np.float32)
        want = seed_out.copy()
        got = seed_out.copy()
        REFERENCE.gemm_relu_grad(a, b, want)
        backend.gemm_relu_grad(a, b, got)
        _assert_matches(backend, got, want)


@pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
class TestNumbaParity:
    """Runs only where numba is importable; rtol-bounded, never bitwise."""

    def test_spmm_close_to_reference(self):
        backend = get_backend("numba")
        assert not backend.bit_identical
        rng = np.random.default_rng(31)
        tile = _random_csr(rng, 50, 30, density=0.2)
        dense = rng.standard_normal((30, 8)).astype(np.float32)
        want = np.zeros((50, 8), dtype=np.float32)
        got = np.zeros((50, 8), dtype=np.float32)
        REFERENCE.spmm(tile, dense, want, accumulate=False)
        backend.spmm(tile, dense, got, accumulate=False)
        np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-7)


@pytest.mark.backends
@pytest.mark.parametrize("name", NON_REFERENCE)
class TestRandomizedSweep:
    """Property-style sweep over random shapes/densities (long; opt-in)."""

    def test_gemm_random_shapes(self, name):
        backend = get_backend(name)
        rng = np.random.default_rng(101)
        for _ in range(200):
            m, k, n = (int(v) for v in rng.integers(1, 48, size=3))
            ta, tb, acc = (bool(v) for v in rng.integers(0, 2, size=3))
            dtype = np.float32 if rng.integers(0, 2) else np.float64
            a = rng.standard_normal((k, m) if ta else (m, k)).astype(dtype)
            b = rng.standard_normal((n, k) if tb else (k, n)).astype(dtype)
            seed_out = rng.standard_normal((m, n)).astype(dtype)
            want = seed_out.copy()
            got = seed_out.copy()
            REFERENCE.gemm(a, b, want, transpose_a=ta, transpose_b=tb,
                           accumulate=acc)
            backend.gemm(a, b, got, transpose_a=ta, transpose_b=tb,
                         accumulate=acc)
            _assert_matches(backend, got, want)

    def test_gemm_batch_random_groups(self, name):
        backend = get_backend(name)
        rng = np.random.default_rng(103)
        for _ in range(100):
            group = int(rng.integers(1, 9))
            m, k, n = (int(v) for v in rng.integers(1, 32, size=3))
            acc = bool(rng.integers(0, 2))
            ops_ref, ops_got = [], []
            for _ in range(group):
                a = rng.standard_normal((m, k)).astype(np.float32)
                b = rng.standard_normal((k, n)).astype(np.float32)
                out = rng.standard_normal((m, n)).astype(np.float32)
                ops_ref.append((a, b, out.copy()))
                ops_got.append((a, b, out.copy()))
            REFERENCE.gemm_batch(ops_ref, accumulate=acc)
            backend.gemm_batch(ops_got, accumulate=acc)
            for (_, _, want), (_, _, got) in zip(ops_ref, ops_got):
                _assert_matches(backend, got, want)

    def test_spmm_random_tiles(self, name):
        backend = get_backend(name)
        rng = np.random.default_rng(107)
        for _ in range(100):
            rows = int(rng.integers(1, 64))
            cols = int(rng.integers(1, 64))
            width = int(rng.integers(1, 16))
            density = float(rng.uniform(0.0, 0.5))
            acc = bool(rng.integers(0, 2))
            tile = _random_csr(rng, rows, cols, density=density)
            dense = rng.standard_normal((cols, width)).astype(np.float32)
            seed_out = rng.standard_normal((rows, width)).astype(np.float32)
            want = seed_out.copy()
            got = seed_out.copy()
            REFERENCE.spmm(tile, dense, want, accumulate=acc)
            backend.spmm(tile, dense, got, accumulate=acc)
            _assert_matches(backend, got, want)
