"""ParallelismPlanner: choices, explanations, memory guards, CLI."""

import json

import pytest

from repro.__main__ import main
from repro.datasets import load_dataset
from repro.errors import ConfigurationError
from repro.hardware import dgx1, multi_node_cluster
from repro.nn import GCNModelSpec
from repro.parallel import LAYER_SCHEMES, ParallelismPlanner


@pytest.fixture(scope="module")
def arxiv():
    return load_dataset("arxiv", symbolic=True)


def _plan(dataset, nodes=2, hidden=128, layers=2, **kwargs):
    machine = multi_node_cluster(nodes, dgx1()) if nodes > 1 else dgx1()
    model = GCNModelSpec.build(
        dataset.d0, hidden, dataset.num_classes, layers
    )
    return ParallelismPlanner(dataset, model, machine, **kwargs).plan()


class TestPlanStructure:
    def test_one_choice_per_layer(self, arxiv):
        plan = _plan(arxiv, layers=3)
        assert len(plan.choices) == 3
        assert all(c.scheme in LAYER_SCHEMES for c in plan.choices)
        assert plan.schemes == [plan.scheme(l) for l in range(3)]

    def test_every_layer_prices_every_scheme(self, arxiv):
        plan = _plan(arxiv)
        for choice in plan.choices:
            priced = {c.scheme for c in choice.candidates}
            assert priced == set(LAYER_SCHEMES)
            for cand in choice.candidates:
                assert cand.comm_time >= 0 and cand.compute_time >= 0

    def test_choices_have_reasons(self, arxiv):
        plan = _plan(arxiv)
        assert all(c.reason for c in plan.choices)

    def test_multi_node_prefers_non_flat(self, arxiv):
        """On 2 nodes with a wide model, flat 1D never wins a layer."""
        plan = _plan(arxiv, nodes=2, hidden=256)
        assert all(c.scheme != "1d" for c in plan.choices)
        assert plan.weight_sync == "hierarchical"

    def test_single_node_weight_sync_is_flat(self, arxiv):
        plan = _plan(arxiv, nodes=1)
        assert plan.weight_sync == "flat"
        assert plan.num_nodes == 1

    def test_mixture_estimate_never_worse_than_uniform_1d(self, arxiv):
        plan = _plan(arxiv, nodes=2)
        assert plan.mixture_estimate <= plan.fixed_estimates["1d"]
        assert plan.mixture_estimate <= plan.fixed_estimates["1d_hier"]

    def test_non_square_gpu_count_excludes_2d(self, arxiv):
        plan = _plan(arxiv, nodes=1)  # 8 GPUs
        assert "2d" not in plan.fixed_estimates
        assert "square" in plan.exclusions["2d"]

    def test_square_gpu_count_prices_2d(self, arxiv):
        plan = _plan(arxiv, nodes=2)  # 16 GPUs
        assert plan.fixed_estimates["2d"] > 0

    def test_to_dict_round_trips_through_json(self, arxiv):
        plan = _plan(arxiv)
        payload = json.loads(json.dumps(plan.to_dict()))
        assert payload["num_gpus"] == 16
        assert payload["weight_sync"] == plan.weight_sync
        assert [l["scheme"] for l in payload["layers"]] == plan.schemes
        assert payload["best_overall"] == plan.best_overall

    def test_invalid_gpu_count_rejected(self, arxiv):
        model = GCNModelSpec.build(arxiv.d0, 64, arxiv.num_classes, 2)
        with pytest.raises(ConfigurationError):
            ParallelismPlanner(arxiv, model, dgx1(), num_gpus=0)


class TestMemoryGuard:
    def test_tight_memory_disables_allgather(self, arxiv):
        """With little headroom, the replicated-operand scheme is priced
        infeasible and never chosen."""
        roomy = _plan(arxiv, nodes=1, hidden=64)
        tight = _plan(arxiv, nodes=1, hidden=64, memory_headroom=0.001)
        # the roomy plan picks allgather for at least one of these tiny
        # layers (it wins by ~9x on a single node); the tight one cannot
        assert any(s == "1d_allgather" for s in roomy.schemes)
        assert all(s != "1d_allgather" for s in tight.schemes)
        for choice in tight.choices:
            assert not choice.candidate("1d_allgather").feasible

    def test_extra_memory_reported(self, arxiv):
        plan = _plan(arxiv, nodes=1, hidden=64)
        if any(s == "1d_allgather" for s in plan.schemes):
            assert plan.extra_memory_per_gpu > 0

    def test_bad_headroom_rejected(self, arxiv):
        model = GCNModelSpec.build(arxiv.d0, 64, arxiv.num_classes, 2)
        with pytest.raises(ConfigurationError):
            ParallelismPlanner(arxiv, model, dgx1(), memory_headroom=0.0)


class TestExplain:
    def test_explain_mentions_every_layer_and_estimates(self, arxiv):
        plan = _plan(arxiv, layers=3)
        text = plan.explain()
        for choice in plan.choices:
            assert f"{choice.d_in}->{choice.d_out}" in text
            assert choice.scheme in text
        assert "weight sync" in text
        assert "recommendation:" in text
        for name in plan.fixed_estimates:
            assert name in text


class TestCLI:
    def test_parallel_plan_prints_table(self, capsys):
        rc = main(
            [
                "parallel",
                "plan",
                "arxiv",
                "--nodes",
                "2",
                "--hidden",
                "256",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "parallelism plan: arxiv x 2xDGX-1-V100" in out
        assert "16 GPUs, 2 nodes" in out
        # a table row per layer with the scheme and costs
        assert "128->256" in out and "256->40" in out
        assert "weight sync: hierarchical allreduce" in out
        assert "recommendation:" in out

    def test_parallel_plan_json(self, capsys):
        rc = main(["parallel", "plan", "cora", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["machine"] == "DGX-1-V100"
        assert payload["num_nodes"] == 1
        assert all(
            l["scheme"] in LAYER_SCHEMES for l in payload["layers"]
        )

    def test_parallel_plan_respects_gpu_override(self, capsys):
        rc = main(["parallel", "plan", "cora", "--gpus", "4"])
        assert rc == 0
        assert "(4 GPUs, 1 node)" in capsys.readouterr().out
