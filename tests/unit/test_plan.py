"""Unit tests for repro.plan (capture/replay) and its satellite caches."""

import numpy as np
import pytest

from repro.device.engine import SimContext
from repro.errors import PlanError
from repro.hardware import dgx1
from repro.kernels.cost import CostModel
from repro.nn.buffers import SharedBufferManager
from repro.plan import ExecutionPlan, PlanCapture, PlanStats, build_levels
from repro.resilience import FaultInjector, FaultPlan, StragglerSlowdown
from repro.sparse.csr import CSRMatrix
from repro.training.loop import TrainingHistory


# -- build_levels -------------------------------------------------------------


class TestBuildLevels:
    def test_diamond(self):
        # 0 -> {1, 2} -> 3
        levels = build_levels([(), (0,), (0,), (1, 2)])
        assert len(levels) == 3
        assert levels[0][0].tolist() == [0]
        assert sorted(levels[1][0].tolist()) == [1, 2]
        assert levels[2][0].tolist() == [3]
        idx, flat, offsets = levels[2]
        assert flat.tolist() == [1, 2]
        assert offsets.tolist() == [0]

    def test_level_zero_has_no_deps(self):
        levels = build_levels([(), (), (0, 1)])
        idx, flat, offsets = levels[0]
        assert sorted(idx.tolist()) == [0, 1]
        assert flat.size == 0

    def test_empty(self):
        assert build_levels([]) == []


# -- capture lifecycle --------------------------------------------------------


def _ctx(num_gpus=2, **kw):
    return SimContext(dgx1(), num_gpus=num_gpus, **kw)


class TestCaptureLifecycle:
    def test_double_begin_rejected(self):
        ctx = _ctx()
        cap = PlanCapture(ctx.engine)
        cap.begin()
        with pytest.raises(PlanError):
            cap.begin()
        cap.end()

    def test_second_capture_on_engine_rejected(self):
        ctx = _ctx()
        first = PlanCapture(ctx.engine)
        first.begin()
        with pytest.raises(PlanError):
            PlanCapture(ctx.engine).begin()
        first.end()

    def test_finalize_requires_end(self):
        ctx = _ctx()
        cap = PlanCapture(ctx.engine)
        cap.begin()
        with pytest.raises(PlanError):
            cap.finalize()
        cap.end()
        assert cap.finalize().num_ops == 0

    def test_refused_under_active_fault_plan(self):
        plan = FaultPlan(
            stragglers=(StragglerSlowdown(rank=0, factor=2.0, start=0.0),)
        )
        ctx = _ctx(fault_injector=FaultInjector(plan))
        with pytest.raises(PlanError):
            PlanCapture(ctx.engine).begin()

    def test_trivial_injector_allowed(self):
        ctx = _ctx(fault_injector=FaultInjector(FaultPlan()))
        cap = PlanCapture(ctx.engine)
        cap.begin()
        cap.end()


# -- capture + replay at engine level ----------------------------------------


def _submit_sequence(ctx, closures_hit=None):
    """A small cross-stream DAG with a barrier and a loss op."""
    engine = ctx.engine
    s0 = ctx.device(0).compute_stream
    s1 = ctx.device(1).compute_stream
    c1 = ctx.device(1).comm_stream

    def bump():
        if closures_hit is not None:
            closures_hit.append("k")

    def loss():
        if closures_hit is not None:
            closures_hit.append("loss")
        return 2.5

    # kernel contract: the caller executes the closure eagerly and hands
    # it to submit() for recording.
    bump()
    a = engine.submit(s0, "a", "gemm", 1.0, compute=bump)
    bump()
    b = engine.submit(s1, "b", "spmm", 2.0, stage=1, compute=bump)
    c = engine.submit(c1, "c", "comm", 0.5, deps=[a, b], nbytes=64)
    engine.barrier([s0, s1])
    loss()
    d = engine.submit(s0, "d", "loss", 0.25, deps=[c], compute=loss)
    return d


class TestEngineCaptureReplay:
    def test_replay_times_match_eager(self):
        # reference: two eager "epochs" back to back.
        ref = _ctx()
        _submit_sequence(ref)
        ref.synchronize()
        _submit_sequence(ref)
        ref.synchronize()

        # capture epoch 1, replay epoch 2.
        ctx = _ctx()
        cap = PlanCapture(ctx.engine)
        cap.begin()
        _submit_sequence(ctx)
        cap.end()
        plan = cap.finalize()
        t0 = ctx.synchronize()
        result = plan.replay(ctx.engine, t0)
        ctx.synchronize()

        want = [
            (e.device, e.stream, e.name, e.category, e.start, e.end, e.stage,
             e.nbytes)
            for e in ref.engine.trace
        ]
        got = [
            (e.device, e.stream, e.name, e.category, e.start, e.end, e.stage,
             e.nbytes)
            for e in ctx.engine.trace
        ]
        assert got == want  # bitwise
        assert result.loss_sum == 2.5
        assert result.events_emitted == 4
        assert result.end_time == ref.elapsed()

    def test_closures_rerun_in_captured_order(self):
        hits = []
        ctx = _ctx()
        cap = PlanCapture(ctx.engine)
        cap.begin()
        _submit_sequence(ctx, closures_hit=hits)
        cap.end()
        assert hits == ["k", "k", "loss"]
        plan = cap.finalize()
        plan.replay(ctx.engine, ctx.synchronize())
        assert hits == ["k", "k", "loss"] * 2
        assert plan.num_closures == 3

    def test_pre_capture_deps_dropped(self):
        ctx = _ctx()
        s0 = ctx.device(0).compute_stream
        before = ctx.engine.submit(s0, "warmup", "gemm", 1.0)
        ctx.synchronize()
        cap = PlanCapture(ctx.engine)
        cap.begin()
        ctx.engine.submit(s0, "x", "gemm", 1.0, deps=[before])
        cap.end()
        plan = cap.finalize()
        # the op is dependency-free inside the plan (the pre-capture event
        # is at/below the epoch barrier), so it sits in level 0.
        assert plan.num_levels == 1

    def test_category_totals(self):
        ctx = _ctx()
        cap = PlanCapture(ctx.engine)
        cap.begin()
        _submit_sequence(ctx)
        cap.end()
        totals = cap.finalize().category_totals()
        assert totals["gemm"] == 1.0
        assert totals["spmm"] == 2.0
        assert totals["comm"] == 0.5
        assert totals["loss"] == 0.25

    def test_replay_skips_trace_when_disabled(self):
        ctx = _ctx(record_trace=False)
        cap = PlanCapture(ctx.engine)
        cap.begin()
        _submit_sequence(ctx)
        cap.end()
        plan = cap.finalize()
        result = plan.replay(ctx.engine, ctx.synchronize())
        assert result.events_emitted == 0
        assert ctx.engine.trace == []

    def test_plan_stats_defaults(self):
        stats = PlanStats()
        assert (stats.captures, stats.replays, stats.eager_epochs,
                stats.invalidations) == (0, 0, 0, 0)


# -- CostModel memoization ----------------------------------------------------


class TestCostModelMemo:
    def test_cached_value_is_identical(self):
        cm = CostModel(dgx1().gpu)
        t1 = cm.gemm_time(128, 64, 32)
        assert ("gemm", 128, 64, 32, 4, 1.0) in cm._memo
        assert cm.gemm_time(128, 64, 32) == t1
        fresh = CostModel(dgx1().gpu)
        assert fresh.gemm_time(128, 64, 32) == t1

    def test_all_kernel_classes_memoized(self):
        cm = CostModel(dgx1().gpu)
        cm.spmm_time(100, 500, 16, 100)
        cm.sddmm_time(100, 500, 16, 100)
        cm.elementwise_time(1000)
        cm.reduction_time(1000)
        cm.memset_time(4096)
        kinds = {k[0] for k in cm._memo}
        assert kinds == {"spmm", "sddmm", "elementwise", "reduction", "memset"}

    def test_bound_clears_instead_of_growing(self):
        cm = CostModel(dgx1().gpu)
        cm._MEMO_LIMIT = 8
        for n in range(20):
            cm.memset_time(n + 1)
        assert len(cm._memo) <= 8


# -- CSR segment cache --------------------------------------------------------


class TestCSRSegmentCache:
    def _matrix(self):
        rng = np.random.default_rng(7)
        dense = (rng.random((40, 30)) < 0.15) * rng.random((40, 30))
        return CSRMatrix.from_dense(dense), dense

    def test_spmm_into_matches_spmm_and_dense(self):
        csr, dense = self._matrix()
        rng = np.random.default_rng(8)
        x = rng.standard_normal((30, 12)).astype(np.float32)
        want = dense.astype(np.float32) @ x
        for use_scipy in (True, False):
            out = np.zeros((40, 12), dtype=np.float32)
            csr.spmm_into(x, out, accumulate=True, use_scipy=use_scipy)
            np.testing.assert_allclose(out, want, rtol=1e-5, atol=1e-6)
            # accumulate=False refills
            csr.spmm_into(x, out, accumulate=False, use_scipy=use_scipy)
            np.testing.assert_allclose(out, want, rtol=1e-5, atol=1e-6)
            ref = csr.spmm(x, out=np.zeros_like(out), accumulate=True,
                           use_scipy=use_scipy)
            assert (out == ref).all()

    def test_segments_cached_per_width_bucket(self):
        csr, _ = self._matrix()
        seg16 = csr._segments(16)
        assert csr._segments(16) is seg16  # same object, no recompute
        # both widths bucket to the same chunk size for this tiny nnz
        assert csr._segments(17) is not None
        x = np.random.default_rng(9).standard_normal((30, 16)).astype(np.float32)
        out = np.zeros((40, 16), dtype=np.float32)
        csr.spmm_into(x, out, use_scipy=False)
        assert csr._segments(16) is seg16

    def test_segment_cache_bounded(self):
        csr, _ = self._matrix()
        for d in range(1, 40):
            csr._segments(d)
        assert len(csr._segment_cache) <= CSRMatrix._SEGMENT_CACHE_LIMIT

    def test_empty_matrix(self):
        csr = CSRMatrix.empty((5, 4))
        out = np.ones((5, 3), dtype=np.float32)
        csr.spmm_into(np.ones((4, 3), dtype=np.float32), out, accumulate=False)
        assert (out == 0).all()


# -- TrainingHistory incremental total ---------------------------------------


class TestHistoryIncrementalTime:
    def test_accumulates_incrementally(self):
        h = TrainingHistory()
        assert h.total_simulated_time == 0.0
        h.epoch_times.append(1.5)
        assert h.total_simulated_time == 1.5
        h.epoch_times.append(2.0)
        h.epoch_times.append(0.25)
        assert h.total_simulated_time == 3.75
        # repeated reads don't double count
        assert h.total_simulated_time == 3.75

    def test_matches_plain_sum(self):
        h = TrainingHistory()
        times = np.random.default_rng(11).random(100).tolist()
        for i, t in enumerate(times):
            h.epoch_times.append(t)
            if i % 7 == 0:
                assert h.total_simulated_time == sum(h.epoch_times)
        assert h.total_simulated_time == sum(times)

    def test_truncation_resets(self):
        h = TrainingHistory()
        h.epoch_times.extend([1.0, 2.0, 3.0])
        assert h.total_simulated_time == 6.0
        h.epoch_times = [5.0]
        assert h.total_simulated_time == 5.0


# -- SharedBufferManager view caches ------------------------------------------


class TestBufferViewCaches:
    def test_views_are_cached_and_share_memory(self):
        ctx = _ctx(num_gpus=2)
        mgr = SharedBufferManager(
            ctx.device(0), local_rows=10, layer_dims=(8, 16, 4),
            bc_rows=12, bc_dim=16, overlap=True,
        )
        v = mgr.hw_view(4)
        assert mgr.hw_view(4) is v
        assert mgr.hw_view(16) is not v
        b = mgr.bc_view(0, 6, 8)
        assert mgr.bc_view(0, 6, 8) is b
        assert mgr.bc_view(2, 6, 8) is b  # 2 % len(bc) == 0
        assert mgr.bc_view(1, 6, 8) is not b
        if v.data is not None and mgr.hw.data is not None:
            v.data[0, 0] = 42.0
            assert mgr.hw.data[0, 0] == 42.0

    def test_oversized_views_still_rejected(self):
        from repro.errors import ConfigurationError

        ctx = _ctx(num_gpus=2)
        mgr = SharedBufferManager(
            ctx.device(0), local_rows=10, layer_dims=(8, 16, 4),
            bc_rows=12, bc_dim=16, overlap=False,
        )
        with pytest.raises(ConfigurationError):
            mgr.hw_view(32)
        with pytest.raises(ConfigurationError):
            mgr.bc_view(0, 13, 16)
