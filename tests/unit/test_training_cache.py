"""Unit tests of :mod:`repro.cache`: policy arithmetic, the training
tile cache's admission/eviction/phase machinery, and the shared LRU
core the serving layer now imports from here."""

import numpy as np
import pytest

from repro.cache import (
    REFRESH,
    SERVE,
    CachePolicy,
    EmbeddingCache,
    TrainingTileCache,
    pin_by_degree,
)
from repro.device.engine import SimContext
from repro.errors import ConfigurationError
from repro.hardware import dgx1


def _ctx(P=2):
    return SimContext(dgx1(), num_gpus=P, record_trace=False)


def _src(ctx, rows=10, cols=4, rank=0, seed=0):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(rows, cols)).astype(np.float32)
    return ctx.device(rank).from_numpy(data, name="src", tag="test")


# -- policy -----------------------------------------------------------------


def test_policy_cadence_and_refresh_epochs():
    p0 = CachePolicy(staleness_epochs=0)
    assert p0.cadence == 1
    assert all(p0.is_refresh_epoch(e) for e in range(5))
    p2 = CachePolicy(staleness_epochs=2)
    assert p2.cadence == 3
    assert [p2.is_refresh_epoch(e) for e in range(6)] == [
        True, False, False, True, False, False,
    ]


def test_policy_validation():
    with pytest.raises(ConfigurationError):
        CachePolicy(staleness_epochs=-1)
    with pytest.raises(ConfigurationError):
        CachePolicy(staleness_epochs=0, budget_bytes=-1)


def test_policy_expected_fraction_and_factor():
    p = CachePolicy(staleness_epochs=1, budget_bytes=None)
    assert p.expected_cached_fraction(100, 16, 4) == 1.0
    # amortized over cadence 2: refresh pays full, serve pays 1 - frac.
    assert p.amortized_payload_factor(1.0) == pytest.approx(0.5)
    assert p.amortized_payload_factor(0.0) == pytest.approx(1.0)
    limited = CachePolicy(staleness_epochs=1, budget_bytes=160)
    # 160 B over 2 entries -> 80 B per entry -> 5 rows of 16 B each.
    assert limited.expected_cached_fraction(10, 16, 2) == pytest.approx(0.5)


# -- admission / phases -----------------------------------------------------


def test_admission_is_degree_ranked_and_budget_limited():
    ctx = _ctx()
    src = _src(ctx, rows=10, cols=4)
    row_bytes = 4 * 4
    scores = [np.array([0, 5, 1, 9, 2, 8, 3, 7, 4, 6])]
    cache = TrainingTileCache(
        ctx,
        CachePolicy(staleness_epochs=1, budget_bytes=4 * row_bytes),
        stage_scores=scores,
    )
    cache.begin_epoch()
    entry = cache.stage_entry("fwd0/spmm", 0, src)
    assert entry is not None
    # the four highest-scoring rows, in sorted row order.
    assert entry.cached_rows.tolist() == sorted([3, 5, 7, 9])
    assert entry.miss_rows.tolist() == sorted(
        set(range(10)) - {3, 5, 7, 9}
    )
    assert cache.resident_bytes == 4 * row_bytes
    # a second entry finds no budget left.
    assert cache.stage_entry("fwd1/spmm", 0, src) is None


def test_generation_bumps_invalidate_plan_token():
    ctx = _ctx()
    src = _src(ctx)
    cache = TrainingTileCache(ctx, CachePolicy(staleness_epochs=1))
    cache.begin_epoch()
    t0 = cache.plan_token()
    cache.stage_entry("fwd0/spmm", 0, src)  # admit
    t1 = cache.plan_token()
    assert t1 != t0
    assert cache.stage_entry("fwd0/spmm", 0, src) is not None
    assert cache.plan_token() == t1  # steady state
    assert cache.evict("fwd0/spmm", 0)
    assert cache.plan_token() != t1
    assert not cache.evict("fwd0/spmm", 0)  # already gone
    assert cache.resident_bytes == 0


def test_phase_flip_changes_token_and_serve_requires_fill():
    ctx = _ctx()
    src = _src(ctx)
    cache = TrainingTileCache(ctx, CachePolicy(staleness_epochs=1))
    assert cache.begin_epoch() == REFRESH
    cache.stage_entry("fwd0/spmm", 0, src)
    refresh_token = cache.plan_token()
    assert cache.begin_epoch() == SERVE
    assert cache.plan_token() != refresh_token
    # filled during the refresh epoch -> serveable now.
    assert cache.stage_entry("fwd0/spmm", 0, src) is not None
    # an entry admitted *during* a serve epoch is unfilled: full
    # broadcast until the next refresh epoch marks it filled.
    assert cache.stage_entry("other/spmm", 0, src) is None
    assert cache.begin_epoch() == REFRESH
    assert cache.stage_entry("other/spmm", 0, src) is not None


def test_clear_drops_everything_and_frees_reservations():
    ctx = _ctx()
    src = _src(ctx)
    cache = TrainingTileCache(ctx, CachePolicy(staleness_epochs=0))
    cache.begin_epoch()
    cache.stage_entry("a", 0, src)
    cache.stage_entry("b", 0, src)
    assert len(cache) == 2
    token = cache.plan_token()
    assert cache.clear() == 2
    assert len(cache) == 0
    assert cache.resident_bytes == 0
    assert cache.plan_token() != token
    assert cache.resident_rows("a", 0).size == 0


def test_refresh_copy_is_write_through_and_serve_scatters_stale():
    ctx = _ctx()
    src = _src(ctx, rows=6, cols=3, seed=3)
    dst = ctx.device(1).zeros((6, 3), name="dst", tag="test")
    cache = TrainingTileCache(ctx, CachePolicy(staleness_epochs=1))
    cache.begin_epoch()  # refresh
    entry = cache.stage_entry("fwd0/spmm", 0, src)
    cache.stage_copy(entry, src, (dst,))()
    np.testing.assert_array_equal(dst.data, src.data)
    np.testing.assert_array_equal(entry.values, src.data[entry.cached_rows])
    frozen = src.data.copy()
    src.data += 1.0  # the tile moves on; the replica stays stale
    cache.begin_epoch()  # serve
    entry = cache.stage_entry("fwd0/spmm", 0, src)
    cache.stage_copy(entry, src, (dst,))()
    np.testing.assert_array_equal(
        dst.data[entry.cached_rows], frozen[entry.cached_rows]
    )
    np.testing.assert_array_equal(
        dst.data[entry.miss_rows], src.data[entry.miss_rows]
    )


def test_epoch_counters_track_payloads():
    ctx = _ctx()
    src = _src(ctx, rows=8, cols=2)
    dst = ctx.device(1).zeros((8, 2), name="dst", tag="test")
    row_bytes = 2 * 4
    cache = TrainingTileCache(
        ctx, CachePolicy(staleness_epochs=1, budget_bytes=4 * row_bytes)
    )
    cache.begin_epoch()  # refresh: full payload
    entry = cache.stage_entry("l", 0, src)
    assert cache.payload_nbytes("l", 0, src) == src.nbytes
    cache.stage_copy(entry, src, (dst,))()
    assert cache.epoch.bytes_sent == src.nbytes
    assert cache.epoch.bytes_saved == 0
    cache.begin_epoch()  # serve: only the 4 miss rows travel
    entry = cache.stage_entry("l", 0, src)
    assert cache.payload_nbytes("l", 0, src) == 4 * row_bytes
    cache.stage_copy(entry, src, (dst,))()
    assert cache.epoch.bytes_sent == 4 * row_bytes
    assert cache.epoch.bytes_saved == src.nbytes - 4 * row_bytes
    assert cache.epoch.hit_rate == pytest.approx(0.5)
    assert cache.total.intercepts == 2


# -- shared LRU core --------------------------------------------------------


def test_serve_cache_module_is_a_shim():
    import importlib
    import warnings

    from repro.cache import lru
    import repro.serve.cache as serve_cache

    # the shim warns at import time; reload so the warning fires even if
    # another test imported the module first.
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        serve_cache = importlib.reload(serve_cache)
    assert any(
        issubclass(w.category, DeprecationWarning)
        and "repro.cache.lru" in str(w.message)
        for w in caught
    )

    assert serve_cache.EmbeddingCache is lru.EmbeddingCache
    assert serve_cache.CacheStats is lru.CacheStats
    assert serve_cache.pin_by_degree is lru.pin_by_degree


def test_lru_cache_still_behaves():
    degrees = np.array([5, 1, 9, 3])
    pinned = pin_by_degree(degrees, 2)
    assert pinned == frozenset({0, 2})
    cache = EmbeddingCache(capacity=3, pinned=pinned)
    cache.insert(0, np.array([2]), np.ones((1, 4)), version=1)
    hit_ids, miss_ids, rows = cache.lookup(0, np.array([2, 1]), version=1)
    assert hit_ids.tolist() == [2]
    assert miss_ids.tolist() == [1]
    assert rows.shape == (1, 4)


def test_lru_invalidate_at_is_per_layer():
    cache = EmbeddingCache(capacity=16)
    for layer in (1, 2):
        cache.insert(layer, np.array([0, 1, 2, 3]),
                     np.ones((4, 4)), version=1)
    # drop (1, {1, 3}) only; layer 2 and untouched layer-1 entries stay.
    assert cache.invalidate_at(1, [1, 3, 99]) == 2
    assert cache.resident_vertices(1).tolist() == [0, 2]
    assert cache.resident_vertices(2).tolist() == [0, 1, 2, 3]
    assert cache.stats.invalidations == 2
    # pinned entries are not exempt: staleness beats pinning.
    pinned_cache = EmbeddingCache(capacity=4, pinned=[7])
    pinned_cache.insert(1, np.array([7]), np.ones((1, 4)), version=1)
    assert pinned_cache.invalidate_at(1, [7]) == 1
    assert len(pinned_cache) == 0
