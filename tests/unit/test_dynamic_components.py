"""Unit tests: rebalancer, delta tile invalidation, incremental trainer."""

import numpy as np
import pytest

from repro.core import MGGCNTrainer, TrainerConfig
from repro.datasets import load_dataset
from repro.dynamic import (
    DynamicGraph,
    IncrementalTrainer,
    MutationBatch,
    Rebalancer,
    poisson_mutations,
)
from repro.errors import ConfigurationError
from repro.nn import GCNModelSpec
from repro.sparse.partition import uniform_partition

pytestmark = pytest.mark.dynamic


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("cora", scale=0.25, learnable=True, seed=0)


class TestRebalancer:
    def test_balanced_partition_not_triggered(self, dataset):
        g = DynamicGraph(dataset)
        reb = Rebalancer(parts=4, threshold=1.5)
        part = reb.check(g.a_hat_t, uniform_partition(g.n, 4)).partition
        res = reb.check(g.a_hat_t, part)
        assert not res.triggered
        assert res.moves == 0
        assert res.partition is part

    def test_drift_triggers_and_reports_moved_rows(self, dataset):
        g = DynamicGraph(dataset)
        # skewed boundary: rank 0 owns almost everything.
        from repro.sparse.partition import PartitionVector
        skewed = PartitionVector((0, g.n - 3, g.n - 2, g.n - 1, g.n))
        reb = Rebalancer(parts=4, threshold=1.25)
        res = reb.check(g.a_hat_t, skewed)
        assert res.triggered
        assert res.imbalance_after < res.imbalance_before
        assert res.moves > 0
        # moved_rows is exactly the owner-diff set
        rows = np.arange(g.n)
        diff = rows[skewed.owners(rows) != res.partition.owners(rows)]
        assert np.array_equal(res.moved_rows, diff)
        assert reb.rebalances == 1
        assert reb.total_moves == res.moves

    def test_growth_forces_recut(self, dataset):
        g = DynamicGraph(dataset)
        old_part = uniform_partition(g.n, 2)
        d = g.features.shape[1]
        g.apply_and_commit(MutationBatch(
            batch_id=0, arrival=0.0,
            insert_edges=np.array([[g.n, 0]], dtype=np.int64),
            add_features=np.zeros((1, d), dtype=np.float32),
            add_labels=np.zeros(1, dtype=np.int64),
        ))
        res = Rebalancer(parts=2).check(g.a_hat_t, old_part)
        assert res.triggered
        assert res.partition.total == g.n

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Rebalancer(parts=0)
        with pytest.raises(ConfigurationError):
            Rebalancer(parts=2, threshold=0.5)
        with pytest.raises(ConfigurationError):
            Rebalancer(parts=2, capacities=[1.0])


class TestTileCacheDeltaInvalidation:
    def test_live_trainer_cache_evicts_only_touched_stages(self, dataset):
        trainer = MGGCNTrainer(
            dataset, GCNModelSpec.build(dataset.d0, 8, dataset.num_classes, 2),
            num_gpus=2,
            config=TrainerConfig(seed=0, cache_staleness_epochs=1,
                                 permute=False),
        )
        cache = trainer.training_cache
        assert cache is not None
        trainer.train_epoch()  # refresh epoch: admits + fills entries
        assert len(cache) > 0
        part = trainer.graph.part
        resident_before = len(cache)
        keys_before = set(cache._entries)
        gen_before = cache.generation

        # touch a row cached by a stage-0 entry only.
        stage0_rows = None
        for (label, stage) in list(cache._entries):
            if stage == 0:
                local = cache._entries[(label, stage)].cached_rows
                stage0_rows = local + part.boundaries[0]
                break
        assert stage0_rows is not None
        evicted, before = cache.invalidate_rows(part, stage0_rows[:1])
        assert before == resident_before
        assert 0 < evicted < resident_before
        # only stage-0 entries can hold a stage-0-owned row
        gone = keys_before - set(cache._entries)
        assert len(gone) == evicted
        assert all(stage == 0 for _, stage in gone)
        # generation bumped so captured plans recapture instead of replay
        assert cache.generation > gen_before

    def test_untouched_rows_evict_nothing(self, dataset):
        trainer = MGGCNTrainer(
            dataset, GCNModelSpec.build(dataset.d0, 8, dataset.num_classes, 2),
            num_gpus=2,
            config=TrainerConfig(seed=0, cache_staleness_epochs=1,
                                 permute=False),
        )
        cache = trainer.training_cache
        trainer.train_epoch()
        part = trainer.graph.part
        all_cached = set()
        for (label, stage), entry in cache._entries.items():
            all_cached.update(
                (entry.cached_rows + part.boundaries[stage]).tolist()
            )
        untouched = [r for r in range(dataset.n) if r not in all_cached][:3]
        if untouched:
            evicted, _ = cache.invalidate_rows(
                part, np.asarray(untouched, dtype=np.int64)
            )
            assert evicted == 0


class TestIncrementalTrainer:
    def test_refresh_restores_weights_across_generations(self, dataset):
        spec = GCNModelSpec.build(dataset.d0, 8, dataset.num_classes, 2)
        g = DynamicGraph(dataset)
        inc = IncrementalTrainer(g, spec, num_gpus=2,
                                 config=TrainerConfig(seed=1))
        for _ in range(2):
            inc.trainer.train_epoch()
        w_before = [w.copy() for w in inc.trainer.get_weights()]
        epochs_before = inc.trainer.epochs_trained
        for b in poisson_mutations(dataset, 1, rate=5.0, edges_per_batch=4,
                                   seed=3):
            g.apply_and_commit(b)
        assert inc.stale
        inc.refresh()
        assert not inc.stale
        assert inc.refreshes == 1
        for a, b in zip(w_before, inc.trainer.get_weights()):
            assert np.array_equal(a, b)
        assert inc.trainer.epochs_trained == epochs_before
        # the refreshed trainer really trains on the new graph
        inc.trainer.train_epoch()

    def test_refresh_is_noop_when_current(self, dataset):
        spec = GCNModelSpec.build(dataset.d0, 8, dataset.num_classes, 2)
        g = DynamicGraph(dataset)
        inc = IncrementalTrainer(g, spec, num_gpus=2)
        t = inc.trainer
        assert inc.refresh() is t
        assert inc.refreshes == 0

    def test_warm_start_beats_limited_scratch_budget(self, dataset):
        spec = GCNModelSpec.build(dataset.d0, 16, dataset.num_classes, 2)
        g = DynamicGraph(dataset)
        inc = IncrementalTrainer(g, spec, num_gpus=2,
                                 config=TrainerConfig(seed=1, lr=1e-3))
        for _ in range(30):
            inc.trainer.train_epoch()
        for b in poisson_mutations(dataset, 1, rate=5.0, edges_per_batch=6,
                                   seed=7):
            g.apply_and_commit(b)
        report = inc.compare_to_scratch(scratch_epochs=12)
        assert report.warm_reached_target
        assert report.warm_epochs < report.scratch_epochs
        assert report.epochs_saved > 0
