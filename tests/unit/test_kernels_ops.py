"""Timed kernels: functional math + cost submission + shape errors."""

import numpy as np
import pytest

from repro.device import Engine, Mode, VirtualGPU
from repro.errors import ShapeError
from repro.hardware.machines import V100
from repro.kernels import CostModel
from repro.kernels.ops import (
    adam_step_op,
    add_,
    gemm,
    gemm_relu_backward,
    memset,
    relu_backward,
    relu_forward,
    scale,
    softmax_cross_entropy,
    spmm,
)
from repro.sparse import CSRMatrix
from repro.sparse.symbolic import SymbolicCSR


@pytest.fixture()
def env():
    engine = Engine()
    dev = VirtualGPU(V100, rank=0)
    cost = CostModel(V100)
    return engine, dev, cost


@pytest.fixture()
def sym_env():
    engine = Engine()
    dev = VirtualGPU(V100, rank=0, mode=Mode.SYMBOLIC)
    cost = CostModel(V100)
    return engine, dev, cost


class TestGemm:
    def test_basic(self, env, rng):
        engine, dev, cost = env
        a = dev.from_numpy(rng.random((5, 4)).astype(np.float32))
        b = dev.from_numpy(rng.random((4, 3)).astype(np.float32))
        out = dev.empty((5, 3))
        ev = gemm(engine, cost, dev.compute_stream, a, b, out)
        assert ev.time > 0
        assert np.allclose(out.data, a.data @ b.data, atol=1e-5)

    def test_transposes(self, env, rng):
        engine, dev, cost = env
        a = dev.from_numpy(rng.random((4, 5)).astype(np.float32))
        b = dev.from_numpy(rng.random((3, 4)).astype(np.float32))
        out = dev.empty((5, 3))
        gemm(engine, cost, dev.compute_stream, a, b, out,
             transpose_a=True, transpose_b=True)
        assert np.allclose(out.data, a.data.T @ b.data.T, atol=1e-5)

    def test_accumulate(self, env, rng):
        engine, dev, cost = env
        a = dev.from_numpy(rng.random((3, 3)).astype(np.float32))
        b = dev.from_numpy(rng.random((3, 3)).astype(np.float32))
        out = dev.from_numpy(np.ones((3, 3), dtype=np.float32))
        gemm(engine, cost, dev.compute_stream, a, b, out, accumulate=True)
        assert np.allclose(out.data, 1.0 + a.data @ b.data, atol=1e-5)

    def test_shape_mismatch(self, env):
        engine, dev, cost = env
        a, b = dev.empty((3, 4)), dev.empty((5, 2))
        out = dev.empty((3, 2))
        with pytest.raises(ShapeError):
            gemm(engine, cost, dev.compute_stream, a, b, out)

    def test_out_shape_mismatch(self, env):
        engine, dev, cost = env
        a, b = dev.empty((3, 4)), dev.empty((4, 2))
        out = dev.empty((3, 3))
        with pytest.raises(ShapeError):
            gemm(engine, cost, dev.compute_stream, a, b, out)

    def test_symbolic_costs_without_data(self, sym_env):
        engine, dev, cost = sym_env
        a, b, out = dev.empty((3, 4)), dev.empty((4, 2)), dev.empty((3, 2))
        ev = gemm(engine, cost, dev.compute_stream, a, b, out)
        assert ev.time > 0
        assert len(engine.trace) == 1


class TestGemmReluBackward:
    def test_fused_mask(self, env, rng):
        engine, dev, cost = env
        hwg = dev.from_numpy(rng.standard_normal((6, 4)).astype(np.float32))
        w = dev.from_numpy(rng.standard_normal((5, 4)).astype(np.float32))
        stored = rng.standard_normal((6, 5)).astype(np.float32)
        out = dev.from_numpy(stored.copy())
        gemm_relu_backward(engine, cost, dev.compute_stream, hwg, w, out)
        expected = (hwg.data @ w.data.T) * (stored > 0)
        assert np.allclose(out.data, expected, atol=1e-5)

    def test_shape_checks(self, env):
        engine, dev, cost = env
        with pytest.raises(ShapeError):
            gemm_relu_backward(
                engine, cost, dev.compute_stream,
                dev.empty((6, 4)), dev.empty((5, 3)), dev.empty((6, 5)),
            )


class TestSpmm:
    def test_functional(self, env, rng):
        engine, dev, cost = env
        dense_a = (rng.random((6, 8)) < 0.4).astype(np.float32)
        tile = CSRMatrix.from_dense(dense_a)
        x = dev.from_numpy(rng.random((8, 3)).astype(np.float32))
        out = dev.zeros((6, 3))
        ev = spmm(engine, cost, dev.compute_stream, tile, x, out, stage=2)
        assert np.allclose(out.data, dense_a @ x.data, atol=1e-5)
        assert engine.trace[-1].stage == 2

    def test_accumulate_flag(self, env, rng):
        engine, dev, cost = env
        dense_a = np.eye(4, dtype=np.float32)
        tile = CSRMatrix.from_dense(dense_a)
        x = dev.from_numpy(np.ones((4, 2), dtype=np.float32))
        out = dev.from_numpy(np.ones((4, 2), dtype=np.float32))
        spmm(engine, cost, dev.compute_stream, tile, x, out, accumulate=False)
        assert np.allclose(out.data, 1.0)
        spmm(engine, cost, dev.compute_stream, tile, x, out, accumulate=True)
        assert np.allclose(out.data, 2.0)

    def test_symbolic_tile(self, env):
        engine, dev, cost = env
        tile = SymbolicCSR((6, 8), nnz=12)
        x, out = dev.empty((8, 3)), dev.empty((6, 3))
        ev = spmm(engine, cost, dev.compute_stream, tile, x, out)
        assert ev.time > 0

    def test_shape_error(self, env):
        engine, dev, cost = env
        tile = SymbolicCSR((6, 8), nnz=12)
        with pytest.raises(ShapeError):
            spmm(engine, cost, dev.compute_stream, tile, dev.empty((5, 3)),
                 dev.empty((6, 3)))


class TestElementwise:
    def test_relu_forward_inplace(self, env):
        engine, dev, cost = env
        t = dev.from_numpy(np.array([[-1.0, 2.0], [0.5, -3.0]], dtype=np.float32))
        relu_forward(engine, cost, dev.compute_stream, t)
        assert np.allclose(t.data, [[0, 2], [0.5, 0]])

    def test_relu_backward_mask(self, env):
        engine, dev, cost = env
        grad = dev.from_numpy(np.ones((2, 2), dtype=np.float32))
        act = dev.from_numpy(np.array([[0.0, 1.0], [2.0, 0.0]], dtype=np.float32))
        relu_backward(engine, cost, dev.compute_stream, grad, act)
        assert np.allclose(grad.data, [[0, 1], [1, 0]])

    def test_relu_backward_shape(self, env):
        engine, dev, cost = env
        with pytest.raises(ShapeError):
            relu_backward(engine, cost, dev.compute_stream,
                          dev.empty((2, 2)), dev.empty((3, 2)))

    def test_memset(self, env):
        engine, dev, cost = env
        t = dev.from_numpy(np.ones((3, 3), dtype=np.float32))
        memset(engine, cost, dev.compute_stream, t)
        assert np.all(t.data == 0)

    def test_scale_and_add(self, env):
        engine, dev, cost = env
        a = dev.from_numpy(np.full((2, 2), 2.0, dtype=np.float32))
        b = dev.from_numpy(np.full((2, 2), 3.0, dtype=np.float32))
        scale(engine, cost, dev.compute_stream, a, 0.5)
        assert np.all(a.data == 1.0)
        add_(engine, cost, dev.compute_stream, a, b)
        assert np.all(a.data == 4.0)
        with pytest.raises(ShapeError):
            add_(engine, cost, dev.compute_stream, a, dev.empty((3, 3)))


class TestLoss:
    def test_matches_manual_computation(self, env, rng):
        engine, dev, cost = env
        logits_host = rng.standard_normal((6, 4)).astype(np.float32)
        labels = rng.integers(0, 4, size=6)
        mask = np.array([True, True, False, True, False, False])
        logits = dev.from_numpy(logits_host)
        grad = dev.empty((6, 4))
        total_train = int(mask.sum())
        loss, _ = softmax_cross_entropy(
            engine, cost, dev.compute_stream, logits, labels, mask, grad,
            total_train=total_train,
        )
        # manual
        rows = np.nonzero(mask)[0]
        z = logits_host[rows]
        z = z - z.max(axis=1, keepdims=True)
        logp = z - np.log(np.exp(z).sum(axis=1, keepdims=True))
        expected = -logp[np.arange(rows.size), labels[rows]].sum()
        assert loss == pytest.approx(expected, rel=1e-5)
        assert np.allclose(grad.data[~mask], 0.0)
        # gradient rows sum to zero (softmax minus one-hot)
        assert np.allclose(grad.data[mask].sum(axis=1), 0.0, atol=1e-6)

    def test_alias_safe(self, env, rng):
        """grad_out may be the logits tensor itself (buffer reuse)."""
        engine, dev, cost = env
        logits_host = rng.standard_normal((5, 3)).astype(np.float32)
        labels = rng.integers(0, 3, size=5)
        mask = np.ones(5, dtype=bool)
        separate_logits = dev.from_numpy(logits_host)
        separate_grad = dev.empty((5, 3))
        loss_a, _ = softmax_cross_entropy(
            engine, cost, dev.compute_stream, separate_logits, labels, mask,
            separate_grad, total_train=5,
        )
        aliased = dev.from_numpy(logits_host)
        loss_b, _ = softmax_cross_entropy(
            engine, cost, dev.compute_stream, aliased, labels, mask,
            aliased, total_train=5,
        )
        assert loss_b == pytest.approx(loss_a)
        assert np.allclose(aliased.data, separate_grad.data, atol=1e-7)

    def test_total_train_validation(self, env):
        engine, dev, cost = env
        t = dev.empty((2, 2))
        with pytest.raises(ValueError):
            softmax_cross_entropy(
                engine, cost, dev.compute_stream, t, None, None, t, total_train=0
            )


class TestAdam:
    def test_matches_optimizer_class(self, env, rng):
        from repro.nn import AdamOptimizer

        engine, dev, cost = env
        w0 = rng.standard_normal((4, 3)).astype(np.float32)
        g = rng.standard_normal((4, 3)).astype(np.float32)

        ref_w = w0.copy()
        opt = AdamOptimizer([ref_w], lr=0.01)
        opt.step([g])

        w = w0.copy()
        m = np.zeros_like(w)
        v = np.zeros_like(w)
        adam_step_op(
            engine, cost, dev.compute_stream, w, g, m, v,
            t=1, lr=0.01, beta1=0.9, beta2=0.999, eps=1e-8,
        )
        assert np.allclose(w, ref_w, atol=1e-6)

    def test_replica_cost_only(self, env, rng):
        engine, dev, cost = env
        g = rng.standard_normal((4, 3)).astype(np.float32)
        ev = adam_step_op(
            engine, cost, dev.compute_stream, None, g, None, None,
            t=1, lr=0.01, beta1=0.9, beta2=0.999, eps=1e-8,
        )
        assert ev.time > 0
