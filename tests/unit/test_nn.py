"""NN substrate: init, model spec, Adam, buffer managers, reference GCN."""

import numpy as np
import pytest

from repro.device import Mode, VirtualGPU
from repro.errors import ConfigurationError
from repro.hardware.machines import V100
from repro.nn import (
    AdamOptimizer,
    BufferPlan,
    EagerBufferManager,
    GCNModelSpec,
    ReferenceGCN,
    SharedBufferManager,
    glorot_uniform,
    init_weights,
)


class TestInit:
    def test_glorot_bounds(self):
        w = glorot_uniform(100, 50, seed=0)
        limit = np.sqrt(6.0 / 150)
        assert w.shape == (100, 50)
        assert w.dtype == np.float32
        assert np.abs(w).max() <= limit

    def test_glorot_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            glorot_uniform(0, 5)

    def test_init_weights_shapes(self):
        ws = init_weights([10, 7, 3], seed=1)
        assert [w.shape for w in ws] == [(10, 7), (7, 3)]

    def test_init_weights_deterministic(self):
        a = init_weights([5, 4, 2], seed=2)
        b = init_weights([5, 4, 2], seed=2)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_init_weights_needs_two_dims(self):
        with pytest.raises(ValueError):
            init_weights([5])


class TestModelSpec:
    def test_build(self):
        m = GCNModelSpec.build(128, 512, 40, 3)
        assert m.layer_dims == (128, 512, 512, 40)
        assert m.num_layers == 3
        assert m.max_dim == 512
        assert m.num_parameters == 128 * 512 + 512 * 512 + 512 * 40

    def test_paper_models(self):
        m1 = GCNModelSpec.paper_model(1, 602, 41)
        assert m1.layer_dims == (602, 512, 41)
        m2 = GCNModelSpec.paper_model(2, 602, 41)
        assert m2.layer_dims == (602, 16, 41)
        m3 = GCNModelSpec.paper_model(3, 128, 172)
        assert m3.layer_dims == (128, 256, 256, 172)
        m4 = GCNModelSpec.paper_model(4, 128, 172)
        assert m4.layer_dims == (128, 208, 208, 172)

    def test_paper_model_range(self):
        with pytest.raises(ConfigurationError):
            GCNModelSpec.paper_model(5, 10, 2)

    def test_dims_of(self):
        m = GCNModelSpec.build(8, 4, 2, 2)
        assert m.dims_of(0) == (8, 4)
        assert m.dims_of(1) == (4, 2)
        with pytest.raises(ConfigurationError):
            m.dims_of(2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GCNModelSpec((10,))
        with pytest.raises(ConfigurationError):
            GCNModelSpec((10, 0))
        with pytest.raises(ConfigurationError):
            GCNModelSpec.build(8, 4, 2, 0)


class TestAdam:
    def test_descends_quadratic(self):
        w = np.array([[5.0]], dtype=np.float32)
        opt = AdamOptimizer([w], lr=0.1)
        for _ in range(200):
            opt.step([2 * w])  # gradient of w^2
        assert abs(w[0, 0]) < 0.1

    def test_bias_correction_first_step(self):
        w = np.zeros((1, 1), dtype=np.float32)
        opt = AdamOptimizer([w], lr=0.5)
        opt.step([np.ones((1, 1), dtype=np.float32)])
        # first Adam step moves by ~lr regardless of gradient magnitude
        assert w[0, 0] == pytest.approx(-0.5, rel=1e-3)

    def test_state_bytes(self):
        w = np.zeros((4, 4), dtype=np.float32)
        opt = AdamOptimizer([w])
        assert opt.num_state_bytes == 2 * 64

    def test_validation(self):
        w = np.zeros((2, 2), dtype=np.float32)
        with pytest.raises(ConfigurationError):
            AdamOptimizer([w], lr=0)
        with pytest.raises(ConfigurationError):
            AdamOptimizer([w], beta1=1.0)
        with pytest.raises(ConfigurationError):
            AdamOptimizer([w], eps=0)
        opt = AdamOptimizer([w])
        with pytest.raises(ConfigurationError):
            opt.step([])
        with pytest.raises(ConfigurationError):
            opt.step([np.zeros((3, 3), dtype=np.float32)])


class TestBufferPlan:
    def test_shared_count_is_l_plus_3(self):
        plan = BufferPlan(layer_dims=(602, 512, 41), rows=1000, bc_rows=1000)
        assert plan.num_buffers == 2 + 1 + 2  # L outputs + HW + BC1/BC2

    def test_shared_no_overlap_is_l_plus_2(self):
        plan = BufferPlan(
            layer_dims=(602, 512, 41), rows=1000, bc_rows=1000, overlap=False
        )
        assert plan.num_buffers == 2 + 1 + 1

    def test_single_gpu_no_bc(self):
        plan = BufferPlan(layer_dims=(602, 512, 41), rows=1000, bc_rows=0)
        assert plan.num_buffers == 3

    def test_eager_scales_with_layers(self):
        p2 = BufferPlan(layer_dims=(602, 512, 41), rows=1000, scheme="eager")
        p4 = BufferPlan(
            layer_dims=(602, 512, 512, 512, 41), rows=1000, scheme="eager"
        )
        assert p4.num_buffers == 2 * p2.num_buffers

    def test_shared_cheaper_than_eager(self):
        dims = tuple([602] + [512] * 9 + [41])
        shared = BufferPlan(layer_dims=dims, rows=30_000, bc_rows=30_000)
        eager = BufferPlan(layer_dims=dims, rows=30_000, scheme="eager")
        assert shared.total_bytes < eager.total_bytes

    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            BufferPlan(layer_dims=(4, 2), rows=10, scheme="magic")


@pytest.fixture()
def dev():
    return VirtualGPU(V100, rank=0)


class TestSharedBufferManager:
    def test_allocation_count(self, dev):
        mgr = SharedBufferManager(
            dev, local_rows=100, layer_dims=(602, 512, 41),
            bc_rows=100, bc_dim=512,
        )
        assert mgr.num_buffers == 5  # 2 + HW + BC1 + BC2
        assert len(mgr.bc) == 2

    def test_no_overlap_single_bc(self, dev):
        mgr = SharedBufferManager(
            dev, local_rows=100, layer_dims=(602, 512, 41),
            bc_rows=100, bc_dim=512, overlap=False,
        )
        assert len(mgr.bc) == 1

    def test_layer_output_shapes(self, dev):
        mgr = SharedBufferManager(dev, 100, (602, 512, 41), 100, 512)
        assert mgr.layer_output(0).shape == (100, 512)
        assert mgr.layer_output(1).shape == (100, 41)

    def test_hw_view_windows(self, dev):
        mgr = SharedBufferManager(dev, 100, (602, 512, 41), 100, 512)
        v = mgr.hw_view(41)
        assert v.shape == (100, 41)
        with pytest.raises(ConfigurationError):
            mgr.hw_view(1024)

    def test_hw_never_wider_than_hidden(self, dev):
        """The §4.4 order policy guarantees HW holds at most
        max(layer_dims[1:]) columns, so d0 (3700 for Cora) is excluded."""
        mgr = SharedBufferManager(dev, 100, (3700, 512, 6), 100, 512)
        assert mgr.hw.cols == 512

    def test_bc_view_cycles_buffers(self, dev):
        mgr = SharedBufferManager(dev, 100, (602, 512, 41), 120, 512)
        v0 = mgr.bc_view(0, 50, 512)
        v1 = mgr.bc_view(1, 50, 512)
        v2 = mgr.bc_view(2, 50, 512)
        assert v0.data.base is mgr.bc[0].data
        assert v1.data.base is mgr.bc[1].data
        assert v2.data.base is mgr.bc[0].data  # wraps around

    def test_bc_view_bounds(self, dev):
        mgr = SharedBufferManager(dev, 100, (602, 512, 41), 100, 512)
        with pytest.raises(ConfigurationError):
            mgr.bc_view(0, 101, 512)
        single = SharedBufferManager(dev, 100, (602, 512, 41), 0, 0)
        with pytest.raises(ConfigurationError):
            single.bc_view(0, 10, 10)

    def test_free_releases_memory(self, dev):
        before = dev.memory_in_use
        mgr = SharedBufferManager(dev, 100, (602, 512, 41), 100, 512)
        assert dev.memory_in_use > before
        mgr.free()
        assert dev.memory_in_use == before


class TestEagerBufferManager:
    def test_counts(self, dev):
        mgr = EagerBufferManager(dev, 100, (602, 512, 41), buffers_per_layer=3)
        assert mgr.num_buffers == 6

    def test_with_bc(self, dev):
        mgr = EagerBufferManager(
            dev, 100, (602, 512, 41), buffers_per_layer=3, bc_rows=50, bc_dim=602
        )
        assert mgr.num_buffers == 7
        assert mgr.bc.shape == (50, 602)

    def test_validation(self, dev):
        with pytest.raises(ConfigurationError):
            EagerBufferManager(dev, 100, (602, 512, 41), buffers_per_layer=0)

    def test_free(self, dev):
        before = dev.memory_in_use
        mgr = EagerBufferManager(dev, 100, (602, 512, 41))
        mgr.free()
        assert dev.memory_in_use == before


class TestReferenceGCN:
    def test_loss_decreases(self, small_dataset, small_model):
        ref = ReferenceGCN(small_dataset, small_model, seed=0)
        losses = ref.fit(15)
        assert losses[-1] < losses[0]

    def test_accuracy_beats_chance(self, small_dataset, small_model):
        ref = ReferenceGCN(small_dataset, small_model, seed=0)
        ref.fit(30)
        chance = 1.0 / small_dataset.num_classes
        assert ref.accuracy() > 2 * chance

    def test_gradcheck_numerical(self, tiny_dataset, tiny_model):
        ref = ReferenceGCN(tiny_dataset, tiny_model, seed=1)
        outputs = ref.forward()
        loss, grad_logits = ref.loss_and_grad(outputs[-1])
        grads = ref.backward(outputs, grad_logits)
        eps = 1e-3
        for layer in range(tiny_model.num_layers):
            w = ref.weights[layer]
            i, j = 1, 2
            w[i, j] += eps
            loss_plus = ref.loss_and_grad(ref.forward()[-1])[0]
            w[i, j] -= 2 * eps
            loss_minus = ref.loss_and_grad(ref.forward()[-1])[0]
            w[i, j] += eps
            numeric = (loss_plus - loss_minus) / (2 * eps)
            assert grads[layer][i, j] == pytest.approx(
                numeric, rel=0.05, abs=1e-4
            ), f"layer {layer}"

    def test_first_layer_skip_changes_layer0_grad_only(
        self, tiny_dataset, tiny_model
    ):
        exact = ReferenceGCN(tiny_dataset, tiny_model, seed=2, first_layer_skip=False)
        skip = ReferenceGCN(tiny_dataset, tiny_model, seed=2, first_layer_skip=True)
        out_a = exact.forward()
        out_b = skip.forward()
        _, g_a = exact.loss_and_grad(out_a[-1])
        _, g_b = skip.loss_and_grad(out_b[-1])
        grads_a = exact.backward(out_a, g_a)
        grads_b = skip.backward(out_b, g_b)
        assert np.allclose(grads_a[1], grads_b[1], atol=1e-6)
        assert not np.allclose(grads_a[0], grads_b[0], atol=1e-6)

    def test_skip_variant_still_learns(self, small_dataset, small_model):
        ref = ReferenceGCN(small_dataset, small_model, seed=3, first_layer_skip=True)
        losses = ref.fit(20)
        assert losses[-1] < 0.7 * losses[0]

    def test_model_dataset_mismatch(self, small_dataset):
        bad = GCNModelSpec.build(10, 8, small_dataset.num_classes, 2)
        with pytest.raises(ConfigurationError):
            ReferenceGCN(small_dataset, bad)
        bad2 = GCNModelSpec.build(small_dataset.d0, 8, 99, 2)
        with pytest.raises(ConfigurationError):
            ReferenceGCN(small_dataset, bad2)

    def test_predict_shape(self, small_dataset, small_model):
        ref = ReferenceGCN(small_dataset, small_model)
        assert ref.predict().shape == (small_dataset.n,)
