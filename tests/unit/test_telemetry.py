"""Unit tests for repro.telemetry: registry, spans, hub, exporters, gate."""

import json

import pytest

from repro.device.engine import TraceEvent
from repro.errors import ConfigurationError
from repro.telemetry import (
    DEFAULT_RTOL,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Span,
    Telemetry,
    Tracer,
    diff_metrics,
    flatten_numeric,
    load_metrics,
    merged_chrome_trace,
    nearest_rank,
    render_summary,
    spans_to_chrome_events,
    to_jsonl,
    to_prometheus,
    write_snapshot,
)
from repro.telemetry.derived import sample_epoch
from repro.telemetry.export import SPAN_PID


# -- nearest-rank percentiles -------------------------------------------------


class TestNearestRank:
    def test_known_order_statistics(self):
        values = [float(v) for v in range(1, 11)]  # 1..10
        assert nearest_rank(values, 50) == 5.0
        assert nearest_rank(values, 95) == 10.0
        assert nearest_rank(values, 99) == 10.0
        assert nearest_rank(values, 100) == 10.0
        assert nearest_rank(values, 10) == 1.0

    def test_single_value(self):
        assert nearest_rank([7.0], 1) == 7.0
        assert nearest_rank([7.0], 99) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            nearest_rank([], 50)

    @pytest.mark.parametrize("q", [0.0, -1.0, 100.5])
    def test_out_of_range_q_raises(self, q):
        with pytest.raises(ConfigurationError):
            nearest_rank([1.0], q)


# -- instruments --------------------------------------------------------------


class TestInstruments:
    def test_counter_monotone(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ConfigurationError):
            c.inc(-1.0)

    def test_gauge_set_and_inc(self):
        g = Gauge()
        g.set(4.0)
        g.inc(-1.5)
        assert g.value == 2.5

    def test_histogram_stats(self):
        h = Histogram()
        for v in (3.0, 1.0, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 6.0
        assert h.mean == 2.0
        assert h.max == 3.0
        assert h.percentile(50) == 2.0
        # cached sort invalidated by a new observation
        h.observe(0.5)
        assert h.percentile(50) == 1.0
        assert h.values() == [3.0, 1.0, 2.0, 0.5]

    def test_empty_histogram(self):
        h = Histogram()
        assert h.count == 0
        assert h.mean == 0.0
        assert h.max == 0.0
        with pytest.raises(ConfigurationError):
            h.percentile(50)


# -- registry -----------------------------------------------------------------


class TestMetricsRegistry:
    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")

    def test_labels_make_distinct_series(self):
        reg = MetricsRegistry()
        a = reg.counter("ops_total", category="gemm")
        b = reg.counter("ops_total", category="spmm")
        assert a is not b
        # label order must not matter
        c = reg.counter("ops_total", category="gemm", device="gpu0")
        d = reg.counter("ops_total", device="gpu0", category="gemm")
        assert c is d

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError):
            reg.gauge("x")

    def test_contains_and_clear(self):
        reg = MetricsRegistry()
        reg.gauge("loss")
        assert "loss" in reg
        reg.clear()
        assert "loss" not in reg

    def test_flatten_expands_histograms(self):
        reg = MetricsRegistry()
        reg.counter("n_total").inc(3)
        hist = reg.histogram("lat_seconds", device="gpu0")
        for v in (0.1, 0.2, 0.3):
            hist.observe(v)
        flat = reg.flatten()
        assert flat["n_total"] == 3.0
        assert flat['lat_seconds_count{device="gpu0"}'] == 3.0
        assert flat['lat_seconds_sum{device="gpu0"}'] == pytest.approx(0.6)
        assert flat['lat_seconds_p50{device="gpu0"}'] == 0.2
        assert flat['lat_seconds_p99{device="gpu0"}'] == 0.3
        assert flat['lat_seconds_max{device="gpu0"}'] == 0.3

    def test_flatten_empty_histogram_has_count_only(self):
        reg = MetricsRegistry()
        reg.histogram("empty_seconds")
        flat = reg.flatten()
        assert flat["empty_seconds_count"] == 0.0
        assert "empty_seconds_p50" not in flat


# -- tracer -------------------------------------------------------------------


class TestTracer:
    def test_nesting_and_correlation_inheritance(self):
        tr = Tracer()
        outer = tr.begin("epoch-1", 0.0, correlation="epoch-1", category="training")
        inner = tr.begin("spmm", 0.1)
        assert inner.parent_id == outer.span_id
        assert inner.correlation == "epoch-1"
        tr.end(inner, 0.2)
        tr.end(outer, 0.3)
        assert tr.depth == 0
        assert tr.children_of(outer) == [inner]
        assert tr.by_correlation("epoch-1") == [outer, inner]

    def test_end_closes_dangling_children(self):
        tr = Tracer()
        outer = tr.begin("outer", 0.0)
        child = tr.begin("child", 0.1)
        tr.end(outer, 0.5)  # child never explicitly ended
        assert child.closed and child.end == 0.5
        assert tr.depth == 0

    def test_end_clamps_to_start(self):
        tr = Tracer()
        s = tr.begin("s", 1.0)
        tr.end(s, 0.5)
        assert s.end == 1.0
        assert s.duration == 0.0

    def test_record_leaf_under_current(self):
        tr = Tracer()
        outer = tr.begin("outer", 0.0, correlation="c1")
        leaf = tr.record("op", 0.1, 0.2, category="gemm", device="gpu0")
        assert leaf.parent_id == outer.span_id
        assert leaf.correlation == "c1"
        assert leaf.closed
        assert tr.depth == 1  # record never pushes onto the stack

    def test_context_manager(self):
        tr = Tracer()
        clock = iter([0.0, 1.0])
        with tr.span("w", lambda: next(clock)) as s:
            pass
        assert s.start == 0.0 and s.end == 1.0

    def test_clear_resets_ids(self):
        tr = Tracer()
        tr.begin("a", 0.0)
        tr.clear()
        assert tr.begin("b", 0.0).span_id == 1


# -- telemetry hub ------------------------------------------------------------


def _event(name="gemm0", category="gemm", device="gpu0", start=0.0, end=1.0,
           nbytes=0, flops=0.0, correlation=None):
    return TraceEvent(device, "compute", name, category, start, end,
                      None, nbytes, correlation, flops)


class TestTelemetryHub:
    def test_on_op_accumulates(self):
        t = Telemetry()
        t.on_op(_event(start=0.0, end=1.5, flops=100.0))
        t.on_op(_event(start=2.0, end=3.0, flops=50.0))
        t.on_op(_event(category="comm", device="gpu1", nbytes=4096))
        flat = t.registry.flatten()
        assert flat['repro_ops_total{category="gemm",device="gpu0"}'] == 2.0
        assert flat['repro_op_seconds_total{category="gemm",device="gpu0"}'] == 2.5
        assert flat["repro_flops_total"] == 150.0
        assert flat["repro_comm_bytes_total"] == 4096.0

    def test_trace_ops_records_only_under_open_span(self):
        t = Telemetry(trace_ops=True)
        t.on_op(_event())  # no open span: not recorded
        assert t.tracer.spans == []
        root = t.tracer.begin("epoch-1", 0.0, correlation="epoch-1")
        t.on_op(_event(correlation="epoch-1"))
        t.tracer.end(root, 5.0)
        leaves = t.tracer.children_of(root)
        assert [s.name for s in leaves] == ["gemm0"]
        assert leaves[0].correlation == "epoch-1"

    def test_trace_ops_off_by_default(self):
        t = Telemetry()
        root = t.tracer.begin("epoch-1", 0.0)
        t.on_op(_event())
        t.tracer.end(root, 5.0)
        assert t.tracer.children_of(root) == []

    def test_on_replay_aggregates(self):
        t = Telemetry()
        span = t.on_replay(
            start=0.0, end=2.0,
            category_totals={"gemm": 1.5, "comm": 0.5},
            category_counts={"gemm": 10, "comm": 4},
            comm_nbytes=1 << 20,
            num_gpus=4,
            correlation="epoch-2",
        )
        flat = t.registry.flatten()
        assert flat['repro_ops_total{category="gemm",device="all"}'] == 10.0
        assert flat['repro_op_seconds_total{category="comm",device="all"}'] == 0.5
        assert flat["repro_comm_bytes_total"] == float(1 << 20)
        assert flat["repro_plan_replays_total"] == 1.0
        assert span.name == "plan.replay"
        assert span.correlation == "epoch-2"

    def test_pass_throughs(self):
        t = Telemetry()
        t.inc("c_total", 2.0)
        t.set_gauge("g", 7.0)
        t.observe("h_seconds", 0.25)
        flat = t.registry.flatten()
        assert flat["c_total"] == 2.0
        assert flat["g"] == 7.0
        assert flat["h_seconds_count"] == 1.0


# -- derived instruments ------------------------------------------------------


class TestDerived:
    def test_overlap_and_skew_from_synthetic_trace(self):
        t = Telemetry()
        trace = [
            # gpu0: compute [0,2], comm [1,3] -> 1s hidden, 1s exposed
            _event(device="gpu0", start=0.0, end=2.0, flops=10.0),
            _event(name="ar", category="comm", device="gpu0",
                   start=1.0, end=3.0, nbytes=100),
            # gpu1: compute [0,1], no comm
            _event(device="gpu1", start=0.0, end=1.0, flops=10.0),
        ]
        out = sample_epoch(t, trace, epoch_time=3.0, epoch=1)
        assert out["overlap_efficiency"] == pytest.approx(0.5)
        # busies are 2.0 and 1.0 -> max/mean = 2/1.5
        assert out["straggler_skew"] == pytest.approx(2.0 / 1.5)
        flat = t.registry.flatten()
        assert flat['repro_device_compute_busy_seconds{device="gpu0"}'] == 2.0
        assert flat['repro_device_exposed_comm_seconds{device="gpu0"}'] == 1.0
        assert flat['repro_device_bytes_moved{device="gpu0"}'] == 100.0
        assert flat["repro_last_sampled_epoch"] == 1.0
        # no machine/cost model: roofline gauges skipped
        assert "repro_roofline_flops_fraction" not in t.registry

    def test_empty_trace_is_noop(self):
        t = Telemetry()
        assert sample_epoch(t, []) == {}
        assert "repro_overlap_efficiency" not in t.registry

    def test_no_comm_means_full_overlap(self):
        t = Telemetry()
        out = sample_epoch(t, [_event()], epoch_time=1.0)
        assert out["overlap_efficiency"] == 1.0


# -- exporters ----------------------------------------------------------------


class TestExporters:
    def _populated(self):
        t = Telemetry(run_id="test")
        t.inc("repro_train_epochs_total", 3.0)
        t.set_gauge("repro_train_loss", 0.5)
        hist = t.registry.histogram("repro_lat_seconds", "latency")
        for v in (0.1, 0.2):
            hist.observe(v)
        root = t.tracer.begin("epoch-1", 0.0, correlation="epoch-1",
                              category="training")
        t.tracer.record("gemm", 0.1, 0.2, category="gemm")
        t.tracer.end(root, 1.0)
        return t

    def test_prometheus_text(self):
        t = self._populated()
        text = to_prometheus(t.registry)
        assert "# TYPE repro_train_epochs_total counter" in text
        assert "# TYPE repro_train_loss gauge" in text
        assert "# TYPE repro_lat_seconds summary" in text
        assert "# HELP repro_lat_seconds latency" in text
        assert 'repro_lat_seconds{quantile="0.5"} 0.1' in text
        assert "repro_lat_seconds_count 2" in text
        assert "repro_train_loss 0.5" in text
        assert text.endswith("\n")

    def test_jsonl_lines(self):
        t = self._populated()
        lines = [json.loads(line) for line in to_jsonl(
            t.registry, t.tracer, meta={"run": "test"})]
        assert lines[0]["type"] == "metrics"
        assert lines[0]["meta"] == {"run": "test"}
        assert lines[0]["metrics"]["repro_train_epochs_total"] == 3.0
        spans = [rec for rec in lines[1:] if rec["type"] == "span"]
        assert [s["name"] for s in spans] == ["epoch-1", "gemm"]
        assert spans[1]["parent_id"] == spans[0]["span_id"]

    def test_spans_to_chrome_events_depth_rows(self):
        t = self._populated()
        events = spans_to_chrome_events(t.tracer)
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["pid"] for e in complete} == {SPAN_PID}
        by_name = {e["name"]: e for e in complete}
        assert by_name["epoch-1"]["tid"] == 0
        assert by_name["gemm"]["tid"] == 1
        assert by_name["gemm"]["args"]["correlation"] == "epoch-1"
        meta = [e for e in events if e["ph"] == "M"]
        assert {m["args"]["name"] for m in meta} >= {"spans", "depth0", "depth1"}

    def test_merged_chrome_trace_disjoint_pids(self):
        t = self._populated()
        trace_a = [_event(device="gpu0"), _event(device="gpu1")]
        trace_b = [_event(device="gpu0")]
        merged = merged_chrome_trace({"train": trace_a, "serve": trace_b},
                                     t.tracer)
        pids = {}
        for ev in merged:
            if ev["ph"] == "M" and ev["name"] == "process_name":
                pids.setdefault(ev["args"]["name"], ev["pid"])
        # 2 train devices, 1 serve device, 1 span process — all distinct
        assert pids["train/gpu0"] == 0
        assert pids["train/gpu1"] == 1
        assert pids["serve/gpu0"] == 2
        assert pids["spans"] == SPAN_PID
        assert len(set(pids.values())) == 4

    def test_render_summary_mentions_metrics_and_spans(self):
        t = self._populated()
        text = render_summary(t.registry, t.tracer)
        assert "repro_train_loss" in text
        assert "spans: 2" in text
        assert "epoch-1" in text


# -- regression gate ----------------------------------------------------------


class TestGate:
    def test_flatten_numeric(self):
        flat = flatten_numeric(
            {"a": 1, "b": {"c": 2.5, "flag": True}, "d": [3, {"e": 4}], "s": "x"}
        )
        assert flat == {"a": 1.0, "b.c": 2.5, "d.0": 3.0, "d.1.e": 4.0}

    def test_identical_passes(self):
        base = {"m": 1.0, "n": 2.0}
        result = diff_metrics(base, dict(base))
        assert result.passed and result.compared == 2

    def test_within_default_tolerance_passes(self):
        result = diff_metrics({"m": 100.0}, {"m": 104.0})
        assert result.passed
        assert DEFAULT_RTOL == 0.05

    def test_beyond_tolerance_fails(self):
        result = diff_metrics({"m": 100.0}, {"m": 106.0})
        assert not result.passed
        assert result.failures[0].name == "m"
        assert "FAIL" in result.report()

    def test_missing_metric_fails_new_metric_noted(self):
        result = diff_metrics({"gone": 1.0}, {"fresh": 1.0})
        assert not result.passed
        assert result.failures[0].name == "gone"
        assert result.new_metrics[0].name == "fresh"

    def test_tolerance_patterns_first_match_wins(self):
        result = diff_metrics(
            {"lat_p99": 1.0, "lat_p50": 1.0},
            {"lat_p99": 1.2, "lat_p50": 1.2},
            tolerances={"lat_p99": 0.3, "lat_*": 0.01},
        )
        assert [d.name for d in result.failures] == ["lat_p50"]

    def test_ignore_patterns(self):
        result = diff_metrics({"noise": 1.0}, {"noise": 99.0}, ignore=["noi*"])
        assert result.passed and result.compared == 0

    def test_zero_baseline(self):
        assert diff_metrics({"z": 0.0}, {"z": 0.0}).passed
        assert not diff_metrics({"z": 0.0}, {"z": 0.1}).passed

    def test_snapshot_roundtrip(self, tmp_path):
        path = tmp_path / "snap.json"
        write_snapshot(path, {"m": 1.5}, meta={"run": "t"})
        assert load_metrics(path) == {"m": 1.5}
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-telemetry-snapshot"
        assert payload["meta"] == {"run": "t"}

    def test_bench_json_flattened_wholesale(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"results": [{"time": 1.0}], "name": "x"}))
        assert load_metrics(path) == {"results.0.time": 1.0}

    def test_tolerance_precedence_insertion_order(self):
        # first match wins in insertion order: a broad pattern listed
        # first shadows a narrower one listed later.
        from repro.telemetry import gate

        assert gate.resolve_tolerance(
            "lat_p99", {"lat_*": 0.5, "lat_p99": 0.0}, 0.05
        ) == 0.5
        assert gate.resolve_tolerance(
            "lat_p99", {"lat_p99": 0.0, "lat_*": 0.5}, 0.05
        ) == 0.0
        assert gate.resolve_tolerance("other", {"lat_*": 0.5}, 0.05) == 0.05

    def test_tolerance_precedence_gates_differently_by_order(self):
        base, cur = {"lat_p99": 1.0}, {"lat_p99": 1.2}
        loose_first = diff_metrics(base, cur,
                                   tolerances={"lat_*": 0.3, "lat_p99": 0.0})
        tight_first = diff_metrics(base, cur,
                                   tolerances={"lat_p99": 0.0, "lat_*": 0.3})
        assert loose_first.passed
        assert not tight_first.passed


class TestGateLoadErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not found"):
            load_metrics(tmp_path / "nope.json")

    def test_directory(self, tmp_path):
        with pytest.raises(ConfigurationError, match="directory"):
            load_metrics(tmp_path)

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="malformed JSON"):
            load_metrics(path)

    def test_no_numeric_metrics(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"name": "x", "notes": ["a", "b"]}))
        with pytest.raises(ConfigurationError, match="no numeric metrics"):
            load_metrics(path)

    def test_cli_summary_exits_cleanly(self, tmp_path, capsys):
        from repro.__main__ import main as cli_main

        assert cli_main(["telemetry", "summary",
                         str(tmp_path / "nope.json")]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_cli_diff_exits_cleanly_on_malformed(self, tmp_path, capsys):
        from repro.__main__ import main as cli_main

        good = tmp_path / "good.json"
        good.write_text(json.dumps({"m": 1.0}))
        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        assert cli_main(["telemetry", "diff", str(good), str(bad)]) == 1
        err = capsys.readouterr().err
        assert "error:" in err and "malformed" in err

    def test_cli_diff_still_gates_good_files(self, tmp_path, capsys):
        from repro.__main__ import main as cli_main

        a = tmp_path / "a.json"
        a.write_text(json.dumps({"m": 1.0}))
        assert cli_main(["telemetry", "diff", str(a), str(a)]) == 0
        assert "PASS" in capsys.readouterr().out


# -- bounded histograms -------------------------------------------------------


class TestBoundedHistogram:
    def test_exact_mode_is_bit_identical_to_reference(self):
        h = Histogram(max_exact=100, reservoir_size=100)
        values = [(i * 37 % 11) / 7.0 for i in range(100)]
        total = 0.0
        for v in values:
            h.observe(v)
            total += v
        assert h.exact
        assert h.count == 100
        assert h.sum == total
        assert h.max == max(values)
        assert h.mean == total / 100
        assert h.values() == values
        ordered = sorted(values)
        for q in (50, 95, 99):
            assert h.percentile(q) == nearest_rank(ordered, q)

    def test_degrades_past_threshold_and_stays_bounded(self):
        h = Histogram(max_exact=200, reservoir_size=64)
        for i in range(10_000):
            h.observe(float(i))
        assert not h.exact
        assert len(h.values()) == 64
        # count/sum/max stay exact forever.
        assert h.count == 10_000
        assert h.sum == float(sum(range(10_000)))
        assert h.max == 9999.0
        assert h.mean == h.sum / 10_000
        # quantiles are estimates from a uniform sample: sane bounds.
        assert 0.0 <= h.percentile(50) <= 9999.0

    def test_degradation_is_deterministic(self):
        def build():
            h = Histogram(max_exact=128, reservoir_size=32)
            for i in range(1000):
                h.observe(float(i * 13 % 997))
            return h

        a, b = build(), build()
        assert a.values() == b.values()
        assert a.percentile(99) == b.percentile(99)

    def test_reservoir_samples_cover_the_stream(self):
        h = Histogram(max_exact=100, reservoir_size=100)
        for i in range(50_000):
            h.observe(float(i))
        # Algorithm R keeps a uniform sample: the median estimate of
        # 0..49999 must land near the middle, not stick to the prefix.
        assert 10_000 < h.percentile(50) < 40_000

    def test_default_threshold_keeps_tier1_exact(self):
        from repro.telemetry.registry import DEFAULT_MAX_EXACT

        assert DEFAULT_MAX_EXACT >= 65536
        h = Histogram()
        for i in range(1000):
            h.observe(float(i))
        assert h.exact

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Histogram(reservoir_size=0)
        with pytest.raises(ConfigurationError):
            Histogram(max_exact=10, reservoir_size=100)

    def test_registry_flatten_unchanged_by_degradation(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_lat_seconds")
        h.max_exact = 50
        h.reservoir_size = 16
        for i in range(200):
            h.observe(float(i))
        flat = reg.flatten()
        assert flat["repro_lat_seconds_count"] == 200.0
        assert flat["repro_lat_seconds_max"] == 199.0
        assert "repro_lat_seconds_p99" in flat


# -- serving metrics delegate -------------------------------------------------


class TestServingDelegation:
    def test_latency_percentile_delegates(self):
        from repro.serve.metrics import latency_percentile

        assert latency_percentile([3.0, 1.0, 2.0], 50) == 2.0
        with pytest.raises(ConfigurationError):
            latency_percentile([], 50)

    def test_serving_metrics_mirror_into_registry(self):
        from repro.serve.metrics import ServingMetrics

        class FakeRequest:
            def __init__(self, rid, arrival):
                self.request_id = rid
                self.arrival = arrival

        class FakeBatch:
            batch_id = 0
            dispatch_time = 1.0
            queue_depth = 2
            requests = [FakeRequest(0, 0.5), FakeRequest(1, 0.8)]
            size = 2

        reg = MetricsRegistry()
        metrics = ServingMetrics(registry=reg)
        metrics.observe_batch(FakeBatch(), completion=1.5)
        flat = reg.flatten()
        assert flat["repro_serving_requests_total"] == 2.0
        assert flat["repro_serving_batches_total"] == 1.0
        assert flat["repro_serving_latency_seconds_count"] == 2.0
        assert flat["repro_serving_queue_depth"] == 2.0
        # summary math stays on the private histogram
        assert metrics.summary()["latency_p99"] == pytest.approx(1.0)


@pytest.mark.telemetry
def test_exporter_sweep_large_registry():
    """Slow sweep: every exporter over a wide labeled registry."""
    t = Telemetry(run_id="sweep")
    root = t.tracer.begin("sweep", 0.0, correlation="sweep")
    for rank in range(8):
        for cat in ("gemm", "spmm", "comm", "opt"):
            for i in range(50):
                t.on_op(_event(
                    name=f"{cat}{i}", category=cat, device=f"gpu{rank}",
                    start=i * 1e-3, end=i * 1e-3 + 5e-4,
                    nbytes=1024 if cat == "comm" else 0,
                    flops=100.0 if cat != "comm" else 0.0,
                ))
        t.observe("repro_lat_seconds", rank * 0.01 + 0.001, device=f"gpu{rank}")
    t.tracer.end(root, 1.0)

    flat = t.registry.flatten()
    assert flat['repro_ops_total{category="gemm",device="gpu7"}'] == 50.0
    text = to_prometheus(t.registry)
    assert text.count("# TYPE") == len(list(t.registry.families()))
    lines = to_jsonl(t.registry, t.tracer)
    assert len(lines) == 1 + len(t.tracer.spans)
    merged = merged_chrome_trace(
        {"sweep": [_event(device=f"gpu{r}") for r in range(8)]}, t.tracer
    )
    assert any(e.get("ph") == "X" for e in merged)
    # gate against itself: always green
    assert diff_metrics(flat, dict(flat)).passed
