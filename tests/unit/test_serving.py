"""Unit tests: the online-inference serving subsystem (repro.serve)."""

import numpy as np
import pytest

from repro.datasets import load_dataset, sample_query_vertices
from repro.errors import (
    ConfigurationError,
    DatasetError,
    RecoveryError,
)
from repro.hardware import dgx_a100
from repro.nn import GCNModelSpec
from repro.nn.init import init_weights
from repro.nn.reference import ReferenceGCN
from repro.resilience.faults import DeviceFailure, FaultPlan
from repro.serve import (
    EmbeddingCache,
    InferenceRequest,
    MicroBatcher,
    ServingConfig,
    ServingEngine,
    ServingMetrics,
    bursty_workload,
    latency_percentile,
    pin_by_degree,
    poisson_workload,
)
from repro.serve.metrics import DegradeEvent

pytestmark = pytest.mark.serving


@pytest.fixture(scope="module")
def serving_dataset():
    return load_dataset("reddit", scale=0.002, learnable=True, seed=0)


@pytest.fixture(scope="module")
def serving_model(serving_dataset):
    ds = serving_dataset
    return GCNModelSpec.build(ds.d0, 16, ds.num_classes, 3)


@pytest.fixture(scope="module")
def reference(serving_dataset, serving_model):
    ref = ReferenceGCN(serving_dataset, serving_model, seed=1)
    ref.fit(2)
    return ref


def make_engine(dataset, reference, **overrides):
    defaults = dict(
        machine=dgx_a100(),
        num_gpus=4,
        cache_entries=4 * dataset.n,
        num_pinned=8,
        max_batch_size=8,
        max_wait=1e-3,
    )
    defaults.update(overrides)
    return ServingEngine(
        dataset,
        reference.weights,
        reference.model,
        config=ServingConfig(**defaults),
    )


class TestQuerySampling:
    def test_uniform_in_range(self, serving_dataset):
        v = sample_query_vertices(serving_dataset, 100, seed=0)
        assert v.shape == (100,)
        assert v.min() >= 0 and v.max() < serving_dataset.n

    def test_seeded_reproducible(self, serving_dataset):
        a = sample_query_vertices(serving_dataset, 50, skew=1.2, seed=3)
        b = sample_query_vertices(serving_dataset, 50, skew=1.2, seed=3)
        assert (a == b).all()

    def test_skew_prefers_high_degree(self, serving_dataset):
        ds = serving_dataset
        adj = ds.adjacency
        degree = (
            np.bincount(adj.rows, minlength=ds.n)
            + np.bincount(adj.cols, minlength=ds.n)
        )
        skewed = sample_query_vertices(ds, 2000, skew=1.5, seed=0)
        uniform = sample_query_vertices(ds, 2000, skew=0.0, seed=0)
        assert degree[skewed].mean() > degree[uniform].mean()

    def test_rejects_symbolic_and_bad_args(self, serving_dataset):
        symbolic = load_dataset("reddit", symbolic=True)
        with pytest.raises(DatasetError):
            sample_query_vertices(symbolic, 10)
        with pytest.raises(DatasetError):
            sample_query_vertices(serving_dataset, -1)
        with pytest.raises(DatasetError):
            sample_query_vertices(serving_dataset, 10, skew=-0.5)


class TestWorkload:
    def test_poisson_sorted_and_seeded(self, serving_dataset):
        a = poisson_workload(serving_dataset, 40, rate=100.0, skew=1.0, seed=5)
        b = poisson_workload(serving_dataset, 40, rate=100.0, skew=1.0, seed=5)
        assert [r.arrival for r in a] == [r.arrival for r in b]
        assert [r.vertices for r in a] == [r.vertices for r in b]
        arrivals = [r.arrival for r in a]
        assert arrivals == sorted(arrivals)
        assert [r.request_id for r in a] == list(range(40))

    def test_poisson_rate_sets_mean_gap(self, serving_dataset):
        reqs = poisson_workload(serving_dataset, 4000, rate=100.0, seed=1)
        mean_gap = reqs[-1].arrival / len(reqs)
        assert mean_gap == pytest.approx(1 / 100.0, rel=0.1)

    def test_bursty_groups_arrivals(self, serving_dataset):
        reqs = bursty_workload(
            serving_dataset, num_bursts=5, burst_size=4, burst_rate=10.0,
            intra_burst_gap=1e-6, seed=2,
        )
        assert len(reqs) == 20
        arrivals = np.asarray([r.arrival for r in reqs])
        gaps = np.diff(arrivals)
        # 3 of every 4 gaps are intra-burst (tiny), the rest inter-burst.
        assert (gaps < 1e-5).sum() >= 12

    def test_request_validation(self):
        with pytest.raises(ConfigurationError):
            InferenceRequest(request_id=0, vertices=(), arrival=0.0)
        with pytest.raises(ConfigurationError):
            InferenceRequest(request_id=0, vertices=(1,), arrival=-1.0)


class TestMicroBatcher:
    def _requests(self, arrivals):
        return [
            InferenceRequest(request_id=i, vertices=(i,), arrival=t)
            for i, t in enumerate(arrivals)
        ]

    def test_full_batch_dispatches_immediately(self):
        reqs = self._requests([0.0, 0.0, 0.0, 0.0])
        batcher = MicroBatcher(reqs, max_batch_size=4, max_wait=10.0)
        batch = batcher.next_batch(server_free=0.0)
        assert batch.size == 4
        assert batch.dispatch_time == 0.0  # full batch never waits

    def test_partial_batch_waits_max_wait(self):
        reqs = self._requests([1.0, 1.5])
        batcher = MicroBatcher(reqs, max_batch_size=8, max_wait=2.0)
        batch = batcher.next_batch(server_free=0.0)
        assert batch.dispatch_time == pytest.approx(3.0)  # 1.0 + max_wait
        assert batch.size == 2

    def test_busy_server_defers_and_coalesces(self):
        reqs = self._requests([0.0, 0.1, 0.2, 0.3, 0.4])
        batcher = MicroBatcher(reqs, max_batch_size=3, max_wait=1e-9)
        first = batcher.next_batch(server_free=0.0)
        assert first.size == 1
        # the engine is busy until t=0.35: three more arrive meanwhile.
        second = batcher.next_batch(server_free=0.35)
        assert second.dispatch_time == pytest.approx(0.35)
        assert second.size == 3
        assert second.queue_depth == 3

    def test_stream_is_exhausted_exactly_once(self):
        reqs = self._requests([0.0, 0.5, 1.0])
        batcher = MicroBatcher(reqs, max_batch_size=2, max_wait=0.0)
        seen = []
        free = 0.0
        while (batch := batcher.next_batch(free)) is not None:
            seen.extend(r.request_id for r in batch.requests)
            free = batch.dispatch_time
        assert sorted(seen) == [0, 1, 2]
        assert batcher.pending == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MicroBatcher([], max_batch_size=0, max_wait=0.0)
        with pytest.raises(ConfigurationError):
            MicroBatcher([], max_batch_size=1, max_wait=-1.0)


class TestEmbeddingCache:
    def test_hit_miss_split(self):
        cache = EmbeddingCache(capacity=8)
        cache.insert(1, np.array([3, 5]), np.ones((2, 4)), version=0)
        hits, misses, rows = cache.lookup(
            1, np.array([3, 4, 5]), version=0
        )
        assert hits.tolist() == [3, 5]
        assert misses.tolist() == [4]
        assert rows.shape == (2, 4)

    def test_version_bump_invalidates_lazily(self):
        cache = EmbeddingCache(capacity=8)
        cache.insert(1, np.array([0]), np.ones((1, 2)), version=0)
        hits, misses, _ = cache.lookup(1, np.array([0]), version=1)
        assert hits.size == 0 and misses.tolist() == [0]
        assert cache.stats.stale_drops == 1
        assert len(cache) == 0  # dropped on touch

    def test_lru_eviction_order(self):
        cache = EmbeddingCache(capacity=2)
        cache.insert(1, np.array([0]), np.zeros((1, 2)), version=0)
        cache.insert(1, np.array([1]), np.zeros((1, 2)), version=0)
        cache.lookup(1, np.array([0]), version=0)  # refresh 0
        cache.insert(1, np.array([2]), np.zeros((1, 2)), version=0)
        assert cache.resident_vertices(1).tolist() == [0, 2]  # 1 evicted

    def test_pinned_entries_survive_pressure(self):
        cache = EmbeddingCache(capacity=2, pinned=[7])
        cache.insert(1, np.array([7]), np.zeros((1, 2)), version=0)
        for v in range(3):
            cache.insert(1, np.array([v]), np.zeros((1, 2)), version=0)
        assert 7 in cache.resident_vertices(1).tolist()

    def test_zero_capacity_disables(self):
        cache = EmbeddingCache(capacity=0)
        cache.insert(1, np.array([0]), np.ones((1, 2)), version=0)
        hits, misses, rows = cache.lookup(1, np.array([0]), version=0)
        assert hits.size == 0 and rows is None
        assert len(cache) == 0

    def test_invalidate_vertices_drops_all_layers(self):
        cache = EmbeddingCache(capacity=8)
        cache.insert(1, np.array([0, 1]), np.zeros((2, 2)), version=0)
        cache.insert(2, np.array([0]), np.zeros((1, 2)), version=0)
        dropped = cache.invalidate_vertices([0])
        assert dropped == 2
        assert cache.resident_vertices(1).tolist() == [1]
        assert cache.resident_vertices(2).tolist() == []

    def test_pin_by_degree_picks_top(self):
        degrees = np.array([5, 1, 9, 9, 0])
        assert pin_by_degree(degrees, 2) == frozenset({2, 3})
        assert pin_by_degree(degrees, 0) == frozenset()


class TestServingMetrics:
    def test_nearest_rank_percentiles(self):
        latencies = list(range(1, 101))
        assert latency_percentile(latencies, 50) == 50
        assert latency_percentile(latencies, 99) == 99
        assert latency_percentile(latencies, 100) == 100
        with pytest.raises(ConfigurationError):
            latency_percentile([], 50)
        with pytest.raises(ConfigurationError):
            latency_percentile([1.0], 0)

    def test_summary_requires_records(self):
        with pytest.raises(ConfigurationError):
            ServingMetrics().summary()

    def test_degrade_events_counted(self):
        metrics = ServingMetrics()
        metrics.observe_degrade(
            DegradeEvent(rank=1, time=0.5, rerouted_vertices=10,
                         invalidated_entries=3)
        )
        assert len(metrics.degrade_events) == 1


class TestServingEngine:
    def test_query_matches_reference_forward(
        self, serving_dataset, reference
    ):
        engine = make_engine(serving_dataset, reference)
        full = reference.forward()[-1]
        targets = [0, 7, serving_dataset.n - 1, 7]
        got = engine.query(targets)
        np.testing.assert_allclose(
            got, full[targets], rtol=1e-6, atol=1e-6
        )

    def test_query_matches_with_tiny_cache_evictions(
        self, serving_dataset, reference
    ):
        engine = make_engine(
            serving_dataset, reference, cache_entries=16, num_pinned=4
        )
        full = reference.forward()[-1]
        rng = np.random.default_rng(0)
        for _ in range(5):
            targets = rng.integers(0, serving_dataset.n, size=6)
            np.testing.assert_allclose(
                engine.query(targets), full[targets], rtol=1e-6, atol=1e-6
            )
        assert engine.cache.stats.evictions > 0

    def test_serve_returns_all_logits_and_summary(
        self, serving_dataset, reference
    ):
        engine = make_engine(serving_dataset, reference)
        engine.warm_cache()
        requests = poisson_workload(
            serving_dataset, 30, rate=2000.0, skew=1.0, seed=4
        )
        result = engine.serve(requests)
        assert set(result.logits) == {r.request_id for r in requests}
        full = reference.forward()[-1]
        for r in requests:
            np.testing.assert_allclose(
                result.logits[r.request_id], full[list(r.vertices)],
                rtol=1e-6, atol=1e-6,
            )
        s = result.summary
        assert s["num_requests"] == 30
        assert s["latency_p50"] <= s["latency_p95"] <= s["latency_p99"]
        assert s["throughput_rps"] > 0
        assert s["cache_hit_rate"] == 1.0  # fully warmed, no update

    def test_warm_cache_replays_after_weight_update(
        self, serving_dataset, reference, serving_model
    ):
        engine = make_engine(serving_dataset, reference)
        engine.warm_cache()
        assert engine._warm_plan is not None
        plan = engine._warm_plan
        new_weights = [w * 1.5 for w in reference.weights]
        engine.update_weights(new_weights)
        engine.warm_cache()  # replay, not re-capture
        assert engine._warm_plan is plan
        shadow = ReferenceGCN(serving_dataset, serving_model, seed=1)
        shadow.weights = [w.astype(np.float32) for w in new_weights]
        full = shadow.forward()[-1]
        got = engine.query([1, 2, 3])
        np.testing.assert_allclose(got, full[[1, 2, 3]], rtol=1e-6, atol=1e-6)
        # post-update queries hit the re-warmed (new-version) entries
        assert engine.cache.stats.hits > 0

    def test_trace_carries_batch_correlation_ids(
        self, serving_dataset, reference
    ):
        engine = make_engine(serving_dataset, reference)
        requests = poisson_workload(serving_dataset, 10, rate=500.0, seed=6)
        engine.serve(requests)
        correlations = {
            ev.correlation
            for ev in engine.ctx.engine.trace
            if ev.correlation is not None
        }
        assert "batch-0" in correlations
        from repro.profiling import trace_to_chrome_events

        events = trace_to_chrome_events(engine.ctx.engine.trace)
        tagged = [e for e in events if "correlation" in e.get("args", {})]
        assert tagged, "chrome trace must carry the correlation ids"

    def test_degraded_mode_keeps_logits_correct(
        self, serving_dataset, reference
    ):
        fault_plan = FaultPlan(
            device_failures=(DeviceFailure(rank=1, time=2e-3),)
        )
        engine = make_engine(
            serving_dataset, reference, fault_plan=fault_plan
        )
        engine.warm_cache()
        requests = poisson_workload(
            serving_dataset, 60, rate=5000.0, skew=1.0, seed=7
        )
        result = engine.serve(requests)
        assert engine.alive_ranks == (0, 2, 3)
        assert result.summary["degrade_events"] == 1
        assert engine.cache.stats.invalidations > 0
        # every lost vertex is rerouted to a survivor
        assert not (engine._owner_of == 1).any()
        full = reference.forward()[-1]
        for r in requests:
            np.testing.assert_allclose(
                result.logits[r.request_id], full[list(r.vertices)],
                rtol=1e-6, atol=1e-6,
            )

    def test_all_devices_dead_raises(self, serving_dataset, reference):
        fault_plan = FaultPlan(
            device_failures=(DeviceFailure(rank=0, time=0.0),)
        )
        engine = make_engine(
            serving_dataset, reference, num_gpus=1, fault_plan=fault_plan
        )
        requests = poisson_workload(serving_dataset, 3, rate=100.0, seed=1)
        with pytest.raises(RecoveryError):
            engine.serve(requests)

    def test_config_and_input_validation(self, serving_dataset, reference):
        with pytest.raises(ConfigurationError):
            ServingConfig(num_gpus=0)
        with pytest.raises(ConfigurationError):
            ServingConfig(cache_entries=-1)
        engine = make_engine(serving_dataset, reference)
        with pytest.raises(ConfigurationError):
            engine.query([])
        with pytest.raises(ConfigurationError):
            engine.query([serving_dataset.n])
        with pytest.raises(ConfigurationError):
            engine.serve([])
        with pytest.raises(ConfigurationError):
            engine.update_weights(reference.weights[:-1])
        cold = make_engine(serving_dataset, reference, cache_entries=0,
                           num_pinned=0)
        with pytest.raises(ConfigurationError):
            cold.warm_cache()

    def test_from_checkpoint_and_reload(
        self, serving_dataset, reference, tmp_path
    ):
        from repro.nn import save_weights

        path = tmp_path / "serve.npz"
        save_weights(reference.weights, path)
        engine = ServingEngine.from_checkpoint(
            serving_dataset, path,
            ServingConfig(machine=dgx_a100(), num_gpus=2, cache_entries=64),
        )
        full = reference.forward()[-1]
        np.testing.assert_allclose(
            engine.query([3]), full[[3]], rtol=1e-6, atol=1e-6
        )
        save_weights([w * 2.0 for w in reference.weights], path)
        version = engine.reload(path)
        assert version == 1