"""Units, dtype policy and alignment helpers."""

import numpy as np
import pytest

from repro import config


def test_unit_constants():
    assert config.GiB == 2**30
    assert config.MiB == 2**20
    assert config.KiB == 2**10
    assert config.GB == 10**9
    assert config.TB == 10**12


def test_dtype_sizes():
    assert config.FLOAT_SIZE == np.dtype(config.FLOAT_DTYPE).itemsize == 4
    assert config.INDEX_SIZE == 4
    assert config.OFFSET_SIZE == 8


def test_gib_conversion():
    assert config.gib(2**30) == pytest.approx(1.0)
    assert config.gib(3 * 2**29) == pytest.approx(1.5)


def test_align_up_basics():
    assert config.align_up(0) == 0
    assert config.align_up(1) == 256
    assert config.align_up(256) == 256
    assert config.align_up(257) == 512


def test_align_up_custom_alignment():
    assert config.align_up(5, alignment=4) == 8
    assert config.align_up(8, alignment=4) == 8


def test_align_up_rejects_negative():
    with pytest.raises(ValueError):
        config.align_up(-1)


def test_offset_dtype_fits_papers_edge_count():
    # ogbn-papers100M has 1.61e9 edges: must be addressable.
    assert np.iinfo(config.OFFSET_DTYPE).max > 1_610_000_000
