"""CSR invariants, kernels (scipy vs numpy reference), tiling, scaling."""

import numpy as np
import pytest

from repro.errors import PartitionError, ShapeError
from repro.sparse import COOMatrix, CSRMatrix


@pytest.fixture()
def random_dense(rng):
    dense = (rng.random((12, 9)) < 0.3).astype(np.float32)
    dense *= rng.random((12, 9)).astype(np.float32)
    return dense


def test_from_coo_roundtrip(random_dense):
    rows, cols = np.nonzero(random_dense)
    coo = COOMatrix(random_dense.shape, rows, cols, random_dense[rows, cols])
    csr = CSRMatrix.from_coo(coo)
    assert np.allclose(csr.to_dense(), random_dense)


def test_from_dense_roundtrip(random_dense):
    csr = CSRMatrix.from_dense(random_dense)
    assert np.allclose(csr.to_dense(), random_dense)
    assert np.allclose(csr.to_coo().to_dense(), random_dense)


def test_empty_matrix():
    csr = CSRMatrix.empty((4, 7))
    assert csr.nnz == 0
    assert csr.spmm(np.ones((7, 2), dtype=np.float32)).sum() == 0


def test_validation_rejects_bad_indptr():
    with pytest.raises(ShapeError):
        CSRMatrix((2, 2), indptr=[0, 2], indices=[0, 1], vals=[1, 1])  # short
    with pytest.raises(ShapeError):
        CSRMatrix((2, 2), indptr=[1, 1, 2], indices=[0], vals=[1])  # not 0-based
    with pytest.raises(ShapeError):
        CSRMatrix((2, 2), indptr=[0, 2, 1], indices=[0, 1], vals=[1, 1])  # dec


def test_validation_rejects_bad_indices():
    with pytest.raises(ShapeError):
        CSRMatrix((2, 2), indptr=[0, 1, 2], indices=[0, 5], vals=[1, 1])


def test_spmm_matches_dense(random_dense, rng):
    csr = CSRMatrix.from_dense(random_dense)
    B = rng.random((9, 5)).astype(np.float32)
    assert np.allclose(csr.spmm(B), random_dense @ B, atol=1e-5)


def test_spmm_numpy_reference_matches_scipy(random_dense, rng):
    csr = CSRMatrix.from_dense(random_dense)
    B = rng.random((9, 5)).astype(np.float32)
    fast = csr.spmm(B, use_scipy=True)
    ref = csr.spmm(B, use_scipy=False)
    assert np.allclose(fast, ref, atol=1e-5)


def test_spmm_accumulate(random_dense, rng):
    csr = CSRMatrix.from_dense(random_dense)
    B = rng.random((9, 3)).astype(np.float32)
    out = np.ones((12, 3), dtype=np.float32)
    csr.spmm(B, out=out, accumulate=True)
    assert np.allclose(out, 1.0 + random_dense @ B, atol=1e-5)


def test_spmm_overwrite(random_dense, rng):
    csr = CSRMatrix.from_dense(random_dense)
    B = rng.random((9, 3)).astype(np.float32)
    out = np.full((12, 3), 9.0, dtype=np.float32)
    csr.spmm(B, out=out, accumulate=False)
    assert np.allclose(out, random_dense @ B, atol=1e-5)


def test_spmm_shape_errors(random_dense):
    csr = CSRMatrix.from_dense(random_dense)
    with pytest.raises(ShapeError):
        csr.spmm(np.ones((8, 2), dtype=np.float32))
    with pytest.raises(ShapeError):
        csr.spmm(np.ones((9, 2), dtype=np.float32), out=np.ones((3, 2), dtype=np.float32))


def test_spmm_chunking_large(rng):
    """Force the numpy kernel through its chunked path."""
    n = 600
    dense = (rng.random((n, n)) < 0.2).astype(np.float32)
    csr = CSRMatrix.from_dense(dense)
    B = rng.random((n, 512)).astype(np.float32)  # nnz*d > 32M
    got = csr.spmm(B, use_scipy=False)
    assert np.allclose(got, dense @ B, atol=1e-2)


def test_spmv(random_dense, rng):
    csr = CSRMatrix.from_dense(random_dense)
    v = rng.random(9).astype(np.float32)
    assert np.allclose(csr.spmv(v), random_dense @ v, atol=1e-5)
    with pytest.raises(ShapeError):
        csr.spmv(np.ones((9, 1), dtype=np.float32))


def test_transpose(random_dense):
    csr = CSRMatrix.from_dense(random_dense)
    assert np.allclose(csr.transpose().to_dense(), random_dense.T)


def test_row_block(random_dense):
    csr = CSRMatrix.from_dense(random_dense)
    block = csr.row_block(3, 8)
    assert np.allclose(block.to_dense(), random_dense[3:8])
    with pytest.raises(PartitionError):
        csr.row_block(5, 20)


def test_tile(random_dense):
    csr = CSRMatrix.from_dense(random_dense)
    tile = csr.tile(2, 7, 3, 9)
    assert np.allclose(tile.to_dense(), random_dense[2:7, 3:9])
    with pytest.raises(PartitionError):
        csr.tile(0, 2, 5, 100)


def test_scale_rows_and_cols(random_dense):
    csr = CSRMatrix.from_dense(random_dense)
    r = np.arange(1, 13, dtype=np.float32)
    c = np.arange(1, 10, dtype=np.float32)
    assert np.allclose(csr.scale_rows(r).to_dense(), random_dense * r[:, None], atol=1e-5)
    assert np.allclose(csr.scale_cols(c).to_dense(), random_dense * c[None, :], atol=1e-5)
    with pytest.raises(ShapeError):
        csr.scale_rows(c)
    with pytest.raises(ShapeError):
        csr.scale_cols(r)


def test_nbytes_accounting(random_dense):
    csr = CSRMatrix.from_dense(random_dense)
    expected = (12 + 1) * 8 + csr.nnz * (4 + 4)
    assert csr.nbytes == expected


def test_row_nnz(random_dense):
    csr = CSRMatrix.from_dense(random_dense)
    assert np.array_equal(csr.row_nnz(), (random_dense != 0).sum(axis=1))
