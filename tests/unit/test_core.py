"""Core package: order policy, partitioner, distributed SpMM, stats."""

import numpy as np
import pytest

from repro.comm import Communicator
from repro.core import (
    ComputeOrder,
    MGGCNTrainer,
    TrainerConfig,
    choose_forward_order,
    distributed_spmm,
    partition_dataset,
)
from repro.core.order import broadcast_width, forward_orders, max_broadcast_width
from repro.core.stats import BREAKDOWN_CATEGORIES, EpochStats, OpBreakdown
from repro.datasets import load_dataset
from repro.device import Mode, SimContext, TraceEvent
from repro.errors import ConfigurationError
from repro.hardware import dgx1
from repro.kernels import CostModel
from repro.nn import GCNModelSpec, SharedBufferManager
from repro.sparse import CSRMatrix, uniform_partition, tile_grid


class TestOrder:
    def test_gemm_first_when_shrinking(self):
        assert choose_forward_order(602, 512) is ComputeOrder.GEMM_FIRST
        assert choose_forward_order(512, 512) is ComputeOrder.GEMM_FIRST

    def test_spmm_first_when_growing(self):
        assert choose_forward_order(128, 512) is ComputeOrder.SPMM_FIRST

    def test_disabled_always_gemm_first(self):
        assert (
            choose_forward_order(128, 512, order_optimization=False)
            is ComputeOrder.GEMM_FIRST
        )

    def test_broadcast_width_follows_order(self):
        assert broadcast_width(128, 512) == 128
        assert broadcast_width(602, 512) == 512
        assert broadcast_width(128, 512, order_optimization=False) == 512

    def test_forward_orders_per_layer(self):
        orders = forward_orders([128, 512, 40])
        assert orders == [ComputeOrder.SPMM_FIRST, ComputeOrder.GEMM_FIRST]

    def test_max_broadcast_width_includes_backward(self):
        # forward widths: min(128,512)=128, min(512,40)=40
        # backward widths: 512, 40 -> max 512
        assert max_broadcast_width([128, 512, 40]) == 512

    def test_invalid_dims(self):
        with pytest.raises(ConfigurationError):
            choose_forward_order(0, 5)


class TestPartitioner:
    def test_functional_partition_shards(self, small_dataset):
        ctx = SimContext(dgx1(), num_gpus=4)
        graph = partition_dataset(ctx, small_dataset, permute=True, seed=0)
        assert graph.num_parts == 4
        assert sum(graph.part.sizes()) == small_dataset.n
        total_train = sum(int(m.sum()) for m in graph.train_masks)
        assert total_train == small_dataset.num_train
        # forward tiles cover all edges
        fwd_nnz = sum(t.nnz for row in graph.forward_tiles for t in row)
        assert fwd_nnz == small_dataset.m

    def test_features_are_permuted_consistently(self, small_dataset):
        ctx = SimContext(dgx1(), num_gpus=2)
        graph = partition_dataset(ctx, small_dataset, permute=True, seed=1)
        perm = graph.perm
        # row that vertex 0 landed on must carry vertex 0's features
        new_pos = perm[0]
        rank = graph.part.owner(new_pos)
        r0, _ = graph.part.part(rank)
        row = new_pos - r0
        assert np.allclose(
            graph.features[rank].data[row], small_dataset.features[0]
        )
        assert graph.labels[rank][row] == small_dataset.labels[0]

    def test_no_permute_keeps_order(self, small_dataset):
        ctx = SimContext(dgx1(), num_gpus=2)
        graph = partition_dataset(ctx, small_dataset, permute=False)
        assert graph.perm is None
        assert np.allclose(
            graph.features[0].data,
            small_dataset.features[: graph.part.size(0)],
        )

    def test_adjacency_memory_accounted(self, small_dataset):
        ctx = SimContext(dgx1(), num_gpus=2)
        graph = partition_dataset(ctx, small_dataset, permute=True)
        for i in range(2):
            tags = ctx.device(i).pool.usage_by_tag()
            assert tags.get("adjacency", 0) > 0
            assert tags.get("features", 0) > 0

    def test_symbolic_partition_balanced(self):
        ds = load_dataset("products", symbolic=True)
        ctx = SimContext(dgx1(), num_gpus=4, mode=Mode.SYMBOLIC)
        graph = partition_dataset(ctx, ds, permute=True)
        nnz = [t.nnz for row in graph.forward_tiles for t in row]
        assert max(nnz) <= 1.05 * min(nnz)
        assert abs(sum(nnz) - ds.m) <= 16  # rounding only

    def test_symbolic_requires_permute(self):
        ds = load_dataset("products", symbolic=True)
        ctx = SimContext(dgx1(), num_gpus=4, mode=Mode.SYMBOLIC)
        with pytest.raises(ConfigurationError):
            partition_dataset(ctx, ds, permute=False)

    def test_mode_mismatch_rejected(self, small_dataset):
        sym_ctx = SimContext(dgx1(), num_gpus=2, mode=Mode.SYMBOLIC)
        with pytest.raises(ConfigurationError):
            partition_dataset(sym_ctx, small_dataset)
        ds = load_dataset("products", symbolic=True)
        fun_ctx = SimContext(dgx1(), num_gpus=2)
        with pytest.raises(ConfigurationError):
            partition_dataset(fun_ctx, ds)

    def test_stage_nnz_diagnostic(self, small_dataset):
        ctx = SimContext(dgx1(), num_gpus=4)
        graph = partition_dataset(ctx, small_dataset, permute=True)
        stages = graph.stage_nnz(0, "forward")
        assert len(stages) == 4
        assert sum(stages) == sum(t.nnz for t in graph.forward_tiles[0])


class TestDistributedSpMM:
    def _setup(self, P, n=24, d=5, overlap=True, seed=0):
        rng = np.random.default_rng(seed)
        dense = (rng.random((n, n)) < 0.3).astype(np.float32)
        matrix = CSRMatrix.from_dense(dense)
        part = uniform_partition(n, P)
        tiles = tile_grid(matrix, part, part)
        ctx = SimContext(dgx1(), num_gpus=P)
        comm = Communicator(ctx)
        costs = [CostModel(dgx1().gpu) for _ in range(P)]
        x = rng.random((n, d)).astype(np.float32)
        managers = [
            SharedBufferManager(
                ctx.device(i), part.size(i), (d, d, d),
                bc_rows=max(part.sizes()), bc_dim=d, overlap=overlap,
            )
            for i in range(P)
        ]
        sources = [
            ctx.device(i).from_numpy(x[part.part(i)[0] : part.part(i)[1]])
            for i in range(P)
        ]
        outputs = [ctx.device(i).zeros((part.size(i), d)) for i in range(P)]
        return ctx, comm, costs, tiles, sources, outputs, managers, dense, x, part

    @pytest.mark.parametrize("P", [1, 2, 4, 8])
    @pytest.mark.parametrize("overlap", [False, True])
    def test_matches_dense_product(self, P, overlap):
        (ctx, comm, costs, tiles, sources, outputs, managers,
         dense, x, part) = self._setup(P, overlap=overlap)
        distributed_spmm(
            ctx, comm, costs, tiles, sources, outputs, managers, overlap=overlap
        )
        expected = dense @ x
        for i in range(P):
            r0, r1 = part.part(i)
            assert np.allclose(outputs[i].data, expected[r0:r1], atol=1e-4), (P, i)

    def test_overlap_faster_than_serialized(self):
        res_s = self._setup(4, n=4000, d=256, overlap=False, seed=1)
        distributed_spmm(
            res_s[0], res_s[1], res_s[2], res_s[3], res_s[4], res_s[5],
            res_s[6], overlap=False,
        )
        t_serial = res_s[0].elapsed()
        res_o = self._setup(4, n=4000, d=256, overlap=True, seed=1)
        distributed_spmm(
            res_o[0], res_o[1], res_o[2], res_o[3], res_o[4], res_o[5],
            res_o[6], overlap=True, overlap_bw_fraction=5 / 6,
        )
        t_overlap = res_o[0].elapsed()
        assert t_overlap < t_serial

    def test_stage_events_recorded(self):
        (ctx, comm, costs, tiles, sources, outputs, managers,
         *_rest) = self._setup(4)
        events = distributed_spmm(
            ctx, comm, costs, tiles, sources, outputs, managers, label="x"
        )
        assert set(events) == {0, 1, 2, 3}
        assert all(len(v) == 4 for v in events.values())
        stages = {ev.stage for ev in ctx.engine.trace if ev.stage is not None}
        assert stages == {0, 1, 2, 3}

    def test_rank_count_mismatch(self):
        (ctx, comm, costs, tiles, sources, outputs, managers,
         *_rest) = self._setup(2)
        with pytest.raises(ConfigurationError):
            distributed_spmm(
                ctx, comm, costs, tiles, sources[:1], outputs, managers
            )


class TestStats:
    def test_breakdown_from_trace(self):
        trace = [
            TraceEvent("gpu0", "compute", "a", "spmm", 0.0, 2.0),
            TraceEvent("gpu0", "compute", "b", "gemm", 2.0, 3.0),
            TraceEvent("gpu1", "compute", "c", "spmm", 0.0, 1.0),
        ]
        b = OpBreakdown.from_trace(trace)
        assert b.totals["spmm"] == pytest.approx(3.0)
        assert b.percentage("spmm") == pytest.approx(75.0)
        assert sum(b.percentages().values()) == pytest.approx(100.0)

    def test_empty_breakdown(self):
        b = OpBreakdown.from_trace([])
        assert b.total == 0.0
        assert b.percentage("spmm") == 0.0

    def test_epoch_stats_accessors(self):
        stats = EpochStats(
            epoch_time=1.0,
            loss=0.5,
            breakdown=OpBreakdown({"spmm": 0.6, "comm": 0.2}),
            peak_memory=1024,
        )
        assert stats.spmm_time == pytest.approx(0.6)
        assert stats.comm_time == pytest.approx(0.2)
        assert stats.category_time("gemm") == 0.0

    def test_categories_match_figure5(self):
        assert BREAKDOWN_CATEGORIES == ("activation", "adam", "gemm", "loss", "spmm")


class TestTrainerConfig:
    def test_defaults_enable_optimizations(self):
        cfg = TrainerConfig()
        assert cfg.permute and cfg.overlap
        assert cfg.order_optimization and cfg.first_layer_skip

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TrainerConfig(lr=0)
        with pytest.raises(ConfigurationError):
            TrainerConfig(overlap_comm_derate=0)

    def test_trainer_rejects_model_mismatch(self, small_dataset):
        bad = GCNModelSpec.build(3, 4, small_dataset.num_classes, 2)
        with pytest.raises(ConfigurationError):
            MGGCNTrainer(small_dataset, bad)

    def test_trainer_rejects_bad_epochs(self, small_dataset, small_model):
        trainer = MGGCNTrainer(small_dataset, small_model, num_gpus=1)
        with pytest.raises(ConfigurationError):
            trainer.fit(-1)
