"""BFS ordering, Chrome trace export, checkpointing, CLI."""

import json

import numpy as np
import pytest

from repro.core import MGGCNTrainer, TrainerConfig
from repro.errors import ConfigurationError
from repro.hardware import dgx1
from repro.nn import GCNModelSpec, load_checkpoint, save_checkpoint
from repro.profiling import export_chrome_trace, trace_to_chrome_events
from repro.sparse import (
    COOMatrix,
    CSRMatrix,
    bfs_permutation,
    apply_permutation,
    invert_permutation,
)
from repro.__main__ import main as cli_main


class TestBFSPermutation:
    def test_is_permutation(self, rng):
        dense = (rng.random((30, 30)) < 0.2).astype(np.float32)
        coo = COOMatrix(dense.shape, *np.nonzero(dense))
        perm = bfs_permutation(coo)
        assert sorted(perm) == list(range(30))

    def test_bfs_order_respects_layers(self):
        # path graph 0-1-2-3-4: BFS from 0 visits in order
        coo = COOMatrix.from_edges(
            5, np.array([[0, 1], [1, 2], [2, 3], [3, 4]]), symmetrize=True
        )
        perm = bfs_permutation(coo, start=0)
        assert list(invert_permutation(perm)) == [0, 1, 2, 3, 4]

    def test_disconnected_components_covered(self):
        coo = COOMatrix.from_edges(6, np.array([[0, 1], [3, 4]]), symmetrize=True)
        perm = bfs_permutation(coo)
        assert sorted(perm) == list(range(6))

    def test_improves_bandwidth_locality(self, rng):
        """BFS ordering reduces the average |row - col| distance of the
        nonzeros on a ring-of-cliques graph scrambled randomly."""
        import itertools

        blocks = 6
        size = 5
        edges = []
        for b in range(blocks):
            base = b * size
            edges.extend(
                (base + i, base + j)
                for i, j in itertools.combinations(range(size), 2)
            )
            edges.append((base, ((b + 1) % blocks) * size))
        n = blocks * size
        coo = COOMatrix.from_edges(n, np.array(edges), symmetrize=True)
        scramble = np.random.default_rng(1).permutation(n)
        scrambled = apply_permutation(coo, scramble.astype(np.int64))

        def mean_span(m):
            return float(np.abs(m.rows - m.cols).mean())

        bfs = apply_permutation(scrambled, bfs_permutation(scrambled))
        assert mean_span(bfs) < mean_span(scrambled)

    def test_invalid_start(self):
        coo = COOMatrix.from_edges(3, np.array([[0, 1]]))
        with pytest.raises(ValueError):
            bfs_permutation(coo, start=9)


class TestChromeTrace:
    def test_export_loads_as_json(self, tmp_path, small_dataset, small_model):
        trainer = MGGCNTrainer(small_dataset, small_model, machine=dgx1(),
                               num_gpus=4)
        stats = trainer.train_epoch()
        path = tmp_path / "trace.json"
        export_chrome_trace(stats.trace, path)
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(stats.trace)
        # metadata rows name all four GPUs
        names = {
            e["args"]["name"] for e in events if e["name"] == "process_name"
        }
        assert names == {"gpu0", "gpu1", "gpu2", "gpu3"}

    def test_durations_scaled_to_us(self, small_dataset, small_model):
        trainer = MGGCNTrainer(small_dataset, small_model, machine=dgx1(),
                               num_gpus=2)
        stats = trainer.train_epoch()
        events = trace_to_chrome_events(stats.trace)
        first = next(e for e in events if e["ph"] == "X")
        src = stats.trace[0]
        assert first["dur"] == pytest.approx(src.duration * 1e6)


class TestCheckpoint:
    def test_roundtrip_resumes_identically(self, tmp_path, small_dataset,
                                           small_model):
        cfg = TrainerConfig(seed=13)
        a = MGGCNTrainer(small_dataset, small_model, machine=dgx1(),
                         num_gpus=4, config=cfg)
        a.fit(3)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(a, path)
        continued = [s.loss for s in a.fit(3)]

        b = MGGCNTrainer(small_dataset, small_model, machine=dgx1(),
                         num_gpus=4, config=cfg)
        load_checkpoint(b, path)
        assert b.epochs_trained == 3
        resumed = [s.loss for s in b.fit(3)]
        assert resumed == pytest.approx(continued, rel=1e-6)

    def test_restores_all_replicas(self, tmp_path, small_dataset, small_model):
        a = MGGCNTrainer(small_dataset, small_model, machine=dgx1(), num_gpus=2)
        a.fit(2)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(a, path)
        b = MGGCNTrainer(small_dataset, small_model, machine=dgx1(), num_gpus=2)
        load_checkpoint(b, path)
        for layer in range(small_model.num_layers):
            assert np.array_equal(
                b.weights[0][layer].data, b.weights[1][layer].data
            )

    def test_architecture_mismatch_rejected(self, tmp_path, small_dataset,
                                            small_model):
        a = MGGCNTrainer(small_dataset, small_model, machine=dgx1(), num_gpus=1)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(a, path)
        other_model = GCNModelSpec.build(
            small_dataset.d0, 24, small_dataset.num_classes, 2
        )
        b = MGGCNTrainer(small_dataset, other_model, machine=dgx1(), num_gpus=1)
        with pytest.raises(ConfigurationError):
            load_checkpoint(b, path)

    def test_garbage_file_rejected(self, tmp_path, small_dataset, small_model):
        path = tmp_path / "junk.npz"
        np.savez(path, something=np.zeros(3))
        t = MGGCNTrainer(small_dataset, small_model, machine=dgx1(), num_gpus=1)
        with pytest.raises(ConfigurationError):
            load_checkpoint(t, path)


class TestCLI:
    def test_datasets_command(self, capsys):
        assert cli_main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "reddit" in out and "papers" in out

    def test_machines_command(self, capsys):
        assert cli_main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "DGX-1-V100" in out and "NVSwitch" in out

    def test_plan_command(self, capsys):
        assert cli_main(["plan", "reddit", "--hidden", "512"]) == 0
        out = capsys.readouterr().out
        assert "max layers" in out

    def test_train_command(self, capsys):
        code = cli_main([
            "train", "cora", "--scale", "0.05", "--gpus", "2",
            "--epochs", "3", "--hidden", "8",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "test accuracy" in out

    def test_experiment_command(self, capsys):
        assert cli_main(["experiment", "sec51"]) == 0
        out = capsys.readouterr().out
        assert "1.5D" in out

    def test_unknown_dataset_is_clean_error(self, capsys):
        code = cli_main(["train", "imagenet"])
        assert code == 1
        assert "error" in capsys.readouterr().err
