"""SymbolicCSR metadata tiles."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse import CSRMatrix
from repro.sparse.symbolic import SymbolicCSR, csr_meta


def test_basic():
    t = SymbolicCSR((100, 50), nnz=200)
    assert t.shape == (100, 50)
    assert t.nnz == 200


def test_nbytes_matches_real_csr(rng):
    dense = (rng.random((20, 20)) < 0.3).astype(np.float32)
    csr = CSRMatrix.from_dense(dense)
    sym = csr_meta(csr)
    assert sym.nbytes == csr.nbytes


def test_transpose():
    t = SymbolicCSR((10, 4), nnz=7).transpose()
    assert t.shape == (4, 10)
    assert t.nnz == 7


def test_validation():
    with pytest.raises(ShapeError):
        SymbolicCSR((-1, 4), nnz=0)
    with pytest.raises(ShapeError):
        SymbolicCSR((2, 2), nnz=-1)
    with pytest.raises(ShapeError):
        SymbolicCSR((2, 2), nnz=5)  # exceeds capacity


def test_hashable_and_frozen():
    t = SymbolicCSR((2, 2), nnz=1)
    assert hash(t) == hash(SymbolicCSR((2, 2), nnz=1))
    with pytest.raises(Exception):
        t.nnz = 3
