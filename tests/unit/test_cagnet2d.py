"""CAGNET 2D (SUMMA) trainer: correctness and the GeMM-reduction cost."""

import numpy as np
import pytest

from repro.baselines import CAGNET2DTrainer, CAGNETTrainer
from repro.datasets import load_dataset
from repro.errors import ConfigurationError
from repro.hardware import dgx1, dgx_a100
from repro.nn import GCNModelSpec, ReferenceGCN


@pytest.mark.parametrize("gpus", [1, 4])
def test_matches_reference(small_dataset, small_model, gpus):
    trainer = CAGNET2DTrainer(small_dataset, small_model, machine=dgx1(),
                              num_gpus=gpus, seed=9)
    ref = ReferenceGCN(small_dataset, small_model, seed=9)
    for _ in range(3):
        stats = trainer.train_epoch()
        ref_loss = ref.train_epoch()
        assert stats.loss == pytest.approx(ref_loss, rel=1e-4, abs=1e-6)
    for a, b in zip(trainer.get_weights(), ref.weights):
        assert np.allclose(a, b, rtol=5e-3, atol=5e-5), gpus


def test_permuted_variant_correct(small_dataset, small_model):
    trainer = CAGNET2DTrainer(small_dataset, small_model, machine=dgx1(),
                              num_gpus=4, seed=9, permute=True)
    ref = ReferenceGCN(small_dataset, small_model, seed=9)
    trainer.train_epoch()
    ref.train_epoch()
    for a, b in zip(trainer.get_weights(), ref.weights):
        assert np.allclose(a, b, rtol=5e-3, atol=5e-5)


def test_three_layer_model(small_dataset):
    model = GCNModelSpec.build(small_dataset.d0, 12,
                               small_dataset.num_classes, 3)
    trainer = CAGNET2DTrainer(small_dataset, model, machine=dgx1(),
                              num_gpus=4, seed=10)
    ref = ReferenceGCN(small_dataset, model, seed=10)
    for _ in range(2):
        trainer.train_epoch()
        ref.train_epoch()
    for a, b in zip(trainer.get_weights(), ref.weights):
        assert np.allclose(a, b, rtol=5e-3, atol=5e-5)


def test_requires_square_gpu_count(small_dataset, small_model):
    with pytest.raises(ConfigurationError):
        CAGNET2DTrainer(small_dataset, small_model, machine=dgx1(), num_gpus=8)


def test_requires_splittable_widths(small_dataset):
    # 4 GPUs -> 2x2 grid; a width-1 layer cannot split in 2
    model = GCNModelSpec((small_dataset.d0, 1))
    ds = small_dataset
    with pytest.raises(ConfigurationError):
        CAGNET2DTrainer(ds, model, machine=dgx1(), num_gpus=4)


def test_gemm_reduction_is_the_extra_cost():
    """§4.1's argument against column partitioning: with the features
    column-split, every GeMM needs a dense allreduce — a communication
    term the 1D row distribution does not have at all. On a workload
    whose features grow through the first layer (Arxiv-shaped, 128 ->
    512), that reduction dominates and 2D moves more dense bytes."""
    ds = load_dataset("arxiv", scale=0.02, seed=12)
    model = GCNModelSpec.paper_model(1, ds.d0, ds.num_classes)
    two_d = CAGNET2DTrainer(ds, model, machine=dgx_a100(), num_gpus=4, seed=12)
    one_d = CAGNETTrainer(ds, model, machine=dgx_a100(), num_gpus=4, seed=12)
    s2 = two_d.train_epoch()
    s1 = one_d.train_epoch()
    # the dense-output reductions exist only in the 2D schedule...
    z_reduce = sum(
        ev.nbytes for ev in s2.trace if "allreduce_z" in ev.name
    )
    assert z_reduce > 0
    assert not any("allreduce_z" in ev.name for ev in s1.trace)
    # ...and they are a material share of the 2D schedule's comm bytes
    # (not a rounding term): the dense matrix really is communicated.
    bytes_2d = sum(ev.nbytes for ev in s2.trace if ev.category == "comm")
    assert z_reduce > 0.15 * bytes_2d


def test_symbolic_epoch():
    ds = load_dataset("products", symbolic=True)
    model = GCNModelSpec.paper_model(1, ds.d0, ds.num_classes)
    trainer = CAGNET2DTrainer(ds, model, machine=dgx_a100(), num_gpus=4)
    stats = trainer.train_epoch()
    assert stats.loss is None
    assert stats.epoch_time > 0


def test_loss_decreases(small_dataset, small_model):
    trainer = CAGNET2DTrainer(small_dataset, small_model, machine=dgx1(),
                              num_gpus=4)
    stats = trainer.fit(6)
    assert stats[-1].loss < stats[0].loss
    with pytest.raises(ConfigurationError):
        trainer.fit(-2)


def test_evaluate_consistent_under_permutation(small_dataset, small_model):
    accs = []
    for permute in (False, True):
        trainer = CAGNET2DTrainer(small_dataset, small_model, machine=dgx1(),
                                  num_gpus=4, seed=12, permute=permute)
        trainer.fit(10)
        accs.append(trainer.evaluate("test"))
    assert accs[0] == pytest.approx(accs[1], abs=1e-6)
