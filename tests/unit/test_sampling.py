"""Neighbour sampling, explosion metric, mini-batch trainer."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.errors import ConfigurationError
from repro.nn import GCNModelSpec
from repro.sampling import (
    MiniBatchGCNTrainer,
    NeighborSampler,
    neighborhood_expansion,
)
from repro.sparse import CSRMatrix
from repro.sparse.normalize import gcn_normalize


@pytest.fixture(scope="module")
def graph():
    ds = load_dataset("cora", scale=0.3, learnable=True, seed=1)
    adj = gcn_normalize(ds.adjacency).transpose()
    return ds, adj


class TestNeighborSampler:
    def test_block_shapes_and_ordering(self, graph):
        _, adj = graph
        sampler = NeighborSampler(adj, fanouts=[4, 4])
        seeds = np.array([0, 5, 9])
        blocks = sampler.sample(seeds, rng=1)
        assert len(blocks) == 2
        # last block's destinations are the seeds
        assert np.array_equal(np.sort(blocks[-1].dst_nodes), np.sort(seeds))
        # chaining: dst of block l == src of block l+1
        assert np.array_equal(blocks[0].dst_nodes, blocks[1].src_nodes)
        # destination prefix convention
        for block in blocks:
            assert np.array_equal(block.src_nodes[: block.num_dst],
                                  block.dst_nodes)

    def test_fanout_respected(self, graph):
        _, adj = graph
        sampler = NeighborSampler(adj, fanouts=[3])
        blocks = sampler.sample(np.arange(20), rng=2)
        assert blocks[0].adjacency.row_nnz().max() <= 3

    def test_rows_are_mean_normalised(self, graph):
        _, adj = graph
        sampler = NeighborSampler(adj, fanouts=[4])
        block = sampler.sample(np.arange(10), rng=3)[0]
        sums = block.adjacency.to_dense().sum(axis=1)
        nz = block.adjacency.row_nnz() > 0
        assert np.allclose(sums[nz], 1.0, atol=1e-5)

    def test_deterministic_given_rng(self, graph):
        _, adj = graph
        sampler = NeighborSampler(adj, fanouts=[4, 4])
        a = sampler.sample(np.arange(8), rng=7)
        b = sampler.sample(np.arange(8), rng=7)
        assert np.array_equal(a[0].src_nodes, b[0].src_nodes)

    def test_validation(self, graph):
        _, adj = graph
        with pytest.raises(ConfigurationError):
            NeighborSampler(adj, fanouts=[])
        with pytest.raises(ConfigurationError):
            NeighborSampler(adj, fanouts=[0])
        with pytest.raises(ConfigurationError):
            NeighborSampler(CSRMatrix.empty((3, 4)), fanouts=[2])
        sampler = NeighborSampler(adj, fanouts=[2])
        with pytest.raises(ConfigurationError):
            sampler.sample(np.array([], dtype=np.int64))


class TestExpansion:
    def test_monotone_and_bounded(self, graph):
        ds, adj = graph
        sizes = neighborhood_expansion(adj, np.arange(8), hops=3)
        assert len(sizes) == 4
        assert all(b >= a for a, b in zip(sizes, sizes[1:]))
        assert sizes[-1] <= ds.n

    def test_explosion_on_dense_graph(self):
        """The intro's claim: a handful of seeds reaches almost the whole
        graph within a couple of hops on a Reddit-density graph."""
        ds = load_dataset("reddit", scale=0.01, seed=3)
        adj = gcn_normalize(ds.adjacency).transpose()
        sizes = neighborhood_expansion(adj, np.arange(16), hops=2)
        assert sizes[2] > 0.9 * ds.n

    def test_path_graph_grows_linearly(self):
        n = 50
        dense = np.zeros((n, n), dtype=np.float32)
        for i in range(n - 1):
            dense[i, i + 1] = dense[i + 1, i] = 1.0
        adj = CSRMatrix.from_dense(dense)
        sizes = neighborhood_expansion(adj, np.array([0]), hops=5)
        assert sizes == [1, 2, 3, 4, 5, 6]

    def test_zero_hops(self, graph):
        _, adj = graph
        assert neighborhood_expansion(adj, np.array([3, 4]), hops=0) == [2]

    def test_validation(self, graph):
        _, adj = graph
        with pytest.raises(ConfigurationError):
            neighborhood_expansion(adj, np.array([0]), hops=-1)


class TestMiniBatchTrainer:
    def test_learns(self, graph):
        ds, _ = graph
        model = GCNModelSpec.build(ds.d0, 16, ds.num_classes, 2)
        trainer = MiniBatchGCNTrainer(ds, model, fanouts=[5, 5],
                                      batch_size=64, seed=2)
        stats = trainer.fit(8)
        assert stats[-1].loss < 0.5 * stats[0].loss
        assert trainer.evaluate("test") > 2.0 / ds.num_classes

    def test_epoch_stats_protocol(self, graph):
        ds, _ = graph
        model = GCNModelSpec.build(ds.d0, 8, ds.num_classes, 2)
        trainer = MiniBatchGCNTrainer(ds, model, batch_size=128, seed=3)
        stats = trainer.train_epoch()
        assert stats.epoch_time > 0
        assert stats.breakdown.totals.get("spmm", 0) > 0

    def test_composes_with_training_loop(self, graph):
        from repro.training import TrainingLoop

        ds, _ = graph
        model = GCNModelSpec.build(ds.d0, 8, ds.num_classes, 2)
        trainer = MiniBatchGCNTrainer(ds, model, batch_size=128, seed=4)
        loop = TrainingLoop(trainer, max_epochs=3, eval_every=3)
        history = loop.run()
        assert history.epochs == 3
        assert history.best_val_accuracy is not None

    def test_validation(self, graph):
        ds, _ = graph
        model = GCNModelSpec.build(ds.d0, 8, ds.num_classes, 2)
        with pytest.raises(ConfigurationError):
            MiniBatchGCNTrainer(ds, model, batch_size=0)
        with pytest.raises(ConfigurationError):
            MiniBatchGCNTrainer(ds, model, fanouts=[5])
        bad_model = GCNModelSpec.build(3, 8, ds.num_classes, 2)
        with pytest.raises(ConfigurationError):
            MiniBatchGCNTrainer(ds, bad_model)

    def test_sampled_epoch_does_more_work_than_full_batch(self, graph):
        """Per-epoch touched-vertex volume exceeds n once fanouts and
        hops multiply — the neighbourhood-explosion work blow-up."""
        ds, adj = graph
        sampler = NeighborSampler(adj, fanouts=[10, 10])
        train_ids = np.nonzero(ds.train_mask)[0]
        touched = 0
        rng = np.random.default_rng(0)
        for start in range(0, train_ids.size, 32):
            seeds = train_ids[start : start + 32]
            blocks = sampler.sample(seeds, rng=rng)
            touched += blocks[0].num_src
        assert touched > ds.n  # a full-batch epoch touches each vertex once
