"""GCN normalisation (eq. 2) and self loops."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse import COOMatrix, add_self_loops, gcn_normalize


@pytest.fixture()
def triangle():
    # 0->1, 1->2, 2->0 plus 0->2
    return COOMatrix((3, 3), rows=[0, 1, 2, 0], cols=[1, 2, 0, 2])


def test_in_degree_columns_sum_to_one(triangle):
    a_hat = gcn_normalize(triangle, method="in_degree").to_dense()
    col_sums = a_hat.sum(axis=0)
    assert np.allclose(col_sums, 1.0)


def test_in_degree_zero_columns_untouched():
    coo = COOMatrix((3, 3), rows=[0], cols=[1])  # column 2 has no in-edges
    a_hat = gcn_normalize(coo).to_dense()
    assert a_hat[0, 1] == pytest.approx(1.0)
    assert a_hat[:, 2].sum() == 0.0


def test_in_degree_respects_weights():
    coo = COOMatrix((2, 2), rows=[0, 1], cols=[1, 1], vals=[1.0, 3.0])
    a_hat = gcn_normalize(coo).to_dense()
    assert a_hat[0, 1] == pytest.approx(0.25)
    assert a_hat[1, 1] == pytest.approx(0.75)


def test_transpose_rows_average(triangle):
    """A_hat^T H averages in-neighbour features: each row of A_hat^T
    sums to one (for vertices with in-edges)."""
    a_hat_t = gcn_normalize(triangle).transpose().to_dense()
    assert np.allclose(a_hat_t.sum(axis=1), 1.0)


def test_symmetric_normalisation(triangle):
    a_hat = gcn_normalize(triangle, method="symmetric").to_dense()
    # eigenvalue bound: symmetric normalised adjacency has spectral
    # radius <= 1 for the symmetrised graph; here just check scaling
    dense = triangle.to_dense()
    deg = 0.5 * (dense.sum(0) + dense.sum(1))
    for u, v in np.argwhere(dense > 0):
        expected = dense[u, v] / np.sqrt(deg[u] * deg[v])
        assert a_hat[u, v] == pytest.approx(expected, rel=1e-5)


def test_unknown_method(triangle):
    with pytest.raises(ValueError):
        gcn_normalize(triangle, method="rowsum")


def test_requires_square():
    coo = COOMatrix((2, 3), rows=[0], cols=[2])
    with pytest.raises(ShapeError):
        gcn_normalize(coo)


def test_add_self_loops():
    coo = COOMatrix((3, 3), rows=[0], cols=[1])
    looped = add_self_loops(coo, weight=2.0).to_dense()
    assert looped[0, 0] == looped[1, 1] == looped[2, 2] == pytest.approx(2.0)
    assert looped[0, 1] == pytest.approx(1.0)


def test_add_self_loops_merges_existing():
    coo = COOMatrix((2, 2), rows=[0], cols=[0], vals=[1.0])
    looped = add_self_loops(coo, weight=1.0).to_dense()
    assert looped[0, 0] == pytest.approx(2.0)


def test_add_self_loops_requires_square():
    with pytest.raises(ShapeError):
        add_self_loops(COOMatrix((2, 3), rows=[0], cols=[1]))
