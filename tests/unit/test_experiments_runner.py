"""Experiment harness plumbing."""

import pytest

from repro.core import MGGCNTrainer
from repro.errors import DeviceOutOfMemoryError
from repro.experiments import ExperimentResult, median_epoch_time, run_or_oom
from repro.experiments.runner import last_epoch_stats
from repro.hardware import dgx1
from repro.nn import GCNModelSpec


class TestExperimentResult:
    def test_set_get(self):
        r = ExperimentResult("t")
        r.set("row", "col", 1.5)
        assert r.get("row", "col") == 1.5
        assert r.get("missing", "col") is None

    def test_format_cell(self):
        r = ExperimentResult("t")
        r.set("a", "b", 0.123456)
        r.set("a", "oom", None)
        assert r.format_cell("a", "b") == "0.123"
        assert r.format_cell("a", "oom") == "OOM"

    def test_rows(self):
        r = ExperimentResult("t")
        r.set("x", "c", 1.0)
        r.set("y", "c", 2.0)
        assert r.rows() == ["x", "y"]


class TestRunners:
    def test_median_epoch_time(self, small_dataset, small_model):
        t = median_epoch_time(
            lambda: MGGCNTrainer(small_dataset, small_model, num_gpus=1),
            warmup=1, epochs=3,
        )
        assert t > 0

    def test_run_or_oom_success(self, small_dataset, small_model):
        t = run_or_oom(
            lambda: MGGCNTrainer(small_dataset, small_model, num_gpus=1)
        )
        assert t is not None and t > 0

    def test_run_or_oom_catches_oom(self):
        from repro.datasets import load_dataset

        ds = load_dataset("proteins", symbolic=True)
        model = GCNModelSpec.paper_model(1, ds.d0, ds.num_classes)
        t = run_or_oom(
            lambda: MGGCNTrainer(ds, model, machine=dgx1(), num_gpus=1)
        )
        assert t is None

    def test_run_or_oom_propagates_other_errors(self, small_dataset):
        def boom():
            raise RuntimeError("not an OOM")

        with pytest.raises(RuntimeError):
            run_or_oom(boom)

    def test_last_epoch_stats(self, small_dataset, small_model):
        stats = last_epoch_stats(
            lambda: MGGCNTrainer(small_dataset, small_model, num_gpus=2),
            epochs=2,
        )
        assert stats.epoch_time > 0
        assert stats.loss is not None
