"""Unit tests: fault plans, the injector, and failure-aware collectives."""

import numpy as np
import pytest

from repro.comm.collectives import Communicator
from repro.device.engine import Engine, SimContext
from repro.errors import (
    CollectiveMismatchError,
    CollectiveTimeoutError,
    ConfigurationError,
    DeviceFailedError,
)
from repro.hardware import dgx1
from repro.resilience import (
    CollectiveFault,
    DeviceFailure,
    FaultInjector,
    FaultPlan,
    LinkDegradation,
    RecoveryPolicy,
    RetryPolicy,
    StragglerSlowdown,
    remap_plan,
)


# -- fault plans -------------------------------------------------------------


class TestFaultPlan:
    def test_empty_plan(self):
        plan = FaultPlan.empty()
        assert plan.is_empty
        assert plan.num_faults == 0

    def test_non_empty_plan_counts(self):
        plan = FaultPlan(
            device_failures=(DeviceFailure(rank=1, time=0.5),),
            stragglers=(StragglerSlowdown(rank=0, factor=2.0, start=0.0, end=1.0),),
        )
        assert not plan.is_empty
        assert plan.num_faults == 2

    def test_duplicate_device_failure_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(
                device_failures=(
                    DeviceFailure(rank=1, time=0.5),
                    DeviceFailure(rank=1, time=0.7),
                )
            )

    @pytest.mark.parametrize("factor", [0.0, -0.5, 1.5])
    def test_bad_degradation_factor(self, factor):
        with pytest.raises(ConfigurationError):
            LinkDegradation(factor=factor, start=0.0, end=1.0)

    def test_straggler_factor_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            StragglerSlowdown(rank=0, factor=0.5, start=0.0, end=1.0)

    def test_collective_fault_window_validation(self):
        with pytest.raises(ConfigurationError):
            CollectiveFault(start=1.0, end=1.0)
        with pytest.raises(ConfigurationError):
            CollectiveFault(start=0.0, end=1.0, failures=0)

    def test_random_plan_deterministic(self):
        kwargs = dict(
            num_gpus=8,
            horizon=10.0,
            device_failure_rate=0.3,
            link_degradation_rate=0.5,
            straggler_rate=0.5,
            collective_fault_rate=0.5,
        )
        a = FaultPlan.random(seed=42, **kwargs)
        b = FaultPlan.random(seed=42, **kwargs)
        c = FaultPlan.random(seed=43, **kwargs)
        assert a == b
        assert a != c

    def test_random_plan_leaves_a_survivor(self):
        plan = FaultPlan.random(
            num_gpus=4, horizon=10.0, seed=7, device_failure_rate=100.0
        )
        assert len(plan.device_failures) <= 3


# -- the injector ------------------------------------------------------------


class TestFaultInjector:
    def test_trivial_without_plan(self):
        assert FaultInjector().is_trivial
        assert FaultInjector(FaultPlan()).is_trivial

    def test_check_device_raises_after_failure_time(self):
        inj = FaultInjector(
            FaultPlan(device_failures=(DeviceFailure(rank=1, time=0.5),))
        )
        inj.check_device("gpu1", 1, 0.4)  # still alive
        with pytest.raises(DeviceFailedError) as exc_info:
            inj.check_device("gpu1", 1, 0.6)
        assert exc_info.value.rank == 1
        assert exc_info.value.failed_at == 0.5
        inj.check_device("gpu0", 0, 10.0)  # other ranks unaffected

    def test_first_failure_and_survivors(self):
        inj = FaultInjector(
            FaultPlan(
                device_failures=(
                    DeviceFailure(rank=2, time=0.5),
                    DeviceFailure(rank=0, time=0.3),
                )
            )
        )
        first = inj.first_failure_among([0, 1, 2], before=1.0)
        assert first is not None and first.rank == 0 and first.time == 0.3
        assert inj.first_failure_among([1], before=1.0) is None
        assert inj.surviving_ranks([0, 1, 2], 0.4) == [1, 2]

    def test_compute_factor_stacks_windows(self):
        inj = FaultInjector(
            FaultPlan(
                stragglers=(
                    StragglerSlowdown(rank=0, factor=2.0, start=0.0, end=1.0),
                    StragglerSlowdown(rank=0, factor=3.0, start=0.5, end=1.0),
                )
            )
        )
        assert inj.compute_factor(0, 0.25) == 2.0
        assert inj.compute_factor(0, 0.75) == 6.0
        assert inj.compute_factor(0, 1.5) == 1.0
        assert inj.compute_factor(1, 0.25) == 1.0

    def test_bandwidth_factor_takes_worst_window(self):
        inj = FaultInjector(
            FaultPlan(
                link_degradations=(
                    LinkDegradation(factor=0.5, start=0.0, end=1.0),
                    LinkDegradation(factor=0.25, start=0.5, end=1.0, ranks=(3,)),
                )
            )
        )
        assert inj.bandwidth_factor(0.25) == 0.5
        assert inj.bandwidth_factor(0.75, ranks=[0, 3]) == 0.25
        assert inj.bandwidth_factor(0.75, ranks=[0, 1]) == 0.5
        assert inj.bandwidth_factor(2.0) == 1.0

    def test_collective_budget_consumed_and_reset(self):
        inj = FaultInjector(
            FaultPlan(
                collective_faults=(CollectiveFault(start=0.0, end=1.0, failures=2),)
            )
        )
        assert inj.take_collective_fault(0.1)
        assert inj.take_collective_fault(0.2)
        assert not inj.take_collective_fault(0.3)  # budget spent
        assert not inj.take_collective_fault(1.5)  # outside window
        assert inj.collective_budget_remaining() == [0]
        inj.reset()
        assert inj.collective_budget_remaining() == [2]
        assert inj.take_collective_fault(0.1)


# -- engine hooks ------------------------------------------------------------


class TestEngineFaults:
    def test_straggler_dilates_compute(self):
        plan = FaultPlan(
            stragglers=(StragglerSlowdown(rank=0, factor=2.0, start=0.0, end=1.0),)
        )
        ctx = SimContext(dgx1(), num_gpus=2, fault_injector=FaultInjector(plan))
        ev0 = ctx.engine.submit(
            ctx.device(0).compute_stream, "k", "gemm", 1e-3
        )
        ev1 = ctx.engine.submit(
            ctx.device(1).compute_stream, "k", "gemm", 1e-3
        )
        assert ev0.time == pytest.approx(2e-3)
        assert ev1.time == pytest.approx(1e-3)

    def test_dead_device_raises_on_submit(self):
        plan = FaultPlan(device_failures=(DeviceFailure(rank=0, time=0.5),))
        ctx = SimContext(dgx1(), num_gpus=2, fault_injector=FaultInjector(plan))
        stream = ctx.device(0).compute_stream
        ctx.engine.submit(stream, "ok", "gemm", 1e-3)
        stream.ready_time = 0.6
        with pytest.raises(DeviceFailedError):
            ctx.engine.submit(stream, "dead", "gemm", 1e-3)

    def test_empty_plan_is_bit_identical_to_no_injector(self):
        durations = [1e-3, 2.5e-4, 7.1e-6, 3e-5]
        bare = Engine()
        hooked = Engine(fault_injector=FaultInjector())
        ctx_a = SimContext(dgx1(), num_gpus=1)
        ctx_b = SimContext(dgx1(), num_gpus=1, fault_injector=FaultInjector())
        for d in durations:
            ea = ctx_a.engine.submit(ctx_a.device(0).compute_stream, "k", "x", d)
            eb = ctx_b.engine.submit(ctx_b.device(0).compute_stream, "k", "x", d)
            assert ea.time == eb.time  # exact, not approx
        assert bare.trace == hooked.trace == []


# -- failure-aware collectives ----------------------------------------------


def _tensor_pair(ctx, value=1.0):
    return {
        r: ctx.device(r).from_numpy(
            np.full((4, 4), value, dtype=np.float32), name=f"t{r}"
        )
        for r in ctx.ranks
    }


class TestFailureAwareCollectives:
    def test_retry_backoff_accounting(self):
        """Two transient faults cost two timed-out attempts + backoff."""
        plan = FaultPlan(
            collective_faults=(CollectiveFault(start=0.0, end=1.0, failures=2),)
        )
        retry = RetryPolicy(max_retries=3, backoff_base=1e-4, backoff_multiplier=2.0)
        timeout = 5e-4
        ctx = SimContext(dgx1(), num_gpus=2, fault_injector=FaultInjector(plan))
        comm = Communicator(ctx, timeout=timeout, retry=retry)
        events = comm.allreduce(_tensor_pair(ctx), name="ar")

        # the fault-free duration of the identical op, measured separately.
        ref_ctx = SimContext(dgx1(), num_gpus=2)
        ref_end = Communicator(ref_ctx, timeout=timeout, retry=retry).allreduce(
            _tensor_pair(ref_ctx), name="ar"
        )[0].time

        expected = (
            (timeout + retry.backoff(0)) + (timeout + retry.backoff(1)) + ref_end
        )
        assert events[0].time == pytest.approx(expected, rel=1e-12)
        names = [ev.name for ev in ctx.engine.trace]
        assert names.count("ar/retry0") == 2  # one per rank
        assert names.count("ar/retry1") == 2
        assert names.count("ar") == 2
        # data still correct after retries
        assert np.allclose(
            ctx.device(0).from_numpy(np.zeros((1,)), name="probe").data, 0
        )

    def test_retry_budget_exhaustion_raises(self):
        plan = FaultPlan(
            collective_faults=(CollectiveFault(start=0.0, end=1.0, failures=10),)
        )
        ctx = SimContext(dgx1(), num_gpus=2, fault_injector=FaultInjector(plan))
        comm = Communicator(
            ctx, timeout=1e-4, retry=RetryPolicy(max_retries=2, backoff_base=1e-5)
        )
        with pytest.raises(CollectiveTimeoutError) as exc_info:
            comm.allreduce(_tensor_pair(ctx), name="ar")
        assert exc_info.value.attempts == 3  # initial + 2 retries
        assert "ar" in str(exc_info.value)
        assert any(ev.name == "ar/timeout" for ev in ctx.engine.trace)

    def test_dead_peer_detected_with_watchdog(self):
        plan = FaultPlan(device_failures=(DeviceFailure(rank=1, time=0.0),))
        ctx = SimContext(dgx1(), num_gpus=4, fault_injector=FaultInjector(plan))
        comm = Communicator(ctx, timeout=1e-3)
        with pytest.raises(DeviceFailedError) as exc_info:
            comm.allreduce(_tensor_pair(ctx))
        err = exc_info.value
        assert err.rank == 1
        assert err.detected_at == pytest.approx(err.failed_at + 1e-3)
        timeouts = [ev for ev in ctx.engine.trace if ev.name.endswith("/timeout")]
        assert len(timeouts) == 4  # charged on every participant's stream

    def test_link_degradation_slows_bandwidth_term_only(self):
        window = LinkDegradation(factor=0.5, start=0.0, end=1.0)
        ctx = SimContext(
            dgx1(),
            num_gpus=2,
            fault_injector=FaultInjector(FaultPlan(link_degradations=(window,))),
        )
        slow = Communicator(ctx).allreduce(_tensor_pair(ctx))[0].time
        ref_ctx = SimContext(dgx1(), num_gpus=2)
        fast = Communicator(ref_ctx).allreduce(_tensor_pair(ref_ctx))[0].time
        assert slow > fast
        # the slowdown is bounded by doubling the *whole* op (only the
        # bytes-on-the-wire term is rescaled, not latency/overhead).
        assert slow < 2 * fast

    def test_rendezvous_mismatch_lists_ranks(self):
        ctx = SimContext(dgx1(), num_gpus=2)
        comm = Communicator(ctx)
        src = ctx.device(0).from_numpy(np.ones((4, 4), dtype=np.float32), name="s")
        with pytest.raises(CollectiveMismatchError) as exc_info:
            comm.broadcast(0, src, {})  # rank 1 never posts a buffer
        assert "rank 1: <absent>" in str(exc_info.value)


# -- policies and plan remapping ---------------------------------------------


class TestPolicies:
    def test_retry_backoff_schedule(self):
        p = RetryPolicy(max_retries=3, backoff_base=1e-4, backoff_multiplier=2.0)
        assert p.backoff(0) == pytest.approx(1e-4)
        assert p.backoff(2) == pytest.approx(4e-4)
        assert p.total_backoff(3) == pytest.approx(7e-4)

    def test_retry_policy_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_multiplier=0.5)

    def test_recovery_policy_validation(self):
        with pytest.raises(ConfigurationError):
            RecoveryPolicy(checkpoint_every=0)
        with pytest.raises(ConfigurationError):
            RecoveryPolicy(host_bandwidth=0.0)

    def test_remap_plan_renumbers_survivors(self):
        plan = FaultPlan(
            device_failures=(
                DeviceFailure(rank=1, time=0.5),
                DeviceFailure(rank=3, time=0.9),
            ),
            stragglers=(StragglerSlowdown(rank=3, factor=2.0, start=0.0, end=1.0),),
            link_degradations=(
                LinkDegradation(factor=0.5, start=0.0, end=1.0, ranks=(1, 3)),
            ),
            collective_faults=(CollectiveFault(start=0.0, end=1.0, failures=2),),
        )
        # rank 1 died: survivors [0, 2, 3] become new ranks [0, 1, 2].
        out = remap_plan(plan, [0, 2, 3], collective_budget=[1])
        assert out.device_failures == (DeviceFailure(rank=2, time=0.9),)
        assert out.stragglers[0].rank == 2
        assert out.link_degradations[0].ranks == (2,)
        assert out.collective_faults[0].failures == 1
        # spent budget drops the window entirely
        assert remap_plan(plan, [0, 2, 3], collective_budget=[0]).collective_faults == ()
