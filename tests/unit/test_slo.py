"""Unit tests for repro.telemetry.slo: burn rates, breaches, anomalies."""

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import (
    SLO,
    EpochTimeAnomalyDetector,
    MetricsRegistry,
    SLOMonitor,
    default_serving_slos,
)


def _latency_slo(**overrides):
    kwargs = dict(
        name="lat", threshold=1.0, comparison="le", budget=0.1,
        windows=(1.0, 4.0), burn_threshold=1.0, min_samples=4,
    )
    kwargs.update(overrides)
    return SLO(**kwargs)


class TestSLO:
    def test_is_good_le_and_ge(self):
        assert _latency_slo().is_good(0.5)
        assert not _latency_slo().is_good(1.5)
        hr = _latency_slo(comparison="ge", threshold=0.9)
        assert hr.is_good(0.95)
        assert not hr.is_good(0.5)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"comparison": "between"},
            {"budget": 0.0},
            {"budget": 1.5},
            {"windows": ()},
            {"windows": (1.0, -1.0)},
            {"min_samples": 0},
        ],
    )
    def test_validation(self, overrides):
        with pytest.raises(ConfigurationError):
            _latency_slo(**overrides)


class TestSLOMonitor:
    def test_burn_rate_is_bad_fraction_over_budget(self):
        mon = SLOMonitor([_latency_slo()])
        # 2 bad out of 4 in-window -> 0.5 bad fraction / 0.1 budget = 5.
        for t, v in [(0.1, 0.5), (0.2, 2.0), (0.3, 0.5), (0.4, 2.0)]:
            mon.observe("lat", v, t)
        assert mon.burn_rate("lat", 1.0, 0.4) == pytest.approx(5.0)

    def test_breach_fires_once_on_rising_edge(self):
        mon = SLOMonitor([_latency_slo()])
        seen = []
        mon.on_breach(seen.append)
        t = 0.0
        for _ in range(10):
            t += 0.1
            mon.observe("lat", 5.0, t)  # every sample bad
        assert len(seen) == 1
        assert seen[0].slo == "lat"
        assert mon.is_breaching("lat")
        assert all(r >= 1.0 for r in seen[0].burn_rates)
        # recovery clears the edge; a fresh breach fires again.
        for _ in range(200):
            t += 0.1
            mon.observe("lat", 0.1, t)
        assert not mon.is_breaching("lat")
        for _ in range(10):
            t += 0.1
            mon.observe("lat", 5.0, t)
        assert len(seen) == 2

    def test_min_samples_guards_cold_start(self):
        mon = SLOMonitor([_latency_slo(min_samples=8)])
        for i in range(7):
            assert mon.observe("lat", 5.0, 0.1 * (i + 1)) is None
        assert mon.observe("lat", 5.0, 0.8) is not None

    def test_short_window_blip_does_not_breach_alone(self):
        # all windows must burn: a blip inside the 1 s window while the
        # 4 s window is still healthy stays quiet.
        mon = SLOMonitor([_latency_slo(min_samples=1)])
        t = 0.0
        for _ in range(35):
            t += 0.1
            mon.observe("lat", 0.1, t)
        for _ in range(3):
            t += 0.1
            breach = mon.observe("lat", 5.0, t)
        assert breach is None
        assert not mon.is_breaching("lat")

    def test_observe_outcomes_batched(self):
        mon = SLOMonitor([_latency_slo(min_samples=1)])
        assert mon.observe_outcomes("lat", 0.5, bad=10.0, total=10.0)
        with pytest.raises(ConfigurationError):
            mon.observe_outcomes("lat", 0.6, bad=3.0, total=2.0)
        assert mon.observe_outcomes("lat", 0.7, bad=0.0, total=0.0) is None

    def test_registry_metrics(self):
        registry = MetricsRegistry()
        mon = SLOMonitor([_latency_slo()], registry=registry)
        t = 0.0
        for _ in range(10):
            t += 0.1
            mon.observe("lat", 5.0, t)
        flat = registry.flatten()
        assert flat['repro_slo_breaches_total{slo="lat"}'] == 1.0
        assert flat['repro_slo_burn_rate{slo="lat",window="1"}'] >= 1.0

    def test_duplicate_slo_rejected(self):
        with pytest.raises(ConfigurationError):
            SLOMonitor([_latency_slo(), _latency_slo()])

    def test_contains(self):
        mon = SLOMonitor([_latency_slo()])
        assert "lat" in mon
        assert "other" not in mon


class TestDefaultServingSlos:
    def test_standard_set(self):
        slos = {s.name: s for s in default_serving_slos(0.002,
                                                        hit_rate_target=0.9)}
        assert set(slos) == {
            "serving_latency", "serving_hit_rate", "serving_degraded"
        }
        assert slos["serving_latency"].budget == 0.01  # p99 objective
        assert slos["serving_hit_rate"].budget == pytest.approx(0.1)

    def test_hit_rate_optional_and_validated(self):
        names = {s.name for s in default_serving_slos(0.002)}
        assert "serving_hit_rate" not in names
        with pytest.raises(ConfigurationError):
            default_serving_slos(0.002, hit_rate_target=1.5)


class TestEpochAnomalies:
    def test_flags_slow_epoch_only(self):
        det = EpochTimeAnomalyDetector(window=8, min_epochs=4)
        for e in range(6):
            assert det.update(e, 1.0 + 0.001 * (e % 2)) is None
        fast = det.update(6, 0.5)
        assert fast is None  # fast epochs are good news
        slow = det.update(7, 3.0)
        assert slow is not None
        assert slow.epoch == 7
        assert slow.z > det.threshold
        assert det.anomalies == [slow]

    def test_identical_epochs_never_flag(self):
        # the deterministic simulator's epochs are bit-identical: the
        # MAD floor must keep z at exactly 0, never infinity.
        det = EpochTimeAnomalyDetector(min_epochs=3)
        for e in range(20):
            assert det.update(e, 0.125) is None

    def test_regime_change_stops_flagging(self):
        det = EpochTimeAnomalyDetector(window=4, min_epochs=3, threshold=3.5)
        for e in range(6):
            det.update(e, 1.0)
        det.update(6, 10.0)  # flagged
        assert len(det.anomalies) == 1
        # new regime at 10 s: once the window is full of it, quiet again.
        for e in range(7, 12):
            det.update(e, 10.0)
        assert len(det.anomalies) <= 2

    @pytest.mark.parametrize(
        "kwargs",
        [{"window": 1}, {"min_epochs": 1}, {"threshold": 0.0}],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            EpochTimeAnomalyDetector(**kwargs)
