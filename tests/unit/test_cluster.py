"""Multi-node cluster model: topology, NIC sharing, the scaling wall."""

import pytest

from repro.config import GB
from repro.core import MGGCNTrainer
from repro.datasets import load_dataset
from repro.errors import TopologyError
from repro.hardware import Topology, dgx1, dgx_a100, multi_node_cluster
from repro.hardware.spec import LinkSpec, MachineSpec
from repro.nn import GCNModelSpec


class TestClusterConstruction:
    def test_basic(self):
        cluster = multi_node_cluster(4, dgx1())
        assert cluster.num_gpus == 32
        assert cluster.num_nodes == 4
        assert cluster.node_size == 8
        assert cluster.node_of(0) == 0
        assert cluster.node_of(15) == 1
        assert cluster.node_of(31) == 3

    def test_intra_node_links_replicated(self):
        cluster = multi_node_cluster(2, dgx1())
        # GPU 8 (node 1's gpu 0) has the same 6-link budget as GPU 0
        assert sum(l.count for l in cluster.links_from(8)) == 6
        # and its links stay inside node 1
        for link in cluster.links_from(8):
            assert 8 <= link.dst < 16

    def test_switched_node_template(self):
        cluster = multi_node_cluster(2, dgx_a100())
        assert cluster.has_switch
        assert cluster.num_gpus == 16

    def test_single_node_cluster_is_plain(self):
        cluster = multi_node_cluster(1, dgx1())
        assert cluster.num_nodes == 1
        assert cluster.inter_node_bandwidth == 0.0

    def test_validation(self):
        with pytest.raises(TopologyError):
            multi_node_cluster(0, dgx1())
        nested = multi_node_cluster(2, dgx1())
        with pytest.raises(TopologyError):
            multi_node_cluster(2, nested)

    def test_cross_node_explicit_link_rejected(self):
        gpu = dgx1().gpu
        with pytest.raises(TopologyError):
            MachineSpec(
                name="bad", gpu=gpu, num_gpus=4, node_size=2,
                inter_node_bandwidth=25 * GB,
                links=(LinkSpec(src=0, dst=3, bandwidth=1.0),),
            )

    def test_multi_node_requires_nic(self):
        gpu = dgx1().gpu
        with pytest.raises(TopologyError):
            MachineSpec(name="bad", gpu=gpu, num_gpus=4, node_size=2)


class TestClusterTopology:
    def test_nic_shared_among_participants(self):
        cluster = multi_node_cluster(2, dgx1(), nic_bandwidth=25 * GB)
        topo = Topology(cluster)
        intra = topo.collective_bandwidth(range(8))
        cross = topo.collective_bandwidth(range(16))
        assert intra == pytest.approx(150 * GB)
        assert cross == pytest.approx(25 * GB / 8)  # NIC / 8 GPUs per node

    def test_partial_node_participation(self):
        cluster = multi_node_cluster(2, dgx1(), nic_bandwidth=25 * GB)
        topo = Topology(cluster)
        # 2 GPUs per node -> each pair shares the NIC two ways
        bw = topo.collective_bandwidth([0, 1, 8, 9])
        assert bw == pytest.approx(25 * GB / 2)

    def test_cross_node_p2p(self):
        cluster = multi_node_cluster(2, dgx1(), nic_bandwidth=25 * GB)
        topo = Topology(cluster)
        assert topo.p2p_bandwidth(0, 8) == pytest.approx(25 * GB)
        assert topo.p2p_latency(0, 8) == pytest.approx(5e-6)

    def test_cross_node_bisection(self):
        cluster = multi_node_cluster(4, dgx1(), nic_bandwidth=25 * GB)
        topo = Topology(cluster)
        bw = topo.bisection_bandwidth(range(16), range(16, 32))
        assert bw == pytest.approx(2 * 25 * GB)


class TestScalingWall:
    def test_scaling_blocked_beyond_a_node(self):
        """The paper's motivating claim: full-batch GNN training does
        not scale past a single machine — crossing the node boundary
        makes the epoch *slower* despite doubling the GPUs."""
        cluster = multi_node_cluster(4, dgx1())
        ds = load_dataset("reddit", symbolic=True)
        model = GCNModelSpec.paper_model(1, ds.d0, ds.num_classes)

        def epoch(P):
            return MGGCNTrainer(
                ds, model, machine=cluster, num_gpus=P
            ).train_epoch().epoch_time

        t8, t16, t32 = epoch(8), epoch(16), epoch(32)
        assert t16 > 2 * t8  # the wall
        assert t32 > 2 * t8  # more nodes do not recover it
