"""Unit tests: atomic, checksummed checkpoints."""

import os
import zipfile

import numpy as np
import pytest

from repro.core.trainer import MGGCNTrainer
from repro.errors import CheckpointError
from repro.nn.checkpoint import load_checkpoint, save_checkpoint


@pytest.fixture()
def trained(small_dataset, small_model):
    trainer = MGGCNTrainer(small_dataset, small_model, num_gpus=2)
    trainer.fit(2)
    return trainer


class TestAtomicWrite:
    def test_round_trip(self, trained, small_dataset, small_model, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trained, path)
        fresh = MGGCNTrainer(small_dataset, small_model, num_gpus=2)
        load_checkpoint(fresh, path)
        for a, b in zip(trained.get_weights(), fresh.get_weights()):
            assert (a == b).all()
        assert fresh.epochs_trained == trained.epochs_trained

    def test_no_temp_files_left_behind(self, trained, tmp_path):
        save_checkpoint(trained, tmp_path / "ckpt.npz")
        leftovers = [f for f in os.listdir(tmp_path) if f != "ckpt.npz"]
        assert leftovers == []

    def test_bare_path_gets_npz_suffix(self, trained, tmp_path):
        save_checkpoint(trained, tmp_path / "ckpt")
        assert (tmp_path / "ckpt.npz").exists()

    def test_overwrite_preserves_old_on_failure(
        self, trained, tmp_path, monkeypatch
    ):
        """A failed save never clobbers the existing checkpoint."""
        import repro.nn.checkpoint as ckpt_mod

        path = tmp_path / "ckpt.npz"
        save_checkpoint(trained, path)
        good = path.read_bytes()

        def disk_full(*args, **kwargs):
            raise OSError("no space left on device")

        monkeypatch.setattr(ckpt_mod.np, "savez_compressed", disk_full)
        with pytest.raises(OSError):
            save_checkpoint(trained, path)
        monkeypatch.undo()
        assert path.read_bytes() == good
        leftovers = [f for f in os.listdir(tmp_path) if f != "ckpt.npz"]
        assert leftovers == []


class TestChecksum:
    def test_checksum_stored(self, trained, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trained, path)
        with np.load(path) as bundle:
            assert "checksum_sha256" in bundle.files

    def test_corruption_detected(
        self, trained, small_dataset, small_model, tmp_path
    ):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trained, path)
        # flip bits inside one stored array while keeping the zip valid
        with np.load(path) as bundle:
            payload = {k: bundle[k].copy() for k in bundle.files}
        payload["w0"][0, 0] += 1.0
        np.savez_compressed(path, **payload)
        fresh = MGGCNTrainer(small_dataset, small_model, num_gpus=2)
        with pytest.raises(CheckpointError, match="checksum"):
            load_checkpoint(fresh, path)

    def test_legacy_checkpoint_without_checksum_loads(
        self, trained, small_dataset, small_model, tmp_path
    ):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trained, path)
        with np.load(path) as bundle:
            payload = {
                k: bundle[k].copy()
                for k in bundle.files
                if k != "checksum_sha256"
            }
        np.savez_compressed(path, **payload)  # old-writer format
        fresh = MGGCNTrainer(small_dataset, small_model, num_gpus=2)
        load_checkpoint(fresh, path)
        for a, b in zip(trained.get_weights(), fresh.get_weights()):
            assert (a == b).all()

    def test_checkpoint_is_a_valid_zip(self, trained, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trained, path)
        assert zipfile.is_zipfile(path)
