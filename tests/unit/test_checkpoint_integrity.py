"""Unit tests: atomic, checksummed checkpoints."""

import os
import zipfile

import numpy as np
import pytest

from repro.core.trainer import MGGCNTrainer
from repro.errors import CheckpointError, ConfigurationError
from repro.nn.checkpoint import (
    load_checkpoint,
    load_weights,
    save_checkpoint,
    save_weights,
)


@pytest.fixture()
def trained(small_dataset, small_model):
    trainer = MGGCNTrainer(small_dataset, small_model, num_gpus=2)
    trainer.fit(2)
    return trainer


class TestAtomicWrite:
    def test_round_trip(self, trained, small_dataset, small_model, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trained, path)
        fresh = MGGCNTrainer(small_dataset, small_model, num_gpus=2)
        load_checkpoint(fresh, path)
        for a, b in zip(trained.get_weights(), fresh.get_weights()):
            assert (a == b).all()
        assert fresh.epochs_trained == trained.epochs_trained

    def test_no_temp_files_left_behind(self, trained, tmp_path):
        save_checkpoint(trained, tmp_path / "ckpt.npz")
        leftovers = [f for f in os.listdir(tmp_path) if f != "ckpt.npz"]
        assert leftovers == []

    def test_bare_path_gets_npz_suffix(self, trained, tmp_path):
        save_checkpoint(trained, tmp_path / "ckpt")
        assert (tmp_path / "ckpt.npz").exists()

    def test_overwrite_preserves_old_on_failure(
        self, trained, tmp_path, monkeypatch
    ):
        """A failed save never clobbers the existing checkpoint."""
        import repro.nn.checkpoint as ckpt_mod

        path = tmp_path / "ckpt.npz"
        save_checkpoint(trained, path)
        good = path.read_bytes()

        def disk_full(*args, **kwargs):
            raise OSError("no space left on device")

        monkeypatch.setattr(ckpt_mod.np, "savez_compressed", disk_full)
        with pytest.raises(OSError):
            save_checkpoint(trained, path)
        monkeypatch.undo()
        assert path.read_bytes() == good
        leftovers = [f for f in os.listdir(tmp_path) if f != "ckpt.npz"]
        assert leftovers == []


class TestChecksum:
    def test_checksum_stored(self, trained, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trained, path)
        with np.load(path) as bundle:
            assert "checksum_sha256" in bundle.files

    def test_corruption_detected(
        self, trained, small_dataset, small_model, tmp_path
    ):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trained, path)
        # flip bits inside one stored array while keeping the zip valid
        with np.load(path) as bundle:
            payload = {k: bundle[k].copy() for k in bundle.files}
        payload["w0"][0, 0] += 1.0
        np.savez_compressed(path, **payload)
        fresh = MGGCNTrainer(small_dataset, small_model, num_gpus=2)
        with pytest.raises(CheckpointError, match="checksum"):
            load_checkpoint(fresh, path)

    def test_legacy_checkpoint_without_checksum_loads(
        self, trained, small_dataset, small_model, tmp_path
    ):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trained, path)
        with np.load(path) as bundle:
            payload = {
                k: bundle[k].copy()
                for k in bundle.files
                if k != "checksum_sha256"
            }
        np.savez_compressed(path, **payload)  # old-writer format
        fresh = MGGCNTrainer(small_dataset, small_model, num_gpus=2)
        load_checkpoint(fresh, path)
        for a, b in zip(trained.get_weights(), fresh.get_weights()):
            assert (a == b).all()

    def test_checkpoint_is_a_valid_zip(self, trained, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trained, path)
        assert zipfile.is_zipfile(path)


class TestInferenceRestore:
    """load_weights: trainer-free restore with a strict digest policy."""

    def test_round_trip(self, tmp_path):
        weights = [
            np.arange(12, dtype=np.float32).reshape(3, 4),
            np.arange(8, dtype=np.float32).reshape(4, 2),
        ]
        path = tmp_path / "weights.npz"
        save_weights(weights, path)
        restored, spec = load_weights(path)
        assert spec.layer_dims == (3, 4, 2)
        for a, b in zip(weights, restored):
            assert (a == b).all()

    def test_loads_trainer_checkpoint(self, trained, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(trained, path)
        restored, spec = load_weights(path)
        assert spec.layer_dims == trained.model.layer_dims
        for a, b in zip(trained.get_weights(), restored):
            assert (a == b).all()

    def test_digest_mismatch_rejected(self, tmp_path):
        path = tmp_path / "weights.npz"
        save_weights([np.ones((2, 3), dtype=np.float32)], path)
        with np.load(path) as bundle:
            payload = {k: bundle[k].copy() for k in bundle.files}
        payload["w0"][0, 0] = 42.0  # silent corruption
        np.savez_compressed(path, **payload)
        with pytest.raises(CheckpointError, match="checksum mismatch"):
            load_weights(path)

    def test_missing_digest_rejected(self, tmp_path):
        """Unlike load_checkpoint, serving refuses checksum-less files."""
        path = tmp_path / "weights.npz"
        save_weights([np.ones((2, 3), dtype=np.float32)], path)
        with np.load(path) as bundle:
            payload = {
                k: bundle[k].copy()
                for k in bundle.files
                if k != "checksum_sha256"
            }
        np.savez_compressed(path, **payload)
        with pytest.raises(CheckpointError, match="digest"):
            load_weights(path)

    def test_nonconforming_widths_rejected(self, tmp_path):
        bad = [np.ones((3, 4), dtype=np.float32),
               np.ones((5, 2), dtype=np.float32)]
        with pytest.raises(ConfigurationError, match="width"):
            save_weights(bad, tmp_path / "bad.npz")

    def test_not_a_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez_compressed(path, junk=np.ones(3))
        with pytest.raises(ConfigurationError, match="not a repro checkpoint"):
            load_weights(path)
