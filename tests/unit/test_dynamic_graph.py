"""Unit tests: mutation streams and the incremental CSR (repro.dynamic)."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.dynamic import (
    DynamicGraph,
    MutationBatch,
    MutationStream,
    bursty_mutations,
    l_hop_affected,
    poisson_mutations,
)
from repro.errors import MutationError
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


def csr(rows, cols, vals, shape):
    return CSRMatrix.from_coo(
        COOMatrix(shape, np.asarray(rows), np.asarray(cols),
                  np.asarray(vals, dtype=np.float32))
    )

pytestmark = pytest.mark.dynamic


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("cora", scale=0.25, learnable=True, seed=0)


def assert_matches_scratch(g, generation):
    """Incremental state must be bit-identical to a from-scratch rebuild."""
    adj, a_hat_t = g.scratch_rebuild()
    assert g.adj.equals(adj), f"adjacency diverged at generation {generation}"
    assert g.a_hat_t.equals(a_hat_t), (
        f"normalized adjacency diverged at generation {generation}"
    )
    assert g.adj_t.equals(adj.transpose())


class TestMutationStream:
    def test_poisson_is_deterministic(self, dataset):
        a = poisson_mutations(dataset, 4, rate=3.0, edges_per_batch=6, seed=5)
        b = poisson_mutations(dataset, 4, rate=3.0, edges_per_batch=6, seed=5)
        assert len(a) == len(b) == 4
        for x, y in zip(a, b):
            assert x.arrival == y.arrival
            assert np.array_equal(x.insert_edges, y.insert_edges)
            assert np.array_equal(x.delete_edges, y.delete_edges)

    def test_arrivals_sorted_and_positive_rate_required(self, dataset):
        s = bursty_mutations(dataset, num_bursts=3, burst_size=2,
                             burst_rate=2.0, edges_per_batch=4, seed=1)
        assert len(s) == 6
        arrivals = [b.arrival for b in s]
        assert arrivals == sorted(arrivals)
        with pytest.raises(MutationError):
            poisson_mutations(dataset, 2, rate=0.0)

    def test_skew_targets_hot_vertices(self, dataset):
        g = DynamicGraph(dataset)
        deg = g.degrees()
        hot = set(np.argsort(-deg)[: dataset.n // 10].tolist())
        skewed = poisson_mutations(dataset, 8, rate=3.0, edges_per_batch=10,
                                   skew=1.2, seed=3)
        flat = poisson_mutations(dataset, 8, rate=3.0, edges_per_batch=10,
                                 skew=0.0, seed=3)

        def hot_fraction(stream):
            endpoints = np.concatenate(
                [b.insert_edges[:, 0] for b in stream if b.insert_edges.size]
            )
            return np.mean([int(v) in hot for v in endpoints])

        assert hot_fraction(skewed) > hot_fraction(flat)

    def test_batch_validation(self):
        with pytest.raises(MutationError):
            MutationBatch(batch_id=0, arrival=-1.0)
        with pytest.raises(MutationError):
            MutationBatch(batch_id=0, arrival=0.0,
                          insert_edges=np.zeros((2, 3), dtype=np.int64))
        with pytest.raises(MutationError):
            MutationStream(batches=(
                MutationBatch(batch_id=0, arrival=2.0),
                MutationBatch(batch_id=1, arrival=1.0),
            ))


class TestIncrementalRebuild:
    def test_insert_delete_stream_matches_scratch(self, dataset):
        g = DynamicGraph(dataset)
        for batch in poisson_mutations(dataset, 6, rate=3.0,
                                       edges_per_batch=8, skew=0.6, seed=11):
            g.apply(batch)
            res = g.commit()
            assert_matches_scratch(g, res.generation)
            assert res.generation == g.generation

    def test_touched_rows_cover_value_changes(self, dataset):
        """Every row of A_hat^T whose values changed is in touched_rows."""
        g = DynamicGraph(dataset)
        for batch in poisson_mutations(dataset, 3, rate=3.0,
                                       edges_per_batch=10, skew=0.4, seed=17):
            before = g.a_hat_t
            res = g.apply_and_commit(batch)
            after = g.a_hat_t
            changed = []
            for v in range(g.n):
                b0, b1 = before.indptr[v], before.indptr[v + 1]
                a0, a1 = after.indptr[v], after.indptr[v + 1]
                if not (
                    np.array_equal(before.indices[b0:b1], after.indices[a0:a1])
                    and np.array_equal(before.vals[b0:b1], after.vals[a0:a1])
                ):
                    changed.append(v)
            assert np.isin(changed, res.touched_rows).all()
            # and the rebuild really was restricted: touched is a minority
            assert len(res.touched_rows) < g.n // 4

    def test_vertex_addition(self, dataset):
        g = DynamicGraph(dataset)
        n0 = g.n
        d = g.features.shape[1]
        batch = MutationBatch(
            batch_id=0, arrival=0.0,
            insert_edges=np.array(
                [[n0, 0], [1, n0 + 1], [n0 + 2, n0]], dtype=np.int64
            ),
            add_features=np.full((3, d), 0.5, dtype=np.float32),
            add_labels=np.zeros(3, dtype=np.int64),
        )
        res = g.apply_and_commit(batch)
        assert res.vertices_added == 3
        assert g.n == n0 + 3
        assert g.features.shape == (n0 + 3, d)
        assert not g.train_mask[n0:].any()
        assert_matches_scratch(g, res.generation)

    def test_vertex_removal_tombstones(self, dataset):
        g = DynamicGraph(dataset)
        deg = g.degrees()
        victim = int(np.argmax(deg))
        res = g.apply_and_commit(MutationBatch(
            batch_id=0, arrival=0.0,
            remove_vertices=np.array([victim], dtype=np.int64),
        ))
        assert res.vertices_removed == 1
        assert g.n == len(g.alive)  # ids stay stable, no compaction
        assert not g.alive[victim]
        assert g.adj.row_nnz()[victim] == 0
        assert g.adj_t.row_nnz()[victim] == 0
        assert_matches_scratch(g, res.generation)
        with pytest.raises(MutationError):
            g.apply(MutationBatch(
                batch_id=1, arrival=1.0,
                insert_edges=np.array([[victim, 1]], dtype=np.int64),
            ))

    def test_last_writer_wins_within_batch(self, dataset):
        g = DynamicGraph(dataset)
        # insert then delete the same edge in one batch: the delete wins.
        e = np.array([[2, 3]], dtype=np.int64)
        g.apply(MutationBatch(batch_id=0, arrival=0.0, insert_edges=e))
        g.apply(MutationBatch(batch_id=1, arrival=0.0, delete_edges=e))
        res = g.commit()
        b0, b1 = g.adj.indptr[2], g.adj.indptr[3]
        assert 3 not in g.adj.indices[b0:b1]
        assert_matches_scratch(g, res.generation)

    def test_noop_delete_counted(self, dataset):
        g = DynamicGraph(dataset)
        # find a non-edge
        u = 0
        row = set(g.adj.indices[g.adj.indptr[0]:g.adj.indptr[1]].tolist())
        v = next(x for x in range(1, g.n) if x not in row)
        res = g.apply_and_commit(MutationBatch(
            batch_id=0, arrival=0.0,
            delete_edges=np.array([[u, v]], dtype=np.int64),
        ))
        assert res.noop_deletes == 1
        assert res.edges_deleted == 0

    def test_self_loop_insert_rejected(self, dataset):
        g = DynamicGraph(dataset)
        with pytest.raises(MutationError):
            g.apply(MutationBatch(
                batch_id=0, arrival=0.0,
                insert_edges=np.array([[4, 4]], dtype=np.int64),
            ))

    def test_empty_commit_is_noop_generation(self, dataset):
        g = DynamicGraph(dataset)
        before = g.a_hat_t
        res = g.commit()
        assert res.mutations_applied == 0
        assert g.a_hat_t is before


class TestCSRMatrixEquals:
    def test_equals_structural(self):
        rows = np.array([0, 1, 2])
        cols = np.array([1, 2, 0])
        vals = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        a = csr(rows, cols, vals, (3, 3))
        b = csr(rows, cols, vals, (3, 3))
        assert a.equals(b) and b.equals(a)
        c = csr(rows, cols, vals * 2, (3, 3))
        assert not a.equals(c)
        d = csr(rows, cols, vals, (4, 4))
        assert not a.equals(d)
        assert a.equals(object()) is NotImplemented


class TestLHopAffected:
    def test_exact_on_a_path_graph(self):
        # 0 -> 1 -> 2 -> 3 -> 4 (a_hat_t row v holds in-neighbors of v)
        rows = np.array([1, 2, 3, 4])
        cols = np.array([0, 1, 2, 3])
        vals = np.ones(4, dtype=np.float32)
        at = csr(rows, cols, vals, (5, 5))
        stale = l_hop_affected(at, np.array([1]), num_layers=3)
        assert stale[0].tolist() == [1]
        assert stale[1].tolist() == [1, 2]
        assert stale[2].tolist() == [1, 2, 3]

    def test_single_layer_is_touched_set(self):
        at = csr(np.array([0]), np.array([1]),
                 np.ones(1, dtype=np.float32), (3, 3))
        stale = l_hop_affected(at, np.array([0, 2]), num_layers=1)
        assert len(stale) == 1
        assert stale[0].tolist() == [0, 2]
