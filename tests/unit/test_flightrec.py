"""Unit tests for repro.telemetry.flightrec: the always-on black box."""

import json

import pytest

from repro.device.engine import TraceEvent
from repro.errors import ConfigurationError
from repro.telemetry import (
    FlightRecorder,
    Telemetry,
    bundle_events,
    bundle_spans,
    bundle_to_chrome_trace,
    load_bundle,
)
from repro.telemetry.flightrec import FLIGHT_BUNDLE_FORMAT


def _ev(name, start, end, device="gpu0", category="gemm"):
    return TraceEvent(
        device=device, stream="compute", name=name, category=category,
        start=start, end=end, correlation=f"corr-{name}",
    )


class TestRing:
    def test_capacity_bounds_memory(self):
        rec = FlightRecorder(capacity=3)
        for i in range(10):
            rec.record_op(_ev(f"op{i}", i, i + 1))
        assert len(rec) == 3
        assert rec.records_total == 10
        names = [r["name"] for r in rec.records()]
        assert names == ["op7", "op8", "op9"]

    def test_mixed_kinds_and_counts(self):
        rec = FlightRecorder()
        rec.record_op(_ev("a", 0.0, 1.0))
        rec.record_comm("inter_node", 0.5, 1024)
        rec.record("fault", time=2.0, rank=1)
        assert rec.counts() == {"op": 1, "comm": 1, "fault": 1}
        records = rec.records()
        assert records[1] == {
            "kind": "comm", "link": "inter_node", "seconds": 0.5,
            "nbytes": 1024,
        }
        assert records[2]["rank"] == 1

    def test_bad_capacity_raises(self):
        with pytest.raises(ConfigurationError):
            FlightRecorder(capacity=0)


class TestTelemetryIntegration:
    def test_hub_routes_ops_comm_and_notes(self):
        rec = FlightRecorder()
        telemetry = Telemetry(flight=rec, run_id="train")
        telemetry.on_op(_ev("a", 0.0, 1.0))
        telemetry.on_comm("intra_node", 0.1, 64)
        telemetry.flight_note("degrade", time=1.5, rank=2)
        assert rec.counts() == {"op": 1, "comm": 1, "degrade": 1}
        # section defaults to the run id; set_flight_section retags.
        assert rec.records()[0]["section"] == "train"
        telemetry.set_flight_section("serve")
        telemetry.on_op(_ev("b", 1.0, 2.0))
        assert rec.records()[-1]["section"] == "serve"

    def test_hub_without_recorder_is_a_noop(self):
        telemetry = Telemetry()
        telemetry.flight_note("fault", rank=0)  # must not raise
        assert telemetry.dump_postmortem("x") is None


class TestBundles:
    def _dumped(self, tmp_path):
        rec = FlightRecorder(auto_dump_dir=tmp_path)
        telemetry = Telemetry(flight=rec, run_id="run")
        span = telemetry.tracer.begin("epoch-1", 0.0, correlation="epoch-1")
        telemetry.on_op(_ev("a", 0.0, 1.0))
        telemetry.set_flight_section("serve")
        telemetry.on_op(_ev("g", 1.0, 2.0, device="gpu1",
                            category="comm"))
        telemetry.tracer.end(span, 2.0)
        telemetry.flight_note("fault", time=1.5, rank=1)
        bundle = telemetry.dump_postmortem("recovery", time=2.0,
                                           failed_rank=1)
        return rec, bundle

    def test_dump_contents_and_auto_path(self, tmp_path):
        rec, bundle = self._dumped(tmp_path)
        assert bundle["format"] == FLIGHT_BUNDLE_FORMAT
        meta = bundle["meta"]
        assert meta["trigger"] == "recovery"
        assert meta["failed_rank"] == 1
        assert meta["run_id"] == "run"
        assert bundle["metrics"]  # registry flatten rode along
        assert len(bundle["spans"]) == 1
        path = meta["path"]
        assert path.endswith("postmortem-000-recovery.json")
        assert load_bundle(path)["meta"]["trigger"] == "recovery"
        assert rec.dumps_total == 1

    def test_bundle_events_rebuild_sections(self, tmp_path):
        _, bundle = self._dumped(tmp_path)
        sections = bundle_events(bundle)
        assert set(sections) == {"run", "serve"}
        ev = sections["serve"][0]
        assert isinstance(ev, TraceEvent)
        assert ev.name == "g" and ev.correlation == "corr-g"

    def test_bundle_spans_rebuild_tree(self, tmp_path):
        _, bundle = self._dumped(tmp_path)
        tracer = bundle_spans(bundle)
        assert [s.name for s in tracer.spans] == ["epoch-1"]
        assert tracer.spans[0].correlation == "epoch-1"

    def test_bundle_to_chrome_trace_disjoint_pids(self, tmp_path):
        _, bundle = self._dumped(tmp_path)
        events = bundle_to_chrome_trace(bundle)
        section_pids = {
            e["args"]["name"]: e["pid"]
            for e in events
            if e.get("ph") == "M" and e["name"] == "process_name"
        }
        # one process per section/device plus the span tree, no pid reuse.
        assert "spans" in section_pids
        assert any(n.startswith("run/") for n in section_pids)
        assert any(n.startswith("serve/") for n in section_pids)
        assert len(set(section_pids.values())) == len(section_pids)

    def test_load_bundle_failures(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not found"):
            load_bundle(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(ConfigurationError, match="malformed"):
            load_bundle(bad)
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"format": "other"}))
        with pytest.raises(ConfigurationError, match="not a flight bundle"):
            load_bundle(wrong)
