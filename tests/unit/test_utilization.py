"""Trace utilisation analysis: interval math and schedule properties."""

import pytest

from repro.core import MGGCNTrainer, TrainerConfig
from repro.datasets import load_dataset
from repro.device import TraceEvent
from repro.hardware import dgx1
from repro.nn import GCNModelSpec
from repro.profiling import (
    load_balance,
    utilization_by_device,
    utilization_report,
)
from repro.profiling.utilization import _merge_intervals, _subtract, _total


class TestIntervalMath:
    def test_merge_overlapping(self):
        assert _merge_intervals([(0, 2), (1, 3), (5, 6)]) == [(0, 3), (5, 6)]

    def test_merge_touching(self):
        assert _merge_intervals([(0, 1), (1, 2)]) == [(0, 2)]

    def test_total_deduplicates(self):
        assert _total([(0, 2), (1, 3)]) == pytest.approx(3.0)

    def test_subtract_full_overlap(self):
        assert _subtract([(0, 4)], [(0, 4)]) == pytest.approx(0.0)

    def test_subtract_partial(self):
        # base [0,10), holes [2,4) and [6,7) -> remaining 7
        assert _subtract([(0, 10)], [(2, 4), (6, 7)]) == pytest.approx(7.0)

    def test_subtract_disjoint(self):
        assert _subtract([(0, 3)], [(5, 9)]) == pytest.approx(3.0)

    def test_subtract_hole_spanning_base(self):
        assert _subtract([(2, 5)], [(0, 10)]) == pytest.approx(0.0)


class TestUtilization:
    def _trace(self):
        return [
            TraceEvent("gpu0", "compute", "spmm", "spmm", 0.0, 6.0),
            TraceEvent("gpu0", "comm", "bcast", "comm", 0.0, 2.0),
            TraceEvent("gpu0", "comm", "bcast2", "comm", 7.0, 9.0),
            TraceEvent("gpu1", "compute", "spmm", "spmm", 0.0, 3.0),
        ]

    def test_per_device_numbers(self):
        util = utilization_by_device(self._trace())
        g0 = util["gpu0"]
        assert g0.window == pytest.approx(9.0)
        assert g0.compute_busy == pytest.approx(6.0)
        assert g0.comm_busy == pytest.approx(4.0)
        # first bcast hidden behind compute; second fully exposed
        assert g0.exposed_comm == pytest.approx(2.0)
        assert util["gpu1"].compute_busy == pytest.approx(3.0)

    def test_load_balance(self):
        assert load_balance(self._trace()) == pytest.approx(6.0 / 4.5)
        assert load_balance([]) == 1.0

    def test_report_renders(self):
        report = utilization_report(self._trace())
        assert "gpu0" in report and "load balance" in report
        assert utilization_report([]) == "(empty trace)"

    def test_empty(self):
        assert utilization_by_device([]) == {}


class TestScheduleProperties:
    @pytest.fixture(scope="class")
    def products(self):
        return load_dataset("products", scale=0.002, seed=2)

    def test_permutation_improves_measured_balance(self, products):
        model = GCNModelSpec.paper_model(1, products.d0, products.num_classes)

        def balance(permute):
            trainer = MGGCNTrainer(
                products, model, machine=dgx1(), num_gpus=4,
                config=TrainerConfig(permute=permute, seed=2),
            )
            return load_balance(trainer.train_epoch().trace)

        assert balance(True) < balance(False)
        assert balance(True) < 1.1

    def test_overlap_reduces_exposed_comm(self, products):
        model = GCNModelSpec.paper_model(1, products.d0, products.num_classes)

        def exposed(overlap):
            trainer = MGGCNTrainer(
                products, model, machine=dgx1(), num_gpus=4,
                config=TrainerConfig(overlap=overlap, seed=2),
            )
            util = utilization_by_device(trainer.train_epoch().trace)
            return sum(u.exposed_comm for u in util.values())

        assert exposed(True) < exposed(False)
