"""Roofline cost model: monotonicity, regimes, the cache/occupancy terms."""

import pytest

from repro.hardware.machines import A100, V100
from repro.kernels import CostModel, KernelCosts


@pytest.fixture()
def cost():
    return CostModel(V100)


class TestKernelCosts:
    def test_defaults_valid(self):
        KernelCosts()

    def test_efficiency_bounds(self):
        with pytest.raises(ValueError):
            KernelCosts(gemm_flop_efficiency=0.0)
        with pytest.raises(ValueError):
            KernelCosts(spmm_bw_efficiency=1.5)

    def test_overheads_nonnegative(self):
        with pytest.raises(ValueError):
            KernelCosts(kernel_overhead=-1e-6)
        with pytest.raises(ValueError):
            KernelCosts(framework_overhead=-1.0)

    def test_cache_knob_bounds(self):
        with pytest.raises(ValueError):
            KernelCosts(spmm_cache_hit_max=1.2)
        with pytest.raises(ValueError):
            KernelCosts(spmm_cache_gamma=0.0)
        with pytest.raises(ValueError):
            KernelCosts(spmm_chunk_cols=0)


class TestGemm:
    def test_scales_with_flops(self, cost):
        t1 = cost.gemm_time(4096, 4096, 4096)
        t2 = cost.gemm_time(4096, 4096, 8192)
        assert t2 > t1
        assert t2 / t1 == pytest.approx(2.0, rel=0.1)

    def test_large_gemm_near_peak(self, cost):
        m = n = k = 8192
        t = cost.gemm_time(m, n, k)
        achieved = 2.0 * m * n * k / t
        assert achieved > 0.5 * V100.peak_flops

    def test_small_gemm_overhead_floor(self, cost):
        assert cost.gemm_time(2, 2, 2) >= V100.kernel_overhead

    def test_occupancy_derate_hits_small_kernels(self, cost):
        """A GEMM with few output elements runs far below peak (the
        mechanism behind Cora's flat scaling curve)."""
        small = cost.gemm_time(400, 512, 3700)
        eff_small = 2.0 * 400 * 512 * 3700 / small
        big = cost.gemm_time(40000, 512, 3700)
        eff_big = 2.0 * 40000 * 512 * 3700 / big
        assert eff_small < 0.5 * eff_big

    def test_split_k_recovers_reduction_shapes(self, cost):
        """Tall reductions (small m*n, huge k) keep high utilisation."""
        t = cost.gemm_time(104, 256, 2_500_000)
        achieved = 2.0 * 104 * 256 * 2_500_000 / t
        assert achieved > 0.3 * V100.peak_flops


class TestSpmm:
    def test_bandwidth_bound(self, cost):
        rows, nnz, d = 100_000, 5_000_000, 512
        t = cost.spmm_time(rows, nnz, d, dense_rows=rows)
        bytes_moved = cost.spmm_traffic(rows, nnz, d, rows)
        assert t >= bytes_moved / V100.memory_bandwidth

    def test_tiling_raises_cache_hit(self, cost):
        """The Fig-9 mechanism: smaller dense tiles -> less gather
        traffic per nonzero."""
        nnz, d, n = 100_000_000, 512, 200_000  # dense graph (k ~ 500)
        full = cost.spmm_traffic(n, nnz, d, dense_rows=n) / nnz
        # one A^{ij} tile of an 8-way partition: n/8 rows, m/64 nnz,
        # n/8 dense rows addressed.
        tiled = cost.spmm_traffic(n // 8, nnz // 64, d, dense_rows=n // 8) / (
            nnz // 64
        )
        assert tiled < full

    def test_tiling_does_not_help_sparse_graphs(self, cost):
        """For low average degree the per-stage output/compulsory terms
        dominate, so tiling cannot produce super-linear gains — matching
        Fig. 9's sub-linear speedups at 1x density."""
        nnz, d, n = 1_000_000, 512, 200_000  # k ~ 5
        full = cost.spmm_traffic(n, nnz, d, dense_rows=n) / nnz
        tiled = cost.spmm_traffic(n // 8, nnz // 64, d, dense_rows=n // 8) / (
            nnz // 64
        )
        assert tiled > full

    def test_traffic_monotone_in_nnz(self, cost):
        base = cost.spmm_traffic(1000, 10_000, 64, 1000)
        more = cost.spmm_traffic(1000, 20_000, 64, 1000)
        assert more > base

    def test_fully_resident_tile_cheap(self, cost):
        """A tile whose dense operand fits L2 pays ~no gather traffic."""
        small = cost.spmm_traffic(1000, 100_000, 64, dense_rows=1000)
        large = cost.spmm_traffic(1000, 100_000, 64, dense_rows=10_000_000)
        assert small < large

    def test_bw_fraction_slows_kernel(self, cost):
        t_full = cost.spmm_time(50_000, 2_000_000, 512, 50_000, bw_fraction=1.0)
        t_shared = cost.spmm_time(50_000, 2_000_000, 512, 50_000, bw_fraction=5 / 6)
        assert t_shared > t_full

    def test_a100_faster_than_v100(self):
        v, a = CostModel(V100), CostModel(A100)
        args = dict(rows=100_000, nnz=5_000_000, d=256, dense_rows=100_000)
        assert a.spmm_time(**args) < v.spmm_time(**args)


class TestOtherKernels:
    def test_elementwise_scales_with_passes(self, cost):
        one = cost.elementwise_time(10_000_000, reads=1, writes=1)
        three = cost.elementwise_time(10_000_000, reads=2, writes=1)
        assert three > one

    def test_memset(self, cost):
        assert cost.memset_time(1 << 30) > cost.memset_time(1 << 20)

    def test_adam_seven_passes(self, cost):
        t = cost.adam_time(50_000_000)
        expected = cost.elementwise_time(50_000_000, reads=4, writes=3)
        assert t == pytest.approx(expected)

    def test_softmax_xent(self, cost):
        assert cost.softmax_xent_time(100_000, 41) > 0

    def test_framework_overhead_additive(self):
        fast = CostModel(V100, KernelCosts())
        slow = CostModel(V100, KernelCosts(framework_overhead=1e-4))
        assert slow.gemm_time(10, 10, 10) - fast.gemm_time(10, 10, 10) == pytest.approx(
            1e-4
        )
