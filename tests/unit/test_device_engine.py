"""Streams, events and the discrete-event engine."""

import pytest

from repro.device import Engine, Mode, SimContext, Stream, VirtualGPU
from repro.device.stream import Event
from repro.errors import StreamError
from repro.hardware import dgx1
from repro.hardware.machines import V100


@pytest.fixture()
def engine():
    return Engine()


@pytest.fixture()
def dev():
    return VirtualGPU(V100, rank=0)


def test_in_order_execution_on_one_stream(engine, dev):
    s = dev.compute_stream
    e1 = engine.submit(s, "a", "gemm", 1.0)
    e2 = engine.submit(s, "b", "gemm", 2.0)
    assert e1.time == pytest.approx(1.0)
    assert e2.time == pytest.approx(3.0)


def test_event_dependency_across_streams(engine, dev):
    comp, comm = dev.compute_stream, dev.comm_stream
    e1 = engine.submit(comm, "bcast", "comm", 5.0)
    e2 = engine.submit(comp, "spmm", "spmm", 1.0, deps=[e1])
    assert e2.time == pytest.approx(6.0)


def test_wait_event_defers_start(engine, dev):
    comp, comm = dev.compute_stream, dev.comm_stream
    e1 = engine.submit(comm, "bcast", "comm", 3.0)
    comp.wait_event(e1)
    e2 = engine.submit(comp, "spmm", "spmm", 1.0)
    assert e2.time == pytest.approx(4.0)


def test_independent_streams_overlap(engine, dev):
    e1 = engine.submit(dev.comm_stream, "bcast", "comm", 5.0)
    e2 = engine.submit(dev.compute_stream, "gemm", "gemm", 5.0)
    # no dependency: both finish at t=5 (true overlap)
    assert e1.time == e2.time == pytest.approx(5.0)


def test_unrecorded_event_rejected(engine, dev):
    ghost = Event("never-recorded")
    dev.compute_stream.wait_event(ghost)
    with pytest.raises(StreamError):
        engine.submit(dev.compute_stream, "x", "gemm", 1.0)


def test_negative_duration_rejected(engine, dev):
    with pytest.raises(ValueError):
        engine.submit(dev.compute_stream, "x", "gemm", -1.0)


def test_barrier_aligns_streams(engine, dev):
    engine.submit(dev.comm_stream, "a", "comm", 7.0)
    engine.submit(dev.compute_stream, "b", "gemm", 2.0)
    t = engine.barrier([dev.comm_stream, dev.compute_stream])
    assert t == pytest.approx(7.0)
    assert dev.compute_stream.ready_time == pytest.approx(7.0)


def test_trace_records_categories(engine, dev):
    engine.submit(dev.compute_stream, "a", "gemm", 1.0)
    engine.submit(dev.compute_stream, "b", "spmm", 2.0, stage=3)
    assert len(engine.trace) == 2
    assert engine.trace[1].stage == 3
    assert engine.trace[1].duration == pytest.approx(2.0)
    by_cat = engine.events_by_category()
    assert by_cat == {"gemm": pytest.approx(1.0), "spmm": pytest.approx(2.0)}


def test_trace_disabled(dev):
    engine = Engine(record_trace=False)
    engine.submit(dev.compute_stream, "a", "gemm", 1.0)
    assert engine.trace == []


class TestSimContext:
    def test_device_count_clamped(self):
        ctx = SimContext(dgx1(), num_gpus=4)
        assert len(ctx.devices) == 4
        with pytest.raises(ValueError):
            SimContext(dgx1(), num_gpus=9)
        with pytest.raises(ValueError):
            SimContext(dgx1(), num_gpus=0)

    def test_default_uses_all_gpus(self):
        assert SimContext(dgx1()).num_gpus == 8

    def test_synchronize_and_elapsed(self):
        ctx = SimContext(dgx1(), num_gpus=2)
        ctx.engine.submit(ctx.device(0).compute_stream, "x", "gemm", 4.0)
        assert ctx.elapsed() == pytest.approx(4.0)
        t = ctx.synchronize()
        assert t == pytest.approx(4.0)
        assert ctx.device(1).compute_stream.ready_time == pytest.approx(4.0)

    def test_peak_memory_max_over_devices(self):
        ctx = SimContext(dgx1(), num_gpus=2)
        ctx.device(0).empty((1024, 1024))
        assert ctx.peak_memory() >= 4 * 1024 * 1024

    def test_reset_timing(self):
        ctx = SimContext(dgx1(), num_gpus=2)
        ctx.engine.submit(ctx.device(0).compute_stream, "x", "gemm", 4.0)
        ctx.reset_timing()
        assert ctx.elapsed() == 0.0
        assert ctx.engine.trace == []

    def test_symbolic_context_devices_symbolic(self):
        ctx = SimContext(dgx1(), num_gpus=2, mode=Mode.SYMBOLIC)
        t = ctx.device(0).empty((4, 4))
        assert t.data is None
