"""CAGNET 1.5D trainer: correctness, replication semantics, memory."""

import numpy as np
import pytest

from repro.baselines import CAGNETTrainer, CAGNET15DTrainer
from repro.datasets import load_dataset
from repro.errors import ConfigurationError
from repro.hardware import dgx1, dgx_a100
from repro.nn import GCNModelSpec, ReferenceGCN


@pytest.mark.parametrize("gpus,c", [(2, 2), (4, 2), (8, 2), (8, 4), (4, 1)])
def test_matches_reference(small_dataset, small_model, gpus, c):
    trainer = CAGNET15DTrainer(
        small_dataset, small_model, machine=dgx1(), num_gpus=gpus,
        replication=c, seed=9,
    )
    ref = ReferenceGCN(small_dataset, small_model, seed=9)
    for _ in range(3):
        stats = trainer.train_epoch()
        ref_loss = ref.train_epoch()
        assert stats.loss == pytest.approx(ref_loss, rel=1e-4, abs=1e-6)
    for a, b in zip(trainer.get_weights(), ref.weights):
        assert np.allclose(a, b, rtol=5e-3, atol=5e-5), (gpus, c)


def test_permuted_variant_correct(small_dataset, small_model):
    trainer = CAGNET15DTrainer(
        small_dataset, small_model, machine=dgx1(), num_gpus=4,
        replication=2, seed=9, permute=True,
    )
    ref = ReferenceGCN(small_dataset, small_model, seed=9)
    trainer.train_epoch()
    ref.train_epoch()
    for a, b in zip(trainer.get_weights(), ref.weights):
        assert np.allclose(a, b, rtol=5e-3, atol=5e-5)


def test_replication_must_divide(small_dataset, small_model):
    with pytest.raises(ConfigurationError):
        CAGNET15DTrainer(small_dataset, small_model, machine=dgx1(),
                         num_gpus=8, replication=3)


def test_replication_doubles_adjacency_memory():
    """§5.1: the 1.5D algorithm 'requires twice as much memory'."""
    ds = load_dataset("reddit", symbolic=True)
    model = GCNModelSpec.paper_model(1, ds.d0, ds.num_classes)
    one_d = CAGNETTrainer(ds, model, machine=dgx1(), num_gpus=8, permute=True)
    one_half_d = CAGNET15DTrainer(ds, model, machine=dgx1(), num_gpus=8,
                                  replication=2)
    adj_1d = one_d.ctx.device(0).pool.usage_by_tag()["adjacency"]
    adj_15d = one_half_d.ctx.device(0).pool.usage_by_tag()["adjacency"]
    assert adj_15d == pytest.approx(2 * adj_1d, rel=0.05)


def test_faster_on_nvswitch_than_1d():
    """Measured counterpart of the §5.1 analysis: on DGX-A100 the 1.5D
    variant clearly beats serialized 1D; on DGX-1 the advantage shrinks
    (the cross-quad reduction eats the broadcast saving)."""
    ds = load_dataset("arxiv", symbolic=True)
    model = GCNModelSpec.build(ds.d0, 512, ds.num_classes, 2)

    def ratio(machine):
        t1d = CAGNETTrainer(ds, model, machine=machine, num_gpus=8,
                            permute=True).train_epoch().epoch_time
        t15 = CAGNET15DTrainer(ds, model, machine=machine, num_gpus=8,
                               replication=2).train_epoch().epoch_time
        return t15 / t1d

    r_a100 = ratio(dgx_a100())
    r_v100 = ratio(dgx1())
    assert r_a100 < 0.85
    assert r_v100 > r_a100  # the DGX-1 topology penalty


def test_symbolic_epoch_runs():
    ds = load_dataset("products", symbolic=True)
    model = GCNModelSpec.paper_model(1, ds.d0, ds.num_classes)
    trainer = CAGNET15DTrainer(ds, model, machine=dgx_a100(), num_gpus=8,
                               replication=2)
    stats = trainer.train_epoch()
    assert stats.loss is None
    assert stats.epoch_time > 0


def test_fit_and_validation(small_dataset, small_model):
    trainer = CAGNET15DTrainer(small_dataset, small_model, machine=dgx1(),
                               num_gpus=4, replication=2)
    stats = trainer.fit(4)
    assert stats[-1].loss < stats[0].loss
    with pytest.raises(ConfigurationError):
        trainer.fit(-1)


def test_evaluate_consistent_under_permutation(small_dataset, small_model):
    accs = []
    for permute in (False, True):
        trainer = CAGNET15DTrainer(small_dataset, small_model, machine=dgx1(),
                                   num_gpus=4, replication=2, seed=12,
                                   permute=permute)
        trainer.fit(10)
        accs.append(trainer.evaluate("test"))
    assert accs[0] == pytest.approx(accs[1], abs=1e-6)
