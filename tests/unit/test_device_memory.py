"""Memory pool accounting: capacity, peak, OOM, double-free."""

import pytest

from repro.device import MemoryPool
from repro.errors import AllocationError, DeviceOutOfMemoryError


def test_basic_alloc_free_cycle():
    pool = MemoryPool(capacity=4096, name="t")
    a = pool.allocate(1000, tag="x")
    assert pool.in_use == 1024  # aligned up to 256
    a.free()
    assert pool.in_use == 0
    assert pool.live_allocations == 0


def test_alignment_rounding():
    pool = MemoryPool(capacity=4096)
    pool.allocate(1)
    assert pool.in_use == 256


def test_zero_byte_allocation():
    pool = MemoryPool(capacity=4096)
    a = pool.allocate(0)
    assert pool.in_use == 0
    a.free()


def test_oom_raises_with_details():
    pool = MemoryPool(capacity=1024, name="gpu0")
    pool.allocate(512)
    with pytest.raises(DeviceOutOfMemoryError) as err:
        pool.allocate(1024)
    assert err.value.device == "gpu0"
    assert err.value.in_use == 512
    assert err.value.capacity == 1024


def test_oom_exact_boundary_fits():
    pool = MemoryPool(capacity=1024)
    pool.allocate(1024)
    with pytest.raises(DeviceOutOfMemoryError):
        pool.allocate(1)


def test_peak_tracks_high_water_mark():
    pool = MemoryPool(capacity=8192)
    a = pool.allocate(4096)
    b = pool.allocate(2048)
    a.free()
    pool.allocate(256)
    assert pool.peak == 4096 + 2048
    assert pool.in_use == 2048 + 256


def test_reset_peak():
    pool = MemoryPool(capacity=8192)
    a = pool.allocate(4096)
    a.free()
    pool.reset_peak()
    assert pool.peak == 0


def test_double_free_rejected():
    pool = MemoryPool(capacity=4096)
    a = pool.allocate(256)
    a.free()
    with pytest.raises(AllocationError):
        a.free()


def test_foreign_handle_rejected():
    pool_a = MemoryPool(capacity=4096, name="a")
    pool_b = MemoryPool(capacity=4096, name="b")
    alloc = pool_a.allocate(256)
    with pytest.raises(AllocationError):
        pool_b.free(alloc)


def test_negative_allocation_rejected():
    pool = MemoryPool(capacity=4096)
    with pytest.raises(AllocationError):
        pool.allocate(-1)


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        MemoryPool(capacity=0)


def test_usage_by_tag():
    pool = MemoryPool(capacity=1 << 20)
    pool.allocate(1024, tag="weights")
    pool.allocate(2048, tag="weights")
    pool.allocate(512, tag="buffer")
    by_tag = pool.usage_by_tag()
    assert by_tag["weights"] == 3072
    assert by_tag["buffer"] == 512


def test_available():
    pool = MemoryPool(capacity=4096)
    pool.allocate(1024)
    assert pool.available == 3072
