"""Unit tests for repro.telemetry.critpath: the attribution analyzer."""

import pytest

from repro.device.engine import TraceEvent
from repro.errors import ConfigurationError
from repro.telemetry import (
    MetricsRegistry,
    Telemetry,
    critical_path,
    critical_path_from_plan,
    critpath_to_chrome_events,
    publish_critpath,
)
from repro.telemetry.critpath import CRITPATH_PID, WAIT_CATEGORY


def _ev(name, category, start, end, device="gpu0", stream="compute",
        nbytes=0):
    return TraceEvent(
        device=device, stream=stream, name=name, category=category,
        start=start, end=end, nbytes=nbytes,
    )


# -- synthetic-DAG ground truth ----------------------------------------------


class TestSyntheticDag:
    def test_recovers_known_critical_path_exactly(self):
        # dev0: a(0-2) -> b(2-5); dev1: c(0-1) -> d(1-3) (slack).
        # ground truth path: a, b.
        trace = [
            _ev("a", "gemm", 0.0, 2.0),
            _ev("c", "comm", 0.0, 1.0, device="gpu1"),
            _ev("d", "spmm", 1.0, 3.0, device="gpu1"),
            _ev("b", "spmm", 2.0, 5.0),
        ]
        report = critical_path(trace)
        assert [s.name for s in report.steps] == ["a", "b"]
        assert report.epoch_time == 5.0
        assert report.category_seconds == {"gemm": 2.0, "spmm": 3.0}
        # off-path work is slack: all of c, all of d.
        assert report.category_slack["comm"] == 1.0
        assert report.category_slack["spmm"] == 2.0

    def test_diamond_follows_binding_predecessor(self):
        # a(0-1) fans out to b(1-4) and c(1-2); d starts at max(4,2)=4.
        trace = [
            _ev("a", "gemm", 0.0, 1.0),
            _ev("b", "comm", 1.0, 4.0, device="gpu1"),
            _ev("c", "gemm", 1.0, 2.0),
            _ev("d", "spmm", 4.0, 6.0),
        ]
        report = critical_path(trace)
        assert [s.name for s in report.steps] == ["a", "b", "d"]
        assert report.overlap_loss_seconds == 3.0  # b is comm on the path

    def test_steps_tile_window_and_sum_to_epoch_time(self):
        trace = [
            _ev("a", "gemm", 0.0, 1.5),
            _ev("b", "comm", 1.5, 2.25, device="gpu1"),
            _ev("c", "spmm", 2.25, 7.0),
        ]
        report = critical_path(trace)
        assert report.path_seconds == pytest.approx(report.epoch_time, rel=0,
                                                    abs=1e-12)
        assert sum(report.category_seconds.values()) == pytest.approx(
            report.epoch_time, abs=1e-12
        )
        for earlier, later in zip(report.steps, report.steps[1:]):
            assert earlier.end == later.start

    def test_wait_gap_is_charged_to_wait_category(self):
        # b starts at 3.0 but nothing ends there: 1.0..3.0 is a wait.
        trace = [
            _ev("a", "gemm", 0.0, 1.0),
            _ev("b", "spmm", 3.0, 5.0),
        ]
        report = critical_path(trace)
        names = [s.name for s in report.steps]
        assert names == ["a", "(wait)", "b"]
        assert report.category_seconds[WAIT_CATEGORY] == 2.0
        assert sum(report.category_seconds.values()) == pytest.approx(5.0)
        # waits never appear in slack or device attribution.
        assert WAIT_CATEGORY not in report.category_slack
        assert set(report.device_seconds) == {"gpu0"}

    def test_leading_wait_reaches_the_floor(self):
        trace = [_ev("a", "gemm", 2.0, 4.0)]
        report = critical_path(trace, floor=0.0)
        assert [s.category for s in report.steps] == [WAIT_CATEGORY, "gemm"]
        assert report.epoch_time == 4.0
        assert report.category_seconds[WAIT_CATEGORY] == 2.0

    def test_straggler_device_and_rank(self):
        trace = [
            _ev("a", "gemm", 0.0, 1.0, device="gpu0"),
            _ev("b", "gemm", 1.0, 5.0, device="gpu3"),
        ]
        report = critical_path(trace)
        assert report.straggler_device == "gpu3"
        assert report.straggler_rank == 3

    def test_cache_stall_patterns(self):
        trace = [
            _ev("serve.gather.l1", "comm", 0.0, 2.0),
            _ev("fwd0/spmm/bcast[0]", "comm", 2.0, 3.0),
            _ev("gemm", "gemm", 3.0, 4.0),
        ]
        report = critical_path(trace)
        assert report.cache_stall_seconds == pytest.approx(3.0)

    def test_determinism_under_ties(self):
        # two candidates end at the terminal time; pick is deterministic.
        trace = [
            _ev("x", "gemm", 0.0, 2.0, device="gpu1"),
            _ev("y", "gemm", 0.0, 2.0, device="gpu0"),
        ]
        r1 = critical_path(trace)
        r2 = critical_path(list(reversed(trace)))
        assert [s.name for s in r1.steps] == [s.name for s in r2.steps]

    def test_empty_trace_raises(self):
        with pytest.raises(ConfigurationError):
            critical_path([])

    def test_empty_window_raises(self):
        with pytest.raises(ConfigurationError):
            critical_path([_ev("a", "gemm", 1.0, 2.0)], floor=5.0)


# -- report surface -----------------------------------------------------------


class TestReport:
    def _report(self):
        return critical_path(
            [
                _ev("a", "gemm", 0.0, 2.0),
                _ev("a", "gemm", 2.0, 3.0),
                _ev("b", "comm", 3.0, 4.0),
            ]
        )

    def test_top_ops_aggregates_by_name(self):
        report = self._report()
        assert report.top_ops[0] == ("a", "gemm", 2, 3.0)
        assert report.num_ops == 3

    def test_to_dict_round_trips_through_json(self):
        import json

        payload = json.loads(json.dumps(self._report().to_dict()))
        assert payload["epoch_time"] == 4.0
        assert payload["category_seconds"]["gemm"] == 3.0
        assert payload["top_ops"][0]["name"] == "a"

    def test_render_mentions_headline_numbers(self):
        text = self._report().render()
        assert "critical path: 4 s" in text
        assert "gemm" in text
        assert "overlap loss" in text

    def test_share(self):
        report = self._report()
        assert report.share("gemm") == pytest.approx(0.75)
        assert report.share("nope") == 0.0

    def test_publish_critpath_gauges(self):
        telemetry = Telemetry(registry=MetricsRegistry())
        publish_critpath(telemetry, self._report(), epoch=7)
        flat = telemetry.registry.flatten()
        assert flat["repro_critpath_analyses_total"] == 1.0
        assert flat['repro_critpath_seconds{category="gemm"}'] == 3.0
        assert flat['repro_critpath_share{category="comm"}'] == 0.25
        assert flat["repro_critpath_overlap_loss_seconds"] == 1.0
        assert flat["repro_critpath_epoch"] == 7.0

    def test_chrome_events(self):
        events = critpath_to_chrome_events(self._report())
        xs = [e for e in events if e.get("ph") == "X"]
        assert len(xs) == 3
        assert all(e["pid"] == CRITPATH_PID for e in xs)
        metas = [e for e in events if e.get("ph") == "M"]
        assert {"critical path", "path"} == {
            m["args"]["name"] for m in metas
        }


# -- plan-DAG variant ---------------------------------------------------------


class TestPlanCriticalPath:
    def _captured_plan(self):
        from repro.core import MGGCNTrainer, TrainerConfig
        from repro.datasets import load_dataset
        from repro.nn import GCNModelSpec

        dataset = load_dataset("arxiv", scale=0.002, learnable=True, seed=0)
        model = GCNModelSpec.build(dataset.d0, 8, dataset.num_classes, 2)
        trainer = MGGCNTrainer(
            dataset, model, num_gpus=2,
            config=TrainerConfig(seed=0, capture_epochs=True),
        )
        trainer.train_epoch()  # capture
        assert trainer._plan is not None
        return trainer._plan

    def test_plan_walk_matches_trace_walk_epoch_time(self):
        plan = self._captured_plan()
        report = critical_path_from_plan(plan, t0=0.0)
        starts, ends = plan.compute_timeline(0.0)
        assert report.window_end == pytest.approx(float(ends.max()), rel=0)
        # a true dependency chain: never contains wait steps, and the
        # category seconds sum to the epoch makespan exactly.
        assert all(not s.is_wait for s in report.steps)
        assert sum(report.category_seconds.values()) == pytest.approx(
            report.epoch_time, rel=1e-12
        )

    def test_plan_edges_are_rebuilt_consistently(self):
        plan = self._captured_plan()
        deps = plan.op_dependencies()
        meta = plan.op_meta()
        assert len(deps) == plan.num_ops
        assert len(meta) == plan.num_ops
        assert all(all(0 <= d < plan.num_ops for d in dd) for dd in deps)
        # the timeline must respect every rebuilt edge.
        starts, ends = plan.compute_timeline(0.0)
        for i, dd in enumerate(deps):
            for d in dd:
                assert ends[d] <= starts[i]

    def test_empty_plan_raises(self):
        class Empty:
            num_ops = 0

        with pytest.raises(ConfigurationError):
            critical_path_from_plan(Empty())
