"""Dataset registry, generators (Chung-Lu, BTER, planted), loader."""

import numpy as np
import pytest

from repro.datasets import (
    BTERConfig,
    DatasetSpec,
    SymbolicDataset,
    bter_graph,
    chung_lu_graph,
    degree_profile_from_graph,
    get_spec,
    load_dataset,
    planted_partition_dataset,
    power_law_degrees,
    table1_rows,
)
from repro.datasets.bter import arxiv_like_degrees
from repro.datasets.synthetic import split_masks
from repro.errors import DatasetError


class TestSpecs:
    def test_table1_verbatim(self):
        rows = {r[0]: r for r in table1_rows()}
        assert rows["reddit"][1] == 233_000
        assert rows["reddit"][3] == 602
        assert rows["papers"][2] == 1_610_000_000
        assert rows["cora"][4] == 6
        assert rows["proteins"][4] == 256

    def test_avg_degree(self):
        spec = get_spec("reddit")
        assert spec.avg_degree == pytest.approx(115_000_000 / 233_000)

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            get_spec("imagenet")

    def test_case_insensitive(self):
        assert get_spec("Reddit").name == "reddit"

    def test_scaled_preserves_degree_and_widths(self):
        spec = get_spec("products").scaled(0.01)
        assert spec.d0 == 104
        assert spec.num_classes == 47
        assert spec.avg_degree == pytest.approx(
            get_spec("products").avg_degree, rel=0.05
        )

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(DatasetError):
            get_spec("cora").scaled(0.0)


class TestPowerLawDegrees:
    def test_mean_calibrated(self):
        w = power_law_degrees(10_000, mean_degree=12.0, exponent=2.2)
        assert w.mean() == pytest.approx(12.0, rel=1e-6)

    def test_sorted_descending(self):
        w = power_law_degrees(1000, 5.0)
        assert np.all(np.diff(w) <= 0)

    def test_heavy_tail(self):
        w = power_law_degrees(10_000, 10.0, exponent=2.0)
        assert w[0] > 10 * w.mean()

    def test_validation(self):
        with pytest.raises(DatasetError):
            power_law_degrees(0, 5.0)
        with pytest.raises(DatasetError):
            power_law_degrees(10, -1.0)
        with pytest.raises(DatasetError):
            power_law_degrees(10, 5.0, exponent=1.0)


class TestChungLu:
    def test_basic_properties(self):
        w = power_law_degrees(2000, 8.0)
        adj = chung_lu_graph(w, seed=1)
        assert adj.shape == (2000, 2000)
        assert adj.nnz > 0
        dense_deg = adj.row_degrees()
        # symmetric
        assert np.array_equal(adj.to_dense(), adj.to_dense().T)
        # no self loops
        assert not np.any(adj.rows == adj.cols)

    def test_edge_count_near_target(self):
        w = power_law_degrees(5000, 10.0)
        adj = chung_lu_graph(w, num_edges=25_000, seed=2)
        # symmetrised, deduped: within a factor ~2.2 of 2*requested
        assert 0.45 * 50_000 <= adj.nnz <= 50_000

    def test_degree_correlates_with_weights(self):
        w = power_law_degrees(3000, 10.0)
        adj = chung_lu_graph(w, seed=3)
        deg = adj.row_degrees()
        # top-weight decile should out-degree bottom decile substantially
        assert deg[:300].mean() > 3 * deg[-300:].mean()

    def test_deterministic(self):
        w = power_law_degrees(500, 6.0)
        a = chung_lu_graph(w, seed=7)
        b = chung_lu_graph(w, seed=7)
        assert np.array_equal(a.rows, b.rows)
        assert np.array_equal(a.cols, b.cols)

    def test_validation(self):
        with pytest.raises(DatasetError):
            chung_lu_graph(np.array([]))
        with pytest.raises(DatasetError):
            chung_lu_graph(np.array([-1.0, 2.0]))
        with pytest.raises(DatasetError):
            chung_lu_graph(np.zeros(5))


class TestBTER:
    def test_degree_distribution_roughly_matches(self):
        degrees = arxiv_like_degrees(3000, scale=1)
        adj = bter_graph(BTERConfig(degrees=degrees, clustering=0.2), seed=4)
        realized = np.sort(adj.row_degrees())[::-1]
        target = np.sort(degrees)[::-1]
        # mean within 60% (BTER is approximate at small n)
        assert realized.mean() == pytest.approx(target.mean(), rel=0.6)

    def test_clustering_above_chung_lu(self):
        """BTER's affinity blocks create triangles Chung-Lu lacks."""
        import networkx as nx

        degrees = np.full(600, 10, dtype=np.int64)
        bter = bter_graph(BTERConfig(degrees=degrees, clustering=0.5), seed=5)
        cl = chung_lu_graph(degrees.astype(float), seed=5)

        def avg_clustering(coo):
            g = nx.Graph()
            g.add_nodes_from(range(coo.shape[0]))
            g.add_edges_from(zip(coo.rows.tolist(), coo.cols.tolist()))
            return nx.average_clustering(g)

        assert avg_clustering(bter) > 2 * avg_clustering(cl)

    def test_scaling_average_degree(self):
        d1 = arxiv_like_degrees(2000, scale=1)
        d8 = arxiv_like_degrees(2000, scale=8)
        assert d8.mean() == pytest.approx(8 * d1.mean(), rel=0.15)

    def test_degree_profile_from_graph(self):
        degrees = np.full(100, 4, dtype=np.int64)
        adj = bter_graph(BTERConfig(degrees=degrees), seed=6)
        profile = degree_profile_from_graph(adj)
        assert profile.shape == (100,)
        assert np.all(np.diff(profile) <= 0)

    def test_callable_clustering_profile(self):
        degrees = np.full(200, 6, dtype=np.int64)
        cfg = BTERConfig(degrees=degrees, clustering=lambda d: 1.0 / (1.0 + d))
        adj = bter_graph(cfg, seed=7)
        assert adj.nnz > 0

    def test_validation(self):
        with pytest.raises(DatasetError):
            bter_graph(BTERConfig(degrees=np.array([0, 1])))
        with pytest.raises(DatasetError):
            bter_graph(BTERConfig(degrees=np.array([2, 2]), clustering=1.5))
        with pytest.raises(DatasetError):
            arxiv_like_degrees(10, scale=0)

    def test_deterministic(self):
        degrees = arxiv_like_degrees(500, scale=2)
        a = bter_graph(BTERConfig(degrees=degrees), seed=8)
        b = bter_graph(BTERConfig(degrees=degrees), seed=8)
        assert np.array_equal(a.rows, b.rows)


class TestPlanted:
    def test_homophily_realised(self):
        adj, x, y, train, val, test = planted_partition_dataset(
            2000, num_classes=4, feature_dim=8, avg_degree=12,
            homophily=0.9, seed=9,
        )
        same = (y[adj.rows] == y[adj.cols]).mean()
        assert same > 0.6  # 0.9 within + chance cross hits

    def test_all_classes_present(self):
        _, _, y, _, _, _ = planted_partition_dataset(
            50, num_classes=7, feature_dim=4, seed=10
        )
        assert set(np.unique(y)) == set(range(7))

    def test_features_carry_signal(self):
        _, x, y, _, _, _ = planted_partition_dataset(
            1000, num_classes=3, feature_dim=16, feature_noise=0.1, seed=11
        )
        centroids = np.stack([x[y == c].mean(axis=0) for c in range(3)])
        # distinct centroids
        assert np.linalg.norm(centroids[0] - centroids[1]) > 1.0

    def test_validation(self):
        with pytest.raises(DatasetError):
            planted_partition_dataset(3, num_classes=5, feature_dim=4)
        with pytest.raises(DatasetError):
            planted_partition_dataset(10, 2, 4, homophily=1.5)
        with pytest.raises(DatasetError):
            planted_partition_dataset(10, 2, 4, avg_degree=0)


class TestSplits:
    def test_masks_partition_vertices(self):
        train, val, test = split_masks(100, 0.4, 0.2, seed=12)
        combined = train.astype(int) + val.astype(int) + test.astype(int)
        assert np.all(combined == 1)
        assert train.sum() == 40

    def test_validation(self):
        with pytest.raises(DatasetError):
            split_masks(10, 0.0)
        with pytest.raises(DatasetError):
            split_masks(10, 0.5, 0.6)


class TestLoader:
    def test_functional_load(self):
        ds = load_dataset("arxiv", scale=0.01, seed=13)
        assert not ds.is_symbolic
        assert ds.d0 == 128
        assert ds.num_classes == 40
        assert ds.n == pytest.approx(1690, rel=0.01)
        assert ds.avg_degree == pytest.approx(get_spec("arxiv").avg_degree, rel=0.5)

    def test_symbolic_load_full_size(self):
        ds = load_dataset("papers", symbolic=True)
        assert ds.is_symbolic
        assert ds.n == 111_000_000
        assert ds.num_train >= 1

    def test_learnable_load(self):
        ds = load_dataset("cora", scale=0.2, learnable=True, seed=14)
        # labels must correlate with structure: check homophily
        same = (ds.labels[ds.adjacency.rows] == ds.labels[ds.adjacency.cols]).mean()
        assert same > 1.5 / ds.num_classes

    def test_deterministic(self):
        a = load_dataset("cora", scale=0.1, seed=15)
        b = load_dataset("cora", scale=0.1, seed=15)
        assert np.array_equal(a.adjacency.rows, b.adjacency.rows)
        assert np.allclose(a.features, b.features)

    def test_dataset_validation(self):
        ds = load_dataset("cora", scale=0.1, seed=16)
        from repro.datasets import Dataset

        with pytest.raises(DatasetError):
            Dataset(
                name="bad",
                adjacency=ds.adjacency,
                features=ds.features[:-1],
                labels=ds.labels,
                train_mask=ds.train_mask,
                val_mask=ds.val_mask,
                test_mask=ds.test_mask,
                num_classes=ds.num_classes,
            )

    def test_symbolic_validation(self):
        with pytest.raises(DatasetError):
            SymbolicDataset(name="x", n=0, m=1, d0=1, num_classes=1)
