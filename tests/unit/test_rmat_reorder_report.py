"""R-MAT generator, dataset reordering, markdown report generation."""

import numpy as np
import pytest

from repro.core import MGGCNTrainer, TrainerConfig
from repro.datasets import (
    RMATConfig,
    load_dataset,
    ordering_permutation,
    reorder_dataset,
    rmat_graph,
)
from repro.errors import ConfigurationError, DatasetError
from repro.experiments.report import _result_to_markdown, generate_report
from repro.experiments.runner import ExperimentResult
from repro.hardware import dgx1
from repro.nn import ReferenceGCN
from repro.__main__ import main as cli_main


class TestRMAT:
    def test_basic_shape(self):
        g = rmat_graph(RMATConfig(scale=8, edge_factor=8), seed=1)
        assert g.shape == (256, 256)
        assert g.nnz > 0
        # symmetric, no self loops
        assert np.array_equal(g.to_dense(), g.to_dense().T)
        assert not np.any(g.rows == g.cols)

    def test_heavy_tail(self):
        g = rmat_graph(RMATConfig(scale=11, edge_factor=8), seed=2)
        deg = np.sort(g.row_degrees())[::-1]
        assert deg[0] > 6 * deg.mean()

    def test_uniform_quadrants_are_erdos_renyi_like(self):
        cfg = RMATConfig(scale=10, edge_factor=8, a=0.25, b=0.25, c=0.25)
        g = rmat_graph(cfg, seed=3)
        deg = g.row_degrees().astype(float)
        # no heavy tail under uniform recursion
        assert deg.max() < 4 * deg.mean()

    def test_deterministic(self):
        cfg = RMATConfig(scale=7)
        a = rmat_graph(cfg, seed=4)
        b = rmat_graph(cfg, seed=4)
        assert np.array_equal(a.rows, b.rows)

    def test_directed_variant(self):
        g = rmat_graph(RMATConfig(scale=7), seed=5, symmetrize=False)
        dense = g.to_dense()
        assert not np.array_equal(dense, dense.T)

    def test_validation(self):
        with pytest.raises(DatasetError):
            RMATConfig(scale=0)
        with pytest.raises(DatasetError):
            RMATConfig(scale=5, edge_factor=0)
        with pytest.raises(DatasetError):
            RMATConfig(scale=5, a=0.5, b=0.3, c=0.3)
        with pytest.raises(DatasetError):
            RMATConfig(scale=5, a=0.0)

    def test_trains_a_gcn(self):
        """R-MAT graphs plug into the pipeline end to end."""
        from repro.datasets.loader import Dataset
        from repro.datasets.synthetic import random_features, split_masks
        from repro.nn import GCNModelSpec

        g = rmat_graph(RMATConfig(scale=8, edge_factor=6), seed=6)
        n = g.shape[0]
        rng = np.random.default_rng(6)
        train, val, test = split_masks(n, 0.3, seed=6)
        ds = Dataset(
            name="rmat", adjacency=g,
            features=random_features(n, 8, seed=6),
            labels=rng.integers(0, 3, n),
            train_mask=train, val_mask=val, test_mask=test, num_classes=3,
        )
        model = GCNModelSpec.build(8, 8, 3, 2)
        trainer = MGGCNTrainer(ds, model, machine=dgx1(), num_gpus=4)
        stats = trainer.fit(3)
        assert stats[-1].loss < stats[0].loss * 1.5  # it runs and is sane


class TestReorder:
    @pytest.fixture(scope="class")
    def base(self):
        return load_dataset("cora", scale=0.15, learnable=True, seed=7)

    def test_known_orderings(self, base):
        for ordering in ("original", "random", "degree", "bfs"):
            perm = ordering_permutation(base, ordering, seed=7)
            assert sorted(perm) == list(range(base.n))

    def test_unknown_ordering(self, base):
        with pytest.raises(ConfigurationError):
            ordering_permutation(base, "metis")

    def test_reorder_preserves_structure(self, base):
        perm = ordering_permutation(base, "random", seed=8)
        reordered = reorder_dataset(base, perm)
        assert reordered.m == base.m
        assert reordered.num_train == base.num_train
        assert sorted(reordered.adjacency.row_degrees()) == sorted(
            base.adjacency.row_degrees()
        )

    def test_training_is_permutation_equivariant(self, base):
        """Reordered datasets train to the same losses — the invariant
        that makes ordering a pure performance knob."""
        from repro.nn import GCNModelSpec

        perm = ordering_permutation(base, "random", seed=9)
        reordered = reorder_dataset(base, perm)
        model = GCNModelSpec.build(base.d0, 8, base.num_classes, 2)
        ref_a = ReferenceGCN(base, model, seed=10)
        ref_b = ReferenceGCN(reordered, model, seed=10)
        losses_a = ref_a.fit(4)
        losses_b = ref_b.fit(4)
        assert losses_a == pytest.approx(losses_b, rel=1e-3)

    def test_degree_ordering_concentrates_tiles(self, base):
        from repro.nn import GCNModelSpec
        from repro.sparse import CSRMatrix, uniform_partition
        from repro.sparse.partition import tile_nnz_matrix

        perm = ordering_permutation(base, "degree")
        concentrated = reorder_dataset(base, perm)
        csr = CSRMatrix.from_coo(concentrated.adjacency)
        p = uniform_partition(base.n, 4)
        nnz = tile_nnz_matrix(csr, p, p).astype(float)
        assert nnz.max() > 2 * nnz.mean()


class TestReport:
    def test_result_to_markdown(self):
        r = ExperimentResult("t")
        r.set("row1", "a", 1.0)
        r.set("row1", "b", None)
        r.set("row2", "a", 2.5)
        md = _result_to_markdown(r, "{:.1f}")
        assert "| row1 | 1.0 | OOM |" in md
        assert md.splitlines()[0] == "| | a | b |"

    def test_generate_report_contains_sections(self):
        md = generate_report(include_slow=False)
        assert "# MG-GCN reproduction — measured report" in md
        assert "## Table 3" in md
        assert "skipped" in md  # the slow Fig. 7 section
        assert "| papers | OOM | OOM | OOM |" in md

    def test_cli_report(self, tmp_path, capsys):
        out = tmp_path / "r.md"
        assert cli_main(["report", str(out)]) == 0
        assert out.exists()
        assert "Table 3" in out.read_text()
