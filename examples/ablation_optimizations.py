#!/usr/bin/env python
"""Ablation: what each MG-GCN optimisation buys, one at a time.

Starts from the naive configuration (original ordering, serialised
communication, textbook operation order, full backward pass) and enables
the paper's optimisations cumulatively, reporting epoch time after each:

1. + random vertex permutation (§5.2)
2. + communication/computation overlap (§4.3)
3. + computation-order selection (§4.4)
4. + first-layer backward-SpMM skip (§4.4)

Run:  python examples/ablation_optimizations.py [dataset] [scale] [gpus]
"""

import sys

from repro import GCNModelSpec, MGGCNTrainer, TrainerConfig, dgx1, load_dataset
from repro.utils import ascii_table, format_seconds

STEPS = [
    ("baseline (none)", dict(permute=False, overlap=False,
                             order_optimization=False, first_layer_skip=False)),
    ("+ permutation", dict(permute=True, overlap=False,
                           order_optimization=False, first_layer_skip=False)),
    ("+ overlap", dict(permute=True, overlap=True,
                       order_optimization=False, first_layer_skip=False)),
    ("+ order selection", dict(permute=True, overlap=True,
                               order_optimization=True, first_layer_skip=False)),
    ("+ first-layer skip", dict(permute=True, overlap=True,
                                order_optimization=True, first_layer_skip=True)),
]


def main() -> None:
    dataset_name = sys.argv[1] if len(sys.argv) > 1 else "products"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.002
    gpus = int(sys.argv[3]) if len(sys.argv) > 3 else 8

    dataset = load_dataset(dataset_name, scale=scale, seed=11)
    model = GCNModelSpec.paper_model(1, dataset.d0, dataset.num_classes)
    print(
        f"{dataset.name}: n={dataset.n:,} m={dataset.m:,} on {gpus} GPUs "
        f"(DGX-V100, functional mode)"
    )

    rows = []
    baseline = None
    for label, flags in STEPS:
        cfg = TrainerConfig(seed=11, **flags)
        trainer = MGGCNTrainer(dataset, model, machine=dgx1(),
                               num_gpus=gpus, config=cfg)
        trainer.train_epoch()  # warm-up
        t = trainer.train_epoch().epoch_time
        if baseline is None:
            baseline = t
        rows.append([label, format_seconds(t), f"{baseline / t:.2f}x"])
    print(ascii_table(["configuration", "epoch time", "speedup"], rows))


if __name__ == "__main__":
    main()
