#!/usr/bin/env python
"""Scaling study: GPU-count sweeps at paper scale (symbolic mode).

Reproduces the flavour of the paper's Figures 9-11 interactively:
epoch time and speedup per GPU count for the Table-1 datasets at their
FULL size — possible without 8 physical GPUs because symbolic mode runs
the exact schedule on metadata-only tensors.

Run:  python examples/scaling_study.py [dataset ...]
"""

import sys

from repro import GCNModelSpec, MGGCNTrainer, dgx1, dgx_a100, load_dataset
from repro.errors import DeviceOutOfMemoryError
from repro.utils import ascii_table, format_seconds

GPU_COUNTS = (1, 2, 4, 8)


def sweep(dataset_name: str, machine) -> list:
    dataset = load_dataset(dataset_name, symbolic=True)
    model = GCNModelSpec.paper_model(1, dataset.d0, dataset.num_classes)
    times = {}
    for gpus in GPU_COUNTS:
        try:
            trainer = MGGCNTrainer(dataset, model, machine=machine, num_gpus=gpus)
            times[gpus] = trainer.train_epoch().epoch_time
        except DeviceOutOfMemoryError:
            times[gpus] = None
    row = [dataset_name]
    base = times[1]
    for gpus in GPU_COUNTS:
        t = times[gpus]
        if t is None:
            row.append("OOM")
        elif base is None:
            row.append(format_seconds(t))
        else:
            row.append(f"{format_seconds(t)} ({base / t:.2f}x)")
    return row


def main() -> None:
    datasets = sys.argv[1:] or ["cora", "arxiv", "products", "proteins", "reddit"]
    for machine in (dgx1(), dgx_a100()):
        print(f"\n=== {machine.name}: epoch time (speedup vs 1 GPU) ===")
        rows = [sweep(name, machine) for name in datasets]
        print(ascii_table(["dataset"] + [f"{g} GPU" for g in GPU_COUNTS], rows))


if __name__ == "__main__":
    main()
