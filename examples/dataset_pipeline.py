#!/usr/bin/env python
"""End-to-end dataset pipeline: generate -> persist -> reload -> train.

Builds a BTER graph (the generator the paper uses for its scalability
study), attaches planted-community labels, writes the graph through the
I/O layer (edge list + binary CSR + NPZ bundle), reloads it, and trains.

Run:  python examples/dataset_pipeline.py [out_dir]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import GCNModelSpec, MGGCNTrainer, dgx1
from repro.datasets import BTERConfig, bter_graph, Dataset
from repro.datasets.bter import arxiv_like_degrees
from repro.datasets.synthetic import split_masks
from repro.sparse import add_self_loops
from repro.io import (
    load_dataset_npz,
    read_binary_csr,
    read_edgelist,
    save_dataset_npz,
    write_binary_csr,
    write_edgelist,
)
from repro.sparse import CSRMatrix


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="repro-pipeline-")
    )
    out_dir.mkdir(parents=True, exist_ok=True)
    rng = np.random.default_rng(3)

    # 1. generate a BTER graph with an Arxiv-like degree profile
    n = 3000
    degrees = arxiv_like_degrees(n, scale=2)
    adjacency = bter_graph(BTERConfig(degrees=degrees, clustering=0.25), seed=3)
    print(f"generated BTER graph: n={n}, m={adjacency.nnz}, "
          f"avg degree {adjacency.nnz / n:.1f}")

    # 2. persist through every format the I/O layer offers
    el_path = out_dir / "graph.el"
    csr_path = out_dir / "graph.csr"
    write_edgelist(el_path, adjacency, header="BTER arxiv-profile 2x")
    write_binary_csr(csr_path, CSRMatrix.from_coo(adjacency))
    print(f"wrote {el_path} ({el_path.stat().st_size:,} B) and "
          f"{csr_path} ({csr_path.stat().st_size:,} B)")

    # 3. reload and verify the two formats agree
    from_el = read_edgelist(el_path, num_vertices=n)
    from_bin = read_binary_csr(csr_path)
    assert from_el.nnz == from_bin.nnz == adjacency.nnz
    print("round-trip verified: edge list and binary CSR agree")

    # 4. attach community labels + features, bundle as NPZ
    num_classes = 5
    labels = rng.integers(0, num_classes, size=n, dtype=np.int64)
    centroids = rng.standard_normal((num_classes, 32)) * 4
    features = (
        centroids[labels] + rng.standard_normal((n, 32))
    ).astype(np.float32)
    train, val, test = split_masks(n, 0.3, seed=3)
    # Labels are independent of the BTER structure, so neighbourhood
    # averaging alone would wash the feature signal out; weighted self
    # loops let each vertex keep its own evidence (a standard GCN trick,
    # exposed by the sparse API).
    adjacency_sl = add_self_loops(from_el, weight=adjacency.nnz / n)
    dataset = Dataset(
        name="bter-demo",
        adjacency=adjacency_sl,
        features=features,
        labels=labels,
        train_mask=train,
        val_mask=val,
        test_mask=test,
        num_classes=num_classes,
    )
    npz_path = out_dir / "dataset.npz"
    save_dataset_npz(npz_path, dataset)
    reloaded = load_dataset_npz(npz_path)
    print(f"NPZ bundle {npz_path} round-trips ({npz_path.stat().st_size:,} B)")

    # 5. train on 4 simulated V100s
    model = GCNModelSpec.build(reloaded.d0, 32, reloaded.num_classes, 2)
    trainer = MGGCNTrainer(reloaded, model, machine=dgx1(), num_gpus=4)
    for epoch in range(50):
        stats = trainer.train_epoch()
    print(f"final loss {stats.loss:.4f}; "
          f"test accuracy {trainer.evaluate('test'):.3f}")


if __name__ == "__main__":
    main()
