#!/usr/bin/env python
"""Multi-node scaling study: where full-batch GNN scaling stops and why.

Sweeps Reddit (full Table-1 size, symbolic mode) across 1..32 GPUs of a
4-node DGX-1 cluster connected by 200 Gb/s InfiniBand, then shows the
partitioning family (CAGNET 1D / 1.5D / 2D vs MG-GCN) at one node.

The numbers make the paper's framing concrete: inside a node, NVLink
keeps the broadcast stages cheap and MG-GCN scales (super-linearly on
dense graphs); the moment the communicator spans two nodes, the shared
25 GB/s NIC replaces 150 GB/s of aggregate NVLink and the epoch time
jumps several-fold. This is why the paper targets single-node multi-GPU
systems and leaves clusters as future work.

Run:  python examples/cluster_scaling.py
"""

from repro import GCNModelSpec, MGGCNTrainer, dgx1, load_dataset, multi_node_cluster
from repro.baselines import CAGNET15DTrainer, CAGNET2DTrainer, CAGNETTrainer
from repro.utils import ascii_table, format_seconds


def main() -> None:
    cluster = multi_node_cluster(4, dgx1())
    dataset = load_dataset("reddit", symbolic=True)
    model = GCNModelSpec.paper_model(1, dataset.d0, dataset.num_classes)

    print(f"machine: {cluster.name} ({cluster.num_gpus} GPUs, "
          f"{cluster.num_nodes} nodes, NIC "
          f"{cluster.inter_node_bandwidth / 1e9:.0f} GB/s)\n")

    rows = []
    base = None
    for gpus in (1, 2, 4, 8, 16, 24, 32):
        trainer = MGGCNTrainer(dataset, model, machine=cluster, num_gpus=gpus)
        t = trainer.train_epoch().epoch_time
        if base is None:
            base = t
        nodes = -(-gpus // 8)
        rows.append([gpus, nodes, format_seconds(t), f"{base / t:.2f}x"])
    print("MG-GCN on Reddit (full size):")
    print(ascii_table(["GPUs", "nodes", "epoch", "speedup"], rows))

    print("\npartitioning family at one node (4 GPUs, Arxiv 2x512):")
    ds = load_dataset("arxiv", symbolic=True)
    wide = GCNModelSpec.build(ds.d0, 512, ds.num_classes, 2)
    family = {
        "MG-GCN": MGGCNTrainer(ds, wide, machine=dgx1(), num_gpus=4),
        "CAGNET 1D": CAGNETTrainer(ds, wide, machine=dgx1(), num_gpus=4,
                                   permute=True),
        "CAGNET 1.5D": CAGNET15DTrainer(ds, wide, machine=dgx1(), num_gpus=4,
                                        replication=2),
        "CAGNET 2D": CAGNET2DTrainer(ds, wide, machine=dgx1(), num_gpus=4),
    }
    rows = [
        [name, format_seconds(trainer.train_epoch().epoch_time)]
        for name, trainer in family.items()
    ]
    print(ascii_table(["system", "epoch"], rows))


if __name__ == "__main__":
    main()
