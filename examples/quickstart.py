#!/usr/bin/env python
"""Quickstart: full-batch multi-GPU GCN training in ~20 lines.

Trains a 2-layer GCN on a scaled, learnable Reddit stand-in across 8
simulated A100s, printing the per-epoch loss, the simulated epoch time,
and the final test accuracy.

Run:  python examples/quickstart.py
"""

from repro import GCNModelSpec, MGGCNTrainer, dgx_a100, load_dataset
from repro.utils import format_bytes, format_seconds


def main() -> None:
    # A Reddit-statistics-matched synthetic graph at 1% scale, with
    # planted communities so accuracy is meaningful.
    dataset = load_dataset("reddit", scale=0.01, learnable=True, seed=7)
    print(
        f"dataset: {dataset.name} — {dataset.n} vertices, {dataset.m} edges, "
        f"{dataset.d0} features, {dataset.num_classes} classes"
    )

    model = GCNModelSpec.build(dataset.d0, 128, dataset.num_classes, num_layers=2)
    trainer = MGGCNTrainer(dataset, model, machine=dgx_a100(), num_gpus=8)

    for epoch in range(1, 21):
        stats = trainer.train_epoch()
        if epoch % 5 == 0 or epoch == 1:
            print(
                f"epoch {epoch:>3}: loss {stats.loss:.4f}  "
                f"simulated epoch time {format_seconds(stats.epoch_time)}  "
                f"peak GPU memory {format_bytes(stats.peak_memory)}"
            )

    print(f"\ntest accuracy: {trainer.evaluate('test'):.4f}")
    print(f"train accuracy: {trainer.evaluate('train'):.4f}")

    last = trainer.train_epoch()
    print("\nper-op breakdown of one epoch:")
    for category, pct in sorted(last.breakdown.percentages().items()):
        print(f"  {category:12s} {pct:5.1f}%")


if __name__ == "__main__":
    main()
