#!/usr/bin/env python
"""GAT attention on the SDDMM kernel — the paper's §7 future work, live.

Builds a small planted-community graph and runs a single-head GAT layer
forward pass (SDDMM logits -> row softmax -> SpMM aggregation),
reporting how the (untrained) attention mass distributes over same- vs
cross-community neighbours — the quantity GAT training would sharpen.

Run:  python examples/gat_attention.py
"""

import numpy as np

from repro.datasets import planted_partition_dataset
from repro.nn import GATLayer
from repro.sparse import CSRMatrix
from repro.sparse.normalize import add_self_loops


def main() -> None:
    n, classes, d = 600, 3, 16
    adj, features, labels, *_ = planted_partition_dataset(
        n, num_classes=classes, feature_dim=d, avg_degree=12.0,
        homophily=0.85, feature_noise=0.5, seed=17,
    )
    pattern = CSRMatrix.from_coo(add_self_loops(adj)).transpose()
    print(f"graph: n={n}, m={pattern.nnz}, {classes} communities")

    layer = GATLayer(pattern, in_dim=d, out_dim=8, seed=17)
    out = layer(features)
    print(f"GAT forward: features {features.shape} -> {out.shape}")

    attention = layer.last_attention
    rows = np.repeat(np.arange(n), attention.row_nnz())
    same = labels[rows] == labels[attention.indices]
    mass_same = float(attention.vals[same].sum())
    mass_total = float(attention.vals.sum())
    frac_same_edges = float(same.mean())
    frac_same_mass = mass_same / mass_total
    print(
        f"same-community edges: {frac_same_edges:.1%} of edges carry "
        f"{frac_same_mass:.1%} of the attention mass"
    )

    # untrained attention is already structured by the feature geometry;
    # within-community weights should not be *less* concentrated than a
    # uniform average over neighbours.
    print("attention rows sum to 1:",
          bool(np.allclose(attention.to_dense().sum(1), 1.0, atol=1e-5)))


if __name__ == "__main__":
    main()
