#!/usr/bin/env python
"""Memory planner: will my GCN fit? (the Fig. 12 workflow as a tool).

A downstream user picks a dataset, a hidden width and a machine; this
tool reports, per GPU count, the deepest model that fits and the
per-GPU memory of a few candidate depths — using the byte-exact
accounting the trainer itself enforces.

Run:  python examples/memory_planner.py [dataset] [hidden_dim]
"""

import sys

from repro import GCNModelSpec, MGGCNTrainer, dgx1, dgx_a100, load_dataset
from repro.config import GiB
from repro.errors import DeviceOutOfMemoryError
from repro.profiling import max_layers_that_fit, memory_for_layers
from repro.utils import ascii_table, format_bytes


def main() -> None:
    dataset_name = sys.argv[1] if len(sys.argv) > 1 else "reddit"
    hidden = int(sys.argv[2]) if len(sys.argv) > 2 else 512
    dataset = load_dataset(dataset_name, symbolic=True)
    print(
        f"planning for {dataset.name}: n={dataset.n:,} m={dataset.m:,} "
        f"d0={dataset.d0} hidden={hidden}"
    )

    for machine in (dgx1(), dgx_a100()):
        budget = machine.gpu.memory_bytes
        print(f"\n=== {machine.name} ({format_bytes(budget)} per GPU) ===")
        rows = []
        for gpus in (1, 2, 4, 8):
            deepest = max_layers_that_fit(
                dataset, hidden, num_gpus=gpus, memory_budget=budget
            )
            cells = [str(gpus), str(deepest) if deepest else "none"]
            for layers in (2, 8, 32):
                usage = memory_for_layers(dataset, hidden, layers, gpus)
                cells.append(
                    format_bytes(usage) if usage <= budget else "OOM"
                )
            rows.append(cells)
        print(
            ascii_table(
                ["GPUs", "max layers", "2 layers", "8 layers", "32 layers"],
                rows,
            )
        )

    # cross-check the plan against the real allocator for one config
    print("\ncross-check: instantiating the 2-layer model on 8 GPUs...")
    model = GCNModelSpec.build(dataset.d0, hidden, dataset.num_classes, 2)
    try:
        trainer = MGGCNTrainer(dataset, model, machine=dgx_a100(), num_gpus=8)
        print(
            f"  fits; actual peak per GPU: "
            f"{format_bytes(trainer.ctx.peak_memory())}"
        )
    except DeviceOutOfMemoryError as err:
        print(f"  does not fit: {err}")


if __name__ == "__main__":
    main()
