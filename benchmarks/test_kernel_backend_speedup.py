"""Kernel backends + fused chains + batched submission: eager wall-clock.

The fast paths this PR adds — ``fuse_ops`` (SpMM→GeMM / GeMM→ReLU chains
submitted as one engine op), ``batched_submit`` (per-rank kernel loops
through one ``Engine.submit_many`` with a single group closure, plus the
epoch-invariant stage-plan replay in ``repro.core.spmm_mg``), and the
``blas_batched`` backend (stacked ``np.matmul`` for uniform GeMM groups)
— are pure driver optimisations: simulated results stay *bitwise* equal
to the plain numpy op-at-a-time run. This file measures the *host*
wall-clock per eager epoch on dispatch-bound configurations (narrow
hidden width, many small tiles) and emits ``BENCH_kernel_backends.json``
with the >= 1.5x speedup the issue demands on at least one dataset x
GPU-count point, plus the per-flag breakdown. The emitted file is wired
into the ``repro telemetry diff`` regression gate (self-diff asserted
here; compare two checkouts' files in CI for drift).

Measurement is *interleaved*: each round times one epoch of every
variant back-to-back, so slow drift in host load hits all variants
equally and the reported ratios stay stable run-to-run.
"""

import json
import statistics
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import MGGCNTrainer, TrainerConfig
from repro.datasets import load_dataset
from repro.nn import GCNModelSpec

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel_backends.json"
ROUNDS = 25
MIN_SPEEDUP = 1.5
GPU_COUNTS = (1, 8)

#: dataset x scale points. Narrow layers make per-op numpy compute tiny,
#: so Python dispatch dominates eager epochs — the regime fusion and
#: batched submission target. arxiv keeps the paper's 128-wide features
#: at a strong-scaling size (dispatch-bound at P=8); cora at scale 0.1
#: carries wide (3.7k) input features, so real GeMM work dilutes the win.
DATASETS = (("arxiv", 0.005), ("cora", 0.1))

#: flag sets measured, cheapest first; "optimized" carries the claim.
VARIANTS = {
    "baseline": {},
    "fused": dict(fuse_ops=True),
    "batched": dict(batched_submit=True),
    "optimized": dict(
        fuse_ops=True, batched_submit=True, kernel_backend="blas_batched"
    ),
}


@pytest.fixture(scope="module")
def setup():
    out = {}
    for name, scale in DATASETS:
        ds = load_dataset(name, scale=scale, learnable=True, seed=7)
        model = GCNModelSpec.build(ds.d0, 8, ds.num_classes, 4)
        out[name] = (ds, model)
    return out


def _interleaved_medians(trainers: dict) -> dict:
    """Per-variant median epoch wall-clock, sampled round-robin."""
    samples = {name: [] for name in trainers}
    for tr in trainers.values():
        tr.train_epoch()  # warm numpy/scipy caches and stage plans
    for _ in range(ROUNDS):
        for name, tr in trainers.items():
            t0 = time.perf_counter()
            tr.train_epoch()
            samples[name].append(time.perf_counter() - t0)
    return {name: statistics.median(ts) for name, ts in samples.items()}


def _merge_results(update: dict) -> None:
    data = {}
    if RESULT_PATH.exists():
        data = json.loads(RESULT_PATH.read_text())
    data.update(update)
    RESULT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_eager_fast_path_speedup(once, setup):
    """Fusion + submit_many + blas_batched beat plain eager >= 1.5x."""

    def run():
        results = {}
        for ds_name, _scale in DATASETS:
            ds, model = setup[ds_name]
            for num_gpus in GPU_COUNTS:
                trainers = {
                    name: MGGCNTrainer(
                        ds, model, num_gpus=num_gpus,
                        config=TrainerConfig(record_trace=False, **flags),
                    )
                    for name, flags in VARIANTS.items()
                }
                medians = _interleaved_medians(trainers)
                # every fast path is a pure driver optimisation: the
                # final weights stay bitwise equal to the plain numpy
                # reference.
                reference = trainers["baseline"].get_weights()
                for name, trainer in trainers.items():
                    for wr, wt in zip(reference, trainer.get_weights()):
                        assert np.array_equal(wr, wt), (
                            f"{name} diverged from the numpy reference"
                        )
                results[f"{ds_name}_P{num_gpus}"] = {
                    f"{name}_epoch_ms": med * 1e3
                    for name, med in medians.items()
                } | {
                    "speedup": medians["baseline"] / medians["optimized"],
                }
        return results

    results = once(run)
    _merge_results(
        {
            "config": {
                "datasets": [f"{n}(scale={s:g}, seed=7)" for n, s in DATASETS],
                "gpu_counts": list(GPU_COUNTS),
                "layers": 4,
                "hidden": 8,
                "rounds_measured": ROUNDS,
                "min_speedup": MIN_SPEEDUP,
            },
            "eager": results,
        }
    )
    print()
    for point, row in results.items():
        print(
            f"{point:>10}: baseline {row['baseline_epoch_ms']:.2f} ms -> "
            f"optimized {row['optimized_epoch_ms']:.2f} ms "
            f"({row['speedup']:.2f}x; fused {row['fused_epoch_ms']:.2f} ms, "
            f"batched {row['batched_epoch_ms']:.2f} ms)"
        )
    best = max(row["speedup"] for row in results.values())
    assert best >= MIN_SPEEDUP, (
        f"best eager fast-path speedup {best:.2f}x < {MIN_SPEEDUP}x"
    )


def test_bench_passes_regression_gate(once, setup):
    """The emitted BENCH file self-diffs clean through the gate."""
    del setup

    def run():
        from repro.telemetry import diff_metrics, load_metrics

        assert RESULT_PATH.exists(), "speedup bench must run first"
        metrics = load_metrics(RESULT_PATH)
        assert any("speedup" in name for name in metrics)
        return diff_metrics(metrics, metrics)

    result = once(run)
    assert result.passed
    assert result.compared > 0
