"""Figure 8: SpMM timeline with communication/computation overlap.

Paper: on Products with 4 GPUs (permuted), overlapping shrinks the SpMM
from ~38 ms to ~30 ms (~1.27x); individual compute spans get *slower*
(shared memory bandwidth) but the total shrinks because communication
hides behind them.
"""

from repro.experiments import figures


def test_fig8_overlap_timeline(once):
    result = once(
        figures.fig8_overlap_timeline,
        dataset_name="products",
        num_gpus=4,
        verbose=True,
    )
    serialized = result["serialized"]
    overlapped = result["overlapped"]

    # total SpMM shrinks (paper: 38 ms -> 30 ms, ~1.27x)
    assert overlapped["spmm_time"] < serialized["spmm_time"]
    ratio = serialized["spmm_time"] / overlapped["spmm_time"]
    print(f"\nSpMM span improvement from overlap: {ratio:.2f}x (paper ~1.27x)")
    assert 1.02 <= ratio <= 1.8

    # §6.3: the overlapped compute spans are individually slower
    def mean_comp(spans):
        comp = [s.duration for s in spans if s.kind == "comp"]
        return sum(comp) / len(comp)

    # stages 0..P-2 are derated; overall mean must not be faster
    assert mean_comp(overlapped["spans"]) >= 0.999 * mean_comp(
        serialized["spans"]
    )

    # in the overlapped schedule comm runs concurrently with compute
    comm1 = [s for s in overlapped["spans"]
             if s.kind == "comm" and s.stage == 1 and s.device == "gpu0"][0]
    comp0 = [s for s in overlapped["spans"]
             if s.kind == "comp" and s.stage == 0 and s.device == "gpu0"][0]
    assert comm1.start < comp0.end
