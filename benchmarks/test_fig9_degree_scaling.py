"""Figure 9: speedup vs 1-GPU runtime under average-degree scaling.

Paper: BTER-generated Arxiv-profile graphs with average degree scaled
1x..128x; speedup grows with density, turning super-linear for 2 and 4
GPUs after ~32x and for 8 GPUs after ~64x (peak ~11-12x at 8 GPUs).
"""

from repro.experiments import figures


def test_fig9_degree_scaling(once):
    result = once(figures.fig9_degree_scaling, verbose=True)

    scales = (1, 2, 4, 8, 16, 32, 64, 128)
    # speedup strictly improves with density at every GPU count
    for gpus in (2, 4, 8):
        series = [result.get(f"{s}x", f"{gpus}gpu") for s in scales]
        assert all(v is not None for v in series)
        assert all(b >= a * 0.98 for a, b in zip(series, series[1:])), (
            gpus, series,
        )

    # super-linear regime: 8 GPUs beyond 8x at >= 64x density
    assert result.get("64x", "8gpu") > 8.0
    assert result.get("128x", "8gpu") > 8.0
    # 4 GPUs beyond 4x at >= 64x (paper: after 32x)
    assert result.get("64x", "4gpu") > 4.0
    # peak magnitude comparable to the paper's ~11-12x (wide band)
    assert 8.0 < result.get("128x", "8gpu") < 14.0

    # sub-linear at the 1x density (communication bound)
    assert result.get("1x", "8gpu") < 7.0
    assert result.get("1x", "2gpu") < 2.0
