"""Section 6 'Model': accuracy parity with the DGL baseline.

The paper validates correctness by matching DGL's train-accuracy curve
on Reddit (2 layers, 16 hidden; 95.95% test in their transductive
setup). On our scaled learnable Reddit stand-in we require: both
trainers learn far beyond chance, and their accuracies agree closely.
"""

from repro.experiments import figures


def test_accuracy_parity(once):
    result = once(figures.accuracy_parity, verbose=True)

    acc_mg = result.get("mggcn", "test_acc")
    acc_dgl = result.get("dgl", "test_acc")
    chance = 1.0 / 41  # reddit has 41 classes

    print(f"\ntest accuracy: MG-GCN {acc_mg:.4f}, DGL {acc_dgl:.4f} "
          f"(chance {chance:.3f})")

    assert acc_mg > 10 * chance
    assert acc_dgl > 10 * chance
    assert abs(acc_mg - acc_dgl) < 0.02
