"""Telemetry overhead: the metrics hot path must cost < 5% per epoch.

The observability contract is that always-on instrumentation is cheap
enough to leave on: ``Telemetry.on_op`` resolves its instruments once
per (category, device) pair and then only does float adds, so an
instrumented epoch must stay within ``MAX_OVERHEAD`` (5%) of the
uninstrumented driver wall-clock. This file measures that, checks the
simulated results are bit-identical (telemetry must never perturb the
simulation), and emits ``BENCH_telemetry.json`` — the file
``repro telemetry diff`` can gate future changes against.

Run with ``-m telemetry`` (deselected by default, like the other
wall-clock sweeps: host timing is noisy under parallel CI load).
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import MGGCNTrainer, TrainerConfig
from repro.datasets import load_dataset
from repro.nn import GCNModelSpec
from repro.telemetry import Telemetry, to_jsonl, to_prometheus
from repro.training.loop import TrainingLoop

pytestmark = pytest.mark.telemetry

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"
NUM_GPUS = 4
EPOCHS = 12
MAX_OVERHEAD = 0.05


@pytest.fixture(scope="module")
def setup():
    # Same scheduling-dominated shape the replay benchmark uses: many
    # small ops per epoch, so per-op hook cost is maximally visible.
    ds = load_dataset("cora", scale=0.1, learnable=True, seed=7)
    model = GCNModelSpec.build(ds.d0, 8, ds.num_classes, 4)
    return ds, model


def _timed_epoch(trainer) -> float:
    t0 = time.perf_counter()
    trainer.train_epoch()
    return time.perf_counter() - t0


def test_metrics_hot_path_overhead(once, setup):
    """engine.telemetry hooks cost <= MAX_OVERHEAD per epoch."""
    ds, model = setup

    def run():
        config = TrainerConfig(record_trace=False)
        bare = MGGCNTrainer(ds, model, num_gpus=NUM_GPUS, config=config)
        inst = MGGCNTrainer(ds, model, num_gpus=NUM_GPUS, config=config)
        telemetry = Telemetry(run_id="bench")
        inst.ctx.engine.telemetry = telemetry

        # warm numpy/scipy caches and the instrument cache
        bare.train_epoch()
        inst.train_epoch()

        # interleave so load spikes hit both runs equally
        bare_times, inst_times = [], []
        for _ in range(EPOCHS):
            bare_times.append(_timed_epoch(bare))
            inst_times.append(_timed_epoch(inst))
        return bare, inst, telemetry, bare_times, inst_times

    bare, inst, telemetry, bare_times, inst_times = once(run)
    # best-of comparison: the minimum is the least noise-contaminated
    # estimate of an epoch's true cost under parallel CI load.
    bare_best = min(bare_times)
    inst_best = min(inst_times)
    overhead = inst_best / bare_best - 1.0

    # the hooks observe, never perturb: bit-identical simulated results
    for we, wi in zip(bare.get_weights(), inst.get_weights()):
        assert np.array_equal(we, wi)

    # ...and the counters really did run on every op
    flat = telemetry.registry.flatten()
    total_ops = sum(v for k, v in flat.items()
                    if k.startswith("repro_ops_total"))
    assert total_ops > 0
    assert flat["repro_flops_total"] > 0

    print(f"\nbare {bare_best * 1e3:.3f} ms/epoch, instrumented "
          f"{inst_best * 1e3:.3f} ms/epoch -> overhead {overhead:+.2%} "
          f"(budget {MAX_OVERHEAD:.0%})")
    assert overhead <= MAX_OVERHEAD, (
        f"instrumented epochs {overhead:+.2%} over uninstrumented, "
        f"budget is {MAX_OVERHEAD:.0%}"
    )

    _merge_results({
        "config": {
            "dataset": "cora(scale=0.1, seed=7)",
            "num_gpus": NUM_GPUS,
            "layers": 4,
            "hidden": 8,
            "epochs_measured": EPOCHS,
            "budget": MAX_OVERHEAD,
        },
        "hot_path": {
            "bare_epoch_ms": bare_best * 1e3,
            "instrumented_epoch_ms": inst_best * 1e3,
            "overhead_fraction": overhead,
            "ops_counted": total_ops,
        },
    })


def test_full_loop_and_exporter_cost(once, setup):
    """Informational: full TrainingLoop telemetry + exporter render cost."""
    ds, model = setup

    def run():
        telemetry = Telemetry(run_id="bench-loop")
        trainer = MGGCNTrainer(ds, model, num_gpus=NUM_GPUS)
        loop = TrainingLoop(trainer, max_epochs=EPOCHS, eval_every=0,
                            telemetry=telemetry)
        t0 = time.perf_counter()
        loop.run()
        loop_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        prom = to_prometheus(telemetry.registry)
        prom_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        lines = to_jsonl(telemetry.registry, telemetry.tracer)
        jsonl_s = time.perf_counter() - t0
        return telemetry, loop_s, prom, prom_s, lines, jsonl_s

    telemetry, loop_s, prom, prom_s, lines, jsonl_s = once(run)
    assert "repro_overlap_efficiency" in prom
    assert len(lines) >= 1

    print(f"\nfull loop ({EPOCHS} epochs incl. derived sampling): "
          f"{loop_s * 1e3:.1f} ms; prometheus render {prom_s * 1e3:.2f} ms "
          f"({len(prom.splitlines())} lines); jsonl {jsonl_s * 1e3:.2f} ms")

    _merge_results({
        "full_loop": {
            "loop_wall_ms": loop_s * 1e3,
            "epochs": EPOCHS,
            "prometheus_render_ms": prom_s * 1e3,
            "prometheus_lines": len(prom.splitlines()),
            "jsonl_render_ms": jsonl_s * 1e3,
            "jsonl_records": len(lines),
        },
    })


def _merge_results(update: dict) -> None:
    data = {}
    if RESULT_PATH.exists():
        data = json.loads(RESULT_PATH.read_text())
    data.update(update)
    RESULT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
