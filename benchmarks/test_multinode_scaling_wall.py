"""Extension bench: breaking the multi-node scaling wall (intro + §7).

The paper's motivation cites prior work showing that full-batch GNN
"scaling is blocked outside of the single machine regime"; its future
work is multi-node training. The original version of this bench only
*quantified* the wall with the flat 1D trainer: the per-node NIC
(25 GB/s, shared by 8 GPUs) is two orders of magnitude below aggregate
intra-node NVLink bandwidth, so crossing the node boundary made the
epoch several times slower.

This version measures simulated epochs on the :mod:`repro.parallel`
trainers and shows the wall being broken:

* **1D flat** — the paper's trainer, every broadcast pays the NIC once
  per remote rank (the old wall);
* **1D hierarchical** — same schedule, collectives decomposed into
  intra-node rings + an inter-node tree;
* **1.5D / 2D grids** — the promoted CAGNET trainers with hierarchical
  collectives on every node-spanning group;
* **planner** — whatever :class:`ParallelismPlanner` recommends for the
  configuration (a per-layer mixture or a fixed grid), run for real.

Each value is a *measured* second simulated epoch (first epoch warms
staging). Results merge into ``BENCH_multinode.json`` — compare runs
with ``python -m repro telemetry diff``. Assertions: the planner's
choice never loses to any fixed scheme we measured, and strictly beats
flat 1D whenever the cluster spans nodes; its predictions rank within
``PREDICTION_RTOL`` of measurements.
"""

import json
from pathlib import Path

import pytest

from repro.core import MGGCNTrainer, TrainerConfig
from repro.datasets import load_dataset
from repro.hardware import dgx1, multi_node_cluster
from repro.nn import GCNModelSpec
from repro.parallel import (
    MixtureTrainer,
    Parallel15DTrainer,
    Parallel2DTrainer,
    ParallelismPlanner,
)
from repro.utils.format import format_seconds

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_multinode.json"
NODE_COUNTS = (1, 2, 4)
#: planner epoch predictions must land within 35% of the measured epoch
#: (they share the comm model but approximate overlap and skew).
PREDICTION_RTOL = 0.35


def _merge_results(update: dict) -> None:
    data = {}
    if RESULT_PATH.exists():
        data = json.loads(RESULT_PATH.read_text())
    data.update(update)
    RESULT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _measured_epoch(trainer) -> float:
    """Simulated time of the second epoch (first epoch warms staging)."""
    trainer.train_epoch()
    return trainer.train_epoch().epoch_time


def _cluster(nodes: int):
    return multi_node_cluster(nodes, dgx1()) if nodes > 1 else dgx1()


@pytest.fixture(scope="module")
def setup():
    ds = load_dataset("reddit", symbolic=True)
    model = GCNModelSpec.paper_model(1, ds.d0, ds.num_classes)
    return ds, model


def _measure_schemes(ds, model, cluster, nodes: int) -> dict:
    P = cluster.num_gpus
    measured = {
        "1d": _measured_epoch(MGGCNTrainer(ds, model, machine=cluster)),
        "1d_hier": _measured_epoch(
            MGGCNTrainer(
                ds,
                model,
                machine=cluster,
                config=TrainerConfig(hierarchical_collectives=True),
            )
        ),
    }
    mix = MixtureTrainer(ds, model, machine=cluster)
    measured["mixture"] = _measured_epoch(mix)
    replication = nodes if nodes > 1 else 2
    measured["15d"] = _measured_epoch(
        Parallel15DTrainer(
            ds, model, machine=cluster, replication=replication
        )
    )
    r = int(P**0.5)
    if r * r == P and min(model.layer_dims) >= r:
        measured["2d"] = _measured_epoch(
            Parallel2DTrainer(ds, model, machine=cluster)
        )
    return measured, mix.plan


def test_multinode_parallelism(once, setup):
    ds, model = setup

    def run():
        results = {}
        for nodes in NODE_COUNTS:
            cluster = _cluster(nodes)
            measured, plan = _measure_schemes(ds, model, cluster, nodes)
            # the planner's pick, resolved to a measured trainer run
            choice = plan.best_overall
            planner_time = measured[choice]
            predicted = (
                plan.mixture_estimate
                if choice == "mixture"
                else plan.fixed_estimates[choice]
            )
            results[str(nodes)] = {
                "gpus": cluster.num_gpus,
                "measured_epoch_s": measured,
                "planner_choice": choice,
                "planner_epoch_s": planner_time,
                "planner_predicted_s": predicted,
                "layer_schemes": plan.schemes,
            }
        return results

    results = once(run)
    _merge_results(
        {
            "config": {
                "dataset": "reddit (symbolic, full size)",
                "model_dims": list(model.layer_dims),
                "node": "dgx1 (8x V100), 200 Gb/s IB",
                "prediction_rtol": PREDICTION_RTOL,
            },
            "nodes": results,
        }
    )

    print("\nReddit simulated epoch on DGX-1 nodes over 200 Gb/s IB:")
    for nodes, row in results.items():
        parts = "  ".join(
            f"{k} {format_seconds(v)}"
            for k, v in sorted(row["measured_epoch_s"].items())
        )
        print(
            f"  {nodes} node(s) / {row['gpus']} GPUs: {parts}  "
            f"-> planner picks {row['planner_choice']} "
            f"({format_seconds(row['planner_epoch_s'])})"
        )

    for nodes, row in results.items():
        measured = row["measured_epoch_s"]
        planner_time = row["planner_epoch_s"]
        # the planner never loses to any fixed scheme it was asked to beat
        best_fixed = min(measured.values())
        assert planner_time <= best_fixed + 1e-12, (
            f"{nodes} nodes: planner chose {row['planner_choice']} "
            f"({planner_time:.3e}s) but a fixed scheme ran {best_fixed:.3e}s"
        )
        # crossing the node boundary: hierarchy + planning break the wall
        if int(nodes) > 1:
            assert planner_time < measured["1d"], (
                f"{nodes} nodes: planner ({planner_time:.3e}s) must beat "
                f"flat 1D ({measured['1d']:.3e}s)"
            )
        # prediction quality: the ranking came from trusted numbers
        predicted = row["planner_predicted_s"]
        assert abs(predicted - planner_time) <= PREDICTION_RTOL * planner_time

    # the old wall is still visible in the flat trainer ...
    assert results["2"]["measured_epoch_s"]["1d"] > \
        2 * results["1"]["measured_epoch_s"]["1d"]
    # ... and the planner's choice scales through it
    assert results["2"]["planner_epoch_s"] < \
        2 * results["1"]["planner_epoch_s"]
    assert results["4"]["planner_epoch_s"] < \
        2 * results["1"]["planner_epoch_s"]


@pytest.mark.multinode
def test_multinode_hierarchy_sweep(once, setup):
    """Long sweep: hierarchical 1D epoch stays flat as nodes scale 1->8."""
    ds, model = setup

    def run():
        times = {}
        for nodes in (1, 2, 4, 8):
            trainer = MGGCNTrainer(
                ds,
                model,
                machine=_cluster(nodes),
                config=TrainerConfig(hierarchical_collectives=True),
            )
            times[nodes] = _measured_epoch(trainer)
        return times

    times = once(run)
    print("\nhierarchical 1D epoch vs node count:")
    for nodes, t in times.items():
        print(f"  {nodes} node(s): {format_seconds(t)}")
    # the NIC tree costs a near-constant factor once, not per node
    assert times[8] < 1.5 * times[2]
