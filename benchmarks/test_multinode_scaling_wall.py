"""Extension bench: the multi-node scaling wall (intro + §7).

The paper's motivation cites prior work showing that full-batch GNN
"scaling is blocked outside of the single machine regime" (CAGNET could
not scale past 4 GPUs/one node), and its future work is multi-node
training. On a modelled cluster of DGX-1 nodes over 200 Gb/s InfiniBand
we quantify the wall: crossing the node boundary makes the epoch several
times slower, because the per-node NIC (25 GB/s, shared by 8 GPUs) is
two orders of magnitude below the aggregate intra-node NVLink bandwidth.
"""

from repro.core import MGGCNTrainer
from repro.datasets import load_dataset
from repro.hardware import dgx1, multi_node_cluster
from repro.nn import GCNModelSpec
from repro.utils.format import format_seconds


def test_multinode_scaling_wall(once):
    def run():
        cluster = multi_node_cluster(4, dgx1())
        ds = load_dataset("reddit", symbolic=True)
        model = GCNModelSpec.paper_model(1, ds.d0, ds.num_classes)
        times = {}
        for gpus in (1, 2, 4, 8, 16, 32):
            trainer = MGGCNTrainer(ds, model, machine=cluster, num_gpus=gpus)
            times[gpus] = trainer.train_epoch().epoch_time
        return times

    times = once(run)
    print("\nReddit epoch time on a 4-node DGX-1 cluster (200 Gb/s IB):")
    for gpus, t in times.items():
        nodes = -(-gpus // 8)
        print(f"  {gpus:>2} GPUs ({nodes} node{'s' if nodes > 1 else ''}): "
              f"{format_seconds(t)}")

    # within the node: healthy scaling
    assert times[8] < times[4] < times[1]
    # crossing the node boundary: the wall
    assert times[16] > 2 * times[8]
    # more nodes do not recover single-node performance
    assert times[32] > 2 * times[8]
