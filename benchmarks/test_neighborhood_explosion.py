"""Extension bench: the neighbourhood-explosion argument (intro, §1).

The paper motivates full-batch training by two claims about mini-batch
(sampled) training:

1. "starting from the mini-batch nodes, it is possible to reach almost
   every single node in the graph in just a few hops … which increases
   the work performed during a single epoch exponentially";
2. "mini-batch training can lead to lower accuracy compared to
   full-batch training" [20].

We quantify both on a Reddit-density instance: the unrestricted k-hop
reach of a small batch, the per-epoch touched-vertex blow-up of a
fanout sampler, and the accuracy of sampled vs full-batch training
under an identical epoch budget.
"""

import numpy as np

from repro.core import MGGCNTrainer, TrainerConfig
from repro.datasets import load_dataset
from repro.hardware import dgx_a100
from repro.nn import GCNModelSpec
from repro.sampling import MiniBatchGCNTrainer, NeighborSampler, neighborhood_expansion
from repro.sparse.normalize import gcn_normalize


def test_neighborhood_explosion(once):
    def run():
        ds = load_dataset("reddit", scale=0.01, learnable=True, seed=91)
        adj = gcn_normalize(ds.adjacency).transpose()

        # (1) unrestricted reach of a 16-seed batch
        reach = neighborhood_expansion(adj, np.arange(16), hops=2)

        # (1b) per-epoch touched-source volume of a 10/10 fanout sampler
        sampler = NeighborSampler(adj, fanouts=[10, 10])
        train_ids = np.nonzero(ds.train_mask)[0]
        rng = np.random.default_rng(91)
        touched = 0
        for start in range(0, train_ids.size, 64):
            blocks = sampler.sample(train_ids[start : start + 64], rng=rng)
            touched += blocks[0].num_src

        # (2) accuracy under the same epoch budget
        model = GCNModelSpec.build(ds.d0, 32, ds.num_classes, 2)
        full = MGGCNTrainer(ds, model, machine=dgx_a100(), num_gpus=8,
                            config=TrainerConfig(seed=91))
        mini = MiniBatchGCNTrainer(ds, model, fanouts=[10, 10],
                                   batch_size=64, machine=dgx_a100(), seed=91)
        epochs = 15
        full.fit(epochs)
        mini.fit(epochs)
        return {
            "n": ds.n,
            "reach": reach,
            "touched_per_epoch": touched,
            "full_acc": full.evaluate("test"),
            "mini_acc": mini.evaluate("test"),
        }

    result = once(run)
    n = result["n"]
    reach = result["reach"]
    print(f"\nk-hop reach of 16 seeds (n={n}): {reach}")
    print(f"vertices touched per sampled epoch: "
          f"{result['touched_per_epoch']:,} (full batch touches {n:,})")
    print(f"test accuracy after 15 epochs: full {result['full_acc']:.4f} "
          f"vs sampled {result['mini_acc']:.4f}")

    # claim 1: a few hops reach almost every node
    assert reach[2] > 0.9 * n
    # claim 1b: sampled epochs do strictly more vertex-touch work
    assert result["touched_per_epoch"] > n
    # claim 2: full batch is at least as accurate under the same budget
    assert result["full_acc"] >= result["mini_acc"] - 0.01
