"""Figure 7: epoch-runtime speedup from permutation and overlap.

Paper claims reproduced:
* permutation may cost a little at small GPU counts but improves the
  epoch significantly as GPUs increase — ~1.5x on Products/Reddit at 8;
* enabling overlap adds a further ~1.15x at 8 GPUs;
* Cora (tiny) sees no meaningful benefit from either.
"""

from repro.experiments import figures


def test_fig7_perm_overlap_speedup(once):
    result = once(figures.fig7_perm_overlap_speedup, verbose=True)

    # permutation pays off at 8 GPUs on the dense datasets
    for name in ("products", "reddit", "proteins"):
        perm8 = result.get(f"{name}/8", "perm")
        assert perm8 is not None and perm8 > 1.25, (name, perm8)

    # paper's ~1.5x anchor on Products/Reddit at 8 GPUs (wide band)
    for name in ("products", "reddit"):
        perm8 = result.get(f"{name}/8", "perm")
        assert 1.2 <= perm8 <= 2.2, (name, perm8)

    # overlap adds on top of permutation at 8 GPUs
    for name in ("products", "reddit", "arxiv"):
        perm8 = result.get(f"{name}/8", "perm")
        both8 = result.get(f"{name}/8", "perm+ovlp")
        assert both8 > perm8, name
        extra = both8 / perm8
        assert 1.03 <= extra <= 1.6, (name, extra)  # paper: ~1.15x

    # benefit grows with the GPU count
    for name in ("products", "reddit"):
        assert result.get(f"{name}/8", "perm") > result.get(f"{name}/2", "perm")

    # Cora: no meaningful effect anywhere
    for gpus in (2, 4, 8):
        perm = result.get(f"cora/{gpus}", "perm")
        assert 0.9 <= perm <= 1.15, (gpus, perm)
