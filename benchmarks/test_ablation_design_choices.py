"""Ablations for the design choices DESIGN.md calls out (beyond the paper).

Each MG-GCN optimisation is toggled in isolation on a scaled Products
instance to measure its individual contribution:

* buffer reuse (L+3 vs eager) — memory, not runtime;
* computation-order selection (§4.4) — epoch runtime;
* first-layer backward-SpMM skip (§4.4) — epoch runtime;
* overlap (§4.3) — epoch runtime (also covered by Fig. 7/8 benches).
"""

import pytest

from repro.core import MGGCNTrainer, TrainerConfig
from repro.datasets import load_dataset
from repro.hardware import dgx1
from repro.nn import BufferPlan, GCNModelSpec


@pytest.fixture(scope="module")
def setup():
    ds = load_dataset("products", scale=0.002, seed=51)
    model = GCNModelSpec.paper_model(1, ds.d0, ds.num_classes)
    return ds, model


def _epoch_time(ds, model, **flags):
    cfg = TrainerConfig(seed=51, **flags)
    trainer = MGGCNTrainer(ds, model, machine=dgx1(), num_gpus=8, config=cfg)
    trainer.train_epoch()
    return trainer.train_epoch().epoch_time


def test_ablation_order_selection(once, setup):
    ds, model = setup

    def run():
        base = _epoch_time(ds, model, order_optimization=False,
                           first_layer_skip=False)
        opt = _epoch_time(ds, model, order_optimization=True,
                          first_layer_skip=False)
        return base, opt

    base, opt = once(run)
    print(f"\norder selection: {base * 1e3:.2f} ms -> {opt * 1e3:.2f} ms "
          f"({base / opt:.2f}x)")
    # products layer 0 grows 104 -> 512: aggregate-first broadcasts the
    # narrow operand, so order selection must help.
    assert opt < base


def test_ablation_first_layer_skip(once, setup):
    ds, model = setup

    def run():
        full = _epoch_time(ds, model, first_layer_skip=False)
        skip = _epoch_time(ds, model, first_layer_skip=True)
        return full, skip

    full, skip = once(run)
    print(f"\nfirst-layer skip: {full * 1e3:.2f} ms -> {skip * 1e3:.2f} ms "
          f"({full / skip:.2f}x)")
    # skipping one of the three distributed SpMMs must help materially
    assert skip < 0.95 * full


def test_ablation_overlap(once, setup):
    ds, model = setup

    def run():
        serial = _epoch_time(ds, model, overlap=False)
        overlapped = _epoch_time(ds, model, overlap=True)
        return serial, overlapped

    serial, overlapped = once(run)
    print(f"\noverlap: {serial * 1e3:.2f} ms -> {overlapped * 1e3:.2f} ms "
          f"({serial / overlapped:.2f}x)")
    assert overlapped < serial


def test_ablation_buffer_reuse_memory(once):
    """The shared scheme's memory advantage grows linearly with depth."""

    def run():
        rows = 30_000
        out = {}
        for L in (2, 4, 8, 16):
            dims = tuple([602] + [512] * (L - 1) + [41])
            shared = BufferPlan(layer_dims=dims, rows=rows, bc_rows=rows)
            eager = BufferPlan(layer_dims=dims, rows=rows, scheme="eager")
            out[L] = eager.total_bytes / shared.total_bytes
        return out

    ratios = once(run)
    print("\neager/shared buffer-bytes ratio by depth:", {
        L: round(r, 2) for L, r in ratios.items()
    })
    assert ratios[16] > ratios[2]
    assert ratios[16] > 2.0
