"""Table 3: MG-GCN epoch times on DGX-A100 (the paper's headline table).

Paper values (seconds):

=========  ======  ======  ========  ========
GPUs       Reddit  Papers  Products  Proteins
=========  ======  ======  ========  ========
1          0.033   OOM     0.355     4.221
2          0.017   OOM     0.202     2.272
4          0.012   OOM     0.110     1.191
8          0.012   2.89    0.067     0.641
=========  ======  ======  ========  ========

We assert the OOM pattern exactly and the runtimes within a 3x band
(Products/Proteins land within ~15% in practice; Reddit's tiny 2x16
model is launch-bound and diverges more — see EXPERIMENTS.md).
"""

from repro.experiments import figures

PAPER = {
    "reddit": {1: 0.033, 2: 0.017, 4: 0.012, 8: 0.012},
    "products": {1: 0.355, 2: 0.202, 4: 0.110, 8: 0.067},
    "proteins": {1: 4.221, 2: 2.272, 4: 1.191, 8: 0.641},
    "papers": {8: 2.89},
}


def test_table3_mggcn_a100(once):
    result = once(figures.table3_mggcn_a100, verbose=True)

    # OOM pattern: papers only fits on all 8 A100s
    for gpus in ("1", "2", "4"):
        assert result.get("papers", gpus) is None
    assert result.get("papers", "8") is not None

    print("\npaper vs measured (seconds):")
    for name, cells in PAPER.items():
        for gpus, paper_t in cells.items():
            ours = result.get(name, str(gpus))
            assert ours is not None, (name, gpus)
            print(f"  {name:9s} P{gpus}: measured {ours:.3f}  paper {paper_t}")
            assert paper_t / 3 <= ours <= paper_t * 3, (name, gpus, ours)

    # Proteins/Products match especially closely (within 2x)
    for name in ("products", "proteins"):
        for gpus, paper_t in PAPER[name].items():
            ours = result.get(name, str(gpus))
            assert paper_t / 2 <= ours <= paper_t * 2, (name, gpus, ours)

    # Reddit h=16 flattens after 4 GPUs (paper: 0.012 -> 0.012)
    assert result.get("reddit", "8") > 0.55 * result.get("reddit", "4")
