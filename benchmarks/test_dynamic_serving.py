"""Dynamic serving: delta invalidation efficiency and warm-start payoff.

Two claims carry the ``repro.dynamic`` subsystem and both are gated
here. First, delta cache invalidation evicts a *minority* of the
serving LRU per generation — the L-hop-affected set of a small mutation
batch is far smaller than the flush-equivalent (the whole resident
cache), so warm entries keep serving across generations; transparency
(bitwise-equal logits vs a cold engine on the final graph) is asserted
alongside so the savings are not bought with staleness. Second,
warm-start retraining via :class:`~repro.dynamic.IncrementalTrainer`
reaches the from-scratch validation-loss target in *strictly fewer*
epochs than the scratch budget. Results land in ``BENCH_dynamic.json``,
wired into the ``repro telemetry diff`` regression gate (self-diff
asserted here).
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core import TrainerConfig
from repro.datasets import load_dataset, sample_query_vertices
from repro.dynamic import (
    DynamicGraph,
    DynamicServingEngine,
    IncrementalTrainer,
    poisson_mutations,
)
from repro.hardware import dgx_a100
from repro.nn import GCNModelSpec
from repro.nn.init import init_weights
from repro.serve import ServingConfig, ServingEngine, poisson_workload

pytestmark = pytest.mark.dynbench

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_dynamic.json"

MAX_EVICTION_FRACTION = 0.5  # delta evictions must be a minority of flush
NUM_REQUESTS = 60
NUM_MUTATION_BATCHES = 4
PRETRAIN_EPOCHS = 30
SCRATCH_EPOCHS = 12
WARM_SEEDS = (7, 11, 13)


def _merge_results(update: dict) -> None:
    data = {}
    if RESULT_PATH.exists():
        data = json.loads(RESULT_PATH.read_text())
    data.update(update)
    RESULT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_delta_invalidation_evicts_minority(once):
    """Zipf query + mutation stream: evicted/flush-equivalent < 0.5,
    with bitwise-transparent post-run queries."""

    def run():
        dataset = load_dataset("reddit", scale=0.002, learnable=True, seed=0)
        spec = GCNModelSpec.build(dataset.d0, 16, dataset.num_classes, 2)
        weights = init_weights(spec.layer_dims, seed=3)
        config = ServingConfig(
            machine=dgx_a100(), num_gpus=4, cache_entries=4 * dataset.n,
            num_pinned=8, max_batch_size=8, max_wait=1e-3,
        )
        dyn = DynamicServingEngine(
            DynamicGraph(dataset), weights, spec, config=config
        )
        requests = poisson_workload(
            dataset, NUM_REQUESTS, rate=2000.0, skew=1.0, seed=11
        )
        mutations = poisson_mutations(
            dataset, NUM_MUTATION_BATCHES, rate=400.0,
            edges_per_batch=10, skew=0.8, seed=13,
        )
        result = dyn.run(requests, mutations)
        fraction = result.total_delta_evicted / result.total_flush_equivalent

        snap = dyn.graph.snapshot_dataset()
        cold = ServingEngine(snap, weights, spec, config=config)
        targets = sample_query_vertices(snap, 30, skew=0.7, seed=17)
        transparent = bool(
            np.array_equal(dyn.engine.query(targets), cold.query(targets))
        )
        return {
            "generations": len(result.generations),
            "delta_evicted": result.total_delta_evicted,
            "flush_equivalent": result.total_flush_equivalent,
            "eviction_fraction": fraction,
            "per_generation_fraction": [
                g.eviction_fraction for g in result.generations
            ],
            "bitwise_transparent": transparent,
            "throughput_rps": result.summary["throughput_rps"],
            "latency_p99": result.summary["latency_p99"],
        }

    row = once(run)
    _merge_results(
        {
            "config": {
                "dataset": "reddit(scale=0.002, seed=0)",
                "requests": NUM_REQUESTS,
                "mutation_batches": NUM_MUTATION_BATCHES,
                "max_eviction_fraction": MAX_EVICTION_FRACTION,
                "pretrain_epochs": PRETRAIN_EPOCHS,
                "scratch_epochs": SCRATCH_EPOCHS,
            },
            "delta_invalidation": row,
        }
    )
    print()
    print(
        f"delta invalidation: {row['delta_evicted']}/"
        f"{row['flush_equivalent']} entries evicted over "
        f"{row['generations']} generations "
        f"({row['eviction_fraction'] * 100:.1f}% of a full flush), "
        f"transparent={row['bitwise_transparent']}"
    )
    assert row["bitwise_transparent"], (
        "delta invalidation must be indistinguishable from a cold cache"
    )
    assert row["eviction_fraction"] < MAX_EVICTION_FRACTION, (
        f"evicted {row['eviction_fraction']:.3f} of flush-equivalent, "
        f"gate is < {MAX_EVICTION_FRACTION}"
    )


def test_warm_start_beats_scratch(once):
    """Warm-start reaches the scratch loss target in strictly fewer
    epochs, across mutation seeds."""

    def run():
        dataset = load_dataset("cora", scale=0.25, learnable=True, seed=0)
        spec = GCNModelSpec.build(dataset.d0, 16, dataset.num_classes, 2)
        rows = {}
        for seed in WARM_SEEDS:
            graph = DynamicGraph(dataset)
            inc = IncrementalTrainer(
                graph, spec, num_gpus=2,
                config=TrainerConfig(seed=1, lr=1e-3),
            )
            for _ in range(PRETRAIN_EPOCHS):
                inc.trainer.train_epoch()
            for batch in poisson_mutations(
                dataset, 1, rate=5.0, edges_per_batch=6, skew=0.0, seed=seed
            ):
                graph.apply_and_commit(batch)
            report = inc.compare_to_scratch(scratch_epochs=SCRATCH_EPOCHS)
            rows[f"mutation_seed_{seed}"] = {
                "target_loss": report.target_loss,
                "warm_epochs": report.warm_epochs,
                "scratch_epochs": report.scratch_epochs,
                "epochs_saved": report.epochs_saved,
                "warm_reached_target": report.warm_reached_target,
                "warm_first_loss": report.warm_losses[0],
                "warm_final_loss": report.warm_losses[-1],
            }
        return rows

    rows = once(run)
    _merge_results({"warm_start": rows})
    print()
    for name, row in rows.items():
        print(
            f"{name}: warm {row['warm_epochs']} vs scratch "
            f"{row['scratch_epochs']} epochs to loss "
            f"{row['target_loss']:.4f} ({row['epochs_saved']} saved)"
        )
    for name, row in rows.items():
        assert row["warm_reached_target"], f"{name}: warm never hit target"
        assert row["warm_epochs"] < row["scratch_epochs"], (
            f"{name}: warm start must beat the scratch budget strictly"
        )


def test_bench_passes_regression_gate(once):
    """The emitted BENCH file self-diffs clean through the gate."""

    def run():
        from repro.telemetry import diff_metrics, load_metrics

        assert RESULT_PATH.exists(), "dynamic bench must run first"
        metrics = load_metrics(RESULT_PATH)
        assert any("eviction_fraction" in name for name in metrics)
        assert any("epochs_saved" in name for name in metrics)
        return diff_metrics(metrics, metrics)

    result = once(run)
    assert result.passed
    assert result.compared > 0
