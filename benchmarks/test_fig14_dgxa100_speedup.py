"""Figure 14: speedup w.r.t. DGL on DGX-A100.

Paper anchors: single-GPU 2.2x (Cora), 1.8x (Arxiv), 1.5x (Products),
1.5x (Reddit); multi-GPU reaches 8.5x (Products) and 8.3x (Reddit) over
DGL at 8 GPUs.
"""

from repro.experiments import figures

PAPER_1GPU = {"cora": 2.2, "arxiv": 1.8, "products": 1.5, "reddit": 1.5}


def test_fig14_dgxa100_speedup(once):
    result = once(figures.fig14_dgxa100_speedup, verbose=True)

    print("\n1-GPU speedup vs DGL (paper value):")
    for name, paper in PAPER_1GPU.items():
        ours = result.get(f"{name}/mggcn", "1")
        print(f"  {name:9s} measured {ours:.2f}x  paper {paper}x")
        assert 1.2 <= ours <= 3.5, name

    # self-scaling at 8 GPUs (paper: products 8.5/1.5 ~ 5.7x,
    # reddit 8.3/1.5 ~ 5.5x over the 1-GPU run)
    for name in ("products", "reddit"):
        self_speedup = result.get(f"{name}/mggcn", "8") / result.get(
            f"{name}/mggcn", "1"
        )
        print(f"  {name} 8-GPU self-speedup {self_speedup:.2f}x (paper ~5.5-5.7x)")
        assert 3.5 <= self_speedup <= 8.5, name

    # monotone scaling
    for name in ("arxiv", "products", "reddit"):
        s = [result.get(f"{name}/mggcn", g) for g in ("1", "2", "4", "8")]
        assert s[0] < s[-1], name
