"""Figure 5: runtime breakdown of GCN computation (DGX-V100).

Paper claims reproduced here:
* SpMM takes 60-94% of the epoch on the large datasets (Products,
  Proteins, Reddit) and GeMM is the secondary cost (5-20%);
* small datasets (Cora) are GeMM-bound;
* Proteins cannot run on 1 or 2 GPUs (OOM cells in the figure).
"""

from repro.experiments import figures


def test_fig5_breakdown(once):
    result = once(figures.fig5_breakdown, verbose=True)

    # SpMM dominance on large datasets, every GPU count that fits
    for name in ("products", "reddit"):
        for gpus in (1, 2, 4, 8):
            spmm = result.get(f"{name}/{gpus}", "spmm")
            assert spmm is not None and spmm > 55.0, (name, gpus, spmm)
    for gpus in (4, 8):
        assert result.get(f"proteins/{gpus}", "spmm") > 80.0

    # GeMM-bound small dataset
    assert result.get("cora/1", "gemm") > result.get("cora/1", "spmm")

    # OOM cells
    assert result.get("proteins/1", "spmm") is None
    assert result.get("proteins/2", "spmm") is None
