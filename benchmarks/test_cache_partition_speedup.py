"""Training-time remote-embedding cache: broadcast-byte reduction.

The CaPGNN-style training cache admits high-degree remote tile rows
under a byte budget and serves them locally during serve epochs, so a
rank broadcasting its activation tile only moves the *miss* rows. This
file measures forward broadcast bytes per epoch straight off the engine
trace (the same events ``repro telemetry`` renders) on arxiv and reddit
at P=8, staleness 2, with a budget generous enough to cache every
remote row — the regime the ISSUE's >= 30% floor targets — and checks
the accuracy cost of serving stale embeddings stays within a couple of
boundary test vertices of the exact run. Resource-aware partitioning
rides along as a variant so the emitted numbers cover the paired
feature. Results land in ``BENCH_cache_partition.json``, wired into the
``repro telemetry diff`` regression gate (self-diff asserted here).

Accuracy note: test accuracy is a discrete metric — on these scaled
graphs a single boundary vertex is ~0.1%. Exact rtol=1e-5 parity under
staleness is asserted on a convergent task in
``tests/integration/test_cache_training.py``; here the tolerance is
``ACC_SLACK_VERTICES`` flips of one test vertex.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core import MGGCNTrainer, TrainerConfig
from repro.core.partitioner import partition_quality
from repro.datasets import load_dataset
from repro.nn import GCNModelSpec

pytestmark = pytest.mark.cachebench

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_cache_partition.json"

P = 8
STALENESS = 2
BUDGET = 10**12  # effectively unbounded: cache every remote row
MIN_REDUCTION = 0.30
BYTE_EPOCHS = 6  # two full refresh/serve cycles at cadence 3
ACC_EPOCHS = 180  # converged on both datasets
ACC_SLACK_VERTICES = 2

DATASETS = (("arxiv", 0.02), ("reddit", 0.005))

VARIANTS = {
    "baseline": {},
    "cached": dict(
        cache_staleness_epochs=STALENESS, cache_budget_bytes=BUDGET
    ),
    "cached_resource_aware": dict(
        cache_staleness_epochs=STALENESS,
        cache_budget_bytes=BUDGET,
        partition_strategy="resource_aware",
    ),
}


@pytest.fixture(scope="module")
def setup():
    out = {}
    for name, scale in DATASETS:
        ds = load_dataset(name, scale=scale, learnable=True, seed=7)
        model = GCNModelSpec.build(ds.d0, 16, ds.num_classes, 2)
        out[name] = (ds, model)
    return out


def _trainer(ds, model, record_trace, **flags):
    cfg = TrainerConfig(
        first_layer_skip=False, seed=7, record_trace=record_trace, **flags
    )
    return MGGCNTrainer(ds, model, num_gpus=P, config=cfg)


def _fwd_broadcast_bytes(stats):
    return sum(
        ev.nbytes
        for ev in stats.trace
        if "/bcast" in ev.name and "fwd" in ev.name
    )


def _merge_results(update: dict) -> None:
    data = {}
    if RESULT_PATH.exists():
        data = json.loads(RESULT_PATH.read_text())
    data.update(update)
    RESULT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_cache_cuts_broadcast_bytes(once, setup):
    """>= 30% fewer forward broadcast bytes/epoch on arxiv AND reddit."""

    def run():
        results = {}
        for ds_name, _scale in DATASETS:
            ds, model = setup[ds_name]
            row = {}
            for name, flags in VARIANTS.items():
                tr = _trainer(ds, model, record_trace=True, **flags)
                per_epoch = [
                    _fwd_broadcast_bytes(tr.train_epoch())
                    for _ in range(BYTE_EPOCHS)
                ]
                row[name] = {
                    "fwd_broadcast_bytes_per_epoch": sum(per_epoch)
                    / BYTE_EPOCHS,
                    "sim_epoch_time_last": tr.train_epoch().epoch_time,
                    "partition_nnz_imbalance": partition_quality(tr.graph)[
                        "nnz_imbalance"
                    ],
                }
                if tr.training_cache is not None:
                    total = tr.training_cache.total
                    row[name]["cache_hit_rate"] = total.hit_rate
            base = row["baseline"]["fwd_broadcast_bytes_per_epoch"]
            for name in ("cached", "cached_resource_aware"):
                row[name]["byte_reduction"] = (
                    1.0 - row[name]["fwd_broadcast_bytes_per_epoch"] / base
                )
            results[f"{ds_name}_P{P}"] = row
        return results

    results = once(run)
    _merge_results(
        {
            "config": {
                "datasets": [f"{n}(scale={s:g}, seed=7)" for n, s in DATASETS],
                "gpus": P,
                "staleness_epochs": STALENESS,
                "budget_bytes": BUDGET,
                "byte_epochs": BYTE_EPOCHS,
                "min_reduction": MIN_REDUCTION,
            },
            "broadcast_bytes": results,
        }
    )
    print()
    for point, row in results.items():
        print(
            f"{point:>10}: baseline "
            f"{row['baseline']['fwd_broadcast_bytes_per_epoch'] / 1e6:.2f} MB"
            f" -> cached "
            f"{row['cached']['fwd_broadcast_bytes_per_epoch'] / 1e6:.2f} MB"
            f" (-{row['cached']['byte_reduction'] * 100:.1f}%; "
            f"resource_aware -"
            f"{row['cached_resource_aware']['byte_reduction'] * 100:.1f}%)"
        )
    for point, row in results.items():
        for name in ("cached", "cached_resource_aware"):
            assert row[name]["byte_reduction"] >= MIN_REDUCTION, (
                f"{point}/{name}: reduction "
                f"{row[name]['byte_reduction']:.3f} < {MIN_REDUCTION}"
            )


def test_cache_keeps_accuracy(once, setup):
    """Converged accuracy within ACC_SLACK_VERTICES boundary flips, and
    bitwise weight equality at staleness=0."""

    def run():
        results = {}
        for ds_name, _scale in DATASETS:
            ds, model = setup[ds_name]
            num_test = int(ds.test_mask.sum())
            base = _trainer(ds, model, record_trace=False)
            for _ in range(ACC_EPOCHS):
                base.train_epoch()
            cached = _trainer(ds, model, record_trace=False, **VARIANTS["cached"])
            for _ in range(ACC_EPOCHS):
                cached.train_epoch()
            acc_base = base.evaluate("test")
            acc_cached = cached.evaluate("test")
            assert abs(acc_cached - acc_base) <= (
                ACC_SLACK_VERTICES + 0.5
            ) / num_test, (
                f"{ds_name}: stale accuracy {acc_cached:.4f} strayed from "
                f"{acc_base:.4f} by more than {ACC_SLACK_VERTICES} vertices"
            )
            # staleness=0 is write-through: bitwise identical weights.
            exact = _trainer(
                ds,
                model,
                record_trace=False,
                cache_staleness_epochs=0,
                cache_budget_bytes=BUDGET,
            )
            plain = _trainer(ds, model, record_trace=False)
            for _ in range(BYTE_EPOCHS):
                exact.train_epoch()
                plain.train_epoch()
            for a, b in zip(plain.get_weights(), exact.get_weights()):
                assert np.array_equal(a, b)
            results[f"{ds_name}_P{P}"] = {
                "accuracy_baseline": acc_base,
                "accuracy_cached": acc_cached,
                "accuracy_abs_delta": abs(acc_cached - acc_base),
                "test_vertices": num_test,
            }
        return results

    results = once(run)
    _merge_results({"accuracy": results})
    print()
    for point, row in results.items():
        print(
            f"{point:>10}: accuracy {row['accuracy_baseline']:.4f} -> "
            f"{row['accuracy_cached']:.4f} with stale serving "
            f"(|delta| {row['accuracy_abs_delta']:.4f})"
        )


def test_bench_passes_regression_gate(once, setup):
    """The emitted BENCH file self-diffs clean through the gate."""
    del setup

    def run():
        from repro.telemetry import diff_metrics, load_metrics

        assert RESULT_PATH.exists(), "cache bench must run first"
        metrics = load_metrics(RESULT_PATH)
        assert any("byte_reduction" in name for name in metrics)
        return diff_metrics(metrics, metrics)

    result = once(run)
    assert result.passed
    assert result.compared > 0
