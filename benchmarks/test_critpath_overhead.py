"""Critical-path + flight-recorder overhead: < 2% per epoch, bit-identical.

The always-on observability contract extends to the new pieces: a
training run with the flight recorder armed *and* a critical-path
attribution after every epoch must stay within ``MAX_OVERHEAD`` (2%)
of the same run without them, while producing bit-identical weights
(observation must never perturb the simulation). Emits
``BENCH_critpath.json`` and immediately gates it against itself with
``repro telemetry diff`` — proving the file is diffable the way future
regressions will be caught.

Run with ``-m critpath`` (deselected by default: host wall-clock is
noisy under parallel CI load).
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.__main__ import main
from repro.core import MGGCNTrainer
from repro.datasets import load_dataset
from repro.nn import GCNModelSpec
from repro.telemetry import FlightRecorder, Telemetry, critical_path

pytestmark = pytest.mark.critpath

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_critpath.json"
NUM_GPUS = 4
EPOCHS = 8
MAX_OVERHEAD = 0.02


@pytest.fixture(scope="module")
def setup():
    # compute-heavy enough that per-epoch analysis cost is honest
    # relative to real epochs (tiny graphs overstate the analyzer share).
    ds = load_dataset("arxiv", scale=0.1, learnable=True, seed=7)
    model = GCNModelSpec.build(ds.d0, 128, ds.num_classes, 3)
    return ds, model


def test_analyzer_and_flight_overhead(once, setup):
    """flight ring + per-epoch critical_path cost <= MAX_OVERHEAD."""
    ds, model = setup

    def run():
        bare = MGGCNTrainer(ds, model, num_gpus=NUM_GPUS)
        bare.ctx.engine.telemetry = Telemetry(run_id="bare")
        inst = MGGCNTrainer(ds, model, num_gpus=NUM_GPUS)
        recorder = FlightRecorder()
        inst.ctx.engine.telemetry = Telemetry(run_id="bench",
                                              flight=recorder)

        # warm numpy/scipy caches and both hubs' instrument caches
        bare.train_epoch()
        critical_path(inst.train_epoch().trace)

        # interleave so load spikes hit both runs equally
        bare_times, inst_times, analyzer_times = [], [], []
        reports = []
        for _ in range(EPOCHS):
            t0 = time.perf_counter()
            bare.train_epoch()
            bare_times.append(time.perf_counter() - t0)

            t0 = time.perf_counter()
            stats = inst.train_epoch()
            t1 = time.perf_counter()
            reports.append(critical_path(stats.trace))
            t2 = time.perf_counter()
            inst_times.append(t2 - t0)
            analyzer_times.append(t2 - t1)
        return (bare, inst, recorder, reports,
                bare_times, inst_times, analyzer_times)

    (bare, inst, recorder, reports,
     bare_times, inst_times, analyzer_times) = once(run)
    # best-of comparison: the minimum is the least noise-contaminated
    # estimate of an epoch's true cost under parallel CI load.
    bare_best = min(bare_times)
    inst_best = min(inst_times)
    overhead = inst_best / bare_best - 1.0

    # observation never perturbs: bit-identical simulated results
    for we, wi in zip(bare.get_weights(), inst.get_weights()):
        assert np.array_equal(we, wi)

    # the black box really recorded the run...
    assert recorder.records_total > 0
    assert len(recorder) > 0
    # ...and every report tiles its epoch (the analyzer did real work)
    for report in reports:
        assert sum(report.category_seconds.values()) == pytest.approx(
            report.epoch_time, rel=1e-9
        )

    print(f"\nbare {bare_best * 1e3:.3f} ms/epoch, flight+analyzer "
          f"{inst_best * 1e3:.3f} ms/epoch -> overhead {overhead:+.2%} "
          f"(budget {MAX_OVERHEAD:.0%}); analyzer alone "
          f"{min(analyzer_times) * 1e3:.3f} ms")
    assert overhead <= MAX_OVERHEAD, (
        f"flight+analyzer epochs {overhead:+.2%} over bare, "
        f"budget is {MAX_OVERHEAD:.0%}"
    )

    _merge_results({
        "config": {
            "dataset": "arxiv(scale=0.1, seed=7)",
            "num_gpus": NUM_GPUS,
            "layers": 3,
            "hidden": 128,
            "epochs_measured": EPOCHS,
            "budget": MAX_OVERHEAD,
        },
        "overhead": {
            "bare_epoch_ms": bare_best * 1e3,
            "instrumented_epoch_ms": inst_best * 1e3,
            "overhead_fraction": overhead,
            "analyzer_ms": min(analyzer_times) * 1e3,
            "flight_records": recorder.records_total,
        },
        "attribution": {
            "path_ops": reports[-1].num_ops,
            "epoch_time_s": reports[-1].epoch_time,
            "comm_share": reports[-1].share("comm"),
            "overlap_loss_s": reports[-1].overlap_loss_seconds,
        },
    })

    # the emitted file must flow through the regression gate: a file
    # diffed against itself has zero drift and exits 0.
    assert main(["telemetry", "diff", str(RESULT_PATH),
                 str(RESULT_PATH)]) == 0


def _merge_results(update: dict) -> None:
    data = {}
    if RESULT_PATH.exists():
        data = json.loads(RESULT_PATH.read_text())
    data.update(update)
    RESULT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
