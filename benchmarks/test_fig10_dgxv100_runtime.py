"""Figure 10: baseline epoch runtime comparison on DGX-V100.

Paper claims reproduced:
* MG-GCN has the lowest epoch time in every dataset/GPU-count cell;
* DGL and CAGNET cannot run Proteins at all; MG-GCN runs out of memory
  on Proteins with 1 and 2 GPUs but fits with 4;
* epoch times drop with more GPUs for MG-GCN on the large datasets.
"""

from repro.experiments import figures


def test_fig10_dgxv100_runtime(once):
    result = once(figures.fig10_dgxv100_runtime, verbose=True)

    # MG-GCN beats DGL at 1 GPU everywhere DGL runs
    for name in ("cora", "arxiv", "products", "reddit"):
        dgl = result.get(f"{name}/dgl", "1")
        mg = result.get(f"{name}/mggcn", "1")
        assert dgl is not None and mg is not None
        assert mg < dgl, name

    # MG-GCN beats CAGNET at every multi-GPU count
    for name in ("arxiv", "products", "reddit"):
        for gpus in ("2", "4", "8"):
            cag = result.get(f"{name}/cagnet", gpus)
            mg = result.get(f"{name}/mggcn", gpus)
            assert mg < cag, (name, gpus)

    # Proteins memory pattern (paper §6.5)
    assert result.get("proteins/dgl", "1") is None
    for gpus in ("1", "2", "4", "8"):
        assert result.get("proteins/cagnet", gpus) is None
    assert result.get("proteins/mggcn", "1") is None
    assert result.get("proteins/mggcn", "2") is None
    assert result.get("proteins/mggcn", "4") is not None
    assert result.get("proteins/mggcn", "8") is not None

    # scaling: MG-GCN 8-GPU beats its own 1-GPU on the large datasets
    for name in ("products", "reddit"):
        assert result.get(f"{name}/mggcn", "8") < result.get(f"{name}/mggcn", "1")
