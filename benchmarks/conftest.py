"""Benchmark harness configuration.

Every file under ``benchmarks/`` regenerates one table or figure of the
paper, printing the same rows/series the paper reports alongside the
paper's values. Run with::

    pytest benchmarks/ --benchmark-only

Driver functions are deterministic simulations, so benchmarks run one
round by default (wall-clock variance is measurement noise of the
*simulator*, not of the system under study).
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single round (deterministic drivers)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture()
def once(benchmark):
    """Fixture form of :func:`run_once`."""

    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
