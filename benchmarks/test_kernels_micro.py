"""Micro-benchmarks of the functional kernels (real wall-clock).

Unlike the figure benches (which report *simulated* times), these
measure the host NumPy/SciPy kernels themselves — the library's own hot
paths — so performance regressions in the substrate are caught.
"""

import numpy as np
import pytest

from repro.nn import ReferenceGCN, GCNModelSpec
from repro.datasets import load_dataset
from repro.sparse import CSRMatrix


@pytest.fixture(scope="module")
def spmm_workload():
    rng = np.random.default_rng(0)
    n, k = 20_000, 20_000
    nnz = 400_000
    rows = rng.integers(0, n, nnz)
    cols = rng.integers(0, k, nnz)
    from repro.sparse import COOMatrix

    coo = COOMatrix((n, k), rows, cols)
    csr = CSRMatrix.from_coo(coo)
    dense = rng.standard_normal((k, 64)).astype(np.float32)
    return csr, dense


def test_bench_spmm_scipy_path(benchmark, spmm_workload):
    csr, dense = spmm_workload
    out = benchmark(csr.spmm, dense)
    assert out.shape == (20_000, 64)


def test_bench_spmm_numpy_reference(benchmark, spmm_workload):
    csr, dense = spmm_workload
    out = benchmark(csr.spmm, dense, use_scipy=False)
    assert out.shape == (20_000, 64)


def test_bench_csr_transpose(benchmark, spmm_workload):
    csr, _ = spmm_workload
    t = benchmark(csr.transpose)
    assert t.shape == (20_000, 20_000)


def test_bench_reference_epoch(benchmark):
    ds = load_dataset("arxiv", scale=0.02, learnable=True, seed=61)
    model = GCNModelSpec.build(ds.d0, 64, ds.num_classes, 2)
    ref = ReferenceGCN(ds, model, seed=61)
    loss = benchmark(ref.train_epoch)
    assert loss > 0


def test_bench_graph_generation(benchmark):
    from repro.datasets.synthetic import power_law_degrees, chung_lu_graph

    def gen():
        w = power_law_degrees(10_000, 12.0)
        return chung_lu_graph(w, seed=62)

    adj = benchmark(gen)
    assert adj.nnz > 0
