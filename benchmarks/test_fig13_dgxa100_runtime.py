"""Figure 13: epoch runtime comparison on DGX-A100 (MG-GCN vs DGL).

CAGNET is absent (not CUDA-11 compatible, per the paper). Paper claims:
MG-GCN leads DGL at a single GPU on every dataset; Proteins OOMs below
4 GPUs for MG-GCN and entirely for DGL; epoch time scales down with
GPUs on the large datasets.
"""

from repro.experiments import figures


def test_fig13_dgxa100_runtime(once):
    result = once(figures.fig13_dgxa100_runtime, verbose=True)

    for name in ("cora", "arxiv", "products", "reddit"):
        dgl = result.get(f"{name}/dgl", "1")
        mg = result.get(f"{name}/mggcn", "1")
        assert mg < dgl, name

    # proteins: DGL OOM; MG-GCN fits from 1 GPU on the 80 GB A100
    assert result.get("proteins/dgl", "1") is None
    assert result.get("proteins/mggcn", "1") is not None

    # multi-GPU scaling on the dense datasets
    for name in ("products", "reddit", "proteins"):
        t1 = result.get(f"{name}/mggcn", "1")
        t8 = result.get(f"{name}/mggcn", "8")
        assert t8 < t1 / 3, name
