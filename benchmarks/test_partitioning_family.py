"""Extension bench: the full CAGNET partitioning family, measured.

The paper analyses 1D vs 1.5D (Section 5.1) and reports only CAGNET-1D
results ("the best"). Our substrate makes all three implemented family
members runnable at paper scale, so the analysis becomes measurement:

* 1.5D halves the broadcast volume but pays an inter-replica reduction
  (cheap on NVSwitch, bottlenecked on the DGX-1 cube-mesh) and doubles
  adjacency memory;
* 2D (SUMMA) additionally communicates the dense output of every GeMM
  (the §4.1 argument against column partitioning);
* MG-GCN's optimised 1D beats all of them.
"""

from repro.baselines import CAGNET15DTrainer, CAGNET2DTrainer, CAGNETTrainer
from repro.core import MGGCNTrainer
from repro.datasets import load_dataset
from repro.hardware import dgx1, dgx_a100
from repro.nn import GCNModelSpec
from repro.utils.format import format_seconds


def test_partitioning_family(once):
    def run():
        ds = load_dataset("arxiv", symbolic=True)
        model = GCNModelSpec.build(ds.d0, 512, ds.num_classes, 2)
        out = {}
        for machine in (dgx1(), dgx_a100()):
            # 2D needs a square GPU count; compare everything at 4.
            times = {
                "cagnet-1d": CAGNETTrainer(
                    ds, model, machine=machine, num_gpus=4, permute=True
                ).train_epoch().epoch_time,
                "cagnet-1.5d": CAGNET15DTrainer(
                    ds, model, machine=machine, num_gpus=4, replication=2
                ).train_epoch().epoch_time,
                "cagnet-2d": CAGNET2DTrainer(
                    ds, model, machine=machine, num_gpus=4
                ).train_epoch().epoch_time,
                "mg-gcn": MGGCNTrainer(
                    ds, model, machine=machine, num_gpus=4
                ).train_epoch().epoch_time,
            }
            out[machine.name] = times
        return out

    results = once(run)
    for machine, times in results.items():
        print(f"\n{machine} (Arxiv, 2x512, 4 GPUs):")
        for system, t in sorted(times.items(), key=lambda kv: kv[1]):
            print(f"  {system:12s} {format_seconds(t)}")

    for machine, times in results.items():
        # MG-GCN wins the family on both machines
        assert times["mg-gcn"] == min(times.values()), machine
        # 2D's dense-output reductions cancel its broadcast savings: it
        # never meaningfully beats 1.5D on this growing-width workload
        assert times["cagnet-2d"] >= 0.9 * times["cagnet-1.5d"], machine

    # the §5.1 crossover: 1.5D's edge over 1D is larger on NVSwitch
    gain_v100 = (
        results["DGX-1-V100"]["cagnet-1d"] / results["DGX-1-V100"]["cagnet-1.5d"]
    )
    gain_a100 = (
        results["DGX-A100"]["cagnet-1d"] / results["DGX-A100"]["cagnet-1.5d"]
    )
    print(f"\n1D/1.5D speed ratio: DGX-1 {gain_v100:.2f}, DGX-A100 {gain_a100:.2f}")
    assert gain_a100 > gain_v100
