"""Section 6 'Model': the epochs-to-accuracy protocol.

The paper trains the 2x16 Reddit model to 95.95% test accuracy in 466
epochs, totalling ~1 minute of which 20 s is preprocessing. On our
scaled learnable Reddit stand-in we run the same protocol with the
training loop: train until the validation accuracy plateaus, then
report epochs-to-best, final test accuracy, and the *simulated* total
GPU time across all epochs.
"""

from repro.core import MGGCNTrainer, TrainerConfig
from repro.datasets import load_dataset
from repro.hardware import dgx_a100
from repro.nn import GCNModelSpec
from repro.training import EarlyStopping, TrainingLoop
from repro.utils.format import format_seconds


def test_epochs_to_accuracy(once):
    def run():
        ds = load_dataset("reddit", scale=0.01, learnable=True, seed=71)
        model = GCNModelSpec.paper_model(2, ds.d0, ds.num_classes)
        trainer = MGGCNTrainer(
            ds, model, machine=dgx_a100(), num_gpus=8,
            config=TrainerConfig(seed=71),
        )
        loop = TrainingLoop(
            trainer,
            max_epochs=300,
            eval_every=5,
            early_stopping=EarlyStopping(patience=5, min_delta=1e-3),
        )
        history = loop.run()
        return {
            "epochs": history.epochs,
            "best_val": history.best_val_accuracy,
            "test_acc": trainer.evaluate("test"),
            "sim_time": history.total_simulated_time,
            "reason": loop.stopped_reason,
        }

    result = once(run)
    print(
        f"\nconverged after {result['epochs']} epochs "
        f"({result['reason']}): val {result['best_val']:.4f}, "
        f"test {result['test_acc']:.4f}; total simulated GPU time "
        f"{format_seconds(result['sim_time'])} "
        f"(paper: 466 epochs, ~40 s compute)"
    )
    # converges well before the cap, to near-perfect accuracy on the
    # planted communities, in far less simulated time than the paper's
    # minute (the instance is 100x smaller).
    assert result["epochs"] < 300
    assert result["test_acc"] > 0.9
    assert result["sim_time"] < 60.0
