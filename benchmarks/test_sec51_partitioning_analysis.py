"""Section 5.1: the partitioning-strategy analysis that justifies 1D.

Paper analysis: per SpMM, the 1.5D algorithm (replication c=2) is slower
than 1D on DGX-1 — the inter-group reduction is bottlenecked by the few
links crossing the quad boundary — but faster on DGX-A100's NVSwitch.
Since it also doubles memory and GNN training is memory-bound, MG-GCN
implements only 1D. (Paper's idealised ratios: 1.5D/1D = 3/2 on DGX-1,
3/4 on DGX-A100.)
"""

from repro.experiments import figures


def test_sec51_partitioning_analysis(once):
    result = once(figures.sec51_partitioning_analysis, verbose=True)

    ratio_v100 = result.get("DGX-1-V100", "ratio_15d_over_1d")
    ratio_a100 = result.get("DGX-A100", "ratio_15d_over_1d")

    print(f"\n1.5D/1D comm-time ratio: DGX-1 {ratio_v100:.2f} (paper 1.5), "
          f"DGX-A100 {ratio_a100:.2f} (paper 0.75)")

    # the crossover direction is the paper's whole point
    assert ratio_v100 > 1.0
    assert ratio_a100 < 1.0
    # magnitudes in band
    assert 1.05 <= ratio_v100 <= 2.0
    assert 0.4 <= ratio_a100 <= 0.95

    # absolute 1D times are positive and A100 is faster than V100
    assert 0 < result.get("DGX-A100", "1d") < result.get("DGX-1-V100", "1d")


def test_sec51_measured_trainers(once):
    """Beyond the paper: we *run* the 1.5D algorithm it only analyses.

    Measured end-to-end epochs soften the pure-communication analysis:
    on DGX-A100 1.5D clearly wins (fewer, larger stages + halved
    broadcast volume); on DGX-1 the cross-quad reduction eats most of
    the gain, so the two roughly tie — consistent with the paper's
    decision that 1.5D's 2x memory cost is not worth it.
    """
    from repro.baselines import CAGNETTrainer, CAGNET15DTrainer
    from repro.datasets import load_dataset
    from repro.hardware import dgx1, dgx_a100
    from repro.nn import GCNModelSpec

    def run():
        ds = load_dataset("arxiv", symbolic=True)
        model = GCNModelSpec.build(ds.d0, 512, ds.num_classes, 2)
        out = {}
        for machine in (dgx1(), dgx_a100()):
            t1d = CAGNETTrainer(ds, model, machine=machine, num_gpus=8,
                                permute=True).train_epoch().epoch_time
            t15 = CAGNET15DTrainer(ds, model, machine=machine, num_gpus=8,
                                   replication=2).train_epoch().epoch_time
            out[machine.name] = t15 / t1d
        return out

    ratios = once(run)
    print(f"\nmeasured 1.5D/1D epoch ratio: DGX-1 {ratios['DGX-1-V100']:.2f}, "
          f"DGX-A100 {ratios['DGX-A100']:.2f}")
    assert ratios["DGX-A100"] < 0.85
    assert ratios["DGX-A100"] < ratios["DGX-1-V100"]
