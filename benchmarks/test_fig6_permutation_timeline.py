"""Figure 6: SpMM stage timeline, original vs permuted ordering.

Paper: on Products with 4 GPUs, the original ordering shows a badly
imbalanced stage pattern; the random permutation balances the stages and
cuts the SpMM from ~50 ms to ~38 ms (a ~1.3x improvement). We assert the
same qualitative structure on the scaled functional instance: permuting
balances the per-stage compute times and shortens the SpMM span.
"""

import numpy as np

from repro.experiments import figures


def test_fig6_permutation_timeline(once):
    result = once(
        figures.fig6_permutation_timeline,
        dataset_name="products",
        num_gpus=4,
        verbose=True,
    )
    original = result["original"]
    permuted = result["permuted"]

    # permutation shortens the whole SpMM (paper: 50 ms -> 38 ms)
    assert permuted["spmm_time"] < original["spmm_time"]
    ratio = original["spmm_time"] / permuted["spmm_time"]
    print(f"\nSpMM span improvement from permutation: {ratio:.2f}x "
          f"(paper: ~1.3x)")
    assert 1.05 <= ratio <= 2.5

    # permuted stages are balanced: compute-span variance collapses
    def stage_spread(spans):
        comp = [s.duration for s in spans if s.kind == "comp"]
        return max(comp) / (sum(comp) / len(comp))

    assert stage_spread(permuted["spans"]) < stage_spread(original["spans"])
    assert stage_spread(permuted["spans"]) < 1.3
