"""Resilience overhead: fault-free cost of the hooks, and recovery cost.

Two claims are benchmarked:

* **Zero-cost abstraction** — with no fault plan (or no injector at
  all) the resilience hooks change *nothing*: epoch times and losses
  are bit-identical to the pre-resilience trainer, and the wall-clock
  overhead of the guard branches is noise.
* **Recovery cost scales with fault rate** — a sweep of seeded random
  plans (gated behind ``-m chaos``) charts simulated recovery time and
  total-epoch dilation against the injected device-failure rate.
"""

import numpy as np
import pytest

from repro.core import MGGCNTrainer, TrainerConfig
from repro.datasets import load_dataset
from repro.nn import GCNModelSpec
from repro.resilience import FaultInjector, FaultPlan
from repro.resilience.chaos import ChaosScenario, run_chaos_scenario
from repro.resilience.recovery import ElasticTrainer

EPOCHS = 4


@pytest.fixture(scope="module")
def setup():
    ds = load_dataset("cora", scale=0.1, learnable=True, seed=1)
    model = GCNModelSpec.build(ds.d0, 16, ds.num_classes, 2)
    return ds, model


def test_fault_free_overhead_is_zero(once, setup):
    """Empty plan => bit-identical epoch times, losses and weights."""
    ds, model = setup

    def run():
        bare = MGGCNTrainer(ds, model, num_gpus=4)
        bare_stats = bare.fit(EPOCHS)
        hooked = MGGCNTrainer(
            ds,
            model,
            num_gpus=4,
            config=TrainerConfig(fault_injector=FaultInjector(FaultPlan())),
        )
        hooked_stats = hooked.fit(EPOCHS)
        elastic = ElasticTrainer(ds, model, num_gpus=4, plan=FaultPlan())
        elastic_stats = [elastic.train_epoch() for _ in range(EPOCHS)]
        return bare, bare_stats, hooked, hooked_stats, elastic, elastic_stats

    bare, bare_stats, hooked, hooked_stats, elastic, elastic_stats = once(run)
    for a, b, c in zip(bare_stats, hooked_stats, elastic_stats):
        assert a.epoch_time == b.epoch_time == c.epoch_time  # exact
        assert a.loss == b.loss == c.loss
    for wa, wb, wc in zip(
        bare.get_weights(), hooked.get_weights(), elastic.get_weights()
    ):
        assert (wa == wb).all() and (wa == wc).all()
    total = sum(s.epoch_time for s in bare_stats)
    print(f"\nfault-free: {EPOCHS} epochs, {total * 1e3:.3f} ms simulated, "
          "hooked/elastic bit-identical to bare trainer")


@pytest.mark.chaos
def test_recovery_cost_vs_fault_rate(once, setup):
    """Sweep device-failure rates; recovery cost grows with the rate."""
    ds, model = setup

    def run():
        base = ElasticTrainer(ds, model, num_gpus=8, plan=FaultPlan())
        horizon = sum(s.epoch_time for s in base.fit(EPOCHS))
        rows = []
        for rate_per_run in (0.0, 1.0, 2.0, 3.0):
            recovery_times = []
            totals = []
            for seed in range(3):
                plan = FaultPlan.random(
                    num_gpus=8,
                    horizon=horizon,
                    seed=seed,
                    device_failure_rate=rate_per_run / horizon,
                )
                report = run_chaos_scenario(
                    ChaosScenario(
                        dataset=ds,
                        model=model,
                        plan=plan,
                        epochs=EPOCHS,
                        num_gpus=8,
                        evaluate=False,
                    )
                )
                assert report.survived
                recovery_times.append(report.recovery_time)
                totals.append(report.total_time)
            rows.append(
                (
                    rate_per_run,
                    float(np.mean(recovery_times)),
                    float(np.mean(totals)),
                )
            )
        return horizon, rows

    horizon, rows = once(run)
    print(f"\nbaseline {EPOCHS}-epoch run: {horizon * 1e3:.2f} ms")
    print(f"{'failures/run':>12} {'recovery ms':>12} {'total ms':>10}")
    for rate, rec, total in rows:
        print(f"{rate:>12.1f} {rec * 1e3:>12.3f} {total * 1e3:>10.2f}")
    # zero faults => zero recovery time; cost is monotone-ish in rate
    assert rows[0][1] == 0.0
    assert rows[-1][1] > 0.0
    assert rows[-1][2] > rows[0][2]
