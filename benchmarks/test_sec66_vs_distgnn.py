"""Section 6.6: single node (MG-GCN, 8 GPUs) vs distributed CPUs (DistGNN).

Paper: MG-GCN at 8 A100s beats DistGNN's best configuration by 40x
(Reddit), 12.6x (Papers), 12.4x (Products) and 1.77x (Proteins), and the
Papers energy comparison favours the GPUs by ~143x.
"""

from repro.experiments import figures

PAPER_SPEEDUPS = {"reddit": 40.0, "papers": 12.6, "products": 12.4,
                  "proteins": 1.77}


def test_sec66_vs_distgnn(once):
    result = once(figures.sec66_vs_distgnn, verbose=True)

    print("\nMG-GCN(8 GPUs) vs DistGNN best (paper value):")
    for name, paper in PAPER_SPEEDUPS.items():
        ours = result.get(name, "speedup")
        assert ours is not None, name
        print(f"  {name:9s} measured {ours:.1f}x  paper {paper}x")
        # MG-GCN wins every comparison, as in the paper
        assert ours > 1.0, name

    # ordering preserved: proteins is by far the closest race,
    # reddit by far the widest margin
    speedups = {n: result.get(n, "speedup") for n in PAPER_SPEEDUPS}
    assert speedups["proteins"] == min(speedups.values())
    assert speedups["reddit"] == max(speedups.values())

    # papers-scale magnitude within 2x of the paper's ratio
    assert PAPER_SPEEDUPS["papers"] / 2 <= speedups["papers"] <= (
        PAPER_SPEEDUPS["papers"] * 2
    )

    # energy analysis (paper ~143x in favour of the GPUs)
    energy = result.get("papers", "energy_ratio")
    print(f"  papers energy ratio {energy:.0f}x (paper ~143x)")
    assert 70 <= energy <= 300
