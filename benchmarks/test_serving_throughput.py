"""Online serving: throughput / tail-latency / cache-efficacy benchmark.

Drives the serving engine (:mod:`repro.serve`) with seeded Poisson
request streams at several arrival rates, cold-cache vs warm-cache, and
emits ``BENCH_serving.json`` with per-rate throughput, p50/p99 latency,
and cache hit-rate. "Cold" means the embedding cache is enabled but
empty at time zero (it fills while serving); "warm" means
:meth:`ServingEngine.warm_cache` replayed a captured full-batch forward
first. The headline assertion is the one the issue demands: at every
arrival rate the warm-cache p99 is *strictly* below the cold-cache p99
— the layered cache must buy tail latency, not just average latency.

The default run covers three rates; the ``serving_sweep``-marked test
extends the sweep (deselected by default, run with ``-m serving_sweep``).
"""

import json
from pathlib import Path

import pytest

from repro.datasets import load_dataset
from repro.hardware import dgx_a100
from repro.nn import GCNModelSpec
from repro.nn.init import init_weights
from repro.serve import ServingConfig, ServingEngine, poisson_workload

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"
NUM_GPUS = 4
NUM_REQUESTS = 240
SKEW = 1.2  # Zipf-over-degree-rank: the hot-vertex regime caches target
RATES = (1000.0, 3000.0, 9000.0)
SWEEP_RATES = (500.0, 1000.0, 2000.0, 3000.0, 6000.0, 9000.0, 18000.0)


@pytest.fixture(scope="module")
def setup():
    ds = load_dataset("reddit", scale=0.002, learnable=True, seed=11)
    spec = GCNModelSpec.build(ds.d0, 32, ds.num_classes, 3)
    weights = init_weights(spec.layer_dims, seed=0)
    return ds, spec, weights


def _engine(ds, spec, weights):
    return ServingEngine(
        ds,
        weights,
        spec,
        config=ServingConfig(
            machine=dgx_a100(),
            num_gpus=NUM_GPUS,
            cache_entries=4 * ds.n,
            num_pinned=max(ds.n // 50, 8),
            max_batch_size=8,
            # short admission deadline: keep the batcher wait from
            # dominating p99, so the cold/warm gap reflects recompute cost
            max_wait=2e-4,
            record_trace=False,
        ),
    )


def _serve_at(ds, spec, weights, rate, warm):
    engine = _engine(ds, spec, weights)
    if warm:
        engine.warm_cache()
    requests = poisson_workload(
        ds, NUM_REQUESTS, rate, skew=SKEW, seed=int(rate)
    )
    summary = engine.serve(requests).summary
    return {
        "throughput_rps": summary["throughput_rps"],
        "latency_p50_ms": summary["latency_p50"] * 1e3,
        "latency_p99_ms": summary["latency_p99"] * 1e3,
        "cache_hit_rate": summary["cache_hit_rate"],
        "mean_batch_size": summary["mean_batch_size"],
    }


def _sweep(ds, spec, weights, rates):
    rows = []
    for rate in rates:
        cold = _serve_at(ds, spec, weights, rate, warm=False)
        warm = _serve_at(ds, spec, weights, rate, warm=True)
        rows.append({"arrival_rate_rps": rate, "cold": cold, "warm": warm})
    return rows


def _merge_results(update: dict) -> None:
    data = {}
    if RESULT_PATH.exists():
        data = json.loads(RESULT_PATH.read_text())
    data.update(update)
    RESULT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _print_rows(rows):
    print()
    for row in rows:
        cold, warm = row["cold"], row["warm"]
        print(
            f"rate {row['arrival_rate_rps']:>7.0f} rps: "
            f"p99 cold {cold['latency_p99_ms']:.3f} ms -> warm "
            f"{warm['latency_p99_ms']:.3f} ms, "
            f"throughput {warm['throughput_rps']:.0f} rps, "
            f"hit rate {cold['cache_hit_rate']:.2f} -> "
            f"{warm['cache_hit_rate']:.2f}"
        )


def _assert_warm_beats_cold(rows):
    for row in rows:
        assert (
            row["warm"]["latency_p99_ms"] < row["cold"]["latency_p99_ms"]
        ), (
            f"warm-cache p99 not below cold at "
            f"{row['arrival_rate_rps']:.0f} rps"
        )
        assert row["warm"]["cache_hit_rate"] > row["cold"]["cache_hit_rate"]


def test_serving_throughput(once, setup):
    """Warm-cache p99 strictly beats cold-cache p99 at every rate."""
    ds, spec, weights = setup
    rows = once(_sweep, ds, spec, weights, RATES)
    _merge_results(
        {
            "config": {
                "dataset": f"{ds.name}(scale=0.002, seed=11)",
                "num_gpus": NUM_GPUS,
                "layers": 3,
                "hidden": 32,
                "num_requests": NUM_REQUESTS,
                "skew": SKEW,
            },
            "rates": rows,
        }
    )
    _print_rows(rows)
    _assert_warm_beats_cold(rows)


@pytest.mark.serving_sweep
def test_serving_rate_sweep(once, setup):
    """Extended arrival-rate sweep (deselected by default)."""
    ds, spec, weights = setup
    rows = once(_sweep, ds, spec, weights, SWEEP_RATES)
    _merge_results({"sweep_rates": rows})
    _print_rows(rows)
    _assert_warm_beats_cold(rows)
