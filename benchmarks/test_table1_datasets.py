"""Table 1: benchmark dataset statistics."""

from repro.experiments import figures


def test_table1_datasets(once):
    result = once(figures.table1, verbose=True)
    # the registry is verbatim Table 1
    assert result.get("reddit", "n") == 233_000
    assert result.get("reddit", "d0") == 602
    assert result.get("papers", "m") == 1_610_000_000
    assert result.get("products", "avg_degree") == 50
    assert result.get("cora", "classes") == 6
