"""Epoch capture & replay: driver wall-clock speedup and amortization.

The sim-graph plan (:mod:`repro.plan`) is the simulator's analogue of
CUDA Graphs: epoch 1 runs eagerly under capture, later epochs replay
the recorded plan — same numerics, same simulated clock, but without
re-running the Python scheduling layer (cost model, shape checks,
rendezvous validation, closure construction). This file measures the
*host* wall-clock of the driver, not simulated seconds, on a
scheduling-dominated configuration (many small tiles: 8 GPUs x 4
layers with a narrow hidden width), and emits ``BENCH_epoch_replay.json``
with:

* eager vs replay per-epoch wall-clock (median) on both the serialised
  and overlapped schedules, with the >= 2x speedup assertion the issue
  demands;
* the one-off capture overhead and the epoch count at which it
  amortizes;
* proof that fault-plan and elastic-recovery runs fall back to eager
  scheduling (replay must never mask a fault).
"""

import json
import math
import statistics
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import MGGCNTrainer, TrainerConfig
from repro.datasets import load_dataset
from repro.nn import GCNModelSpec
from repro.resilience import (
    DeviceFailure,
    FaultInjector,
    FaultPlan,
    StragglerSlowdown,
)
from repro.resilience.recovery import ElasticTrainer

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_epoch_replay.json"
NUM_GPUS = 8
EPOCHS = 15
MIN_SPEEDUP = 2.0


@pytest.fixture(scope="module")
def setup():
    # Narrow layers over many GPUs: per-op numpy compute is tiny, so the
    # Python scheduling layer dominates eager epochs — the regime replay
    # is built for (same reason CUDA Graphs target launch-bound models).
    ds = load_dataset("cora", scale=0.1, learnable=True, seed=7)
    model = GCNModelSpec.build(ds.d0, 8, ds.num_classes, 4)
    return ds, model


def _config(overlap: bool, capture: bool) -> TrainerConfig:
    return TrainerConfig(
        overlap=overlap, capture_epochs=capture, record_trace=False
    )


def _epoch_walltimes(trainer, epochs: int):
    times = []
    for _ in range(epochs):
        t0 = time.perf_counter()
        trainer.train_epoch()
        times.append(time.perf_counter() - t0)
    return times


def _merge_results(update: dict) -> None:
    data = {}
    if RESULT_PATH.exists():
        data = json.loads(RESULT_PATH.read_text())
    data.update(update)
    RESULT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_replay_speedup(once, setup):
    """Replayed epochs beat eager epochs >= 2x on both schedules."""
    ds, model = setup

    def run():
        results = {}
        for overlap in (False, True):
            key = "overlapped" if overlap else "serialised"
            eager = MGGCNTrainer(
                ds, model, num_gpus=NUM_GPUS, config=_config(overlap, False)
            )
            replay = MGGCNTrainer(
                ds, model, num_gpus=NUM_GPUS, config=_config(overlap, True)
            )
            # warm the numpy/scipy caches with one eager epoch, and time
            # the capture epoch itself (the one-off overhead).
            eager.train_epoch()
            t0 = time.perf_counter()
            replay.train_epoch()  # capture
            capture_s = time.perf_counter() - t0

            eager_times = _epoch_walltimes(eager, EPOCHS)
            replay_times = _epoch_walltimes(replay, EPOCHS)
            eager_med = statistics.median(eager_times)
            replay_med = statistics.median(replay_times)
            saving = eager_med - replay_med
            extra = max(capture_s - eager_med, 0.0)
            amortize = 1 + math.ceil(extra / saving) if saving > 0 else None

            assert replay.plan_stats.captures == 1
            assert replay.plan_stats.replays == EPOCHS
            # replay is a pure driver optimisation: simulated results
            # are bit-identical to eager
            assert eager.epochs_trained == replay.epochs_trained
            for we, wr in zip(eager.get_weights(), replay.get_weights()):
                assert np.array_equal(we, wr)

            results[key] = {
                "eager_epoch_ms": eager_med * 1e3,
                "replay_epoch_ms": replay_med * 1e3,
                "speedup": eager_med / replay_med,
                "capture_epoch_ms": capture_s * 1e3,
                "amortization_epochs": amortize,
                "epochs_measured": EPOCHS,
            }
        return results

    results = once(run)
    _merge_results(
        {
            "config": {
                "dataset": "cora(scale=0.1, seed=7)",
                "num_gpus": NUM_GPUS,
                "layers": 4,
                "hidden": 8,
                "min_speedup": MIN_SPEEDUP,
            },
            "schedules": results,
        }
    )
    print()
    for key, row in results.items():
        print(
            f"{key:>10}: eager {row['eager_epoch_ms']:.2f} ms -> replay "
            f"{row['replay_epoch_ms']:.2f} ms ({row['speedup']:.2f}x, "
            f"capture {row['capture_epoch_ms']:.2f} ms, amortizes after "
            f"{row['amortization_epochs']} epochs)"
        )
    for key, row in results.items():
        assert row["speedup"] >= MIN_SPEEDUP, (
            f"{key} replay speedup {row['speedup']:.2f}x < {MIN_SPEEDUP}x"
        )
        assert row["amortization_epochs"] is not None


def test_fault_and_elastic_runs_fall_back_to_eager(once, setup):
    """Capture never hides a fault: faulty runs schedule eagerly."""
    ds, model = setup

    def run():
        # an active fault plan disables capture outright
        straggler = MGGCNTrainer(
            ds,
            model,
            num_gpus=NUM_GPUS,
            config=TrainerConfig(
                capture_epochs=True,
                record_trace=False,
                fault_injector=FaultInjector(
                    FaultPlan(
                        stragglers=(
                            StragglerSlowdown(rank=0, factor=2.0, start=0.0),
                        )
                    )
                ),
            ),
        )
        straggler.fit(4)

        # elastic recovery: eager until the failure, recapture after
        probe = ElasticTrainer(
            ds, model, num_gpus=NUM_GPUS, plan=FaultPlan()
        )
        fail_at = 0.5 * sum(s.epoch_time for s in probe.fit(2))
        elastic = ElasticTrainer(
            ds,
            model,
            num_gpus=NUM_GPUS,
            plan=FaultPlan(
                device_failures=(DeviceFailure(rank=1, time=fail_at),)
            ),
        )
        elastic.capture_epochs = True
        elastic.fit(6)
        return straggler, elastic

    straggler, elastic = once(run)
    assert straggler.plan_stats.captures == 0
    assert straggler.plan_stats.replays == 0
    assert straggler.plan_stats.eager_epochs == 4
    assert len(elastic.recovery_log) == 1
    assert elastic.num_gpus == NUM_GPUS - 1
    assert elastic.plan_stats.captures == 1  # recaptured post-recovery
    assert elastic.plan_stats.replays >= 1
    _merge_results(
        {
            "fallback": {
                "fault_plan": {
                    "captures": straggler.plan_stats.captures,
                    "replays": straggler.plan_stats.replays,
                    "eager_epochs": straggler.plan_stats.eager_epochs,
                },
                "elastic": {
                    "recoveries": len(elastic.recovery_log),
                    "post_recovery_captures": elastic.plan_stats.captures,
                    "post_recovery_replays": elastic.plan_stats.replays,
                },
            }
        }
    )
    print(
        "\nfault-plan run: 4/4 epochs eager (no capture); elastic run: "
        "recovered once, recaptured on "
        f"{elastic.num_gpus} GPUs, {elastic.plan_stats.replays} replays"
    )
