"""Figure 11: speedup w.r.t. DGL on DGX-V100.

Paper anchors: single-GPU MG-GCN is 2.72x (Reddit), 1.42x (Products),
1.76x (Arxiv), 3.1x (Cora) faster than DGL; at 8 GPUs MG-GCN leads
CAGNET by 2.66x (Reddit), 8.6x (Products), 2.35x (Arxiv); Cora gains
nothing from more GPUs.
"""

from repro.experiments import figures

PAPER_1GPU = {"reddit": 2.72, "products": 1.42, "arxiv": 1.76, "cora": 3.1}
PAPER_8GPU_VS_CAGNET = {"reddit": 2.66, "products": 8.6, "arxiv": 2.35}


def test_fig11_dgxv100_speedup(once):
    result = once(figures.fig11_dgxv100_speedup, verbose=True)

    print("\nper-dataset 1-GPU speedup vs DGL (paper value):")
    for name, paper in PAPER_1GPU.items():
        ours = result.get(f"{name}/mggcn", "1")
        print(f"  {name:9s} measured {ours:.2f}x  paper {paper}x")
        # all within the paper's qualitative band
        assert 1.2 <= ours <= 4.5, name

    print("\n8-GPU MG-GCN / CAGNET ratio (paper value):")
    for name, paper in PAPER_8GPU_VS_CAGNET.items():
        mg = result.get(f"{name}/mggcn", "8")
        cag = result.get(f"{name}/cagnet", "8")
        ratio = mg / cag
        print(f"  {name:9s} measured {ratio:.2f}x  paper {paper}x")
        assert ratio > 1.5, name

    # Cora does not scale (paper: no speedup beyond a point)
    cora8 = result.get("cora/mggcn", "8")
    cora4 = result.get("cora/mggcn", "4")
    assert cora8 < 1.25 * cora4

    # speedups increase with GPUs on dense datasets
    for name in ("products", "reddit"):
        s = [result.get(f"{name}/mggcn", g) for g in ("1", "2", "4", "8")]
        assert s[0] < s[1] < s[2] < s[3], (name, s)
