"""Table 2: DistGNN's reported epoch times (the paper's CPU comparator).

These are published numbers, registered verbatim; the bench verifies the
registry and the derived best-configuration lookups used by §6.6.
"""

import pytest

from repro.baselines import distgnn_best, distgnn_single_socket
from repro.experiments import figures


def test_table2_distgnn(once):
    result = once(figures.table2_distgnn, verbose=True)

    assert result.get("reddit", "1") == pytest.approx(0.60)
    assert result.get("reddit", "16") == pytest.approx(0.61)
    assert result.get("papers", "1") == pytest.approx(1000.0)
    assert result.get("papers", "128") == pytest.approx(36.45)
    assert result.get("products", "64") == pytest.approx(1.74)
    assert result.get("proteins", "64") == pytest.approx(2.63)

    assert distgnn_single_socket("papers") == pytest.approx(1000.0)
    assert distgnn_best("products") == (64, pytest.approx(1.74))
