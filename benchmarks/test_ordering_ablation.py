"""Extension bench: vertex orderings beyond §5.2's random permutation.

Sweeps four orderings of the same Products-shaped graph — original
(hub-first, our generator's natural layout), degree-sorted (maximally
concentrated), BFS (locality-first) and random (§5.2) — and reports the
stage-nnz imbalance of the uniform 1D tiles plus the resulting epoch
time at 8 GPUs. The paper's choice wins: balance beats locality for the
multi-stage broadcast SpMM, because the critical path is the *slowest*
stage.
"""

import numpy as np

from repro.core import MGGCNTrainer, TrainerConfig
from repro.datasets import load_dataset, ordering_permutation, reorder_dataset
from repro.hardware import dgx1
from repro.nn import GCNModelSpec
from repro.utils.format import format_seconds

ORDERINGS = ("original", "degree", "bfs", "random")


def test_ordering_ablation(once):
    def run():
        base = load_dataset("products", scale=0.002, seed=81)
        model = GCNModelSpec.paper_model(1, base.d0, base.num_classes)
        out = {}
        for ordering in ORDERINGS:
            perm = ordering_permutation(base, ordering, seed=81)
            ds = reorder_dataset(base, perm)
            trainer = MGGCNTrainer(
                ds, model, machine=dgx1(), num_gpus=8,
                config=TrainerConfig(permute=False, seed=81),
            )
            nnz = np.array(
                [trainer.graph.stage_nnz(r) for r in range(8)], dtype=float
            )
            imbalance = float(nnz.max() / nnz.mean())
            trainer.train_epoch()
            out[ordering] = {
                "imbalance": imbalance,
                "epoch": trainer.train_epoch().epoch_time,
            }
        return out

    results = once(run)
    print("\nordering        tile-nnz imbalance   epoch time")
    for ordering in ORDERINGS:
        r = results[ordering]
        print(f"  {ordering:12s} {r['imbalance']:>10.2f}x"
              f"          {format_seconds(r['epoch'])}")

    # random balances best and trains fastest
    assert results["random"]["imbalance"] == min(
        r["imbalance"] for r in results.values()
    )
    assert results["random"]["imbalance"] < 1.6
    assert results["random"]["epoch"] == min(
        r["epoch"] for r in results.values()
    )
    # degree-sorting is the worst concentration
    assert results["degree"]["imbalance"] > 2 * results["random"]["imbalance"]
    # all four train the same math: equal loss trajectories are covered
    # by the permutation-equivariance property test.
