"""Figure 12: per-GPU memory consumption vs number of layers (Reddit, h=512).

Paper anchors at a 30 GiB budget:
* 1 GPU: DGL fits ~20 layers, MG-GCN ~50;
* 8 GPUs: CAGNET fits ~150 layers, MG-GCN ~450;
* memory grows linearly in the layer count for every framework.
"""

from repro.config import GiB
from repro.datasets import load_dataset
from repro.experiments import figures
from repro.profiling import memory_for_layers


def test_fig12_memory_footprint(once):
    result = once(figures.fig12_memory_footprint, verbose=True)

    dgl = result.get("dgl/1gpu", "max_layers")
    mg1 = result.get("mggcn/1gpu", "max_layers")
    cag = result.get("cagnet/8gpu", "max_layers")
    mg8 = result.get("mggcn/8gpu", "max_layers")

    print(f"\nmax layers @30GiB: DGL(1) {dgl:.0f} (paper ~20), "
          f"MG-GCN(1) {mg1:.0f} (paper ~50), CAGNET(8) {cag:.0f} "
          f"(paper ~150), MG-GCN(8) {mg8:.0f} (paper ~450)")

    # paper's qualitative relations
    assert mg1 > 2 * dgl          # paper: 50 vs 20
    assert mg8 > 2.5 * cag        # paper: 450 vs 150
    assert mg8 > 6 * mg1          # partitioning buys ~8x depth

    # paper's magnitudes, generous bands
    assert 10 <= dgl <= 35
    assert 40 <= mg1 <= 75
    assert 70 <= cag <= 220
    assert 300 <= mg8 <= 700

    # linear growth in the layer count
    ds = load_dataset("reddit", symbolic=True)
    m = [memory_for_layers(ds, 512, L, 1) for L in (4, 8, 16)]
    assert (m[2] - m[1]) == (m[1] - m[0]) * 2
