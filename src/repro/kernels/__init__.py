"""Kernel library: roofline cost model + timed NumPy kernels."""

from repro.kernels.cost import CostModel, KernelCosts
from repro.kernels.ops import (
    gemm,
    gemm_relu_backward,
    spmm,
    relu_forward,
    relu_backward,
    softmax_cross_entropy,
    adam_step_op,
    memset,
    scale,
    add_,
)

__all__ = [
    "CostModel",
    "KernelCosts",
    "gemm",
    "gemm_relu_backward",
    "spmm",
    "relu_forward",
    "relu_backward",
    "softmax_cross_entropy",
    "adam_step_op",
    "memset",
    "scale",
    "add_",
]
