"""Roofline cost model for the simulated GPU kernels.

Every kernel's simulated duration is

``t = max(flops / effective_flops, bytes / effective_bandwidth) + overhead``

with per-kernel-class efficiency factors (sparse kernels never run at
peak). Two modelling choices carry the paper's key phenomena:

**SpMM cache blocking.** The dense operand of an SpMM is gathered by
column index. The HBM traffic for those gathers depends on how much of
the operand is resident in L2: with a resident fraction
``hit = min(1, L2 / working_set)`` the gather traffic shrinks by
``(1 - hit)``. Partitioning the matrix into ``P`` column tiles divides
the per-stage working set by ``P``, increasing ``hit`` — this is the
"blocking effect of partitioning and potentially better use of the
cache" the paper credits for its super-linear speedups (Fig. 9), and it
falls out of the model rather than being injected per-experiment.

**Overlap bandwidth sharing.** NVLink traffic is DMA through the same
HBM the compute kernels use. When a broadcast overlaps an SpMM, the SpMM
sees ``mem_bw - link_bw`` of bandwidth (§6.3's 900 vs 150 GB/s → 5/6
factor). Kernels accept a ``bw_fraction`` for this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hardware.spec import GPUSpec


@dataclass(frozen=True)
class KernelCosts:
    """Efficiency knobs of one framework's kernel implementations.

    The defaults model a tuned C++/cuSPARSE/cuBLAS implementation
    (MG-GCN). Baselines (DGL-like, CAGNET-like) override these to express
    their measured inefficiencies — see :mod:`repro.baselines`.
    """

    #: Fraction of peak FLOP/s dense GeMM achieves.
    gemm_flop_efficiency: float = 0.70
    #: Fraction of peak memory bandwidth streaming kernels achieve.
    stream_bw_efficiency: float = 0.85
    #: Fraction of peak memory bandwidth the irregular SpMM gather achieves.
    spmm_bw_efficiency: float = 0.60
    #: Fraction of L2 usable for dense-operand blocking in SpMM.
    l2_utilization: float = 0.80
    #: Column-chunk width of the SpMM kernel (cuSPARSE processes the dense
    #: operand in ~64-column slabs, so cache capacity in *rows* does not
    #: shrink with the feature width).
    spmm_chunk_cols: int = 64
    #: Asymptotic gather hit rate when the dense tile is fully resident.
    spmm_cache_hit_max: float = 0.70
    #: Skew exponent: access-weighted hit ~ coverage**gamma. Power-law
    #: graphs concentrate accesses on hub rows, so hit >> coverage.
    spmm_cache_gamma: float = 0.20
    #: Per-kernel launch/setup overhead in seconds (CUDA launch ~4 us).
    kernel_overhead: float = 4e-6
    #: Extra fixed per-operator overhead of the host framework
    #: (Python dispatch, graph bookkeeping). Zero for the C++ engine.
    framework_overhead: float = 0.0

    def __post_init__(self) -> None:
        for field_name in (
            "gemm_flop_efficiency",
            "stream_bw_efficiency",
            "spmm_bw_efficiency",
            "l2_utilization",
        ):
            value = getattr(self, field_name)
            if not (0.0 < value <= 1.0):
                raise ValueError(f"{field_name} must be in (0, 1], got {value}")
        if self.kernel_overhead < 0 or self.framework_overhead < 0:
            raise ValueError("overheads must be non-negative")
        if self.spmm_chunk_cols < 1:
            raise ValueError(f"spmm_chunk_cols must be >= 1, got {self.spmm_chunk_cols}")
        if not (0.0 <= self.spmm_cache_hit_max <= 1.0):
            raise ValueError(
                f"spmm_cache_hit_max must be in [0, 1], got {self.spmm_cache_hit_max}"
            )
        if self.spmm_cache_gamma <= 0:
            raise ValueError(
                f"spmm_cache_gamma must be positive, got {self.spmm_cache_gamma}"
            )


class CostModel:
    """Computes kernel durations for one GPU spec + one set of kernel costs.

    Durations are memoized per instance: a training epoch evaluates the
    same handful of kernel shapes thousands of times (every layer, every
    stage, every epoch), and both ``gpu`` and ``costs`` are frozen, so a
    ``(kernel, *args)`` key fully determines the result. The cache is
    bounded; on overflow it is cleared and rebuilt.
    """

    _MEMO_LIMIT = 4096

    def __init__(self, gpu: GPUSpec, costs: Optional[KernelCosts] = None):
        self.gpu = gpu
        self.costs = costs or KernelCosts()
        self._memo: dict = {}

    # -- helpers ---------------------------------------------------------------

    def _memoize(self, key: tuple, fn) -> float:
        # durations can legitimately be 0.0 — test against None, not truth.
        value = self._memo.get(key)
        if value is None:
            if len(self._memo) >= self._MEMO_LIMIT:
                self._memo.clear()
            value = self._memo[key] = fn()
        return value

    @property
    def _overhead(self) -> float:
        return self.costs.kernel_overhead + self.costs.framework_overhead

    def _roofline(self, flops: float, bytes_moved: float, flop_eff: float,
                  bw_eff: float, bw_fraction: float = 1.0,
                  parallelism: Optional[float] = None) -> float:
        """Roofline time with an occupancy derate for small kernels.

        ``parallelism`` is the kernel's output-element count; kernels far
        below the GPU's saturation point cannot fill the SMs, so their
        effective throughput scales down (floored at 8% so tiny kernels
        degrade to a launch-overhead-dominated regime, not to infinity).
        This is what flattens the scaling curves of small graphs (Cora)
        and narrow models (Reddit with 16 hidden units), as observed in
        the paper's §6.5/§6.6.
        """
        util = 1.0
        if parallelism is not None:
            util = min(1.0, parallelism / self.gpu.saturation_elements)
            util = max(util, 0.08)
        compute = flops / (self.gpu.peak_flops * flop_eff * util)
        bw = self.gpu.memory_bandwidth * bw_eff * util * max(bw_fraction, 1e-6)
        memory = bytes_moved / bw
        return max(compute, memory) + self._overhead

    # -- dense kernels ------------------------------------------------------------

    def gemm_time(self, m: int, n: int, k: int, itemsize: int = 4,
                  bw_fraction: float = 1.0) -> float:
        """C(m,n) = A(m,k) @ B(k,n)."""
        return self._memoize(
            ("gemm", m, n, k, itemsize, bw_fraction),
            lambda: self._gemm_time(m, n, k, itemsize, bw_fraction),
        )

    def _gemm_time(self, m: int, n: int, k: int, itemsize: int,
                   bw_fraction: float) -> float:
        flops = 2.0 * m * n * k
        bytes_moved = itemsize * (m * k + k * n + m * n)
        # Occupancy comes from output tiles; for reduction-shaped GEMMs
        # (small m*n, huge k) cuBLAS recovers parallelism with split-k.
        parallelism = float(m) * n * max(1.0, k / 4096.0)
        return self._roofline(
            flops, bytes_moved, self.costs.gemm_flop_efficiency,
            self.costs.stream_bw_efficiency, bw_fraction,
            parallelism=parallelism,
        )

    def elementwise_time(self, elements: int, reads: int = 1, writes: int = 1,
                         itemsize: int = 4, bw_fraction: float = 1.0) -> float:
        """A streaming map kernel touching ``reads+writes`` arrays."""
        return self._memoize(
            ("elementwise", elements, reads, writes, itemsize, bw_fraction),
            lambda: self._roofline(
                float(elements),
                itemsize * elements * (reads + writes),
                self.costs.gemm_flop_efficiency,
                self.costs.stream_bw_efficiency, bw_fraction,
                parallelism=float(elements),
            ),
        )

    def reduction_time(self, elements: int, itemsize: int = 4,
                       bw_fraction: float = 1.0) -> float:
        """A full reduction over ``elements`` values."""
        return self._memoize(
            ("reduction", elements, itemsize, bw_fraction),
            lambda: self._roofline(
                float(elements), float(itemsize * elements),
                self.costs.gemm_flop_efficiency,
                self.costs.stream_bw_efficiency, bw_fraction,
            ),
        )

    # -- sparse kernels --------------------------------------------------------------

    def spmm_traffic(self, rows: int, nnz: int, d: int,
                     dense_rows: int, itemsize: int = 4,
                     index_size: int = 4, offset_size: int = 8) -> float:
        """HBM bytes of one CSR SpMM ``C(rows,d) += A(rows,k) @ B(k,d)``.

        ``dense_rows`` is ``k`` of the dense operand actually addressed
        (the tile height); it determines the cache-blocking discount.
        """
        structure = rows * offset_size + nnz * (index_size + itemsize)
        output = rows * d * itemsize * 2  # read-modify-write accumulate
        working_set = float(dense_rows * d * itemsize)
        # Column-chunked gather cache: the kernel sweeps the dense operand
        # in spmm_chunk_cols-wide slabs, so the L2 holds
        # l2 / (chunk * itemsize) *rows* regardless of d. Access-weighted
        # hit rate exceeds the resident fraction because power-law graphs
        # concentrate gathers on hub rows (coverage**gamma skew model).
        # This term is where partitioning pays: a P-way column tile has
        # dense_rows / P, raising coverage — the "blocking effect of
        # partitioning" behind the paper's super-linear speedups (Fig. 9).
        l2 = self.gpu.l2_cache_bytes * self.costs.l2_utilization
        chunk = min(d, self.costs.spmm_chunk_cols)
        capacity_rows = l2 / (chunk * itemsize)
        coverage = min(1.0, capacity_rows / dense_rows) if dense_rows > 0 else 1.0
        hit = self.costs.spmm_cache_hit_max * coverage**self.costs.spmm_cache_gamma
        gather = working_set + nnz * d * itemsize * (1.0 - hit)
        return structure + output + gather

    def spmm_time(self, rows: int, nnz: int, d: int, dense_rows: int,
                  itemsize: int = 4, bw_fraction: float = 1.0) -> float:
        """Duration of one CSR SpMM (bandwidth-bound roofline)."""
        return self._memoize(
            ("spmm", rows, nnz, d, dense_rows, itemsize, bw_fraction),
            lambda: self._spmm_time(rows, nnz, d, dense_rows, itemsize,
                                    bw_fraction),
        )

    def _spmm_time(self, rows: int, nnz: int, d: int, dense_rows: int,
                   itemsize: int, bw_fraction: float) -> float:
        flops = 2.0 * nnz * d
        bytes_moved = self.spmm_traffic(rows, nnz, d, dense_rows, itemsize)
        return self._roofline(
            flops, bytes_moved, self.costs.gemm_flop_efficiency,
            self.costs.spmm_bw_efficiency, bw_fraction,
            parallelism=float(rows) * d,
        )

    def sddmm_time(self, rows: int, nnz: int, d: int, dense_rows: int,
                   itemsize: int = 4, bw_fraction: float = 1.0) -> float:
        """Sampled dense-dense matmul over an nnz-pattern (GAT logits).

        Traffic mirrors SpMM (two gathered dense operands, scalar
        output per nonzero) with the same cache-blocking behaviour.
        """
        return self._memoize(
            ("sddmm", rows, nnz, d, dense_rows, itemsize, bw_fraction),
            lambda: self._sddmm_time(rows, nnz, d, dense_rows, itemsize,
                                     bw_fraction),
        )

    def _sddmm_time(self, rows: int, nnz: int, d: int, dense_rows: int,
                    itemsize: int, bw_fraction: float) -> float:
        flops = 2.0 * nnz * d
        # gather both operands; output is one scalar per nonzero.
        gather = 2.0 * (
            self.spmm_traffic(rows, nnz, d, dense_rows, itemsize)
            - rows * d * itemsize * 2  # remove SpMM's dense-output term
        )
        bytes_moved = gather + nnz * itemsize
        return self._roofline(
            flops, bytes_moved, self.costs.gemm_flop_efficiency,
            self.costs.spmm_bw_efficiency, bw_fraction,
            parallelism=float(nnz),
        )

    def memset_time(self, nbytes: int, bw_fraction: float = 1.0) -> float:
        """Zero-fill of ``nbytes``."""
        return self._memoize(
            ("memset", nbytes, bw_fraction),
            lambda: self._roofline(
                0.0, float(nbytes), self.costs.gemm_flop_efficiency,
                self.costs.stream_bw_efficiency, bw_fraction,
            ),
        )

    # -- optimiser / loss -----------------------------------------------------------

    def adam_time(self, params: int, itemsize: int = 4) -> float:
        """One Adam step over ``params`` parameters.

        Reads param, grad, m, v; writes param, m, v -> 7 passes.
        """
        return self.elementwise_time(params, reads=4, writes=3, itemsize=itemsize)

    def softmax_xent_time(self, rows: int, classes: int, itemsize: int = 4) -> float:
        """Fused softmax + cross-entropy + gradient over logits (rows, classes)."""
        # read logits, write probs/grad, plus label lookups: ~3 passes.
        return self.elementwise_time(rows * classes, reads=2, writes=1,
                                     itemsize=itemsize)
