"""Timed kernels: functional NumPy compute + simulated duration.

Each kernel:

1. builds a functional *closure* that performs the real computation
   in-place on the output tensor's payload (no closure in symbolic mode),
2. executes the closure eagerly, in host program order,
3. submits a cost-model duration to the given stream, handing the
   closure to the engine so an active epoch capture
   (:mod:`repro.plan`) can record it for replay,
4. returns the op's completion :class:`~repro.device.stream.Event`.

Functional compute happens eagerly in host program order, which is a
valid sequentialisation of the simulated schedule because the schedulers
in :mod:`repro.core` submit ops in data-dependency order per buffer —
and it is exactly the order a replayed plan re-runs the closures in.

Closures dereference tensor payloads (``t.data``) at call time, so they
stay valid as long as buffers are mutated in place (the invariant the
shared-buffer scheme already relies on).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.device.engine import Engine
from repro.device.stream import Event, Stream
from repro.device.tensor import DeviceTensor, Mode
from repro.errors import ShapeError
from repro.kernels.cost import CostModel
from repro.sparse.csr import CSRMatrix


def _functional(*tensors: DeviceTensor) -> bool:
    """True when every tensor carries data (functional run)."""
    return all(t.data is not None for t in tensors)


def _dims(t: DeviceTensor, transpose: bool) -> Tuple[int, int]:
    r, c = t.rows, t.cols
    return (c, r) if transpose else (r, c)


def gemm(
    engine: Engine,
    cost: CostModel,
    stream: Stream,
    a: DeviceTensor,
    b: DeviceTensor,
    out: DeviceTensor,
    transpose_a: bool = False,
    transpose_b: bool = False,
    accumulate: bool = False,
    deps: Sequence[Event] = (),
    name: str = "gemm",
    bw_fraction: float = 1.0,
) -> Event:
    """``out (+)= op(a) @ op(b)`` — the cuBLAS-style dense kernel."""
    m, k = _dims(a, transpose_a)
    k2, n = _dims(b, transpose_b)
    if k != k2:
        raise ShapeError(
            f"{name}: inner dims differ: op(a)={m}x{k}, op(b)={k2}x{n}"
        )
    if (out.rows, out.cols) != (m, n):
        raise ShapeError(f"{name}: out is {out.rows}x{out.cols}, expected {m}x{n}")
    compute: Optional[Callable[[], None]] = None
    if _functional(a, b, out):

        def compute() -> None:
            lhs = a.data.T if transpose_a else a.data
            rhs = b.data.T if transpose_b else b.data
            product = lhs @ rhs
            if accumulate:
                out.data += product
            else:
                np.copyto(out.data, product)

        compute()
    duration = cost.gemm_time(m, n, k, itemsize=out.dtype.itemsize,
                              bw_fraction=bw_fraction)
    return engine.submit(stream, name, "gemm", duration, deps=deps,
                         compute=compute, flops=2.0 * m * n * k)


def spmm(
    engine: Engine,
    cost: CostModel,
    stream: Stream,
    tile,
    dense: DeviceTensor,
    out: DeviceTensor,
    accumulate: bool = True,
    deps: Sequence[Event] = (),
    stage: Optional[int] = None,
    name: str = "spmm",
    bw_fraction: float = 1.0,
    overlap_comm_time: float = 0.0,
) -> Event:
    """``out (+)= tile @ dense`` — the cuSPARSE-style CSR SpMM.

    ``tile`` may be a :class:`CSRMatrix` (functional) or a
    :class:`~repro.sparse.symbolic.SymbolicCSR` (symbolic runs).

    ``overlap_comm_time`` models §6.3's bandwidth sharing: while a
    broadcast of that duration is in flight, the SpMM runs at
    ``bw_fraction`` of its memory bandwidth; once the broadcast drains,
    it runs at full speed. The slowdown is therefore bounded both by
    the fully-derated duration and by ``base + B * (1 - f)``.
    """
    rows, k = tile.shape
    if dense.rows != k:
        raise ShapeError(
            f"{name}: tile is {rows}x{k} but dense operand has {dense.rows} rows"
        )
    if (out.rows, out.cols) != (rows, dense.cols):
        raise ShapeError(
            f"{name}: out is {out.rows}x{out.cols}, expected {rows}x{dense.cols}"
        )
    compute: Optional[Callable[[], None]] = None
    if isinstance(tile, CSRMatrix) and _functional(dense, out):

        def compute() -> None:
            tile.spmm_into(dense.data, out.data, accumulate=accumulate)

        compute()
    base = cost.spmm_time(
        rows=rows, nnz=tile.nnz, d=dense.cols, dense_rows=k,
        itemsize=out.dtype.itemsize, bw_fraction=1.0,
    )
    duration = base
    if overlap_comm_time > 0.0 and bw_fraction < 1.0:
        fully_derated = cost.spmm_time(
            rows=rows, nnz=tile.nnz, d=dense.cols, dense_rows=k,
            itemsize=out.dtype.itemsize, bw_fraction=bw_fraction,
        )
        partially_derated = base + overlap_comm_time * (1.0 - bw_fraction)
        duration = min(fully_derated, partially_derated)
    elif bw_fraction < 1.0:
        duration = cost.spmm_time(
            rows=rows, nnz=tile.nnz, d=dense.cols, dense_rows=k,
            itemsize=out.dtype.itemsize, bw_fraction=bw_fraction,
        )
    return engine.submit(stream, name, "spmm", duration, deps=deps, stage=stage,
                         compute=compute, flops=2.0 * tile.nnz * dense.cols)


def gemm_relu_backward(
    engine: Engine,
    cost: CostModel,
    stream: Stream,
    a: DeviceTensor,
    b: DeviceTensor,
    out: DeviceTensor,
    transpose_b: bool = True,
    deps: Sequence[Event] = (),
    name: str = "gemm_relu_bwd",
) -> Event:
    """``out = (a @ op(b)) * (out > 0)`` — eq. (11) fused with eq. (8).

    The GeMM producing the propagated gradient ``H_G = HW_G W^T`` writes
    directly into the previous layer's output buffer, with an epilogue
    that multiplies each element by that buffer's ReLU mask *as it is
    overwritten*. This fusion (a cuBLAS epilogue in the real system) is
    what lets the gradient share the forward activation's buffer and is
    load-bearing for the paper's L+3 buffer count.
    """
    m, k = a.rows, a.cols
    kb, n = _dims(b, transpose_b)
    if k != kb:
        raise ShapeError(f"{name}: inner dims differ: {k} vs {kb}")
    if (out.rows, out.cols) != (m, n):
        raise ShapeError(f"{name}: out is {out.rows}x{out.cols}, expected {m}x{n}")
    compute: Optional[Callable[[], None]] = None
    if _functional(a, b, out):

        def compute() -> None:
            rhs = b.data.T if transpose_b else b.data
            product = a.data @ rhs
            np.multiply(product, out.data > 0, out=out.data)

        compute()
    duration = cost.gemm_time(m, n, k, itemsize=out.dtype.itemsize)
    return engine.submit(stream, name, "gemm", duration, deps=deps,
                         compute=compute, flops=2.0 * m * n * k + m * n)


def relu_forward(
    engine: Engine,
    cost: CostModel,
    stream: Stream,
    tensor: DeviceTensor,
    deps: Sequence[Event] = (),
    name: str = "relu",
) -> Event:
    """In-place ReLU (the paper applies sigma in-place on the AHW buffer)."""
    compute: Optional[Callable[[], None]] = None
    if tensor.data is not None:

        def compute() -> None:
            np.maximum(tensor.data, 0.0, out=tensor.data)

        compute()
    duration = cost.elementwise_time(tensor.size, reads=1, writes=1,
                                     itemsize=tensor.dtype.itemsize)
    return engine.submit(stream, name, "activation", duration, deps=deps,
                         compute=compute, flops=float(tensor.size))


def relu_backward(
    engine: Engine,
    cost: CostModel,
    stream: Stream,
    grad: DeviceTensor,
    activated: DeviceTensor,
    deps: Sequence[Event] = (),
    name: str = "relu_bwd",
) -> Event:
    """In-place ``grad *= (activated > 0)`` — eq. (8)'s sigma'.

    ``activated`` holds the *post*-activation values (ReLU was applied
    in-place), whose positivity mask equals the pre-activation mask.
    """
    if grad.shape != activated.shape:
        raise ShapeError(
            f"{name}: grad {grad.shape} vs activation {activated.shape}"
        )
    compute: Optional[Callable[[], None]] = None
    if _functional(grad, activated):

        def compute() -> None:
            grad.data *= activated.data > 0

        compute()
    duration = cost.elementwise_time(grad.size, reads=2, writes=1,
                                     itemsize=grad.dtype.itemsize)
    return engine.submit(stream, name, "activation", duration, deps=deps,
                         compute=compute, flops=float(grad.size))


def softmax_cross_entropy(
    engine: Engine,
    cost: CostModel,
    stream: Stream,
    logits: DeviceTensor,
    labels: Optional[np.ndarray],
    mask: Optional[np.ndarray],
    grad_out: DeviceTensor,
    total_train: int,
    deps: Sequence[Event] = (),
    name: str = "softmax_xent",
) -> Tuple[float, Event]:
    """Fused softmax + cross-entropy loss + gradient.

    ``labels``/``mask`` are host arrays local to this device's row block
    (labels int64, mask bool; ``mask`` selects training vertices).
    ``grad_out`` receives ``(softmax - onehot) / total_train`` on masked
    rows and zero elsewhere; ``total_train`` is the global number of
    training vertices so that partitioned and single-device runs compute
    identical gradients. Returns ``(local_loss_sum, event)`` — the caller
    is responsible for reducing losses across devices. Under capture the
    closure's return value is what replay re-accumulates per epoch.
    """
    if (grad_out.rows, grad_out.cols) != (logits.rows, logits.cols):
        raise ShapeError(
            f"{name}: grad_out {grad_out.shape} != logits {logits.shape}"
        )
    if total_train <= 0:
        raise ValueError(f"{name}: total_train must be positive, got {total_train}")
    loss_value = 0.0
    compute: Optional[Callable[[], float]] = None
    if _functional(logits, grad_out) and labels is not None:

        def compute() -> float:
            z = logits.data
            row_mask = mask if mask is not None else np.ones(z.shape[0], dtype=bool)
            rows = np.nonzero(row_mask)[0]
            # Read the logits *before* clearing grad_out: the trainer
            # aliases grad_out to the logits buffer (the gradient replaces
            # the layer output in the paper's buffer-reuse scheme, eq. (19)).
            loss = 0.0
            probs = None
            if rows.size:
                sub = z[rows].copy()
                shifted = sub - sub.max(axis=1, keepdims=True)
                exp = np.exp(shifted)
                denom = exp.sum(axis=1, keepdims=True)
                log_probs = shifted - np.log(denom)
                picked = log_probs[np.arange(rows.size), labels[rows]]
                loss = float(-picked.sum())
                probs = exp / denom
                probs[np.arange(rows.size), labels[rows]] -= 1.0
            grad_out.data.fill(0.0)
            if probs is not None:
                grad_out.data[rows] = probs / total_train
            return loss

        loss_value = compute()
    duration = cost.softmax_xent_time(logits.rows, logits.cols,
                                      itemsize=logits.dtype.itemsize)
    event = engine.submit(stream, name, "loss", duration, deps=deps,
                          compute=compute,
                          flops=5.0 * logits.rows * logits.cols)
    return loss_value, event


def adam_step_op(
    engine: Engine,
    cost: CostModel,
    stream: Stream,
    param: np.ndarray,
    grad: np.ndarray,
    m: np.ndarray,
    v: np.ndarray,
    t: Union[int, Callable[[], int]],
    lr: float,
    beta1: float,
    beta2: float,
    eps: float,
    deps: Sequence[Event] = (),
    name: str = "adam",
) -> Event:
    """One Adam update over host-resident (replicated) weight arrays.

    Weights are replicated per-device in the real system; the simulated
    epoch charges the update once per device (the trainer submits this op
    on every device's stream). Functional math runs once on the shared
    arrays — pass ``param=None`` on replicas to skip recomputation.

    ``t`` may be an int or a zero-arg callable returning the current
    step; trainers that support epoch replay pass a callable so the
    captured closure reads the live step count each epoch instead of
    baking in the capture epoch's value.
    """
    compute: Optional[Callable[[], None]] = None
    if param is not None:

        def compute() -> None:
            step = t() if callable(t) else t
            # explicit out= forms of m *= ..., m += ... etc.: augmented
            # assignment would rebind the enclosing-scope names.
            np.multiply(m, beta1, out=m)
            np.add(m, (1.0 - beta1) * grad, out=m)
            np.multiply(v, beta2, out=v)
            np.add(v, (1.0 - beta2) * np.square(grad), out=v)
            m_hat = m / (1.0 - beta1**step)
            v_hat = v / (1.0 - beta2**step)
            np.subtract(param, lr * m_hat / (np.sqrt(v_hat) + eps), out=param)

        compute()
        size = param.size
        itemsize = param.dtype.itemsize
    else:
        size = grad.size
        itemsize = grad.dtype.itemsize
    duration = cost.adam_time(size, itemsize=itemsize)
    return engine.submit(stream, name, "adam", duration, deps=deps,
                         compute=compute, flops=10.0 * size)


def memset(
    engine: Engine,
    cost: CostModel,
    stream: Stream,
    tensor: DeviceTensor,
    value: float = 0.0,
    deps: Sequence[Event] = (),
    name: str = "memset",
) -> Event:
    """Fill a tensor (models cudaMemsetAsync)."""

    def compute() -> None:
        tensor.fill_(value)

    compute()
    duration = cost.memset_time(tensor.nbytes)
    return engine.submit(stream, name, "memset", duration, deps=deps,
                         compute=compute)


def scale(
    engine: Engine,
    cost: CostModel,
    stream: Stream,
    tensor: DeviceTensor,
    factor: float,
    deps: Sequence[Event] = (),
    name: str = "scale",
) -> Event:
    """In-place ``tensor *= factor``."""
    compute: Optional[Callable[[], None]] = None
    if tensor.data is not None:

        def compute() -> None:
            tensor.data *= factor

        compute()
    duration = cost.elementwise_time(tensor.size, reads=1, writes=1,
                                     itemsize=tensor.dtype.itemsize)
    return engine.submit(stream, name, "elementwise", duration, deps=deps,
                         compute=compute, flops=float(tensor.size))


def add_(
    engine: Engine,
    cost: CostModel,
    stream: Stream,
    dst: DeviceTensor,
    src: DeviceTensor,
    deps: Sequence[Event] = (),
    name: str = "add",
) -> Event:
    """In-place ``dst += src`` (both on the same device)."""
    if dst.shape != src.shape:
        raise ShapeError(f"{name}: {dst.shape} += {src.shape}")
    compute: Optional[Callable[[], None]] = None
    if _functional(dst, src):

        def compute() -> None:
            dst.data += src.data

        compute()
    duration = cost.elementwise_time(dst.size, reads=2, writes=1,
                                     itemsize=dst.dtype.itemsize)
    return engine.submit(stream, name, "elementwise", duration, deps=deps,
                         compute=compute, flops=float(dst.size))
