"""Timed kernels: functional NumPy compute + simulated duration.

Each kernel:

1. performs the real computation in-place on the output tensor's payload
   (skipped in symbolic mode),
2. submits a cost-model duration to the given stream,
3. returns the op's completion :class:`~repro.device.stream.Event`.

Functional compute happens eagerly in host program order, which is a
valid sequentialisation of the simulated schedule because the schedulers
in :mod:`repro.core` submit ops in data-dependency order per buffer.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.device.engine import Engine
from repro.device.stream import Event, Stream
from repro.device.tensor import DeviceTensor, Mode
from repro.errors import ShapeError
from repro.kernels.cost import CostModel
from repro.sparse.csr import CSRMatrix


def _functional(*tensors: DeviceTensor) -> bool:
    """True when every tensor carries data (functional run)."""
    return all(t.data is not None for t in tensors)


def _dims(t: DeviceTensor, transpose: bool) -> Tuple[int, int]:
    r, c = t.rows, t.cols
    return (c, r) if transpose else (r, c)


def gemm(
    engine: Engine,
    cost: CostModel,
    stream: Stream,
    a: DeviceTensor,
    b: DeviceTensor,
    out: DeviceTensor,
    transpose_a: bool = False,
    transpose_b: bool = False,
    accumulate: bool = False,
    deps: Sequence[Event] = (),
    name: str = "gemm",
    bw_fraction: float = 1.0,
) -> Event:
    """``out (+)= op(a) @ op(b)`` — the cuBLAS-style dense kernel."""
    m, k = _dims(a, transpose_a)
    k2, n = _dims(b, transpose_b)
    if k != k2:
        raise ShapeError(
            f"{name}: inner dims differ: op(a)={m}x{k}, op(b)={k2}x{n}"
        )
    if (out.rows, out.cols) != (m, n):
        raise ShapeError(f"{name}: out is {out.rows}x{out.cols}, expected {m}x{n}")
    if _functional(a, b, out):
        lhs = a.data.T if transpose_a else a.data
        rhs = b.data.T if transpose_b else b.data
        product = lhs @ rhs
        if accumulate:
            out.data += product
        else:
            np.copyto(out.data, product)
    duration = cost.gemm_time(m, n, k, itemsize=out.dtype.itemsize,
                              bw_fraction=bw_fraction)
    return engine.submit(stream, name, "gemm", duration, deps=deps)


def spmm(
    engine: Engine,
    cost: CostModel,
    stream: Stream,
    tile,
    dense: DeviceTensor,
    out: DeviceTensor,
    accumulate: bool = True,
    deps: Sequence[Event] = (),
    stage: Optional[int] = None,
    name: str = "spmm",
    bw_fraction: float = 1.0,
    overlap_comm_time: float = 0.0,
) -> Event:
    """``out (+)= tile @ dense`` — the cuSPARSE-style CSR SpMM.

    ``tile`` may be a :class:`CSRMatrix` (functional) or a
    :class:`~repro.sparse.symbolic.SymbolicCSR` (symbolic runs).

    ``overlap_comm_time`` models §6.3's bandwidth sharing: while a
    broadcast of that duration is in flight, the SpMM runs at
    ``bw_fraction`` of its memory bandwidth; once the broadcast drains,
    it runs at full speed. The slowdown is therefore bounded both by
    the fully-derated duration and by ``base + B * (1 - f)``.
    """
    rows, k = tile.shape
    if dense.rows != k:
        raise ShapeError(
            f"{name}: tile is {rows}x{k} but dense operand has {dense.rows} rows"
        )
    if (out.rows, out.cols) != (rows, dense.cols):
        raise ShapeError(
            f"{name}: out is {out.rows}x{out.cols}, expected {rows}x{dense.cols}"
        )
    if isinstance(tile, CSRMatrix) and _functional(dense, out):
        tile.spmm(dense.data, out=out.data, accumulate=accumulate)
    base = cost.spmm_time(
        rows=rows, nnz=tile.nnz, d=dense.cols, dense_rows=k,
        itemsize=out.dtype.itemsize, bw_fraction=1.0,
    )
    duration = base
    if overlap_comm_time > 0.0 and bw_fraction < 1.0:
        fully_derated = cost.spmm_time(
            rows=rows, nnz=tile.nnz, d=dense.cols, dense_rows=k,
            itemsize=out.dtype.itemsize, bw_fraction=bw_fraction,
        )
        partially_derated = base + overlap_comm_time * (1.0 - bw_fraction)
        duration = min(fully_derated, partially_derated)
    elif bw_fraction < 1.0:
        duration = cost.spmm_time(
            rows=rows, nnz=tile.nnz, d=dense.cols, dense_rows=k,
            itemsize=out.dtype.itemsize, bw_fraction=bw_fraction,
        )
    return engine.submit(stream, name, "spmm", duration, deps=deps, stage=stage)


def gemm_relu_backward(
    engine: Engine,
    cost: CostModel,
    stream: Stream,
    a: DeviceTensor,
    b: DeviceTensor,
    out: DeviceTensor,
    transpose_b: bool = True,
    deps: Sequence[Event] = (),
    name: str = "gemm_relu_bwd",
) -> Event:
    """``out = (a @ op(b)) * (out > 0)`` — eq. (11) fused with eq. (8).

    The GeMM producing the propagated gradient ``H_G = HW_G W^T`` writes
    directly into the previous layer's output buffer, with an epilogue
    that multiplies each element by that buffer's ReLU mask *as it is
    overwritten*. This fusion (a cuBLAS epilogue in the real system) is
    what lets the gradient share the forward activation's buffer and is
    load-bearing for the paper's L+3 buffer count.
    """
    m, k = a.rows, a.cols
    kb, n = _dims(b, transpose_b)
    if k != kb:
        raise ShapeError(f"{name}: inner dims differ: {k} vs {kb}")
    if (out.rows, out.cols) != (m, n):
        raise ShapeError(f"{name}: out is {out.rows}x{out.cols}, expected {m}x{n}")
    if _functional(a, b, out):
        rhs = b.data.T if transpose_b else b.data
        product = a.data @ rhs
        np.multiply(product, out.data > 0, out=out.data)
    duration = cost.gemm_time(m, n, k, itemsize=out.dtype.itemsize)
    return engine.submit(stream, name, "gemm", duration, deps=deps)


def relu_forward(
    engine: Engine,
    cost: CostModel,
    stream: Stream,
    tensor: DeviceTensor,
    deps: Sequence[Event] = (),
    name: str = "relu",
) -> Event:
    """In-place ReLU (the paper applies sigma in-place on the AHW buffer)."""
    if tensor.data is not None:
        np.maximum(tensor.data, 0.0, out=tensor.data)
    duration = cost.elementwise_time(tensor.size, reads=1, writes=1,
                                     itemsize=tensor.dtype.itemsize)
    return engine.submit(stream, name, "activation", duration, deps=deps)


def relu_backward(
    engine: Engine,
    cost: CostModel,
    stream: Stream,
    grad: DeviceTensor,
    activated: DeviceTensor,
    deps: Sequence[Event] = (),
    name: str = "relu_bwd",
) -> Event:
    """In-place ``grad *= (activated > 0)`` — eq. (8)'s sigma'.

    ``activated`` holds the *post*-activation values (ReLU was applied
    in-place), whose positivity mask equals the pre-activation mask.
    """
    if grad.shape != activated.shape:
        raise ShapeError(
            f"{name}: grad {grad.shape} vs activation {activated.shape}"
        )
    if _functional(grad, activated):
        grad.data *= activated.data > 0
    duration = cost.elementwise_time(grad.size, reads=2, writes=1,
                                     itemsize=grad.dtype.itemsize)
    return engine.submit(stream, name, "activation", duration, deps=deps)


def softmax_cross_entropy(
    engine: Engine,
    cost: CostModel,
    stream: Stream,
    logits: DeviceTensor,
    labels: Optional[np.ndarray],
    mask: Optional[np.ndarray],
    grad_out: DeviceTensor,
    total_train: int,
    deps: Sequence[Event] = (),
    name: str = "softmax_xent",
) -> Tuple[float, Event]:
    """Fused softmax + cross-entropy loss + gradient.

    ``labels``/``mask`` are host arrays local to this device's row block
    (labels int64, mask bool; ``mask`` selects training vertices).
    ``grad_out`` receives ``(softmax - onehot) / total_train`` on masked
    rows and zero elsewhere; ``total_train`` is the global number of
    training vertices so that partitioned and single-device runs compute
    identical gradients. Returns ``(local_loss_sum, event)`` — the caller
    is responsible for reducing losses across devices.
    """
    if (grad_out.rows, grad_out.cols) != (logits.rows, logits.cols):
        raise ShapeError(
            f"{name}: grad_out {grad_out.shape} != logits {logits.shape}"
        )
    if total_train <= 0:
        raise ValueError(f"{name}: total_train must be positive, got {total_train}")
    loss_value = 0.0
    if _functional(logits, grad_out) and labels is not None:
        z = logits.data
        if mask is None:
            mask = np.ones(z.shape[0], dtype=bool)
        rows = np.nonzero(mask)[0]
        # Read the logits *before* clearing grad_out: the trainer aliases
        # grad_out to the logits buffer (the gradient replaces the layer
        # output in the paper's buffer-reuse scheme, eq. (19)).
        probs = None
        if rows.size:
            sub = z[rows].copy()
            shifted = sub - sub.max(axis=1, keepdims=True)
            exp = np.exp(shifted)
            denom = exp.sum(axis=1, keepdims=True)
            log_probs = shifted - np.log(denom)
            picked = log_probs[np.arange(rows.size), labels[rows]]
            loss_value = float(-picked.sum())
            probs = exp / denom
            probs[np.arange(rows.size), labels[rows]] -= 1.0
        grad_out.data.fill(0.0)
        if probs is not None:
            grad_out.data[rows] = probs / total_train
    duration = cost.softmax_xent_time(logits.rows, logits.cols,
                                      itemsize=logits.dtype.itemsize)
    event = engine.submit(stream, name, "loss", duration, deps=deps)
    return loss_value, event


def adam_step_op(
    engine: Engine,
    cost: CostModel,
    stream: Stream,
    param: np.ndarray,
    grad: np.ndarray,
    m: np.ndarray,
    v: np.ndarray,
    t: int,
    lr: float,
    beta1: float,
    beta2: float,
    eps: float,
    deps: Sequence[Event] = (),
    name: str = "adam",
) -> Event:
    """One Adam update over host-resident (replicated) weight arrays.

    Weights are replicated per-device in the real system; the simulated
    epoch charges the update once per device (the trainer submits this op
    on every device's stream). Functional math runs once on the shared
    arrays — pass ``param=None`` on replicas to skip recomputation.
    """
    if param is not None:
        m *= beta1
        m += (1.0 - beta1) * grad
        v *= beta2
        v += (1.0 - beta2) * np.square(grad)
        m_hat = m / (1.0 - beta1**t)
        v_hat = v / (1.0 - beta2**t)
        param -= lr * m_hat / (np.sqrt(v_hat) + eps)
        size = param.size
        itemsize = param.dtype.itemsize
    else:
        size = grad.size
        itemsize = grad.dtype.itemsize
    duration = cost.adam_time(size, itemsize=itemsize)
    return engine.submit(stream, name, "adam", duration, deps=deps)


def memset(
    engine: Engine,
    cost: CostModel,
    stream: Stream,
    tensor: DeviceTensor,
    value: float = 0.0,
    deps: Sequence[Event] = (),
    name: str = "memset",
) -> Event:
    """Fill a tensor (models cudaMemsetAsync)."""
    tensor.fill_(value)
    duration = cost.memset_time(tensor.nbytes)
    return engine.submit(stream, name, "memset", duration, deps=deps)


def scale(
    engine: Engine,
    cost: CostModel,
    stream: Stream,
    tensor: DeviceTensor,
    factor: float,
    deps: Sequence[Event] = (),
    name: str = "scale",
) -> Event:
    """In-place ``tensor *= factor``."""
    if tensor.data is not None:
        tensor.data *= factor
    duration = cost.elementwise_time(tensor.size, reads=1, writes=1,
                                     itemsize=tensor.dtype.itemsize)
    return engine.submit(stream, name, "elementwise", duration, deps=deps)


def add_(
    engine: Engine,
    cost: CostModel,
    stream: Stream,
    dst: DeviceTensor,
    src: DeviceTensor,
    deps: Sequence[Event] = (),
    name: str = "add",
) -> Event:
    """In-place ``dst += src`` (both on the same device)."""
    if dst.shape != src.shape:
        raise ShapeError(f"{name}: {dst.shape} += {src.shape}")
    if _functional(dst, src):
        dst.data += src.data
    duration = cost.elementwise_time(dst.size, reads=2, writes=1,
                                     itemsize=dst.dtype.itemsize)
    return engine.submit(stream, name, "elementwise", duration, deps=deps)
