"""Timed kernels: functional NumPy compute + simulated duration.

Each kernel:

1. builds a functional *closure* that performs the real computation
   in-place on the output tensor's payload (no closure in symbolic mode),
2. executes the closure eagerly, in host program order,
3. submits a cost-model duration to the given stream, handing the
   closure to the engine so an active epoch capture
   (:mod:`repro.plan`) can record it for replay,
4. returns the op's completion :class:`~repro.device.stream.Event`.

Functional compute happens eagerly in host program order, which is a
valid sequentialisation of the simulated schedule because the schedulers
in :mod:`repro.core` submit ops in data-dependency order per buffer —
and it is exactly the order a replayed plan re-runs the closures in.

Closures dereference tensor payloads (``t.data``) at call time, so they
stay valid as long as buffers are mutated in place (the invariant the
shared-buffer scheme already relies on).

Array-level math is delegated to the engine's pluggable
:class:`~repro.backends.KernelBackend` (``engine.backend``), so backends
swap without touching any call site. Beyond the single-op kernels, this
module provides *chained* submission (:func:`submit_chain` — one engine
op for a back-to-back sequence like SpMM→GeMM→ReLU) and *batched*
submission (:func:`gemm_many` / :func:`spmm_many` / :func:`relu_many` —
one ``Engine.submit_many`` call and one group closure for a per-rank
loop), both bit-identical to their op-at-a-time equivalents.
"""

from __future__ import annotations

from typing import Callable, List, NamedTuple, Optional, Sequence, Tuple, Union

import numpy as np

from repro.device.engine import Engine
from repro.device.stream import Event, Stream
from repro.device.tensor import DeviceTensor, Mode
from repro.errors import ShapeError
from repro.kernels.cost import CostModel
from repro.sparse.csr import CSRMatrix


class OpPart(NamedTuple):
    """One kernel's submission ingredients, before it hits the engine.

    Built by the ``build_*`` helpers so a part can either be submitted
    alone (the classic kernels) or chained into a fused op
    (:func:`submit_chain`).
    """

    name: str
    category: str
    duration: float
    stage: Optional[int]
    nbytes: int
    flops: float
    compute: Optional[Callable[[], None]]


def _functional(*tensors: DeviceTensor) -> bool:
    """True when every tensor carries data (functional run)."""
    return all(t.data is not None for t in tensors)


def _dims(t: DeviceTensor, transpose: bool) -> Tuple[int, int]:
    r, c = t.rows, t.cols
    return (c, r) if transpose else (r, c)


def build_gemm(
    engine: Engine,
    cost: CostModel,
    a: DeviceTensor,
    b: DeviceTensor,
    out: DeviceTensor,
    transpose_a: bool = False,
    transpose_b: bool = False,
    accumulate: bool = False,
    name: str = "gemm",
    bw_fraction: float = 1.0,
) -> OpPart:
    """Validate + build one GeMM part (closure not yet executed)."""
    m, k = _dims(a, transpose_a)
    k2, n = _dims(b, transpose_b)
    if k != k2:
        raise ShapeError(
            f"{name}: inner dims differ: op(a)={m}x{k}, op(b)={k2}x{n}"
        )
    if (out.rows, out.cols) != (m, n):
        raise ShapeError(f"{name}: out is {out.rows}x{out.cols}, expected {m}x{n}")
    compute: Optional[Callable[[], None]] = None
    if _functional(a, b, out):
        backend = engine.backend

        def compute() -> None:
            backend.gemm(
                a.data, b.data, out.data,
                transpose_a=transpose_a,
                transpose_b=transpose_b,
                accumulate=accumulate,
            )

    duration = cost.gemm_time(m, n, k, itemsize=out.dtype.itemsize,
                              bw_fraction=bw_fraction)
    return OpPart(name, "gemm", duration, None, 0, 2.0 * m * n * k, compute)


def gemm(
    engine: Engine,
    cost: CostModel,
    stream: Stream,
    a: DeviceTensor,
    b: DeviceTensor,
    out: DeviceTensor,
    transpose_a: bool = False,
    transpose_b: bool = False,
    accumulate: bool = False,
    deps: Sequence[Event] = (),
    name: str = "gemm",
    bw_fraction: float = 1.0,
) -> Event:
    """``out (+)= op(a) @ op(b)`` — the cuBLAS-style dense kernel."""
    part = build_gemm(engine, cost, a, b, out, transpose_a=transpose_a,
                      transpose_b=transpose_b, accumulate=accumulate,
                      name=name, bw_fraction=bw_fraction)
    if part.compute is not None:
        part.compute()
    return engine.submit(stream, part.name, part.category, part.duration,
                         deps=deps, compute=part.compute, flops=part.flops)


def build_spmm(
    engine: Engine,
    cost: CostModel,
    tile,
    dense: DeviceTensor,
    out: DeviceTensor,
    accumulate: bool = True,
    stage: Optional[int] = None,
    name: str = "spmm",
    bw_fraction: float = 1.0,
    overlap_comm_time: float = 0.0,
) -> OpPart:
    """Validate + build one SpMM part (closure not yet executed)."""
    rows, k = tile.shape
    if dense.rows != k:
        raise ShapeError(
            f"{name}: tile is {rows}x{k} but dense operand has {dense.rows} rows"
        )
    if (out.rows, out.cols) != (rows, dense.cols):
        raise ShapeError(
            f"{name}: out is {out.rows}x{out.cols}, expected {rows}x{dense.cols}"
        )
    compute: Optional[Callable[[], None]] = None
    if isinstance(tile, CSRMatrix) and _functional(dense, out):
        backend = engine.backend

        def compute() -> None:
            backend.spmm(tile, dense.data, out.data, accumulate=accumulate)

    duration = _spmm_duration(
        cost, rows, tile.nnz, dense.cols, k, out.dtype.itemsize,
        bw_fraction, overlap_comm_time,
    )
    return OpPart(name, "spmm", duration, stage, 0,
                  2.0 * tile.nnz * dense.cols, compute)


def _spmm_duration(
    cost: CostModel,
    rows: int,
    nnz: int,
    d: int,
    dense_rows: int,
    itemsize: int,
    bw_fraction: float,
    overlap_comm_time: float,
) -> float:
    """SpMM duration with §6.3's bounded overlap derate (see :func:`spmm`).

    Memoized on the cost model alongside the plain kernel times: the
    derate arithmetic runs once per distinct operand signature, then
    every per-tile submission is a single cache hit.
    """
    return cost._memoize(
        ("spmm_overlap", rows, nnz, d, dense_rows, itemsize, bw_fraction,
         overlap_comm_time),
        lambda: _spmm_duration_uncached(cost, rows, nnz, d, dense_rows,
                                        itemsize, bw_fraction,
                                        overlap_comm_time),
    )


def _spmm_duration_uncached(
    cost: CostModel,
    rows: int,
    nnz: int,
    d: int,
    dense_rows: int,
    itemsize: int,
    bw_fraction: float,
    overlap_comm_time: float,
) -> float:
    base = cost.spmm_time(
        rows=rows, nnz=nnz, d=d, dense_rows=dense_rows,
        itemsize=itemsize, bw_fraction=1.0,
    )
    if overlap_comm_time > 0.0 and bw_fraction < 1.0:
        fully_derated = cost.spmm_time(
            rows=rows, nnz=nnz, d=d, dense_rows=dense_rows,
            itemsize=itemsize, bw_fraction=bw_fraction,
        )
        partially_derated = base + overlap_comm_time * (1.0 - bw_fraction)
        return min(fully_derated, partially_derated)
    if bw_fraction < 1.0:
        return cost.spmm_time(
            rows=rows, nnz=nnz, d=d, dense_rows=dense_rows,
            itemsize=itemsize, bw_fraction=bw_fraction,
        )
    return base


def spmm(
    engine: Engine,
    cost: CostModel,
    stream: Stream,
    tile,
    dense: DeviceTensor,
    out: DeviceTensor,
    accumulate: bool = True,
    deps: Sequence[Event] = (),
    stage: Optional[int] = None,
    name: str = "spmm",
    bw_fraction: float = 1.0,
    overlap_comm_time: float = 0.0,
) -> Event:
    """``out (+)= tile @ dense`` — the cuSPARSE-style CSR SpMM.

    ``tile`` may be a :class:`CSRMatrix` (functional) or a
    :class:`~repro.sparse.symbolic.SymbolicCSR` (symbolic runs).

    ``overlap_comm_time`` models §6.3's bandwidth sharing: while a
    broadcast of that duration is in flight, the SpMM runs at
    ``bw_fraction`` of its memory bandwidth; once the broadcast drains,
    it runs at full speed. The slowdown is therefore bounded both by
    the fully-derated duration and by ``base + B * (1 - f)``.
    """
    part = build_spmm(engine, cost, tile, dense, out, accumulate=accumulate,
                      stage=stage, name=name, bw_fraction=bw_fraction,
                      overlap_comm_time=overlap_comm_time)
    if part.compute is not None:
        part.compute()
    return engine.submit(stream, part.name, part.category, part.duration,
                         deps=deps, stage=part.stage, compute=part.compute,
                         flops=part.flops)


def gemm_relu_backward(
    engine: Engine,
    cost: CostModel,
    stream: Stream,
    a: DeviceTensor,
    b: DeviceTensor,
    out: DeviceTensor,
    transpose_b: bool = True,
    deps: Sequence[Event] = (),
    name: str = "gemm_relu_bwd",
) -> Event:
    """``out = (a @ op(b)) * (out > 0)`` — eq. (11) fused with eq. (8).

    The GeMM producing the propagated gradient ``H_G = HW_G W^T`` writes
    directly into the previous layer's output buffer, with an epilogue
    that multiplies each element by that buffer's ReLU mask *as it is
    overwritten*. This fusion (a cuBLAS epilogue in the real system) is
    what lets the gradient share the forward activation's buffer and is
    load-bearing for the paper's L+3 buffer count.
    """
    m, k = a.rows, a.cols
    kb, n = _dims(b, transpose_b)
    if k != kb:
        raise ShapeError(f"{name}: inner dims differ: {k} vs {kb}")
    if (out.rows, out.cols) != (m, n):
        raise ShapeError(f"{name}: out is {out.rows}x{out.cols}, expected {m}x{n}")
    compute: Optional[Callable[[], None]] = None
    if _functional(a, b, out):
        backend = engine.backend

        def compute() -> None:
            backend.gemm_relu_grad(a.data, b.data, out.data,
                                   transpose_b=transpose_b)

        compute()
    duration = cost.gemm_time(m, n, k, itemsize=out.dtype.itemsize)
    return engine.submit(stream, name, "gemm", duration, deps=deps,
                         compute=compute, flops=2.0 * m * n * k + m * n)


def gemm_relu_backward_many(
    engine: Engine,
    items: Sequence[tuple],
    transpose_b: bool = True,
    name: str = "gemm_relu_bwd",
) -> List[Event]:
    """A per-rank fused gradient-GeMM loop as one engine call.

    ``items`` is ``[(stream, cost, a, b, out, deps), ...]``; each runs
    ``out = (a @ op(b)) * (out > 0)`` like :func:`gemm_relu_backward`.
    Bit-identical to calling it per item in order.
    """
    if not items:
        return []
    backend = engine.backend
    specs = []
    group = []
    for stream, cost, a, b, out, deps in items:
        m, k = a.rows, a.cols
        kb, n = _dims(b, transpose_b)
        if k != kb:
            raise ShapeError(f"{name}: inner dims differ: {k} vs {kb}")
        if (out.rows, out.cols) != (m, n):
            raise ShapeError(
                f"{name}: out is {out.rows}x{out.cols}, expected {m}x{n}"
            )
        if _functional(a, b, out):
            group.append((a, b, out))
        duration = cost.gemm_time(m, n, k, itemsize=out.dtype.itemsize)
        specs.append((stream, name, "gemm", duration, tuple(deps), None, 0,
                      None, None, 2.0 * m * n * k + m * n))
    if group:

        def compute() -> None:
            for a, b, out in group:
                backend.gemm_relu_grad(a.data, b.data, out.data,
                                       transpose_b=transpose_b)

        compute._group = True
        compute()
        specs[0] = specs[0][:7] + (compute, None, specs[0][9])
    return engine.submit_many(specs)


def build_relu(
    engine: Engine,
    cost: CostModel,
    tensor: DeviceTensor,
    name: str = "relu",
) -> OpPart:
    """Build one in-place ReLU part (closure not yet executed)."""
    compute: Optional[Callable[[], None]] = None
    if tensor.data is not None:
        backend = engine.backend

        def compute() -> None:
            backend.relu(tensor.data)

    duration = cost.elementwise_time(tensor.size, reads=1, writes=1,
                                     itemsize=tensor.dtype.itemsize)
    return OpPart(name, "activation", duration, None, 0,
                  float(tensor.size), compute)


def relu_forward(
    engine: Engine,
    cost: CostModel,
    stream: Stream,
    tensor: DeviceTensor,
    deps: Sequence[Event] = (),
    name: str = "relu",
) -> Event:
    """In-place ReLU (the paper applies sigma in-place on the AHW buffer)."""
    part = build_relu(engine, cost, tensor, name=name)
    if part.compute is not None:
        part.compute()
    return engine.submit(stream, part.name, part.category, part.duration,
                         deps=deps, compute=part.compute, flops=part.flops)


def relu_backward(
    engine: Engine,
    cost: CostModel,
    stream: Stream,
    grad: DeviceTensor,
    activated: DeviceTensor,
    deps: Sequence[Event] = (),
    name: str = "relu_bwd",
) -> Event:
    """In-place ``grad *= (activated > 0)`` — eq. (8)'s sigma'.

    ``activated`` holds the *post*-activation values (ReLU was applied
    in-place), whose positivity mask equals the pre-activation mask.
    """
    if grad.shape != activated.shape:
        raise ShapeError(
            f"{name}: grad {grad.shape} vs activation {activated.shape}"
        )
    compute: Optional[Callable[[], None]] = None
    if _functional(grad, activated):
        backend = engine.backend

        def compute() -> None:
            backend.relu_grad(grad.data, activated.data)

        compute()
    duration = cost.elementwise_time(grad.size, reads=2, writes=1,
                                     itemsize=grad.dtype.itemsize)
    return engine.submit(stream, name, "activation", duration, deps=deps,
                         compute=compute, flops=float(grad.size))


def softmax_cross_entropy(
    engine: Engine,
    cost: CostModel,
    stream: Stream,
    logits: DeviceTensor,
    labels: Optional[np.ndarray],
    mask: Optional[np.ndarray],
    grad_out: DeviceTensor,
    total_train: int,
    deps: Sequence[Event] = (),
    name: str = "softmax_xent",
) -> Tuple[float, Event]:
    """Fused softmax + cross-entropy loss + gradient.

    ``labels``/``mask`` are host arrays local to this device's row block
    (labels int64, mask bool; ``mask`` selects training vertices).
    ``grad_out`` receives ``(softmax - onehot) / total_train`` on masked
    rows and zero elsewhere; ``total_train`` is the global number of
    training vertices so that partitioned and single-device runs compute
    identical gradients. Returns ``(local_loss_sum, event)`` — the caller
    is responsible for reducing losses across devices. Under capture the
    closure's return value is what replay re-accumulates per epoch.
    """
    if (grad_out.rows, grad_out.cols) != (logits.rows, logits.cols):
        raise ShapeError(
            f"{name}: grad_out {grad_out.shape} != logits {logits.shape}"
        )
    if total_train <= 0:
        raise ValueError(f"{name}: total_train must be positive, got {total_train}")
    loss_value = 0.0
    compute: Optional[Callable[[], float]] = None
    if _functional(logits, grad_out) and labels is not None:

        def compute() -> float:
            z = logits.data
            row_mask = mask if mask is not None else np.ones(z.shape[0], dtype=bool)
            rows = np.nonzero(row_mask)[0]
            # Read the logits *before* clearing grad_out: the trainer
            # aliases grad_out to the logits buffer (the gradient replaces
            # the layer output in the paper's buffer-reuse scheme, eq. (19)).
            loss = 0.0
            probs = None
            if rows.size:
                sub = z[rows].copy()
                shifted = sub - sub.max(axis=1, keepdims=True)
                exp = np.exp(shifted)
                denom = exp.sum(axis=1, keepdims=True)
                log_probs = shifted - np.log(denom)
                picked = log_probs[np.arange(rows.size), labels[rows]]
                loss = float(-picked.sum())
                probs = exp / denom
                probs[np.arange(rows.size), labels[rows]] -= 1.0
            grad_out.data.fill(0.0)
            if probs is not None:
                grad_out.data[rows] = probs / total_train
            return loss

        loss_value = compute()
    duration = cost.softmax_xent_time(logits.rows, logits.cols,
                                      itemsize=logits.dtype.itemsize)
    event = engine.submit(stream, name, "loss", duration, deps=deps,
                          compute=compute,
                          flops=5.0 * logits.rows * logits.cols)
    return loss_value, event


def adam_step_op(
    engine: Engine,
    cost: CostModel,
    stream: Stream,
    param: np.ndarray,
    grad: np.ndarray,
    m: np.ndarray,
    v: np.ndarray,
    t: Union[int, Callable[[], int]],
    lr: float,
    beta1: float,
    beta2: float,
    eps: float,
    deps: Sequence[Event] = (),
    name: str = "adam",
) -> Event:
    """One Adam update over host-resident (replicated) weight arrays.

    Weights are replicated per-device in the real system; the simulated
    epoch charges the update once per device (the trainer submits this op
    on every device's stream). Functional math runs once on the shared
    arrays — pass ``param=None`` on replicas to skip recomputation.

    ``t`` may be an int or a zero-arg callable returning the current
    step; trainers that support epoch replay pass a callable so the
    captured closure reads the live step count each epoch instead of
    baking in the capture epoch's value.
    """
    compute: Optional[Callable[[], None]] = None
    if param is not None:

        def compute() -> None:
            step = t() if callable(t) else t
            # explicit out= forms of m *= ..., m += ... etc.: augmented
            # assignment would rebind the enclosing-scope names.
            np.multiply(m, beta1, out=m)
            np.add(m, (1.0 - beta1) * grad, out=m)
            np.multiply(v, beta2, out=v)
            np.add(v, (1.0 - beta2) * np.square(grad), out=v)
            m_hat = m / (1.0 - beta1**step)
            v_hat = v / (1.0 - beta2**step)
            np.subtract(param, lr * m_hat / (np.sqrt(v_hat) + eps), out=param)

        compute()
        size = param.size
        itemsize = param.dtype.itemsize
    else:
        size = grad.size
        itemsize = grad.dtype.itemsize
    duration = cost.adam_time(size, itemsize=itemsize)
    return engine.submit(stream, name, "adam", duration, deps=deps,
                         compute=compute, flops=10.0 * size)


def memset(
    engine: Engine,
    cost: CostModel,
    stream: Stream,
    tensor: DeviceTensor,
    value: float = 0.0,
    deps: Sequence[Event] = (),
    name: str = "memset",
) -> Event:
    """Fill a tensor (models cudaMemsetAsync)."""

    def compute() -> None:
        tensor.fill_(value)

    compute()
    duration = cost.memset_time(tensor.nbytes)
    return engine.submit(stream, name, "memset", duration, deps=deps,
                         compute=compute)


def scale(
    engine: Engine,
    cost: CostModel,
    stream: Stream,
    tensor: DeviceTensor,
    factor: float,
    deps: Sequence[Event] = (),
    name: str = "scale",
) -> Event:
    """In-place ``tensor *= factor``."""
    compute: Optional[Callable[[], None]] = None
    if tensor.data is not None:

        def compute() -> None:
            tensor.data *= factor

        compute()
    duration = cost.elementwise_time(tensor.size, reads=1, writes=1,
                                     itemsize=tensor.dtype.itemsize)
    return engine.submit(stream, name, "elementwise", duration, deps=deps,
                         compute=compute, flops=float(tensor.size))


def add_(
    engine: Engine,
    cost: CostModel,
    stream: Stream,
    dst: DeviceTensor,
    src: DeviceTensor,
    deps: Sequence[Event] = (),
    name: str = "add",
) -> Event:
    """In-place ``dst += src`` (both on the same device)."""
    if dst.shape != src.shape:
        raise ShapeError(f"{name}: {dst.shape} += {src.shape}")
    compute: Optional[Callable[[], None]] = None
    if _functional(dst, src):

        def compute() -> None:
            dst.data += src.data

        compute()
    duration = cost.elementwise_time(dst.size, reads=2, writes=1,
                                     itemsize=dst.dtype.itemsize)
    return engine.submit(stream, name, "elementwise", duration, deps=deps,
                         compute=compute, flops=float(dst.size))


# -- fused chains and batched submission (repro.backends tentpole) -------------


def _compose_parts(parts: Sequence[OpPart]) -> Optional[Callable[[], None]]:
    closures = [p.compute for p in parts if p.compute is not None]
    if not closures:
        return None
    if len(closures) == 1:
        return closures[0]

    def fused_compute() -> None:
        for fn in closures:
            fn()

    return fused_compute


def submit_chain(
    engine: Engine,
    stream: Stream,
    parts: Sequence[OpPart],
    deps: Sequence[Event] = (),
) -> Event:
    """Submit a back-to-back chain of parts on one stream.

    The eager-side fusion helper: with fusion supported, the chain goes
    through :meth:`Engine.submit_fused` — one engine call, one composed
    closure, chained trace events bit-identical to sequential submits.
    Under a non-trivial fault injector (or a single part) it degrades to
    op-at-a-time submits, so faults keep per-op granularity.

    Eagerly executes the parts' closures in chain order either way.
    """
    for part in parts:
        if part.compute is not None:
            part.compute()
    if len(parts) == 1 or not engine.supports_fusion:
        event: Optional[Event] = None
        for i, part in enumerate(parts):
            event = engine.submit(
                stream, part.name, part.category, part.duration,
                deps=deps if i == 0 else (),
                stage=part.stage, nbytes=part.nbytes,
                compute=part.compute, flops=part.flops,
            )
        return event
    return engine.submit_fused(
        stream,
        [(p.name, p.category, p.duration, p.stage, p.nbytes, p.flops)
         for p in parts],
        deps=deps,
        compute=_compose_parts(parts),
    )


def gemm_many(
    engine: Engine,
    items: Sequence[tuple],
    transpose_a: bool = False,
    transpose_b: bool = False,
    accumulate: bool = False,
    name: str = "gemm",
) -> List[Event]:
    """A per-rank GeMM loop as one engine call.

    ``items`` is ``[(stream, cost, a, b, out, deps), ...]`` sharing the
    flag set. Functionally the whole group runs through
    ``backend.gemm_batch`` — one stacked ``np.matmul`` on the batched
    BLAS backend — and is submitted with one
    :meth:`Engine.submit_many`. Timing, events and trace are
    bit-identical to calling :func:`gemm` per item in order.
    """
    if not items:
        return []
    backend = engine.backend
    # Specs are built inline (not via build_gemm) so the batched fast
    # path pays no per-item OpPart/closure allocation — one of the two
    # Python dispatch costs this helper exists to remove.
    specs = []
    functional = True
    for stream, cost, a, b, out, deps in items:
        m, k = _dims(a, transpose_a)
        k2, n = _dims(b, transpose_b)
        if k != k2:
            raise ShapeError(
                f"{name}: inner dims differ: op(a)={m}x{k}, op(b)={k2}x{n}"
            )
        if (out.rows, out.cols) != (m, n):
            raise ShapeError(
                f"{name}: out is {out.rows}x{out.cols}, expected {m}x{n}"
            )
        if a.data is None or b.data is None or out.data is None:
            functional = False
        duration = cost.gemm_time(m, n, k, itemsize=out.dtype.itemsize,
                                  bw_fraction=1.0)
        specs.append((stream, name, "gemm", duration, tuple(deps), None, 0,
                      None, None, 2.0 * m * n * k))
    if functional:
        triples = [(a, b, out) for _, _, a, b, out, _ in items]

        def compute() -> None:
            backend.gemm_batch(
                [(a.data, b.data, out.data) for a, b, out in triples],
                transpose_a=transpose_a,
                transpose_b=transpose_b,
                accumulate=accumulate,
            )

        compute._group = True
        compute()
        # the group closure rides on the first op; replay runs it once at
        # that op's slot (program order of the batch is preserved).
        specs[0] = specs[0][:7] + (compute, None, specs[0][9])
    return engine.submit_many(specs)


def build_spmm_group(
    engine: Engine,
    items: Sequence[tuple],
    accumulate: bool = True,
    stage: Optional[int] = None,
    name: str = "spmm",
    bw_fraction: float = 1.0,
    overlap_comm_time: float = 0.0,
) -> tuple:
    """Validate one SpMM group; return its ``(specs, compute)`` pair.

    ``items`` is ``[(stream, cost, tile, dense, out, deps), ...]``.
    Shared by :func:`spmm_many` (which executes and submits immediately)
    and the stage-plan cache in :mod:`repro.core.spmm_mg` (which
    snapshots the specs once and replays them every epoch). The returned
    group closure is NOT yet executed and not attached to any spec;
    ``None`` when no item is functional.
    """
    backend = engine.backend
    # inline spec construction: no per-item OpPart/closure allocation.
    specs = []
    group = []
    for stream, cost, tile, dense, out, deps in items:
        rows, k = tile.shape
        d = dense.cols
        nnz = tile.nnz
        if dense.rows != k:
            raise ShapeError(
                f"{name}: tile is {rows}x{k} but dense operand has "
                f"{dense.rows} rows"
            )
        if (out.rows, out.cols) != (rows, d):
            raise ShapeError(
                f"{name}: out is {out.rows}x{out.cols}, expected {rows}x{d}"
            )
        if isinstance(tile, CSRMatrix) and dense.data is not None \
                and out.data is not None:
            group.append((tile, dense, out))
        duration = _spmm_duration(cost, rows, nnz, d, k, out.dtype.itemsize,
                                  bw_fraction, overlap_comm_time)
        specs.append((stream, name, "spmm", duration, tuple(deps), stage, 0,
                      None, None, 2.0 * nnz * d))
    if not group:
        return specs, None

    def compute() -> None:
        # deref .data at call time, like the single-op closures, so
        # replay sees in-place buffer mutations.
        for tile, dense, out in group:
            backend.spmm(tile, dense.data, out.data, accumulate=accumulate)

    compute._group = True
    return specs, compute


def specialize_spmm_group(
    backend,
    items: Sequence[tuple],
    accumulate: bool = True,
    shared_dense: Optional[DeviceTensor] = None,
) -> Optional[Callable[[], None]]:
    """Prebind a stage's SpMM group straight to the compiled kernel.

    Returns a closure equivalent to the generic group closure of
    :func:`build_spmm_group` — same kernels, same float sequences — with
    every per-call lookup (backend dispatch, fast-arg fetch, dtype and
    contiguity checks, flat views) resolved once. Meant for the
    epoch-invariant stage plans of :mod:`repro.core.spmm_mg`, whose
    operand buffers are allocation-stable across epochs. Returns ``None``
    when any item cannot be prebound (a backend overriding ``spmm``,
    symbolic operands, no compiled kernel, dtype mismatch) — callers
    keep the generic closure.

    ``shared_dense`` marks every item's dense operand as holding the same
    values as that tensor (the broadcast-stage invariant: each rank reads
    its copy of the root's tile). Strided operands then read from one
    refreshed contiguous staging buffer instead of each paying a flatten
    copy per call — copies are bit-exact, so the kernel sees the same
    floats either way.
    """
    from repro.backends.base import KernelBackend

    if type(backend).spmm is not KernelBackend.spmm:
        return None  # custom kernel: must stay on the dispatch path
    recs = []
    staging = None
    for _stream, _cost, tile, dense, out, _deps in items:
        if not isinstance(tile, CSRMatrix):
            return None
        dense_arr = dense.data
        out_arr = out.data
        if dense_arr is None or out_arr is None:
            return None
        fast = tile._fast_spmm
        if fast is None:
            fast = tile._spmm_fast_args()
        m, k, indptr, indices, data, dtype, matvecs = fast
        if dtype is None or dense_arr.dtype != dtype or out_arr.dtype != dtype:
            return None
        n_vecs = dense_arr.shape[1]
        # a C-contiguous operand's flat view is stable; a strided one
        # must be re-flattened (copied) per call, as spmm_into does —
        # unless it mirrors the shared broadcast tile, in which case all
        # such items read the one staging copy.
        if dense_arr.flags.c_contiguous:
            dense_flat = dense_arr.ravel()
            dense_dyn = None
        elif (shared_dense is not None
              and dense.shape == shared_dense.shape
              and shared_dense.data is not None):
            if staging is None:
                staging = np.empty(shared_dense.shape, dtype=dtype)
            dense_flat = staging.ravel()
            dense_dyn = None
        else:
            dense_flat = None
            dense_dyn = dense_arr
        if out_arr.flags.c_contiguous:
            scratch = None
            target = out_arr.ravel()
        else:
            # strided out: accumulate into a reused zeroed scratch and
            # add — the same float sequence as spmm_into's fallback.
            scratch = np.zeros((m, n_vecs), dtype=dtype)
            target = scratch.ravel()
        recs.append((tile.nnz, matvecs, m, k, n_vecs, indptr, indices, data,
                     dense_dyn, dense_flat, out_arr, scratch, target))
    shared_src = shared_dense.data if staging is not None else None

    def compute() -> None:
        if staging is not None:
            np.copyto(staging, shared_src)
        for (nnz, matvecs, m, k, n_vecs, indptr, indices, data,
             dense_dyn, dense_flat, out_arr, scratch, target) in recs:
            if not accumulate:
                out_arr.fill(0.0)
            if nnz == 0:
                continue
            if scratch is not None:
                scratch.fill(0.0)
            flat = dense_flat if dense_flat is not None else dense_dyn.ravel()
            matvecs(m, k, n_vecs, indptr, indices, data, flat, target)
            if scratch is not None:
                out_arr += scratch

    compute._group = True
    return compute


def spmm_many(
    engine: Engine,
    items: Sequence[tuple],
    accumulate: bool = True,
    stage: Optional[int] = None,
    name: str = "spmm",
    bw_fraction: float = 1.0,
    overlap_comm_time: float = 0.0,
) -> List[Event]:
    """A per-rank SpMM group (one multi-stage stage) as one engine call.

    ``items`` is ``[(stream, cost, tile, dense, out, deps), ...]``; the
    group shares ``accumulate``/``stage``/derating. One group closure
    runs every rank's CSR SpMM through the backend; one
    :meth:`Engine.submit_many` schedules them. Bit-identical to calling
    :func:`spmm` per item in order.
    """
    if not items:
        return []
    specs, compute = build_spmm_group(
        engine, items, accumulate=accumulate, stage=stage, name=name,
        bw_fraction=bw_fraction, overlap_comm_time=overlap_comm_time,
    )
    if compute is not None:
        compute()
        # the group closure rides on the first op; replay runs it once at
        # that op's slot (program order of the batch is preserved).
        specs[0] = specs[0][:7] + (compute, None, specs[0][9])
    return engine.submit_many(specs)


def relu_many(
    engine: Engine,
    items: Sequence[tuple],
    name: str = "relu",
) -> List[Event]:
    """A per-rank in-place ReLU loop as one engine call.

    ``items`` is ``[(stream, cost, tensor, deps), ...]``. Bit-identical
    to calling :func:`relu_forward` per item in order.
    """
    if not items:
        return []
    backend = engine.backend
    # inline spec construction: no per-item OpPart/closure allocation.
    specs = []
    group = []
    for stream, cost, tensor, deps in items:
        if tensor.data is not None:
            group.append(tensor)
        duration = cost.elementwise_time(tensor.size, reads=1, writes=1,
                                         itemsize=tensor.dtype.itemsize)
        specs.append((stream, name, "activation", duration, tuple(deps),
                      None, 0, None, None, float(tensor.size)))
    if group:

        def compute() -> None:
            for tensor in group:
                backend.relu(tensor.data)

        compute._group = True
        compute()
        specs[0] = specs[0][:7] + (compute, None, specs[0][9])
    return engine.submit_many(specs)
