"""Profiling: op breakdowns, stage timelines, memory sweeps."""

from repro.profiling.breakdown import runtime_breakdown, breakdown_table
from repro.profiling.timeline import (
    StageSpan,
    extract_stage_timeline,
    render_timeline,
    spmm_span,
)
from repro.profiling.memory import max_layers_that_fit, memory_for_layers
from repro.profiling.trace_export import (
    export_chrome_events,
    export_chrome_trace,
    merge_chrome_traces,
    trace_to_chrome_events,
)
from repro.profiling.utilization import (
    DeviceUtilization,
    load_balance,
    publish_utilization,
    utilization_by_device,
    utilization_report,
)

__all__ = [
    "runtime_breakdown",
    "breakdown_table",
    "StageSpan",
    "extract_stage_timeline",
    "render_timeline",
    "spmm_span",
    "max_layers_that_fit",
    "export_chrome_events",
    "export_chrome_trace",
    "merge_chrome_traces",
    "trace_to_chrome_events",
    "DeviceUtilization",
    "load_balance",
    "publish_utilization",
    "utilization_by_device",
    "utilization_report",
    "memory_for_layers",
]
