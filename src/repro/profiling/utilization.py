"""Per-device utilisation analysis of an execution trace.

Answers the questions a systems reader asks of Figures 6/8 beyond the
raw timeline: how busy was each GPU's compute stream, how much
communication was exposed (not hidden behind compute), and how balanced
the devices were over the epoch.

Interval arithmetic is the vectorised :mod:`repro.utils.intervals`
(shared with per-epoch telemetry sampling); the helpers here keep their
historical list-of-tuples signatures on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.device.engine import TraceEvent
from repro.utils.intervals import merge_spans, subtract_measure, union_measure


def _merge_intervals(spans: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Union of possibly-overlapping [start, end) intervals."""
    if not spans:
        return []
    arr = np.asarray(spans, dtype=np.float64)
    ms, me = merge_spans(arr[:, 0], arr[:, 1])
    return list(zip(ms.tolist(), me.tolist()))


def _as_columns(spans: List[Tuple[float, float]]) -> Tuple[np.ndarray, np.ndarray]:
    if not spans:
        empty = np.empty(0, dtype=np.float64)
        return empty, empty
    arr = np.asarray(spans, dtype=np.float64)
    return arr[:, 0], arr[:, 1]


def _total(spans: List[Tuple[float, float]]) -> float:
    return union_measure(*_as_columns(spans))


def _subtract(
    base: List[Tuple[float, float]], holes: List[Tuple[float, float]]
) -> float:
    """Total measure of ``base`` minus its overlap with ``holes``."""
    return subtract_measure(*_as_columns(base), *_as_columns(holes))


@dataclass(frozen=True)
class DeviceUtilization:
    """Utilisation of one device over a window."""

    device: str
    window: float
    compute_busy: float
    comm_busy: float
    exposed_comm: float

    @property
    def compute_fraction(self) -> float:
        return self.compute_busy / self.window if self.window else 0.0

    @property
    def exposed_comm_fraction(self) -> float:
        """Share of the window spent on communication NOT hidden behind
        compute — the quantity overlap (§4.3) exists to minimise."""
        return self.exposed_comm / self.window if self.window else 0.0


def utilization_by_device(
    trace: Sequence[TraceEvent],
) -> Dict[str, DeviceUtilization]:
    """Compute per-device utilisation over the trace's full window."""
    if not trace:
        return {}
    t0 = min(ev.start for ev in trace)
    t1 = max(ev.end for ev in trace)
    window = max(t1 - t0, 1e-300)
    comp: Dict[str, List[Tuple[float, float]]] = {}
    comm: Dict[str, List[Tuple[float, float]]] = {}
    for ev in trace:
        bucket = comm if ev.category == "comm" else comp
        bucket.setdefault(ev.device, []).append((ev.start, ev.end))
    out: Dict[str, DeviceUtilization] = {}
    for device in sorted(set(comp) | set(comm)):
        comp_spans = comp.get(device, [])
        comm_spans = comm.get(device, [])
        out[device] = DeviceUtilization(
            device=device,
            window=window,
            compute_busy=_total(comp_spans),
            comm_busy=_total(comm_spans),
            exposed_comm=_subtract(comm_spans, comp_spans),
        )
    return out


def load_balance(trace: Sequence[TraceEvent]) -> float:
    """max/mean compute-busy time across devices (1.0 = perfect balance)."""
    util = utilization_by_device(trace)
    busy = [u.compute_busy for u in util.values()]
    if not busy or sum(busy) == 0:
        return 1.0
    return max(busy) / (sum(busy) / len(busy))


def utilization_report(trace: Sequence[TraceEvent]) -> str:
    """Human-readable per-device utilisation table."""
    util = utilization_by_device(trace)
    if not util:
        return "(empty trace)"
    lines = [f"{'device':>8s} {'compute':>9s} {'comm':>9s} {'exposed comm':>13s}"]
    for device, u in util.items():
        lines.append(
            f"{device:>8s} {u.compute_fraction:>8.1%} "
            f"{u.comm_busy / u.window:>8.1%} {u.exposed_comm_fraction:>12.1%}"
        )
    lines.append(f"load balance (max/mean compute): {load_balance(trace):.2f}x")
    return "\n".join(lines)


def publish_utilization(trace: Sequence[TraceEvent], registry) -> None:
    """Publish per-device utilisation gauges into a shared registry.

    ``registry`` is a :class:`repro.telemetry.MetricsRegistry`; one gauge
    per device for compute-busy fraction, comm-busy seconds, and exposed
    comm, plus the overall load-balance figure.
    """
    util = utilization_by_device(trace)
    for device, u in util.items():
        registry.gauge(
            "repro_util_compute_fraction",
            "Compute-stream busy share of the trace window",
            device=device,
        ).set(u.compute_fraction)
        registry.gauge(
            "repro_util_comm_busy_seconds",
            "Communication busy time over the trace window",
            device=device,
        ).set(u.comm_busy)
        registry.gauge(
            "repro_util_exposed_comm_seconds",
            "Communication not hidden behind compute",
            device=device,
        ).set(u.exposed_comm)
    if util:
        registry.gauge(
            "repro_util_load_balance",
            "max/mean compute busy across devices (1.0 = balanced)",
        ).set(load_balance(trace))
