"""Stage timelines for the multi-stage SpMM (Figures 6 and 8).

The paper plots, per GPU, the alternating communication (yellow) and
computation (blue) spans of each SpMM stage, once with the original
ordering and once permuted (Fig. 6), and with/without overlap (Fig. 8).
:func:`extract_stage_timeline` pulls exactly those spans out of an
engine trace, and :func:`render_timeline` draws them as ASCII art for
the bench harness output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.device.engine import TraceEvent


@dataclass(frozen=True)
class StageSpan:
    """One comm or compute span of one stage on one device."""

    device: str
    kind: str  # "comm" | "comp"
    stage: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def extract_stage_timeline(
    trace: Sequence[TraceEvent], label_prefix: str
) -> List[StageSpan]:
    """Stage spans of the distributed SpMM whose labels start with
    ``label_prefix`` (e.g. ``"fwd0/spmm"``)."""
    spans: List[StageSpan] = []
    for ev in trace:
        if ev.stage is None or not ev.name.startswith(label_prefix):
            continue
        kind = "comm" if ev.category == "comm" else "comp"
        spans.append(
            StageSpan(
                device=ev.device,
                kind=kind,
                stage=ev.stage,
                start=ev.start,
                end=ev.end,
            )
        )
    return sorted(spans, key=lambda s: (s.device, s.start))


def spmm_span(spans: Sequence[StageSpan]) -> float:
    """Wall-clock duration of the whole SpMM (first start to last end)."""
    if not spans:
        return 0.0
    return max(s.end for s in spans) - min(s.start for s in spans)


def render_timeline(
    spans: Sequence[StageSpan], width: int = 72
) -> str:
    """ASCII timeline: one row per device and kind.

    Comm spans print the stage number over ``~``; compute spans over
    ``#``. Matches the layout of Figures 6/8 closely enough to eyeball
    load balance and overlap.
    """
    if not spans:
        return "(empty timeline)"
    t0 = min(s.start for s in spans)
    t1 = max(s.end for s in spans)
    span = max(t1 - t0, 1e-12)
    scale = (width - 1) / span

    rows: Dict[Tuple[str, str], List[StageSpan]] = {}
    for s in spans:
        rows.setdefault((s.device, s.kind), []).append(s)

    lines: List[str] = []
    for (device, kind), row_spans in sorted(rows.items()):
        line = [" "] * width
        for s in row_spans:
            a = int((s.start - t0) * scale)
            b = max(int((s.end - t0) * scale), a + 1)
            fill = "~" if kind == "comm" else "#"
            for x in range(a, min(b, width)):
                line[x] = fill
            tag = str(s.stage)
            if a + len(tag) <= width:
                for k, ch in enumerate(tag):
                    line[a + k] = ch
        lines.append(f"{device:>6s} {kind:>4s} |{''.join(line)}|")
    return "\n".join(lines)
