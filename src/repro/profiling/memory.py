"""Memory-vs-layers accounting (the paper's Figure 12).

Figure 12 sweeps the number of layers of a hidden-512 model on Reddit
and reports per-GPU memory for DGL vs MG-GCN (1 GPU) and CAGNET vs
MG-GCN (8 GPUs). The paper's observation — memory grows linearly in the
layer count, with slope 1 buffer/layer for MG-GCN vs several for the
baselines — is reproduced here from the same byte accounting the
trainers use.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.config import FLOAT_SIZE, GiB
from repro.errors import ConfigurationError
from repro.datasets.loader import SymbolicDataset
from repro.nn.buffers import BufferPlan


def memory_for_layers(
    dataset: SymbolicDataset,
    hidden_dim: int,
    num_layers: int,
    num_gpus: int,
    scheme: str = "shared",
    overlap: bool = True,
    eager_buffers_per_layer: int = 3,
    adjacency_bytes_per_edge: int = 16,
) -> int:
    """Per-GPU bytes of one configuration (buffers + graph + weights).

    ``adjacency_bytes_per_edge`` covers both sparse operands (CSR A_hat
    and A_hat^T at ~8 B/edge each for MG-GCN; pass more for COO-based
    frameworks).
    """
    if num_layers < 1 or num_gpus < 1:
        raise ConfigurationError("need >= 1 layer and >= 1 GPU")
    rows = -(-dataset.n // num_gpus)  # ceil
    dims = (
        [dataset.d0] + [hidden_dim] * (num_layers - 1) + [dataset.num_classes]
    )
    plan = BufferPlan(
        layer_dims=tuple(dims),
        rows=rows,
        bc_rows=rows if num_gpus > 1 else 0,
        scheme=scheme,
        overlap=overlap,
        eager_buffers_per_layer=eager_buffers_per_layer,
    )
    buffers = plan.total_bytes
    adjacency = dataset.m * adjacency_bytes_per_edge // num_gpus
    features = rows * dataset.d0 * FLOAT_SIZE
    # weights + gradient + 2 Adam moments, replicated
    params = sum(dims[l] * dims[l + 1] for l in range(len(dims) - 1))
    weights = 4 * params * FLOAT_SIZE
    return buffers + adjacency + features + weights


def max_layers_that_fit(
    dataset: SymbolicDataset,
    hidden_dim: int,
    num_gpus: int,
    memory_budget: float = 30 * GiB,
    scheme: str = "shared",
    overlap: bool = True,
    eager_buffers_per_layer: int = 3,
    adjacency_bytes_per_edge: int = 16,
    max_layers: int = 2048,
) -> int:
    """Largest layer count whose per-GPU footprint fits the budget."""
    lo, hi = 0, max_layers
    while lo < hi:
        mid = (lo + hi + 1) // 2
        used = memory_for_layers(
            dataset,
            hidden_dim,
            mid,
            num_gpus,
            scheme=scheme,
            overlap=overlap,
            eager_buffers_per_layer=eager_buffers_per_layer,
            adjacency_bytes_per_edge=adjacency_bytes_per_edge,
        )
        if used <= memory_budget:
            lo = mid
        else:
            hi = mid - 1
    return lo


def memory_curve(
    dataset: SymbolicDataset,
    hidden_dim: int,
    num_gpus: int,
    layer_counts: List[int],
    **kwargs,
) -> List[Tuple[int, int]]:
    """(layers, per-GPU bytes) points for plotting a Fig. 12 curve."""
    return [
        (L, memory_for_layers(dataset, hidden_dim, L, num_gpus, **kwargs))
        for L in layer_counts
    ]
