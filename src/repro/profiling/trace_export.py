"""Chrome trace-event export of simulated execution traces.

Writes the engine's :class:`TraceEvent` list in the Trace Event Format
consumed by ``chrome://tracing`` / Perfetto, with one process per
virtual GPU and one thread per stream — so the paper's Figures 6/8
timelines can be inspected interactively, not just as ASCII art.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Sequence, Tuple, Union

from repro.device.engine import TraceEvent

PathLike = Union[str, os.PathLike]

#: microseconds per simulated second in the exported timeline.
_TIME_SCALE = 1e6


def trace_to_chrome_events(trace: Sequence[TraceEvent]) -> List[dict]:
    """Convert engine trace events into trace-event dicts."""
    pids: Dict[str, int] = {}
    tids: Dict[Tuple[str, str], int] = {}
    events: List[dict] = []
    for ev in trace:
        pid = pids.setdefault(ev.device, len(pids))
        tid = tids.setdefault((ev.device, ev.stream), len(tids))
        args = {
            "stage": ev.stage,
            "nbytes": ev.nbytes,
        }
        if ev.correlation is not None:
            # opaque request/batch id: lets Perfetto queries group all
            # spans of one serving request across devices and streams.
            args["correlation"] = ev.correlation
        events.append(
            {
                "name": ev.name,
                "cat": ev.category,
                "ph": "X",  # complete event
                "ts": ev.start * _TIME_SCALE,
                "dur": ev.duration * _TIME_SCALE,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    # metadata: readable process/thread names
    for device, pid in pids.items():
        events.append(
            {"name": "process_name", "ph": "M", "pid": pid,
             "args": {"name": device}}
        )
    for (device, stream), tid in tids.items():
        events.append(
            {"name": "thread_name", "ph": "M", "pid": pids[device], "tid": tid,
             "args": {"name": stream}}
        )
    return events


def export_chrome_trace(trace: Sequence[TraceEvent], path: PathLike) -> None:
    """Write ``trace`` as a Chrome/Perfetto-loadable JSON file."""
    payload = {
        "traceEvents": trace_to_chrome_events(trace),
        "displayTimeUnit": "ms",
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
