"""Chrome trace-event export of simulated execution traces.

Writes the engine's :class:`TraceEvent` list in the Trace Event Format
consumed by ``chrome://tracing`` / Perfetto, with one process per
virtual GPU and one thread per stream — so the paper's Figures 6/8
timelines can be inspected interactively, not just as ASCII art.

Traces from *different* engines (a training run and a serving run, or
two elastic-trainer generations) reuse the same device names, so their
pid/tid ids collide when naively concatenated and Perfetto folds them
into one bogus process. :func:`merge_chrome_traces` allocates each
engine's events a disjoint pid/tid range and prefixes process names
with the run id, producing one timeline with every run distinct.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.device.engine import TraceEvent

PathLike = Union[str, os.PathLike]

#: microseconds per simulated second in the exported timeline.
_TIME_SCALE = 1e6


def trace_to_chrome_events(
    trace: Sequence[TraceEvent],
    run_id: Optional[str] = None,
    pid_base: int = 0,
    tid_base: int = 0,
) -> List[dict]:
    """Convert engine trace events into trace-event dicts.

    ``run_id`` namespaces the output: process names become
    ``"{run_id}/{device}"`` and ids start at ``pid_base``/``tid_base``,
    so events from several engines can share one file without their
    (device, stream) ids colliding.
    """
    pids: Dict[str, int] = {}
    tids: Dict[Tuple[str, str], int] = {}
    events: List[dict] = []
    for ev in trace:
        pid = pids.setdefault(ev.device, pid_base + len(pids))
        tid = tids.setdefault((ev.device, ev.stream), tid_base + len(tids))
        args = {
            "stage": ev.stage,
            "nbytes": ev.nbytes,
        }
        if ev.correlation is not None:
            # opaque request/batch id: lets Perfetto queries group all
            # spans of one serving request across devices and streams.
            args["correlation"] = ev.correlation
        if run_id is not None:
            args["run"] = run_id
        events.append(
            {
                "name": ev.name,
                "cat": ev.category,
                "ph": "X",  # complete event
                "ts": ev.start * _TIME_SCALE,
                "dur": ev.duration * _TIME_SCALE,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    # metadata: readable process/thread names
    for device, pid in pids.items():
        label = device if run_id is None else f"{run_id}/{device}"
        events.append(
            {"name": "process_name", "ph": "M", "pid": pid,
             "args": {"name": label}}
        )
    for (device, stream), tid in tids.items():
        events.append(
            {"name": "thread_name", "ph": "M", "pid": pids[device], "tid": tid,
             "args": {"name": stream}}
        )
    return events


def merge_chrome_traces(
    sections: Mapping[str, Sequence[TraceEvent]],
    extra_events: Sequence[dict] = (),
) -> List[dict]:
    """Merge traces from several engines into one event list.

    ``sections`` maps a run id (e.g. ``"train"``, ``"serve"``) to that
    engine's trace. Each section gets a disjoint pid/tid block and
    run-id-prefixed process names. ``extra_events`` (already-formed
    trace-event dicts, e.g. span events from the telemetry tracer) are
    appended verbatim — callers must give them pids outside the blocks
    allocated here, which start at 0 and grow by section size.
    """
    events: List[dict] = []
    pid_base = 0
    tid_base = 0
    for run_id, trace in sections.items():
        section = trace_to_chrome_events(
            trace, run_id=run_id, pid_base=pid_base, tid_base=tid_base
        )
        events.extend(section)
        devices = {ev.device for ev in trace}
        streams = {(ev.device, ev.stream) for ev in trace}
        pid_base += len(devices)
        tid_base += len(streams)
    events.extend(extra_events)
    return events


def export_chrome_trace(
    trace: Sequence[TraceEvent], path: PathLike, run_id: Optional[str] = None
) -> None:
    """Write ``trace`` as a Chrome/Perfetto-loadable JSON file."""
    payload = {
        "traceEvents": trace_to_chrome_events(trace, run_id=run_id),
        "displayTimeUnit": "ms",
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)


def export_chrome_events(events: Sequence[dict], path: PathLike) -> None:
    """Write pre-built trace-event dicts (e.g. a merged timeline)."""
    payload = {"traceEvents": list(events), "displayTimeUnit": "ms"}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
