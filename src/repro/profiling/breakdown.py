"""Per-op runtime breakdown (the paper's Figure 5, nvprof-style).

The paper profiles one training epoch and reports the share of time in
Activation / Adam / GeMM / Loss-Layer / SpMM. We aggregate the engine
trace the same way. Communication is folded into the op that waits for
it in the paper's accounting (their SpMM timing includes the stage
broadcasts); :func:`runtime_breakdown` follows that convention by
attributing ``comm`` events whose name marks them as SpMM-stage
broadcasts to ``spmm``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.stats import BREAKDOWN_CATEGORIES, EpochStats
from repro.device.engine import TraceEvent
from repro.utils.format import ascii_table


def runtime_breakdown(
    trace: Sequence[TraceEvent], fold_comm_into_spmm: bool = True
) -> Dict[str, float]:
    """Total op seconds per Figure-5 category from a trace."""
    totals: Dict[str, float] = {c: 0.0 for c in BREAKDOWN_CATEGORIES}
    for ev in trace:
        category = ev.category
        if category == "comm":
            if fold_comm_into_spmm and "spmm" in ev.name:
                category = "spmm"
            else:
                continue
        if category == "elementwise":
            category = "activation"
        if category == "memset":
            continue
        if category in totals:
            totals[category] += ev.duration
    return totals


def breakdown_percentages(
    trace: Sequence[TraceEvent], fold_comm_into_spmm: bool = True
) -> Dict[str, float]:
    """Figure-5 percentages (summing to 100 over the five categories)."""
    totals = runtime_breakdown(trace, fold_comm_into_spmm)
    denom = sum(totals.values())
    if denom == 0.0:
        return {c: 0.0 for c in totals}
    return {c: 100.0 * t / denom for c, t in totals.items()}


def breakdown_table(
    rows: Iterable[Tuple[str, Sequence[TraceEvent]]],
) -> str:
    """An ASCII table of breakdown percentages, one row per labelled run."""
    headers = ["run"] + [c.capitalize() for c in BREAKDOWN_CATEGORIES]
    body: List[List[str]] = []
    for label, trace in rows:
        pct = breakdown_percentages(trace)
        body.append(
            [label] + [f"{pct[c]:.1f}%" for c in BREAKDOWN_CATEGORIES]
        )
    return ascii_table(headers, body)
