"""MG-GCN reproduction: a scalable multi-GPU GCN training framework.

This library reproduces *MG-GCN: A Scalable multi-GPU GCN Training
Framework* (Balın, Sancak, Çatalyürek — ICPP 2022) on a simulated
multi-GPU substrate: virtual GPUs with byte-accurate memory pools,
streams/events, NVLink topology models of DGX-1 and DGX-A100,
NCCL-style collectives and roofline kernel cost models, plus fully
functional NumPy execution of the GCN math so training really trains.

Quickstart::

    from repro import load_dataset, GCNModelSpec, MGGCNTrainer, dgx_a100

    dataset = load_dataset("reddit", scale=0.01, learnable=True)
    model = GCNModelSpec.build(dataset.d0, 512, dataset.num_classes, 2)
    trainer = MGGCNTrainer(dataset, model, machine=dgx_a100(), num_gpus=8)
    stats = trainer.train_epoch()
    print(stats.epoch_time, trainer.evaluate("test"))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.config import GiB, MiB, KiB
from repro.errors import (
    ReproError,
    DeviceOutOfMemoryError,
    PartitionError,
    CommunicationError,
    ConfigurationError,
)
from repro.hardware import (
    dgx1,
    dgx_a100,
    single_gpu,
    uniform_machine,
    multi_node_cluster,
    get_machine,
)
from repro.device import SimContext, Mode, VirtualGPU, DeviceTensor
from repro.comm import Communicator
from repro.kernels import CostModel, KernelCosts
from repro.sparse import COOMatrix, CSRMatrix
from repro.datasets import (
    load_dataset,
    Dataset,
    SymbolicDataset,
    DatasetSpec,
    get_spec,
    bter_graph,
    BTERConfig,
    planted_partition_dataset,
)
from repro.nn import (
    GCNModelSpec,
    ReferenceGCN,
    AdamOptimizer,
    GATLayer,
    save_checkpoint,
    load_checkpoint,
)
from repro.core import MGGCNTrainer, TrainerConfig, EpochStats
from repro.baselines import (
    DGLLikeTrainer,
    CAGNETTrainer,
    CAGNET15DTrainer,
    CAGNET2DTrainer,
)
from repro.training import TrainingLoop, EarlyStopping, TrainingHistory
from repro.sampling import MiniBatchGCNTrainer, NeighborSampler, neighborhood_expansion

__version__ = "1.0.0"

__all__ = [
    "GiB",
    "MiB",
    "KiB",
    "ReproError",
    "DeviceOutOfMemoryError",
    "PartitionError",
    "CommunicationError",
    "ConfigurationError",
    "dgx1",
    "dgx_a100",
    "single_gpu",
    "uniform_machine",
    "multi_node_cluster",
    "get_machine",
    "SimContext",
    "Mode",
    "VirtualGPU",
    "DeviceTensor",
    "Communicator",
    "CostModel",
    "KernelCosts",
    "COOMatrix",
    "CSRMatrix",
    "load_dataset",
    "Dataset",
    "SymbolicDataset",
    "DatasetSpec",
    "get_spec",
    "bter_graph",
    "BTERConfig",
    "planted_partition_dataset",
    "GCNModelSpec",
    "ReferenceGCN",
    "AdamOptimizer",
    "GATLayer",
    "save_checkpoint",
    "load_checkpoint",
    "MGGCNTrainer",
    "TrainerConfig",
    "EpochStats",
    "DGLLikeTrainer",
    "CAGNETTrainer",
    "CAGNET15DTrainer",
    "CAGNET2DTrainer",
    "TrainingLoop",
    "EarlyStopping",
    "TrainingHistory",
    "MiniBatchGCNTrainer",
    "NeighborSampler",
    "neighborhood_expansion",
    "__version__",
]
