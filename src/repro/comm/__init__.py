"""NCCL-style collectives over the simulated interconnect."""

from repro.comm.collectives import Communicator

__all__ = ["Communicator"]
