"""NCCL-style collectives: broadcast, reduce, allreduce, allgather.

Functional semantics move real data between device tensors; timing uses
the machine's :class:`~repro.hardware.topology.Topology`:

* a collective is a rendezvous: it starts when the *last* participating
  stream (plus any per-rank dependencies) is ready, and all participants
  finish together — matching NCCL's synchronous kernels;
* a pipelined broadcast of ``b`` bytes proceeds at the set's collective
  bandwidth: ``t = latency + b / bw``;
* ring allreduce/reduce move ``2 (P-1)/P`` / ``(P-1)/P`` times the buffer.

Every per-rank op is recorded on that rank's chosen stream so the
timeline figures show communication per GPU (yellow bars in Figs. 6/8).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.device.engine import Engine, SimContext, TraceEvent
from repro.device.stream import Event, Stream
from repro.device.tensor import DeviceTensor
from repro.errors import CommunicationError
from repro.hardware.topology import Topology


class Communicator:
    """A communicator over a fixed set of ranks of one :class:`SimContext`."""

    def __init__(
        self,
        ctx: SimContext,
        ranks: Optional[Sequence[int]] = None,
        bw_derate: float = 1.0,
        collective_overhead: float = 12e-6,
    ):
        self.ctx = ctx
        self.engine: Engine = ctx.engine
        self.topology: Topology = ctx.topology
        self.ranks: List[int] = list(ranks) if ranks is not None else ctx.ranks
        if len(set(self.ranks)) != len(self.ranks) or not self.ranks:
            raise CommunicationError(f"invalid rank set {self.ranks!r}")
        for r in self.ranks:
            if not (0 <= r < ctx.num_gpus):
                raise CommunicationError(
                    f"rank {r} outside context with {ctx.num_gpus} GPUs"
                )
        if not (0.0 < bw_derate <= 1.0):
            raise CommunicationError(f"bw_derate must be in (0, 1], got {bw_derate}")
        #: effective-bandwidth multiplier, used to model comm slowdown
        #: while overlapped with compute (§6.3).
        self.bw_derate = bw_derate
        if collective_overhead < 0:
            raise CommunicationError("collective_overhead must be >= 0")
        #: fixed software cost of one collective call (NCCL kernel launch
        #: + rendezvous, ~10-20 us in practice). This floor is what keeps
        #: tiny graphs (Cora) from scaling — each of the P broadcast
        #: stages pays it regardless of message size.
        self.collective_overhead = collective_overhead

    @property
    def size(self) -> int:
        return len(self.ranks)

    # -- shared rendezvous machinery ----------------------------------------

    def _streams(
        self, streams: Optional[Mapping[int, Stream]] = None
    ) -> Dict[int, Stream]:
        if streams is not None:
            return dict(streams)
        return {r: self.ctx.device(r).comm_stream for r in self.ranks}

    def _rendezvous(
        self,
        streams: Mapping[int, Stream],
        duration: float,
        name: str,
        deps_by_rank: Optional[Mapping[int, Sequence[Event]]] = None,
        stage: Optional[int] = None,
        nbytes: int = 0,
    ) -> Dict[int, Event]:
        """Start all ranks together; finish all ranks together."""
        deps_by_rank = deps_by_rank or {}
        start = 0.0
        for rank in self.ranks:
            stream = streams[rank]
            start = max(start, stream.consume_waits())
            for dep in deps_by_rank.get(rank, ()):
                start = max(start, dep.require_time())
        end = start + duration
        events: Dict[int, Event] = {}
        for rank in self.ranks:
            stream = streams[rank]
            stream.ready_time = end
            ev = Event(name=f"{name}@{rank}")
            ev.time = end
            events[rank] = ev
            if self.engine.record_trace:
                self.engine.trace.append(
                    TraceEvent(
                        device=stream.device.name,
                        stream=stream.name,
                        name=name,
                        category="comm",
                        start=start,
                        end=end,
                        stage=stage,
                        nbytes=nbytes,
                    )
                )
        return events

    # -- collectives -----------------------------------------------------------

    def broadcast_duration(self, root: int, nbytes: int) -> float:
        """Predicted duration of a broadcast of ``nbytes`` from ``root``.

        Used by the overlap scheduler to size the bandwidth-sharing
        window of the SpMM that runs concurrently with the broadcast.
        """
        if self.size <= 1:
            return 0.0
        bw = self.topology.broadcast_bandwidth(root, self.ranks) * self.bw_derate
        latency = max(
            self.topology.p2p_latency(root, r) for r in self.ranks if r != root
        )
        return self.collective_overhead + latency + nbytes / bw

    def broadcast(
        self,
        root: int,
        src: DeviceTensor,
        dsts: Mapping[int, DeviceTensor],
        streams: Optional[Mapping[int, Stream]] = None,
        deps_by_rank: Optional[Mapping[int, Sequence[Event]]] = None,
        stage: Optional[int] = None,
        name: str = "broadcast",
    ) -> Dict[int, Event]:
        """Broadcast ``src`` (on ``root``) into each non-root rank's ``dsts``.

        ``dsts`` maps rank -> destination tensor (the root may be omitted
        or map to its own tile; it is not copied to itself).
        """
        if root not in self.ranks:
            raise CommunicationError(f"broadcast root {root} not in {self.ranks}")
        for rank, dst in dsts.items():
            if rank == root:
                continue
            if dst.shape != src.shape:
                raise CommunicationError(
                    f"broadcast: rank {rank} dst shape {dst.shape} != src {src.shape}"
                )
            if src.data is not None and dst.data is not None:
                np.copyto(dst.data, src.data)
        duration = 0.0
        if self.size > 1:
            bw = self.topology.broadcast_bandwidth(root, self.ranks) * self.bw_derate
            latency = max(
                self.topology.p2p_latency(root, r) for r in self.ranks if r != root
            )
            duration = self.collective_overhead + latency + src.nbytes / bw
        return self._rendezvous(
            self._streams(streams), duration, name, deps_by_rank, stage,
            nbytes=src.nbytes,
        )

    def allreduce(
        self,
        tensors: Mapping[int, DeviceTensor],
        op: str = "sum",
        streams: Optional[Mapping[int, Stream]] = None,
        deps_by_rank: Optional[Mapping[int, Sequence[Event]]] = None,
        name: str = "allreduce",
    ) -> Dict[int, Event]:
        """In-place allreduce across ranks (``sum`` or ``mean``)."""
        if op not in ("sum", "mean"):
            raise CommunicationError(f"unsupported allreduce op {op!r}")
        self._check_uniform(tensors)
        arrays = [
            tensors[r].data for r in self.ranks if tensors[r].data is not None
        ]
        if arrays:
            total = arrays[0].copy()
            for a in arrays[1:]:
                total += a
            if op == "mean":
                total /= self.size
            for r in self.ranks:
                if tensors[r].data is not None:
                    np.copyto(tensors[r].data, total)
        nbytes = tensors[self.ranks[0]].nbytes
        duration = 0.0
        if self.size > 1:
            bw = self.topology.allreduce_bandwidth(self.ranks) * self.bw_derate
            volume = 2.0 * (self.size - 1) / self.size * nbytes
            latency = 2.0 * (self.size - 1) * self.topology.p2p_latency(
                self.ranks[0], self.ranks[1]
            )
            duration = self.collective_overhead + latency + volume / bw
        return self._rendezvous(
            self._streams(streams), duration, name, deps_by_rank, nbytes=nbytes
        )

    def reduce(
        self,
        root: int,
        tensors: Mapping[int, DeviceTensor],
        streams: Optional[Mapping[int, Stream]] = None,
        deps_by_rank: Optional[Mapping[int, Sequence[Event]]] = None,
        name: str = "reduce",
    ) -> Dict[int, Event]:
        """Sum all ranks' tensors into ``root``'s tensor (in place)."""
        if root not in self.ranks:
            raise CommunicationError(f"reduce root {root} not in {self.ranks}")
        self._check_uniform(tensors)
        root_tensor = tensors[root]
        if root_tensor.data is not None:
            for r in self.ranks:
                if r == root:
                    continue
                src = tensors[r]
                if src.data is not None:
                    root_tensor.data += src.data
        nbytes = root_tensor.nbytes
        duration = 0.0
        if self.size > 1:
            bw = self.topology.allreduce_bandwidth(self.ranks) * self.bw_derate
            volume = (self.size - 1) / self.size * nbytes
            latency = (self.size - 1) * self.topology.p2p_latency(
                self.ranks[0], self.ranks[1]
            )
            duration = self.collective_overhead + latency + volume / bw
        return self._rendezvous(
            self._streams(streams), duration, name, deps_by_rank, nbytes=nbytes
        )

    def allgather(
        self,
        srcs: Mapping[int, DeviceTensor],
        dsts: Mapping[int, DeviceTensor],
        row_offsets: Optional[Mapping[int, int]] = None,
        streams: Optional[Mapping[int, Stream]] = None,
        deps_by_rank: Optional[Mapping[int, Sequence[Event]]] = None,
        name: str = "allgather",
    ) -> Dict[int, Event]:
        """Gather every rank's ``srcs`` rows into every rank's ``dsts``.

        ``dsts[r]`` must have ``sum_r srcs[r].rows`` rows; ``row_offsets``
        gives each source's starting row in the gathered layout (defaults
        to rank-order concatenation).
        """
        total_rows = sum(srcs[r].rows for r in self.ranks)
        offsets: Dict[int, int] = {}
        if row_offsets is None:
            cursor = 0
            for r in self.ranks:
                offsets[r] = cursor
                cursor += srcs[r].rows
        else:
            offsets = dict(row_offsets)
        for r in self.ranks:
            dst = dsts[r]
            if dst.rows != total_rows:
                raise CommunicationError(
                    f"allgather: rank {r} dst has {dst.rows} rows, need {total_rows}"
                )
            if dst.data is None:
                continue
            for s in self.ranks:
                src = srcs[s]
                if src.data is not None:
                    dst.data[offsets[s] : offsets[s] + src.rows] = src.data
        nbytes = sum(srcs[r].nbytes for r in self.ranks)
        duration = 0.0
        if self.size > 1:
            bw = self.topology.collective_bandwidth(self.ranks) * self.bw_derate
            volume = (self.size - 1) / self.size * nbytes
            latency = (self.size - 1) * self.topology.p2p_latency(
                self.ranks[0], self.ranks[1]
            )
            duration = latency + volume / bw
        return self._rendezvous(
            self._streams(streams), duration, name, deps_by_rank, nbytes=nbytes
        )

    # -- helpers ------------------------------------------------------------------

    def _check_uniform(self, tensors: Mapping[int, DeviceTensor]) -> None:
        missing = [r for r in self.ranks if r not in tensors]
        if missing:
            raise CommunicationError(f"missing tensors for ranks {missing}")
        shapes = {tensors[r].shape for r in self.ranks}
        if len(shapes) != 1:
            raise CommunicationError(f"mismatched collective shapes: {shapes}")
