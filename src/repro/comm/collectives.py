"""NCCL-style collectives: broadcast, reduce, allreduce, allgather.

Functional semantics move real data between device tensors; timing uses
the machine's :class:`~repro.hardware.topology.Topology`:

* a collective is a rendezvous: it starts when the *last* participating
  stream (plus any per-rank dependencies) is ready, and all participants
  finish together — matching NCCL's synchronous kernels;
* a pipelined broadcast of ``b`` bytes proceeds at the set's collective
  bandwidth: ``t = latency + b / bw``;
* ring allreduce/reduce move ``2 (P-1)/P`` / ``(P-1)/P`` times the buffer.

Every per-rank op is recorded on that rank's chosen stream so the
timeline figures show communication per GPU (yellow bars in Figs. 6/8).

Failure awareness (``repro.resilience``): when the context carries a
:class:`~repro.resilience.FaultInjector`, every collective checks its
participants at rendezvous time —

* a permanently failed participant makes the op *hang*; the watchdog
  ``timeout`` is charged on every surviving stream and
  :class:`~repro.errors.DeviceFailedError` is raised (elastic recovery
  picks it up from there);
* a transient collective fault costs one timed-out attempt plus an
  exponential backoff (:class:`~repro.resilience.RetryPolicy`) and is
  retried; the retries appear as ``<op>/retry<k>`` trace events, so
  robustness has a measurable timeline price;
* an active link-degradation window divides the bandwidth term.

Without an injector (or with an empty plan) the timing arithmetic is
bit-identical to the fault-free implementation.

Rendezvous validation: all ranks of a collective must agree on the
operation's geometry. Mismatched or missing per-rank buffers — which on
real NCCL silently corrupt data or deadlock — raise
:class:`~repro.errors.CollectiveMismatchError` listing every rank's
view of the call.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.device.engine import Engine, SimContext, TraceEvent
from repro.device.stream import Event, Stream
from repro.device.tensor import DeviceTensor
from repro.errors import (
    CollectiveMismatchError,
    CollectiveTimeoutError,
    CommunicationError,
    DeviceFailedError,
    PlanError,
)
from repro.hardware.topology import Topology
from repro.resilience.policy import RetryPolicy


class Communicator:
    """A communicator over a fixed set of ranks of one :class:`SimContext`."""

    def __init__(
        self,
        ctx: SimContext,
        ranks: Optional[Sequence[int]] = None,
        bw_derate: float = 1.0,
        collective_overhead: float = 12e-6,
        timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        self.ctx = ctx
        self.engine: Engine = ctx.engine
        self.topology: Topology = ctx.topology
        self.ranks: List[int] = list(ranks) if ranks is not None else ctx.ranks
        if len(set(self.ranks)) != len(self.ranks) or not self.ranks:
            raise CommunicationError(f"invalid rank set {self.ranks!r}")
        for r in self.ranks:
            if not (0 <= r < ctx.num_gpus):
                raise CommunicationError(
                    f"rank {r} outside context with {ctx.num_gpus} GPUs"
                )
        if not (0.0 < bw_derate <= 1.0):
            raise CommunicationError(f"bw_derate must be in (0, 1], got {bw_derate}")
        #: effective-bandwidth multiplier, used to model comm slowdown
        #: while overlapped with compute (§6.3).
        self.bw_derate = bw_derate
        if collective_overhead < 0:
            raise CommunicationError("collective_overhead must be >= 0")
        #: fixed software cost of one collective call (NCCL kernel launch
        #: + rendezvous, ~10-20 us in practice). This floor is what keeps
        #: tiny graphs (Cora) from scaling — each of the P broadcast
        #: stages pays it regardless of message size.
        self.collective_overhead = collective_overhead
        if timeout is not None and timeout <= 0:
            raise CommunicationError(f"timeout must be > 0, got {timeout}")
        #: watchdog charged when an attempt fails / a peer is dead; None
        #: falls back to the attempt's own modelled duration.
        self.timeout = timeout
        #: retry budget + backoff schedule for transient faults.
        self.retry = retry if retry is not None else RetryPolicy()
        #: fault injector shared with the context (None = fault-free).
        self.fault_injector = getattr(ctx, "fault_injector", None)
        #: (root, nbytes) -> predicted broadcast duration. The topology
        #: walk behind :meth:`broadcast_duration` is time-independent
        #: (degradation windows are applied at rendezvous, not here), so
        #: the overlap scheduler's per-stage queries are memoizable.
        self._bcast_duration_cache: Dict[Tuple[int, int], float] = {}
        #: root -> (fixed, effective bandwidth) for broadcasts: the
        #: topology walk + latency max depend only on (root, ranks),
        #: both frozen for a communicator's lifetime.
        self._bcast_timing_cache: Dict[int, Tuple[float, float]] = {}
        #: which link tier this communicator's traffic transits. A rank
        #: set confined to one node moves bytes over NVLink/PCIe only
        #: ("intra_node"); a set spanning nodes is bottlenecked by the
        #: NIC and every payload is accounted as "inter_node". The
        #: hierarchical collectives (:mod:`repro.parallel.hierarchy`)
        #: decompose multi-node ops into sub-communicators so each
        #: phase's bytes land in the correct tier.
        machine = ctx.machine
        self.link_class = (
            "inter_node"
            if machine.num_nodes > 1
            and len({machine.node_of(r) for r in self.ranks}) > 1
            else "intra_node"
        )

    @property
    def size(self) -> int:
        return len(self.ranks)

    # -- shared rendezvous machinery ----------------------------------------

    def _streams(
        self, streams: Optional[Mapping[int, Stream]] = None
    ) -> Dict[int, Stream]:
        if streams is not None:
            return dict(streams)
        return {r: self.ctx.device(r).comm_stream for r in self.ranks}

    def _check_rendezvous(
        self, name: str, shapes_by_rank: Mapping[int, Optional[Tuple[int, ...]]]
    ) -> None:
        """All ranks must post matching buffers for the same op.

        ``shapes_by_rank`` maps every expected participant to the shape
        it brought to the rendezvous (None = the rank never posted a
        buffer). Any disagreement raises
        :class:`CollectiveMismatchError` with each rank's view, instead
        of the silent corruption / deadlock real NCCL exhibits.
        """
        views = {r: shapes_by_rank.get(r) for r in self.ranks}
        missing = [r for r, s in views.items() if s is None]
        shapes = {s for s in views.values() if s is not None}
        if missing or len(shapes) > 1:
            detail = ", ".join(
                f"rank {r}: {'<absent>' if s is None else s}"
                for r, s in sorted(views.items())
            )
            raise CollectiveMismatchError(
                f"{name}: rendezvous mismatch — all ranks must agree on "
                f"op and shape ({detail})"
            )

    def _record(
        self,
        streams: Mapping[int, Stream],
        start: float,
        end: float,
        name: str,
        stage: Optional[int],
        nbytes: int,
        flops: float = 0.0,
        event_names: Optional[Mapping[int, str]] = None,
    ) -> Dict[int, Event]:
        """Advance every rank's stream to ``end`` and record the op.

        ``flops`` is the per-rank reduction arithmetic of reducing
        collectives (allreduce/reduce); pure data movement passes 0.
        ``event_names`` optionally supplies precomputed per-rank event
        names (the planned-broadcast path caches them across epochs).
        """
        events: Dict[int, Event] = {}
        record_trace = self.engine.record_trace
        telemetry = getattr(self.engine, "telemetry", None)
        build_events = record_trace or (
            telemetry is not None and getattr(telemetry, "trace_ops", False)
        )
        duration = end - start
        for rank in self.ranks:
            stream = streams[rank]
            stream.ready_time = end
            ev = Event(
                name=event_names[rank] if event_names is not None
                else f"{name}@{rank}"
            )
            ev.time = end
            events[rank] = ev
            if build_events:
                trace_ev = TraceEvent(
                    device=stream.device.name,
                    stream=stream.name,
                    name=name,
                    category="comm",
                    start=start,
                    end=end,
                    stage=stage,
                    nbytes=nbytes,
                    flops=flops,
                )
                if record_trace:
                    self.engine.record_event(trace_ev)
                if telemetry is not None:
                    telemetry.on_op(trace_ev)
            elif telemetry is not None:
                # metrics-only fast path: no event object needed
                telemetry.on_op_values(
                    "comm", stream.device.name, duration, nbytes, flops
                )
        if telemetry is not None:
            # link-tier accounting: one entry per collective (the payload
            # crossing the wire), not per rank — getattr keeps the engine
            # compatible with duck-typed telemetry stand-ins.
            on_comm = getattr(telemetry, "on_comm", None)
            if on_comm is not None:
                on_comm(self.link_class, duration, nbytes)
        return events

    def _rendezvous(
        self,
        streams: Mapping[int, Stream],
        fixed: float,
        bw_time: float,
        name: str,
        deps_by_rank: Optional[Mapping[int, Sequence[Event]]] = None,
        stage: Optional[int] = None,
        nbytes: int = 0,
        compute: Optional[Callable[[], object]] = None,
        flops: float = 0.0,
    ) -> Dict[int, Event]:
        """Start all ranks together; finish all ranks together.

        ``fixed`` is the bandwidth-independent part of the duration
        (launch overhead + latency), ``bw_time`` the bandwidth term —
        kept separate so an active link-degradation window can rescale
        only the bytes-on-the-wire portion.

        ``compute`` is the collective's functional data-movement closure
        (already executed by the caller); recorded only when an epoch
        capture is attached to the engine.
        """
        deps_by_rank = deps_by_rank or {}
        start = 0.0
        for rank in self.ranks:
            stream = streams[rank]
            start = max(start, stream.consume_waits())
            for dep in deps_by_rank.get(rank, ()):
                start = max(start, dep.require_time())

        injector = self.fault_injector
        if injector is None or injector.is_trivial:
            duration = fixed + bw_time
            events = self._record(
                streams, start, start + duration, name, stage, nbytes,
                flops=flops,
            )
            capture = self.engine.capture
            if capture is not None:
                # the *captured duration* (not end - start) is what replay
                # adds back, keeping the timeline bit-exact.
                flat_deps: List[Event] = []
                for rank in self.ranks:
                    flat_deps.extend(deps_by_rank.get(rank, ()))
                capture.record_collective(
                    streams=[streams[r] for r in self.ranks],
                    events=[events[r] for r in self.ranks],
                    name=name,
                    duration=duration,
                    deps=flat_deps,
                    stage=stage,
                    nbytes=nbytes,
                    compute=compute,
                    flops=flops,
                )
            return events
        return self._faulty_rendezvous(
            injector, streams, start, fixed, bw_time, name, stage, nbytes,
            flops=flops,
        )

    def _faulty_rendezvous(
        self,
        injector,
        streams: Mapping[int, Stream],
        start: float,
        fixed: float,
        bw_time: float,
        name: str,
        stage: Optional[int],
        nbytes: int,
        flops: float = 0.0,
    ) -> Dict[int, Event]:
        """Rendezvous under an active fault plan: degrade, retry, or die."""
        if self.engine.capture is not None:
            raise PlanError(
                f"{name}: cannot capture a collective under an active fault "
                "plan — replay would mask retries, degradation, or failures"
            )
        telemetry = getattr(self.engine, "telemetry", None)
        attempts = 0
        t = start
        while True:
            factor = self.topology.bandwidth_factor(t, self.ranks)
            duration = fixed + (bw_time / factor if factor != 1.0 else bw_time)
            watchdog = self.timeout if self.timeout is not None else duration

            dead = injector.first_failure_among(self.ranks, t + duration)
            if dead is not None:
                # a participant dies before the op can complete: the
                # collective hangs until the watchdog fires on the
                # survivors, then the failure surfaces.
                detect = max(t, dead.time) + watchdog
                self._record(streams, t, detect, f"{name}/timeout", stage, 0)
                if telemetry is not None:
                    telemetry.inc("repro_comm_timeouts_total", op=name)
                raise DeviceFailedError(
                    device=f"gpu{dead.rank}",
                    rank=dead.rank,
                    failed_at=dead.time,
                    detected_at=detect,
                )

            if injector.take_collective_fault(t):
                if attempts >= self.retry.max_retries:
                    self._record(
                        streams, t, t + watchdog, f"{name}/timeout", stage, 0
                    )
                    if telemetry is not None:
                        telemetry.inc("repro_comm_timeouts_total", op=name)
                    raise CollectiveTimeoutError(
                        name, attempts + 1, (t + watchdog) - start
                    )
                delay = watchdog + self.retry.backoff(attempts)
                self._record(
                    streams, t, t + delay, f"{name}/retry{attempts}", stage, 0
                )
                if telemetry is not None:
                    telemetry.inc("repro_comm_retries_total", op=name)
                t += delay
                attempts += 1
                continue

            return self._record(
                streams, t, t + duration, name, stage, nbytes, flops=flops
            )

    # -- collectives -----------------------------------------------------------

    def broadcast_duration(self, root: int, nbytes: int) -> float:
        """Predicted duration of a broadcast of ``nbytes`` from ``root``.

        Used by the overlap scheduler to size the bandwidth-sharing
        window of the SpMM that runs concurrently with the broadcast.
        """
        if self.size <= 1:
            return 0.0
        key = (root, nbytes)
        cached = self._bcast_duration_cache.get(key)
        if cached is not None:
            return cached
        fixed, bw = self.broadcast_timing(root)
        duration = fixed + nbytes / bw
        self._bcast_duration_cache[key] = duration
        return duration

    def broadcast_timing(self, root: int) -> Tuple[float, float]:
        """``(fixed, effective_bandwidth)`` of a broadcast from ``root``.

        ``fixed`` is the bandwidth-independent part (launch overhead +
        worst-path latency); a payload of ``n`` bytes then takes
        ``fixed + n / effective_bandwidth``. Cached per root — the
        topology is frozen, so both terms are invariants of
        ``(root, ranks)``.
        """
        cached = self._bcast_timing_cache.get(root)
        if cached is not None:
            return cached
        bw = self.topology.broadcast_bandwidth(root, self.ranks) * self.bw_derate
        latency = max(
            self.topology.p2p_latency(root, r) for r in self.ranks if r != root
        )
        timing = (self.collective_overhead + latency, bw)
        self._bcast_timing_cache[root] = timing
        return timing

    def allreduce_duration(self, nbytes: int) -> float:
        """Predicted duration of an allreduce of ``nbytes`` per rank.

        Same arithmetic as :meth:`allreduce`'s timing path; used by the
        parallelism planner (:mod:`repro.parallel.planner`) so its
        predictions share the simulator's communication model.
        """
        if self.size <= 1:
            return 0.0
        bw = self.topology.allreduce_bandwidth(self.ranks) * self.bw_derate
        volume = 2.0 * (self.size - 1) / self.size * nbytes
        latency = 2.0 * (self.size - 1) * self.topology.p2p_latency(
            self.ranks[0], self.ranks[1]
        )
        return self.collective_overhead + latency + volume / bw

    def allgather_duration(self, total_nbytes: int) -> float:
        """Predicted duration of an allgather moving ``total_nbytes``.

        ``total_nbytes`` is the sum of all ranks' source buffers (the
        gathered payload size). Mirrors :meth:`allgather`'s timing path.
        """
        if self.size <= 1:
            return 0.0
        bw = self.topology.collective_bandwidth(self.ranks) * self.bw_derate
        volume = (self.size - 1) / self.size * total_nbytes
        latency = (self.size - 1) * self.topology.p2p_latency(
            self.ranks[0], self.ranks[1]
        )
        return latency + volume / bw

    def broadcast(
        self,
        root: int,
        src: DeviceTensor,
        dsts: Mapping[int, DeviceTensor],
        streams: Optional[Mapping[int, Stream]] = None,
        deps_by_rank: Optional[Mapping[int, Sequence[Event]]] = None,
        stage: Optional[int] = None,
        name: str = "broadcast",
        payload_nbytes: Optional[int] = None,
        copy_fn: Optional[Callable[[], None]] = None,
    ) -> Dict[int, Event]:
        """Broadcast ``src`` (on ``root``) into each non-root rank's ``dsts``.

        ``dsts`` maps rank -> destination tensor (the root may be omitted
        or map to its own tile; it is not copied to itself).

        Partial (sub-row) broadcasts — the training-time embedding cache
        serving part of a tile locally — pass ``payload_nbytes`` (the
        bytes actually on the wire; timing, trace ``nbytes`` and the
        telemetry link accounting all use it instead of the full tile
        size) and ``copy_fn``, the data movement replacing the full
        copy. Destination *shapes* still rendezvous on the full tile:
        every rank posts the same buffer, only the payload shrinks.
        """
        if root not in self.ranks:
            raise CommunicationError(f"broadcast root {root} not in {self.ranks}")
        shapes: Dict[int, Optional[Tuple[int, ...]]] = {root: src.shape}
        for rank in self.ranks:
            if rank == root:
                continue
            dst = dsts.get(rank)
            shapes[rank] = dst.shape if dst is not None else None
        self._check_rendezvous(name, shapes)

        def full_copy() -> None:
            src_data = src.data
            if src_data is None:
                return
            for rank, dst in dsts.items():
                if rank != root and dst.data is not None:
                    np.copyto(dst.data, src_data)

        compute = copy_fn if copy_fn is not None else full_copy
        compute()
        nbytes = src.nbytes if payload_nbytes is None else int(payload_nbytes)
        fixed = 0.0
        bw_time = 0.0
        if self.size > 1:
            fixed, bw = self.broadcast_timing(root)
            bw_time = nbytes / bw
        return self._rendezvous(
            self._streams(streams), fixed, bw_time, name, deps_by_rank, stage,
            nbytes=nbytes, compute=compute,
        )

    def plan_broadcast(
        self,
        root: int,
        src: DeviceTensor,
        dsts: Mapping[int, DeviceTensor],
        name: str = "broadcast",
        payload_nbytes: Optional[int] = None,
        copy_fn: Optional[Callable[[], None]] = None,
    ) -> tuple:
        """Precompute the epoch-invariant half of a pipelined broadcast.

        Shapes, streams, the duration (root/nbytes/bandwidth are all
        frozen for the communicator's lifetime, like the caches
        :meth:`broadcast_timing` relies on), and the per-rank event-name
        strings never change across epochs — only the start floor does.
        The returned plan is an opaque tuple for :meth:`broadcast_replay`.

        ``payload_nbytes``/``copy_fn`` mirror :meth:`broadcast`: a
        partial (cached) broadcast freezes its wire bytes and custom
        data movement into the plan. The caller must invalidate the
        plan when the cache state changes (the stage-plan cache in
        :mod:`repro.core.spmm_mg` keys on the cache's plan token).
        """
        fixed, bw = self.broadcast_timing(root)
        nbytes = src.nbytes if payload_nbytes is None else int(payload_nbytes)
        # same float grouping as _rendezvous: duration built first, then
        # added to the start at replay time.
        duration = fixed + nbytes / bw
        ctx = self.ctx
        streams = {r: ctx.device(r).comm_stream for r in self.ranks}
        copy_dsts = tuple(
            dst for rank, dst in dsts.items() if rank != root
        )
        event_names = {r: f"{name}@{r}" for r in self.ranks}
        return (src, copy_dsts, streams, duration, name, event_names,
                nbytes, copy_fn)

    def broadcast_replay(
        self,
        plan: tuple,
        start_floor: float,
        stage: Optional[int] = None,
    ) -> Dict[int, Event]:
        """Run one planned broadcast: copy payloads, advance streams.

        Identical timing, trace, and data movement to :meth:`broadcast`,
        minus the per-call validation and dependency plumbing: the caller
        (``distributed_spmm``'s batched stage loop) has already validated
        shapes by construction and folds all dependency times into
        ``start_floor``. Must only be used with no epoch capture active
        and a trivial fault injector — the caller checks both.
        """
        (src, copy_dsts, streams, duration, name, event_names, nbytes,
         copy_fn) = plan
        if copy_fn is not None:
            copy_fn()
        else:
            src_data = src.data
            if src_data is not None:
                for dst in copy_dsts:
                    if dst.data is not None:
                        np.copyto(dst.data, src_data)
        start = start_floor
        for stream in streams.values():
            t = stream.consume_waits()
            if t > start:
                start = t
        return self._record(
            streams, start, start + duration, name, stage, nbytes,
            event_names=event_names,
        )

    def broadcast_pipelined(
        self,
        root: int,
        src: DeviceTensor,
        dsts: Mapping[int, DeviceTensor],
        start_floor: float,
        stage: Optional[int] = None,
        name: str = "broadcast",
    ) -> Dict[int, Event]:
        """One-shot planned broadcast (plan + replay in a single call)."""
        return self.broadcast_replay(
            self.plan_broadcast(root, src, dsts, name=name),
            start_floor,
            stage=stage,
        )

    def allreduce(
        self,
        tensors: Mapping[int, DeviceTensor],
        op: str = "sum",
        streams: Optional[Mapping[int, Stream]] = None,
        deps_by_rank: Optional[Mapping[int, Sequence[Event]]] = None,
        name: str = "allreduce",
    ) -> Dict[int, Event]:
        """In-place allreduce across ranks (``sum`` or ``mean``)."""
        if op not in ("sum", "mean"):
            raise CommunicationError(f"unsupported allreduce op {op!r}")
        self._check_uniform(tensors, name)

        def compute() -> None:
            arrays = [
                tensors[r].data for r in self.ranks if tensors[r].data is not None
            ]
            if not arrays:
                return
            total = arrays[0].copy()
            for a in arrays[1:]:
                total += a
            if op == "mean":
                total /= self.size
            for r in self.ranks:
                if tensors[r].data is not None:
                    np.copyto(tensors[r].data, total)

        compute()
        ref = tensors[self.ranks[0]]
        nbytes = ref.nbytes
        fixed = 0.0
        bw_time = 0.0
        flops = 0.0
        if self.size > 1:
            bw = self.topology.allreduce_bandwidth(self.ranks) * self.bw_derate
            volume = 2.0 * (self.size - 1) / self.size * nbytes
            latency = 2.0 * (self.size - 1) * self.topology.p2p_latency(
                self.ranks[0], self.ranks[1]
            )
            fixed = self.collective_overhead + latency
            bw_time = volume / bw
            # ring reduce-scatter: each rank adds (P-1)/P of the buffer;
            # a mean also divides its 1/P shard.
            flops = (self.size - 1) / self.size * ref.size
            if op == "mean":
                flops += ref.size / self.size
        return self._rendezvous(
            self._streams(streams), fixed, bw_time, name, deps_by_rank,
            nbytes=nbytes, compute=compute, flops=flops,
        )

    def reduce(
        self,
        root: int,
        tensors: Mapping[int, DeviceTensor],
        streams: Optional[Mapping[int, Stream]] = None,
        deps_by_rank: Optional[Mapping[int, Sequence[Event]]] = None,
        name: str = "reduce",
    ) -> Dict[int, Event]:
        """Sum all ranks' tensors into ``root``'s tensor (in place)."""
        if root not in self.ranks:
            raise CommunicationError(f"reduce root {root} not in {self.ranks}")
        self._check_uniform(tensors, name)
        root_tensor = tensors[root]

        def compute() -> None:
            if root_tensor.data is None:
                return
            for r in self.ranks:
                if r == root:
                    continue
                src = tensors[r]
                if src.data is not None:
                    root_tensor.data += src.data

        compute()
        nbytes = root_tensor.nbytes
        fixed = 0.0
        bw_time = 0.0
        flops = 0.0
        if self.size > 1:
            bw = self.topology.allreduce_bandwidth(self.ranks) * self.bw_derate
            volume = (self.size - 1) / self.size * nbytes
            latency = (self.size - 1) * self.topology.p2p_latency(
                self.ranks[0], self.ranks[1]
            )
            fixed = self.collective_overhead + latency
            bw_time = volume / bw
            # ring reduce: each rank contributes one add of its shard chain.
            flops = (self.size - 1) / self.size * root_tensor.size
        return self._rendezvous(
            self._streams(streams), fixed, bw_time, name, deps_by_rank,
            nbytes=nbytes, compute=compute, flops=flops,
        )

    def allgather(
        self,
        srcs: Mapping[int, DeviceTensor],
        dsts: Mapping[int, DeviceTensor],
        row_offsets: Optional[Mapping[int, int]] = None,
        streams: Optional[Mapping[int, Stream]] = None,
        deps_by_rank: Optional[Mapping[int, Sequence[Event]]] = None,
        name: str = "allgather",
    ) -> Dict[int, Event]:
        """Gather every rank's ``srcs`` rows into every rank's ``dsts``.

        ``dsts[r]`` must have ``sum_r srcs[r].rows`` rows; ``row_offsets``
        gives each source's starting row in the gathered layout (defaults
        to rank-order concatenation).
        """
        # each rank may gather a different row count, so the rendezvous
        # agreement is on presence (src AND dst posted) and column width.
        self._check_rendezvous(
            name,
            {
                r: ((srcs[r].cols,) if r in srcs and r in dsts else None)
                for r in self.ranks
            },
        )
        total_rows = sum(srcs[r].rows for r in self.ranks)
        offsets: Dict[int, int] = {}
        if row_offsets is None:
            cursor = 0
            for r in self.ranks:
                offsets[r] = cursor
                cursor += srcs[r].rows
        else:
            offsets = dict(row_offsets)
        for r in self.ranks:
            dst = dsts[r]
            if dst.rows != total_rows:
                raise CommunicationError(
                    f"allgather: rank {r} dst has {dst.rows} rows, need {total_rows}"
                )

        def compute() -> None:
            for r in self.ranks:
                dst = dsts[r]
                if dst.data is None:
                    continue
                for s in self.ranks:
                    src = srcs[s]
                    if src.data is not None:
                        dst.data[offsets[s] : offsets[s] + src.rows] = src.data

        compute()
        nbytes = sum(srcs[r].nbytes for r in self.ranks)
        fixed = 0.0
        bw_time = 0.0
        if self.size > 1:
            bw = self.topology.collective_bandwidth(self.ranks) * self.bw_derate
            volume = (self.size - 1) / self.size * nbytes
            latency = (self.size - 1) * self.topology.p2p_latency(
                self.ranks[0], self.ranks[1]
            )
            fixed = latency
            bw_time = volume / bw
        return self._rendezvous(
            self._streams(streams), fixed, bw_time, name, deps_by_rank,
            nbytes=nbytes, compute=compute,
        )

    # -- helpers ------------------------------------------------------------------

    def _check_uniform(
        self, tensors: Mapping[int, DeviceTensor], name: str = "collective"
    ) -> None:
        self._check_rendezvous(
            name,
            {r: (tensors[r].shape if r in tensors else None) for r in self.ranks},
        )
