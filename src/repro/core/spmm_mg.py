"""The multi-stage broadcast SpMM (Sections 4.1 and 4.3).

For ``P`` GPUs the product ``C^i = sum_j A^{ij} S^j`` runs in ``P``
stages. At stage ``j``, rank ``j`` broadcasts its operand tile ``S^j``;
every rank multiplies its local ``A^{ij}`` tile with the received tile
and accumulates into its local output rows.

Two schedules:

* **serialised** (one broadcast buffer): broadcast ``j+1`` must wait for
  every rank's stage-``j`` SpMM (the buffer is still being read);
* **overlapped** (double buffering, two streams): broadcast ``j`` lands
  in buffer ``j % 2``; SpMM ``j`` (compute stream) waits only for
  broadcast ``j``; broadcast ``j+1`` (comm stream) waits for SpMM
  ``j-1`` — the exact event chain of §4.3. While a broadcast is in
  flight the concurrent SpMM runs with reduced memory bandwidth
  (``bw_fraction``), modelling §6.3's shared-HBM effect.

Each rank reads its *own* tile directly from its source tensor (no
self-copy), as the root of a broadcast keeps its data in place.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.comm.collectives import Communicator
from repro.device.engine import SimContext
from repro.device.stream import Event
from repro.device.tensor import DeviceTensor
from repro.errors import ConfigurationError
from repro.kernels.cost import CostModel
from repro.kernels.ops import spmm
from repro.nn.buffers import SharedBufferManager


def distributed_spmm(
    ctx: SimContext,
    comm: Communicator,
    cost_models: Sequence[CostModel],
    tiles: Sequence[Sequence[object]],
    sources: Sequence[DeviceTensor],
    outputs: Sequence[DeviceTensor],
    buffer_managers: Sequence[SharedBufferManager],
    overlap: bool = True,
    overlap_bw_fraction: float = 1.0,
    deps_by_rank: Optional[Dict[int, Sequence[Event]]] = None,
    label: str = "spmm",
) -> Dict[int, List[Event]]:
    """Run one distributed SpMM; returns per-rank per-stage SpMM events.

    ``tiles[i][j]`` is rank ``i``'s stage-``j`` tile; ``sources[j]`` is
    the tile rank ``j`` broadcasts; ``outputs[i]`` accumulates rank
    ``i``'s result rows (zero-initialised here via the first stage's
    ``accumulate=False``).
    """
    P = ctx.num_gpus
    if not (len(tiles) == len(sources) == len(outputs) == P):
        raise ConfigurationError(
            f"distributed_spmm: expected {P} rank entries, got "
            f"{len(tiles)}/{len(sources)}/{len(outputs)}"
        )
    deps_by_rank = deps_by_rank or {}
    engine = ctx.engine

    if P == 1:
        ev = spmm(
            engine,
            cost_models[0],
            ctx.device(0).compute_stream,
            tiles[0][0],
            sources[0],
            outputs[0],
            accumulate=False,
            deps=tuple(deps_by_rank.get(0, ())),
            stage=0,
            name=f"{label}[0]",
        )
        return {0: [ev]}

    spmm_events: Dict[int, List[Event]] = {r: [] for r in range(P)}
    bcast_events: List[Dict[int, Event]] = []
    compute_bw = overlap_bw_fraction if overlap else 1.0
    # per-rank entry deps, hoisted out of the stage loop (they are the
    # same tuple at every stage).
    extra_deps = {r: tuple(deps_by_rank.get(r, ())) for r in range(P)}

    for j in range(P):
        src = sources[j]
        dsts = {
            r: buffer_managers[r].bc_view(j if overlap else 0, src.rows, src.cols)
            for r in range(P)
            if r != j
        }
        # dependency: the buffer this broadcast writes must no longer be
        # read. Overlapped: buffer j%2 was last read by stage j-2's SpMM;
        # but §4.3 states bcast i+1 waits SpMM i-1, which (given in-order
        # compute streams) also protects stage j-2's reads. Serialised:
        # the single buffer was read by stage j-1's SpMM.
        bcast_deps: Dict[int, List[Event]] = {r: [] for r in range(P)}
        guard_stage = j - 2 if overlap else j - 1
        if guard_stage >= 0:
            for r in range(P):
                bcast_deps[r].append(spmm_events[r][guard_stage])
        for r in range(P):
            bcast_deps[r].extend(extra_deps[r])
        events = comm.broadcast(
            root=j,
            src=src,
            dsts=dsts,
            deps_by_rank=bcast_deps,
            stage=j,
            name=f"{label}/bcast[{j}]",
        )
        bcast_events.append(events)

        # §6.3 bandwidth sharing: the SpMM of stage j overlaps the
        # broadcast of stage j+1. It loses link-share bandwidth only for
        # the duration of that broadcast (when compute dominates, the
        # penalty is proportionally small).
        next_bcast_time = 0.0
        if overlap and j < P - 1:
            next_bcast_time = comm.broadcast_duration(
                j + 1, sources[j + 1].nbytes
            )
        for r in range(P):
            operand = sources[j] if r == j else dsts[r]
            stream = ctx.device(r).compute_stream
            deps: List[Event] = [events[r]]
            deps.extend(extra_deps[r])
            ev = spmm(
                engine,
                cost_models[r],
                stream,
                tiles[r][j],
                operand,
                outputs[r],
                accumulate=(j > 0),
                deps=deps,
                stage=j,
                name=f"{label}[{j}]",
                bw_fraction=compute_bw if (overlap and j < P - 1) else 1.0,
                overlap_comm_time=next_bcast_time,
            )
            spmm_events[r].append(ev)

    return spmm_events
