"""The multi-stage broadcast SpMM (Sections 4.1 and 4.3).

For ``P`` GPUs the product ``C^i = sum_j A^{ij} S^j`` runs in ``P``
stages. At stage ``j``, rank ``j`` broadcasts its operand tile ``S^j``;
every rank multiplies its local ``A^{ij}`` tile with the received tile
and accumulates into its local output rows.

Two schedules:

* **serialised** (one broadcast buffer): broadcast ``j+1`` must wait for
  every rank's stage-``j`` SpMM (the buffer is still being read);
* **overlapped** (double buffering, two streams): broadcast ``j`` lands
  in buffer ``j % 2``; SpMM ``j`` (compute stream) waits only for
  broadcast ``j``; broadcast ``j+1`` (comm stream) waits for SpMM
  ``j-1`` — the exact event chain of §4.3. While a broadcast is in
  flight the concurrent SpMM runs with reduced memory bandwidth
  (``bw_fraction``), modelling §6.3's shared-HBM effect.

Each rank reads its *own* tile directly from its source tensor (no
self-copy), as the root of a broadcast keeps its data in place.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.comm.collectives import Communicator
from repro.device.engine import SimContext
from repro.device.stream import Event
from repro.device.tensor import DeviceTensor
from repro.errors import ConfigurationError
from repro.kernels.cost import CostModel
from repro.kernels.ops import (
    build_spmm_group,
    specialize_spmm_group,
    spmm,
    spmm_many,
)
from repro.nn.buffers import SharedBufferManager

if TYPE_CHECKING:
    from repro.cache.training import TrainingTileCache


def distributed_spmm(
    ctx: SimContext,
    comm: Communicator,
    cost_models: Sequence[CostModel],
    tiles: Sequence[Sequence[object]],
    sources: Sequence[DeviceTensor],
    outputs: Sequence[DeviceTensor],
    buffer_managers: Sequence[SharedBufferManager],
    overlap: bool = True,
    overlap_bw_fraction: float = 1.0,
    deps_by_rank: Optional[Dict[int, Sequence[Event]]] = None,
    label: str = "spmm",
    batched: bool = False,
    cache: Optional["TrainingTileCache"] = None,
) -> Dict[int, List[Event]]:
    """Run one distributed SpMM; returns per-rank per-stage SpMM events.

    ``tiles[i][j]`` is rank ``i``'s stage-``j`` tile; ``sources[j]`` is
    the tile rank ``j`` broadcasts; ``outputs[i]`` accumulates rank
    ``i``'s result rows (zero-initialised here via the first stage's
    ``accumulate=False``). With ``batched`` each stage's per-rank SpMM
    loop goes through :func:`~repro.kernels.ops.spmm_many` — one engine
    call and one backend group dispatch per stage, bit-identical.

    ``cache`` intercepts each stage's broadcast with the training-time
    remote-tile cache: on serve epochs only the uncached rows travel
    (the broadcast's payload bytes shrink, its copy closure scatters the
    resident replica), on refresh epochs the full tile travels and the
    replica is rewritten through it.
    """
    P = ctx.num_gpus
    if not (len(tiles) == len(sources) == len(outputs) == P):
        raise ConfigurationError(
            f"distributed_spmm: expected {P} rank entries, got "
            f"{len(tiles)}/{len(sources)}/{len(outputs)}"
        )
    deps_by_rank = deps_by_rank or {}
    engine = ctx.engine

    if P == 1:
        ev = spmm(
            engine,
            cost_models[0],
            ctx.device(0).compute_stream,
            tiles[0][0],
            sources[0],
            outputs[0],
            accumulate=False,
            deps=tuple(deps_by_rank.get(0, ())),
            stage=0,
            name=f"{label}[0]",
        )
        return {0: [ev]}

    compute_bw = overlap_bw_fraction if overlap else 1.0
    # per-rank entry deps, hoisted out of the stage loop (they are the
    # same tuple at every stage).
    extra_deps = {r: tuple(deps_by_rank.get(r, ())) for r in range(P)}

    if (
        batched
        and engine.capture is None
        and list(comm.ranks) == list(range(P))
        and (comm.fault_injector is None or comm.fault_injector.is_trivial)
    ):
        # Fault-free, capture-free batched epochs take the stage-pipelined
        # fast path: dependency times are folded into per-stage floors and
        # each broadcast goes through the lean rendezvous. Capture and
        # fault injection keep the fully-validated per-op path below.
        # The stage schedule is epoch-invariant, so each call site keeps
        # a validated plan on the context and replays it.
        # Plans are keyed per cache phase so refresh and serve schedules
        # coexist; the cache token pins a plan to the resident contents
        # it was built against (admission/evict/fill bumps it).
        plan_cache = getattr(ctx, "spmm_plan_cache", None)
        if plan_cache is None:
            plan_cache = ctx.spmm_plan_cache = {}
        key = (label, None if cache is None else cache.phase)
        plan = plan_cache.get(key)
        if (
            plan is None
            or not plan.matches(
                tiles, sources, outputs, buffer_managers, overlap, compute_bw
            )
            or plan.cache_token != (
                None if cache is None else cache.plan_token()
            )
        ):
            plan = _build_stage_plan(
                ctx, comm, cost_models, tiles, sources, outputs,
                buffer_managers, overlap, compute_bw, label, cache,
            )
            plan_cache[key] = plan
        return _replay_stage_plan(engine, comm, plan, extra_deps)

    spmm_events: Dict[int, List[Event]] = {r: [] for r in range(P)}
    bcast_events: List[Dict[int, Event]] = []

    for j in range(P):
        src = sources[j]
        dsts = {
            r: buffer_managers[r].bc_view(j if overlap else 0, src.rows, src.cols)
            for r in range(P)
            if r != j
        }
        # dependency: the buffer this broadcast writes must no longer be
        # read. Overlapped: buffer j%2 was last read by stage j-2's SpMM;
        # but §4.3 states bcast i+1 waits SpMM i-1, which (given in-order
        # compute streams) also protects stage j-2's reads. Serialised:
        # the single buffer was read by stage j-1's SpMM.
        bcast_deps: Dict[int, List[Event]] = {r: [] for r in range(P)}
        guard_stage = j - 2 if overlap else j - 1
        if guard_stage >= 0:
            for r in range(P):
                bcast_deps[r].append(spmm_events[r][guard_stage])
        for r in range(P):
            bcast_deps[r].extend(extra_deps[r])
        payload = None
        copy_fn = None
        if cache is not None:
            entry = cache.stage_entry(label, j, src)
            if entry is not None:
                payload = cache.payload_nbytes(label, j, src)
                copy_fn = cache.stage_copy(entry, src, tuple(dsts.values()))
        events = comm.broadcast(
            root=j,
            src=src,
            dsts=dsts,
            deps_by_rank=bcast_deps,
            stage=j,
            name=f"{label}/bcast[{j}]",
            payload_nbytes=payload,
            copy_fn=copy_fn,
        )
        bcast_events.append(events)

        # §6.3 bandwidth sharing: the SpMM of stage j overlaps the
        # broadcast of stage j+1. It loses link-share bandwidth only for
        # the duration of that broadcast (when compute dominates, the
        # penalty is proportionally small).
        next_bcast_time = 0.0
        if overlap and j < P - 1:
            next_nbytes = sources[j + 1].nbytes
            if cache is not None:
                next_nbytes = cache.payload_nbytes(
                    label, j + 1, sources[j + 1]
                )
            next_bcast_time = comm.broadcast_duration(j + 1, next_nbytes)
        stage_bw = compute_bw if (overlap and j < P - 1) else 1.0
        if batched:
            items = []
            for r in range(P):
                operand = sources[j] if r == j else dsts[r]
                deps = [events[r]]
                deps.extend(extra_deps[r])
                items.append(
                    (ctx.device(r).compute_stream, cost_models[r],
                     tiles[r][j], operand, outputs[r], deps)
                )
            stage_events = spmm_many(
                engine,
                items,
                accumulate=(j > 0),
                stage=j,
                name=f"{label}[{j}]",
                bw_fraction=stage_bw,
                overlap_comm_time=next_bcast_time,
            )
            for r, ev in enumerate(stage_events):
                spmm_events[r].append(ev)
            continue
        for r in range(P):
            operand = sources[j] if r == j else dsts[r]
            stream = ctx.device(r).compute_stream
            deps: List[Event] = [events[r]]
            deps.extend(extra_deps[r])
            ev = spmm(
                engine,
                cost_models[r],
                stream,
                tiles[r][j],
                operand,
                outputs[r],
                accumulate=(j > 0),
                deps=deps,
                stage=j,
                name=f"{label}[{j}]",
                bw_fraction=stage_bw,
                overlap_comm_time=next_bcast_time,
            )
            spmm_events[r].append(ev)

    return spmm_events


class _StagePlan:
    """Epoch-invariant schedule for one pipelined SpMM call site.

    Everything about the stage loop except dependency *times* is fixed
    across epochs: operands and broadcast views (the buffer managers
    cache them), each broadcast's duration and event names (communicator
    bandwidth and ranks are frozen for its lifetime), each rank's SpMM
    duration and flops (frozen cost models and shapes), and the group
    compute closure (it derefs ``.data`` at call time). Build once per
    call site, then replay each epoch with only the per-stage start
    floors recomputed. Cached per label on the :class:`SimContext` and
    revalidated by operand identity on every call — a changed operand
    set simply rebuilds the plan.
    """

    __slots__ = (
        "tiles", "sources", "outputs", "managers", "overlap",
        "compute_bw", "stages", "cache_token",
    )

    def __init__(self, tiles, sources, outputs, managers, overlap,
                 compute_bw, stages, cache_token=None):
        self.tiles = tuple(tiles)
        self.sources = tuple(sources)
        self.outputs = tuple(outputs)
        self.managers = tuple(managers)
        self.overlap = overlap
        self.compute_bw = compute_bw
        #: ``cache.plan_token()`` at build time (None when uncached); a
        #: mismatch at call time means the payloads or copy closures no
        #: longer describe the epoch and the plan rebuilds.
        self.cache_token = cache_token
        #: per stage: (broadcast plan, guard stage index, per-rank spec
        #: prefixes ``(stream, name, category, duration)``, per-rank spec
        #: suffixes ``(stage, nbytes, compute, correlation, flops)``, and
        #: the group compute closure (None in symbolic mode).
        self.stages = stages

    def matches(self, tiles, sources, outputs, managers, overlap,
                compute_bw) -> bool:
        """Is this plan still valid for the operands of this call?"""
        if self.overlap != overlap or self.compute_bw != compute_bw:
            return False
        if len(tiles) != len(self.tiles):
            return False
        for mine, theirs in (
            (self.tiles, tiles), (self.sources, sources),
            (self.outputs, outputs), (self.managers, managers),
        ):
            for a, b in zip(mine, theirs):
                if a is not b:
                    return False
        return True


def _build_stage_plan(
    ctx: SimContext,
    comm: Communicator,
    cost_models: Sequence[CostModel],
    tiles: Sequence[Sequence[object]],
    sources: Sequence[DeviceTensor],
    outputs: Sequence[DeviceTensor],
    buffer_managers: Sequence[SharedBufferManager],
    overlap: bool,
    compute_bw: float,
    label: str,
    cache: Optional["TrainingTileCache"] = None,
) -> _StagePlan:
    """Validate every stage once and snapshot its schedule."""
    P = ctx.num_gpus
    engine = ctx.engine
    compute_streams = [ctx.device(r).compute_stream for r in range(P)]
    stages = []
    for j in range(P):
        src = sources[j]
        dsts = {
            r: buffer_managers[r].bc_view(j if overlap else 0, src.rows, src.cols)
            for r in range(P)
            if r != j
        }
        payload = None
        copy_fn = None
        if cache is not None:
            entry = cache.stage_entry(label, j, src)
            if entry is not None:
                payload = cache.payload_nbytes(label, j, src)
                copy_fn = cache.stage_copy(entry, src, tuple(dsts.values()))
        bcast_plan = comm.plan_broadcast(
            j, src, dsts, name=f"{label}/bcast[{j}]",
            payload_nbytes=payload, copy_fn=copy_fn,
        )
        next_bcast_time = 0.0
        if overlap and j < P - 1:
            next_nbytes = sources[j + 1].nbytes
            if cache is not None:
                next_nbytes = cache.payload_nbytes(
                    label, j + 1, sources[j + 1]
                )
            next_bcast_time = comm.broadcast_duration(j + 1, next_nbytes)
        stage_bw = compute_bw if (overlap and j < P - 1) else 1.0
        items = [
            (compute_streams[r], cost_models[r], tiles[r][j],
             src if r == j else dsts[r], outputs[r], ())
            for r in range(P)
        ]
        specs, compute = build_spmm_group(
            engine,
            items,
            accumulate=(j > 0),
            stage=j,
            name=f"{label}[{j}]",
            bw_fraction=stage_bw,
            overlap_comm_time=next_bcast_time,
        )
        if compute is not None:
            # every rank's dense operand holds the stage root's tile
            # (rank j reads src itself, the others their broadcast copy).
            fast_compute = specialize_spmm_group(
                engine.backend, items, accumulate=(j > 0), shared_dense=src
            )
            if fast_compute is not None:
                compute = fast_compute
        guard_stage = j - 2 if overlap else j - 1
        pre = [s[:4] for s in specs]
        post = [s[5:] for s in specs]
        stages.append((bcast_plan, guard_stage, pre, post, compute))
    # token taken *after* the stage walk: stage_entry may admit entries
    # (or mark them filled), and the plan must pin the resulting state.
    token = None if cache is None else cache.plan_token()
    return _StagePlan(tiles, sources, outputs, buffer_managers, overlap,
                      compute_bw, stages, token)


def _replay_stage_plan(
    engine,
    comm: Communicator,
    plan: _StagePlan,
    extra_deps: Dict[int, tuple],
) -> Dict[int, List[Event]]:
    """The batched stage loop with dependency times tracked as floats.

    Timing-equivalent to the general loop in :func:`distributed_spmm`:
    the broadcast of stage ``j`` starts no earlier than the guard stage's
    slowest SpMM (§4.3's event chain) and the per-rank entry deps, both
    of which are plain time floors here instead of per-rank `Event`
    dependency lists (every extra dep's time is dominated by the
    broadcast end the SpMM already waits on, so dropping them from the
    SpMM dep lists cannot change any start time). Only valid fault-free
    and capture-free (the caller checks), where event objects carry
    nothing but their times.
    """
    all_extra = 0.0
    for deps in extra_deps.values():
        for dep in deps:
            t = dep.require_time()
            if t > all_extra:
                all_extra = t
    P = len(plan.sources)
    spmm_events: Dict[int, List[Event]] = {r: [] for r in range(P)}
    stage_end_max: List[float] = []  # slowest rank's SpMM end, per stage

    for j, (bcast_plan, guard_stage, pre, post, compute) in enumerate(
        plan.stages
    ):
        floor = all_extra
        if guard_stage >= 0 and stage_end_max[guard_stage] > floor:
            floor = stage_end_max[guard_stage]
        events = comm.broadcast_replay(bcast_plan, floor, stage=j)
        if compute is not None:
            compute()
        # every rank's broadcast event carries the same completion time,
        # so the whole stage submits against one shared floor.
        stage_events = engine.submit_after(pre, post, events[0].time)
        end_max = 0.0
        for r, ev in enumerate(stage_events):
            spmm_events[r].append(ev)
            if ev.time > end_max:
                end_max = ev.time
        stage_end_max.append(end_max)

    return spmm_events
