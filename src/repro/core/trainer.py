"""The MG-GCN trainer: multi-GPU full-batch GCN training.

One :class:`MGGCNTrainer` owns a simulated machine, the 1D-distributed
graph, the L+3 shared buffers per GPU, replicated weights + Adam state,
and runs epochs with:

* per-layer computation-order selection (§4.4),
* multi-stage broadcast SpMM with optional comm/compute overlap (§4.3),
* fused gradient/activation buffer reuse (§4.2),
* optional first-layer backward-SpMM skip (§4.4),
* weight-gradient allreduce (only ``W`` is replicated, §4.1).

In FUNCTIONAL mode the trainer computes real numbers — its weights after
``k`` epochs match :class:`~repro.nn.reference.ReferenceGCN` — while the
engine accounts simulated time. In SYMBOLIC mode the same code path
runs on metadata-only tensors (paper-scale graphs).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.comm.collectives import Communicator
from repro.device.engine import SimContext
from repro.device.stream import Event
from repro.device.tensor import DeviceTensor, Mode
from repro.errors import ConfigurationError
from repro.datasets.loader import Dataset, SymbolicDataset
from repro.hardware.machines import dgx1
from repro.hardware.spec import MachineSpec
from repro.kernels.cost import CostModel, KernelCosts
from repro.kernels.ops import (
    adam_step_op,
    build_gemm,
    build_relu,
    build_spmm,
    gemm,
    gemm_many,
    gemm_relu_backward,
    gemm_relu_backward_many,
    relu_forward,
    relu_many,
    softmax_cross_entropy,
    submit_chain,
)
from repro.cache import CachePolicy, TrainingTileCache
from repro.config import FLOAT_SIZE
from repro.nn.buffers import SharedBufferManager
from repro.nn.init import init_weights
from repro.nn.model import GCNModelSpec
from repro.plan import PlanCapture, PlanStats
from repro.core.order import ComputeOrder, broadcast_width, choose_forward_order
from repro.core.partitioner import (
    PARTITION_STRATEGIES,
    DistributedGraph,
    partition_dataset,
    stage_degree_scores,
)
from repro.core.spmm_mg import distributed_spmm
from repro.core.stats import EpochStats, OpBreakdown


@dataclass(frozen=True)
class TrainerConfig:
    """Feature switches and hyper-parameters of one trainer instance.

    The three paper optimisations (``permute``, ``overlap``,
    ``order_optimization``/``first_layer_skip``) default to on; the
    ablation benches flip them individually.
    """

    permute: bool = True
    overlap: bool = True
    order_optimization: bool = True
    first_layer_skip: bool = True
    lr: float = 1e-2
    seed: int = 0
    record_trace: bool = True
    kernel_costs: Optional[KernelCosts] = None
    #: collective-bandwidth multiplier while overlapped with compute
    #: (both sides slow down when sharing HBM, §6.3).
    overlap_comm_derate: float = 0.9
    #: optional :class:`repro.resilience.FaultInjector` threaded through
    #: the SimContext into the engine, topology and collectives.
    fault_injector: Optional[object] = None
    #: per-collective watchdog, seconds (None = no timeout detection).
    collective_timeout: Optional[float] = None
    #: capture epoch 1 into an execution plan (:mod:`repro.plan`) and
    #: replay later epochs with near-zero scheduling overhead. Auto
    #: falls back to eager while a fault plan is active, and recaptures
    #: when the world changes (see :meth:`MGGCNTrainer.train_epoch`).
    capture_epochs: bool = False
    #: route every collective through the node-hierarchical communicator
    #: (:class:`repro.parallel.hierarchy.HierarchicalCommunicator`):
    #: intra-node rings + inter-node trees. Functionally identical to
    #: the flat communicator; on a single-node machine it *is* the flat
    #: communicator, so the flag only changes multi-node timing.
    hierarchical_collectives: bool = False
    #: kernel backend name (:mod:`repro.backends` registry): "numpy"
    #: (reference), "blas_batched" (stacked same-shape GeMMs), or
    #: "numba" (compiled CSR SpMM; auto-unavailable without numba).
    kernel_backend: str = "numpy"
    #: collapse eligible forward chains (SpMM→GeMM, GeMM→ReLU) into one
    #: submitted op each, and fuse captured plans at finalization.
    #: Bit-identical timing, trace, and numerics; auto-disabled while a
    #: non-trivial fault injector is attached.
    fuse_ops: bool = False
    #: submit per-rank kernel loops (forward GeMM/ReLU, backward wgrad)
    #: through ``Engine.submit_many`` with one batch-group closure —
    #: one engine call and one backend dispatch per loop. Bit-identical.
    batched_submit: bool = False
    #: row-partition strategy: "uniform" (the paper's, §4.1) or
    #: "resource_aware" (CaPGNN cost-model split; see
    #: :func:`repro.core.partitioner.resource_aware_partition`).
    partition_strategy: str = "uniform"
    #: enable the training-time remote-embedding cache with this
    #: staleness bound (None = disabled). 0 = bit-exact write-through
    #: refresh every epoch; k > 0 = cached rows may be up to k epochs
    #: stale between refreshes (see ``docs/caching.md``).
    cache_staleness_epochs: Optional[int] = None
    #: per-rank byte budget for cached rows (None = auto: half of one
    #: epoch's forward broadcast bytes).
    cache_budget_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.lr <= 0:
            raise ConfigurationError(f"lr must be positive, got {self.lr}")
        if not (0.0 < self.overlap_comm_derate <= 1.0):
            raise ConfigurationError(
                f"overlap_comm_derate must be in (0, 1], got {self.overlap_comm_derate}"
            )
        if self.collective_timeout is not None and self.collective_timeout <= 0:
            raise ConfigurationError(
                f"collective_timeout must be positive, got {self.collective_timeout}"
            )
        if self.partition_strategy not in PARTITION_STRATEGIES:
            raise ConfigurationError(
                f"unknown partition_strategy {self.partition_strategy!r}; "
                f"choose from {PARTITION_STRATEGIES}"
            )
        if (
            self.cache_staleness_epochs is not None
            and self.cache_staleness_epochs < 0
        ):
            raise ConfigurationError(
                f"cache_staleness_epochs must be >= 0, "
                f"got {self.cache_staleness_epochs}"
            )
        if self.cache_budget_bytes is not None and self.cache_budget_bytes <= 0:
            raise ConfigurationError(
                f"cache_budget_bytes must be positive, "
                f"got {self.cache_budget_bytes}"
            )


class MGGCNTrainer:
    """Multi-GPU full-batch GCN trainer on a simulated machine."""

    def __init__(
        self,
        dataset: Union[Dataset, SymbolicDataset],
        model: GCNModelSpec,
        machine: Optional[MachineSpec] = None,
        num_gpus: Optional[int] = None,
        config: Optional[TrainerConfig] = None,
    ):
        self.dataset = dataset
        self.model = model
        self.config = config or TrainerConfig()
        machine = machine or dgx1()
        mode = Mode.SYMBOLIC if dataset.is_symbolic else Mode.FUNCTIONAL
        if model.layer_dims[0] != dataset.d0:
            raise ConfigurationError(
                f"model input width {model.layer_dims[0]} != dataset d0 {dataset.d0}"
            )
        if model.layer_dims[-1] != dataset.num_classes:
            raise ConfigurationError(
                f"model output width {model.layer_dims[-1]} != "
                f"num_classes {dataset.num_classes}"
            )
        self.ctx = SimContext(
            machine,
            num_gpus=num_gpus,
            mode=mode,
            record_trace=self.config.record_trace,
            fault_injector=self.config.fault_injector,
            kernel_backend=self.config.kernel_backend,
        )
        P = self.ctx.num_gpus
        self.graph: DistributedGraph = partition_dataset(
            self.ctx, dataset, permute=self.config.permute,
            seed=self.config.seed, strategy=self.config.partition_strategy,
        )
        costs = self.config.kernel_costs or KernelCosts()
        self.cost_models: List[CostModel] = [
            CostModel(machine.gpu, costs) for _ in range(P)
        ]
        # While a broadcast overlaps an SpMM, the SpMM loses the HBM share
        # the DMA engines consume (link injection bw / HBM bw).
        link_share = (
            machine.injection_bandwidth(0) / machine.gpu.memory_bandwidth
            if P > 1
            else 0.0
        )
        self._overlap_bw_fraction = max(1.0 - link_share, 0.1)
        if self.config.hierarchical_collectives:
            # function-level import: repro.parallel imports this module
            # (MixtureTrainer subclasses MGGCNTrainer).
            from repro.parallel.hierarchy import HierarchicalCommunicator

            comm_cls = HierarchicalCommunicator
        else:
            comm_cls = Communicator
        self.comm = comm_cls(
            self.ctx,
            bw_derate=self.config.overlap_comm_derate if self.config.overlap else 1.0,
            timeout=self.config.collective_timeout,
        )

        dims = model.layer_dims
        bc_dim = max(dims[1:])
        bc_rows = self.graph.max_part_rows if P > 1 else 0
        self.buffers: List[SharedBufferManager] = [
            SharedBufferManager(
                self.ctx.device(i),
                local_rows=self.graph.local_rows(i),
                layer_dims=dims,
                bc_rows=bc_rows,
                bc_dim=bc_dim if P > 1 else 0,
                overlap=self.config.overlap,
            )
            for i in range(P)
        ]

        # Replicated weights / gradients / Adam moments, one copy per GPU
        # (accounted on every device; functionally identical across ranks).
        init = init_weights(dims, seed=self.config.seed)
        self.weights: List[List[DeviceTensor]] = []
        self.wgrads: List[List[DeviceTensor]] = []
        self.adam_m: List[List[DeviceTensor]] = []
        self.adam_v: List[List[DeviceTensor]] = []
        for i in range(P):
            dev = self.ctx.device(i)
            w_list, g_list, m_list, v_list = [], [], [], []
            for l in range(model.num_layers):
                shape = (dims[l], dims[l + 1])
                if mode is Mode.FUNCTIONAL:
                    w_list.append(
                        dev.from_numpy(init[l].copy(), name=f"W{l}", tag="weights")
                    )
                    g_list.append(dev.zeros(shape, name=f"WG{l}", tag="weights"))
                    m_list.append(dev.zeros(shape, name=f"m{l}", tag="adam"))
                    v_list.append(dev.zeros(shape, name=f"v{l}", tag="adam"))
                else:
                    w_list.append(dev.symbolic(shape, name=f"W{l}", tag="weights"))
                    g_list.append(dev.symbolic(shape, name=f"WG{l}", tag="weights"))
                    m_list.append(dev.symbolic(shape, name=f"m{l}", tag="adam"))
                    v_list.append(dev.symbolic(shape, name=f"v{l}", tag="adam"))
            self.weights.append(w_list)
            self.wgrads.append(g_list)
            self.adam_m.append(m_list)
            self.adam_v.append(v_list)
        self._adam_t = 0
        self.epochs_trained = 0

        #: training-time remote-tile cache (forward broadcasts only);
        #: None when disabled or pointless (single GPU).
        self.training_cache: Optional[TrainingTileCache] = None
        self._cache_active = False
        if self.config.cache_staleness_epochs is not None and P > 1:
            budget = self.config.cache_budget_bytes
            if budget is None:
                # auto: half of one epoch's forward broadcast bytes —
                # big enough to matter, small enough to leave headroom.
                budget = self._forward_broadcast_bytes() // 2
            self.training_cache = TrainingTileCache(
                self.ctx,
                CachePolicy(
                    staleness_epochs=self.config.cache_staleness_epochs,
                    budget_bytes=budget,
                ),
                stage_scores=stage_degree_scores(self.graph, "forward"),
            )

        #: live toggle for epoch capture & replay (seeded from the
        #: config; the training loop may flip it on an existing trainer).
        self.capture_epochs = self.config.capture_epochs
        self._plan = None
        self._plan_sig = None
        self.plan_stats = PlanStats()

    # -- convenience --------------------------------------------------------------

    @property
    def num_gpus(self) -> int:
        return self.ctx.num_gpus

    @property
    def mode(self) -> Mode:
        return self.ctx.mode

    def get_weights(self) -> List[np.ndarray]:
        """Host copies of the (rank-0) weights, functional mode only."""
        return [w.copy_to_numpy() for w in self.weights[0]]

    def _forward_broadcast_bytes(self) -> int:
        """Full forward broadcast bytes of one epoch (auto-budget base)."""
        sizes = self.graph.part.sizes()
        total = 0
        for l in range(self.model.num_layers):
            d_in, d_out = self.model.dims_of(l)
            w = broadcast_width(d_in, d_out, self.config.order_optimization)
            total += sum(sizes) * w * FLOAT_SIZE
        return total

    # -- distributed SpMM hook -----------------------------------------------

    def _run_spmm(
        self,
        layer: int,
        direction: str,
        tiles,
        sources: Sequence[DeviceTensor],
        outputs: Sequence[DeviceTensor],
        deps_by_rank: Optional[Dict[int, List[Event]]] = None,
        label: str = "spmm",
    ) -> Dict[int, List[Event]]:
        """Run one distributed SpMM (``direction`` is "fwd" or "bwd").

        The single seam every parallelism scheme goes through:
        :class:`~repro.parallel.mixture.MixtureTrainer` overrides this to
        dispatch each layer to its planner-chosen scheme, while the base
        trainer always runs the paper's 1D multi-stage broadcast.
        """
        return distributed_spmm(
            self.ctx,
            self.comm,
            self.cost_models,
            tiles,
            sources,
            outputs,
            self.buffers,
            overlap=self.config.overlap,
            overlap_bw_fraction=self._overlap_bw_fraction,
            deps_by_rank=deps_by_rank,
            label=label,
            batched=self.config.batched_submit,
            cache=self._spmm_cache(direction),
        )

    def _spmm_cache(self, direction: str) -> Optional[TrainingTileCache]:
        """The tile cache for this SpMM, or None.

        Only forward broadcasts are cached (activations re-broadcast the
        same rows every epoch; backward gradient tiles change freely),
        and only inside ``train_epoch`` — ``evaluate``/``predict`` run
        exact forward passes.
        """
        if direction != "fwd" or not self._cache_active:
            return None
        return self.training_cache

    # -- forward pass ----------------------------------------------------------------

    def _forward(self) -> List[List[DeviceTensor]]:
        """Run the forward pass; returns per-layer per-rank outputs.

        With ``fuse_ops`` each layer's back-to-back chain on a rank's
        compute stream goes through :func:`submit_chain`: on one GPU the
        whole layer (GEMM→SpMM→ReLU or SpMM→GEMM→ReLU) is a single fused
        op; multi-GPU, the post-SpMM GEMM→ReLU pair fuses per rank. With
        ``batched_submit`` the remaining per-rank loops go through
        :func:`gemm_many` / :func:`relu_many`; when both flags are on,
        the batched cross-rank calls take the multi-GPU loops (fusion
        keeps the single-GPU full-layer chain and captured plans). All
        paths keep the trace and the timeline bit-identical to the plain
        loop.
        """
        P = self.ctx.num_gpus
        engine = self.ctx.engine
        fuse = self.config.fuse_ops and engine.supports_fusion
        batched = self.config.batched_submit
        # the single-GPU full-layer chain builds the SpMM part directly
        # (bypassing the seam), so it needs the base 1D schedule.
        fuse_full = (
            fuse and P == 1 and type(self)._run_spmm is MGGCNTrainer._run_spmm
        )
        inputs: Sequence[DeviceTensor] = self.graph.features
        layer_outputs: List[List[DeviceTensor]] = []
        for l in range(self.model.num_layers):
            d_in, d_out = self.model.dims_of(l)
            order = choose_forward_order(
                d_in, d_out, self.config.order_optimization
            )
            outs = [self.buffers[i].layer_output(l) for i in range(P)]
            last = l == self.model.num_layers - 1
            if fuse_full:
                cost = self.cost_models[0]
                tile = self.graph.forward_tiles[0][0]
                if order is ComputeOrder.GEMM_FIRST:
                    hw = self.buffers[0].hw_view(d_out)
                    parts = [
                        build_gemm(engine, cost, inputs[0], self.weights[0][l],
                                   hw, name=f"fwd{l}/gemm"),
                        build_spmm(engine, cost, tile, hw, outs[0],
                                   accumulate=False, stage=0,
                                   name=f"fwd{l}/spmm[0]"),
                    ]
                else:
                    ah = self.buffers[0].hw_view(d_in)
                    parts = [
                        build_spmm(engine, cost, tile, inputs[0], ah,
                                   accumulate=False, stage=0,
                                   name=f"fwd{l}/spmm[0]"),
                        build_gemm(engine, cost, ah, self.weights[0][l],
                                   outs[0], name=f"fwd{l}/gemm"),
                    ]
                if not last:
                    parts.append(
                        build_relu(engine, cost, outs[0], name=f"fwd{l}/relu")
                    )
                submit_chain(
                    engine, self.ctx.device(0).compute_stream, parts
                )
                layer_outputs.append(outs)
                inputs = outs
                continue
            relu_done = False
            if order is ComputeOrder.GEMM_FIRST:
                hw_views = [self.buffers[i].hw_view(d_out) for i in range(P)]
                gemm_events: Dict[int, List[Event]] = {}
                if batched:
                    events = gemm_many(
                        engine,
                        [
                            (self.ctx.device(i).compute_stream,
                             self.cost_models[i], inputs[i],
                             self.weights[i][l], hw_views[i], ())
                            for i in range(P)
                        ],
                        name=f"fwd{l}/gemm",
                    )
                    gemm_events = {i: [ev] for i, ev in enumerate(events)}
                else:
                    for i in range(P):
                        ev = gemm(
                            engine,
                            self.cost_models[i],
                            self.ctx.device(i).compute_stream,
                            inputs[i],
                            self.weights[i][l],
                            hw_views[i],
                            name=f"fwd{l}/gemm",
                        )
                        gemm_events[i] = [ev]
                self._run_spmm(
                    l,
                    "fwd",
                    self.graph.forward_tiles,
                    hw_views,
                    outs,
                    deps_by_rank=gemm_events,
                    label=f"fwd{l}/spmm",
                )
            else:
                ah_views = [self.buffers[i].hw_view(d_in) for i in range(P)]
                self._run_spmm(
                    l,
                    "fwd",
                    self.graph.forward_tiles,
                    list(inputs),
                    ah_views,
                    label=f"fwd{l}/spmm",
                )
                if fuse and not last and not batched:
                    # per-rank GEMM→ReLU chain after the distributed SpMM.
                    # With batched_submit also on, the batched group calls
                    # below win instead: one engine call across ranks beats
                    # P fused two-op chains.
                    for i in range(P):
                        submit_chain(
                            engine,
                            self.ctx.device(i).compute_stream,
                            [
                                build_gemm(engine, self.cost_models[i],
                                           ah_views[i], self.weights[i][l],
                                           outs[i], name=f"fwd{l}/gemm"),
                                build_relu(engine, self.cost_models[i],
                                           outs[i], name=f"fwd{l}/relu"),
                            ],
                        )
                    relu_done = True
                elif batched:
                    gemm_many(
                        engine,
                        [
                            (self.ctx.device(i).compute_stream,
                             self.cost_models[i], ah_views[i],
                             self.weights[i][l], outs[i], ())
                            for i in range(P)
                        ],
                        name=f"fwd{l}/gemm",
                    )
                else:
                    for i in range(P):
                        gemm(
                            engine,
                            self.cost_models[i],
                            self.ctx.device(i).compute_stream,
                            ah_views[i],
                            self.weights[i][l],
                            outs[i],
                            name=f"fwd{l}/gemm",
                        )
            if not last and not relu_done:
                if batched:
                    relu_many(
                        engine,
                        [
                            (self.ctx.device(i).compute_stream,
                             self.cost_models[i], outs[i], ())
                            for i in range(P)
                        ],
                        name=f"fwd{l}/relu",
                    )
                else:
                    for i in range(P):
                        relu_forward(
                            engine,
                            self.cost_models[i],
                            self.ctx.device(i).compute_stream,
                            outs[i],
                            name=f"fwd{l}/relu",
                        )
            layer_outputs.append(outs)
            inputs = outs
        return layer_outputs

    # -- loss --------------------------------------------------------------------------

    def _loss(self, logits: Sequence[DeviceTensor]) -> Optional[float]:
        """Masked softmax-CE; the gradient replaces the logits in place."""
        P = self.ctx.num_gpus
        total = 0.0
        for i in range(P):
            local_loss, _ = softmax_cross_entropy(
                self.ctx.engine,
                self.cost_models[i],
                self.ctx.device(i).compute_stream,
                logits[i],
                self.graph.labels[i],
                self.graph.train_masks[i],
                grad_out=logits[i],
                total_train=self.graph.num_train,
                name="loss",
            )
            total += local_loss
        if self.mode is Mode.SYMBOLIC:
            return None
        return total / self.graph.num_train

    # -- backward pass --------------------------------------------------------------------

    def _backward(self, layer_outputs: List[List[DeviceTensor]]) -> None:
        P = self.ctx.num_gpus
        engine = self.ctx.engine
        L = self.model.num_layers
        self._adam_t += 1
        for l in range(L - 1, -1, -1):
            d_in, d_out = self.model.dims_of(l)
            grads = layer_outputs[l]  # holds AHW_G^(l) (mask already applied)
            if l == 0 and self.config.first_layer_skip:
                hwg: Sequence[DeviceTensor] = grads  # §4.4 identity scaling
            else:
                hwg_views = [self.buffers[i].hw_view(d_out) for i in range(P)]
                self._run_spmm(
                    l,
                    "bwd",
                    self.graph.backward_tiles,
                    list(grads),
                    hwg_views,
                    label=f"bwd{l}/spmm",
                )
                hwg = hwg_views
            h_in = (
                self.graph.features if l == 0 else layer_outputs[l - 1]
            )
            wg_events: Dict[int, List[Event]] = {}
            if self.config.batched_submit:
                events = gemm_many(
                    engine,
                    [
                        (self.ctx.device(i).compute_stream,
                         self.cost_models[i], h_in[i], hwg[i],
                         self.wgrads[i][l], ())
                        for i in range(P)
                    ],
                    transpose_a=True,
                    name=f"bwd{l}/wgrad",
                )
                wg_events = {i: [ev] for i, ev in enumerate(events)}
            else:
                for i in range(P):
                    ev = gemm(
                        engine,
                        self.cost_models[i],
                        self.ctx.device(i).compute_stream,
                        h_in[i],
                        hwg[i],
                        self.wgrads[i][l],
                        transpose_a=True,
                        name=f"bwd{l}/wgrad",
                    )
                    wg_events[i] = [ev]
            # Propagate H_G into the previous layer's buffer *before* the
            # weight update (it reads the pre-update W), fusing the ReLU
            # mask of layer l-1's stored activation.
            if l > 0:
                if self.config.batched_submit:
                    gemm_relu_backward_many(
                        engine,
                        [
                            (self.ctx.device(i).compute_stream,
                             self.cost_models[i], hwg[i],
                             self.weights[i][l], layer_outputs[l - 1][i], ())
                            for i in range(P)
                        ],
                        transpose_b=True,
                        name=f"bwd{l}/hgrad",
                    )
                else:
                    for i in range(P):
                        gemm_relu_backward(
                            engine,
                            self.cost_models[i],
                            self.ctx.device(i).compute_stream,
                            hwg[i],
                            self.weights[i][l],
                            layer_outputs[l - 1][i],
                            transpose_b=True,
                            name=f"bwd{l}/hgrad",
                        )
            allreduce_events = self.comm.allreduce(
                {i: self.wgrads[i][l] for i in range(P)},
                op="sum",
                deps_by_rank=wg_events,
                name=f"bwd{l}/allreduce_wg",
            )
            for i in range(P):
                self._adam_step(i, l, deps=[allreduce_events[i]])

    def _adam_step(self, rank: int, layer: int, deps: Sequence[Event]) -> None:
        cost = self.cost_models[rank]
        stream = self.ctx.device(rank).compute_stream
        w = self.weights[rank][layer]
        if self.mode is Mode.FUNCTIONAL:
            adam_step_op(
                self.ctx.engine,
                cost,
                stream,
                w.data,
                self.wgrads[rank][layer].data,
                self.adam_m[rank][layer].data,
                self.adam_v[rank][layer].data,
                # callable, not the bare int: a captured closure must read
                # the live step count on every replayed epoch.
                t=lambda: self._adam_t,
                lr=self.config.lr,
                beta1=0.9,
                beta2=0.999,
                eps=1e-8,
                deps=deps,
                name=f"adam{layer}",
            )
        else:
            self.ctx.engine.submit(
                stream,
                f"adam{layer}",
                "adam",
                cost.adam_time(w.size),
                deps=deps,
                flops=10.0 * w.size,
            )

    # -- epoch loop --------------------------------------------------------------------------

    def train_epoch(self) -> EpochStats:
        """One full-batch epoch; returns its stats.

        With ``capture_epochs`` on, the first eligible epoch is captured
        into an :class:`~repro.plan.ExecutionPlan` and later epochs are
        replayed from it (bit-identical trace, loss, and weights; see
        ``docs/performance.md``). The plan is bypassed/invalidated when a
        fault plan is active, and recaptured when the world signature
        (partitioning, model dims, schedule flags) changes.

        With the training cache enabled, the epoch counter advances here
        (phase: refresh vs serve) and forward broadcasts go through the
        cache for the duration of the epoch; the per-epoch hit/byte
        counters are flushed to telemetry (when a hub is attached) after
        the epoch. At ``cache_staleness_epochs > 0`` the cache phase is
        part of the plan signature, so capture-mode epochs recapture on
        every phase flip — correct but without replay savings; see
        ``docs/caching.md``.
        """
        if self.training_cache is not None:
            self.training_cache.begin_epoch()
            self._cache_active = True
            try:
                stats = self._train_epoch_planned()
            finally:
                self._cache_active = False
            self._flush_cache_telemetry()
            return stats
        return self._train_epoch_planned()

    def _train_epoch_planned(self) -> EpochStats:
        """Capture/replay dispatch (the pre-cache ``train_epoch`` body)."""
        if self.capture_epochs:
            if not self._capture_allowed():
                # never replay through faults — they must surface eagerly.
                self.invalidate_plan()
                self.plan_stats.eager_epochs += 1
                return self._train_epoch_eager()
            sig = self._plan_signature()
            if self._plan is not None and sig != self._plan_sig:
                self.invalidate_plan()
            if self._plan is None:
                return self._capture_epoch(sig)
            return self._replay_epoch()
        self.plan_stats.eager_epochs += 1
        return self._train_epoch_eager()

    def _train_epoch_eager(self) -> EpochStats:
        """The eagerly-scheduled epoch (reference path)."""
        t0 = self.ctx.synchronize()
        trace_start = len(self.ctx.engine.trace)
        layer_outputs = self._forward()
        loss = self._loss(layer_outputs[-1])
        self._backward(layer_outputs)
        t1 = self.ctx.synchronize()
        return self._finish_epoch(t0, t1, loss, trace_start)

    def _capture_epoch(self, sig) -> EpochStats:
        """Run one eager epoch while recording it into a plan."""
        t0 = self.ctx.synchronize()
        trace_start = len(self.ctx.engine.trace)
        capture = PlanCapture(self.ctx.engine)
        capture.begin()
        try:
            layer_outputs = self._forward()
            loss = self._loss(layer_outputs[-1])
            self._backward(layer_outputs)
        finally:
            capture.end()
        t1 = self.ctx.synchronize()
        self._plan = capture.finalize(fuse=self.config.fuse_ops)
        self._plan_sig = sig
        self.plan_stats.captures += 1
        return self._finish_epoch(t0, t1, loss, trace_start)

    def _replay_epoch(self) -> EpochStats:
        """Re-execute the captured plan instead of eager scheduling."""
        t0 = self.ctx.synchronize()
        trace_start = len(self.ctx.engine.trace)
        # _backward normally advances the Adam step; the captured closures
        # read it through their callable ``t``.
        self._adam_t += 1
        result = self._plan.replay(self.ctx.engine, t0)
        t1 = self.ctx.synchronize()
        self.plan_stats.replays += 1
        loss = (
            None
            if self.mode is Mode.SYMBOLIC
            else result.loss_sum / self.graph.num_train
        )
        return self._finish_epoch(t0, t1, loss, trace_start)

    def _finish_epoch(
        self, t0: float, t1: float, loss: Optional[float], trace_start: int
    ) -> EpochStats:
        trace = self.ctx.engine.trace[trace_start:]
        self.epochs_trained += 1
        return EpochStats(
            epoch_time=t1 - t0,
            loss=loss,
            breakdown=OpBreakdown.from_trace(trace),
            peak_memory=self.ctx.peak_memory(),
            trace=list(trace),
        )

    def _flush_cache_telemetry(self) -> None:
        """Push the cache's per-epoch counters into the telemetry hub."""
        telemetry = getattr(self.ctx.engine, "telemetry", None)
        cache = self.training_cache
        if telemetry is None or cache is None:
            return
        epoch = cache.epoch
        telemetry.inc("repro_cache_epochs_total", phase=cache.phase)
        telemetry.inc("repro_cache_rows_hit_total", epoch.hit_rows)
        telemetry.inc("repro_cache_rows_missed_total", epoch.miss_rows)
        telemetry.inc("repro_cache_bytes_saved_total", epoch.bytes_saved)
        telemetry.set_gauge("repro_cache_hit_rate", epoch.hit_rate)
        telemetry.set_gauge(
            "repro_cache_resident_bytes", float(cache.resident_bytes)
        )
        flight_note = getattr(telemetry, "flight_note", None)
        if flight_note is not None:
            flight_note(
                "cache_epoch",
                phase=cache.phase,
                hit_rate=epoch.hit_rate,
                bytes_saved=epoch.bytes_saved,
            )

    # -- plan lifecycle ------------------------------------------------------------------------

    def _capture_allowed(self) -> bool:
        injector = self.config.fault_injector
        return injector is None or injector.is_trivial

    def _plan_signature(self):
        """Everything a captured plan's validity depends on.

        Weights and Adam state are *not* part of the signature — closures
        read them in place — but the partitioning, tensor geometry, and
        schedule-shaping flags are: any of them changing means the
        captured op DAG no longer describes the epoch.
        """
        P = self.ctx.num_gpus
        return (
            P,
            tuple(self.model.layer_dims),
            tuple(self.graph.local_rows(i) for i in range(P)),
            tuple(f.shape for f in self.graph.features),
            self.config.overlap,
            self.config.order_optimization,
            self.config.first_layer_skip,
            self.config.hierarchical_collectives,
            self.config.kernel_backend,
            self.config.fuse_ops,
            self.config.batched_submit,
            self.config.partition_strategy,
            None if self.training_cache is None
            else self.training_cache.plan_token(),
            self.mode,
        )

    def invalidate_plan(self) -> None:
        """Drop the captured plan (next eligible epoch recaptures)."""
        if self._plan is not None:
            self._plan = None
            self._plan_sig = None
            self.plan_stats.invalidations += 1

    def fit(self, epochs: int) -> List[EpochStats]:
        """Train ``epochs`` epochs; returns per-epoch stats."""
        if epochs < 0:
            raise ConfigurationError(f"epochs must be >= 0, got {epochs}")
        return [self.train_epoch() for _ in range(epochs)]

    # -- evaluation ---------------------------------------------------------------------------

    def predict(self) -> np.ndarray:
        """Argmax class predictions for every vertex, in the dataset's
        ORIGINAL vertex order (the §5.2 permutation is inverted), so the
        output aligns with ``dataset.labels``. Functional mode only."""
        if self.mode is not Mode.FUNCTIONAL:
            raise ConfigurationError("predict() requires functional mode")
        logits = self._forward()[-1]
        parts = [np.argmax(logits[i].data, axis=1) for i in range(self.ctx.num_gpus)]
        permuted_order = np.concatenate(parts)
        if self.graph.perm is None:
            return permuted_order
        # permuted_order[perm[v]] is vertex v's prediction
        return permuted_order[self.graph.perm]

    def evaluate(self, split: str = "test") -> float:
        """Accuracy over ``split`` ('train' | 'val' | 'test'), functional only.

        Runs a fresh forward pass (clobbers the shared buffers, which is
        safe between epochs) and scores each rank's local rows.
        """
        if self.mode is not Mode.FUNCTIONAL:
            raise ConfigurationError("evaluate() requires functional mode")
        masks = {
            "train": self.graph.train_masks,
            "val": self.graph.val_masks,
            "test": self.graph.test_masks,
        }
        if split not in masks:
            raise ConfigurationError(f"unknown split {split!r}")
        logits = self._forward()[-1]
        correct = 0
        count = 0
        for i in range(self.ctx.num_gpus):
            mask = masks[split][i]
            if mask is None or not mask.any():
                continue
            pred = np.argmax(logits[i].data[mask], axis=1)
            correct += int((pred == self.graph.labels[i][mask]).sum())
            count += int(mask.sum())
        if count == 0:
            raise ConfigurationError(f"empty {split!r} split")
        return correct / count
