"""MG-GCN core: 1D distribution, multi-stage broadcast SpMM, trainer."""

from repro.core.partitioner import DistributedGraph, partition_dataset
from repro.core.order import ComputeOrder, choose_forward_order
from repro.core.spmm_mg import distributed_spmm
from repro.core.stats import EpochStats, OpBreakdown
from repro.core.trainer import MGGCNTrainer, TrainerConfig

__all__ = [
    "DistributedGraph",
    "partition_dataset",
    "ComputeOrder",
    "choose_forward_order",
    "distributed_spmm",
    "EpochStats",
    "OpBreakdown",
    "MGGCNTrainer",
    "TrainerConfig",
]
