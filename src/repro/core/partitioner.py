"""1D distribution of the graph and features across GPUs (Section 4.1).

The adjacency matrix is (optionally) symmetrically permuted, GCN-
normalised, and tiled with a uniform symmetric partition vector. GPU
``i`` receives:

* the ``i``-th tile *row* of the forward operand :math:`\\hat A^T`
  (tiles :math:`\\hat A^{T,ij}` for all ``j``),
* the ``i``-th tile row of the backward operand :math:`\\hat A`,
* its row block of the features ``H^i``, labels and masks.

Model weights are replicated by the trainer; everything here is fully
partitioned (the paper stresses only ``W`` is replicated).

Symbolic datasets are partitioned analytically: after a random
permutation every ``A^{ij}`` tile holds ``~ m / P^2`` nonzeros in
expectation, which is the whole point of §5.2, so symbolic runs require
``permute=True``.

Two row-partition strategies (``TrainerConfig.partition_strategy``):

* ``"uniform"`` — the paper's symmetric uniform split (relies on the
  permutation for balance);
* ``"resource_aware"`` — CaPGNN-style cost-model split: each row is
  priced at its SpMM memory traffic plus its broadcast bytes, and each
  rank's share is scaled by its modelled link bandwidth, so slow-NIC
  ranks receive fewer rows. Symbolic datasets fall back to uniform
  (after the permutation rows are exchangeable, so the uniform split
  *is* the expected resource-aware one on a homogeneous machine).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.config import FLOAT_DTYPE, FLOAT_SIZE, INDEX_SIZE
from repro.device.engine import SimContext
from repro.device.memory import Allocation
from repro.device.tensor import DeviceTensor, Mode
from repro.errors import ConfigurationError, PartitionError
from repro.datasets.loader import Dataset, SymbolicDataset
from repro.sparse.csr import CSRMatrix
from repro.sparse.normalize import gcn_normalize
from repro.sparse.partition import (
    PartitionVector,
    tile_grid,
    tile_nnz_matrix,
    uniform_partition,
    weighted_cost_partition,
)
from repro.sparse.permutation import (
    apply_permutation,
    permute_rows,
    random_permutation,
)
from repro.sparse.symbolic import SymbolicCSR
from repro.utils.rng import SeedLike

AnyTile = Union[CSRMatrix, SymbolicCSR]

PARTITION_STRATEGIES = ("uniform", "resource_aware")


@dataclass
class DistributedGraph:
    """Per-rank graph/feature shards plus the partition metadata."""

    part: PartitionVector
    #: forward_tiles[i][j] multiplies the stage-j broadcast on GPU i
    #: (tile row i of A_hat^T).
    forward_tiles: List[List[AnyTile]]
    #: backward_tiles[i][j]: tile row i of A_hat.
    backward_tiles: List[List[AnyTile]]
    #: per-rank feature tensors H^i (device-resident).
    features: List[DeviceTensor]
    #: per-rank labels/train masks (None in symbolic mode).
    labels: List[Optional[np.ndarray]]
    train_masks: List[Optional[np.ndarray]]
    val_masks: List[Optional[np.ndarray]]
    test_masks: List[Optional[np.ndarray]]
    #: global number of training vertices (loss normaliser).
    num_train: int
    #: vertex permutation applied (new = perm[old]); identity if none.
    perm: Optional[np.ndarray]
    #: adjacency-storage reservations (kept so they stay accounted).
    adjacency_allocs: List[Allocation] = field(default_factory=list)
    #: row-partition strategy that produced ``part``.
    strategy: str = "uniform"

    @property
    def num_parts(self) -> int:
        return self.part.num_parts

    @property
    def max_part_rows(self) -> int:
        return max(self.part.sizes())

    def local_rows(self, rank: int) -> int:
        return self.part.size(rank)

    def stage_nnz(self, rank: int, direction: str = "forward") -> List[int]:
        """nnz of each stage's tile on ``rank`` (load-balance diagnostic)."""
        tiles = self.forward_tiles if direction == "forward" else self.backward_tiles
        return [int(t.nnz) for t in tiles[rank]]


def partition_dataset(
    ctx: SimContext,
    dataset: Union[Dataset, SymbolicDataset],
    permute: bool = True,
    seed: SeedLike = None,
    strategy: str = "uniform",
) -> DistributedGraph:
    """Distribute ``dataset`` over the context's GPUs per Section 4.1."""
    if strategy not in PARTITION_STRATEGIES:
        raise ConfigurationError(
            f"unknown partition strategy {strategy!r}; "
            f"choose from {PARTITION_STRATEGIES}"
        )
    if dataset.is_symbolic:
        if ctx.mode is not Mode.SYMBOLIC:
            raise ConfigurationError(
                "symbolic dataset requires a SYMBOLIC SimContext"
            )
        # after the §5.2 permutation rows are exchangeable, so on the
        # expectation model the uniform split *is* the resource-aware
        # one; record the uniform fallback honestly.
        return _partition_symbolic(ctx, dataset, permute)
    if ctx.mode is not Mode.FUNCTIONAL:
        raise ConfigurationError("functional dataset requires a FUNCTIONAL SimContext")
    return _partition_functional(ctx, dataset, permute, seed, strategy)


def resource_aware_partition(
    machine,
    topology,
    matrix: CSRMatrix,
    feature_dim: int,
    parts: int,
) -> PartitionVector:
    """CaPGNN-style cost-model row partition.

    Each row is priced at its SpMM memory traffic (``nnz`` times one
    index + one operand read + one accumulate, over the GPU's HBM
    bandwidth) plus the bytes its embedding row pushes through the
    stage broadcast (over the collective's modelled bandwidth). Rank
    capacities blend each GPU's normalised injection bandwidth with a
    flat compute share, weighted by the communication fraction of the
    total cost — on a homogeneous switch machine this degenerates to
    plain cost balancing, on mixed-link meshes slow-NIC ranks receive
    fewer rows.
    """
    row_nnz = np.diff(matrix.indptr).astype(np.float64)
    t_nnz = (INDEX_SIZE + 2 * FLOAT_SIZE) / machine.gpu.memory_bandwidth
    ranks = list(range(parts))
    t_row_comm = 0.0
    if parts > 1:
        t_row_comm = (
            feature_dim * FLOAT_SIZE / topology.collective_bandwidth(ranks)
        )
    row_costs = row_nnz * t_nnz + t_row_comm
    injection = np.array(
        [machine.injection_bandwidth(r) for r in ranks], dtype=np.float64
    )
    injection /= injection.mean()
    total = float(row_costs.sum())
    comm_frac = (t_row_comm * matrix.shape[0]) / total if total > 0 else 0.0
    capacities = comm_frac * injection + (1.0 - comm_frac)
    return weighted_cost_partition(row_costs, capacities)


def stage_degree_scores(
    graph: DistributedGraph, direction: str = "forward"
) -> Optional[List[np.ndarray]]:
    """Frontier degree of every broadcast row, per stage.

    ``scores[j][r]`` counts the stored entries, across every *consumer*
    rank's stage-``j`` tile, that read row ``r`` of partition ``j``'s
    broadcast tile — the admission ranking of the training-time cache
    (rank ``j`` reads its own tile in place, so it is excluded).
    Returns None for symbolic tilings (no concrete indices to count).
    """
    tiles = (
        graph.forward_tiles if direction == "forward" else graph.backward_tiles
    )
    P = graph.num_parts
    scores: List[np.ndarray] = []
    for j in range(P):
        size_j = graph.part.size(j)
        acc = np.zeros(size_j, dtype=np.int64)
        for i in range(P):
            if i == j:
                continue
            indices = getattr(tiles[i][j], "indices", None)
            if indices is None:
                return None
            acc += np.bincount(indices, minlength=size_j)
        scores.append(acc)
    return scores


def _imbalance(values: Sequence[float]) -> float:
    mean = sum(values) / len(values)
    return max(values) / mean if mean else 1.0


def partition_quality(graph: DistributedGraph) -> dict:
    """Per-rank load/byte balance diagnostics (CLI + tests)."""
    P = graph.num_parts
    rows = graph.part.sizes()
    nnz = [sum(graph.stage_nnz(i, "forward")) for i in range(P)]
    feature_bytes = [int(t.nbytes) for t in graph.features]
    return {
        "strategy": graph.strategy,
        "rows": rows,
        "nnz": nnz,
        "feature_bytes": feature_bytes,
        "row_imbalance": _imbalance(rows),
        "nnz_imbalance": _imbalance(nnz),
        "byte_imbalance": _imbalance(feature_bytes),
    }


def preview_partition(
    dataset: Union[Dataset, SymbolicDataset],
    machine,
    parts: int,
    strategy: str = "uniform",
    permute: bool = True,
    seed: SeedLike = None,
) -> dict:
    """Partition-quality preview without building a SimContext.

    The ``repro parallel plan`` CLI calls this to print per-rank
    nnz/byte balance next to the planner's estimates. Symbolic datasets
    report the analytic (post-permutation expectation) balance, which
    is uniform by construction.
    """
    if strategy not in PARTITION_STRATEGIES:
        raise ConfigurationError(
            f"unknown partition strategy {strategy!r}; "
            f"choose from {PARTITION_STRATEGIES}"
        )
    if dataset.is_symbolic:
        part = uniform_partition(dataset.n, parts)
        rows = part.sizes()
        nnz = [dataset.m // parts] * parts
        feature_bytes = [r * dataset.d0 * FLOAT_SIZE for r in rows]
        effective = "uniform"
    else:
        adj = dataset.adjacency
        if permute:
            perm = random_permutation(dataset.n, seed=seed)
            adj = apply_permutation(adj, perm)
        a_hat_t = gcn_normalize(adj).transpose()
        d = int(dataset.features.shape[1])
        if strategy == "resource_aware" and parts > 1:
            from repro.hardware.topology import Topology

            part = resource_aware_partition(
                machine, Topology(machine), a_hat_t, d, parts
            )
        else:
            part = uniform_partition(dataset.n, parts)
        grid = tile_nnz_matrix(a_hat_t, part, part)
        rows = part.sizes()
        nnz = [int(x) for x in grid.sum(axis=1)]
        feature_bytes = [r * d * FLOAT_SIZE for r in rows]
        effective = strategy
    return {
        "strategy": effective,
        "rows": rows,
        "nnz": nnz,
        "feature_bytes": feature_bytes,
        "row_imbalance": _imbalance(rows),
        "nnz_imbalance": _imbalance(nnz),
        "byte_imbalance": _imbalance(feature_bytes),
    }


def _partition_functional(
    ctx: SimContext, dataset: Dataset, permute: bool, seed: SeedLike,
    strategy: str = "uniform",
) -> DistributedGraph:
    P = ctx.num_gpus
    n = dataset.n
    adj = dataset.adjacency
    perm: Optional[np.ndarray] = None
    features = dataset.features
    labels = dataset.labels
    train, val, test = dataset.train_mask, dataset.val_mask, dataset.test_mask
    if permute:
        perm = random_permutation(n, seed=seed)
        adj = apply_permutation(adj, perm)
        features = permute_rows(features, perm)
        labels = permute_rows(labels, perm)
        train = permute_rows(train, perm)
        val = permute_rows(val, perm)
        test = permute_rows(test, perm)

    a_hat = gcn_normalize(adj)
    a_hat_t = a_hat.transpose()
    if strategy == "resource_aware" and P > 1:
        part = resource_aware_partition(
            ctx.machine, ctx.topology, a_hat_t,
            int(features.shape[1]), P,
        )
    else:
        part = uniform_partition(n, P)
    fwd = tile_grid(a_hat_t, part, part)
    bwd = tile_grid(a_hat, part, part)

    feat_tensors: List[DeviceTensor] = []
    labels_by_rank: List[Optional[np.ndarray]] = []
    train_by_rank: List[Optional[np.ndarray]] = []
    val_by_rank: List[Optional[np.ndarray]] = []
    test_by_rank: List[Optional[np.ndarray]] = []
    allocs: List[Allocation] = []
    for i in range(P):
        r0, r1 = part.part(i)
        dev = ctx.device(i)
        feat_tensors.append(
            dev.from_numpy(
                np.ascontiguousarray(features[r0:r1], dtype=FLOAT_DTYPE),
                name=f"X{i}",
                tag="features",
            )
        )
        labels_by_rank.append(labels[r0:r1].copy())
        train_by_rank.append(train[r0:r1].copy())
        val_by_rank.append(val[r0:r1].copy())
        test_by_rank.append(test[r0:r1].copy())
        tile_bytes = sum(t.nbytes for t in fwd[i]) + sum(t.nbytes for t in bwd[i])
        allocs.append(dev.pool.allocate(tile_bytes, tag="adjacency"))

    return DistributedGraph(
        part=part,
        forward_tiles=fwd,
        backward_tiles=bwd,
        features=feat_tensors,
        labels=labels_by_rank,
        train_masks=train_by_rank,
        val_masks=val_by_rank,
        test_masks=test_by_rank,
        num_train=dataset.num_train,
        perm=perm,
        adjacency_allocs=allocs,
        strategy=strategy,
    )


def _partition_symbolic(
    ctx: SimContext, dataset: SymbolicDataset, permute: bool
) -> DistributedGraph:
    if not permute:
        raise ConfigurationError(
            "symbolic runs model the permuted (balanced) distribution; "
            "original-ordering studies require a functional dataset"
        )
    P = ctx.num_gpus
    n, m = dataset.n, dataset.m
    part = uniform_partition(n, P)

    def tile_rows(i: int, j: int) -> SymbolicCSR:
        # balanced expectation: every tile holds ~ m / P^2 nonzeros,
        # distributed like the tile areas so totals match exactly.
        area = part.size(i) * part.size(j)
        total_area = n * n
        nnz = int(round(m * (area / total_area))) if total_area else 0
        return SymbolicCSR((part.size(i), part.size(j)), nnz)

    fwd = [[tile_rows(i, j) for j in range(P)] for i in range(P)]
    bwd = [[tile_rows(i, j) for j in range(P)] for i in range(P)]

    feat_tensors: List[DeviceTensor] = []
    allocs: List[Allocation] = []
    for i in range(P):
        dev = ctx.device(i)
        feat_tensors.append(
            dev.symbolic((part.size(i), dataset.d0), name=f"X{i}", tag="features")
        )
        tile_bytes = sum(t.nbytes for t in fwd[i]) + sum(t.nbytes for t in bwd[i])
        allocs.append(dev.pool.allocate(tile_bytes, tag="adjacency"))

    none_list: List[Optional[np.ndarray]] = [None] * P
    return DistributedGraph(
        part=part,
        forward_tiles=fwd,
        backward_tiles=bwd,
        features=feat_tensors,
        labels=list(none_list),
        train_masks=list(none_list),
        val_masks=list(none_list),
        test_masks=list(none_list),
        num_train=dataset.num_train,
        perm=None,
        adjacency_allocs=allocs,
    )
