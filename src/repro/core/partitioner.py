"""1D distribution of the graph and features across GPUs (Section 4.1).

The adjacency matrix is (optionally) symmetrically permuted, GCN-
normalised, and tiled with a uniform symmetric partition vector. GPU
``i`` receives:

* the ``i``-th tile *row* of the forward operand :math:`\\hat A^T`
  (tiles :math:`\\hat A^{T,ij}` for all ``j``),
* the ``i``-th tile row of the backward operand :math:`\\hat A`,
* its row block of the features ``H^i``, labels and masks.

Model weights are replicated by the trainer; everything here is fully
partitioned (the paper stresses only ``W`` is replicated).

Symbolic datasets are partitioned analytically: after a random
permutation every ``A^{ij}`` tile holds ``~ m / P^2`` nonzeros in
expectation, which is the whole point of §5.2, so symbolic runs require
``permute=True``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.config import FLOAT_DTYPE
from repro.device.engine import SimContext
from repro.device.memory import Allocation
from repro.device.tensor import DeviceTensor, Mode
from repro.errors import ConfigurationError, PartitionError
from repro.datasets.loader import Dataset, SymbolicDataset
from repro.sparse.csr import CSRMatrix
from repro.sparse.normalize import gcn_normalize
from repro.sparse.partition import PartitionVector, tile_grid, uniform_partition
from repro.sparse.permutation import (
    apply_permutation,
    permute_rows,
    random_permutation,
)
from repro.sparse.symbolic import SymbolicCSR
from repro.utils.rng import SeedLike

AnyTile = Union[CSRMatrix, SymbolicCSR]


@dataclass
class DistributedGraph:
    """Per-rank graph/feature shards plus the partition metadata."""

    part: PartitionVector
    #: forward_tiles[i][j] multiplies the stage-j broadcast on GPU i
    #: (tile row i of A_hat^T).
    forward_tiles: List[List[AnyTile]]
    #: backward_tiles[i][j]: tile row i of A_hat.
    backward_tiles: List[List[AnyTile]]
    #: per-rank feature tensors H^i (device-resident).
    features: List[DeviceTensor]
    #: per-rank labels/train masks (None in symbolic mode).
    labels: List[Optional[np.ndarray]]
    train_masks: List[Optional[np.ndarray]]
    val_masks: List[Optional[np.ndarray]]
    test_masks: List[Optional[np.ndarray]]
    #: global number of training vertices (loss normaliser).
    num_train: int
    #: vertex permutation applied (new = perm[old]); identity if none.
    perm: Optional[np.ndarray]
    #: adjacency-storage reservations (kept so they stay accounted).
    adjacency_allocs: List[Allocation] = field(default_factory=list)

    @property
    def num_parts(self) -> int:
        return self.part.num_parts

    @property
    def max_part_rows(self) -> int:
        return max(self.part.sizes())

    def local_rows(self, rank: int) -> int:
        return self.part.size(rank)

    def stage_nnz(self, rank: int, direction: str = "forward") -> List[int]:
        """nnz of each stage's tile on ``rank`` (load-balance diagnostic)."""
        tiles = self.forward_tiles if direction == "forward" else self.backward_tiles
        return [int(t.nnz) for t in tiles[rank]]


def partition_dataset(
    ctx: SimContext,
    dataset: Union[Dataset, SymbolicDataset],
    permute: bool = True,
    seed: SeedLike = None,
) -> DistributedGraph:
    """Distribute ``dataset`` over the context's GPUs per Section 4.1."""
    if dataset.is_symbolic:
        if ctx.mode is not Mode.SYMBOLIC:
            raise ConfigurationError(
                "symbolic dataset requires a SYMBOLIC SimContext"
            )
        return _partition_symbolic(ctx, dataset, permute)
    if ctx.mode is not Mode.FUNCTIONAL:
        raise ConfigurationError("functional dataset requires a FUNCTIONAL SimContext")
    return _partition_functional(ctx, dataset, permute, seed)


def _partition_functional(
    ctx: SimContext, dataset: Dataset, permute: bool, seed: SeedLike
) -> DistributedGraph:
    P = ctx.num_gpus
    n = dataset.n
    adj = dataset.adjacency
    perm: Optional[np.ndarray] = None
    features = dataset.features
    labels = dataset.labels
    train, val, test = dataset.train_mask, dataset.val_mask, dataset.test_mask
    if permute:
        perm = random_permutation(n, seed=seed)
        adj = apply_permutation(adj, perm)
        features = permute_rows(features, perm)
        labels = permute_rows(labels, perm)
        train = permute_rows(train, perm)
        val = permute_rows(val, perm)
        test = permute_rows(test, perm)

    a_hat = gcn_normalize(adj)
    a_hat_t = a_hat.transpose()
    part = uniform_partition(n, P)
    fwd = tile_grid(a_hat_t, part, part)
    bwd = tile_grid(a_hat, part, part)

    feat_tensors: List[DeviceTensor] = []
    labels_by_rank: List[Optional[np.ndarray]] = []
    train_by_rank: List[Optional[np.ndarray]] = []
    val_by_rank: List[Optional[np.ndarray]] = []
    test_by_rank: List[Optional[np.ndarray]] = []
    allocs: List[Allocation] = []
    for i in range(P):
        r0, r1 = part.part(i)
        dev = ctx.device(i)
        feat_tensors.append(
            dev.from_numpy(
                np.ascontiguousarray(features[r0:r1], dtype=FLOAT_DTYPE),
                name=f"X{i}",
                tag="features",
            )
        )
        labels_by_rank.append(labels[r0:r1].copy())
        train_by_rank.append(train[r0:r1].copy())
        val_by_rank.append(val[r0:r1].copy())
        test_by_rank.append(test[r0:r1].copy())
        tile_bytes = sum(t.nbytes for t in fwd[i]) + sum(t.nbytes for t in bwd[i])
        allocs.append(dev.pool.allocate(tile_bytes, tag="adjacency"))

    return DistributedGraph(
        part=part,
        forward_tiles=fwd,
        backward_tiles=bwd,
        features=feat_tensors,
        labels=labels_by_rank,
        train_masks=train_by_rank,
        val_masks=val_by_rank,
        test_masks=test_by_rank,
        num_train=dataset.num_train,
        perm=perm,
        adjacency_allocs=allocs,
    )


def _partition_symbolic(
    ctx: SimContext, dataset: SymbolicDataset, permute: bool
) -> DistributedGraph:
    if not permute:
        raise ConfigurationError(
            "symbolic runs model the permuted (balanced) distribution; "
            "original-ordering studies require a functional dataset"
        )
    P = ctx.num_gpus
    n, m = dataset.n, dataset.m
    part = uniform_partition(n, P)

    def tile_rows(i: int, j: int) -> SymbolicCSR:
        # balanced expectation: every tile holds ~ m / P^2 nonzeros,
        # distributed like the tile areas so totals match exactly.
        area = part.size(i) * part.size(j)
        total_area = n * n
        nnz = int(round(m * (area / total_area))) if total_area else 0
        return SymbolicCSR((part.size(i), part.size(j)), nnz)

    fwd = [[tile_rows(i, j) for j in range(P)] for i in range(P)]
    bwd = [[tile_rows(i, j) for j in range(P)] for i in range(P)]

    feat_tensors: List[DeviceTensor] = []
    allocs: List[Allocation] = []
    for i in range(P):
        dev = ctx.device(i)
        feat_tensors.append(
            dev.symbolic((part.size(i), dataset.d0), name=f"X{i}", tag="features")
        )
        tile_bytes = sum(t.nbytes for t in fwd[i]) + sum(t.nbytes for t in bwd[i])
        allocs.append(dev.pool.allocate(tile_bytes, tag="adjacency"))

    none_list: List[Optional[np.ndarray]] = [None] * P
    return DistributedGraph(
        part=part,
        forward_tiles=fwd,
        backward_tiles=bwd,
        features=feat_tensors,
        labels=list(none_list),
        train_masks=list(none_list),
        val_masks=list(none_list),
        test_masks=list(none_list),
        num_train=dataset.num_train,
        perm=None,
        adjacency_allocs=allocs,
    )
