"""Epoch statistics: per-op breakdown, timings, memory, stage timelines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.device.engine import TraceEvent

#: op categories reported in Fig. 5's breakdown, in the figure's order.
BREAKDOWN_CATEGORIES: Tuple[str, ...] = (
    "activation",
    "adam",
    "gemm",
    "loss",
    "spmm",
)


@dataclass(frozen=True)
class OpBreakdown:
    """Total simulated op time per category (summed across devices)."""

    totals: Dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.totals.values())

    def percentage(self, category: str) -> float:
        """Share of ``category`` within the Fig. 5 categories, percent."""
        denom = sum(self.totals.get(c, 0.0) for c in BREAKDOWN_CATEGORIES)
        if denom == 0.0:
            return 0.0
        return 100.0 * self.totals.get(category, 0.0) / denom

    def percentages(self) -> Dict[str, float]:
        return {c: self.percentage(c) for c in BREAKDOWN_CATEGORIES}

    @classmethod
    def from_trace(cls, trace: List[TraceEvent]) -> "OpBreakdown":
        totals: Dict[str, float] = {}
        for ev in trace:
            totals[ev.category] = totals.get(ev.category, 0.0) + ev.duration
        return cls(totals)


@dataclass
class EpochStats:
    """Everything measured about one training epoch."""

    #: simulated wall-clock duration of the epoch (max over devices).
    epoch_time: float
    #: training loss (None for symbolic runs).
    loss: Optional[float]
    breakdown: OpBreakdown
    #: peak device memory over the epoch, bytes (max over GPUs).
    peak_memory: int
    #: the raw trace of the epoch (for timeline rendering).
    trace: List[TraceEvent] = field(default_factory=list)

    def category_time(self, category: str) -> float:
        return self.breakdown.totals.get(category, 0.0)

    @property
    def comm_time(self) -> float:
        return self.category_time("comm")

    @property
    def spmm_time(self) -> float:
        return self.category_time("spmm")
