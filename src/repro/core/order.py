"""Computation-order selection (Section 4.4).

For one layer, ``A^T H W`` can be evaluated as ``A^T (H W)`` (GeMM first)
or ``(A^T H) W`` (SpMM first). The SpMM — and the broadcast feeding it —
runs over the operand's width, so the cheaper order is the one that puts
the *narrower* matrix through the SpMM:

* ``d_in < d_out``  -> SpMM first (propagate the d_in-wide features);
* ``d_in >= d_out`` -> GeMM first (shrink to d_out, then propagate).

The backward pass order is fixed (Fig. 4b): ReLU' -> SpMM -> GeMMs,
because the weight gradient (eq. (10)) needs the SpMM result.
"""

from __future__ import annotations

import enum
from typing import List, Sequence

from repro.errors import ConfigurationError


class ComputeOrder(enum.Enum):
    """Which dense/sparse product runs first in a layer's forward pass."""

    GEMM_FIRST = "gemm_first"
    SPMM_FIRST = "spmm_first"


def choose_forward_order(
    d_in: int, d_out: int, order_optimization: bool = True
) -> ComputeOrder:
    """The order for one layer; without optimisation, always GeMM first
    (the textbook eq. (5)-(6) order)."""
    if d_in <= 0 or d_out <= 0:
        raise ConfigurationError(f"invalid layer widths ({d_in}, {d_out})")
    if order_optimization and d_in < d_out:
        return ComputeOrder.SPMM_FIRST
    return ComputeOrder.GEMM_FIRST


def forward_orders(
    layer_dims: Sequence[int], order_optimization: bool = True
) -> List[ComputeOrder]:
    """Per-layer orders for a full model."""
    return [
        choose_forward_order(layer_dims[l], layer_dims[l + 1], order_optimization)
        for l in range(len(layer_dims) - 1)
    ]


def broadcast_width(
    d_in: int, d_out: int, order_optimization: bool = True
) -> int:
    """Width of the tiles broadcast during the layer's forward SpMM."""
    order = choose_forward_order(d_in, d_out, order_optimization)
    return d_in if order is ComputeOrder.SPMM_FIRST else d_out


def max_broadcast_width(
    layer_dims: Sequence[int], order_optimization: bool = True
) -> int:
    """Broadcast-buffer width required over forward and backward passes.

    Forward broadcasts the chosen-order operand; the backward SpMM of
    layer ``l`` broadcasts the ``d_{l+1}``-wide gradient tiles.
    """
    widths = []
    for l in range(len(layer_dims) - 1):
        widths.append(
            broadcast_width(layer_dims[l], layer_dims[l + 1], order_optimization)
        )
        widths.append(layer_dims[l + 1])  # backward
    return max(widths)
