"""Weight initialisation.

Glorot/Xavier uniform, the GCN reference initialisation (Kipf &
Welling). All trainers initialise from the same seed so that functional
equivalence between the reference, the multi-GPU trainer and the
baselines can be asserted weight-for-weight.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.config import FLOAT_DTYPE
from repro.utils.rng import SeedLike, as_generator


def glorot_uniform(
    fan_in: int, fan_out: int, seed: SeedLike = None
) -> np.ndarray:
    """A (fan_in, fan_out) Glorot-uniform weight matrix, float32."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(f"invalid fan dims ({fan_in}, {fan_out})")
    rng = as_generator(seed)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out)).astype(FLOAT_DTYPE)


def init_weights(layer_dims: Sequence[int], seed: SeedLike = None) -> List[np.ndarray]:
    """Weight matrices ``W^(l)`` of shape ``(d_l, d_{l+1})`` for every layer.

    A single generator is threaded through the layers so the whole
    parameter set is a deterministic function of one seed.
    """
    if len(layer_dims) < 2:
        raise ValueError(f"need at least input+output dims, got {layer_dims!r}")
    rng = as_generator(seed)
    return [
        glorot_uniform(layer_dims[l], layer_dims[l + 1], seed=rng)
        for l in range(len(layer_dims) - 1)
    ]
