"""Buffer managers: the paper's shared-buffer scheme vs eager baselines.

Section 4.2: an L-layer GCN needs only ``L + 3`` feature-sized buffers —

* one output buffer ``AHW^(l)`` per layer (its forward output is later
  overwritten by the gradient flowing to that layer, eqs. (18)/(21));
* one ``HW`` scratch buffer shared by every layer's GeMM/SpMM pair and
  by the backward ``HW_G`` (eqs. (16)/(20));
* broadcast buffers ``BC1`` (and ``BC2`` when communication/computation
  overlap double-buffers the incoming tile, §4.3).

Frameworks without buffer sharing (DGL, CAGNET) materialise the output
of SpMM, GeMM and the activation separately and keep them live for the
backward pass — several buffers per layer. :class:`EagerBufferManager`
models that, and the contrast is Figure 12's memory-vs-layers study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import FLOAT_SIZE
from repro.device.device import VirtualGPU
from repro.device.tensor import DeviceTensor
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BufferPlan:
    """Static accounting of a buffer scheme (no allocation).

    ``rows`` is the device-local row count, ``bc_rows`` the largest
    broadcast tile height (0 on a single GPU).
    """

    layer_dims: Tuple[int, ...]
    rows: int
    bc_rows: int = 0
    scheme: str = "shared"
    overlap: bool = True
    #: live feature-sized buffers per layer for the eager scheme.
    eager_buffers_per_layer: int = 3
    itemsize: int = FLOAT_SIZE

    def __post_init__(self) -> None:
        if self.scheme not in ("shared", "eager"):
            raise ConfigurationError(f"unknown buffer scheme {self.scheme!r}")
        if len(self.layer_dims) < 2:
            raise ConfigurationError("layer_dims needs input and output widths")

    @property
    def num_layers(self) -> int:
        return len(self.layer_dims) - 1

    @property
    def num_buffers(self) -> int:
        """Feature-sized buffer count (the paper's L+3 vs ~k*L)."""
        if self.scheme == "shared":
            bc = (2 if self.overlap else 1) if self.bc_rows > 0 else 0
            return self.num_layers + 1 + bc  # outputs + HW + broadcasts
        return self.num_layers * self.eager_buffers_per_layer

    @property
    def total_bytes(self) -> int:
        if self.scheme == "shared":
            out_bytes = sum(
                self.rows * d * self.itemsize for d in self.layer_dims[1:]
            )
            hw_bytes = self.rows * max(self.layer_dims[1:]) * self.itemsize
            bc_count = (2 if self.overlap else 1) if self.bc_rows > 0 else 0
            bc_bytes = bc_count * self.bc_rows * max(self.layer_dims[1:]) * self.itemsize
            return out_bytes + hw_bytes + bc_bytes
        per_layer = [
            self.eager_buffers_per_layer * self.rows * d * self.itemsize
            for d in self.layer_dims[1:]
        ]
        return sum(per_layer)


class SharedBufferManager:
    """Allocates and hands out the paper's L+3 shared buffers on a device."""

    def __init__(
        self,
        device: VirtualGPU,
        local_rows: int,
        layer_dims: Sequence[int],
        bc_rows: int = 0,
        bc_dim: int = 0,
        overlap: bool = True,
    ):
        if local_rows < 0 or bc_rows < 0 or bc_dim < 0:
            raise ConfigurationError("negative buffer geometry")
        self.device = device
        self.local_rows = int(local_rows)
        self.layer_dims = tuple(int(d) for d in layer_dims)
        self.bc_rows = int(bc_rows)
        self.bc_dim = int(bc_dim)
        self.overlap = overlap
        L = len(self.layer_dims) - 1
        if L < 1:
            raise ConfigurationError("layer_dims needs input and output widths")

        #: per-layer output buffers AHW^(l), shape (rows, d_{l+1}).
        self.layer_out: List[DeviceTensor] = [
            device.empty(
                (self.local_rows, self.layer_dims[l + 1]),
                name=f"AHW{l}",
                tag="buffer/layer_out",
            )
            for l in range(L)
        ]
        # The HW scratch holds HW/AH in forward and HW_G in backward.
        # Under the §4.4 order policy SpMM-first is chosen only when
        # d_in < d_out, so every operand it ever holds is at most
        # max(layer_dims[1:]) wide (the input width d0 never appears).
        self.hw = device.empty(
            (self.local_rows, max(self.layer_dims[1:])),
            name="HW",
            tag="buffer/hw",
        )
        #: broadcast buffers (present only in multi-GPU runs).
        self.bc: List[DeviceTensor] = []
        if self.bc_rows > 0 and self.bc_dim > 0:
            count = 2 if overlap else 1
            self.bc = [
                device.empty(
                    (self.bc_rows, self.bc_dim),
                    name=f"BC{i + 1}",
                    tag="buffer/broadcast",
                )
                for i in range(count)
            ]
        # View caches: the same (cols) / (index, rows, cols) views are
        # requested every layer of every epoch; views share the backing
        # buffer's memory, so handing out one cached object per geometry
        # is safe — and it keeps captured plan closures pointed at the
        # exact tensors the schedule re-uses.
        self._hw_views: Dict[int, DeviceTensor] = {}
        self._bc_views: Dict[Tuple[int, int, int], DeviceTensor] = {}

    @property
    def num_layers(self) -> int:
        return len(self.layer_out)

    @property
    def num_buffers(self) -> int:
        return self.num_layers + 1 + len(self.bc)

    def layer_output(self, layer: int) -> DeviceTensor:
        """The output buffer of ``layer`` (also its incoming-gradient home)."""
        return self.layer_out[layer]

    def hw_view(self, cols: int) -> DeviceTensor:
        """A (rows, cols) view of the shared HW scratch (cached)."""
        view = self._hw_views.get(cols)
        if view is None:
            if cols > self.hw.cols:
                raise ConfigurationError(
                    f"HW scratch is {self.hw.cols} wide; requested {cols}"
                )
            view = self._hw_views[cols] = self.hw.view2d(self.hw.rows, cols)
        return view

    def bc_view(self, index: int, rows: int, cols: int) -> DeviceTensor:
        """A (rows, cols) view of broadcast buffer ``index`` (cached)."""
        if not self.bc:
            raise ConfigurationError("no broadcast buffers on a single GPU")
        slot = index % len(self.bc)
        key = (slot, rows, cols)
        view = self._bc_views.get(key)
        if view is None:
            buf = self.bc[slot]
            if rows > buf.rows or cols > buf.cols:
                raise ConfigurationError(
                    f"broadcast view ({rows}, {cols}) exceeds buffer "
                    f"({buf.rows}, {buf.cols})"
                )
            view = self._bc_views[key] = buf.view2d(rows, cols)
        return view

    def free(self) -> None:
        """Release every owned buffer."""
        self._hw_views.clear()
        self._bc_views.clear()
        for t in self.layer_out:
            t.free()
        self.hw.free()
        for t in self.bc:
            t.free()


class EagerBufferManager:
    """Baseline scheme: per-layer, per-op buffers, all live at once.

    Models DGL/CAGNET-style frameworks that materialise SpMM, GeMM and
    activation outputs separately and retain them for the backward pass.
    """

    def __init__(
        self,
        device: VirtualGPU,
        local_rows: int,
        layer_dims: Sequence[int],
        buffers_per_layer: int = 3,
        bc_rows: int = 0,
        bc_dim: int = 0,
    ):
        if buffers_per_layer < 1:
            raise ConfigurationError(
                f"buffers_per_layer must be >= 1, got {buffers_per_layer}"
            )
        self.device = device
        self.local_rows = int(local_rows)
        self.layer_dims = tuple(int(d) for d in layer_dims)
        self.buffers_per_layer = buffers_per_layer
        #: layer -> list of live buffers.
        self.layers: Dict[int, List[DeviceTensor]] = {}
        for l in range(len(self.layer_dims) - 1):
            d_out = self.layer_dims[l + 1]
            self.layers[l] = [
                device.empty(
                    (self.local_rows, d_out),
                    name=f"L{l}/buf{i}",
                    tag="buffer/eager",
                )
                for i in range(buffers_per_layer)
            ]
        #: a single (re-used per stage) receive buffer for CAGNET-style
        #: broadcast algorithms; DGL (single-GPU) passes bc_rows=0.
        self.bc: Optional[DeviceTensor] = None
        if bc_rows > 0 and bc_dim > 0:
            self.bc = device.empty((bc_rows, bc_dim), name="BC", tag="buffer/broadcast")

    @property
    def num_buffers(self) -> int:
        return sum(len(v) for v in self.layers.values()) + (1 if self.bc else 0)

    def layer_buffer(self, layer: int, index: int) -> DeviceTensor:
        return self.layers[layer][index]

    def free(self) -> None:
        for buffers in self.layers.values():
            for t in buffers:
                t.free()
        if self.bc is not None:
            self.bc.free()
