"""GCN model specification.

The paper evaluates four fixed architectures (Section 6, "Model"):

1. 2 layers, hidden 512 — CAGNET/DGL comparisons;
2. 2 layers, hidden 16 — DistGNN comparison on Reddit;
3. 3 layers, hidden 256 — DistGNN comparison on Products/Proteins/Papers;
4. 3 layers, hidden 208 — Papers on DGX-A100 (largest hidden size that fits).

:func:`GCNModelSpec.paper_model` builds them by number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class GCNModelSpec:
    """Architecture of an L-layer GCN: dimensions only, no parameters."""

    #: per-layer widths, length L+1: [d0, hidden..., num_classes].
    layer_dims: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.layer_dims) < 2:
            raise ConfigurationError(
                f"a GCN needs >= 1 layer (2 dims), got {self.layer_dims!r}"
            )
        if any(d <= 0 for d in self.layer_dims):
            raise ConfigurationError(
                f"non-positive layer width in {self.layer_dims!r}"
            )

    @classmethod
    def build(
        cls, input_dim: int, hidden_dim: int, num_classes: int, num_layers: int
    ) -> "GCNModelSpec":
        """An L-layer GCN with uniform hidden width."""
        if num_layers < 1:
            raise ConfigurationError(f"num_layers must be >= 1, got {num_layers}")
        dims = [input_dim] + [hidden_dim] * (num_layers - 1) + [num_classes]
        return cls(tuple(dims))

    @classmethod
    def paper_model(
        cls, which: int, input_dim: int, num_classes: int
    ) -> "GCNModelSpec":
        """One of the four architectures of Section 6."""
        table = {1: (2, 512), 2: (2, 16), 3: (3, 256), 4: (3, 208)}
        if which not in table:
            raise ConfigurationError(f"paper models are 1..4, got {which}")
        layers, hidden = table[which]
        return cls.build(input_dim, hidden, num_classes, layers)

    @property
    def num_layers(self) -> int:
        return len(self.layer_dims) - 1

    @property
    def max_dim(self) -> int:
        return max(self.layer_dims)

    @property
    def num_parameters(self) -> int:
        return sum(
            self.layer_dims[l] * self.layer_dims[l + 1]
            for l in range(self.num_layers)
        )

    def dims_of(self, layer: int) -> Tuple[int, int]:
        """(input, output) width of ``layer``."""
        if not (0 <= layer < self.num_layers):
            raise ConfigurationError(
                f"layer {layer} out of range for {self.num_layers}-layer model"
            )
        return self.layer_dims[layer], self.layer_dims[layer + 1]
