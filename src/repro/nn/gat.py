"""A Graph Attention (GAT) layer on the SDDMM kernel — §7 future work.

The paper's conclusion names SDDMM acceleration as the enabler for
training models "such as Graph Attention Networks". This module supplies
the forward path so the framework's substrate demonstrably supports it:

* per-edge attention logits via :meth:`CSRMatrix.sddmm`
  (``e_uv = LeakyReLU(a_src . (W h_u) + a_dst . (W h_v))``, the additive
  GAT formulation decomposed into two rank-1 SDDMMs),
* row-wise softmax over the adjacency pattern
  (:meth:`CSRMatrix.row_softmax`),
* aggregation with the existing SpMM.

Training (the SDDMM backward) stays future work here too, mirroring the
paper; the layer is forward-only and documented as such.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.config import FLOAT_DTYPE
from repro.errors import ConfigurationError, ShapeError
from repro.nn.init import glorot_uniform
from repro.sparse.csr import CSRMatrix
from repro.utils.rng import SeedLike, as_generator


def leaky_relu(x: np.ndarray, negative_slope: float = 0.2) -> np.ndarray:
    """LeakyReLU, GAT's attention nonlinearity."""
    return np.where(x > 0, x, negative_slope * x).astype(x.dtype, copy=False)


class GATLayer:
    """Multi-head GAT layer (forward only).

    ``adjacency`` is the (transposed, i.e. row = destination) pattern
    over which attention is computed; its values are ignored. With
    ``num_heads > 1`` the per-head outputs are concatenated (the
    standard hidden-layer convention), so the output width is
    ``num_heads * out_dim``.
    """

    def __init__(
        self,
        adjacency: CSRMatrix,
        in_dim: int,
        out_dim: int,
        num_heads: int = 1,
        negative_slope: float = 0.2,
        seed: SeedLike = None,
    ):
        if adjacency.shape[0] != adjacency.shape[1]:
            raise ConfigurationError("GATLayer needs a square adjacency pattern")
        if in_dim <= 0 or out_dim <= 0:
            raise ConfigurationError(f"invalid dims ({in_dim}, {out_dim})")
        if num_heads < 1:
            raise ConfigurationError(f"num_heads must be >= 1, got {num_heads}")
        self.adjacency = adjacency
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.num_heads = num_heads
        self.negative_slope = negative_slope
        rng = as_generator(seed)
        self.weights = [
            glorot_uniform(in_dim, out_dim, seed=rng) for _ in range(num_heads)
        ]
        self.att_src = [
            glorot_uniform(out_dim, 1, seed=rng).ravel() for _ in range(num_heads)
        ]
        self.att_dst = [
            glorot_uniform(out_dim, 1, seed=rng).ravel() for _ in range(num_heads)
        ]
        #: per-head attention matrices of the last forward pass.
        self.last_attentions: List[CSRMatrix] = []

    @property
    def weight(self) -> np.ndarray:
        """Head-0 weight matrix (single-head convenience accessor)."""
        return self.weights[0]

    @property
    def last_attention(self) -> Optional[CSRMatrix]:
        """Head-0 attention of the last forward pass."""
        return self.last_attentions[0] if self.last_attentions else None

    def _head_forward(self, features: np.ndarray, head: int) -> np.ndarray:
        hw = features @ self.weights[head]  # (n, out_dim)
        # additive attention e_uv = LeakyReLU(s_u + d_v) decomposes into
        # an SDDMM of rank-2 factors: x = [s_u, 1], y = [1, d_v].
        s = hw @ self.att_src[head]  # (n,)
        d = hw @ self.att_dst[head]  # (n,)
        x = np.stack([s, np.ones_like(s)], axis=1)
        y = np.stack([np.ones_like(d), d], axis=1)
        logits = self.adjacency.sddmm(x, y)
        logits = CSRMatrix(
            logits.shape,
            logits.indptr,
            logits.indices,
            leaky_relu(logits.vals, self.negative_slope),
            validate=False,
        )
        attention = logits.row_softmax()
        self.last_attentions.append(attention)
        return attention.spmm(hw).astype(FLOAT_DTYPE, copy=False)

    def forward(self, features: np.ndarray) -> np.ndarray:
        """``H' = concat_h( softmax_row(e_h) @ (H W_h) )``."""
        features = np.asarray(features, dtype=FLOAT_DTYPE)
        if features.shape != (self.adjacency.shape[0], self.in_dim):
            raise ShapeError(
                f"features {features.shape} incompatible with "
                f"({self.adjacency.shape[0]}, {self.in_dim})"
            )
        self.last_attentions = []
        outputs = [
            self._head_forward(features, head) for head in range(self.num_heads)
        ]
        if self.num_heads == 1:
            return outputs[0]
        return np.concatenate(outputs, axis=1)

    def __call__(self, features: np.ndarray) -> np.ndarray:
        return self.forward(features)
