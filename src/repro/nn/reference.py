"""Single-process reference GCN: the correctness oracle.

A plain NumPy implementation of full-batch GCN training with the exact
forward/backward decomposition of Section 2 (eqs. (5)–(11)) and Adam.
No device simulation, no partitioning — every other trainer in the
library (MG-GCN, DGL-like, CAGNET-like) must produce the same weights
after each epoch as this one (up to float32 reassociation), which the
integration tests assert.

Conventions shared by all trainers:

* normalisation is in-degree averaging (eq. (2)); the forward pass uses
  :math:`\\hat A^T`;
* ReLU is applied after every layer except the last (the final layer
  feeds softmax cross-entropy directly);
* the loss is averaged over the *global* number of training vertices;
* ``first_layer_skip`` replaces the first layer's backward SpMM with the
  identity scaling (§4.4) — off by default here (the exact gradient),
  on by default in the MG-GCN trainer to match the paper's system.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.config import FLOAT_DTYPE
from repro.errors import ConfigurationError
from repro.datasets.loader import Dataset
from repro.nn.adam import AdamOptimizer
from repro.nn.init import init_weights
from repro.nn.model import GCNModelSpec
from repro.sparse.csr import CSRMatrix
from repro.sparse.normalize import gcn_normalize
from repro.utils.rng import SeedLike


class ReferenceGCN:
    """Full-batch GCN trainer on a functional dataset."""

    def __init__(
        self,
        dataset: Dataset,
        model: GCNModelSpec,
        lr: float = 1e-2,
        seed: SeedLike = 0,
        first_layer_skip: bool = False,
    ):
        if dataset.is_symbolic:
            raise ConfigurationError("ReferenceGCN needs a functional dataset")
        if model.layer_dims[0] != dataset.d0:
            raise ConfigurationError(
                f"model input width {model.layer_dims[0]} != dataset d0 {dataset.d0}"
            )
        if model.layer_dims[-1] != dataset.num_classes:
            raise ConfigurationError(
                f"model output width {model.layer_dims[-1]} != "
                f"num_classes {dataset.num_classes}"
            )
        self.dataset = dataset
        self.model = model
        self.first_layer_skip = first_layer_skip
        # normalised adjacency and its transpose (forward uses A_hat^T).
        self.a_hat: CSRMatrix = gcn_normalize(dataset.adjacency)
        self.a_hat_t: CSRMatrix = self.a_hat.transpose()
        self.weights: List[np.ndarray] = init_weights(model.layer_dims, seed=seed)
        self.optimizer = AdamOptimizer(self.weights, lr=lr)
        self.num_train = dataset.num_train

    # -- forward ---------------------------------------------------------------

    def forward(self, features: Optional[np.ndarray] = None) -> List[np.ndarray]:
        """Layer outputs ``[H^(1), ..., H^(L)]`` (eqs. (5)–(7))."""
        h = self.dataset.features if features is None else features
        outputs: List[np.ndarray] = []
        L = self.model.num_layers
        for l, w in enumerate(self.weights):
            hw = h @ w                      # eq. (5)
            ahw = self.a_hat_t.spmm(hw)     # eq. (6)
            if l < L - 1:
                np.maximum(ahw, 0.0, out=ahw)  # eq. (7)
            h = ahw.astype(FLOAT_DTYPE, copy=False)
            outputs.append(h)
        return outputs

    # -- loss -----------------------------------------------------------------------

    def loss_and_grad(
        self, logits: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Masked softmax cross-entropy and its gradient w.r.t. the logits."""
        mask = self.dataset.train_mask
        labels = self.dataset.labels
        rows = np.nonzero(mask)[0]
        grad = np.zeros_like(logits)
        sub = logits[rows]
        shifted = sub - sub.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        denom = exp.sum(axis=1, keepdims=True)
        log_probs = shifted - np.log(denom)
        picked = log_probs[np.arange(rows.size), labels[rows]]
        loss = float(-picked.sum() / self.num_train)
        probs = exp / denom
        probs[np.arange(rows.size), labels[rows]] -= 1.0
        grad[rows] = probs / self.num_train
        return loss, grad.astype(FLOAT_DTYPE, copy=False)

    # -- backward ------------------------------------------------------------------

    def backward(
        self, outputs: Sequence[np.ndarray], grad_logits: np.ndarray
    ) -> List[np.ndarray]:
        """Weight gradients per layer (eqs. (8)–(11))."""
        L = self.model.num_layers
        grads: List[Optional[np.ndarray]] = [None] * L
        g = grad_logits
        for l in range(L - 1, -1, -1):
            if l < L - 1:
                g = g * (outputs[l] > 0)            # eq. (8)
            if l == 0 and self.first_layer_skip:
                hwg = g                              # §4.4: identity scaling
            else:
                hwg = self.a_hat.spmm(g)             # eq. (9)
            h_in = self.dataset.features if l == 0 else outputs[l - 1]
            grads[l] = (h_in.T @ hwg).astype(FLOAT_DTYPE)  # eq. (10)
            if l > 0:
                g = hwg @ self.weights[l].T          # eq. (11)
        return grads  # type: ignore[return-value]

    # -- training loop ----------------------------------------------------------------

    def train_epoch(self) -> float:
        """One full-batch epoch; returns the training loss."""
        outputs = self.forward()
        loss, grad_logits = self.loss_and_grad(outputs[-1])
        grads = self.backward(outputs, grad_logits)
        self.optimizer.step(grads)
        return loss

    def fit(self, epochs: int) -> List[float]:
        """Train for ``epochs`` epochs; returns the loss curve."""
        if epochs < 0:
            raise ConfigurationError(f"epochs must be >= 0, got {epochs}")
        return [self.train_epoch() for _ in range(epochs)]

    # -- evaluation ------------------------------------------------------------------------

    def predict(self) -> np.ndarray:
        """Argmax class predictions for every vertex."""
        return np.argmax(self.forward()[-1], axis=1)

    def accuracy(self, mask: Optional[np.ndarray] = None) -> float:
        """Prediction accuracy over ``mask`` (default: test split)."""
        if mask is None:
            mask = self.dataset.test_mask
        if not mask.any():
            raise ConfigurationError("empty evaluation mask")
        pred = self.predict()
        return float((pred[mask] == self.dataset.labels[mask]).mean())
