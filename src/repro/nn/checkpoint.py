"""Trainer checkpointing: save/restore weights + Adam state.

Checkpoints are single ``.npz`` files holding the replicated model
state from rank 0 (weights, Adam first/second moments, step counter,
epoch counter) plus the architecture for validation at load time.
Loading redistributes the state to every rank's replica, so training
resumes bit-identically in FUNCTIONAL mode.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.device.tensor import Mode
from repro.errors import ConfigurationError

PathLike = Union[str, os.PathLike]

_FORMAT_VERSION = 1


def save_checkpoint(trainer, path: PathLike) -> None:
    """Persist an :class:`~repro.core.trainer.MGGCNTrainer`'s state."""
    if trainer.mode is not Mode.FUNCTIONAL:
        raise ConfigurationError("checkpointing requires functional mode")
    payload = {
        "format_version": np.asarray(_FORMAT_VERSION),
        "layer_dims": np.asarray(trainer.model.layer_dims, dtype=np.int64),
        "adam_t": np.asarray(trainer._adam_t, dtype=np.int64),
        "epochs_trained": np.asarray(trainer.epochs_trained, dtype=np.int64),
    }
    for layer in range(trainer.model.num_layers):
        payload[f"w{layer}"] = trainer.weights[0][layer].data
        payload[f"m{layer}"] = trainer.adam_m[0][layer].data
        payload[f"v{layer}"] = trainer.adam_v[0][layer].data
    np.savez_compressed(path, **payload)


def load_checkpoint(trainer, path: PathLike) -> None:
    """Restore a checkpoint into ``trainer`` (all replicas), in place."""
    if trainer.mode is not Mode.FUNCTIONAL:
        raise ConfigurationError("checkpointing requires functional mode")
    with np.load(path, allow_pickle=False) as bundle:
        if "format_version" not in bundle:
            raise ConfigurationError(f"{path}: not a repro checkpoint")
        version = int(bundle["format_version"])
        if version != _FORMAT_VERSION:
            raise ConfigurationError(
                f"{path}: unsupported checkpoint version {version}"
            )
        dims = tuple(int(d) for d in bundle["layer_dims"])
        if dims != trainer.model.layer_dims:
            raise ConfigurationError(
                f"{path}: checkpoint architecture {dims} != trainer "
                f"{trainer.model.layer_dims}"
            )
        trainer._adam_t = int(bundle["adam_t"])
        trainer.epochs_trained = int(bundle["epochs_trained"])
        for layer in range(trainer.model.num_layers):
            w = bundle[f"w{layer}"]
            m = bundle[f"m{layer}"]
            v = bundle[f"v{layer}"]
            for rank in range(trainer.ctx.num_gpus):
                trainer.weights[rank][layer].load_(w)
                trainer.adam_m[rank][layer].load_(m)
                trainer.adam_v[rank][layer].load_(v)
