"""Trainer checkpointing: save/restore weights + Adam state.

Checkpoints are single ``.npz`` files holding the replicated model
state from rank 0 (weights, Adam first/second moments, step counter,
epoch counter) plus the architecture for validation at load time.
Loading redistributes the state to every rank's replica, so training
resumes bit-identically in FUNCTIONAL mode.

Writes are **atomic** (staged to a temp file in the target directory,
then ``os.replace``-d into place) so a crash mid-save never leaves a
truncated checkpoint where a good one used to be, and each payload
carries a SHA-256 **checksum** over its arrays that is verified on
load — silent corruption surfaces as :class:`~repro.errors.CheckpointError`
instead of garbage weights. Checksum-less checkpoints from older
writers still load.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.config import FLOAT_DTYPE
from repro.device.tensor import Mode
from repro.errors import CheckpointError, ConfigurationError
from repro.nn.model import GCNModelSpec

PathLike = Union[str, os.PathLike]

_FORMAT_VERSION = 1
#: payload keys excluded from the checksum (the checksum itself).
_CHECKSUM_KEY = "checksum_sha256"


def _payload_digest(payload: Dict[str, np.ndarray]) -> str:
    """SHA-256 over every array's name, dtype, shape and raw bytes."""
    h = hashlib.sha256()
    for key in sorted(payload):
        if key == _CHECKSUM_KEY:
            continue
        arr = np.ascontiguousarray(payload[key])
        h.update(key.encode())
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


def _atomic_savez(payload: Dict[str, np.ndarray], path: PathLike) -> None:
    """Checksum ``payload`` and write it atomically to ``path``(.npz)."""
    payload[_CHECKSUM_KEY] = np.frombuffer(
        _payload_digest(payload).encode(), dtype=np.uint8
    )
    # np.savez appends ".npz" to bare paths; resolve the real target so
    # the staged file is replaced onto the same name the loader opens.
    final = os.fspath(path)
    if not final.endswith(".npz"):
        final += ".npz"
    directory = os.path.dirname(final) or "."
    fd, tmp = tempfile.mkstemp(
        prefix=os.path.basename(final) + ".", suffix=".tmp", dir=directory
    )
    try:
        # hand savez the open file object: it must not "helpfully"
        # append .npz to the temp name, or the replace below misses.
        with os.fdopen(fd, "wb") as fh:
            np.savez_compressed(fh, **payload)
        os.replace(tmp, final)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def save_checkpoint(trainer, path: PathLike) -> None:
    """Persist an :class:`~repro.core.trainer.MGGCNTrainer`'s state.

    The write is atomic: readers of ``path`` see either the previous
    complete checkpoint or the new complete checkpoint, never a
    partial file.
    """
    if trainer.mode is not Mode.FUNCTIONAL:
        raise ConfigurationError("checkpointing requires functional mode")
    payload = {
        "format_version": np.asarray(_FORMAT_VERSION),
        "layer_dims": np.asarray(trainer.model.layer_dims, dtype=np.int64),
        "adam_t": np.asarray(trainer._adam_t, dtype=np.int64),
        "epochs_trained": np.asarray(trainer.epochs_trained, dtype=np.int64),
    }
    for layer in range(trainer.model.num_layers):
        payload[f"w{layer}"] = trainer.weights[0][layer].data
        payload[f"m{layer}"] = trainer.adam_m[0][layer].data
        payload[f"v{layer}"] = trainer.adam_v[0][layer].data
    _atomic_savez(payload, path)


def load_checkpoint(trainer, path: PathLike) -> None:
    """Restore a checkpoint into ``trainer`` (all replicas), in place."""
    if trainer.mode is not Mode.FUNCTIONAL:
        raise ConfigurationError("checkpointing requires functional mode")
    with np.load(path, allow_pickle=False) as bundle:
        if "format_version" not in bundle:
            raise ConfigurationError(f"{path}: not a repro checkpoint")
        version = int(bundle["format_version"])
        if version != _FORMAT_VERSION:
            raise ConfigurationError(
                f"{path}: unsupported checkpoint version {version}"
            )
        payload = {key: bundle[key] for key in bundle.files}
        if _CHECKSUM_KEY in payload:
            stored = bytes(payload[_CHECKSUM_KEY]).decode()
            actual = _payload_digest(payload)
            if stored != actual:
                raise CheckpointError(
                    f"{path}: checksum mismatch (stored {stored[:12]}…, "
                    f"computed {actual[:12]}…) — checkpoint is corrupt"
                )
        dims = tuple(int(d) for d in payload["layer_dims"])
        if dims != trainer.model.layer_dims:
            raise ConfigurationError(
                f"{path}: checkpoint architecture {dims} != trainer "
                f"{trainer.model.layer_dims}"
            )
        trainer._adam_t = int(payload["adam_t"])
        trainer.epochs_trained = int(payload["epochs_trained"])
        for layer in range(trainer.model.num_layers):
            w = payload[f"w{layer}"]
            m = payload[f"m{layer}"]
            v = payload[f"v{layer}"]
            for rank in range(trainer.ctx.num_gpus):
                trainer.weights[rank][layer].load_(w)
                trainer.adam_m[rank][layer].load_(m)
                trainer.adam_v[rank][layer].load_(v)


# -- inference-only restore (no trainer) -------------------------------------


def save_weights(weights: Sequence[np.ndarray], path: PathLike) -> None:
    """Persist bare layer weights as an inference-only checkpoint.

    The payload carries only ``layer_dims`` + per-layer ``w{l}`` arrays
    (no optimizer state), checksummed and written atomically — the
    export format a serving process restores with :func:`load_weights`.
    ``weights[l]`` must be the 2-D ``(d_l, d_{l+1})`` weight of layer
    ``l`` with conforming widths.
    """
    if not weights:
        raise ConfigurationError("save_weights: empty weight list")
    dims: List[int] = []
    for l, w in enumerate(weights):
        w = np.asarray(w)
        if w.ndim != 2:
            raise ConfigurationError(
                f"save_weights: weight {l} must be 2-D, got shape {w.shape}"
            )
        if l == 0:
            dims.append(int(w.shape[0]))
        elif w.shape[0] != dims[-1]:
            raise ConfigurationError(
                f"save_weights: layer {l} input width {w.shape[0]} != "
                f"layer {l - 1} output width {dims[-1]}"
            )
        dims.append(int(w.shape[1]))
    payload: Dict[str, np.ndarray] = {
        "format_version": np.asarray(_FORMAT_VERSION),
        "layer_dims": np.asarray(dims, dtype=np.int64),
    }
    for l, w in enumerate(weights):
        payload[f"w{l}"] = np.ascontiguousarray(w, dtype=FLOAT_DTYPE)
    _atomic_savez(payload, path)


def load_weights(path: PathLike) -> Tuple[List[np.ndarray], GCNModelSpec]:
    """Restore layer weights + model spec without constructing a trainer.

    Accepts both trainer checkpoints (:func:`save_checkpoint`; optimizer
    state is ignored) and inference-only exports (:func:`save_weights`).
    Unlike :func:`load_checkpoint` — which tolerates checksum-less files
    from older writers — this path is strict: a serving process must not
    start on unverifiable weights, so a missing or mismatched payload
    digest raises :class:`~repro.errors.CheckpointError`.
    """
    with np.load(path, allow_pickle=False) as bundle:
        if "format_version" not in bundle:
            raise ConfigurationError(f"{path}: not a repro checkpoint")
        version = int(bundle["format_version"])
        if version != _FORMAT_VERSION:
            raise ConfigurationError(
                f"{path}: unsupported checkpoint version {version}"
            )
        payload = {key: bundle[key] for key in bundle.files}
    if _CHECKSUM_KEY not in payload:
        raise CheckpointError(
            f"{path}: no payload digest — inference restore requires a "
            f"checksummed checkpoint"
        )
    stored = bytes(payload[_CHECKSUM_KEY]).decode()
    actual = _payload_digest(payload)
    if stored != actual:
        raise CheckpointError(
            f"{path}: checksum mismatch (stored {stored[:12]}…, "
            f"computed {actual[:12]}…) — checkpoint is corrupt"
        )
    spec = GCNModelSpec(tuple(int(d) for d in payload["layer_dims"]))
    weights: List[np.ndarray] = []
    for layer in range(spec.num_layers):
        key = f"w{layer}"
        if key not in payload:
            raise CheckpointError(
                f"{path}: missing weight {key} for {spec.num_layers}-layer "
                f"model"
            )
        w = np.asarray(payload[key], dtype=FLOAT_DTYPE)
        if w.shape != spec.dims_of(layer):
            raise CheckpointError(
                f"{path}: weight {key} shape {w.shape} != spec "
                f"{spec.dims_of(layer)}"
            )
        weights.append(w)
    return weights, spec
