"""Adam optimizer over a list of host weight arrays (Kingma & Ba).

The paper implements Adam inside its C++ engine; here the functional
math lives in one place and is reused by the reference trainer, the
MG-GCN trainer (per replica) and the baselines, so all of them take
bit-identical steps given identical gradients.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError


class AdamOptimizer:
    """Adam with bias correction; state arrays match the weights' dtypes."""

    def __init__(
        self,
        weights: Sequence[np.ndarray],
        lr: float = 1e-2,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        if lr <= 0:
            raise ConfigurationError(f"lr must be positive, got {lr}")
        if not (0.0 <= beta1 < 1.0) or not (0.0 <= beta2 < 1.0):
            raise ConfigurationError(
                f"betas must be in [0, 1), got ({beta1}, {beta2})"
            )
        if eps <= 0:
            raise ConfigurationError(f"eps must be positive, got {eps}")
        self.weights = list(weights)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.t = 0
        self.m: List[np.ndarray] = [np.zeros_like(w) for w in self.weights]
        self.v: List[np.ndarray] = [np.zeros_like(w) for w in self.weights]

    @property
    def num_state_bytes(self) -> int:
        """Device bytes of the optimizer state (m and v)."""
        return sum(a.nbytes for a in self.m) + sum(a.nbytes for a in self.v)

    def step(self, grads: Sequence[np.ndarray]) -> None:
        """Apply one Adam update in place on the registered weights."""
        if len(grads) != len(self.weights):
            raise ConfigurationError(
                f"got {len(grads)} gradients for {len(self.weights)} weights"
            )
        self.t += 1
        bc1 = 1.0 - self.beta1**self.t
        bc2 = 1.0 - self.beta2**self.t
        for w, g, m, v in zip(self.weights, grads, self.m, self.v):
            if g.shape != w.shape:
                raise ConfigurationError(
                    f"gradient shape {g.shape} != weight shape {w.shape}"
                )
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * np.square(g)
            m_hat = m / bc1
            v_hat = v / bc2
            w -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
