"""NN substrate: model spec, init, Adam, buffer managers, reference trainer."""

from repro.nn.init import glorot_uniform, init_weights
from repro.nn.model import GCNModelSpec
from repro.nn.adam import AdamOptimizer
from repro.nn.buffers import SharedBufferManager, EagerBufferManager, BufferPlan
from repro.nn.reference import ReferenceGCN
from repro.nn.gat import GATLayer, leaky_relu
from repro.nn.checkpoint import (
    save_checkpoint,
    load_checkpoint,
    save_weights,
    load_weights,
)

__all__ = [
    "glorot_uniform",
    "init_weights",
    "GCNModelSpec",
    "AdamOptimizer",
    "SharedBufferManager",
    "EagerBufferManager",
    "BufferPlan",
    "ReferenceGCN",
    "GATLayer",
    "leaky_relu",
    "save_checkpoint",
    "load_checkpoint",
    "save_weights",
    "load_weights",
]
