"""Virtual-GPU substrate: memory pools, tensors, streams, event engine."""

from repro.device.memory import MemoryPool, Allocation
from repro.device.tensor import Mode, DeviceTensor
from repro.device.stream import Stream, Event
from repro.device.device import VirtualGPU
from repro.device.engine import Engine, TraceEvent, SimContext

__all__ = [
    "MemoryPool",
    "Allocation",
    "Mode",
    "DeviceTensor",
    "Stream",
    "Event",
    "VirtualGPU",
    "Engine",
    "TraceEvent",
    "SimContext",
]
