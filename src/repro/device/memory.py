"""Byte-accurate device memory accounting.

Every tensor and sparse-matrix tile placed on a :class:`VirtualGPU` draws
from that device's :class:`MemoryPool`. The pool enforces the capacity of
the modelled GPU (32 GiB on V100, 80 GiB on A100) and tracks the peak, so
the paper's out-of-memory cells (Figs. 5, 10, 13; Table 3) and the memory
footprint study (Fig. 12) are reproduced by the same accounting the
trainer itself uses.

The pool is an accounting allocator, not a placement allocator: it does
not model fragmentation (cudaMalloc-style pools in NCCL-era frameworks
are close to fragmentation-free for the large, uniform buffers GCN
training allocates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.config import DEFAULT_ALIGNMENT, align_up
from repro.errors import AllocationError, DeviceOutOfMemoryError


@dataclass
class Allocation:
    """A live reservation of device memory.

    Handles are returned by :meth:`MemoryPool.allocate` and must be
    released with :meth:`MemoryPool.free` exactly once.
    """

    pool: "MemoryPool"
    nbytes: int
    tag: str
    alloc_id: int
    freed: bool = False

    def free(self) -> None:
        """Release this allocation back to its pool."""
        self.pool.free(self)


class MemoryPool:
    """Tracks allocated/peak/capacity bytes for one device."""

    def __init__(self, capacity: int, name: str = "device", alignment: int = DEFAULT_ALIGNMENT):
        if capacity <= 0:
            raise ValueError(f"{name}: capacity must be positive, got {capacity}")
        if alignment <= 0:
            raise ValueError(f"{name}: alignment must be positive, got {alignment}")
        self.capacity = int(capacity)
        self.name = name
        self.alignment = alignment
        self.in_use = 0
        self.peak = 0
        self._next_id = 0
        self._live: Dict[int, Allocation] = {}

    def allocate(self, nbytes: int, tag: str = "") -> Allocation:
        """Reserve ``nbytes`` (rounded up to the alignment).

        Raises :class:`DeviceOutOfMemoryError` when the reservation would
        exceed capacity — callers surface this as the paper's OOM cells.
        """
        if nbytes < 0:
            raise AllocationError(f"{self.name}: negative allocation {nbytes}")
        padded = align_up(int(nbytes), self.alignment)
        if self.in_use + padded > self.capacity:
            raise DeviceOutOfMemoryError(
                self.name, requested=padded, in_use=self.in_use, capacity=self.capacity
            )
        alloc = Allocation(pool=self, nbytes=padded, tag=tag, alloc_id=self._next_id)
        self._next_id += 1
        self._live[alloc.alloc_id] = alloc
        self.in_use += padded
        self.peak = max(self.peak, self.in_use)
        return alloc

    def free(self, alloc: Allocation) -> None:
        """Release ``alloc``; double frees and foreign handles are errors."""
        if alloc.pool is not self:
            raise AllocationError(
                f"{self.name}: allocation belongs to pool {alloc.pool.name!r}"
            )
        if alloc.freed or alloc.alloc_id not in self._live:
            raise AllocationError(f"{self.name}: double free of allocation #{alloc.alloc_id}")
        del self._live[alloc.alloc_id]
        alloc.freed = True
        self.in_use -= alloc.nbytes

    @property
    def available(self) -> int:
        """Bytes still allocatable."""
        return self.capacity - self.in_use

    @property
    def live_allocations(self) -> int:
        """Number of outstanding allocations."""
        return len(self._live)

    def usage_by_tag(self) -> Dict[str, int]:
        """Live bytes grouped by allocation tag (for memory reports)."""
        out: Dict[str, int] = {}
        for alloc in self._live.values():
            out[alloc.tag] = out.get(alloc.tag, 0) + alloc.nbytes
        return out

    def reset_peak(self) -> None:
        """Restart peak tracking from the current usage."""
        self.peak = self.in_use

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MemoryPool({self.name!r}, in_use={self.in_use}, "
            f"peak={self.peak}, capacity={self.capacity})"
        )
