"""The virtual GPU: memory pool + streams + tensor factory."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.config import FLOAT_DTYPE
from repro.errors import ShapeError
from repro.device.memory import Allocation, MemoryPool
from repro.device.stream import Stream
from repro.device.tensor import DeviceTensor, Mode
from repro.hardware.spec import GPUSpec


class VirtualGPU:
    """One simulated GPU.

    Owns a byte-accurate :class:`MemoryPool` sized to the modelled card's
    capacity and two streams — ``compute`` (stream 0) and ``comm``
    (stream 1) — matching the paper's two-stream overlap design (§4.3).
    """

    def __init__(self, spec: GPUSpec, rank: int, mode: Mode = Mode.FUNCTIONAL):
        self.spec = spec
        self.rank = int(rank)
        self.mode = mode
        self.name = f"gpu{rank}"
        self.pool = MemoryPool(capacity=spec.memory_bytes, name=self.name)
        self.compute_stream = Stream(self, "compute")
        self.comm_stream = Stream(self, "comm")

    # -- tensor factory ------------------------------------------------------

    def empty(
        self,
        shape: Tuple[int, ...],
        dtype=FLOAT_DTYPE,
        name: str = "",
        tag: str = "tensor",
    ) -> DeviceTensor:
        """Allocate an uninitialised tensor on this device."""
        dtype = np.dtype(dtype)
        if any(int(s) < 0 for s in shape):
            raise ShapeError(f"negative dimension in shape {shape}")
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize if shape else dtype.itemsize
        alloc = self.pool.allocate(nbytes, tag=tag or name or "tensor")
        data = None
        if self.mode is Mode.FUNCTIONAL:
            data = np.empty(shape, dtype=dtype)
        return DeviceTensor(
            shape=shape,
            dtype=dtype,
            device=self,
            mode=self.mode,
            data=data,
            allocation=alloc,
            name=name,
        )

    def zeros(
        self,
        shape: Tuple[int, ...],
        dtype=FLOAT_DTYPE,
        name: str = "",
        tag: str = "tensor",
    ) -> DeviceTensor:
        """Allocate a zero-initialised tensor on this device."""
        t = self.empty(shape, dtype=dtype, name=name, tag=tag)
        t.fill_(0.0)
        return t

    def from_numpy(
        self, array: np.ndarray, name: str = "", tag: str = "tensor"
    ) -> DeviceTensor:
        """Copy a host array onto this device (accounted; payload kept only
        in functional mode)."""
        array = np.ascontiguousarray(array)
        alloc = self.pool.allocate(array.nbytes, tag=tag or name or "tensor")
        data = array.copy() if self.mode is Mode.FUNCTIONAL else None
        return DeviceTensor(
            shape=tuple(array.shape),
            dtype=array.dtype,
            device=self,
            mode=self.mode,
            data=data,
            allocation=alloc,
            name=name,
        )

    def symbolic(
        self, shape: Tuple[int, ...], dtype=FLOAT_DTYPE, name: str = "", tag: str = "tensor"
    ) -> DeviceTensor:
        """Allocate a metadata-only tensor regardless of device mode.

        Useful for staging descriptors of data that is never touched
        functionally (e.g. validation-only features).
        """
        dtype = np.dtype(dtype)
        if any(int(s) < 0 for s in shape):
            raise ShapeError(f"negative dimension in shape {shape}")
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize if shape else dtype.itemsize
        alloc = self.pool.allocate(nbytes, tag=tag or name or "tensor")
        return DeviceTensor(
            shape=shape,
            dtype=dtype,
            device=self,
            mode=Mode.SYMBOLIC,
            data=None,
            allocation=alloc,
            name=name,
        )

    # -- queries ---------------------------------------------------------------

    @property
    def memory_in_use(self) -> int:
        return self.pool.in_use

    @property
    def memory_peak(self) -> int:
        return self.pool.peak

    def synchronize(self) -> float:
        """Time at which all streams are drained."""
        return max(self.compute_stream.ready_time, self.comm_stream.ready_time)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualGPU({self.name}, spec={self.spec.name}, mode={self.mode.value})"
