"""Streams and events for the discrete-event engine.

Semantics mirror CUDA streams:

* work submitted to one stream executes in submission order;
* an :class:`Event` records the simulated completion time of the op it
  was recorded after;
* a stream can *wait* on an event, delaying its subsequent ops until the
  event's time (``cudaStreamWaitEvent``).

The MG-GCN overlap schedule (paper §4.3) is expressed with exactly these
primitives: compute stream 0 waits for the i-th broadcast's event before
the i-th SpMM, and comm stream 1 waits for the (i-1)-th SpMM's event
before the (i+1)-th broadcast so the in-flight buffer is not overwritten.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import StreamError


class Event:
    """Records a point in simulated time on a stream."""

    __slots__ = ("name", "time")

    def __init__(self, name: str = ""):
        self.name = name
        self.time: Optional[float] = None

    @property
    def recorded(self) -> bool:
        return self.time is not None

    def require_time(self) -> float:
        if self.time is None:
            raise StreamError(f"event {self.name!r} waited on before being recorded")
        return self.time

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Event({self.name!r}, time={self.time})"


class Stream:
    """An in-order execution queue on one device."""

    __slots__ = ("device", "name", "ready_time", "_pending_waits")

    def __init__(self, device: "VirtualGPU", name: str):
        self.device = device
        self.name = name
        #: Simulated time at which the stream becomes free.
        self.ready_time = 0.0
        self._pending_waits: List[Event] = []

    def wait_event(self, event: Event) -> None:
        """Delay subsequent work on this stream until ``event`` completes."""
        self._pending_waits.append(event)

    def reset(self) -> None:
        """Return the stream to its initial state: clock at zero, no waits.

        The public face of what timing resets (warm-up exclusion, elastic
        recovery) need — callers must not reach into ``_pending_waits``.
        """
        self.ready_time = 0.0
        self._pending_waits.clear()

    def consume_waits(self) -> float:
        """Earliest start time allowed by accumulated waits (and clear them)."""
        start = self.ready_time
        for ev in self._pending_waits:
            start = max(start, ev.require_time())
        self._pending_waits.clear()
        return start

    def synchronize(self) -> float:
        """Return the time at which all submitted work completes."""
        return self.ready_time

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Stream({self.device.name}:{self.name}, ready={self.ready_time:.6f})"
