"""Dense device tensors with functional and symbolic execution modes.

A :class:`DeviceTensor` is a shape/dtype descriptor plus an optional NumPy
payload, tied to an allocation on a :class:`~repro.device.device.VirtualGPU`.

* In :attr:`Mode.FUNCTIONAL` the payload is a real ``ndarray`` and every
  kernel computes real results — used by tests, examples and scaled
  benchmark runs, so the reproduction is *numerically* faithful.
* In :attr:`Mode.SYMBOLIC` the payload is ``None``; kernels only account
  cost and memory. This is how the benchmark harness "runs" graphs such
  as ogbn-papers100M (111M vertices / 1.61B edges) that cannot be
  materialised in host RAM: the schedule, byte counts and timings are
  exactly those of a functional run.

Tensors do not implement autograd — the paper's framework computes
backward passes manually (eqs. (8)–(11)), and so does ours in
:mod:`repro.nn.gcn_layer`.
"""

from __future__ import annotations

import enum
import math
from typing import Optional, Tuple

import numpy as np

from repro.config import FLOAT_DTYPE
from repro.errors import ModeError, ShapeError
from repro.device.memory import Allocation


class Mode(enum.Enum):
    """Execution mode of a tensor (and, transitively, of a run)."""

    FUNCTIONAL = "functional"
    SYMBOLIC = "symbolic"


class DeviceTensor:
    """A 2-D (or 1-D) dense tensor resident on a virtual GPU.

    Instances are created through :meth:`VirtualGPU.empty` /
    :meth:`VirtualGPU.from_numpy`, which perform the memory accounting.
    """

    __slots__ = ("shape", "dtype", "device", "mode", "data", "allocation", "name")

    def __init__(
        self,
        shape: Tuple[int, ...],
        dtype: np.dtype,
        device: "VirtualGPU",
        mode: Mode,
        data: Optional[np.ndarray],
        allocation: Optional[Allocation],
        name: str = "",
    ):
        if any(int(s) < 0 for s in shape):
            raise ShapeError(f"negative dimension in shape {shape}")
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self.device = device
        self.mode = mode
        self.data = data
        self.allocation = allocation
        self.name = name
        if mode is Mode.FUNCTIONAL:
            if data is None:
                raise ModeError(f"functional tensor {name!r} requires data")
            if tuple(data.shape) != self.shape:
                raise ShapeError(
                    f"tensor {name!r}: data shape {data.shape} != declared {self.shape}"
                )
            if data.dtype != self.dtype:
                raise ShapeError(
                    f"tensor {name!r}: data dtype {data.dtype} != declared {self.dtype}"
                )
        elif data is not None:
            raise ModeError(f"symbolic tensor {name!r} must not carry data")

    # -- geometry -----------------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        return int(math.prod(self.shape)) if self.shape else 1

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.itemsize

    @property
    def rows(self) -> int:
        """First dimension (0 for 0-d tensors)."""
        return self.shape[0] if self.shape else 0

    @property
    def cols(self) -> int:
        """Second dimension; 1 for 1-D tensors."""
        if self.ndim >= 2:
            return self.shape[1]
        return 1

    # -- payload access -------------------------------------------------------

    def require_data(self) -> np.ndarray:
        """Return the NumPy payload; error in symbolic mode."""
        if self.data is None:
            raise ModeError(
                f"tensor {self.name!r} is symbolic; operation requires functional mode"
            )
        return self.data

    def copy_to_numpy(self) -> np.ndarray:
        """A host copy of the payload (functional mode only)."""
        return self.require_data().copy()

    def fill_(self, value: float) -> "DeviceTensor":
        """In-place fill (no-op in symbolic mode)."""
        if self.data is not None:
            self.data.fill(value)
        return self

    def load_(self, array: np.ndarray) -> "DeviceTensor":
        """In-place overwrite of the payload from a host array."""
        if self.mode is Mode.SYMBOLIC:
            return self
        if tuple(array.shape) != self.shape:
            raise ShapeError(
                f"tensor {self.name!r}: cannot load shape {array.shape} "
                f"into {self.shape}"
            )
        np.copyto(self.require_data(), array.astype(self.dtype, copy=False))
        return self

    def view(self, rows: int) -> "DeviceTensor":
        """A leading-rows view sharing this tensor's allocation.

        Used by the broadcast buffers: the same physical buffer holds
        whatever tile is currently in flight, and a stage operates on a
        row-prefix view sized to that tile (no copy, no new allocation) —
        the core of the paper's buffer-reuse scheme.
        """
        if self.ndim != 2:
            raise ShapeError(f"view requires a 2-D tensor, got shape {self.shape}")
        if rows < 0 or rows > self.shape[0]:
            raise ShapeError(
                f"view of {rows} rows out of range for shape {self.shape}"
            )
        data = self.data[:rows] if self.data is not None else None
        return DeviceTensor(
            shape=(rows, self.shape[1]),
            dtype=self.dtype,
            device=self.device,
            mode=self.mode,
            data=data,
            allocation=None,  # views never own memory
            name=f"{self.name}[:{rows}]",
        )

    def view2d(self, rows: int, cols: int) -> "DeviceTensor":
        """A top-left ``(rows, cols)`` window view (shares the allocation).

        The shared ``HW`` scratch and broadcast buffers are allocated at
        their maximum geometry and windowed per layer/stage, so one
        physical buffer serves operands of different widths — the
        mechanism behind the paper's L+3 buffer count.
        """
        if self.ndim != 2:
            raise ShapeError(f"view2d requires a 2-D tensor, got shape {self.shape}")
        if not (0 <= rows <= self.shape[0] and 0 <= cols <= self.shape[1]):
            raise ShapeError(
                f"view2d ({rows}, {cols}) out of range for shape {self.shape}"
            )
        data = self.data[:rows, :cols] if self.data is not None else None
        return DeviceTensor(
            shape=(rows, cols),
            dtype=self.dtype,
            device=self.device,
            mode=self.mode,
            data=data,
            allocation=None,
            name=f"{self.name}[:{rows},:{cols}]",
        )

    def free(self) -> None:
        """Release the underlying device memory (owning tensors only)."""
        if self.allocation is not None:
            self.allocation.free()
            self.allocation = None
        self.data = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DeviceTensor({self.name!r}, shape={self.shape}, dtype={self.dtype}, "
            f"device={self.device.name}, mode={self.mode.value})"
        )


def check_same_mode(*tensors: DeviceTensor) -> Mode:
    """All tensors must share one mode; returns it."""
    modes = {t.mode for t in tensors}
    if len(modes) != 1:
        raise ModeError(
            "mixed functional/symbolic tensors in one kernel: "
            + ", ".join(f"{t.name}:{t.mode.value}" for t in tensors)
        )
    return modes.pop()


def default_dtype() -> np.dtype:
    """The library's default floating dtype."""
    return np.dtype(FLOAT_DTYPE)
