"""Discrete-event engine: simulated timing + execution traces.

Kernels and collectives compute their *results* eagerly (in functional
mode) but their *time* is simulated: each op is submitted to a stream
with a modelled duration, the engine assigns it

``start = max(stream ready time, dependency event times)``
``end   = start + duration``

and advances the stream. Every op is recorded as a :class:`TraceEvent`,
from which the profiling layer reconstructs the paper's per-op runtime
breakdown (Fig. 5) and per-stage SpMM timelines (Figs. 6, 8).

A :class:`SimContext` bundles an engine with the set of virtual GPUs of
one machine and is the object trainers are built around.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.backends import KernelBackend, get_backend
from repro.device.device import VirtualGPU
from repro.device.stream import Event, Stream
from repro.device.tensor import Mode
from repro.hardware.spec import MachineSpec
from repro.hardware.topology import Topology


@dataclass(frozen=True)
class TraceEvent:
    """One completed op in the simulated execution."""

    device: str
    stream: str
    name: str
    #: op category for breakdowns: "spmm", "gemm", "activation", "loss",
    #: "adam", "comm", "memset", ...
    category: str
    start: float
    end: float
    #: optional SpMM stage index (for stage timelines)
    stage: Optional[int] = None
    #: bytes moved, for comm ops (0 otherwise)
    nbytes: int = 0
    #: opaque correlation id (e.g. a serving request/batch id) that links
    #: this op to a higher-level unit of work across devices and streams.
    correlation: Optional[str] = None
    #: floating-point operations performed (0 for non-compute ops);
    #: feeds the telemetry layer's roofline gauges.
    flops: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start


class Engine:
    """Assigns simulated times to submitted ops and records the trace.

    ``fault_injector`` (a :class:`repro.resilience.FaultInjector`, or
    None) lets the engine model device failure and stragglers: an op
    submitted on a dead device raises
    :class:`~repro.errors.DeviceFailedError`, and straggler windows
    dilate op durations. With no injector (or an empty plan) the
    scheduling arithmetic is bit-identical to a fault-free engine.
    """

    def __init__(self, record_trace: bool = True, fault_injector=None,
                 telemetry=None, backend=None):
        self.record_trace = record_trace
        self.fault_injector = fault_injector
        self.trace: List[TraceEvent] = []
        #: active :class:`repro.plan.PlanCapture`, or None. While set,
        #: every submitted op (and its functional ``compute`` closure) is
        #: also recorded into the capture's execution plan.
        self.capture = None
        #: optional :class:`repro.telemetry.Telemetry` hub (duck-typed —
        #: anything with ``on_op(event)``); every submitted op is
        #: forwarded so metrics accumulate even with tracing off.
        self.telemetry = telemetry
        #: the :class:`repro.backends.KernelBackend` kernels pull their
        #: array-level primitives from; a name or an instance.
        if backend is None:
            backend = "numpy"
        self.backend: KernelBackend = (
            get_backend(backend) if isinstance(backend, str) else backend
        )
        #: incremental per-category op seconds, kept in lockstep with
        #: ``trace`` (only accumulates while tracing, like the scan the
        #: totals replace).
        self._category_seconds: Dict[str, float] = {}

    def submit(
        self,
        stream: Stream,
        name: str,
        category: str,
        duration: float,
        deps: Sequence[Event] = (),
        stage: Optional[int] = None,
        nbytes: int = 0,
        compute=None,
        correlation: Optional[str] = None,
        flops: float = 0.0,
    ) -> Event:
        """Schedule one op on ``stream``; returns its completion event.

        ``compute`` is the op's functional closure (already executed by
        the caller); it is ignored unless an epoch capture is active, in
        which case it is recorded so replay can re-run the numerics.
        ``correlation`` tags the trace event with an opaque id (serving
        request/batch ids) so spans are attributable across streams.
        """
        if duration < 0:
            raise ValueError(f"op {name!r}: negative duration {duration}")
        start = stream.consume_waits()
        for dep in deps:
            start = max(start, dep.require_time())
        injector = self.fault_injector
        if injector is not None and not injector.is_trivial:
            rank = getattr(stream.device, "rank", None)
            if rank is not None:
                injector.check_device(stream.device.name, rank, start)
                factor = injector.compute_factor(rank, start)
                if factor != 1.0:
                    duration = duration * factor
        end = start + duration
        stream.ready_time = end
        event = Event(name=name)
        event.time = end
        if self.capture is not None:
            self.capture.record_kernel(
                stream, event, name, category, duration, deps, stage, nbytes,
                compute, correlation=correlation, flops=flops,
            )
        telemetry = self.telemetry
        if self.record_trace or (
            telemetry is not None and getattr(telemetry, "trace_ops", False)
        ):
            ev = TraceEvent(
                device=stream.device.name,
                stream=stream.name,
                name=name,
                category=category,
                start=start,
                end=end,
                stage=stage,
                nbytes=nbytes,
                correlation=correlation,
                flops=flops,
            )
            if self.record_trace:
                self.trace.append(ev)
                cs = self._category_seconds
                cs[category] = cs.get(category, 0.0) + (end - start)
            if telemetry is not None:
                telemetry.on_op(ev)
        elif telemetry is not None:
            # No trace and no op spans wanted: account from raw values and
            # skip building a TraceEvent nobody would keep (the event
            # construction, not the counting, is the expensive part).
            telemetry.on_op_values(
                category, stream.device.name, end - start, nbytes, flops
            )
        return event

    def submit_many(self, specs: Sequence[tuple]) -> List[Event]:
        """Schedule a batch of independent-or-ordered ops in one call.

        Each spec is ``(stream, name, category, duration, deps, stage,
        nbytes, compute, correlation, flops)`` — the arguments of
        :meth:`submit` in positional form. Start times for the whole
        batch are computed with one ``np.maximum.reduceat`` over the
        flattened (stream base, dep times) segments — the same trick
        :meth:`repro.plan.plan.ExecutionPlan.compute_timeline` uses — so
        a dependency-levelled batch pays one engine call instead of one
        Python call per op. Specs may repeat a stream; later specs on the
        same stream are serialised after earlier ones exactly as
        sequential submits would be.

        Bit-identical to calling :meth:`submit` per spec in order (and
        falls back to exactly that under a non-trivial fault injector,
        where per-op failure checks must run at op granularity).
        """
        injector = self.fault_injector
        if injector is not None and not injector.is_trivial:
            return [
                self.submit(s[0], s[1], s[2], s[3], deps=s[4], stage=s[5],
                            nbytes=s[6], compute=s[7], correlation=s[8],
                            flops=s[9])
                for s in specs
            ]
        n = len(specs)
        if n == 0:
            return []
        durations: List[float] = []
        if n < 64:
            # small batches: a scalar max loop beats the ndarray setup
            # cost of the reduceat path (identical floats — max is exact
            # under any evaluation order).
            starts = []
            for spec in specs:
                duration = spec[3]
                if duration < 0:
                    raise ValueError(
                        f"op {spec[1]!r}: negative duration {duration}"
                    )
                durations.append(duration)
                s = spec[0].consume_waits()
                for dep in spec[4]:
                    t = dep.require_time()
                    if t > s:
                        s = t
                starts.append(s)
            ends = [s + d for s, d in zip(starts, durations)]
        else:
            times: List[float] = []
            offsets = np.empty(n, dtype=np.intp)
            for i, spec in enumerate(specs):
                duration = spec[3]
                if duration < 0:
                    raise ValueError(
                        f"op {spec[1]!r}: negative duration {duration}"
                    )
                offsets[i] = len(times)
                times.append(spec[0].consume_waits())
                for dep in spec[4]:
                    times.append(dep.require_time())
                durations.append(duration)
            starts = np.maximum.reduceat(
                np.asarray(times, dtype=np.float64), offsets
            )
            ends = starts + np.asarray(durations, dtype=np.float64)
        capture = self.capture
        telemetry = self.telemetry
        trace_on = self.record_trace
        spans = telemetry is not None and getattr(telemetry, "trace_ops", False)
        cs = self._category_seconds
        events: List[Event] = []
        for i, spec in enumerate(specs):
            stream = spec[0]
            start = float(starts[i])
            if stream.ready_time > start:
                # this stream already advanced earlier in the batch
                start = stream.ready_time
                end = start + float(durations[i])
            else:
                end = float(ends[i])
            stream.ready_time = end
            event = Event(name=spec[1])
            event.time = end
            events.append(event)
            if capture is not None:
                capture.record_kernel(
                    stream, event, spec[1], spec[2], float(durations[i]),
                    spec[4], spec[5], spec[6], spec[7], correlation=spec[8],
                    flops=spec[9],
                )
            if trace_on or spans:
                ev = TraceEvent(
                    device=stream.device.name,
                    stream=stream.name,
                    name=spec[1],
                    category=spec[2],
                    start=start,
                    end=end,
                    stage=spec[5],
                    nbytes=spec[6],
                    correlation=spec[8],
                    flops=spec[9],
                )
                if trace_on:
                    self.trace.append(ev)
                    cs[spec[2]] = cs.get(spec[2], 0.0) + (end - start)
                if telemetry is not None:
                    telemetry.on_op(ev)
            elif telemetry is not None:
                telemetry.on_op_values(
                    spec[2], stream.device.name, end - start, spec[6], spec[9]
                )
        return events

    def submit_after(
        self,
        pre: Sequence[tuple],
        post: Sequence[tuple],
        floor: float,
    ) -> List[Event]:
        """Submit prebuilt specs whose only dependency is a shared floor.

        The stage-plan replay path (:mod:`repro.core.spmm_mg`): every
        rank's SpMM waits on the same broadcast completion time, so the
        per-spec dependency scan of :meth:`submit_many` collapses to one
        ``max`` against ``floor``. ``pre[i]`` is ``(stream, name,
        category, duration)`` and ``post[i]`` is ``(stage, nbytes,
        compute, correlation, flops)`` — the two halves of the
        :meth:`submit_many` spec around its deps slot, and the timing,
        trace, and telemetry are bit-identical to submitting those specs
        with a dep event at ``floor``. Caller contract (the pipelined
        gate): no epoch capture, trivial fault injector.
        """
        telemetry = self.telemetry
        trace_on = self.record_trace
        spans = telemetry is not None and getattr(telemetry, "trace_ops", False)
        cs = self._category_seconds
        events: List[Event] = []
        for i, (stream, op_name, category, duration) in enumerate(pre):
            start = stream.consume_waits()
            if floor > start:
                start = floor
            end = start + duration
            stream.ready_time = end
            event = Event(name=op_name)
            event.time = end
            events.append(event)
            if trace_on or spans:
                tail = post[i]
                ev = TraceEvent(
                    device=stream.device.name,
                    stream=stream.name,
                    name=op_name,
                    category=category,
                    start=start,
                    end=end,
                    stage=tail[0],
                    nbytes=tail[1],
                    correlation=tail[3],
                    flops=tail[4],
                )
                if trace_on:
                    self.trace.append(ev)
                    cs[category] = cs.get(category, 0.0) + (end - start)
                if telemetry is not None:
                    telemetry.on_op(ev)
            elif telemetry is not None:
                tail = post[i]
                telemetry.on_op_values(
                    category, stream.device.name, end - start, tail[1], tail[4]
                )
        return events

    def submit_fused(
        self,
        stream: Stream,
        parts: Sequence[Tuple[str, str, float, Optional[int], int, float]],
        deps: Sequence[Event] = (),
        compute=None,
        correlation: Optional[str] = None,
    ) -> Event:
        """Submit a chain of back-to-back ops as one engine call.

        ``parts`` is ``[(name, category, duration, stage, nbytes, flops),
        ...]``; part *i+1* starts exactly when part *i* ends on the same
        stream. The emitted trace events are bit-identical to submitting
        the parts separately (each depending on the previous), but the
        chain pays one dependency resolution, one completion
        :class:`Event`, one capture record and — with a fused ``compute``
        closure — one Python dispatch for its numerics.

        Callers that hold per-part closures should fall back to
        sequential submits under a non-trivial fault injector (see
        :attr:`supports_fusion`); if called anyway, the straggler factor
        is applied per part and device failure is checked at the chain's
        start.
        """
        if not parts:
            raise ValueError("submit_fused: empty part list")
        start = stream.consume_waits()
        for dep in deps:
            start = max(start, dep.require_time())
        factor = 1.0
        injector = self.fault_injector
        if injector is not None and not injector.is_trivial:
            rank = getattr(stream.device, "rank", None)
            if rank is not None:
                injector.check_device(stream.device.name, rank, start)
                factor = injector.compute_factor(rank, start)
        telemetry = self.telemetry
        trace_on = self.record_trace
        spans = telemetry is not None and getattr(telemetry, "trace_ops", False)
        cs = self._category_seconds
        s = start
        applied: List[Tuple[str, str, float, Optional[int], int, float]] = []
        for name, category, duration, stage, nbytes, flops in parts:
            if duration < 0:
                raise ValueError(f"op {name!r}: negative duration {duration}")
            if factor != 1.0:
                duration = duration * factor
            e = s + duration
            applied.append((name, category, duration, stage, nbytes, flops))
            if trace_on or spans:
                ev = TraceEvent(
                    device=stream.device.name,
                    stream=stream.name,
                    name=name,
                    category=category,
                    start=s,
                    end=e,
                    stage=stage,
                    nbytes=nbytes,
                    correlation=correlation,
                    flops=flops,
                )
                if trace_on:
                    self.trace.append(ev)
                    cs[category] = cs.get(category, 0.0) + (e - s)
                if telemetry is not None:
                    telemetry.on_op(ev)
            elif telemetry is not None:
                telemetry.on_op_values(
                    category, stream.device.name, e - s, nbytes, flops
                )
            s = e
        end = s
        stream.ready_time = end
        event = Event(name=parts[-1][0])
        event.time = end
        if self.capture is not None:
            self.capture.record_fused(
                stream, event, applied, deps, compute, correlation=correlation,
            )
        return event

    @property
    def supports_fusion(self) -> bool:
        """False when per-op fault checks forbid chained submission."""
        injector = self.fault_injector
        return injector is None or injector.is_trivial

    def barrier(self, streams: Iterable[Stream]) -> float:
        """Synchronise a set of streams to a common time; returns it.

        Models a device-wide/communicator-wide sync point (e.g. the end of
        an epoch, or NCCL's internal rendezvous before a collective).
        """
        streams = list(streams)
        t = max((s.ready_time for s in streams), default=0.0)
        for s in streams:
            s.ready_time = t
        if self.capture is not None:
            self.capture.record_barrier(streams)
        return t

    def now(self, streams: Iterable[Stream]) -> float:
        """Latest ready time across ``streams`` without synchronising."""
        return max((s.ready_time for s in streams), default=0.0)

    def clear_trace(self) -> None:
        self.trace.clear()
        self._category_seconds.clear()

    def record_event(self, ev: TraceEvent) -> None:
        """Append an externally built trace event, keeping totals in sync.

        The entry point for code that used to append to ``trace``
        directly (collectives, replay, recovery) — going through here is
        what keeps :meth:`events_by_category` an O(1) copy instead of a
        full-trace scan.
        """
        self.trace.append(ev)
        cs = self._category_seconds
        cs[ev.category] = cs.get(ev.category, 0.0) + (ev.end - ev.start)

    def record_events(self, events: Sequence[TraceEvent]) -> None:
        """Bulk :meth:`record_event` (replay's regenerated epoch trace)."""
        self.trace.extend(events)
        cs = self._category_seconds
        for ev in events:
            cs[ev.category] = cs.get(ev.category, 0.0) + (ev.end - ev.start)

    def events_by_category(self) -> Dict[str, float]:
        """Total op time per category (summed over devices and streams).

        Maintained incrementally as ops are recorded; returns a copy.
        """
        return dict(self._category_seconds)


class SimContext:
    """One machine's worth of virtual GPUs plus the shared engine.

    ``num_gpus`` selects how many of the machine's GPUs participate (the
    paper sweeps 1/2/4/8); topology queries still see the full machine,
    because unused GPUs do not add links to the ones in use.
    """

    def __init__(
        self,
        machine: MachineSpec,
        num_gpus: Optional[int] = None,
        mode: Mode = Mode.FUNCTIONAL,
        record_trace: bool = True,
        fault_injector=None,
        telemetry=None,
        kernel_backend=None,
    ):
        if num_gpus is None:
            num_gpus = machine.num_gpus
        if not (1 <= num_gpus <= machine.num_gpus):
            raise ValueError(
                f"num_gpus={num_gpus} out of range for {machine.name} "
                f"({machine.num_gpus} GPUs)"
            )
        self.machine = machine
        self.num_gpus = int(num_gpus)
        self.mode = mode
        self.fault_injector = fault_injector
        self.engine = Engine(
            record_trace=record_trace,
            fault_injector=fault_injector,
            telemetry=telemetry,
            backend=kernel_backend,
        )
        self.topology = Topology(machine, fault_injector=fault_injector)
        self.devices: List[VirtualGPU] = [
            VirtualGPU(machine.gpu, rank=r, mode=mode) for r in range(self.num_gpus)
        ]

    @property
    def ranks(self) -> List[int]:
        return list(range(self.num_gpus))

    def device(self, rank: int) -> VirtualGPU:
        return self.devices[rank]

    def all_streams(self) -> List[Stream]:
        out: List[Stream] = []
        for dev in self.devices:
            out.append(dev.compute_stream)
            out.append(dev.comm_stream)
        return out

    def synchronize(self) -> float:
        """Barrier over every stream of every device; returns the time."""
        return self.engine.barrier(self.all_streams())

    def elapsed(self) -> float:
        """Latest completion time across all devices (no sync)."""
        return self.engine.now(self.all_streams())

    def peak_memory(self) -> int:
        """Max peak memory over participating devices, bytes."""
        return max(dev.memory_peak for dev in self.devices)

    def reset_timing(self) -> None:
        """Zero all stream clocks and drop the trace (keep memory state).

        Used between a warm-up epoch and measured epochs so reported epoch
        times exclude one-time staging.
        """
        for s in self.all_streams():
            s.reset()
        self.engine.clear_trace()
