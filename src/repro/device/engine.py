"""Discrete-event engine: simulated timing + execution traces.

Kernels and collectives compute their *results* eagerly (in functional
mode) but their *time* is simulated: each op is submitted to a stream
with a modelled duration, the engine assigns it

``start = max(stream ready time, dependency event times)``
``end   = start + duration``

and advances the stream. Every op is recorded as a :class:`TraceEvent`,
from which the profiling layer reconstructs the paper's per-op runtime
breakdown (Fig. 5) and per-stage SpMM timelines (Figs. 6, 8).

A :class:`SimContext` bundles an engine with the set of virtual GPUs of
one machine and is the object trainers are built around.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.device.device import VirtualGPU
from repro.device.stream import Event, Stream
from repro.device.tensor import Mode
from repro.hardware.spec import MachineSpec
from repro.hardware.topology import Topology


@dataclass(frozen=True)
class TraceEvent:
    """One completed op in the simulated execution."""

    device: str
    stream: str
    name: str
    #: op category for breakdowns: "spmm", "gemm", "activation", "loss",
    #: "adam", "comm", "memset", ...
    category: str
    start: float
    end: float
    #: optional SpMM stage index (for stage timelines)
    stage: Optional[int] = None
    #: bytes moved, for comm ops (0 otherwise)
    nbytes: int = 0
    #: opaque correlation id (e.g. a serving request/batch id) that links
    #: this op to a higher-level unit of work across devices and streams.
    correlation: Optional[str] = None
    #: floating-point operations performed (0 for non-compute ops);
    #: feeds the telemetry layer's roofline gauges.
    flops: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start


class Engine:
    """Assigns simulated times to submitted ops and records the trace.

    ``fault_injector`` (a :class:`repro.resilience.FaultInjector`, or
    None) lets the engine model device failure and stragglers: an op
    submitted on a dead device raises
    :class:`~repro.errors.DeviceFailedError`, and straggler windows
    dilate op durations. With no injector (or an empty plan) the
    scheduling arithmetic is bit-identical to a fault-free engine.
    """

    def __init__(self, record_trace: bool = True, fault_injector=None,
                 telemetry=None):
        self.record_trace = record_trace
        self.fault_injector = fault_injector
        self.trace: List[TraceEvent] = []
        #: active :class:`repro.plan.PlanCapture`, or None. While set,
        #: every submitted op (and its functional ``compute`` closure) is
        #: also recorded into the capture's execution plan.
        self.capture = None
        #: optional :class:`repro.telemetry.Telemetry` hub (duck-typed —
        #: anything with ``on_op(event)``); every submitted op is
        #: forwarded so metrics accumulate even with tracing off.
        self.telemetry = telemetry

    def submit(
        self,
        stream: Stream,
        name: str,
        category: str,
        duration: float,
        deps: Sequence[Event] = (),
        stage: Optional[int] = None,
        nbytes: int = 0,
        compute=None,
        correlation: Optional[str] = None,
        flops: float = 0.0,
    ) -> Event:
        """Schedule one op on ``stream``; returns its completion event.

        ``compute`` is the op's functional closure (already executed by
        the caller); it is ignored unless an epoch capture is active, in
        which case it is recorded so replay can re-run the numerics.
        ``correlation`` tags the trace event with an opaque id (serving
        request/batch ids) so spans are attributable across streams.
        """
        if duration < 0:
            raise ValueError(f"op {name!r}: negative duration {duration}")
        start = stream.consume_waits()
        for dep in deps:
            start = max(start, dep.require_time())
        injector = self.fault_injector
        if injector is not None and not injector.is_trivial:
            rank = getattr(stream.device, "rank", None)
            if rank is not None:
                injector.check_device(stream.device.name, rank, start)
                factor = injector.compute_factor(rank, start)
                if factor != 1.0:
                    duration = duration * factor
        end = start + duration
        stream.ready_time = end
        event = Event(name=name)
        event.time = end
        if self.capture is not None:
            self.capture.record_kernel(
                stream, event, name, category, duration, deps, stage, nbytes,
                compute, correlation=correlation,
            )
        telemetry = self.telemetry
        if self.record_trace or (
            telemetry is not None and getattr(telemetry, "trace_ops", False)
        ):
            ev = TraceEvent(
                device=stream.device.name,
                stream=stream.name,
                name=name,
                category=category,
                start=start,
                end=end,
                stage=stage,
                nbytes=nbytes,
                correlation=correlation,
                flops=flops,
            )
            if self.record_trace:
                self.trace.append(ev)
            if telemetry is not None:
                telemetry.on_op(ev)
        elif telemetry is not None:
            # No trace and no op spans wanted: account from raw values and
            # skip building a TraceEvent nobody would keep (the event
            # construction, not the counting, is the expensive part).
            telemetry.on_op_values(
                category, stream.device.name, end - start, nbytes, flops
            )
        return event

    def barrier(self, streams: Iterable[Stream]) -> float:
        """Synchronise a set of streams to a common time; returns it.

        Models a device-wide/communicator-wide sync point (e.g. the end of
        an epoch, or NCCL's internal rendezvous before a collective).
        """
        streams = list(streams)
        t = max((s.ready_time for s in streams), default=0.0)
        for s in streams:
            s.ready_time = t
        if self.capture is not None:
            self.capture.record_barrier(streams)
        return t

    def now(self, streams: Iterable[Stream]) -> float:
        """Latest ready time across ``streams`` without synchronising."""
        return max((s.ready_time for s in streams), default=0.0)

    def clear_trace(self) -> None:
        self.trace.clear()

    def events_by_category(self) -> Dict[str, float]:
        """Total op time per category (summed over devices and streams)."""
        out: Dict[str, float] = {}
        for ev in self.trace:
            out[ev.category] = out.get(ev.category, 0.0) + ev.duration
        return out


class SimContext:
    """One machine's worth of virtual GPUs plus the shared engine.

    ``num_gpus`` selects how many of the machine's GPUs participate (the
    paper sweeps 1/2/4/8); topology queries still see the full machine,
    because unused GPUs do not add links to the ones in use.
    """

    def __init__(
        self,
        machine: MachineSpec,
        num_gpus: Optional[int] = None,
        mode: Mode = Mode.FUNCTIONAL,
        record_trace: bool = True,
        fault_injector=None,
        telemetry=None,
    ):
        if num_gpus is None:
            num_gpus = machine.num_gpus
        if not (1 <= num_gpus <= machine.num_gpus):
            raise ValueError(
                f"num_gpus={num_gpus} out of range for {machine.name} "
                f"({machine.num_gpus} GPUs)"
            )
        self.machine = machine
        self.num_gpus = int(num_gpus)
        self.mode = mode
        self.fault_injector = fault_injector
        self.engine = Engine(
            record_trace=record_trace,
            fault_injector=fault_injector,
            telemetry=telemetry,
        )
        self.topology = Topology(machine, fault_injector=fault_injector)
        self.devices: List[VirtualGPU] = [
            VirtualGPU(machine.gpu, rank=r, mode=mode) for r in range(self.num_gpus)
        ]

    @property
    def ranks(self) -> List[int]:
        return list(range(self.num_gpus))

    def device(self, rank: int) -> VirtualGPU:
        return self.devices[rank]

    def all_streams(self) -> List[Stream]:
        out: List[Stream] = []
        for dev in self.devices:
            out.append(dev.compute_stream)
            out.append(dev.comm_stream)
        return out

    def synchronize(self) -> float:
        """Barrier over every stream of every device; returns the time."""
        return self.engine.barrier(self.all_streams())

    def elapsed(self) -> float:
        """Latest completion time across all devices (no sync)."""
        return self.engine.now(self.all_streams())

    def peak_memory(self) -> int:
        """Max peak memory over participating devices, bytes."""
        return max(dev.memory_peak for dev in self.devices)

    def reset_timing(self) -> None:
        """Zero all stream clocks and drop the trace (keep memory state).

        Used between a warm-up epoch and measured epochs so reported epoch
        times exclude one-time staging.
        """
        for s in self.all_streams():
            s.ready_time = 0.0
            s._pending_waits.clear()
        self.engine.clear_trace()
