"""Epoch-graph capture & replay — the sim-graph analogue of CUDA Graphs.

Full-batch training repeats a bit-identical op DAG every epoch; this
package captures one eagerly-scheduled epoch into an immutable
:class:`ExecutionPlan` and replays later epochs with near-zero
scheduling overhead (closures in captured order + vectorized timeline
arithmetic + bulk trace regeneration). See ``docs/performance.md`` for
the lifecycle and invalidation rules.
"""

from repro.plan.capture import PlanCapture
from repro.plan.plan import ExecutionPlan, PlanStats, ReplayResult, build_levels

__all__ = [
    "ExecutionPlan",
    "PlanCapture",
    "PlanStats",
    "ReplayResult",
    "build_levels",
]
