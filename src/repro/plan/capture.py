"""Graph capture for the discrete-event engine (epoch recording).

:class:`PlanCapture` attaches to an :class:`~repro.device.engine.Engine`
for the duration of one eagerly-executed epoch and records every
submitted op: the streams it occupies, its modelled duration, the
dependency edges (event deps plus the implicit in-order edge per
stream), the per-stream trace template, and the functional compute
closure the kernel registered. ``finalize()`` freezes the recording into
an immutable :class:`~repro.plan.plan.ExecutionPlan`.

Capture is refused while a non-trivial fault plan is active: injected
faults perturb durations and can abort collectives mid-epoch, and a
replayed plan must never mask a fault (the trainer falls back to eager
scheduling instead).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.device.engine import Engine
from repro.device.stream import Event, Stream
from repro.errors import PlanError
from repro.plan.plan import ExecutionPlan, build_levels


@dataclass
class _OpRecord:
    """One captured op (kernel, collective, fused chain, or barrier)."""

    stream_ids: Tuple[int, ...]
    deps: Tuple[int, ...]
    duration: float
    #: per trace event: (device, stream, name, category, stage, nbytes,
    #: correlation, chained, part_duration, flops); empty for untraced
    #: ops (barriers). Plain ops carry ``(False, None)`` in the
    #: chained/part_duration slots — one entry per participating stream,
    #: spanning the whole op. Fused ops carry one entry per chained part
    #: with its own duration; ``chained`` marks parts that start at the
    #: previous part's end instead of the op's start.
    trace: Tuple[
        Tuple[str, str, str, str, Optional[int], int, Optional[str],
              bool, Optional[float], float],
        ...,
    ] = ()
    compute: Optional[Callable[[], object]] = None
    is_loss: bool = False
    #: per-part durations of a fused chain (empty for plain ops); replay
    #: recomputes the op's end by chaining these from its start.
    parts: Tuple[float, ...] = ()


class PlanCapture:
    """Records one epoch's submitted ops into an :class:`ExecutionPlan`."""

    def __init__(self, engine: Engine):
        self.engine = engine
        self.active = False
        self._streams: List[Stream] = []
        self._stream_ids: Dict[int, int] = {}
        #: maps id(event) -> producing op index. The events themselves are
        #: kept alive in ``_events`` so ids cannot be recycled mid-capture.
        self._event_op: Dict[int, int] = {}
        self._events: List[Event] = []
        self._ops: List[_OpRecord] = []

    # -- lifecycle -----------------------------------------------------------

    def begin(self) -> None:
        """Attach to the engine; every subsequent submit is recorded."""
        if self.active:
            raise PlanError("capture already active")
        if self.engine.capture is not None:
            raise PlanError("another capture is attached to this engine")
        injector = self.engine.fault_injector
        if injector is not None and not injector.is_trivial:
            raise PlanError(
                "cannot capture an execution plan while a fault plan is "
                "active — injected faults must surface through eager "
                "scheduling"
            )
        self.active = True
        self.engine.capture = self

    def end(self) -> None:
        """Detach from the engine (idempotent)."""
        if self.engine.capture is self:
            self.engine.capture = None
        self.active = False

    # -- recording -----------------------------------------------------------

    def _sid(self, stream: Stream) -> int:
        sid = self._stream_ids.get(id(stream))
        if sid is None:
            sid = len(self._streams)
            self._stream_ids[id(stream)] = sid
            self._streams.append(stream)
        return sid

    def _dep_ids(self, deps: Sequence[Event]) -> Tuple[int, ...]:
        """Map event dependencies to producing op indices.

        Events recorded before capture began carry times at or below the
        epoch-start barrier — every captured op starts at or after that
        barrier, so dropping them preserves the timeline bit-exactly.
        """
        seen = set()
        out: List[int] = []
        for dep in deps:
            op = self._event_op.get(id(dep))
            if op is not None and op not in seen:
                seen.add(op)
                out.append(op)
        return tuple(out)

    def record_kernel(
        self,
        stream: Stream,
        event: Event,
        name: str,
        category: str,
        duration: float,
        deps: Sequence[Event],
        stage: Optional[int],
        nbytes: int,
        compute: Optional[Callable[[], object]],
        correlation: Optional[str] = None,
        flops: float = 0.0,
    ) -> None:
        """Record one single-stream op submitted through the engine."""
        sid = self._sid(stream)
        op_index = len(self._ops)
        self._ops.append(
            _OpRecord(
                stream_ids=(sid,),
                deps=self._dep_ids(deps),
                duration=float(duration),
                trace=(
                    (
                        stream.device.name,
                        stream.name,
                        name,
                        category,
                        stage,
                        nbytes,
                        correlation,
                        False,
                        None,
                        flops,
                    ),
                ),
                compute=compute,
                is_loss=(category == "loss"),
            )
        )
        self._event_op[id(event)] = op_index
        self._events.append(event)

    def record_collective(
        self,
        streams: Sequence[Stream],
        events: Sequence[Event],
        name: str,
        duration: float,
        deps: Sequence[Event],
        stage: Optional[int],
        nbytes: int,
        compute: Optional[Callable[[], object]] = None,
        category: str = "comm",
        correlation: Optional[str] = None,
        flops: float = 0.0,
    ) -> None:
        """Record one rendezvous op spanning every participant's stream.

        ``streams``/``events`` are aligned, in the communicator's rank
        order — the same order the eager path records trace events in.
        """
        sids = tuple(self._sid(s) for s in streams)
        op_index = len(self._ops)
        self._ops.append(
            _OpRecord(
                stream_ids=sids,
                deps=self._dep_ids(deps),
                duration=float(duration),
                trace=tuple(
                    (s.device.name, s.name, name, category, stage, nbytes,
                     correlation, False, None, flops)
                    for s in streams
                ),
                compute=compute,
            )
        )
        for event in events:
            self._event_op[id(event)] = op_index
            self._events.append(event)

    def record_fused(
        self,
        stream: Stream,
        event: Event,
        parts: Sequence[Tuple[str, str, float, Optional[int], int, float]],
        deps: Sequence[Event],
        compute: Optional[Callable[[], object]],
        correlation: Optional[str] = None,
    ) -> None:
        """Record one eagerly fused chain (:meth:`Engine.submit_fused`).

        ``parts`` is ``[(name, category, duration, stage, nbytes, flops),
        ...]`` in chain order; the op's single completion event marks the
        last part's end.
        """
        sid = self._sid(stream)
        op_index = len(self._ops)
        durations = tuple(float(p[2]) for p in parts)
        self._ops.append(
            _OpRecord(
                stream_ids=(sid,),
                deps=self._dep_ids(deps),
                duration=float(sum(durations)),
                trace=tuple(
                    (
                        stream.device.name,
                        stream.name,
                        p[0],
                        p[1],
                        p[3],
                        p[4],
                        correlation,
                        k > 0,
                        durations[k],
                        p[5],
                    )
                    for k, p in enumerate(parts)
                ),
                compute=compute,
                parts=durations,
            )
        )
        self._event_op[id(event)] = op_index
        self._events.append(event)

    def record_barrier(self, streams: Sequence[Stream]) -> None:
        """Record an engine barrier as a zero-duration, untraced sync op."""
        sids = tuple(self._sid(s) for s in streams)
        self._ops.append(
            _OpRecord(stream_ids=sids, deps=(), duration=0.0)
        )

    # -- finalization --------------------------------------------------------

    def finalize(self, fuse: bool = False) -> ExecutionPlan:
        """Freeze the recording into an immutable :class:`ExecutionPlan`.

        With ``fuse=True`` the :mod:`repro.plan.fuse` peephole first
        collapses eligible SpMM→GeMM / GeMM→ReLU chains into single
        fused ops (timeline- and bit-identical; see that module for the
        eligibility rules).
        """
        if self.active:
            raise PlanError("end() the capture before finalizing")
        ops = self._ops
        trace_order = None
        if fuse:
            from repro.plan.fuse import fuse_captured_ops

            ops, trace_order = fuse_captured_ops(ops)
        n_streams = len(self._streams)
        last_on_stream = [-1] * n_streams
        full_deps: List[Tuple[int, ...]] = []
        for i, op in enumerate(ops):
            deps = set(op.deps)
            for sid in op.stream_ids:
                prev = last_on_stream[sid]
                if prev >= 0:
                    deps.add(prev)
                last_on_stream[sid] = i
            full_deps.append(tuple(sorted(deps)))
        durations = np.asarray([op.duration for op in ops], dtype=np.float64)
        trace_template = [
            (i, *entry) for i, op in enumerate(ops) for entry in op.trace
        ]
        closures = [
            (op.compute, op.is_loss) for op in ops if op.compute is not None
        ]
        category_totals: Dict[str, float] = {}
        category_counts: Dict[str, int] = {}
        comm_nbytes = 0.0
        for op in ops:
            for entry in op.trace:
                category = entry[3]
                # fused chains attribute each part's own duration to its
                # category; plain ops (entry duration None) span the op.
                entry_duration = entry[8] if entry[8] is not None else op.duration
                category_totals[category] = (
                    category_totals.get(category, 0.0) + entry_duration
                )
                category_counts[category] = category_counts.get(category, 0) + 1
                if category == "comm":
                    comm_nbytes += entry[5]
        fused_parts = {
            i: op.parts for i, op in enumerate(ops) if op.parts
        }
        return ExecutionPlan(
            streams=self._streams,
            durations=durations,
            levels=build_levels(full_deps),
            trace_template=trace_template,
            closures=closures,
            last_op_per_stream=last_on_stream,
            category_totals=category_totals,
            category_counts=category_counts,
            comm_nbytes=comm_nbytes,
            fused_parts=fused_parts,
            trace_order=trace_order,
        )
