"""Execution plans: the sim-graph analogue of CUDA Graphs.

Full-batch GCN training repeats a bit-identical op DAG every epoch (the
same premise behind the paper's L+3 buffer reuse, §4.2). An
:class:`ExecutionPlan` freezes one eagerly-scheduled epoch — every op's
streams, duration, dependency edges, trace template and functional
compute closure — so subsequent epochs replay it without re-walking the
Python scheduling path: no cost-model evaluation, no per-op dependency
resolution, no rendezvous validation.

Replay is bit-identical to eager execution because it performs the very
same floating-point operations the engine would:

* an op's start is ``max`` over its predecessors' end times (``max`` is
  exact under any grouping),
* its end is ``start + duration`` with the *captured* duration — the
  same two doubles the eager path adds.

The timeline is advanced with vectorized arithmetic: ops are grouped
into topological *levels* at finalization; within a level every start is
computed with one ``np.maximum.reduceat`` over the flattened dependency
ends, and every end with one vector add. Trace events are regenerated in
bulk from a pre-built template.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.device.engine import Engine, TraceEvent
from repro.device.stream import Stream
from repro.errors import PlanError


@dataclass
class PlanStats:
    """Capture/replay counters of one trainer (observability + tests)."""

    captures: int = 0
    replays: int = 0
    eager_epochs: int = 0
    invalidations: int = 0


@dataclass(frozen=True)
class ReplayResult:
    """What one replayed epoch produced."""

    #: sum of the per-rank local losses (closures of category "loss"),
    #: accumulated in captured program order — divide by the global
    #: training-vertex count for the epoch loss.
    loss_sum: float
    #: latest op completion time (== the epoch-end barrier time).
    end_time: float
    #: trace events appended to the engine (0 when tracing is off).
    events_emitted: int


class ExecutionPlan:
    """An immutable captured epoch: ops, dependencies, closures, trace.

    Built by :class:`~repro.plan.capture.PlanCapture`; replayed against
    the engine it was captured from. All schedule state is normalised to
    the epoch-start barrier time, so a plan captured at ``t0`` replays
    correctly at any later ``t0'``.
    """

    def __init__(
        self,
        streams: Sequence[Stream],
        durations: np.ndarray,
        levels: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]],
        trace_template: Sequence[
            Tuple[int, str, str, str, str, Optional[int], int, Optional[str],
                  bool, Optional[float], float]
        ],
        closures: Sequence[Tuple[Callable[[], object], bool]],
        last_op_per_stream: Sequence[int],
        category_totals: dict,
        category_counts: Optional[dict] = None,
        comm_nbytes: float = 0.0,
        fused_parts: Optional[dict] = None,
        trace_order: Optional[Sequence[int]] = None,
    ):
        self._streams: Tuple[Stream, ...] = tuple(streams)
        self._durations = durations
        #: per level: (op indices, flattened dep op indices, reduceat offsets)
        self._levels = tuple(levels)
        self._trace_template = tuple(trace_template)
        self._closures = tuple(closures)
        self._last_op_per_stream = tuple(last_op_per_stream)
        self._category_totals = dict(category_totals)
        self._category_counts = dict(category_counts or {})
        self._comm_nbytes = float(comm_nbytes)
        #: op index -> chained part durations, for fused chains. A fused
        #: op's end is its start plus its part durations added one at a
        #: time (the same float adds the eager chain performed), which is
        #: not the same double as start + sum(parts) — so the timeline
        #: recomputes those ends explicitly.
        self._fused_parts = {
            int(k): tuple(float(d) for d in v)
            for k, v in (fused_parts or {}).items()
        }
        self._fused_by_level: Optional[Tuple] = None
        if self._fused_parts:
            per_level = []
            for idx, _, _ in self._levels:
                in_level = [i for i in idx.tolist() if i in self._fused_parts]
                if not in_level:
                    per_level.append(None)
                    continue
                width = max(len(self._fused_parts[i]) for i in in_level)
                mat = np.zeros((len(in_level), width), dtype=np.float64)
                for r, i in enumerate(in_level):
                    p = self._fused_parts[i]
                    mat[r, : len(p)] = p
                per_level.append(
                    (np.asarray(in_level, dtype=np.int64), mat)
                )
            self._fused_by_level = tuple(per_level)
        #: True when any template entry is a chained fused part (replay
        #: then takes the chaining path instead of the bulk comprehension).
        self._has_fused_trace = any(
            entry[9] is not None for entry in self._trace_template
        )
        #: template position -> emission rank: fusion makes a chain's
        #: trace entries contiguous, so replay builds events in template
        #: order (the chaining arithmetic needs that) and then emits them
        #: back in the captured eager submission order.
        self._trace_emit_perm: Optional[List[int]] = None
        if trace_order is not None:
            order = list(trace_order)
            if order != sorted(order):
                self._trace_emit_perm = sorted(
                    range(len(order)), key=order.__getitem__
                )

    # -- introspection -------------------------------------------------------

    @property
    def num_ops(self) -> int:
        return int(self._durations.shape[0])

    @property
    def num_streams(self) -> int:
        return len(self._streams)

    @property
    def num_levels(self) -> int:
        return len(self._levels)

    @property
    def num_closures(self) -> int:
        return len(self._closures)

    def category_totals(self) -> dict:
        """Total captured op duration per category (one epoch's worth)."""
        return dict(self._category_totals)

    def category_counts(self) -> dict:
        """Captured trace-event count per category (one epoch's worth)."""
        return dict(self._category_counts)

    @property
    def comm_nbytes(self) -> float:
        """Total bytes moved by captured comm events (one epoch's worth)."""
        return self._comm_nbytes

    def op_dependencies(self) -> List[Tuple[int, ...]]:
        """Per-op dependency edges, rebuilt from the level encoding.

        ``result[i]`` lists every op index ``i`` waits for (explicit
        event deps plus the implicit previous-op-per-stream edge) — the
        exact ground-truth DAG the critical-path analyzer walks.
        """
        deps: List[Tuple[int, ...]] = [()] * self.num_ops
        for idx, flat_deps, offsets in self._levels:
            if flat_deps.size == 0:
                continue
            bounds = offsets.tolist() + [int(flat_deps.size)]
            flat = flat_deps.tolist()
            for pos, op in enumerate(idx.tolist()):
                deps[op] = tuple(flat[bounds[pos]:bounds[pos + 1]])
        return deps

    def op_meta(self) -> List[Tuple[str, str, str, str]]:
        """Per-op ``(name, category, device, stream)`` labels.

        Taken from each op's first trace-template entry (a fused op
        keeps its chain-head label); ops without template entries —
        plans captured with tracing off — get a positional placeholder.
        """
        meta: List[Tuple[str, str, str, str]] = [
            (f"op{i}", "op", "-", "-") for i in range(self.num_ops)
        ]
        seen = [False] * self.num_ops
        for (op, device, stream_name, name, category, _stage, _nbytes,
             _correlation, _chained, _dur, _flops) in self._trace_template:
            if not seen[op]:
                seen[op] = True
                meta[op] = (name, category, device, stream_name)
        return meta

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ExecutionPlan(ops={self.num_ops}, streams={self.num_streams}, "
            f"levels={self.num_levels})"
        )

    # -- replay --------------------------------------------------------------

    def compute_timeline(self, t0: float) -> Tuple[np.ndarray, np.ndarray]:
        """Start/end times of every op for an epoch starting at ``t0``.

        Pure timeline arithmetic (no compute, no trace): level 0 ops
        start at the epoch barrier; each later level's starts are the
        segment-maxima of their dependencies' ends.
        """
        n = self.num_ops
        starts = np.empty(n, dtype=np.float64)
        ends = np.empty(n, dtype=np.float64)
        durations = self._durations
        fused_by_level = self._fused_by_level
        for li, (idx, flat_deps, offsets) in enumerate(self._levels):
            if flat_deps.size == 0:
                starts[idx] = t0
            elif idx.size == 1:
                starts[idx[0]] = ends[flat_deps].max()
            else:
                starts[idx] = np.maximum.reduceat(ends[flat_deps], offsets)
            ends[idx] = starts[idx] + durations[idx]
            if fused_by_level is not None and fused_by_level[li] is not None:
                # fused chains: end = ((start + d0) + d1) + ... — the
                # eager chain's exact float adds (column-wise over the
                # zero-padded part matrix; +0.0 is exact on the padding).
                f_idx, parts = fused_by_level[li]
                e = starts[f_idx]
                for col in parts.T:
                    e = e + col
                ends[f_idx] = e
        return starts, ends

    def replay(self, engine: Engine, t0: float) -> ReplayResult:
        """Re-execute the captured epoch starting at barrier time ``t0``.

        Runs the functional closures in captured program order, advances
        the captured streams' clocks, and (when the engine records
        traces) bulk-appends the regenerated :class:`TraceEvent` list.
        """
        # 1. functional compute, in the captured sequential order.
        loss_sum = 0.0
        for fn, is_loss in self._closures:
            value = fn()
            if is_loss:
                loss_sum += value

        # 2. timeline arithmetic.
        if self.num_ops == 0:
            return ReplayResult(loss_sum=loss_sum, end_time=t0, events_emitted=0)
        starts, ends = self.compute_timeline(t0)

        # 3. stream clocks.
        for stream, last in zip(self._streams, self._last_op_per_stream):
            if last >= 0:
                stream.ready_time = float(ends[last])

        # 4. trace regeneration, in bulk.
        emitted = 0
        if engine.record_trace:
            if not self._has_fused_trace:
                events = [
                    TraceEvent(
                        device=device,
                        stream=stream_name,
                        name=name,
                        category=category,
                        start=float(starts[op]),
                        end=float(ends[op]),
                        stage=stage,
                        nbytes=nbytes,
                        correlation=correlation,
                        flops=flops,
                    )
                    for op, device, stream_name, name, category, stage, nbytes,
                    correlation, _chained, _dur, flops in self._trace_template
                ]
            else:
                # fused chains: chain part end-times sequentially, exactly
                # as the eager path did when the parts were separate ops.
                events = []
                append = events.append
                prev_end = 0.0
                for (op, device, stream_name, name, category, stage, nbytes,
                     correlation, chained, dur, flops) in self._trace_template:
                    if dur is None:
                        s = float(starts[op])
                        e = float(ends[op])
                    else:
                        s = prev_end if chained else float(starts[op])
                        e = s + dur
                    prev_end = e
                    append(
                        TraceEvent(
                            device=device,
                            stream=stream_name,
                            name=name,
                            category=category,
                            start=s,
                            end=e,
                            stage=stage,
                            nbytes=nbytes,
                            correlation=correlation,
                            flops=flops,
                        )
                    )
            if self._trace_emit_perm is not None:
                events = [events[k] for k in self._trace_emit_perm]
            engine.record_events(events)
            emitted = len(events)
        end_time = float(ends.max())
        telemetry = getattr(engine, "telemetry", None)
        if telemetry is not None:
            # aggregate accounting: per-event on_op calls would forfeit
            # the vectorised-replay speedup the plan exists to provide.
            telemetry.on_replay(
                start=t0,
                end=end_time,
                category_totals=self._category_totals,
                category_counts=self._category_counts,
                comm_nbytes=self._comm_nbytes,
                num_gpus=len({s.device.name for s in self._streams}),
            )
        return ReplayResult(
            loss_sum=loss_sum,
            end_time=end_time,
            events_emitted=emitted,
        )


def build_levels(
    full_deps: List[Tuple[int, ...]],
) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Group ops into topological levels for vectorized replay.

    ``full_deps[i]`` lists every op index ``i`` must wait for (explicit
    event dependencies plus the implicit previous-op-per-stream edges).
    Returns per level ``(op indices, flattened deps, reduceat offsets)``.
    Level 0 holds the dependency-free ops (they start at the epoch
    barrier); within any later level every op has at least one
    dependency, so ``np.maximum.reduceat`` segments are all non-empty.
    """
    n = len(full_deps)
    level = np.zeros(n, dtype=np.int64)
    for i, deps in enumerate(full_deps):
        if deps:
            level[i] = 1 + max(level[d] for d in deps)
    out: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    if n == 0:
        return out
    for lv in range(int(level.max()) + 1):
        idx = np.nonzero(level == lv)[0]
        if idx.size == 0:  # pragma: no cover - levels are dense by construction
            raise PlanError(f"empty topological level {lv}")
        flat: List[int] = []
        offsets: List[int] = []
        for i in idx:
            offsets.append(len(flat))
            flat.extend(full_deps[i])
        out.append(
            (
                idx.astype(np.int64),
                np.asarray(flat, dtype=np.int64),
                np.asarray(offsets, dtype=np.int64),
            )
        )
    return out
