"""FusedChain: the op-fusion peephole over captured plans.

Full-batch GCN epochs are dominated by short fixed chains on each
device's compute stream — ``A·H`` then ``(AH)·W`` (SpMM→GeMM) and
``Z = HW`` then ``relu(Z)`` (GeMM→activation). Each link costs a full
trip through the Python dispatch layer at replay: one closure call, one
timeline slot, one dependency resolution. This pass collapses eligible
chains into a single plan op with one composed closure and chained
per-part trace entries, so a replayed epoch pays one dispatch per chain
instead of one per op.

A successor ``B`` may be absorbed into the chain ending at ``A`` only
when the merge provably cannot change the timeline or the numerics:

* both are single-stream ops on the *same* stream, and ``B`` is ``A``'s
  immediate successor on it (so ``B``'s start already equals ``A``'s
  end);
* ``B``'s explicit event deps are ``{A}`` or empty (no cross-stream
  wait that could push ``B`` later);
* no op other than ``B`` waits on ``A``'s event (a mid-chain event
  would vanish);
* neither op is a loss (replay accumulates loss closures' return
  values individually);
* ``B``'s closure is not a batch *group* closure (it computes other
  ops' outputs; running it at ``A``'s program slot would reorder it
  before those outputs' inputs are produced);
* the (last category of ``A``, first category of ``B``) pair is in the
  fusable set.

Merged ops keep per-part durations in their trace template, and replay
chains the part end-times sequentially — the very float adds the eager
path performs — so fused replay stays bit-identical to unfused eager
execution. Correctness also relies on the scheduler invariant the
capture layer already depends on: every data hazard between ops is
expressed as an event dependency, so an op with no path to the chain
cannot read or write the chain's buffers.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Set, Tuple

#: (category of chain tail, category of candidate successor) pairs the
#: peephole may merge: SpMM→GeMM (AH then (AH)W) and GeMM→ReLU.
FUSABLE_PAIRS: Set[Tuple[str, str]] = {
    ("spmm", "gemm"),
    ("gemm", "activation"),
}


def _compose(closures: Sequence[Callable[[], object]]):
    """One closure running ``closures`` in order (None when empty)."""
    if not closures:
        return None
    if len(closures) == 1:
        return closures[0]

    def fused_compute() -> None:
        for fn in closures:
            fn()

    return fused_compute


def fuse_captured_ops(ops: List, pairs: Optional[Set[Tuple[str, str]]] = None):
    """Collapse eligible chains in a captured op list.

    ``ops`` is the :class:`~repro.plan.capture._OpRecord` list in
    program order; returns ``(new_ops, entry_order)`` where ``new_ops``
    is a new list (with dep indices remapped) in which every maximal
    eligible chain is one fused record, and ``entry_order[k]`` is the
    position the ``k``-th trace entry of the new list held in the
    original (eager submission) trace order — merging makes a chain's
    entries contiguous, and replay uses this to emit events back in the
    eager order. The input records are not mutated.
    """
    from repro.plan.capture import _OpRecord

    if pairs is None:
        pairs = FUSABLE_PAIRS
    n = len(ops)
    entry_base = [0] * (n + 1)
    for i, op in enumerate(ops):
        entry_base[i + 1] = entry_base[i] + len(op.trace)
    identity_order = list(range(entry_base[n]))
    if n < 2:
        return list(ops), identity_order

    single = [len(op.stream_ids) == 1 and bool(op.trace) for op in ops]
    succ = [-1] * n
    last_on = {}
    for i, op in enumerate(ops):
        for sid in op.stream_ids:
            p = last_on.get(sid)
            if p is not None and succ[p] == -1:
                succ[p] = i
            last_on[sid] = i
    dep_from: List[List[int]] = [[] for _ in range(n)]
    for j, op in enumerate(ops):
        for d in op.deps:
            dep_from[d].append(j)

    def can_extend(t: int, u: int) -> bool:
        if not (single[t] and single[u]):
            return False
        if ops[t].stream_ids[0] != ops[u].stream_ids[0]:
            return False
        if ops[t].is_loss or ops[u].is_loss:
            return False
        if any(d != t for d in ops[u].deps):
            return False
        if any(j != u for j in dep_from[t]):
            return False
        if getattr(ops[u].compute, "_group", False):
            # a batch-group closure computes *other* ops' outputs too;
            # absorbing it would run it before those ops' producers.
            return False
        return (ops[t].trace[-1][3], ops[u].trace[0][3]) in pairs

    consumed = [False] * n
    member_head = list(range(n))
    chains = {}
    for i in range(n):
        if consumed[i]:
            continue
        members = [i]
        t = i
        while True:
            u = succ[t]
            if u < 0 or consumed[u] or not can_extend(t, u):
                break
            members.append(u)
            consumed[u] = True
            member_head[u] = i
            t = u
        if len(members) > 1:
            chains[i] = members

    if not chains:
        return list(ops), identity_order

    new_index = {}
    new_ops: List[_OpRecord] = []
    entry_order: List[int] = []
    for i, op in enumerate(ops):
        if consumed[i]:
            continue
        new_index[i] = len(new_ops)
        members = chains.get(i)
        if members is None:
            new_ops.append(op)
            entry_order.extend(range(entry_base[i], entry_base[i + 1]))
            continue
        trace = []
        parts: List[float] = []
        closures = []
        first = True
        for m in members:
            mop = ops[m]
            entry_order.extend(range(entry_base[m], entry_base[m + 1]))
            if mop.compute is not None:
                closures.append(mop.compute)
            for entry in mop.trace:
                d = entry[8] if entry[8] is not None else mop.duration
                chained = bool(entry[7]) or not first
                first = False
                trace.append(entry[:7] + (chained, d) + entry[9:])
                parts.append(d)
        new_ops.append(
            _OpRecord(
                stream_ids=op.stream_ids,
                deps=op.deps,
                duration=float(sum(parts)),
                trace=tuple(trace),
                compute=_compose(closures),
                is_loss=False,
                parts=tuple(parts),
            )
        )

    # remap explicit deps onto the new indexing (chain members -> head)
    out: List[_OpRecord] = []
    for i, op in enumerate(ops):
        if consumed[i]:
            continue
        ni = new_index[i]
        nop = new_ops[ni]
        mapped: List[int] = []
        seen: Set[int] = set()
        for d in nop.deps:
            nd = new_index[member_head[d]]
            if nd != ni and nd not in seen:
                seen.add(nd)
                mapped.append(nd)
        if tuple(mapped) != nop.deps:
            nop = _OpRecord(
                stream_ids=nop.stream_ids,
                deps=tuple(mapped),
                duration=nop.duration,
                trace=nop.trace,
                compute=nop.compute,
                is_loss=nop.is_loss,
                parts=nop.parts,
            )
        out.append(nop)
    return out, entry_order
