"""Shared embedding-cache machinery (serving + training).

* :mod:`repro.cache.lru` — the degree-aware LRU row cache the serving
  layer queries per vertex (moved here from ``repro.serve.cache``;
  that module re-exports for compatibility and now warns on import);
* :mod:`repro.cache.policy` — bounded-staleness / byte-budget policy;
* :mod:`repro.cache.training` — the training-time remote-tile cache
  that intercepts the staged broadcast SpMM (CaPGNN-style).
"""

from repro.cache.lru import CacheStats, EmbeddingCache, pin_by_degree
from repro.cache.policy import CachePolicy
from repro.cache.training import (
    REFRESH,
    SERVE,
    CacheEpochCounters,
    TrainingTileCache,
)

__all__ = [
    "CachePolicy",
    "CacheStats",
    "CacheEpochCounters",
    "EmbeddingCache",
    "REFRESH",
    "SERVE",
    "TrainingTileCache",
    "pin_by_degree",
]
