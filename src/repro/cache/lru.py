"""Per-layer hidden-embedding cache with LRU eviction + hot-vertex pinning.

This is the shared cache core (:mod:`repro.cache`): the serving layer
(:mod:`repro.serve`) keys it by query vertex, and the training-time
remote-embedding cache (:mod:`repro.cache.training`) reuses the same
degree-ranked admission idea (:func:`pin_by_degree`) for its per-stage
row sets.

The cost of an L-layer GCN query is the size of its L-hop neighborhood
— the "neighborhood explosion" that makes naive per-request recompute
hopeless on power-law graphs. Caching *hidden* embeddings collapses it:
a cached ``H^(l)[v]`` truncates the entire subtree below ``(v, l)``, so
a query only recomputes the uncached frontier (Song et al.'s joint
caching/partitioning observation; DistGNN's cached aggregates are the
training-side analogue).

Entries are keyed ``(layer, vertex)`` and stamped with the model
version that produced them: bumping the served weights makes every
stale entry a miss without an O(capacity) sweep — stale rows are lazily
dropped on touch or evicted by LRU pressure. Eviction is LRU over the
un-pinned population; *pinning* exempts a designated hot set (top
vertices by degree — which under Zipf query skew is also the top by hit
probability) so bursts of cold-tail queries cannot flush the entries
that serve the bulk of the traffic.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class CacheStats:
    """Counters over the cache's lifetime (reset with the cache)."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    stale_drops: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


def pin_by_degree(
    degrees: np.ndarray, num_pinned: int
) -> FrozenSet[int]:
    """The ``num_pinned`` highest-degree vertices (ties: lowest id wins)."""
    if num_pinned <= 0:
        return frozenset()
    degrees = np.asarray(degrees)
    top = np.argsort(-degrees, kind="stable")[:num_pinned]
    return frozenset(int(v) for v in top)


class EmbeddingCache:
    """LRU cache of hidden-embedding rows keyed ``(layer, vertex)``.

    ``capacity`` counts *entries* (one vertex at one layer); zero
    disables caching entirely (every lookup misses, inserts are
    dropped) — the cold-path configuration of the serving benchmarks.
    """

    def __init__(
        self,
        capacity: int,
        pinned: Iterable[int] = (),
    ):
        if capacity < 0:
            raise ConfigurationError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self.pinned: FrozenSet[int] = frozenset(int(v) for v in pinned)
        #: (layer, vertex) -> (model_version, embedding row); insertion /
        #: touch order is the LRU order (oldest first).
        self._entries: "OrderedDict[Tuple[int, int], Tuple[int, np.ndarray]]" = (
            OrderedDict()
        )
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def occupancy(self) -> float:
        return len(self._entries) / self.capacity if self.capacity else 0.0

    # -- lookup ---------------------------------------------------------------

    def lookup(
        self, layer: int, vertices: np.ndarray, version: int
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Split ``vertices`` into hits and misses at ``layer``/``version``.

        Returns ``(hit_ids, miss_ids, hit_rows)`` with ``hit_rows[i]``
        the cached embedding of ``hit_ids[i]`` (``None`` when there are
        no hits). Hit rows are *copied out* here, at lookup time, so
        later inserts in the same query cannot evict data the caller
        still needs; touching a hit refreshes its LRU position. Entries
        from another model version are dropped (and counted as misses):
        the weights changed, so the row is garbage for this query.
        """
        hit_ids: List[int] = []
        hit_rows: List[np.ndarray] = []
        miss_ids: List[int] = []
        for v in np.asarray(vertices).tolist():
            key = (int(layer), int(v))
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                miss_ids.append(v)
                continue
            entry_version, row = entry
            if entry_version != version:
                del self._entries[key]
                self.stats.stale_drops += 1
                self.stats.misses += 1
                miss_ids.append(v)
                continue
            self._entries.move_to_end(key)
            self.stats.hits += 1
            hit_ids.append(v)
            hit_rows.append(row)
        return (
            np.asarray(hit_ids, dtype=np.int64),
            np.asarray(miss_ids, dtype=np.int64),
            np.stack(hit_rows) if hit_rows else None,
        )

    # -- insert / evict -------------------------------------------------------

    def insert(
        self,
        layer: int,
        vertices: np.ndarray,
        rows: np.ndarray,
        version: int,
    ) -> None:
        """Store ``rows[i]`` as the embedding of ``vertices[i]`` at ``layer``."""
        vertices = np.asarray(vertices)
        rows = np.asarray(rows)
        if rows.shape[0] != vertices.shape[0]:
            raise ConfigurationError(
                f"insert: {vertices.shape[0]} vertices but {rows.shape[0]} rows"
            )
        if self.capacity == 0:
            return
        for i, v in enumerate(vertices.tolist()):
            key = (int(layer), int(v))
            # copy: the caller's buffer may be a view it keeps mutating.
            self._entries[key] = (version, np.array(rows[i], copy=True))
            self._entries.move_to_end(key)
            self.stats.insertions += 1
        self._evict_to_capacity()

    def _evict_to_capacity(self) -> None:
        if len(self._entries) <= self.capacity:
            return
        # LRU sweep skipping pinned vertices. If pinned entries alone
        # exceed capacity the overflow stays resident (pinning is a
        # guarantee, not a hint); the sweep simply finds nothing to drop.
        for key in list(self._entries):
            if len(self._entries) <= self.capacity:
                break
            if key[1] in self.pinned:
                continue
            del self._entries[key]
            self.stats.evictions += 1

    # -- invalidation ---------------------------------------------------------

    def invalidate_vertices(self, vertices: Iterable[int]) -> int:
        """Drop every layer's entry for each vertex; returns drop count.

        This is the degraded-mode hook: when the device holding a cache
        shard dies, its resident rows are gone regardless of LRU state,
        pinned or not.
        """
        doomed = {int(v) for v in vertices}
        keys = [k for k in self._entries if k[1] in doomed]
        for key in keys:
            del self._entries[key]
        self.stats.invalidations += len(keys)
        return len(keys)

    def invalidate_at(self, layer: int, vertices: Iterable[int]) -> int:
        """Drop ``(layer, v)`` entries for the given vertices only.

        The delta-invalidation hook: a mutation batch stales layer-``l``
        embeddings exactly for the l-hop-affected vertex set, so the
        dynamic engine evicts per ``(layer, vertex)`` instead of the
        all-layers sweep :meth:`invalidate_vertices` performs.
        """
        lay = int(layer)
        doomed = {int(v) for v in vertices}
        keys = [k for k in self._entries if k[0] == lay and k[1] in doomed]
        for key in keys:
            del self._entries[key]
        self.stats.invalidations += len(keys)
        return len(keys)

    def clear(self) -> int:
        """Drop everything (full flush); returns drop count."""
        count = len(self._entries)
        self._entries.clear()
        self.stats.invalidations += count
        return count

    def resident_vertices(self, layer: int) -> np.ndarray:
        """Vertices with a live entry at ``layer`` (tests/diagnostics)."""
        return np.asarray(
            sorted(v for (l, v) in self._entries if l == layer),
            dtype=np.int64,
        )
