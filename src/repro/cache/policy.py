"""Bounded-staleness policy for the training-time remote-embedding cache.

CaPGNN's observation (PAPERS.md): the per-epoch broadcasts of a
1D-partitioned GCN re-send the same high-degree frontier rows every
epoch, yet DistGNN shows that aggregating *slightly stale* remote
embeddings preserves convergence. The policy below makes that trade
explicit and testable:

* ``staleness_epochs = s`` means a cached row may be served for up to
  ``s`` epochs before it must be refreshed from the wire; the cache
  refreshes on a fixed cadence of ``s + 1`` epochs (epoch 0 is always a
  refresh epoch).
* ``s = 0`` degenerates to *write-through*: every epoch is a refresh
  epoch, the full tile still crosses the wire, and the cached rows are
  re-captured from it — the fast path stays live (and its scatter
  machinery exercised) while remaining **bit-exact**, which is what the
  parity tests pin down.
* ``budget_bytes`` caps the resident cache per rank; admission is
  degree-ranked (highest frontier degree first), so the budget buys the
  rows whose broadcasts repeat the most bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CachePolicy:
    """Admission + staleness parameters of a training-time cache."""

    #: epochs a cached row may be served before a refresh; 0 =
    #: write-through (bit-exact, full-payload refresh every epoch).
    staleness_epochs: int = 0
    #: per-rank byte budget for resident cached rows (None = unbounded).
    budget_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.staleness_epochs < 0:
            raise ConfigurationError(
                f"staleness_epochs must be >= 0, got {self.staleness_epochs}"
            )
        if self.budget_bytes is not None and self.budget_bytes < 0:
            raise ConfigurationError(
                f"budget_bytes must be >= 0, got {self.budget_bytes}"
            )

    @property
    def cadence(self) -> int:
        """Epochs between refreshes (a refresh epoch plus the serves)."""
        return self.staleness_epochs + 1

    def is_refresh_epoch(self, epoch: int) -> bool:
        return epoch % self.cadence == 0

    def expected_cached_fraction(
        self, rows: int, row_bytes: int, num_entries: int
    ) -> float:
        """Fraction of a ``rows``-row tile the budget can keep resident.

        The planner's closed-form admission model: the budget is split
        evenly over the ``num_entries`` ``(label, stage)`` entries the
        trainer creates (the live cache admits greedily in first-use
        order instead, so this is an estimate, not an invariant).
        """
        if rows <= 0:
            return 0.0
        if self.budget_bytes is None:
            return 1.0
        if row_bytes <= 0 or num_entries <= 0:
            return 1.0
        per_entry = self.budget_bytes / num_entries
        return min(rows, int(per_entry // row_bytes)) / rows

    def amortized_payload_factor(self, cached_fraction: float) -> float:
        """Average broadcast-payload multiplier over one cadence cycle.

        One full-payload refresh epoch plus ``staleness_epochs`` serve
        epochs that only move the uncached rows.
        """
        frac = min(max(cached_fraction, 0.0), 1.0)
        c = self.cadence
        return (1.0 + (c - 1) * (1.0 - frac)) / c
