"""Training-time remote-embedding cache for the staged broadcast SpMM.

During the P-stage broadcast SpMM (:func:`repro.core.spmm_mg.
distributed_spmm`) every rank receives rank ``j``'s full operand tile
at stage ``j``, every layer, every epoch. The
:class:`TrainingTileCache` keeps the highest-frontier-degree rows of
each remote tile resident on every consumer rank and, on *serve*
epochs, the broadcast moves only the uncached rows — the cached rows
are scattered from the local replica, up to
:class:`~repro.cache.policy.CachePolicy.staleness_epochs` epochs stale
(CaPGNN's training-side cache; DistGNN's delayed remote aggregates).

Consistency model: all consumer ranks cache the *same* degree-ranked
row set of a stage tile, chosen once per ``(label, stage)`` entry at
first use, so the partial collective has one well-defined payload. On
*refresh* epochs (every ``staleness + 1`` epochs, starting at the
first) the full tile crosses the wire and the resident rows are
re-captured from it (write-through) — with ``staleness = 0`` every
epoch refreshes and training is bit-exact with the uncached run, which
is what the parity tests pin down.

Epoch plans and the stage-plan fast path key on :meth:`plan_token`: the
token changes whenever the cache phase flips (refresh ↔ serve) or the
resident contents change (admission, fill, eviction, :meth:`clear`),
so every captured schedule is invalidated the moment its payloads or
copy closures stop describing the epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.policy import CachePolicy
from repro.errors import ConfigurationError

#: phase names; the token and the plan caches key on them.
REFRESH = "refresh"
SERVE = "serve"


@dataclass
class CacheEpochCounters:
    """Per-epoch byte/row accounting (reset by ``begin_epoch``)."""

    bytes_full: int = 0   # what the uncached broadcasts would have moved
    bytes_sent: int = 0   # what actually crossed the wire
    hit_rows: int = 0     # rows served from the local replica
    miss_rows: int = 0    # rows that travelled
    intercepts: int = 0   # broadcasts that went through the cache

    @property
    def bytes_saved(self) -> int:
        return self.bytes_full - self.bytes_sent

    @property
    def hit_rate(self) -> float:
        total = self.hit_rows + self.miss_rows
        return self.hit_rows / total if total else 0.0


class _StageEntry:
    """Resident rows of one ``(label, stage)`` remote tile."""

    __slots__ = (
        "label", "stage", "cached_rows", "miss_rows", "values", "filled",
        "row_bytes", "allocs",
    )

    def __init__(self, label, stage, cached_rows, miss_rows, values,
                 row_bytes, allocs):
        self.label = label
        self.stage = stage
        self.cached_rows = cached_rows
        self.miss_rows = miss_rows
        #: (k, cols) replica of the cached rows (None in symbolic mode).
        self.values = values
        #: the replica holds a refreshed payload (serve epochs may use it).
        self.filled = False
        self.row_bytes = row_bytes
        self.allocs = allocs

    @property
    def nbytes(self) -> int:
        return self.cached_rows.size * self.row_bytes

    @property
    def miss_nbytes(self) -> int:
        return self.miss_rows.size * self.row_bytes


class TrainingTileCache:
    """Shared remote-tile row cache over one trainer's broadcast stages.

    ``stage_scores[j]`` ranks the rows of partition ``j``'s tile by
    frontier degree (how many stored entries across all ranks' stage-
    ``j`` tiles read the row); ``None`` (symbolic mode) falls back to
    row order, which after the §5.2 permutation is an unbiased sample.
    Admission is greedy in first-use order under ``policy.budget_bytes``
    *per rank* — every consumer rank holds the same replica, so one
    entry's bytes are charged once against the budget and reserved on
    every device pool (tag ``"cache"``).
    """

    def __init__(
        self,
        ctx,
        policy: CachePolicy,
        stage_scores: Optional[Sequence[np.ndarray]] = None,
    ):
        self.ctx = ctx
        self.policy = policy
        self.stage_scores = (
            None if stage_scores is None else list(stage_scores)
        )
        self._entries: Dict[Tuple[str, int], _StageEntry] = {}
        #: bumped on any resident-content change; part of the plan token.
        self.generation = 0
        self._epoch = -1
        self.phase = REFRESH
        #: per-rank bytes currently resident.
        self.resident_bytes = 0
        self.epoch = CacheEpochCounters()
        self.total = CacheEpochCounters()

    # -- lifecycle -----------------------------------------------------------

    def begin_epoch(self) -> str:
        """Advance the epoch counter; returns the new phase."""
        self._epoch += 1
        self.phase = (
            REFRESH if self.policy.is_refresh_epoch(self._epoch) else SERVE
        )
        self.epoch = CacheEpochCounters()
        return self.phase

    def plan_token(self) -> Tuple[int, str]:
        """Identity of the cache state a captured schedule depends on."""
        return (self.generation, self.phase)

    def clear(self) -> int:
        """Drop every entry (elastic recovery / chaos hook)."""
        count = len(self._entries)
        for entry in self._entries.values():
            self._free_entry(entry)
        self._entries.clear()
        self.resident_bytes = 0
        self.generation += 1
        return count

    def evict(self, label: str, stage: int) -> bool:
        """Drop one entry; its rows travel in full until re-admitted."""
        entry = self._entries.pop((label, stage), None)
        if entry is None:
            return False
        self._free_entry(entry)
        self.resident_bytes -= entry.nbytes
        self.generation += 1
        return True

    def invalidate_rows(self, part, rows) -> Tuple[int, int]:
        """Delta invalidation: evict only entries holding a touched row.

        ``rows`` are global (permuted-graph) row indices whose content a
        mutation batch changed; ``part`` is the trainer's
        :class:`~repro.sparse.partition.PartitionVector`. An entry
        ``(label, stage)`` is stale iff its resident replica caches one
        of the touched rows of stage ``stage``'s tile — everything else
        keeps its generation, so captured plans over untouched stages
        stay replayable. Each eviction goes through :meth:`evict`
        (generation bump), forcing recapture instead of stale replay.

        Returns ``(entries_evicted, entries_resident_before)`` — the
        pair the ``repro_dynamic_*`` counters report against the
        ``clear()`` flush-equivalent.
        """
        before = len(self._entries)
        rows = np.unique(np.asarray(rows, dtype=np.int64))
        if not before or not rows.size:
            return 0, before
        stages = part.owners(rows)
        local_by_stage = {
            int(s): rows[stages == s] - part.boundaries[int(s)]
            for s in np.unique(stages)
        }
        evicted = 0
        for label, stage in list(self._entries):
            local = local_by_stage.get(stage)
            if local is None:
                continue
            entry = self._entries[(label, stage)]
            if np.isin(local, entry.cached_rows).any():
                self.evict(label, stage)
                evicted += 1
        return evicted, before

    def _free_entry(self, entry: _StageEntry) -> None:
        for alloc in entry.allocs:
            alloc.free()

    # -- admission -----------------------------------------------------------

    def _admit(self, label: str, stage: int, src) -> _StageEntry:
        rows, cols = src.rows, src.cols
        row_bytes = int(src.nbytes // rows) if rows else 0
        budget = self.policy.budget_bytes
        if budget is None:
            k = rows
        else:
            remaining = max(budget - self.resident_bytes, 0)
            k = min(rows, remaining // row_bytes) if row_bytes else 0
        if self.stage_scores is not None:
            scores = np.asarray(self.stage_scores[stage])
            if scores.shape[0] != rows:
                raise ConfigurationError(
                    f"cache scores for stage {stage} rank {scores.shape[0]} "
                    f"rows, tile has {rows}"
                )
            order = np.argsort(-scores, kind="stable")
        else:
            order = np.arange(rows)
        cached = np.sort(order[:k]).astype(np.int64)
        miss = np.setdiff1d(
            np.arange(rows, dtype=np.int64), cached, assume_unique=True
        )
        values = None
        if k and src.data is not None:
            values = np.empty((k, cols), dtype=src.data.dtype)
        allocs = []
        if k:
            for r in range(self.ctx.num_gpus):
                allocs.append(
                    self.ctx.device(r).pool.allocate(
                        int(k) * row_bytes, tag="cache"
                    )
                )
        entry = _StageEntry(label, stage, cached, miss, values, row_bytes,
                            allocs)
        self._entries[(label, stage)] = entry
        self.resident_bytes += entry.nbytes
        self.generation += 1
        return entry

    def stage_entry(self, label: str, stage: int, src) -> Optional[_StageEntry]:
        """The entry serving this stage's broadcast this epoch, or None.

        None means the broadcast runs uncached (nothing admitted, or the
        replica is not yet filled and this is a serve epoch — e.g. right
        after :meth:`clear`). On a refresh epoch an unfilled entry is
        marked filled here (the refresh closure *will* write it before
        any consumer runs) and the generation is bumped so serve-phase
        plans built against the unfilled state are invalidated.
        """
        entry = self._entries.get((label, stage))
        if entry is None:
            entry = self._admit(label, stage, src)
        if entry.cached_rows.size == 0:
            return None
        if self.phase == REFRESH:
            if not entry.filled:
                entry.filled = True
                self.generation += 1
            return entry
        return entry if entry.filled else None

    # -- broadcast interception ----------------------------------------------

    def payload_nbytes(self, label: str, stage: int, src) -> int:
        """Bytes this stage's broadcast moves this epoch."""
        entry = self.stage_entry(label, stage, src)
        if entry is None or self.phase == REFRESH:
            return src.nbytes
        return entry.miss_nbytes

    def stage_copy(
        self, entry: _StageEntry, src, dsts: Sequence
    ) -> Callable[[], None]:
        """The broadcast's functional closure for this phase.

        Refresh: full copy into every destination, write-through into
        the replica, then scatter the replica back over the cached rows
        — value-identical to the plain copy, but it exercises the same
        scatter path serve epochs rely on, so staleness=0 keeps the
        whole machinery parity-tested. Serve: one gathered payload of
        the miss rows plus the (possibly stale) replica rows.

        Byte/row accounting happens *inside* the closure: replayed
        schedules (stage plans, sim-graphs) run the closure without
        re-planning, and the counters must follow the data movement.
        """
        dsts = tuple(dsts)
        cached = entry.cached_rows
        miss = entry.miss_rows
        full = src.nbytes
        if self.phase == REFRESH:
            def refresh() -> None:
                self._count(full, full, 0, cached.size + miss.size)
                data = src.data
                if data is None:
                    return
                entry.values[:] = data[cached]
                for dst in dsts:
                    out = dst.data
                    np.copyto(out, data)
                    out[cached] = entry.values
            return refresh

        sent = entry.miss_nbytes

        def serve() -> None:
            self._count(full, sent, cached.size, miss.size)
            data = src.data
            if data is None:
                return
            payload = data[miss]
            for dst in dsts:
                out = dst.data
                out[miss] = payload
                out[cached] = entry.values
        return serve

    def _count(self, full: int, sent: int, hits: int, misses: int) -> None:
        for c in (self.epoch, self.total):
            c.bytes_full += full
            c.bytes_sent += sent
            c.hit_rows += hits
            c.miss_rows += misses
            c.intercepts += 1

    # -- diagnostics ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def entry_keys(self) -> Tuple[Tuple[str, int], ...]:
        """All resident ``(label, stage)`` keys, in insertion order."""
        return tuple(self._entries)

    def resident_rows(self, label: str, stage: int) -> np.ndarray:
        entry = self._entries.get((label, stage))
        if entry is None:
            return np.asarray([], dtype=np.int64)
        return entry.cached_rows.copy()
